(* daric: command-line driver for the Daric payment-channel
   reproduction — table regeneration, attack/incentive analyses,
   transaction-flow charts and a scripted channel demo. *)

open Cmdliner

let setup_logs (level : Logs.level option) =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let log_term =
  let env = Cmd.Env.info "DARIC_VERBOSITY" in
  Logs_cli.level ~env ()

(* ---- tables ---- *)

let tables_cmd =
  let which =
    Arg.(value & pos 0 (enum [ ("all", `All); ("1", `T1); ("3", `T3) ]) `All
         & info [] ~docv:"TABLE" ~doc:"Which table to print: 1, 3 or all.")
  in
  let updates =
    Arg.(value & opt int 1000
         & info [ "max-updates" ] ~doc:"Largest update count in the Table 1 sweep.")
  in
  let run logs which updates =
    setup_logs logs;
    let ns = List.filter (fun n -> n <= updates) [ 1; 10; 100; 1000 ] in
    (match which with
    | `All | `T1 -> print_string (Daric_analysis.Tables.table1 ~ns ())
    | `T3 -> ());
    match which with
    | `All | `T3 ->
        print_newline ();
        print_string (Daric_analysis.Tables.table3 ());
        print_newline ();
        print_string (Daric_analysis.Tables.measured_ops_table ())
    | `T1 -> ()
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate Table 1 and Table 3 of the paper.")
    Term.(const run $ log_term $ which $ updates)

(* ---- attack ---- *)

let attack_cmd =
  let channels =
    Arg.(value & opt int 10 & info [ "n" ] ~doc:"Number of victim channels.")
  in
  let blocks =
    Arg.(value & opt int 12
         & info [ "blocks" ] ~doc:"HTLC timelock in blocks (paper: 144).")
  in
  let run logs channels blocks =
    setup_logs logs;
    let cfg =
      { Daric_pcn.Attack.default_config with
        n_channels = channels;
        timelock_blocks = blocks }
    in
    print_string (Daric_analysis.Tables.attack_report ~cfg ())
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Run the Section 6.1 channel-closure delay attack against eltoo \
             and the same adversary against Daric.")
    Term.(const run $ log_term $ channels $ blocks)

(* ---- incentives ---- *)

let incentives_cmd =
  let run logs =
    setup_logs logs;
    print_string (Daric_analysis.Tables.incentives_report ())
  in
  Cmd.v
    (Cmd.info "incentives"
       ~doc:"Print the Section 6.2 punishment-threshold analysis.")
    Term.(const run $ log_term)

(* ---- flow charts ---- *)

let flow_cmd =
  let which =
    Arg.(value
         & pos 0 (enum [ ("sample", `Sample); ("daric", `Daric); ("lightning", `Ln) ]) `Daric
         & info [] ~docv:"CHART" ~doc:"sample (Fig 1), daric (Fig 3) or lightning (Fig 2).")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of ASCII.")
  in
  let run logs which dot =
    setup_logs logs;
    let module F = Daric_core.Flowchart in
    let chart =
      match which with
      | `Sample -> F.sample ()
      | `Daric -> F.daric_state ~i:3 ()
      | `Ln -> F.lightning_pts_state ~i:3 ()
    in
    print_string (if dot then F.to_dot chart else F.to_ascii chart)
  in
  Cmd.v
    (Cmd.info "flow" ~doc:"Render the paper's transaction-flow figures.")
    Term.(const run $ log_term $ which $ dot)

(* ---- demo ---- *)

let demo_cmd =
  let module I = Daric_schemes.Scheme_intf in
  let module Registry = Daric_schemes.Registry in
  let updates =
    Arg.(value & opt int 5 & info [ "updates" ] ~doc:"Number of payments.")
  in
  let dishonest =
    Arg.(value & flag
         & info [ "dishonest" ] ~doc:"Replay an old state and get punished.")
  in
  let force =
    Arg.(value & flag
         & info [ "force" ] ~doc:"Close unilaterally at the latest state.")
  in
  let scheme =
    let scheme_conv =
      Arg.enum
        (List.map (fun n -> (String.lowercase_ascii n, n)) (Registry.names ()))
    in
    Arg.(value & opt scheme_conv "Daric"
         & info [ "scheme" ]
             ~doc:"Channel scheme to run (any registered scheme).")
  in
  let run logs updates dishonest force scheme_name =
    setup_logs logs;
    let (module S : I.SCHEME) = Registry.find_exn scheme_name in
    let env = I.make_env ~seed:99 () in
    let config = { I.default_config with bal_a = 60_000; bal_b = 40_000 } in
    let fail e =
      Fmt.epr "%s@." (I.error_to_string e);
      exit 1
    in
    match S.open_channel env config with
    | Error e -> fail e
    | Ok ch ->
        Fmt.pr "channel open (%s): alice %d, bob %d@." S.name config.I.bal_a
          config.I.bal_b;
        for k = 1 to updates do
          let bal_a = config.I.bal_a - (1000 * k)
          and bal_b = config.I.bal_b + (1000 * k) in
          (match S.update ch ~bal_a ~bal_b with
          | Ok () -> ()
          | Error e -> fail e);
          Fmt.pr "update %d: alice %d, bob %d (state %d)@." k bal_a bal_b
            (S.sn ch)
        done;
        let close, label =
          if dishonest then
            (S.dishonest_close, "bob replays a revoked state...")
          else if force then (S.force_close, "alice closes unilaterally...")
          else (S.collaborative_close, "collaborative close requested...")
        in
        Fmt.pr "%s@." label;
        (match close ch with
        | Error e -> fail e
        | Ok o ->
            List.iter
              (fun ev -> Fmt.pr "  %s@." (I.event_to_string ev))
              o.I.trace;
            Fmt.pr "outcome: %s in %d rounds@."
              (if o.I.punished then "cheater punished"
               else if o.I.resolved then "resolved"
               else "unresolved")
              o.I.rounds);
        print_string
          (Daric_core.Flowchart.to_ascii
             (Daric_core.Flowchart.of_ledger env.I.ledger ~funding:(S.funding ch)
                ~title:"on-chain closure"))
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Run a scripted channel session end to end for any registered \
             scheme.")
    Term.(const run $ log_term $ updates $ dishonest $ force $ scheme)

(* ---- pcn ---- *)

let pcn_cmd =
  let nodes =
    Arg.(value & opt int 10 & info [ "nodes" ] ~doc:"Number of network nodes.")
  in
  let payments =
    Arg.(value & opt int 40 & info [ "payments" ] ~doc:"Number of random payments.")
  in
  let run logs nodes payments =
    setup_logs logs;
    let cfg =
      { Daric_analysis.Pcn_sim.default_config with
        n_nodes = nodes;
        n_channels = nodes * 3 / 2;
        n_payments = payments }
    in
    print_string (Daric_analysis.Pcn_sim.report ~cfg ())
  in
  Cmd.v
    (Cmd.info "pcn"
       ~doc:"Simulate random payments over a random Daric channel network.")
    Term.(const run $ log_term $ nodes $ payments)

(* ---- lifetime ---- *)

let lifetime_cmd =
  let run logs =
    setup_logs logs;
    let module L = Daric_core.Locktime in
    Fmt.pr "Section 4.1 - channel lifetime@.";
    Fmt.pr "block-height encoding (S0 = 0) at height 700000: %d updates@."
      (L.height_mode_capacity ~current_height:700_000);
    Fmt.pr "timestamp encoding (S0 = 5e8) at t = 1.65e9:   %d updates@."
      (L.timestamp_mode_capacity ~current_time:1_650_000_000);
    Fmt.pr "unlimited at <= 1 update/second: %b@."
      (L.unlimited_lifetime ~seconds_per_update:1.0)
  in
  Cmd.v
    (Cmd.info "lifetime" ~doc:"Print the Section 4.1 lifetime analysis.")
    Term.(const run $ log_term)

(* ---- tower ---- *)

let tower_cmd =
  let wal =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"PATH"
             ~doc:"Back the probe tower's journal and snapshot by files \
                   ($(docv) and $(docv).snap). Default: in-memory store.")
  in
  let snapshot_every =
    Arg.(value & opt int 8
         & info [ "snapshot-every" ] ~docv:"K"
             ~doc:"Snapshot the tower state and reset the WAL every $(docv) \
                   rounds.")
  in
  let replicas =
    Arg.(value & opt int 3
         & info [ "replicas" ] ~docv:"R"
             ~doc:"Number of independent replicated towers (besides the \
                   probe) under the rotating crash schedule.")
  in
  let channels =
    Arg.(value & opt int 100 & info [ "channels" ] ~doc:"Number of channels.")
  in
  let updates =
    Arg.(value & opt int 1 & info [ "updates" ] ~doc:"Updates per channel.")
  in
  let frauds =
    Arg.(value & opt int 8
         & info [ "frauds" ] ~doc:"Channels hit by the revoked-replay wave.")
  in
  let rounds =
    Arg.(value & opt int 24 & info [ "rounds" ] ~doc:"Monitoring rounds.")
  in
  let run logs wal snapshot_every replicas channels updates frauds rounds =
    setup_logs logs;
    let probe_store =
      match wal with
      | Some path -> Daric_core.Durable.file_store path
      | None -> Daric_core.Durable.memory_store ()
    in
    let s =
      Daric_analysis.Tower_sim.run ~channels ~updates
        ~frauds:(min frauds channels) ~rounds ~snapshot_every
        ~replicas:(max 1 replicas) ~probe_store ()
    in
    Fmt.pr "%a@." Daric_analysis.Tower_sim.pp s;
    match wal with
    | Some path -> Fmt.pr "probe store: %s (+ %s.snap)@." path path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "tower"
       ~doc:"Run the durable replicated watchtower: N channels guarded by R \
             snapshot+WAL towers under a rotating crash schedule plus a \
             fault-free probe whose store is crashed and re-opened at the \
             end; prints the recovery cost and the per-tower scorecard.")
    Term.(const run $ log_term $ wal $ snapshot_every $ replicas $ channels
          $ updates $ frauds $ rounds)

(* ---- lint ---- *)

let lint_cmd =
  let scheme =
    Arg.(value & opt (some string) None
         & info [ "scheme" ]
             ~doc:"Lint only this scheme (default: the whole registry).")
  in
  let updates =
    Arg.(value & opt int 3
         & info [ "updates" ] ~doc:"Updates per closure scenario.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "all-findings" ]
             ~doc:"Print warnings and notes too, not just errors.")
  in
  let run logs scheme updates verbose =
    setup_logs logs;
    let reports = Daric_staticcheck.Sweep.run ~updates ?scheme () in
    if reports = [] then begin
      Fmt.epr "unknown scheme%a; known: %s@."
        Fmt.(option (fun fmt -> Fmt.pf fmt " %s")) scheme
        (String.concat ", " (Daric_schemes.Registry.names ()));
      exit 2
    end;
    List.iter (Daric_staticcheck.Sweep.pp_report ~verbose Fmt.stdout) reports;
    let errors = Daric_staticcheck.Sweep.errors reports in
    Fmt.pr "%d error(s) across %d scheme report(s)@." errors
      (List.length reports);
    if errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze every scheme's scripts and transaction DAG.")
    Term.(const run $ log_term $ scheme $ updates $ verbose)

(* ---- check ---- *)

let check_cmd =
  let module M = Daric_mcheck.Matrix in
  let module Mc = Daric_mcheck.Mcheck in
  let scheme =
    Arg.(value & opt (some string) None
         & info [ "scheme" ]
             ~doc:"Model-check only this registered scheme's lifecycle world \
                   (default: closure world, mutation matrix, every scheme and \
                   both tower variants).")
  in
  let depth =
    Arg.(value & opt (some int) None
         & info [ "depth" ] ~docv:"D" ~doc:"Override the depth bound.")
  in
  let budget =
    Arg.(value & opt (some int) None
         & info [ "budget" ] ~docv:"S" ~doc:"Override the state-visit budget.")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"CI bound: closure world, two mutations, Daric plus one \
                   baseline scheme, both towers.")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Print counterexample traces, and the on-chain flowchart \
                   for closure-world counterexamples.")
  in
  let run logs scheme depth budget smoke trace =
    setup_logs logs;
    let override (c : Mc.config) =
      { c with
        Mc.max_depth = Option.value depth ~default:c.Mc.max_depth;
        max_states = Option.value budget ~default:c.Mc.max_states }
    in
    let print_entry ?(mutation : Daric_staticcheck.Daricmodel.mutation option)
        (e : M.entry) =
      Fmt.pr "%a@." M.pp_entry e;
      let diags = M.to_diags e in
      List.iter
        (fun (d : Daric_staticcheck.Diag.t) ->
          Fmt.pr "  [%s] %s@."
            (Daric_staticcheck.Diag.severity_name d.severity)
            d.detail)
        (if trace then diags
         else
           List.filter
             (fun (d : Daric_staticcheck.Diag.t) ->
               d.severity <> Daric_staticcheck.Diag.Info)
             diags);
      if trace then
        List.iter
          (fun (c : Mc.counterexample) ->
            let cfg =
              { Daric_mcheck.Closure_world.default_cfg with
                Daric_mcheck.Closure_world.mutate = mutation }
            in
            match
              M.closure_flowchart ~cfg ~title:e.M.model c.Mc.trace
            with
            | Some chart ->
                print_string (Daric_core.Flowchart.to_ascii chart)
            | None -> ())
          (if mutation <> None then e.M.result.Mc.counterexamples else [])
    in
    let entries =
      match scheme with
      | Some name -> (
          let name =
            match
              List.find_opt
                (fun n ->
                  String.lowercase_ascii n = String.lowercase_ascii name)
                (Daric_schemes.Registry.names ())
            with
            | Some n -> n
            | None -> name
          in
          match M.scheme_one ~config:(override M.lifecycle_config) name with
          | Some e -> [ e ]
          | None ->
              Fmt.epr "unknown scheme %s; known: %s@." name
                (String.concat ", " (Daric_schemes.Registry.names ()));
              exit 2)
      | None ->
          let closure =
            M.closure_clean
              ~config:
                (override
                   (if smoke then
                      { M.clean_closure_config with Mc.max_depth = 12 }
                    else M.clean_closure_config))
              ()
          in
          print_entry closure;
          let mutants =
            let all = M.mutation_matrix ~config:(override M.mutant_closure_config) () in
            if smoke then
              List.filter
                (fun (mu, _) ->
                  mu = Daric_staticcheck.Daricmodel.Drop_revocation
                  || mu = Daric_staticcheck.Daricmodel.Rev_csv_delay)
                all
            else all
          in
          List.iter (fun (mu, e) -> print_entry ~mutation:mu e) mutants;
          let schemes =
            if smoke then
              List.filteri (fun i _ -> i < 2)
                (List.filter_map
                   (fun n -> M.scheme_one ~config:(override M.lifecycle_config) n)
                   ("Daric"
                   :: List.filter
                        (fun n -> n <> "Daric")
                        (Daric_schemes.Registry.names ())))
            else M.scheme_sweep ~config:(override M.lifecycle_config) ()
          in
          List.iter (fun e -> print_entry e) schemes;
          let towers = M.tower_sweep ~config:(override M.tower_config) () in
          List.iter (fun e -> print_entry e) towers;
          closure :: List.map snd mutants @ schemes @ towers
    in
    (match scheme with
    | Some _ -> List.iter (fun e -> print_entry e) entries
    | None -> ());
    let bad = List.filter (fun e -> not (M.ok e)) entries in
    Fmt.pr "%d world(s) checked, %d with unexpected results@."
      (List.length entries) (List.length bad);
    if bad <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Model-check the channel worlds: exhaustive bounded exploration \
             of adversarial closure, scheme lifecycles and watchtower \
             handoff, with the seeded-mutation rediscovery gate.")
    Term.(const run $ log_term $ scheme $ depth $ budget $ smoke $ trace)

let main =
  Cmd.group
    (Cmd.info "daric" ~version:"1.0.0"
       ~doc:"Daric payment channel: reproduction of Mirzaei et al., DSN 2022.")
    [ tables_cmd; attack_cmd; incentives_cmd; flow_cmd; demo_cmd; pcn_cmd;
      lifetime_cmd; tower_cmd; lint_cmd; check_cmd ]

let () = exit (Cmd.eval main)
