(** Transactions in the UTXO model of the paper (Section 2.1):
    TX = (txid, Input, nLT, Output, Witness) with txid = H(\[TX\]) over
    the body \[TX\] = (Input, nLT, Output).

    Weight accounting follows segwit rules with the byte-count
    conventions of Appendix H: weight = 4 x non-witness bytes + witness
    bytes; one vbyte is four weight units. *)

module Script = Daric_script.Script

type outpoint = { txid : string; vout : int }

val outpoint_equal : outpoint -> outpoint -> bool
val pp_outpoint : Format.formatter -> outpoint -> unit

(** Output condition (scriptPubKey). *)
type spk =
  | P2wsh of string  (** 32-byte script hash; spending reveals the script *)
  | P2wpkh of string  (** 20-byte pubkey hash *)
  | Raw of Script.t  (** bare script (tests and funding sources) *)
  | Op_return  (** provably unspendable *)

type output = { value : int; spk : spk }
(** [value] in satoshi. *)

type input = { prevout : outpoint; sequence : int }

type witness_elt =
  | Data of string
  | Wscript of Script.t  (** the revealed P2WSH witness script *)

type witness = witness_elt list
(** Bottom-to-top witness stack for one input (script last). *)

type enc
(** Opaque in-place encoding memo: serialized body, floating-suffix
    offset, txid and sighash digests, computed once per transaction
    value. *)

type t = private {
  inputs : input list;
  locktime : int;  (** nLockTime *)
  outputs : output list;
  witnesses : witness list;  (** parallel to [inputs] *)
  mutable enc : enc option;  (** encoding memo — maintained by this
                                 module; never observable through the
                                 serialization or sizing functions *)
}
(** The record is [private]: construct with {!make} / {!with_witnesses}
    so a body change can never carry a stale memo along. Field reads
    and pattern matching work as usual. *)

val make :
  ?locktime:int -> ?witnesses:witness list ->
  inputs:input list -> outputs:output list -> unit -> t
(** [make ~inputs ~outputs ()] builds a transaction (locktime 0 and no
    witnesses unless given). The encoding memo starts empty and is
    filled on first use. *)

val with_witnesses : t -> witness list -> t
(** [with_witnesses tx ws] is [tx] with its witness stacks replaced —
    the witness-completion idiom. The body is unchanged, so the result
    shares [tx]'s encoding memo: completing a transaction never
    re-serializes or re-hashes. *)

val empty : t
(** The empty transaction (no inputs, no outputs, locktime 0) — a
    placeholder for not-yet-negotiated slots. *)

val default_sequence : int
val input_of_outpoint : ?sequence:int -> outpoint -> input

val cached_msg : t -> int -> string option
(** [cached_msg tx slot] reads a sighash-digest slot of the memo
    (slot 0 = ALL, 1 = ANYPREVOUT, 2+i = ANYPREVOUT|SINGLE for input
    index i). Used by {!Sighash.message}; see {!cache_msg}. *)

val cache_msg : t -> int -> string -> unit
(** Store a sighash digest in the given slot. The digest must be the
    pure function of the body that the slot denotes — the memo is
    shared by every view of this transaction value. *)

val body_serialize : t -> string
(** Serialization of the body \[TX\] = (Input, nLT, Output). Memoized
    on the immutable body together with {!txid}. *)

val body_serialize_uncached : t -> string
(** Reference encoder: a fresh serialization pass with no memo table
    (property tests and the [tx-encode_naive] baseline). *)

val body_encoding : t -> string * int
(** [(body, off)] where [body] = {!body_serialize} and the floating
    body ⌊TX⌋ is exactly the suffix [body\[off..\]] — the zero-copy
    view used by sighash computation. *)

val txid : t -> string
(** txid = H(\[TX\]); 32 bytes. Witness data never affects it.
    Memoized on the (immutable) body — agrees with {!txid_uncached}. *)

val txid_uncached : t -> string
(** Recompute the digest without consulting the memo table (reference
    path for the property tests). *)

val seal : t -> unit
(** Drop the encoding memo's serialized body and sighash slots,
    keeping only the txid. Called by {!Daric_chain.Ledger.record} once
    the transaction is on chain: accepted transactions are retained
    forever in the ledger's log, and without sealing each one pins its
    dead memo bytes in the live heap the major GC must keep marking.
    Later body/sighash demands transparently recompute; {!txid} stays
    O(1). Idempotent. *)

val outpoint_of : t -> int -> outpoint

val floating_body_serialize : t -> string
(** The input-less body (nLT, Output) authorized by ANYPREVOUT
    signatures. *)

val output_size : output -> int
(** Serialized output bytes: P2WPKH 31, P2WSH 43, ... *)

val non_witness_size : t -> int
(** version(4) + counts + 41/input + outputs + locktime(4). *)

val witness_elt_size : witness_elt -> int

val witness_size : t -> int
(** 2-byte segwit header + per input: count byte + elements. *)

val weight : t -> int
(** 4 x non-witness + witness, in weight units. *)

val vbytes : t -> int
(** ceil(weight / 4). *)

val total_output_value : t -> int
val pp : Format.formatter -> t -> unit
