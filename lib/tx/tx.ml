(** Transactions in the UTXO model of the paper (Section 2.1).

    A transaction is the tuple (txid, Input, nLT, Output, Witness) with
    txid := H([TX]) where the body [TX] := (Input, nLT, Output).

    Weight accounting follows Bitcoin segwit rules with the byte-count
    conventions of the paper's Appendix H (see {!Script.op_size}):
    weight = 4 x non-witness bytes + witness bytes, and one vbyte equals
    four weight units. *)

module Script = Daric_script.Script

type outpoint = { txid : string; vout : int }

let outpoint_equal a b = String.equal a.txid b.txid && a.vout = b.vout

let pp_outpoint ppf (o : outpoint) =
  Fmt.pf ppf "%s:%d" (Daric_util.Hex.short o.txid) o.vout

(** Output condition (scriptPubKey). *)
type spk =
  | P2wsh of string  (** 32-byte script hash; spend reveals the script *)
  | P2wpkh of string  (** 20-byte pubkey hash *)
  | Raw of Script.t  (** bare script (tests and funding sources) *)
  | Op_return  (** provably unspendable *)

type output = { value : int; spk : spk }
(** [value] in satoshi. *)

type input = { prevout : outpoint; sequence : int }

(** One witness-stack element. *)
type witness_elt =
  | Data of string
  | Wscript of Script.t  (** the revealed P2WSH witness script *)

type witness = witness_elt list
(** Bottom-to-top witness stack for one input (script last). *)

(* In-place encoding memo. Carrying the memo on the transaction itself
   (instead of a global table keyed by the whole body) makes txid and
   sighash derivation a field read after the first computation: no
   structural hashing of input/output lists, no equality walk on
   lookup, no long-lived table entries for the GC to promote and mark.

   Races are benign by construction: the memo is a pure function of the
   immutable body, so when two domains compute it concurrently both
   write structurally identical values and either pointer is a correct
   published state (word-sized writes don't tear). A lost update only
   costs a recomputation. *)
type enc = {
  e_body : string;  (** serialized body [TX] *)
  e_float_off : int;  (** ⌊TX⌋ = suffix of [e_body] from this offset *)
  mutable e_txid : string;  (** "" until first demanded — txid costs a
                                hash256, and many signed bodies never
                                need theirs *)
  mutable e_msgs : string option array;
      (** sighash digests: slot 0 = ALL, 1 = ANYPREVOUT,
          2+i = ANYPREVOUT|SINGLE for input index i *)
}

type t = {
  inputs : input list;
  locktime : int;  (** nLockTime *)
  outputs : output list;
  witnesses : witness list;  (** parallel to [inputs] *)
  mutable enc : enc option;  (** encoding memo; never part of equality
                                 or serialization *)
}

let default_sequence = 0xffffffff

let input_of_outpoint ?(sequence = default_sequence) prevout = { prevout; sequence }

let make ?(locktime = 0) ?(witnesses = []) ~inputs ~outputs () : t =
  { inputs; locktime; outputs; witnesses; enc = None }

let empty : t =
  { inputs = []; locktime = 0; outputs = []; witnesses = []; enc = None }

(* ------------------------------------------------------------------ *)
(* Serialization of the body [TX] = (Input, nLT, Output) for txids.   *)

let spk_serialize (w : Daric_util.Byteio.Writer.t) (spk : spk) =
  let module W = Daric_util.Byteio.Writer in
  match spk with
  | P2wsh h ->
      W.byte w 0x00;
      W.var_string w h
  | P2wpkh h ->
      W.byte w 0x01;
      W.var_string w h
  | Raw s ->
      W.byte w 0x02;
      W.var_string w (Script.serialize s)
  | Op_return -> W.byte w 0x03

(* The floating body ⌊TX⌋ = (nLT, Output) is serialized *after* the
   inputs, so the full body embeds it as an exact suffix: one encoding
   pass yields both views, and consumers slice instead of
   re-serializing. *)
let body_serialize_uncached_off (tx : t) : string * int =
  let module W = Daric_util.Byteio.Writer in
  W.with_scratch (fun w ->
      W.varint w (List.length tx.inputs);
      List.iter
        (fun (i : input) ->
          W.var_string w i.prevout.txid;
          W.u32 w i.prevout.vout;
          W.u32 w i.sequence)
        tx.inputs;
      let floating_off = W.length w in
      W.u32 w tx.locktime;
      W.varint w (List.length tx.outputs);
      List.iter
        (fun (o : output) ->
          W.u64 w (Int64.of_int o.value);
          spk_serialize w o.spk)
        tx.outputs;
      (W.contents w, floating_off))

(** Reference encoder: one fresh serialization pass, no memo table. *)
let body_serialize_uncached (tx : t) : string =
  fst (body_serialize_uncached_off tx)

let txid_uncached (tx : t) : string =
  Daric_crypto.Hash.hash256 (body_serialize_uncached tx)

(* The memo is computed once per transaction value and then read off
   the record; see the note on [enc] above for why the unsynchronized
   store is safe from Dpool worker domains. A sealed memo (see {!seal})
   is marked by a negative floating offset: it retains only the txid,
   and the body is recomputed on the rare post-acceptance demand. *)
let encode_body (tx : t) : enc =
  match tx.enc with
  | Some e when e.e_float_off >= 0 -> e
  | prior ->
      let body, off = body_serialize_uncached_off tx in
      let e_txid = match prior with Some e -> e.e_txid | None -> "" in
      let e = { e_body = body; e_float_off = off; e_txid; e_msgs = [||] } in
      tx.enc <- Some e;
      e

(** Drop the memo's serialized body and sighash slots, keeping only
    the txid. Called when a transaction is chain-recorded: nothing
    signs or re-serializes an accepted transaction on the hot path,
    but the ledger retains it forever in the accepted log — without
    sealing, every recorded tx pins ~its own weight in dead memo
    bytes that the major GC must mark for the rest of the run. The
    txid survives (indexes and rollback depend on it being O(1));
    any later body/sighash demand transparently recomputes. *)
let seal (tx : t) : unit =
  match tx.enc with
  | Some e when e.e_float_off >= 0 ->
      let id =
        if String.length e.e_txid <> 0 then e.e_txid
        else Daric_crypto.Hash.hash256 e.e_body
      in
      tx.enc <- Some { e_body = ""; e_float_off = -1; e_txid = id; e_msgs = [||] }
  | _ -> ()

(** [with_witnesses tx ws] is [tx] with its witness stacks replaced —
    the witness-completion idiom. The body is untouched, so the copy
    shares the original's encoding memo (forced here so both views
    benefit from one serialization). *)
let with_witnesses (tx : t) (witnesses : witness list) : t =
  ignore (encode_body tx);
  { tx with witnesses }

let body_serialize (tx : t) : string = (encode_body tx).e_body

(** The serialized body and the offset of its floating suffix, from
    the memo — the zero-copy path: slice, don't re-serialize. *)
let body_encoding (tx : t) : string * int =
  let e = encode_body tx in
  (e.e_body, e.e_float_off)

(** txid = H([TX]); 32 bytes. Memoized in place on the transaction;
    survives {!seal} without reviving the body. *)
let txid (tx : t) : string =
  match tx.enc with
  | Some e when String.length e.e_txid <> 0 -> e.e_txid
  | _ ->
      let e = encode_body tx in
      if String.length e.e_txid <> 0 then e.e_txid
      else begin
        let id = Daric_crypto.Hash.hash256 e.e_body in
        e.e_txid <- id;
        id
      end

let outpoint_of (tx : t) (vout : int) : outpoint = { txid = txid tx; vout }

(** [TX] without inputs — the part authorized by ANYPREVOUT sigs
    (the paper's notation ⌊TX⌋ = (nLT, Output)). *)
let floating_body_serialize (tx : t) : string =
  let e = encode_body tx in
  String.sub e.e_body e.e_float_off (String.length e.e_body - e.e_float_off)

(* ------------------------------------------------------------------ *)
(* Sighash-digest slots, used by {!Sighash.message}. Slot layout is
   documented on [e_msgs]; the array is grown on demand (transactions
   here have at most a handful of inputs). Same benign-race argument
   as the memo itself: slots hold pure functions of the body. *)

let cached_msg (tx : t) (slot : int) : string option =
  let e = encode_body tx in
  if slot < Array.length e.e_msgs then Array.unsafe_get e.e_msgs slot else None

let cache_msg (tx : t) (slot : int) (msg : string) : unit =
  let e = encode_body tx in
  let a = e.e_msgs in
  let a =
    if slot < Array.length a then a
    else begin
      let a' = Array.make (max (slot + 1) 4) None in
      Array.blit a 0 a' 0 (Array.length a);
      e.e_msgs <- a';
      a'
    end
  in
  a.(slot) <- Some msg

(* ------------------------------------------------------------------ *)
(* Weight accounting (Appendix H conventions).                        *)

let output_size (o : output) : int =
  (* 8 value bytes + 1 script-length byte + script *)
  match o.spk with
  | P2wpkh _ -> 8 + 1 + 22 (* OP_0 <20-byte hash>, 31 total *)
  | P2wsh _ -> 8 + 1 + 34 (* OP_0 <32-byte hash>, 43 total *)
  | Raw s -> 8 + 1 + Script.size s
  | Op_return -> 8 + 1 + 1

(** Non-witness serialized size in bytes: version(4) + input count(1) +
    41 per input (36 outpoint + 1 empty scriptSig length + 4 sequence) +
    output count(1) + outputs + locktime(4). *)
let non_witness_size (tx : t) : int =
  4 + 1
  + (41 * List.length tx.inputs)
  + 1
  + List.fold_left (fun acc o -> acc + output_size o) 0 tx.outputs
  + 4

let witness_elt_size = function
  | Data d -> if String.length d <= 1 then 1 else 1 + String.length d
  | Wscript s -> 1 + Script.size s

(** Witness serialized size: 2-byte segwit header plus, per input, a
    1-byte element count and the elements. *)
let witness_size (tx : t) : int =
  2
  + List.fold_left
      (fun acc wit ->
        acc + 1 + List.fold_left (fun a e -> a + witness_elt_size e) 0 wit)
      0 tx.witnesses

(** weight = 4 x non-witness + witness (weight units). *)
let weight (tx : t) : int = (4 * non_witness_size tx) + witness_size tx

(** Virtual size: one vbyte per four weight units, rounded up. *)
let vbytes (tx : t) : int = (weight tx + 3) / 4

let total_output_value (tx : t) : int =
  List.fold_left (fun acc o -> acc + o.value) 0 tx.outputs

let pp ppf (tx : t) =
  Fmt.pf ppf "@[<v>tx %s (nLT=%d, %d in, %d out, %d WU)@]"
    (Daric_util.Hex.short (txid tx))
    tx.locktime (List.length tx.inputs) (List.length tx.outputs) (weight tx)
