(** Transactions in the UTXO model of the paper (Section 2.1).

    A transaction is the tuple (txid, Input, nLT, Output, Witness) with
    txid := H([TX]) where the body [TX] := (Input, nLT, Output).

    Weight accounting follows Bitcoin segwit rules with the byte-count
    conventions of the paper's Appendix H (see {!Script.op_size}):
    weight = 4 x non-witness bytes + witness bytes, and one vbyte equals
    four weight units. *)

module Script = Daric_script.Script

type outpoint = { txid : string; vout : int }

let outpoint_equal a b = String.equal a.txid b.txid && a.vout = b.vout

let pp_outpoint ppf (o : outpoint) =
  Fmt.pf ppf "%s:%d" (Daric_util.Hex.short o.txid) o.vout

(** Output condition (scriptPubKey). *)
type spk =
  | P2wsh of string  (** 32-byte script hash; spend reveals the script *)
  | P2wpkh of string  (** 20-byte pubkey hash *)
  | Raw of Script.t  (** bare script (tests and funding sources) *)
  | Op_return  (** provably unspendable *)

type output = { value : int; spk : spk }
(** [value] in satoshi. *)

type input = { prevout : outpoint; sequence : int }

(** One witness-stack element. *)
type witness_elt =
  | Data of string
  | Wscript of Script.t  (** the revealed P2WSH witness script *)

type witness = witness_elt list
(** Bottom-to-top witness stack for one input (script last). *)

type t = {
  inputs : input list;
  locktime : int;  (** nLockTime *)
  outputs : output list;
  witnesses : witness list;  (** parallel to [inputs] *)
}

let default_sequence = 0xffffffff

let input_of_outpoint ?(sequence = default_sequence) prevout = { prevout; sequence }

(* ------------------------------------------------------------------ *)
(* Serialization of the body [TX] = (Input, nLT, Output) for txids.   *)

let spk_serialize (w : Daric_util.Byteio.Writer.t) (spk : spk) =
  let module W = Daric_util.Byteio.Writer in
  match spk with
  | P2wsh h ->
      W.byte w 0x00;
      W.var_string w h
  | P2wpkh h ->
      W.byte w 0x01;
      W.var_string w h
  | Raw s ->
      W.byte w 0x02;
      W.var_string w (Script.serialize s)
  | Op_return -> W.byte w 0x03

let body_serialize (tx : t) : string =
  let module W = Daric_util.Byteio.Writer in
  let w = W.create () in
  W.varint w (List.length tx.inputs);
  List.iter
    (fun (i : input) ->
      W.var_string w i.prevout.txid;
      W.u32 w i.prevout.vout;
      W.u32 w i.sequence)
    tx.inputs;
  W.u32 w tx.locktime;
  W.varint w (List.length tx.outputs);
  List.iter
    (fun (o : output) ->
      W.u64 w (Int64.of_int o.value);
      spk_serialize w o.spk)
    tx.outputs;
  W.contents w

(* txid memoization: tx bodies are immutable after construction and the
   protocol recomputes the same txids constantly (every ledger lookup,
   outpoint derivation and pp). The cache key is exactly the data the
   txid depends on — (Input, nLT, Output) — so structurally equal bodies
   share one digest while witness completion ({tx with witnesses = _})
   never misses. Bounded: reset wholesale when full. *)
type body_key = {
  k_inputs : input list;
  k_locktime : int;
  k_outputs : output list;
}

let txid_cache : (body_key, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let txid_cache_max = 1 lsl 16

let txid_uncached (tx : t) : string =
  Daric_crypto.Hash.hash256 (body_serialize tx)

(** txid = H([TX]); 32 bytes. Memoized on the immutable body. The
    cache is domain-local so txid derivation is safe from Dpool
    worker domains. *)
let txid (tx : t) : string =
  let cache = Domain.DLS.get txid_cache in
  let key =
    { k_inputs = tx.inputs; k_locktime = tx.locktime; k_outputs = tx.outputs }
  in
  match Hashtbl.find_opt cache key with
  | Some id -> id
  | None ->
      let id = txid_uncached tx in
      if Hashtbl.length cache >= txid_cache_max then Hashtbl.reset cache;
      Hashtbl.add cache key id;
      id

let outpoint_of (tx : t) (vout : int) : outpoint = { txid = txid tx; vout }

(** [TX] without inputs — the part authorized by ANYPREVOUT sigs
    (the paper's notation ⌊TX⌋ = (nLT, Output)). *)
let floating_body_serialize (tx : t) : string =
  let module W = Daric_util.Byteio.Writer in
  let w = W.create () in
  W.u32 w tx.locktime;
  W.varint w (List.length tx.outputs);
  List.iter
    (fun (o : output) ->
      W.u64 w (Int64.of_int o.value);
      spk_serialize w o.spk)
    tx.outputs;
  W.contents w

(* ------------------------------------------------------------------ *)
(* Weight accounting (Appendix H conventions).                        *)

let output_size (o : output) : int =
  (* 8 value bytes + 1 script-length byte + script *)
  match o.spk with
  | P2wpkh _ -> 8 + 1 + 22 (* OP_0 <20-byte hash>, 31 total *)
  | P2wsh _ -> 8 + 1 + 34 (* OP_0 <32-byte hash>, 43 total *)
  | Raw s -> 8 + 1 + Script.size s
  | Op_return -> 8 + 1 + 1

(** Non-witness serialized size in bytes: version(4) + input count(1) +
    41 per input (36 outpoint + 1 empty scriptSig length + 4 sequence) +
    output count(1) + outputs + locktime(4). *)
let non_witness_size (tx : t) : int =
  4 + 1
  + (41 * List.length tx.inputs)
  + 1
  + List.fold_left (fun acc o -> acc + output_size o) 0 tx.outputs
  + 4

let witness_elt_size = function
  | Data d -> if String.length d <= 1 then 1 else 1 + String.length d
  | Wscript s -> 1 + Script.size s

(** Witness serialized size: 2-byte segwit header plus, per input, a
    1-byte element count and the elements. *)
let witness_size (tx : t) : int =
  2
  + List.fold_left
      (fun acc wit ->
        acc + 1 + List.fold_left (fun a e -> a + witness_elt_size e) 0 wit)
      0 tx.witnesses

(** weight = 4 x non-witness + witness (weight units). *)
let weight (tx : t) : int = (4 * non_witness_size tx) + witness_size tx

(** Virtual size: one vbyte per four weight units, rounded up. *)
let vbytes (tx : t) : int = (weight tx + 3) / 4

let total_output_value (tx : t) : int =
  List.fold_left (fun acc o -> acc + o.value) 0 tx.outputs

let pp ppf (tx : t) =
  Fmt.pf ppf "@[<v>tx %s (nLT=%d, %d in, %d out, %d WU)@]"
    (Daric_util.Hex.short (txid tx))
    tx.locktime (List.length tx.inputs) (List.length tx.outputs) (weight tx)
