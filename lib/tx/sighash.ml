(** SIGHASH computation and flag-carrying signature encodings.

    Three modes are needed by the reproduced schemes:
    - [All]: the signature authorizes inputs, nLockTime and all outputs
      (SIGHASH_ALL — the message is f(TX) over [TX]).
    - [Anyprevout]: the signature does not authorize the inputs, making
      the transaction *floating* (BIP-118 / NOINPUT — the message is
      f~(⌊TX⌋) over (nLT, Output)).
    - [Anyprevout_single]: additionally only the same-index output is
      authorized, allowing fee inputs/outputs to be attached later
      (Section 8, "Fee handling").

    The flag is carried in the last byte of the 73-byte signature
    encoding, mirroring Bitcoin's appended sighash byte. *)

type flag = All | Anyprevout | Anyprevout_single

let flag_byte = function
  | All -> 0x01
  | Anyprevout -> 0x41
  | Anyprevout_single -> 0x43

let flag_of_byte = function
  | 0x01 -> Some All
  | 0x41 -> Some Anyprevout
  | 0x43 -> Some Anyprevout_single
  | _ -> None

(* Fully uncached reference: fresh serialization, fresh tag digest. *)
let message_uncached (flag : flag) (tx : Tx.t) ~(input_index : int) : string =
  let payload =
    match flag with
    | All -> "all/" ^ Tx.body_serialize_uncached tx
    | Anyprevout -> "apo/" ^ Tx.floating_body_serialize tx
    | Anyprevout_single ->
        let o = List.nth tx.outputs input_index in
        let single = Tx.make ~locktime:tx.locktime ~inputs:[] ~outputs:[ o ] () in
        "apos/" ^ Tx.floating_body_serialize single
  in
  Daric_crypto.Hash.tagged_uncached "daric/sighash" payload

(* Zero-copy digest path: the cached body encoding is fed to the
   cached "daric/sighash" midstate as slices — a family's floating
   members (commit/split/revocation sharing ⌊TX⌋ structure) reuse the
   very suffix bytes of the full body, and nothing is concatenated. *)
let message_compute (flag : flag) (tx : Tx.t) ~(input_index : int) : string =
  let parts =
    match flag with
    | All ->
        let body, _ = Tx.body_encoding tx in
        [ ("all/", 0, 4); (body, 0, String.length body) ]
    | Anyprevout ->
        let body, off = Tx.body_encoding tx in
        [ ("apo/", 0, 4); (body, off, String.length body - off) ]
    | Anyprevout_single ->
        let o = List.nth tx.outputs input_index in
        let single = Tx.make ~locktime:tx.locktime ~inputs:[] ~outputs:[ o ] () in
        let body, off = Tx.body_encoding single in
        [ ("apos/", 0, 5); (body, off, String.length body - off) ]
  in
  Daric_crypto.Hash.tagged_parts "daric/sighash" parts

(** Message hashed and signed for a given flag. [input_index] selects
    the authorized output under [Anyprevout_single].

    Memoized in the transaction's own encoding memo (slot 0 = ALL,
    1 = ANYPREVOUT, 2+i = ANYPREVOUT|SINGLE): the same commit/split/
    revocation message is hashed by signer, peer, watchtower and ledger
    alike, and after the first computation each re-derivation is an
    array read — no table lookup, no structural key hashing. *)
let message (flag : flag) (tx : Tx.t) ~(input_index : int) : string =
  let slot =
    match flag with
    | All -> 0
    | Anyprevout -> 1
    | Anyprevout_single -> 2 + input_index
  in
  match Tx.cached_msg tx slot with
  | Some m -> m
  | None ->
      let m = message_compute flag tx ~input_index in
      Tx.cache_msg tx slot m;
      m

(** Sign a transaction for one input; returns the 73-byte flagged
    signature suitable for a witness element. *)
let sign (sk : Daric_crypto.Schnorr.secret_key) (flag : flag) (tx : Tx.t)
    ~(input_index : int) : string =
  let msg = message flag tx ~input_index in
  let s = Daric_crypto.Schnorr.sign_bytes sk msg in
  let b = Bytes.of_string s in
  Bytes.set b (Bytes.length b - 1) (Char.chr (flag_byte flag));
  Bytes.unsafe_to_string b

(** Sign a message directly (already-computed f(TX) / f~(⌊TX⌋)); used by
    protocol code that exchanges signatures on transaction *bodies*
    before the full transaction exists. *)
let sign_message (sk : Daric_crypto.Schnorr.secret_key) (flag : flag)
    (msg : string) : string =
  let s = Daric_crypto.Schnorr.sign_bytes sk msg in
  let b = Bytes.of_string s in
  Bytes.set b (Bytes.length b - 1) (Char.chr (flag_byte flag));
  Bytes.unsafe_to_string b

let verify_message (pk_bytes : string) (msg : string) (sig_bytes : string) : bool =
  Daric_crypto.Schnorr.verify_bytes pk_bytes msg sig_bytes

(** Keyed {!sign_message}: bit-identical signature, with the nonce
    prefix and public key amortized in the context. *)
let sign_message_keyed (kc : Daric_crypto.Keyctx.t) (flag : flag)
    (msg : string) : string =
  let s = Daric_crypto.Schnorr.sign_bytes_keyed kc msg in
  let b = Bytes.of_string s in
  Bytes.set b (Bytes.length b - 1) (Char.chr (flag_byte flag));
  Bytes.unsafe_to_string b

(** Pool-probing {!verify_message}: discharges through the key's
    window table when its context is resident. Same verdict. *)
let verify_message_pooled (pk_bytes : string) (msg : string)
    (sig_bytes : string) : bool =
  Daric_crypto.Schnorr.verify_bytes_pooled pk_bytes msg sig_bytes

(** Full signature check for the script interpreter: extract the flag
    from the signature, compute the matching message over [tx], verify. *)
let check (tx : Tx.t) ~(input_index : int) ~(pk_bytes : string)
    ~(sig_bytes : string) : bool =
  String.length sig_bytes = Daric_crypto.Schnorr.signature_size
  &&
  match flag_of_byte (Char.code sig_bytes.[String.length sig_bytes - 1]) with
  | None -> false
  | Some flag ->
      let msg = message flag tx ~input_index in
      (* pooled: channel keys pinned at open discharge through their
         window tables; unknown keys take the plain path unchanged *)
      Daric_crypto.Schnorr.verify_bytes_pooled pk_bytes msg sig_bytes

type deferred = {
  d_pk : Daric_crypto.Schnorr.public_key;
  d_msg : string;
  d_sig : Daric_crypto.Schnorr.signature;
}

(** Deferred form of {!check}: performs every structural step (flag
    extraction, strict decoding, message selection) but returns the
    decoded triple instead of paying the two-exponentiation verify, so
    a validator can gather triples across inputs and transactions and
    discharge them in one {!Daric_crypto.Schnorr.batch_verify}. [None]
    means the witness is structurally invalid ([check] = false). *)
let check_deferred (tx : Tx.t) ~(input_index : int) ~(pk_bytes : string)
    ~(sig_bytes : string) : deferred option =
  if String.length sig_bytes <> Daric_crypto.Schnorr.signature_size then None
  else
    match flag_of_byte (Char.code sig_bytes.[String.length sig_bytes - 1]) with
    | None -> None
    | Some flag -> (
        match
          ( Daric_crypto.Schnorr.decode_public_key pk_bytes,
            Daric_crypto.Schnorr.decode_signature sig_bytes )
        with
        | Some pk, Some sg ->
            Some { d_pk = pk; d_msg = message flag tx ~input_index; d_sig = sg }
        | _ -> None)
