(** Fee handling (Section 8, "Fee handling").

    Daric's revocation (and commit) transactions have a single input
    and a single output; because ANYPREVOUT may be combined with
    SINGLE (BIP 143), a channel party can attach an extra input and a
    change output to the latest revocation transaction right before
    submitting it, leaving the difference to the miners — without
    invalidating the counter-party's pre-signed ANYPREVOUT|SINGLE
    witness on input 0. *)

module Schnorr = Daric_crypto.Schnorr

(** [attach tx ~source ~source_value ~fee ~key] appends the funding
    input [source] (a P2WPKH output of [key] holding [source_value])
    and a change output paying [source_value - fee] back to [key],
    then signs the new input with SIGHASH_ALL. All pre-existing inputs
    must carry ANYPREVOUT|SINGLE signatures for them to stay valid. *)
let attach (tx : Tx.t) ~(source : Tx.outpoint) ~(source_value : int)
    ~(fee : int) ~(key_sk : Schnorr.secret_key) : Tx.t =
  if fee < 0 || fee > source_value then invalid_arg "Fee.attach: bad fee";
  let pk = Schnorr.public_key_of_secret key_sk in
  let change =
    { Tx.value = source_value - fee;
      spk = Tx.P2wpkh (Daric_crypto.Hash.hash160 (Schnorr.encode_public_key pk)) }
  in
  let tx' =
    Tx.make ~locktime:tx.locktime
      ~witnesses:tx.witnesses
      ~inputs:(tx.inputs @ [ Tx.input_of_outpoint source ])
      ~outputs:(tx.outputs @ [ change ])
      ()
  in
  let idx = List.length tx'.inputs - 1 in
  let sg = Sighash.sign key_sk All tx' ~input_index:idx in
  Tx.with_witnesses tx'
    (tx.witnesses @ [ [ Tx.Data sg; Tx.Data (Schnorr.encode_public_key pk) ] ])

(** Fee actually paid by a transaction given the values of its inputs. *)
let paid ~(input_values : int list) (tx : Tx.t) : int =
  List.fold_left ( + ) 0 input_values - Tx.total_output_value tx
