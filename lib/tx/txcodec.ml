(** Binary transaction codec (full encoding, with witnesses) shared by
    the durable-state snapshots ({!Daric_core.Persist}), the
    watchtower record codec and the ledger's accepted-log compaction.

    Headerless: callers own their magic/version framing (the snapshot
    header, the WAL frame, the arena slot). Decoding errors raise
    {!Bad_blob} or {!Daric_util.Byteio.Reader.Truncated}; callers wrap
    them into their own typed errors.

    [Raw] scripts are deliberately not encodable — they exist for
    tests and funding sources only, and a compactor or snapshotter
    must keep such transactions live ({!packable}). *)

module Tx = Tx
module Script = Daric_script.Script
module W = Daric_util.Byteio.Writer
module R = Daric_util.Byteio.Reader
module Intern = Daric_util.Intern

exception Bad_blob of string

let write_spk w (spk : Tx.spk) =
  match spk with
  | Tx.P2wsh h ->
      W.byte w 0;
      W.var_string w h
  | Tx.P2wpkh h ->
      W.byte w 1;
      W.var_string w h
  | Tx.Raw s ->
      W.byte w 2;
      W.var_string w (Script.serialize s)
  | Tx.Op_return -> W.byte w 3

let read_spk r : Tx.spk =
  match R.byte r with
  | 0 -> Tx.P2wsh (Intern.string (R.var_string r))
  | 1 -> Tx.P2wpkh (Intern.string (R.var_string r))
  | 3 -> Tx.Op_return
  | 2 -> raise (Bad_blob "raw scripts are not persisted")
  | _ -> raise (Bad_blob "unknown spk tag")

let write_output w (o : Tx.output) =
  W.u64 w (Int64.of_int o.Tx.value);
  write_spk w o.Tx.spk

let read_output r : Tx.output =
  let value = Int64.to_int (R.u64 r) in
  { Tx.value; spk = read_spk r }

let write_list w f l =
  W.varint w (List.length l);
  List.iter (f w) l

let read_list r f =
  let n = R.varint r in
  List.init n (fun _ -> f r)

let write_opt w f = function
  | None -> W.byte w 0
  | Some v ->
      W.byte w 1;
      f w v

let read_opt r f = match R.byte r with 0 -> None | _ -> Some (f r)

let write_input w (i : Tx.input) =
  W.var_string w i.Tx.prevout.txid;
  W.u32 w i.Tx.prevout.vout;
  W.u32 w i.Tx.sequence

let read_input r : Tx.input =
  let txid = Intern.string (R.var_string r) in
  let vout = R.u32 r in
  let sequence = R.u32 r in
  { Tx.prevout = { Tx.txid; vout }; sequence }

let opcode_tag (op : Script.op) : int =
  match op with
  | Script.If -> 0
  | Notif -> 1
  | Else -> 2
  | Endif -> 3
  | Verify -> 4
  | Return -> 5
  | Dup -> 6
  | Drop -> 7
  | Swap -> 8
  | Size -> 9
  | Equal -> 10
  | Equalverify -> 11
  | Hash160 -> 12
  | Hash256 -> 13
  | Sha256 -> 14
  | Ripemd160 -> 15
  | Checksig -> 16
  | Checksigverify -> 17
  | Checkmultisig -> 18
  | Checkmultisigverify -> 19
  | Cltv -> 20
  | Csv -> 21
  | Push _ | Num _ | Small _ -> raise (Bad_blob "not an opcode")

let opcode_of_tag = function
  | 0 -> Script.If
  | 1 -> Notif
  | 2 -> Else
  | 3 -> Endif
  | 4 -> Verify
  | 5 -> Return
  | 6 -> Dup
  | 7 -> Drop
  | 8 -> Swap
  | 9 -> Size
  | 10 -> Equal
  | 11 -> Equalverify
  | 12 -> Hash160
  | 13 -> Hash256
  | 14 -> Sha256
  | 15 -> Ripemd160
  | 16 -> Checksig
  | 17 -> Checksigverify
  | 18 -> Checkmultisig
  | 19 -> Checkmultisigverify
  | 20 -> Cltv
  | 21 -> Csv
  | _ -> raise (Bad_blob "unknown opcode tag")

let write_witness_elt w (e : Tx.witness_elt) =
  match e with
  | Tx.Data d ->
      W.byte w 0;
      W.var_string w d
  | Tx.Wscript s ->
      W.byte w 1;
      write_list w
        (fun w op ->
          match op with
          | Script.Push d ->
              W.byte w 0;
              W.var_string w d
          | Script.Num v ->
              W.byte w 1;
              W.u32 w v
          | Script.Small v ->
              W.byte w 2;
              W.byte w v
          | other ->
              W.byte w 3;
              W.byte w (opcode_tag other))
        s

let read_witness_elt r : Tx.witness_elt =
  match R.byte r with
  | 0 -> Tx.Data (Intern.string (R.var_string r))
  | 1 ->
      Tx.Wscript
        (read_list r (fun r ->
             match R.byte r with
             | 0 -> Script.Push (Intern.string (R.var_string r))
             | 1 -> Script.Num (R.u32 r)
             | 2 -> Script.Small (R.byte r)
             | 3 -> opcode_of_tag (R.byte r)
             | _ -> raise (Bad_blob "unknown script-op tag")))
  | _ -> raise (Bad_blob "unknown witness tag")

let write_tx w (tx : Tx.t) =
  write_list w write_input tx.Tx.inputs;
  W.u32 w tx.Tx.locktime;
  write_list w write_output tx.Tx.outputs;
  write_list w (fun w wit -> write_list w write_witness_elt wit) tx.Tx.witnesses

let read_tx r : Tx.t =
  let inputs = read_list r read_input in
  let locktime = R.u32 r in
  let outputs = read_list r read_output in
  let witnesses = read_list r (fun r -> read_list r read_witness_elt) in
  Tx.make ~inputs ~locktime ~outputs ~witnesses ()

(** Whether {!write_tx} can round-trip this transaction: [Raw] output
    scripts are not persisted (they have no stable serialization
    contract) — the ledger compactor keeps such entries live. *)
let packable (tx : Tx.t) : bool =
  List.for_all
    (fun (o : Tx.output) -> match o.Tx.spk with Tx.Raw _ -> false | _ -> true)
    tx.Tx.outputs

let encode_tx (tx : Tx.t) : string =
  let w = W.create () in
  write_tx w tx;
  W.contents w

(** Decode a full {!encode_tx} blob (raises on malformed input — the
    arena is process-private, so corruption is a logic error). *)
let decode_tx_exn (blob : string) : Tx.t =
  let r = R.create blob in
  let tx = read_tx r in
  if not (R.at_end r) then raise (Bad_blob "trailing bytes");
  tx

(** Read only the inputs prefix of an {!encode_tx} blob — the
    compacted accepted-log scan oracle needs each entry's prevouts,
    not the whole transaction. *)
let decode_inputs_prefix (blob : string) : Tx.input list =
  read_list (R.create blob) read_input
