(** Binary transaction codec (full, with witnesses), shared by the
    durable-state snapshots, the watchtower record codec and the
    ledger's accepted-log compaction. Headerless — callers own their
    framing. Malformed input raises {!Bad_blob} or
    {!Daric_util.Byteio.Reader.Truncated}; typed-error callers wrap
    them. Decoded strings (txids, hashes, witness data) are interned
    through {!Daric_util.Intern}. *)

module W = Daric_util.Byteio.Writer
module R = Daric_util.Byteio.Reader

exception Bad_blob of string

val write_spk : W.t -> Tx.spk -> unit

val read_spk : R.t -> Tx.spk
(** Raises on [Raw] — bare scripts are not persisted. *)

val write_output : W.t -> Tx.output -> unit
val read_output : R.t -> Tx.output
val write_input : W.t -> Tx.input -> unit
val read_input : R.t -> Tx.input
val write_witness_elt : W.t -> Tx.witness_elt -> unit
val read_witness_elt : R.t -> Tx.witness_elt

val write_list : W.t -> (W.t -> 'a -> unit) -> 'a list -> unit
val read_list : R.t -> (R.t -> 'a) -> 'a list
val write_opt : W.t -> (W.t -> 'a -> unit) -> 'a option -> unit
val read_opt : R.t -> (R.t -> 'a) -> 'a option

val opcode_tag : Daric_script.Script.op -> int
(** Raises {!Bad_blob} on [Push]/[Num]/[Small] (not plain opcodes). *)

val opcode_of_tag : int -> Daric_script.Script.op

val write_tx : W.t -> Tx.t -> unit
val read_tx : R.t -> Tx.t

val packable : Tx.t -> bool
(** Whether {!write_tx} round-trips this transaction ([Raw] output
    scripts are not persisted — keep such entries live). *)

val encode_tx : Tx.t -> string
val decode_tx_exn : string -> Tx.t

val decode_inputs_prefix : string -> Tx.input list
(** Only the inputs of an {!encode_tx} blob (the compacted scan oracle
    needs prevouts, not the whole transaction). *)
