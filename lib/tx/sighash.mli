(** SIGHASH computation and flag-carrying signature encodings.

    - [All]: authorizes inputs, nLockTime and all outputs (the paper's
      f(TX) over \[TX\]).
    - [Anyprevout]: does not authorize inputs, making the transaction
      floating (BIP-118; f~ over (nLT, Output)).
    - [Anyprevout_single]: additionally authorizes only the same-index
      output, enabling fee attachment (Section 8).

    The flag rides in the last byte of the 73-byte signature. *)

type flag = All | Anyprevout | Anyprevout_single

val flag_byte : flag -> int
val flag_of_byte : int -> flag option

val message : flag -> Tx.t -> input_index:int -> string
(** The message hashed and signed for a given flag. Memoized per flag
    on the body parts that flag authorizes (bodies are immutable). *)

val message_uncached : flag -> Tx.t -> input_index:int -> string
(** Recompute without the memo table (reference for property tests). *)

val sign :
  Daric_crypto.Schnorr.secret_key -> flag -> Tx.t -> input_index:int -> string
(** Sign a transaction for one input; 73-byte flagged signature. *)

val sign_message : Daric_crypto.Schnorr.secret_key -> flag -> string -> string
(** Sign an already-computed {!message} — protocol code exchanges
    signatures on transaction bodies before the final tx exists. *)

val verify_message : string -> string -> string -> bool
(** [verify_message pk_bytes msg sig_bytes]. *)

val sign_message_keyed : Daric_crypto.Keyctx.t -> flag -> string -> string
(** {!sign_message} through a per-key context — bit-identical output
    with the key-dependent work amortized across the channel. *)

val verify_message_pooled : string -> string -> string -> bool
(** {!verify_message} through {!Daric_crypto.Schnorr.verify_pooled}:
    keyed when the key's context is pool-resident, plain otherwise. *)

val check : Tx.t -> input_index:int -> pk_bytes:string -> sig_bytes:string -> bool
(** Full signature check for the script interpreter: extract the flag,
    recompute the matching message over the spending transaction,
    verify. *)

type deferred = {
  d_pk : Daric_crypto.Schnorr.public_key;
  d_msg : string;
  d_sig : Daric_crypto.Schnorr.signature;
}
(** A decoded, structurally validated signature check whose
    exponentiations have been postponed for batch verification. *)

val check_deferred :
  Tx.t -> input_index:int -> pk_bytes:string -> sig_bytes:string ->
  deferred option
(** {!check} minus the group exponentiations: [None] iff the check is
    structurally invalid; [Some d] must later be discharged with
    {!Daric_crypto.Schnorr.batch_verify} (or [verify]) on [d]. *)
