(** Input-script validation: checks that a transaction's witness
    satisfies the condition of the output it spends. *)

module Script = Daric_script.Script
module Interp = Daric_script.Interp

type error =
  | Missing_witness
  | Witness_script_mismatch  (** revealed script does not hash to the program *)
  | Pubkey_hash_mismatch
  | Malformed_witness
  | Unspendable
  | Script_error of Interp.error

let error_to_string = function
  | Missing_witness -> "missing witness"
  | Witness_script_mismatch -> "witness script does not match P2WSH program"
  | Pubkey_hash_mismatch -> "public key does not match P2WPKH program"
  | Malformed_witness -> "malformed witness"
  | Unspendable -> "output is unspendable"
  | Script_error e -> "script error: " ^ Interp.error_to_string e

(** [verify_input tx ~input_index ~spent ~input_age] checks the witness
    of input [input_index] against the spent output's condition.
    [input_age] is the number of rounds since [spent] was recorded
    (for OP_CHECKSEQUENCEVERIFY). *)
let verify_input_gen ~(check_sig : pk_bytes:string -> sig_bytes:string -> bool)
    (tx : Tx.t) ~(input_index : int) ~(spent : Tx.output) ~(input_age : int) :
    (unit, error) result =
  let witness =
    match List.nth_opt tx.witnesses input_index with
    | Some w -> w
    | None -> []
  in
  let ctx = { Interp.check_sig; tx_locktime = tx.locktime; input_age } in
  let run script stack =
    match Interp.run ctx script stack with
    | Ok () -> Ok ()
    | Error e -> Error (Script_error e)
  in
  (* The witness lists elements bottom-to-top; the interpreter's initial
     stack has the last-listed data element on top. *)
  let stack_of_data elts =
    List.fold_left
      (fun acc e ->
        match (acc, e) with
        | Error _, _ -> acc
        | Ok st, Tx.Data d -> Ok (d :: st)
        | Ok _, Tx.Wscript _ -> Error Malformed_witness)
      (Ok []) elts
  in
  match spent.spk with
  | Tx.Op_return -> Error Unspendable
  | Tx.Raw script -> (
      match stack_of_data witness with
      | Error e -> Error e
      | Ok stack -> run script stack)
  | Tx.P2wpkh h -> (
      match witness with
      | [ Tx.Data sg; Tx.Data pk ] ->
          if not (String.equal (Daric_crypto.Hash.hash160 pk) h) then
            Error Pubkey_hash_mismatch
          else run [ Script.Push pk; Script.Checksig ] [ sg ]
      | _ -> Error Malformed_witness)
  | Tx.P2wsh h -> (
      match List.rev witness with
      | Tx.Wscript script :: rest_rev ->
          if not (String.equal (Script.hash script) h) then
            Error Witness_script_mismatch
          else (
            match stack_of_data (List.rev rest_rev) with
            | Error e -> Error e
            | Ok stack -> run script stack)
      | _ -> Error Missing_witness)

let verify_input (tx : Tx.t) ~(input_index : int) ~(spent : Tx.output)
    ~(input_age : int) : (unit, error) result =
  verify_input_gen tx ~input_index ~spent ~input_age
    ~check_sig:(fun ~pk_bytes ~sig_bytes ->
      Sighash.check tx ~input_index ~pk_bytes ~sig_bytes)

(** Like {!verify_input}, but signature checks are *deferred*: each
    structurally valid check is handed to [defer] and assumed to
    succeed; structurally invalid ones still fail inline. The caller
    must discharge every deferred triple (batch verification) and fall
    back to {!verify_input} when the batch rejects — an assumed-true
    check can only ever make this pass *more* often, never less, so
    [Ok] + an accepting batch implies the undeferred run accepts. *)
let verify_input_deferred (tx : Tx.t) ~(input_index : int)
    ~(spent : Tx.output) ~(input_age : int)
    ~(defer : Sighash.deferred -> unit) : (unit, error) result =
  verify_input_gen tx ~input_index ~spent ~input_age
    ~check_sig:(fun ~pk_bytes ~sig_bytes ->
      match Sighash.check_deferred tx ~input_index ~pk_bytes ~sig_bytes with
      | Some d ->
          defer d;
          true
      | None -> false)
