(** Watchtower-handoff world: Daric's constant-size tower state vs
    Lightning's per-state secrets, under adversarial notification
    withholding.

    After every channel update the channel notifies its watchtower
    over a *best-effort* link (a {!Daric_chain.Network} the adversary
    may {!Daric_chain.Network.drop} from — unlike the guaranteed
    party-to-party F_GDC links). The adversary may withhold any
    *intermediate* notification; the final handoff is assumed
    delivered (a tower that never heard of the channel's latest state
    at all cannot be expected to defend it — this is the documented
    boundary of the claim). Then a corrupted party publishes any
    revoked state, both parties stay offline, and only the tower can
    react before the cheater's CSV window opens.

    - Daric: the tower keeps one revocation — the latest delivered.
      Its nLockTime covers every earlier state (ANYPREVOUT rebinding),
      so dropping intermediate notifications changes nothing: the
      sweep is clean. This is the Table-1 O(1) tower-storage claim,
      mechanized.
    - Lightning: the tower needs the per-state secret of the exact
      revoked commitment. Withholding the intermediate secret and
      publishing that state leaves the tower helpless — the cheater
      sweeps the revoked to_local after the CSV delay. The checker
      reports this as a punish-or-refund violation; {!Matrix} files it
      as an *expected finding* for Lightning, not an error. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Ledger = Daric_chain.Ledger
module Network = Daric_chain.Network
module Keys = Daric_core.Keys
module Schnorr = Daric_crypto.Schnorr
module Dm = Daric_staticcheck.Daricmodel
module Ln = Daric_schemes.Lightning

type variant = Daric | Lightning

let variant_name = function Daric -> "daric" | Lightning -> "lightning"

type cfg = {
  variant : variant;
  n_states : int;
  rel_lock : int;
  delta : int;
  horizon : int;
}

let default_cfg =
  { variant = Daric; n_states = 3; rel_lock = 4; delta = 2; horizon = 14 }

let deadline (c : cfg) : int = c.rel_lock + c.delta + 3

(* Protocol-specific hooks: how the cheater publishes a stale state,
   how the tower punishes one it knows about, and how the cheater
   sweeps an unpunished one. *)
type kit = {
  k_stale : int;  (** stale states, indexes [0 .. k_stale-1] *)
  k_cash : int;
  k_victim_pkh : string;
  k_commit : int -> Tx.t;  (** the cheater's state-[j] commit *)
  k_punish : known:int list -> int -> Tx.t -> Tx.t option;
      (** tower reaction to published state [j], given the delivered
          notification indexes *)
  k_sweep : int -> Tx.t -> Tx.t;  (** cheater's post-CSV sweep *)
}

type world = {
  cfg : cfg;
  mutable ledger : Ledger.t;
  mutable net : int Network.t;  (** notifications carry a state index *)
  mutable kit : kit;
  mutable tower_known : int list;
  mutable published : (int * string) option;  (** state, commit txid *)
  mutable publish_round : int;
  mutable punish_posted : bool;
  mutable sweep_posted : bool;
  mutable history : int list;  (** applied action codes, newest first *)
}

type action =
  | Tick
  | Withhold of int  (** drop the in-flight notification for state [j] *)
  | Cheat of int  (** publish the revoked state-[j] commit *)

let action_to_string = function
  | Tick -> "tick"
  | Withhold j -> Printf.sprintf "withhold(%d)" j
  | Cheat j -> Printf.sprintf "cheat(%d)" j

(* ------------------------------------------------------------------ *)
(* Variant kits.                                                       *)

let pkh (pk : Schnorr.public_key) : string =
  Daric_crypto.Hash.hash160 (Keys.enc pk)

(* Daric: the channel is the Daricmodel closure, the cheater is Bob,
   the victim Alice. The tower holds revocations for the delivered
   indexes and punishes with the highest one covering the published
   state. The cheater's sweep is the rebound stale split. *)
let daric_kit (cfg : cfg) (ledger : Ledger.t) : kit =
  let m = Dm.build ~n_states:cfg.n_states ~rel_lock:cfg.rel_lock () in
  let fund = List.find (fun (e : Dm.entry) -> e.Dm.kind = Dm.Fund) m.Dm.entries in
  Ledger.record ledger fund.Dm.tx;
  let entry k =
    List.find (fun (e : Dm.entry) -> e.Dm.kind = k) m.Dm.entries
  in
  let commit j = entry (Dm.Commit (Keys.Bob, j)) in
  { k_stale = cfg.n_states - 1;
    k_cash = m.Dm.cash;
    k_victim_pkh = pkh (Keys.pub m.Dm.keys_a).Keys.main_pk;
    k_commit = (fun j -> (commit j).Dm.tx);
    k_punish =
      (fun ~known j _published ->
        (* Constant tower state: only the highest delivered revocation
           is retained; it covers state j iff its index >= j. *)
        match List.filter (fun r -> r >= j) known with
        | [] -> None
        | covering ->
            let r = List.fold_left max 0 covering in
            Some (Closure_world.rebind_revoke (entry (Dm.Revoke r)) (commit j)));
    k_sweep =
      (fun j published ->
        ignore published;
        Closure_world.rebind_split (entry (Dm.Split j)) (commit j)) }

(* Lightning: a real penalty channel; updates shift value from A to B,
   so every old state favors the cheater A. The tower guards victim B
   and needs the exact per-state secret; the cheater's sweep rebuilds
   the *historical* to_local script (the current one no longer
   matches an old commit). *)
let lightning_kit (cfg : cfg) (ledger : Ledger.t) : kit =
  let rng = Daric_util.Rng.create ~seed:23 in
  let bal_a = 600_000 and bal_b = 400_000 in
  let ch = Ln.create ~rel_lock:cfg.rel_lock ~ledger ~rng ~bal_a ~bal_b () in
  let stale = cfg.n_states - 1 in
  let old_commits =
    List.init stale (fun k ->
        let shift = 100_000 * (k + 1) in
        let old_a, _old_b =
          Ln.update ch ~bal_a:(bal_a - shift) ~bal_b:(bal_b + shift)
        in
        old_a)
  in
  let secret_of j =
    (List.find (fun (r : Ln.revocation) -> r.Ln.index = j)
       ch.Ln.b.Ln.received_secrets)
      .Ln.secret
  in
  { k_stale = stale;
    k_cash = ch.Ln.cash;
    k_victim_pkh = pkh ch.Ln.b.Ln.keys.Ln.main.Keys.pk;
    k_commit = (fun j -> List.nth old_commits j);
    k_punish =
      (fun ~known j published ->
        if List.mem j known then
          Ln.penalty ch ~victim:`B ~published ~revoked_index:j
        else None);
    k_sweep =
      (fun j published ->
        (* The revoked commit's to_local script carries that state's
           revocation key, recoverable from the revealed secret. *)
        let script =
          Ln.to_local_script
            ~revocation_pk:(Schnorr.public_key_of_secret (secret_of j))
            ~delayed_pk:ch.Ln.a.Ln.keys.Ln.delayed.Keys.pk
            ~rel_lock:cfg.rel_lock
        in
        let v = (List.nth published.Tx.outputs 0).Tx.value in
        let body =
          Tx.make
            ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of published 0) ]
            ~outputs:
              [ { Tx.value = v;
                  spk = Tx.P2wpkh (pkh ch.Ln.a.Ln.keys.Ln.main.Keys.pk) } ]
            ()
        in
        let sg =
          Sighash.sign ch.Ln.a.Ln.keys.Ln.delayed.Keys.sk All body
            ~input_index:0
        in
        Tx.with_witnesses body [ [ Tx.Data sg; Tx.Data ""; Tx.Wscript script ] ]) }

(* ------------------------------------------------------------------ *)
(* World.                                                              *)

let round (w : world) : int = Ledger.height w.ledger

let reset (w : world) : unit =
  let ledger = Ledger.create ~delta:w.cfg.delta () in
  let kit =
    match w.cfg.variant with
    | Daric -> daric_kit w.cfg ledger
    | Lightning -> lightning_kit w.cfg ledger
  in
  let net = Network.create () in
  (* Every update's tower notification is in flight at round 0; the
     adversary chooses which intermediate ones reach the tower. *)
  for j = 0 to kit.k_stale - 1 do
    Network.send net ~round:0 ~sender:"channel" ~recipient:"tower" j
  done;
  w.ledger <- ledger;
  w.net <- net;
  w.kit <- kit;
  w.tower_known <- [];
  w.published <- None;
  w.publish_round <- -1;
  w.punish_posted <- false;
  w.sweep_posted <- false;
  w.history <- []

let create (cfg : cfg) : world =
  let w =
    { cfg;
      ledger = Ledger.create ~delta:cfg.delta ();
      net = Network.create ();
      kit =
        { k_stale = 0; k_cash = 0; k_victim_pkh = ""; k_commit = (fun _ -> Tx.empty);
          k_punish = (fun ~known:_ _ _ -> None); k_sweep = (fun _ tx -> tx) };
      tower_known = []; published = None; publish_round = -1;
      punish_posted = false; sweep_posted = false; history = [] }
  in
  reset w;
  w

let resolved (w : world) : bool =
  match w.published with
  | None -> false
  | Some (_, txid) -> (
      match Ledger.recorded_round_of w.ledger txid with
      | None -> false
      | Some _ ->
          Ledger.spender_of w.ledger { Tx.txid; vout = 0 } <> None)

let victim_payout (w : world) : int =
  Ledger.fold_utxos w.ledger
    (fun _op (u : Ledger.utxo) acc ->
      match u.Ledger.output.Tx.spk with
      | Tx.P2wpkh h when h = w.kit.k_victim_pkh ->
          acc + u.Ledger.output.Tx.value
      | _ -> acc)
    0

(* ------------------------------------------------------------------ *)
(* Step relation.                                                      *)

let actions (w : world) : action list =
  let r = round w in
  if r >= w.cfg.horizon || (resolved w && Ledger.pending_due w.ledger = [])
  then []
  else
    let in_flight j =
      List.exists
        (fun (_, (e : int Network.envelope)) -> e.Network.payload = j)
        (Network.in_flight w.net)
    in
    let withholds =
      (* Intermediate notifications only: the final handoff is assumed
         delivered. *)
      List.filter_map
        (fun j -> if in_flight j then Some (Withhold j) else None)
        (List.init (max 0 (w.kit.k_stale - 1)) (fun j -> j))
    in
    let cheats =
      if w.published = None && r <= w.cfg.horizon - deadline w.cfg then
        List.init w.kit.k_stale (fun j -> Cheat j)
      else []
    in
    (Tick :: withholds) @ cheats

let tower_and_cheater_react (w : world) : unit =
  List.iter
    (fun (e : int Network.envelope) ->
      if not (List.mem e.Network.payload w.tower_known) then
        w.tower_known <- e.Network.payload :: w.tower_known)
    (Network.deliver w.net ~round:(round w) ~recipient:"tower");
  match w.published with
  | None -> ()
  | Some (j, txid) -> (
      match Ledger.recorded_round_of w.ledger txid with
      | None -> ()
      | Some rc when Ledger.is_unspent w.ledger { Tx.txid; vout = 0 } ->
          let published = w.kit.k_commit j in
          (* Tower first: punish as soon as the stale commit lands. *)
          if not w.punish_posted then begin
            match w.kit.k_punish ~known:w.tower_known j published with
            | Some p when Ledger.validate w.ledger p = Ok () ->
                Ledger.post w.ledger p ~delay:0;
                w.punish_posted <- true
            | _ -> ()
          end;
          (* Cheater: sweep once the CSV window opens. *)
          if (not w.sweep_posted) && round w - rc >= w.cfg.rel_lock then begin
            let s = w.kit.k_sweep j published in
            match Ledger.validate w.ledger s with
            | Ok () ->
                Ledger.post w.ledger s ~delay:0;
                w.sweep_posted <- true
            | Error _ -> ()
          end
      | Some _ -> ())

let apply_raw (w : world) (a : action) : unit =
  match a with
  | Tick ->
      ignore (Ledger.tick w.ledger);
      tower_and_cheater_react w
  | Withhold j ->
      ignore
        (Network.drop w.net (fun (e : int Network.envelope) ->
             e.Network.payload = j))
  | Cheat j ->
      let tx = w.kit.k_commit j in
      Ledger.post w.ledger tx ~delay:0;
      w.published <- Some (j, Tx.txid tx);
      w.publish_round <- round w

let encode (a : action) : int =
  match a with Tick -> 0 | Withhold j -> 100 + j | Cheat j -> 200 + j

let decode (c : int) : action =
  if c >= 200 then Cheat (c - 200)
  else if c >= 100 then Withhold (c - 100)
  else Tick

let apply (w : world) (a : action) : unit =
  w.history <- encode a :: w.history;
  apply_raw w a

(* ------------------------------------------------------------------ *)
(* Invariants, fingerprint, snapshot.                                  *)

let check (w : world) : Mcheck.violation list =
  match w.published with
  | None -> []
  | Some (j, _) ->
      if resolved w then begin
        let pay = victim_payout w in
        if pay < w.kit.k_cash then
          [ { Mcheck.invariant = Mcheck.punish_or_refund;
              detail =
                Printf.sprintf
                  "revoked state %d resolved with the victim holding %d of \
                   %d (tower knew [%s])"
                  j pay w.kit.k_cash
                  (String.concat ","
                     (List.rev_map string_of_int w.tower_known)) } ]
        else []
      end
      else if round w > w.publish_round + deadline w.cfg then
        [ { Mcheck.invariant = Mcheck.bounded_closure;
            detail =
              Printf.sprintf
                "revoked state %d published at round %d, unresolved at %d" j
                w.publish_round (round w) } ]
      else []

let fingerprint (w : world) : string =
  let b = Buffer.create 256 in
  let int i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b ';'
  in
  let str s =
    Buffer.add_string b s;
    Buffer.add_char b ';'
  in
  str (variant_name w.cfg.variant);
  int (round w);
  int (match w.published with None -> -1 | Some (j, _) -> j);
  int w.publish_round;
  List.iter
    (fun fl -> Buffer.add_char b (if fl then '1' else '0'))
    [ w.punish_posted; w.sweep_posted ];
  List.iter int (List.sort compare w.tower_known);
  Buffer.add_char b '|';
  List.iter
    (fun (_, (e : int Network.envelope)) -> int e.Network.payload)
    (Network.in_flight w.net);
  Buffer.add_char b '|';
  List.iter
    (fun (r, tx) ->
      int r;
      str (Tx.txid tx))
    (Ledger.accepted w.ledger);
  List.iter
    (fun (due, txs) ->
      int due;
      List.iter (fun tx -> str (Tx.txid tx)) txs)
    (Ledger.pending_due w.ledger);
  Mcheck.digest b

type snap = int list

let snapshot (w : world) : snap = w.history

let restore (w : world) (s : snap) : unit =
  reset w;
  List.iter (fun c -> apply_raw w (decode c)) (List.rev s);
  w.history <- s

(* ------------------------------------------------------------------ *)

let tower_known (w : world) : int list = List.sort compare w.tower_known

let model ?(cfg = default_cfg) () :
    (module Mcheck.MODEL with type world = world) =
  (module struct
    let name = "tower/" ^ variant_name cfg.variant

    type nonrec world = world
    type nonrec action = action
    type nonrec snap = snap

    let action_to_string = action_to_string
    let init () = create cfg
    let actions = actions
    let apply = apply
    let fingerprint = fingerprint
    let check = check
    let snapshot = snapshot
    let restore = restore
  end)
