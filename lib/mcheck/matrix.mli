(** Registry-wide sweeps, expected-findings bookkeeping and the
    known-bug corpus gate (see the implementation header for the
    policy: clean worlds expect silence, the Lightning tower expects
    its punish-or-refund finding, every seeded mutation must be
    rediscovered). *)

module Dm = Daric_staticcheck.Daricmodel
module Diag = Daric_staticcheck.Diag
module Flowchart = Daric_core.Flowchart

type entry = {
  model : string;
  expected : string list;  (** invariant names that must fire *)
  result : Mcheck.result;
  seconds : float;  (** wall-clock exploration time *)
}

val unexpected : entry -> Mcheck.counterexample list
(** Violations outside the expected list. *)

val missing : entry -> string list
(** Expected invariants that did not fire. *)

val ok : entry -> bool
(** No unexpected violations and nothing missing — an expected
    finding that fails to surface is a failure too (the model lost
    its witness). *)

val run_entry :
  expected:string list -> config:Mcheck.config ->
  (module Mcheck.MODEL) -> entry

(** {1 Expectations} *)

val expected_violation : Dm.mutation -> string
(** The Table-1 invariant each seeded closure defect surfaces as. *)

val tower_expected : Tower_world.variant -> string list

(** {1 Sweeps} *)

val clean_closure_config : Mcheck.config
(** Exhaustive single pass: depth 18, 300k states. *)

val mutant_closure_config : Mcheck.config
(** Iterative deepening to depth 14 — shortest counterexamples. *)

val lifecycle_config : Mcheck.config
(** Scheme worlds: depth 7, 100k states, single pass. *)

val tower_config : Mcheck.config
(** Tower worlds: iterative deepening to depth 16 — deep enough for
    the long punish/sweep and bounded-closure witnesses. *)

val closure_clean : ?config:Mcheck.config -> unit -> entry
val mutation_matrix :
  ?config:Mcheck.config -> unit -> (Dm.mutation * entry) list
val scheme_sweep : ?config:Mcheck.config -> unit -> entry list
val scheme_one : ?config:Mcheck.config -> string -> entry option
(** [None] when the name is not in {!Daric_schemes.Registry}. *)

val tower_sweep : ?config:Mcheck.config -> unit -> entry list
(** Daric then Lightning variant. *)

(** {1 Reporting} *)

val to_diags : entry -> Diag.t list
(** Expected findings at [Info], unexpected or missing at [Error],
    all under {!Diag.Scenario_failure}. *)

val closure_flowchart :
  ?cfg:Closure_world.cfg -> title:string -> string list ->
  Flowchart.t option
(** Replay a closure-world counterexample trace and chart the
    transactions actually accepted on the ledger; [None] if the trace
    does not replay under [cfg]. *)

val pp_entry : Format.formatter -> entry -> unit
