(** Generic lifecycle world over any registered {!Scheme_intf.SCHEME}.

    Where {!Closure_world} explores the Daric transaction graph
    transaction-by-transaction, this world explores the *scheme
    interface*: every interleaving of bounded update sequences, idle
    settle rounds, and the three closure scenarios (collaborative,
    dishonest old-state publication, unilateral force close), for any
    scheme in the {!Daric_schemes.Registry}. The Table-1 predicates
    are checked on the reported {!Scheme_intf.outcome} and on the
    chain itself:

    - bounded-closure — the outcome resolves within
      [4 * rel_lock + 12] rounds;
    - punish-or-refund — a dishonest close ends punished, or with the
      stale state overridden on-chain (eltoo-style schemes refund at
      the latest state instead of punishing);
    - no-honest-loss — once resolved, the unspent descendants of the
      funding output still carry the full channel cash (no value
      drained or burned on any closure path);
    - scenario-failure — any lifecycle step returning a typed error.

    Snapshot/restore is replay-based: a snapshot is the action
    history, and restore rebuilds a fresh environment (same seeds) and
    replays it — schemes need no checkpointing support of their own. *)

module I = Daric_schemes.Scheme_intf
module H = Daric_schemes.Harness
module Registry = Daric_schemes.Registry
module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger

type close = [ `Collaborative | `Dishonest | `Force ]
type action = Update | Settle | Close of close

let action_to_string = function
  | Update -> "update"
  | Settle -> "settle"
  | Close `Collaborative -> "close:coop"
  | Close `Dishonest -> "close:dishonest"
  | Close `Force -> "close:force"

type cfg = {
  max_updates : int;
  max_settles : int;
  delta : int;
  config : I.config;
}

let default_cfg =
  { max_updates = 3; max_settles = 2; delta = 1; config = I.default_config }

(* The closure deadline every scheme's own dispute loop already honours
   (see the per-scheme [run_until] caps). *)
let rounds_bound (c : cfg) : int = (4 * c.config.I.rel_lock) + 12

(* An opened channel with its scheme packaged existentially. *)
module type INSTANCE = sig
  module S : I.SCHEME

  val ch : S.t
end

type world = {
  cfg : cfg;
  scheme : (module I.SCHEME);
  name : string;
  mutable env : I.env;
  mutable inst : (module INSTANCE) option;
  mutable updates_done : int;
  mutable settles_done : int;
  mutable outcome : (close * I.outcome) option;
  mutable failure : I.error option;
  mutable history : action list;  (** newest first — the snapshot *)
}

let open_instance (w : world) : unit =
  let module S = (val w.scheme : I.SCHEME) in
  match S.open_channel w.env w.cfg.config with
  | Ok ch ->
      w.inst <-
        Some
          (module struct
            module S = S

            let ch = ch
          end : INSTANCE)
  | Error e -> w.failure <- Some e

let reset (w : world) : unit =
  w.env <- I.make_env ~delta:w.cfg.delta ();
  w.inst <- None;
  w.updates_done <- 0;
  w.settles_done <- 0;
  w.outcome <- None;
  w.failure <- None;
  w.history <- [];
  open_instance w

let create (scheme : (module I.SCHEME)) (cfg : cfg) : world =
  let module S = (val scheme : I.SCHEME) in
  let w =
    { cfg; scheme; name = S.name;
      env = I.make_env ~delta:cfg.delta ();
      inst = None; updates_done = 0; settles_done = 0;
      outcome = None; failure = None; history = [] }
  in
  open_instance w;
  w

let sn (w : world) : int =
  match w.inst with
  | None -> 0
  | Some (module Inst) -> Inst.S.sn Inst.ch

(* ------------------------------------------------------------------ *)
(* Step relation.                                                      *)

let actions (w : world) : action list =
  if w.outcome <> None || w.failure <> None then []
  else
    match w.inst with
    | None -> []
    | Some _ ->
        (if w.updates_done < w.cfg.max_updates then [ Update ] else [])
        @ (if w.settles_done < w.cfg.max_settles then [ Settle ] else [])
        @ [ Close `Collaborative ]
        @ (if sn w >= 1 then [ Close `Dishonest ] else [])
        @ [ Close `Force ]

let apply_raw (w : world) (a : action) : unit =
  match (a, w.inst) with
  | _, None -> ()
  | Update, Some (module Inst) -> (
      w.updates_done <- w.updates_done + 1;
      let bal_a, bal_b = H.balance_at w.cfg.config w.updates_done in
      match Inst.S.update Inst.ch ~bal_a ~bal_b with
      | Ok () -> ()
      | Error e -> w.failure <- Some e)
  | Settle, Some _ ->
      w.settles_done <- w.settles_done + 1;
      I.settle w.env 1
  | Close c, Some (module Inst) -> (
      let run =
        match c with
        | `Collaborative -> Inst.S.collaborative_close
        | `Dishonest -> Inst.S.dishonest_close
        | `Force -> Inst.S.force_close
      in
      match run Inst.ch with
      | Ok o -> w.outcome <- Some (c, o)
      | Error e -> w.failure <- Some e)

let apply (w : world) (a : action) : unit =
  w.history <- a :: w.history;
  apply_raw w a

(* ------------------------------------------------------------------ *)
(* Invariants.                                                         *)

(* Sum of the unspent on-chain descendants of [op]: follow spenders
   breadth-first, counting the leaves still in the UTXO set. *)
let rec descendant_value (ledger : Ledger.t) (op : Tx.outpoint) : int =
  match Ledger.spender_of ledger op with
  | None -> (
      match Ledger.find_utxo ledger op with
      | Some u -> u.Ledger.output.Tx.value
      | None -> 0)
  | Some sp ->
      List.fold_left ( + ) 0
        (List.mapi
           (fun i _ -> descendant_value ledger (Tx.outpoint_of sp i))
           sp.Tx.outputs)

let check (w : world) : Mcheck.violation list =
  match (w.failure, w.outcome, w.inst) with
  | Some e, _, _ ->
      [ { Mcheck.invariant = Mcheck.scenario_failure;
          detail = I.error_to_string e } ]
  | None, Some (c, o), Some (module Inst) ->
      let vs = ref [] in
      let add invariant detail =
        vs := { Mcheck.invariant; detail } :: !vs
      in
      if not o.I.resolved then
        add Mcheck.bounded_closure
          (Printf.sprintf "%s close did not resolve" (action_to_string (Close c)))
      else if o.I.rounds > rounds_bound w.cfg then
        add Mcheck.bounded_closure
          (Printf.sprintf "%s close took %d rounds (bound %d)"
             (action_to_string (Close c))
             o.I.rounds (rounds_bound w.cfg));
      if
        c = `Dishonest && o.I.resolved
        && (not o.I.punished)
        && not (List.mem I.Overridden o.I.trace)
      then
        add Mcheck.punish_or_refund
          "old state published, neither punished nor overridden";
      if o.I.resolved then begin
        let total = w.cfg.config.I.bal_a + w.cfg.config.I.bal_b in
        let v = descendant_value w.env.I.ledger (Inst.S.funding Inst.ch) in
        if v < total then
          add Mcheck.no_honest_loss
            (Printf.sprintf
               "funding descendants hold %d of %d after resolution" v total)
      end;
      List.rev !vs
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Fingerprint and replay-based snapshot.                              *)

let fingerprint (w : world) : string =
  let b = Buffer.create 512 in
  let int i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b ';'
  in
  let str s =
    Buffer.add_string b s;
    Buffer.add_char b ';'
  in
  str w.name;
  int w.updates_done;
  int w.settles_done;
  int (sn w);
  (match w.outcome with
  | None -> str "open"
  | Some (c, o) ->
      str (action_to_string (Close c));
      int (if o.I.punished then 1 else 0);
      int (if o.I.resolved then 1 else 0);
      int o.I.rounds;
      List.iter (fun e -> str (I.event_to_string e)) o.I.trace);
  (match w.failure with
  | None -> ()
  | Some e -> str (I.error_to_string e));
  Buffer.add_char b '|';
  int (Ledger.height w.env.I.ledger);
  List.iter
    (fun (r, tx) ->
      int r;
      str (Tx.txid tx))
    (Ledger.accepted w.env.I.ledger);
  Mcheck.digest b

type snap = action list

let snapshot (w : world) : snap = w.history

let restore (w : world) (s : snap) : unit =
  reset w;
  List.iter (apply_raw w) (List.rev s);
  w.history <- s

(* ------------------------------------------------------------------ *)

let outcome (w : world) : (close * I.outcome) option = w.outcome
let failure (w : world) : I.error option = w.failure
let env (w : world) : I.env = w.env

let model ?(cfg = default_cfg) (scheme : (module I.SCHEME)) :
    (module Mcheck.MODEL with type world = world) =
  let module S = (val scheme : I.SCHEME) in
  (module struct
    let name = "scheme/" ^ S.name

    type nonrec world = world
    type nonrec action = action
    type nonrec snap = snap

    let action_to_string = action_to_string
    let init () = create scheme cfg
    let actions = actions
    let apply = apply
    let fingerprint = fingerprint
    let check = check
    let snapshot = snapshot
    let restore = restore
  end)

let model_by_name ?(cfg = default_cfg) (name : string) :
    (module Mcheck.MODEL with type world = world) option =
  Option.map (fun s -> model ~cfg s) (Registry.find name)
