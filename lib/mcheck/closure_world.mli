(** Adversarial closure world over the real Daric transaction graph.

    Packages the {!Daric_staticcheck.Daricmodel} closure (genuine
    keys, signatures and scripts) as a {!Mcheck.MODEL}: Bob — the
    bounded adversary — may publish any of his commits (revoked or
    latest) with any publication delay up to Δ, race his split against
    Alice's revocation, and knock Alice offline for a bounded number
    of rounds; Alice runs the honest per-round monitor (punish a
    revoked commit with the latest covering revocation, otherwise
    enforce the split; both rebound onto the published commit by
    ANYPREVOUT signature re-completion). The environment may also
    initiate a collaborative close or Alice's unilateral close, so
    every closure path of the paper's Table 1 is in the state space.

    Invariants checked in every state ({!Mcheck.punish_or_refund},
    {!Mcheck.no_honest_loss}, {!Mcheck.bounded_closure}): a published
    revoked state must leave the honest party the whole channel cash;
    an honest resolution must pay each party at least its latest-state
    balance; any initiated close must resolve the funding output
    within [rel_lock + max_offline + delta + 3] rounds.

    The clean graph passes at the default bounds; each
    {!Daric_staticcheck.Daricmodel.mutation} is rediscovered as a
    violation with a minimized trace (the mutation matrix of
    {!Matrix}). *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Dm = Daric_staticcheck.Daricmodel

type cfg = {
  n_states : int;
  rel_lock : int;
  delta : int;
  max_offline : int;  (** longest crash, in missed rounds *)
  horizon : int;  (** last ledger round explored *)
  mutate : Dm.mutation option;
}

val default_cfg : cfg
(** [n_states = 2], [rel_lock = 4], [delta = 2], [max_offline = 1],
    [horizon = 16], no mutation. Δ = 2 gives the adversary a real
    delay choice (the ledger clamps delays 0 and 1 to the same due
    round); [max_offline = rel_lock - delta - 1] is the largest crash
    the clean protocol provably tolerates; [n_states = 2] makes the
    single retained revocation the critical one so every seeded
    mutation is observable. *)

val deadline : cfg -> int
(** The bounded-closure deadline, [rel_lock + max_offline + delta + 3]
    rounds from the first close-initiating action. *)

type world

type action =
  | Tick  (** advance the ledger one round; Alice reacts if online *)
  | Bob_commit of int * int  (** publish commit of state [i], delay [d] *)
  | Bob_split of int  (** publish the split for Bob's commit, delay [d] *)
  | Alice_close  (** Alice publishes her latest commit *)
  | Coop_close  (** both parties publish the collaborative close *)
  | Crash of int  (** Alice misses the next [k] rounds *)

val action_to_string : action -> string

val create : cfg -> world

val model :
  ?cfg:cfg -> ?name:string -> unit ->
  (module Mcheck.MODEL with type world = world)
(** The world as a checkable model. [name] defaults to
    ["daric-closure"], suffixed with the mutation name when [cfg]
    seeds one. *)

(** {1 ANYPREVOUT rebinding}

    Splits and revocations are signed ANYPREVOUT over
    (locktime, outputs): re-completing the floating transaction
    against another commit's outpoint and script needs only the two
    witness signatures, no keys. Shared with {!Tower_world}. *)

val rebind_split : Dm.entry -> Dm.entry -> Tx.t
(** [rebind_split split commit] attaches [split] to [commit]'s
    output 0 through the split (ELSE) branch. *)

val rebind_revoke : Dm.entry -> Dm.entry -> Tx.t
(** [rebind_revoke revoke commit] attaches [revoke] to [commit]'s
    output 0 through the revocation (IF) branch. *)

(** {1 Observation} (tests and trace rendering) *)

val round : world -> int
val resolved : world -> bool
(** Funding output spent and, for a unilateral close, the commit's
    output spent too. *)

val stale_published : world -> bool
val payouts : world -> int * int
(** Final P2WPKH holdings of (Alice, Bob)'s main keys. *)

val cash : world -> int
val ledger : world -> Ledger.t
val funding : world -> Tx.outpoint
