(** Bounded explicit-state model checker core: depth-first search with
    fingerprint deduplication, iterative deepening, a state budget,
    and greedy counterexample minimization. See the interface for the
    soundness caveats of bounded exploration. *)

type violation = { invariant : string; detail : string }

let punish_or_refund = "punish-or-refund"
let bounded_closure = "bounded-closure"
let no_honest_loss = "no-honest-loss"
let scenario_failure = "scenario-failure"

module type MODEL = sig
  val name : string

  type world
  type action
  type snap

  val action_to_string : action -> string
  val init : unit -> world
  val actions : world -> action list
  val apply : world -> action -> unit
  val fingerprint : world -> string
  val check : world -> violation list
  val snapshot : world -> snap
  val restore : world -> snap -> unit
end

type config = { max_depth : int; max_states : int; iterative : bool }

let default_config = { max_depth = 18; max_states = 200_000; iterative = true }

type counterexample = { violation : violation; trace : string list }

type result = {
  model : string;
  visited : int;
  transitions : int;
  depth : int;
  truncated : bool;
  counterexamples : counterexample list;
  visited_set : (string, unit) Hashtbl.t;
}

let digest (b : Buffer.t) : string =
  Daric_util.Intern.string (Daric_crypto.Hash.hash256 (Buffer.contents b))

(* ---------------- replay ---------------- *)

let replay (type w) (module M : MODEL with type world = w)
    (trace : string list) : w option =
  let w = M.init () in
  let step name =
    match
      List.find_opt (fun a -> M.action_to_string a = name) (M.actions w)
    with
    | None -> false
    | Some a ->
        M.apply w a;
        true
  in
  if List.for_all step trace then Some w else None

let violates (module M : MODEL) ~(invariant : string)
    (trace : string list) : bool =
  match replay (module M) trace with
  | None -> false
  | Some w -> List.exists (fun v -> v.invariant = invariant) (M.check w)

(* ---------------- counterexample minimization ---------------- *)

(* Greedy deletion to a fixpoint: each round tries to drop every
   position in turn; a deletion survives iff the remaining trace still
   replays (every action enabled where demanded) to a state violating
   the same invariant. O(len^2) replays — traces are bounded by the
   depth bound, so this is cheap. *)
let minimize (module M : MODEL) ~(invariant : string)
    (trace : string list) : string list =
  let drop_nth l n = List.filteri (fun i _ -> i <> n) l in
  let rec fixpoint t =
    let len = List.length t in
    let rec try_from n =
      if n >= len then t
      else
        let t' = drop_nth t n in
        if violates (module M) ~invariant t' then fixpoint t'
        else try_from (n + 1)
    in
    try_from 0
  in
  if violates (module M) ~invariant trace then fixpoint trace else trace

(* ---------------- exploration ---------------- *)

(* One depth-bounded DFS pass. [visited] maps fingerprint to the
   largest remaining depth already explored from that state: a state
   reached again with no more fuel than before cannot uncover anything
   new and is pruned; reached with *more* fuel it is re-expanded (the
   standard fix that keeps depth-bounded memoized DFS exhaustive). *)
let run_pass (module M : MODEL) ~(bound : int) ~(max_states : int)
    ~(transitions : int ref)
    ~(found : (string, violation * string list) Hashtbl.t) :
    (string, unit) Hashtbl.t * int * bool =
  let visited : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref 0 in
  let truncated = ref false in
  let w = M.init () in
  let rec dfs depth_left trace =
    if !truncated then ()
    else begin
      incr states;
      if !states > max_states then truncated := true
      else begin
        List.iter
          (fun (v : violation) ->
            if not (Hashtbl.mem found v.invariant) then
              Hashtbl.add found v.invariant (v, List.rev trace))
          (M.check w);
        let fp = M.fingerprint w in
        let prev = Hashtbl.find_opt visited fp in
        let expand =
          depth_left > 0
          && (match prev with Some d -> depth_left > d | None -> true)
        in
        (match prev with
        | Some d when d >= depth_left -> ()
        | _ -> Hashtbl.replace visited fp depth_left);
        if expand then
          List.iter
            (fun a ->
              if not !truncated then begin
                incr transitions;
                let s = M.snapshot w in
                M.apply w a;
                dfs (depth_left - 1) (M.action_to_string a :: trace);
                M.restore w s
              end)
            (M.actions w)
      end
    end
  in
  dfs bound [];
  let set = Hashtbl.create (Hashtbl.length visited) in
  Hashtbl.iter (fun fp _ -> Hashtbl.replace set fp ()) visited;
  (set, !states, !truncated)

let explore ?(config = default_config) (module M : MODEL) : result =
  let transitions = ref 0 in
  let found : (string, violation * string list) Hashtbl.t =
    Hashtbl.create 4
  in
  let max_depth = max 1 config.max_depth in
  let depths =
    if config.iterative then List.init max_depth (fun i -> i + 1)
    else [ max_depth ]
  in
  let rec loop = function
    | [] -> assert false
    | d :: rest ->
        let set, _states, truncated =
          run_pass (module M) ~bound:d ~max_states:config.max_states
            ~transitions ~found
        in
        if Hashtbl.length found > 0 || truncated || rest = [] then
          (set, d, truncated)
        else loop rest
  in
  let set, depth, truncated = loop depths in
  let counterexamples =
    Hashtbl.fold (fun _ (v, trace) acc -> (v, trace) :: acc) found []
    |> List.sort (fun ((a : violation), _) (b, _) ->
           compare a.invariant b.invariant)
    |> List.map (fun (v, trace) ->
           { violation = v;
             trace = minimize (module M) ~invariant:v.invariant trace })
  in
  { model = M.name;
    visited = Hashtbl.length set;
    transitions = !transitions;
    depth;
    truncated;
    counterexamples;
    visited_set = set }

let contains (r : result) (fp : string) : bool = Hashtbl.mem r.visited_set fp

(* ---------------- rendering ---------------- *)

let pp_counterexample fmt (c : counterexample) =
  Fmt.pf fmt "@[<v2>%s: %s@,%a@]" c.violation.invariant c.violation.detail
    (Fmt.list ~sep:Fmt.cut (fun fmt (i, a) -> Fmt.pf fmt "%2d. %s" (i + 1) a))
    (List.mapi (fun i a -> (i, a)) c.trace)

let pp_result fmt (r : result) =
  Fmt.pf fmt "@[<v>%s: %d state(s), %d transition(s), depth %d%s — %s@]"
    r.model r.visited r.transitions r.depth
    (if r.truncated then " (budget hit)" else "")
    (match r.counterexamples with
    | [] -> "no violations"
    | cs -> Fmt.str "%d violation(s)" (List.length cs));
  match r.counterexamples with
  | [] -> ()
  | cs ->
      List.iter (fun c -> Fmt.pf fmt "@,%a" pp_counterexample c) cs
