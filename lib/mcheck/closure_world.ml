(** Adversarial closure world for the Daric transaction graph.

    The world drives the {!Daric_staticcheck.Daricmodel} closure — the
    real funding/commit/split/revocation transactions, with genuine
    keys and signatures — against a {!Daric_chain.Ledger} under a
    bounded adversary: Bob may publish any of his commits (including
    revoked ones) with any publication delay up to Δ, race his own
    split against Alice's revocation, and crash Alice for a bounded
    number of rounds; Alice follows the honest reaction rule (punish a
    revoked commit with a rebound revocation, otherwise enforce the
    split). The checker's Table-1 invariants are evaluated on the final
    UTXO set:

    - punish-or-refund — a revoked commit resolving on-chain leaves
      the honest party with the whole channel cash;
    - no-honest-loss — an honest closure pays each party at least its
      latest-state balance;
    - bounded-closure — once any close is initiated, the funding
      output resolves within [rel_lock + max_offline + Δ + 3] rounds.

    Rebinding floating transactions needs no keys: splits and
    revocations are ANYPREVOUT-signed over (locktime, outputs), so the
    two witness signatures are extracted and re-completed against the
    published commit's outpoint and script. *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys
module Txs = Daric_core.Txs
module Dm = Daric_staticcheck.Daricmodel

type cfg = {
  n_states : int;
  rel_lock : int;
  delta : int;
  max_offline : int;  (** longest crash, in missed rounds *)
  horizon : int;  (** last ledger round explored *)
  mutate : Dm.mutation option;
}

(* Defaults chosen so every timing class is distinguishable:
   [delta = 2] gives the adversary a real delay choice (the ledger
   clamps delay 0 and 1 to the same due round), [rel_lock = 4] keeps
   the clean revocation race winnable even through a crash
   ([max_offline <= rel_lock - delta - 1]), and [n_states = 2] makes
   the single retained revocation the critical one, so every seeded
   mutation of the closure graph is observable. *)
let default_cfg =
  { n_states = 2; rel_lock = 4; delta = 2; max_offline = 1; horizon = 16;
    mutate = None }

let deadline (c : cfg) : int = c.rel_lock + c.max_offline + c.delta + 3

(* Close-initiating actions are only enabled early enough that their
   [deadline] verdict falls inside the horizon. *)
let close_window (c : cfg) : int = c.horizon - deadline c - 2

type world = {
  cfg : cfg;
  m : Dm.model;
  ledger : Ledger.t;
  fund_op : Tx.outpoint;
  pkh_a : string;
  pkh_b : string;
  mutable bob_commit : (int * string) option;
      (** state and txid of the commit Bob posted *)
  mutable bob_split_posted : bool;
  mutable alice_closed : bool;
  mutable coop_posted : bool;
  mutable crash_used : bool;
  mutable offline_until : int;
      (** Alice reacts only at rounds strictly above this *)
  mutable close_attempt : int option;
      (** round of the first close-initiating action *)
  mutable reacted : string list;  (** txids Alice has already posted *)
}

type action =
  | Tick
  | Bob_commit of int * int  (** state, publication delay *)
  | Bob_split of int  (** publication delay *)
  | Alice_close
  | Coop_close
  | Crash of int  (** rounds Alice stays offline *)

let action_to_string = function
  | Tick -> "tick"
  | Bob_commit (i, d) -> Printf.sprintf "bob-commit(%d,+%d)" i d
  | Bob_split d -> Printf.sprintf "bob-split(+%d)" d
  | Alice_close -> "alice-close"
  | Coop_close -> "coop-close"
  | Crash k -> Printf.sprintf "crash(%d)" k

(* ------------------------------------------------------------------ *)
(* Entry lookup and ANYPREVOUT rebinding.                              *)

let commit_entry (w : world) (role : Keys.role) (i : int) : Dm.entry option =
  List.find_opt
    (fun (e : Dm.entry) -> e.Dm.kind = Dm.Commit (role, i))
    w.m.Dm.entries

let split_entry (w : world) (i : int) : Dm.entry option =
  List.find_opt
    (fun (e : Dm.entry) -> e.Dm.kind = Dm.Split i)
    w.m.Dm.entries

let fin_entry (w : world) : Dm.entry option =
  List.find_opt (fun (e : Dm.entry) -> e.Dm.kind = Dm.Fin_split) w.m.Dm.entries

(* The latest retained revocation covering state [i]: its nLockTime
   (s0 + r, r >= i) satisfies the commit script's CLTV for every
   state <= r, the storage argument of the paper's Section 8. *)
let covering_revoke (w : world) (i : int) : Dm.entry option =
  List.filter_map
    (fun (e : Dm.entry) ->
      match e.Dm.kind with Dm.Revoke r when r >= i -> Some (r, e) | _ -> None)
    w.m.Dm.entries
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> function [] -> None | (_, e) :: _ -> Some e

(* Splits and revocations are completed with the 5-element witness
   [dummy; sig1; sig2; branch-selector; script]. *)
let witness_sigs (tx : Tx.t) : string * string =
  match tx.Tx.witnesses with
  | [ [ Tx.Data _; Tx.Data s1; Tx.Data s2; Tx.Data _; Tx.Wscript _ ] ] ->
      (s1, s2)
  | _ -> invalid_arg "Closure_world.witness_sigs: unexpected witness shape"

let rebind_split (sp : Dm.entry) (target : Dm.entry) : Tx.t =
  let sig_a, sig_b = witness_sigs sp.Dm.tx in
  Txs.complete_split sp.Dm.tx
    ~commit_outpoint:(Tx.outpoint_of target.Dm.tx 0)
    ~commit_script:(Option.get target.Dm.script)
    ~sig_a ~sig_b

let rebind_revoke (rv : Dm.entry) (target : Dm.entry) : Tx.t =
  let sig1, sig2 = witness_sigs rv.Dm.tx in
  Txs.complete_revocation rv.Dm.tx
    ~commit_outpoint:(Tx.outpoint_of target.Dm.tx 0)
    ~commit_script:(Option.get target.Dm.script)
    ~sig1 ~sig2

(* ------------------------------------------------------------------ *)
(* World construction and observation.                                 *)

let create (cfg : cfg) : world =
  let m =
    Dm.build ~n_states:cfg.n_states ~rel_lock:cfg.rel_lock ?mutate:cfg.mutate
      ()
  in
  let ledger = Ledger.create ~delta:cfg.delta () in
  let fund =
    List.find (fun (e : Dm.entry) -> e.Dm.kind = Dm.Fund) m.Dm.entries
  in
  Ledger.record ledger fund.Dm.tx;
  let pkh pk = Daric_crypto.Hash.hash160 (Keys.enc pk) in
  let pa = Keys.pub m.Dm.keys_a and pb = Keys.pub m.Dm.keys_b in
  { cfg; m; ledger;
    fund_op = Tx.outpoint_of fund.Dm.tx 0;
    pkh_a = pkh pa.Keys.main_pk;
    pkh_b = pkh pb.Keys.main_pk;
    bob_commit = None; bob_split_posted = false; alice_closed = false;
    coop_posted = false; crash_used = false; offline_until = -1;
    close_attempt = None; reacted = [] }

let round (w : world) : int = Ledger.height w.ledger
let ledger (w : world) : Ledger.t = w.ledger
let funding (w : world) : Tx.outpoint = w.fund_op
let cash (w : world) : int = w.m.Dm.cash

(* The funding output resolved: spent by the collaborative close, or by
   a commit whose own output has been spent (split or revocation). *)
let resolved (w : world) : bool =
  match Ledger.spender_of w.ledger w.fund_op with
  | None -> false
  | Some sp -> (
      match fin_entry w with
      | Some fe when Tx.txid sp = Tx.txid fe.Dm.tx -> true
      | _ -> Ledger.spender_of w.ledger (Tx.outpoint_of sp 0) <> None)

let stale_published (w : world) : bool =
  List.exists
    (fun (e : Dm.entry) ->
      match e.Dm.kind with
      | Dm.Commit (_, i) ->
          i < w.cfg.n_states - 1
          && Ledger.recorded_round_of w.ledger (Tx.txid e.Dm.tx) <> None
      | _ -> false)
    w.m.Dm.entries

(* Final P2WPKH holdings of each party's main key. *)
let payouts (w : world) : int * int =
  Ledger.fold_utxos w.ledger
    (fun _op (u : Ledger.utxo) (a, b) ->
      match u.Ledger.output.Tx.spk with
      | Tx.P2wpkh h when h = w.pkh_a -> (a + u.Ledger.output.Tx.value, b)
      | Tx.P2wpkh h when h = w.pkh_b -> (a, b + u.Ledger.output.Tx.value)
      | _ -> (a, b))
    (0, 0)

(* ------------------------------------------------------------------ *)
(* Honest reaction.                                                    *)

(* Alice's per-round monitor: for every on-chain commit whose output is
   still unspent, post the first enforceable response — the covering
   revocation if the commit is revoked (and hers to punish: revocation
   signatures only fit Bob's commit scripts), otherwise the rebound
   split. Candidates are validated before posting, so a not-yet-mature
   CSV simply retries next round; a candidate posted once is never
   reposted. *)
let alice_react (w : world) : unit =
  List.iter
    (fun (e : Dm.entry) ->
      match e.Dm.kind with
      | Dm.Commit (role, i)
        when Ledger.recorded_round_of w.ledger (Tx.txid e.Dm.tx) <> None
             && Ledger.is_unspent w.ledger (Tx.outpoint_of e.Dm.tx 0) ->
          let rev_cands =
            if role = Keys.Bob && i < w.cfg.n_states - 1 then
              match covering_revoke w i with
              | Some rv -> [ rebind_revoke rv e ]
              | None -> []
            else []
          in
          let split_cands =
            match split_entry w i with
            | Some sp -> [ rebind_split sp e ]
            | None -> []
          in
          let try_post tx =
            let txid = Tx.txid tx in
            (not (List.mem txid w.reacted))
            &&
            match Ledger.validate w.ledger tx with
            | Ok () ->
                Ledger.post w.ledger tx ~delay:0;
                w.reacted <- txid :: w.reacted;
                true
            | Error _ -> false
          in
          ignore (List.exists try_post (rev_cands @ split_cands))
      | _ -> ())
    w.m.Dm.entries

(* ------------------------------------------------------------------ *)
(* The step relation.                                                  *)

let actions (w : world) : action list =
  let r = round w in
  let res = resolved w in
  if r >= w.cfg.horizon || (res && Ledger.pending_due w.ledger = []) then []
  else
    let cw = close_window w.cfg in
    let delays = if w.cfg.delta > 0 then [ 0; w.cfg.delta ] else [ 0 ] in
    let funding_live = Ledger.is_unspent w.ledger w.fund_op in
    let bob_commits =
      if w.bob_commit = None && funding_live && r <= cw then
        List.concat_map
          (fun i -> List.map (fun d -> Bob_commit (i, d)) delays)
          (List.init w.cfg.n_states (fun i -> i))
      else []
    in
    let bob_splits =
      match w.bob_commit with
      | Some (_, txid) when not w.bob_split_posted -> (
          match Ledger.recorded_round_of w.ledger txid with
          | Some rc when Ledger.is_unspent w.ledger { Tx.txid; vout = 0 } ->
              List.filter_map
                (fun d ->
                  if r + max d 1 >= rc + w.cfg.rel_lock then
                    Some (Bob_split d)
                  else None)
                delays
          | _ -> [])
      | _ -> []
    in
    let alice =
      if (not w.alice_closed) && funding_live && r <= cw
         && r > w.offline_until
      then [ Alice_close ]
      else []
    in
    let coop =
      if (not w.coop_posted) && funding_live && r <= cw then [ Coop_close ]
      else []
    in
    let crash =
      if (not w.crash_used) && r > w.offline_until then
        List.init w.cfg.max_offline (fun k -> Crash (k + 1))
      else []
    in
    (Tick :: bob_commits) @ bob_splits @ alice @ coop @ crash

let apply (w : world) (a : action) : unit =
  let note_close () =
    if w.close_attempt = None then w.close_attempt <- Some (round w)
  in
  match a with
  | Tick ->
      ignore (Ledger.tick w.ledger);
      if round w > w.offline_until then alice_react w
  | Bob_commit (i, d) -> (
      match commit_entry w Keys.Bob i with
      | Some e ->
          note_close ();
          Ledger.post w.ledger e.Dm.tx ~delay:d;
          w.bob_commit <- Some (i, Tx.txid e.Dm.tx)
      | None -> ())
  | Bob_split d -> (
      w.bob_split_posted <- true;
      match w.bob_commit with
      | None -> ()
      | Some (i, _) -> (
          match (commit_entry w Keys.Bob i, split_entry w i) with
          | Some ce, Some sp -> Ledger.post w.ledger (rebind_split sp ce) ~delay:d
          | _ -> ()))
  | Alice_close -> (
      match commit_entry w Keys.Alice (w.cfg.n_states - 1) with
      | Some e ->
          note_close ();
          Ledger.post w.ledger e.Dm.tx ~delay:0;
          w.alice_closed <- true
      | None -> ())
  | Coop_close -> (
      match fin_entry w with
      | Some e ->
          note_close ();
          Ledger.post w.ledger e.Dm.tx ~delay:0;
          w.coop_posted <- true
      | None -> ())
  | Crash k ->
      w.crash_used <- true;
      w.offline_until <- round w + k

(* ------------------------------------------------------------------ *)
(* Fingerprint, invariants, snapshot.                                  *)

let fingerprint (w : world) : string =
  let b = Buffer.create 512 in
  let int i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b ';'
  in
  let str s =
    Buffer.add_string b s;
    Buffer.add_char b ';'
  in
  int (round w);
  int w.offline_until;
  int (match w.close_attempt with None -> -1 | Some r -> r);
  int (match w.bob_commit with None -> -1 | Some (i, _) -> i);
  List.iter
    (fun fl -> Buffer.add_char b (if fl then '1' else '0'))
    [ w.bob_split_posted; w.alice_closed; w.coop_posted; w.crash_used ];
  Buffer.add_char b '|';
  List.iter
    (fun (r, tx) ->
      int r;
      str (Tx.txid tx))
    (Ledger.accepted w.ledger);
  Buffer.add_char b '|';
  List.iter
    (fun (due, txs) ->
      int due;
      List.iter (fun tx -> str (Tx.txid tx)) txs)
    (Ledger.pending_due w.ledger);
  Buffer.add_char b '|';
  List.iter str w.reacted;
  Mcheck.digest b

let check (w : world) : Mcheck.violation list =
  if resolved w then begin
    let pay_a, pay_b = payouts w in
    if stale_published w then
      if pay_a < w.m.Dm.cash then
        [ { Mcheck.invariant = Mcheck.punish_or_refund;
            detail =
              Printf.sprintf
                "revoked state resolved without punishment: honest party \
                 holds %d of %d"
                pay_a w.m.Dm.cash } ]
      else []
    else
      let bal_a = (w.m.Dm.cash / 2) - (1000 * (w.cfg.n_states - 1)) in
      let bal_b = w.m.Dm.cash - bal_a in
      if pay_a < bal_a || pay_b < bal_b then
        [ { Mcheck.invariant = Mcheck.no_honest_loss;
            detail =
              Printf.sprintf
                "settled at %d/%d but the latest state entitles %d/%d"
                pay_a pay_b bal_a bal_b } ]
      else []
  end
  else
    match w.close_attempt with
    | Some r0 when round w > r0 + deadline w.cfg ->
        [ { Mcheck.invariant = Mcheck.bounded_closure;
            detail =
              Printf.sprintf
                "close initiated at round %d still unresolved at round %d \
                 (bound %d)"
                r0 (round w) (deadline w.cfg) } ]
    | _ -> []

type snap = {
  s_ledger : Ledger.checkpoint;
  s_bob_commit : (int * string) option;
  s_bob_split_posted : bool;
  s_alice_closed : bool;
  s_coop_posted : bool;
  s_crash_used : bool;
  s_offline_until : int;
  s_close_attempt : int option;
  s_reacted : string list;
}

let snapshot (w : world) : snap =
  { s_ledger = Ledger.checkpoint w.ledger;
    s_bob_commit = w.bob_commit;
    s_bob_split_posted = w.bob_split_posted;
    s_alice_closed = w.alice_closed;
    s_coop_posted = w.coop_posted;
    s_crash_used = w.crash_used;
    s_offline_until = w.offline_until;
    s_close_attempt = w.close_attempt;
    s_reacted = w.reacted }

let restore (w : world) (s : snap) : unit =
  Ledger.rollback w.ledger s.s_ledger;
  w.bob_commit <- s.s_bob_commit;
  w.bob_split_posted <- s.s_bob_split_posted;
  w.alice_closed <- s.s_alice_closed;
  w.coop_posted <- s.s_coop_posted;
  w.crash_used <- s.s_crash_used;
  w.offline_until <- s.s_offline_until;
  w.close_attempt <- s.s_close_attempt;
  w.reacted <- s.s_reacted

(* ------------------------------------------------------------------ *)

let model ?(cfg = default_cfg) ?name () :
    (module Mcheck.MODEL with type world = world) =
  let mname =
    match name with
    | Some n -> n
    | None -> (
        match cfg.mutate with
        | None -> "daric-closure"
        | Some mu -> "daric-closure/" ^ Dm.mutation_name mu)
  in
  (module struct
    let name = mname

    type nonrec world = world
    type nonrec action = action
    type nonrec snap = snap

    let action_to_string = action_to_string
    let init () = create cfg
    let actions = actions
    let apply = apply
    let fingerprint = fingerprint
    let check = check
    let snapshot = snapshot
    let restore = restore
  end)
