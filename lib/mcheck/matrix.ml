(** Registry-wide sweeps and the known-bug corpus gate.

    Each sweep runs {!Mcheck.explore} over a family of worlds and
    compares what fired against what is *expected* to fire:

    - the clean Daric closure world and every registered scheme's
      lifecycle world expect no violations;
    - the Daric tower world expects none even under notification
      withholding, while the Lightning tower world is *expected* to
      lose punish-or-refund when an intermediate secret is withheld —
      a documented finding, not an error;
    - every seeded {!Daric_staticcheck.Daricmodel.mutation} must be
      rediscovered as its mapped invariant violation (the mutation
      matrix): a mutation the checker misses is a gate failure.

    Entries convert to {!Daric_staticcheck.Diag} diagnostics (expected
    findings at [Info], everything unexpected or missing at [Error])
    and minimized closure traces render as {!Daric_core.Flowchart}
    graphs of the actually-executed closure. *)

module Dm = Daric_staticcheck.Daricmodel
module Diag = Daric_staticcheck.Diag
module Flowchart = Daric_core.Flowchart
module Registry = Daric_schemes.Registry

type entry = {
  model : string;
  expected : string list;  (** invariant names that must fire *)
  result : Mcheck.result;
  seconds : float;
}

let unexpected (e : entry) : Mcheck.counterexample list =
  List.filter
    (fun (c : Mcheck.counterexample) ->
      not (List.mem c.Mcheck.violation.Mcheck.invariant e.expected))
    e.result.Mcheck.counterexamples

let missing (e : entry) : string list =
  List.filter
    (fun inv ->
      not
        (List.exists
           (fun (c : Mcheck.counterexample) ->
             c.Mcheck.violation.Mcheck.invariant = inv)
           e.result.Mcheck.counterexamples))
    e.expected

let ok (e : entry) : bool = unexpected e = [] && missing e = []

let run_entry ~(expected : string list) ~(config : Mcheck.config)
    (m : (module Mcheck.MODEL)) : entry =
  let t0 = Unix.gettimeofday () in
  let result = Mcheck.explore ~config m in
  { model = result.Mcheck.model; expected; result;
    seconds = Unix.gettimeofday () -. t0 }

(* ------------------------------------------------------------------ *)
(* Expectations.                                                       *)

(* Which Table-1 invariant each seeded closure defect must surface as.
   Defects that break punishment fall to the stale split
   (punish-or-refund); defects that silently change balances surface
   as honest loss; defects that make outputs unspendable or
   unconfirmable strand the close (bounded-closure). *)
let expected_violation : Dm.mutation -> string = function
  | Dm.Drop_revocation -> Mcheck.punish_or_refund
  | Dm.Swap_cltv_params -> Mcheck.bounded_closure
  | Dm.Off_by_one_locktime -> Mcheck.bounded_closure
  | Dm.Orphan_rev_key -> Mcheck.punish_or_refund
  | Dm.Leak_value -> Mcheck.no_honest_loss
  | Dm.Overpay_outputs -> Mcheck.bounded_closure
  | Dm.Mixed_cltv -> Mcheck.bounded_closure
  | Dm.Unbalanced_script -> Mcheck.bounded_closure
  | Dm.Dead_rev_branch -> Mcheck.punish_or_refund
  | Dm.Rev_csv_delay -> Mcheck.punish_or_refund

(* Expected findings for the baseline worlds: the Lightning tower
   cannot defend a state whose secret was withheld — Table 1's O(n)
   tower storage, observed as a genuine violation. *)
let tower_expected : Tower_world.variant -> string list = function
  | Tower_world.Daric -> []
  | Tower_world.Lightning -> [ Mcheck.punish_or_refund ]

(* ------------------------------------------------------------------ *)
(* Sweeps.                                                             *)

let clean_closure_config =
  { Mcheck.max_depth = 18; max_states = 300_000; iterative = false }

let mutant_closure_config =
  { Mcheck.max_depth = 14; max_states = 300_000; iterative = true }

let lifecycle_config =
  { Mcheck.max_depth = 7; max_states = 100_000; iterative = false }

(* The tower world is tiny but its witnesses are long: a Lightning
   sweep needs withhold + cheat + rel_lock ticks + recording, and a
   stranded close only trips bounded-closure [deadline] rounds after
   publication. Explore to the horizon. *)
let tower_config =
  { Mcheck.max_depth = 16; max_states = 200_000; iterative = true }

let closure_clean ?(config = clean_closure_config) () : entry =
  run_entry ~expected:[] ~config
    (module (val Closure_world.model ()) : Mcheck.MODEL)

let mutation_matrix ?(config = mutant_closure_config) () :
    (Dm.mutation * entry) list =
  List.map
    (fun (mu, _rule) ->
      let cfg = { Closure_world.default_cfg with Closure_world.mutate = Some mu } in
      ( mu,
        run_entry ~expected:[ expected_violation mu ] ~config
          (module (val Closure_world.model ~cfg ()) : Mcheck.MODEL) ))
    Dm.all_mutations

let scheme_sweep ?(config = lifecycle_config) () : entry list =
  List.map
    (fun name ->
      match Scheme_world.model_by_name name with
      | Some m -> run_entry ~expected:[] ~config (module (val m) : Mcheck.MODEL)
      | None -> assert false (* names come from the registry itself *))
    (Registry.names ())

let scheme_one ?(config = lifecycle_config) (name : string) : entry option =
  Option.map
    (fun (m : (module Mcheck.MODEL with type world = Scheme_world.world)) ->
      run_entry ~expected:[] ~config (module (val m) : Mcheck.MODEL))
    (Scheme_world.model_by_name name)

let tower_sweep ?(config = tower_config) () : entry list =
  List.map
    (fun variant ->
      let cfg = { Tower_world.default_cfg with Tower_world.variant } in
      run_entry ~expected:(tower_expected variant) ~config
        (module (val Tower_world.model ~cfg ()) : Mcheck.MODEL))
    [ Tower_world.Daric; Tower_world.Lightning ]

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)

let to_diags (e : entry) : Diag.t list =
  let mk severity detail =
    Diag.make ~scheme:e.model ~rule:Diag.Scenario_failure ~severity detail
  in
  List.map
    (fun (c : Mcheck.counterexample) ->
      let expected_one =
        List.mem c.Mcheck.violation.Mcheck.invariant e.expected
      in
      mk
        (if expected_one then Diag.Info else Diag.Error)
        (Printf.sprintf "%s%s: %s [%s]"
           (if expected_one then "expected finding " else "")
           c.Mcheck.violation.Mcheck.invariant
           c.Mcheck.violation.Mcheck.detail
           (String.concat "; " c.Mcheck.trace)))
    e.result.Mcheck.counterexamples
  @ List.map
      (fun inv ->
        mk Diag.Error
          (Printf.sprintf "expected finding %s did not surface" inv))
      (missing e)

(* Replay a closure-world trace and chart the transactions actually
   accepted on the ledger. *)
let closure_flowchart ?(cfg = Closure_world.default_cfg) ~(title : string)
    (trace : string list) : Flowchart.t option =
  let m = Closure_world.model ~cfg () in
  Option.map
    (fun w ->
      Flowchart.of_ledger
        (Closure_world.ledger w)
        ~funding:(Closure_world.funding w)
        ~title)
    (Mcheck.replay
       (module (val m) : Mcheck.MODEL with type world = Closure_world.world)
       trace)

let pp_entry fmt (e : entry) =
  Fmt.pf fmt "@[<v2>%-28s %s — %d state(s), %d transition(s), %.2fs%s@]"
    e.model
    (if ok e then "ok" else "FAIL")
    e.result.Mcheck.visited e.result.Mcheck.transitions e.seconds
    (if e.result.Mcheck.truncated then " (budget hit)" else "")
