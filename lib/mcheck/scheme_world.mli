(** Generic lifecycle world over any registered
    {!Daric_schemes.Scheme_intf.SCHEME}, as a {!Mcheck.MODEL}.

    Explores every interleaving of bounded update sequences, idle
    settle rounds and the three closure scenarios, checking the
    Table-1 predicates on the reported outcome and on the chain:
    bounded closure ([4 * rel_lock + 12] rounds), punish-or-refund for
    dishonest closes (punished, or stale state overridden on-chain),
    value conservation of the funding output's unspent descendants,
    and absence of typed lifecycle failures.

    Snapshot/restore is replay-based — a snapshot is the action
    history, restore rebuilds a fresh same-seed environment and
    replays it — so schemes need no checkpointing support. *)

module I = Daric_schemes.Scheme_intf

type close = [ `Collaborative | `Dishonest | `Force ]

type action =
  | Update  (** next update on the harness balance trajectory *)
  | Settle  (** one idle ledger round *)
  | Close of close  (** terminal *)

val action_to_string : action -> string

type cfg = {
  max_updates : int;
  max_settles : int;
  delta : int;
  config : I.config;
}

val default_cfg : cfg
(** 3 updates, 2 settles, Δ = 1, {!I.default_config}. *)

val rounds_bound : cfg -> int
(** The bounded-closure deadline, [4 * rel_lock + 12] rounds. *)

type world

val create : (module I.SCHEME) -> cfg -> world

val model :
  ?cfg:cfg -> (module I.SCHEME) ->
  (module Mcheck.MODEL with type world = world)

val model_by_name :
  ?cfg:cfg -> string ->
  (module Mcheck.MODEL with type world = world) option
(** Look the scheme up in {!Daric_schemes.Registry}. *)

(** {1 Observation} *)

val sn : world -> int
val outcome : world -> (close * I.outcome) option
val failure : world -> I.error option
val env : world -> I.env
