(** Bounded explicit-state model checker over adversarial channel
    worlds.

    A {!MODEL} packages a mutable world, an explicit enumeration of the
    adversary's (and environment's) next moves, a canonical fingerprint
    for visited-state deduplication, an invariant check, and a
    snapshot/restore pair that lets depth-first search backtrack. The
    explorer drives every interleaving of the world's actions up to a
    depth bound, dedups on fingerprints, stops at a state budget, and
    minimizes the first counterexample per violated invariant by greedy
    trace deletion.

    Soundness caveats of bounded exploration: a clean verdict only
    covers behaviours reachable within the configured depth/budget and
    the world's own parameter bounds (Δ, horizon, crash length); it is
    a bug *finder* with exhaustive coverage of a small world, not a
    proof. Within those bounds the search is exhaustive and
    deterministic — same model, same bounds, same verdicts and visited
    count on every run. *)

(** One invariant violation observed in a state. [invariant] is a
    stable name ("punish-or-refund", "bounded-closure",
    "no-honest-loss", "scenario-failure"); [detail] is free text. *)
type violation = { invariant : string; detail : string }

val punish_or_refund : string
val bounded_closure : string
val no_honest_loss : string
val scenario_failure : string
(** The Table-1 predicate names (plus the lifecycle-failure catch-all)
    used by the bundled worlds. *)

(** A checkable world. [apply] mutates the world in place; the
    explorer brackets it with [snapshot]/[restore]. Models are free to
    implement the pair either incrementally (ledger
    checkpoint/rollback) or by replay from [init]. *)
module type MODEL = sig
  val name : string

  type world
  type action
  type snap

  val action_to_string : action -> string

  val init : unit -> world

  val actions : world -> action list
  (** Enabled moves, in a deterministic order. [\[\]] marks a terminal
      state. *)

  val apply : world -> action -> unit

  val fingerprint : world -> string
  (** Canonical digest of the world state. Equal fingerprints must
      imply identical future behaviour (same enabled actions, same
      reachable violations). *)

  val check : world -> violation list
  (** Invariant violations holding in this state. *)

  val snapshot : world -> snap
  val restore : world -> snap -> unit
end

type config = {
  max_depth : int;  (** longest action sequence explored *)
  max_states : int;  (** state-visit budget; exceeded ⇒ [truncated] *)
  iterative : bool;
      (** iterative deepening (depth 1, 2, … until a violation or
          [max_depth]) — finds short counterexamples; [false] runs a
          single pass at [max_depth] (the clean-sweep configuration) *)
}

val default_config : config
(** depth 18, 200k states, iterative. *)

(** A violation together with the (minimized) action trace reaching
    it from the initial state. *)
type counterexample = { violation : violation; trace : string list }

type result = {
  model : string;
  visited : int;  (** distinct fingerprints at the deepest pass *)
  transitions : int;  (** [apply] calls across all passes *)
  depth : int;  (** depth bound of the last pass run *)
  truncated : bool;  (** a pass hit [max_states] *)
  counterexamples : counterexample list;
      (** one per violated invariant name, shortest-first discovery,
          greedily minimized *)
  visited_set : (string, unit) Hashtbl.t;
      (** fingerprints of the deepest pass (backs {!contains}) *)
}

val explore :
  ?config:config -> (module MODEL) -> result

val contains : result -> string -> bool
(** Was this fingerprint visited during the result's deepest pass?
    (The scripted-trace inclusion differential asks this for every
    prefix of a scenario-engine trace.) *)

val replay :
  (module MODEL with type world = 'w) -> string list -> 'w option
(** Rebuild a world by replaying a trace of action strings from
    [init]; [None] if some action is not enabled (by string equality
    against [actions]) where the trace demands it. *)

val violates :
  (module MODEL) -> invariant:string -> string list -> bool
(** Does replaying this trace end in a state violating [invariant]?
    (The mutation matrix replays hand-written witness traces through
    this before comparing their length against the checker's
    minimized counterexamples.) *)

val minimize :
  (module MODEL) -> invariant:string -> string list -> string list
(** Greedy deletion: drop actions one at a time, keeping a removal
    whenever the remaining trace still replays to a state violating
    [invariant]; repeats until no single deletion survives. *)

val digest : Buffer.t -> string
(** Fingerprint helper: hash a buffer's contents ({!Daric_crypto.Hash}
    double SHA-256) and intern the digest ({!Daric_util.Intern}) so
    the visited set stores one shared instance per distinct state. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_result : Format.formatter -> result -> unit
