(** Watchtower-handoff world under adversarial notification
    withholding, as a {!Mcheck.MODEL}.

    The channel's per-update tower notifications travel over a
    best-effort {!Daric_chain.Network} link; the adversary may
    {!action.Withhold} any *intermediate* notification (the final
    handoff is assumed delivered — a tower that never heard of the
    latest state cannot be expected to defend it), then {!action.Cheat}
    with any revoked state while both parties stay offline. Only the
    tower can react before the cheater's CSV sweep window opens.

    The [Daric] variant retains one revocation — the latest delivered —
    and rebinds it over any published stale commit: every exploration
    is clean, mechanizing the Table-1 O(1) tower-storage claim. The
    [Lightning] variant needs the exact per-state secret; withholding
    it yields a punish-or-refund violation, which {!Matrix} files as an
    *expected finding* rather than an error. *)

type variant = Daric | Lightning

val variant_name : variant -> string

type cfg = {
  variant : variant;
  n_states : int;
  rel_lock : int;
  delta : int;
  horizon : int;
}

val default_cfg : cfg
(** Daric variant, 3 states, [rel_lock = 4], Δ = 2, horizon 14. *)

val deadline : cfg -> int
(** Rounds a published revoked state may stay unresolved:
    [rel_lock + delta + 3]. *)

type world

type action =
  | Tick
  | Withhold of int  (** drop the in-flight notification for state [j] *)
  | Cheat of int  (** publish the revoked state-[j] commit *)

val action_to_string : action -> string

val create : cfg -> world

val model :
  ?cfg:cfg -> unit -> (module Mcheck.MODEL with type world = world)

(** {1 Observation} *)

val round : world -> int
val resolved : world -> bool
val victim_payout : world -> int
val tower_known : world -> int list
(** Notification indexes the tower has received, sorted. *)
