(** Registry of every executable channel scheme, in {!Costmodel.all}
    row order. All table, benchmark, CLI and conformance code iterates
    this list instead of wiring schemes by hand. *)

let all : (module Scheme_intf.SCHEME) list =
  [ (module Lightning.Scheme);
    (module Generalized.Scheme);
    (module Fppw.Scheme);
    (module Cerberus.Scheme);
    (module Outpost.Scheme);
    (module Sleepy.Scheme);
    (module Eltoo.Scheme);
    (module Daric_scheme.Scheme) ]

let name (module S : Scheme_intf.SCHEME) : string = S.name

let names () : string list = List.map name all

let find (n : string) : (module Scheme_intf.SCHEME) option =
  List.find_opt (fun (module S : Scheme_intf.SCHEME) -> S.name = n) all

let find_exn (n : string) : (module Scheme_intf.SCHEME) =
  match find n with
  | Some s -> s
  | None -> invalid_arg ("Registry.find_exn: unknown scheme " ^ n)

(** The scheme's qualitative Table 1 row; every registered scheme has
    one (checked by the conformance suite). *)
let costmodel_row (module S : Scheme_intf.SCHEME) : Costmodel.scheme option =
  List.find_opt (fun (c : Costmodel.scheme) -> c.Costmodel.name = S.name)
    Costmodel.all
