(** Executable eltoo channel [Decker, Russell, Osuntokun 2018].

    Each state i is an (update, settlement) pair shared by both
    parties. Update transactions are floating: their 2-of-2 update-key
    signatures use ANYPREVOUT|SINGLE, so update_i can spend the funding
    output or the output of ANY earlier update_j (j < i) — and several
    channels' updates can be batched into one transaction, which is
    exactly what the Section 6.1 delay attack exploits. Settlement
    transactions are bound to their state by per-state settlement keys
    (derived from a constant-size seed) and gated by the CSV delay T.

    State ordering uses the CLTV(S0+i) prefix of the update output
    script against the spender's nLockTime, like Daric. There is no
    punishment: publishing an old update costs the publisher nothing
    but the fee. Party storage is O(1): the latest update + settlement
    pair and the key seed. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Schnorr = Daric_crypto.Schnorr
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys

type party_keys = {
  main : Keys.keypair;  (** balance payout key *)
  upd : Keys.keypair;  (** static update key *)
  seed : string;  (** derives the per-state settlement keys *)
}

let gen_party_keys (rng : Daric_util.Rng.t) : party_keys =
  { main = Keys.keygen rng; upd = Keys.keygen rng; seed = Daric_util.Rng.bytes rng 16 }

(** Per-state settlement key, derived deterministically from the seed —
    the derivation is what keeps party storage constant. This is the
    one exponentiation per update in Table 3's eltoo row. *)
let settlement_key (k : party_keys) ~(i : int) : Keys.keypair =
  let d = Daric_crypto.Hash.tagged "eltoo/setkey" (k.seed ^ string_of_int i) in
  let sk = 1 + (Daric_crypto.Hash.digest_to_int d mod (Daric_crypto.Group.q - 1)) in
  { Keys.sk; pk = Schnorr.public_key_of_secret sk }

(** Update output script for state i:
    [<S0+i> CLTV DROP
     IF   <T> CSV DROP 2 <setA_i> <setB_i> 2 CHECKMULTISIG   (settlement)
     ELSE 2 <updA> <updB> 2 CHECKMULTISIG                    (later update)
     ENDIF] *)
let update_script ~(s0 : int) ~(i : int) ~(rel_lock : int) ~(ka : party_keys)
    ~(kb : party_keys) : Script.t =
  let set_a = settlement_key ka ~i and set_b = settlement_key kb ~i in
  [ Script.Num (s0 + i); Cltv; Drop; If; Num rel_lock; Csv; Drop; Small 2;
    Push (Keys.enc set_a.Keys.pk); Push (Keys.enc set_b.Keys.pk); Small 2;
    Checkmultisig; Else; Small 2; Push (Keys.enc ka.upd.Keys.pk);
    Push (Keys.enc kb.upd.Keys.pk); Small 2; Checkmultisig; Endif ]

type t = {
  ledger : Ledger.t;
  ka : party_keys;
  kb : party_keys;
  cash : int;
  s0 : int;
  rel_lock : int;
  fund : Tx.t;
  mutable sn : int;
  mutable update_tx : Tx.t;  (** floating: no input, both APO|SINGLE sigs kept *)
  mutable update_sigs : string * string;
  mutable settlement : Tx.t;  (** floating, bound by per-state keys *)
  mutable settlement_sigs : string * string;
  mutable ops_signs : int;
  mutable ops_verifies : int;
  mutable ops_exps : int;
}

(** Floating update transaction body for state i: single output holding
    the channel funds under the state-i update script. *)
let gen_update (t : t) ~(i : int) : Tx.t =
  Tx.make ~locktime:(t.s0 + i) ~inputs:[] ~outputs:[ { Tx.value = t.cash;
          spk =
            Tx.P2wsh
              (Script.hash
                 (update_script ~s0:t.s0 ~i ~rel_lock:t.rel_lock ~ka:t.ka
                    ~kb:t.kb)) } ] ()

let gen_settlement (t : t) ~(theta : Tx.output list) ~(i : int) : Tx.t =
  Tx.make ~locktime:(t.s0 + i) ~inputs:[] ~outputs:theta ()

let balance_state (t : t) ~(bal_a : int) ~(bal_b : int) : Tx.output list =
  Daric_core.Txs.balance_state ~pk_a:t.ka.main.Keys.pk ~pk_b:t.kb.main.Keys.pk
    ~bal_a ~bal_b

let sign_update (t : t) (body : Tx.t) : string * string =
  t.ops_signs <- t.ops_signs + 2;
  ( Sighash.sign t.ka.upd.Keys.sk Anyprevout_single body ~input_index:0,
    Sighash.sign t.kb.upd.Keys.sk Anyprevout_single body ~input_index:0 )

let sign_settlement (t : t) (body : Tx.t) ~(i : int) : string * string =
  t.ops_signs <- t.ops_signs + 2;
  t.ops_exps <- t.ops_exps + 2;
  (* deriving the two per-state settlement keys *)
  let sa = settlement_key t.ka ~i and sb = settlement_key t.kb ~i in
  ( Sighash.sign sa.Keys.sk Anyprevout body ~input_index:0,
    Sighash.sign sb.Keys.sk Anyprevout body ~input_index:0 )

(** Open a channel: publish the funding transaction (2-of-2 on the
    update keys) and establish state 0. [tid_a]/[tid_b] default to
    freshly minted outputs. *)
let create ?(s0 = 500_000_000) ?(rel_lock = 3) ~(ledger : Ledger.t)
    ~(rng : Daric_util.Rng.t) ~(bal_a : int) ~(bal_b : int) () : t =
  let ka = gen_party_keys rng and kb = gen_party_keys rng in
  let cash = bal_a + bal_b in
  let fund_src = Ledger.mint ledger ~value:cash ~spk:Tx.Op_return in
  (* The funding input is environment-owned in this model; the funding
     output is the 2-of-2 on the update keys, spendable by any floating
     update transaction. *)
  let fund =
    Tx.make ~witnesses:[ [] ] ~inputs:[ Tx.input_of_outpoint fund_src ] ~outputs:[ { Tx.value = cash;
            spk =
              Tx.Raw
                (Script.multisig_2 (Keys.enc ka.upd.Keys.pk)
                   (Keys.enc kb.upd.Keys.pk)) } ] ()
  in
  Ledger.record ledger fund;
  let t =
    { ledger; ka; kb; cash; s0; rel_lock; fund; sn = 0;
      update_tx = Tx.make ~inputs:[] ~outputs:[] ();
      update_sigs = ("", "");
      settlement = Tx.make ~inputs:[] ~outputs:[] ();
      settlement_sigs = ("", "");
      ops_signs = 0; ops_verifies = 0; ops_exps = 0 }
  in
  let upd0 = gen_update t ~i:0 in
  t.update_tx <- upd0;
  t.update_sigs <- sign_update t upd0;
  let set0 = gen_settlement t ~theta:(balance_state t ~bal_a ~bal_b) ~i:0 in
  t.settlement <- set0;
  t.settlement_sigs <- sign_settlement t set0 ~i:0;
  t

(** Off-chain update to a new state: replaces the stored update and
    settlement pair — old ones can simply be forgotten (storage O(1)).
    Returns the superseded (update, sigs) pair so adversarial tests can
    model a cheater who chose to keep it. *)
let update (t : t) ~(bal_a : int) ~(bal_b : int) :
    Tx.t * (string * string) =
  let old = (t.update_tx, t.update_sigs) in
  t.sn <- t.sn + 1;
  let upd = gen_update t ~i:t.sn in
  t.update_tx <- upd;
  t.update_sigs <- sign_update t upd;
  (* each party verifies the peer's update and settlement signatures *)
  t.ops_verifies <- t.ops_verifies + 4;
  let set = gen_settlement t ~theta:(balance_state t ~bal_a ~bal_b) ~i:t.sn in
  t.settlement <- set;
  t.settlement_sigs <- sign_settlement t set ~i:t.sn;
  old

(** Complete a floating update transaction so that it spends [from]
    (the funding output or an earlier update output). For update
    outputs the witness selects the update (ELSE) branch of the
    revealed script [of_state]; for the funding output pass [`Funding].
    The state index of the spent output is needed to rebuild its
    script. *)
let complete_update (t : t) ((body, (sig_a, sig_b)) : Tx.t * (string * string))
    ~(from : [ `Funding | `Update of int ]) ~(outpoint : Tx.outpoint) : Tx.t =
  match from with
  | `Funding ->
      Tx.make ~locktime:body.Tx.locktime
        ~inputs:[ Tx.input_of_outpoint outpoint ]
        ~outputs:body.Tx.outputs
        ~witnesses:[ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b ] ]
        ()
  | `Update j ->
      let script =
        update_script ~s0:t.s0 ~i:j ~rel_lock:t.rel_lock ~ka:t.ka ~kb:t.kb
      in
      Tx.make ~locktime:body.Tx.locktime
        ~inputs:[ Tx.input_of_outpoint outpoint ]
        ~outputs:body.Tx.outputs
        ~witnesses:
          [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Data "";
              Tx.Wscript script ] ]
        ()

(** Complete the floating settlement of state [i] to spend the state-i
    update output (only valid after T rounds). *)
let complete_settlement (t : t)
    ((body, (sig_a, sig_b)) : Tx.t * (string * string)) ~(i : int)
    ~(outpoint : Tx.outpoint) : Tx.t =
  let script = update_script ~s0:t.s0 ~i ~rel_lock:t.rel_lock ~ka:t.ka ~kb:t.kb in
  Tx.make ~locktime:body.Tx.locktime ~outputs:body.Tx.outputs
    ~inputs:[ Tx.input_of_outpoint outpoint ]
    ~witnesses:
      [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Data "\001";
          Tx.Wscript script ] ]
    ()

let funding_outpoint (t : t) : Tx.outpoint = Tx.outpoint_of t.fund 0

let latest_update_completed (t : t) ~(from : [ `Funding | `Update of int ])
    ~(outpoint : Tx.outpoint) : Tx.t =
  complete_update t (t.update_tx, t.update_sigs) ~from ~outpoint

let latest_settlement_completed (t : t) ~(outpoint : Tx.outpoint) : Tx.t =
  complete_settlement t (t.settlement, t.settlement_sigs) ~i:t.sn ~outpoint

(** Constant-size party storage: keys + seed + the latest update and
    settlement pair with signatures. *)
let storage_bytes (t : t) : int =
  let kp = 4 + Schnorr.public_key_size in
  (2 * kp) + 16
  + Tx.non_witness_size t.update_tx
  + (2 * Schnorr.signature_size)
  + Tx.non_witness_size t.settlement
  + (2 * Schnorr.signature_size)

let ops (t : t) : int * int * int = (t.ops_signs, t.ops_verifies, t.ops_exps)

(* ------------------------------------------------------------------ *)
(* SCHEME instance.                                                    *)

module Scheme : Scheme_intf.SCHEME = struct
  module I = Scheme_intf

  let name = "eltoo"
  let has_watchtower = false

  type nonrec t = {
    env : I.env;
    ch : t;
    mutable revoked : (int * (Tx.t * (string * string))) option;
        (** first superseded (update, sigs) pair, kept by a cheater *)
  }

  let open_channel (env : I.env) (cfg : I.config) =
    let ch =
      create ~rel_lock:cfg.rel_lock ~ledger:env.ledger ~rng:env.rng
        ~bal_a:cfg.bal_a ~bal_b:cfg.bal_b ()
    in
    Ok { env; ch; revoked = None }

  let update s ~bal_a ~bal_b =
    let i = s.ch.sn in
    let old = update s.ch ~bal_a ~bal_b in
    if s.revoked = None then s.revoked <- Some (i, old);
    Ok ()

  let sn s = s.ch.sn
  let funding s = funding_outpoint s.ch
  let party_bytes s = storage_bytes s.ch
  let watchtower_bytes _ = None

  (* The protocol is symmetric: the module counts both parties' work,
     so halve for the per-party view every other scheme reports. *)
  let ops s =
    let signs, verifies, exps = ops s.ch in
    { I.signs = signs / 2; verifies = verifies / 2; exps = exps / 2 }

  let known_pubkeys s =
    let party_keys k =
      Keys.enc k.main.Keys.pk
      :: Keys.enc k.upd.Keys.pk
      :: List.init (s.ch.sn + 1) (fun i ->
             Keys.enc (settlement_key k ~i).Keys.pk)
    in
    party_keys s.ch.ka @ party_keys s.ch.kb

  let key_contexts s = I.contexts_of_pubkeys (known_pubkeys s)

  let collaborative_close s =
    let h0 = Ledger.height s.env.ledger in
    (* the stored settlement already carries the latest balance split;
       the funding output is a raw 2-of-2 on the update keys *)
    let tx =
      I.coop_close_tx ~outpoint:(funding s)
        ~outputs:s.ch.settlement.Tx.outputs ~sk_a:s.ch.ka.upd.Keys.sk
        ~sk_b:s.ch.kb.upd.Keys.sk ~wscript:None
    in
    match I.post_confirmed s.env ~scheme:name ~stage:"collaborative_close" tx with
    | Error e -> Error e
    | Ok () ->
        Ok { I.punished = false; resolved = I.spent s.env (funding s);
             rounds = Ledger.height s.env.ledger - h0; trace = [ I.Settled ] }

  (* No punishment in eltoo: the victim overrides the published old
     update with the latest one, then settles after the CSV delay. *)
  let dishonest_close s =
    match s.revoked with
    | None ->
        I.fail ~scheme:name ~stage:"dishonest_close"
          "no revoked state (needs at least one update)"
    | Some (i, old_pair) ->
        let h0 = Ledger.height s.env.ledger in
        let ( let* ) = Result.bind in
        let old_tx =
          complete_update s.ch old_pair ~from:`Funding ~outpoint:(funding s)
        in
        let* () =
          I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" old_tx
        in
        let latest =
          latest_update_completed s.ch ~from:(`Update i)
            ~outpoint:(Tx.outpoint_of old_tx 0)
        in
        let* () =
          I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" latest
        in
        I.settle s.env s.ch.rel_lock;
        let settle_tx =
          latest_settlement_completed s.ch ~outpoint:(Tx.outpoint_of latest 0)
        in
        let* () =
          I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" settle_tx
        in
        Ok { I.punished = false;
             resolved = I.spent s.env (Tx.outpoint_of latest 0);
             rounds = Ledger.height s.env.ledger - h0;
             trace =
               [ I.Old_state_published i; I.Latest_published; I.Overridden;
                 I.Settled ] }

  let force_close s =
    let h0 = Ledger.height s.env.ledger in
    let ( let* ) = Result.bind in
    let latest =
      latest_update_completed s.ch ~from:`Funding ~outpoint:(funding s)
    in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" latest in
    I.settle s.env s.ch.rel_lock;
    let settle_tx =
      latest_settlement_completed s.ch ~outpoint:(Tx.outpoint_of latest 0)
    in
    let* () =
      I.post_confirmed s.env ~scheme:name ~stage:"force_close" settle_tx
    in
    Ok { I.punished = false;
         resolved = I.spent s.env (Tx.outpoint_of latest 0);
         rounds = Ledger.height s.env.ledger - h0;
         trace = [ I.Latest_published; I.Settled ] }
end
