(** First-class channel-scheme interface.

    Every payment-channel construction in this repository — Daric and
    the seven baselines of Table 1 — implements the {!SCHEME} module
    type, so tables, benchmarks, the CLI and the conformance suite can
    drive any of them through one lifecycle with one instrumentation
    path:

    open → update×n → collaborative close
                    | dishonest old-state publication → dispute
                    | non-collaborative force close → dispute

    Instrumentation is uniform: party/watchtower storage in bytes,
    cumulative Sign/Verify/Exp counters, and a structured trace of
    {!event}s for every closure scenario. Failures are typed
    ({!error}) rather than exceptions, so one scheme's failure never
    kills a whole table regeneration. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys

(* ------------------------------------------------------------------ *)
(* Shared environment.                                                 *)

(** The shared execution environment a scheme instance runs against.
    [chan_ids] tracks every channel id claimed on this env so two
    instances opened with identical configs cannot silently collide in
    a shared tower or funding index (see {!claim_chan_id}). *)
type env = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  delta : int;
  chan_ids : (string, int) Hashtbl.t;
}

let make_env ?(delta = 1) ?(seed = 7) () : env =
  { ledger = Ledger.create ~delta ();
    rng = Daric_util.Rng.create ~seed;
    delta;
    chan_ids = Hashtbl.create 8 }

(** Claim [id] on this environment, deriving a fresh ["id~k"] when the
    requested id is already taken. Schemes that index per-channel state
    by id (protocol parties, watchtower records) route their config's
    [chan_id] through this at open, so two instances opened with
    {!default_config} on one env get distinct ids instead of silently
    sharing one tower/funding slot. *)
let rec claim_chan_id (env : env) (id : string) : string =
  match Hashtbl.find_opt env.chan_ids id with
  | None ->
      Hashtbl.replace env.chan_ids id 0;
      id
  | Some n ->
      Hashtbl.replace env.chan_ids id (n + 1);
      claim_chan_id env (Printf.sprintf "%s~%d" id (n + 1))

(** Per-channel opening parameters. [t_end] only matters to schemes
    with a limited lifetime (Sleepy); [party_seed] and [chan_id] to
    schemes that create their own protocol parties (Daric) — distinct
    ids let many instances share one environment, e.g. the scale
    harness driving 100k channels on one ledger. *)
type config = {
  bal_a : int;
  bal_b : int;
  rel_lock : int;  (** dispute window T (rounds) *)
  t_end : int;  (** absolute channel end-time (Sleepy) *)
  party_seed : int;
  chan_id : string;
}

let default_config =
  { bal_a = 500_000; bal_b = 500_000; rel_lock = 3; t_end = 1_000_000;
    party_seed = 1; chan_id = "c" }

(* ------------------------------------------------------------------ *)
(* Instrumentation.                                                    *)

(** Cumulative per-party operation counters (Table 3 accounting). *)
type ops = { signs : int; verifies : int; exps : int }

let ops_zero = { signs = 0; verifies = 0; exps = 0 }

let ops_sub (a : ops) (b : ops) : ops =
  { signs = a.signs - b.signs;
    verifies = a.verifies - b.verifies;
    exps = a.exps - b.exps }

let ops_div (o : ops) (n : int) : ops =
  if n <= 0 then ops_zero
  else { signs = o.signs / n; verifies = o.verifies / n; exps = o.exps / n }

(** Structured trace events emitted by the closure scenarios. *)
type event =
  | Opened
  | Updated of int  (** new state number *)
  | Old_state_published of int  (** revoked state number *)
  | Latest_published
  | Punished
  | Overridden  (** old state superseded on-chain without punishment *)
  | Settled  (** final balances enforced on-chain *)
  | Cheater_escaped  (** dispute lost: no reaction was possible *)

let event_to_string = function
  | Opened -> "opened"
  | Updated i -> Printf.sprintf "updated to state %d" i
  | Old_state_published i -> Printf.sprintf "old state %d published" i
  | Latest_published -> "latest state published"
  | Punished -> "cheater punished"
  | Overridden -> "old state overridden"
  | Settled -> "settled"
  | Cheater_escaped -> "cheater escaped"

(** Result of a closure scenario. [rounds] counts ledger rounds from
    the scenario start to its last on-chain effect. *)
type outcome = {
  punished : bool;
  resolved : bool;
  rounds : int;
  trace : event list;
}

(** Typed failure: which scheme, at which lifecycle stage, and why. *)
type error = { scheme : string; stage : string; reason : string }

let error_to_string (e : error) : string =
  Printf.sprintf "%s/%s: %s" e.scheme e.stage e.reason

let fail ~scheme ~stage reason : ('a, error) result =
  Error { scheme; stage; reason }

(* ------------------------------------------------------------------ *)
(* The interface.                                                      *)

module type SCHEME = sig
  val name : string
  (** Matches the scheme's {!Costmodel} row name. *)

  val has_watchtower : bool

  type t

  val open_channel : env -> config -> (t, error) result
  val update : t -> bal_a:int -> bal_b:int -> (unit, error) result
  val sn : t -> int
  val funding : t -> Tx.outpoint

  val party_bytes : t -> int
  (** One party's current channel storage, in bytes. *)

  val watchtower_bytes : t -> int option
  (** [None] when the scheme has no watchtower protocol. *)

  val ops : t -> ops
  (** Cumulative per-party operation counters. *)

  val known_pubkeys : t -> string list
  (** Every encoded public key (33-byte {!Keys.enc} form) that may
      legitimately appear as a [Checksig]/[Checkmultisig] operand or
      P2WPKH owner in this channel's transactions so far: party keys,
      per-state revocation keys (both generated and received),
      watchtower keys, adaptor statements. The static-analysis DAG
      linter treats any key outside this set as an orphan. *)

  val key_contexts : t -> Daric_crypto.Keyctx.t list
  (** A {!Daric_crypto.Keyctx.t} per {!known_pubkeys} entry:
      pool-resident contexts are shared (channel keys pinned at open,
      window tables and all), other keys get fresh verify-only
      contexts. Feeds keyed verification ({!Daric_crypto
      .Schnorr.verify_keyed}/[batch_verify_keyed]) for consumers that
      check many witnesses against a channel's key inventory. *)

  val collaborative_close : t -> (outcome, error) result
  (** Both parties co-sign the final balance split. *)

  val dishonest_close : t -> (outcome, error) result
  (** One party publishes a revoked state; the other disputes. Requires
      at least one prior {!update}. *)

  val force_close : t -> (outcome, error) result
  (** Unilateral close at the latest state, then dispute resolution. *)
end

(* ------------------------------------------------------------------ *)
(* Shared plumbing for SCHEME implementations.                         *)

(** Advance the shared ledger [n] rounds. *)
let settle (env : env) (n : int) : unit =
  for _ = 1 to n do
    ignore (Ledger.tick env.ledger)
  done

(** Validate, post with no adversarial delay, and confirm in the next
    round. The explicit validation turns ledger rejections into typed
    errors instead of silently dropped transactions. *)
let post_confirmed (env : env) ~(scheme : string) ~(stage : string)
    (tx : Tx.t) : (unit, error) result =
  match Ledger.validate env.ledger tx with
  | Error r -> fail ~scheme ~stage (Ledger.reject_to_string r)
  | Ok () ->
      Ledger.post env.ledger tx ~delay:0;
      settle env 1;
      Ok ()

let spent (env : env) (op : Tx.outpoint) : bool =
  Ledger.spender_of env.ledger op <> None

(** Co-signed collaborative-close transaction spending the funding
    output directly to [outputs]. [wscript] is the revealed funding
    witness script for P2WSH funding outputs; [None] means the funding
    output carries a raw script (eltoo). *)
let coop_close_tx ~(outpoint : Tx.outpoint) ~(outputs : Tx.output list)
    ~(sk_a : Daric_crypto.Schnorr.secret_key)
    ~(sk_b : Daric_crypto.Schnorr.secret_key) ~(wscript : Script.t option) :
    Tx.t =
  let body = Tx.make ~inputs:[ Tx.input_of_outpoint outpoint ] ~outputs () in
  let msg = Sighash.message All body ~input_index:0 in
  let sig_a = Sighash.sign_message sk_a All msg in
  let sig_b = Sighash.sign_message sk_b All msg in
  let wit =
    match wscript with
    | Some script ->
        [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Wscript script ]
    | None -> [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b ]
  in
  Tx.with_witnesses body [ wit ]

(** Shared [key_contexts] implementation: one context per decodable
    [known_pubkeys] entry. Pool-resident contexts are shared — for
    pinned channel keys that means the very object (and window table)
    the hot paths use; keys outside the pool get fresh verify-only
    contexts and nothing is inserted. Malformed encodings are dropped
    (the DAG linter flags those separately). *)
let contexts_of_pubkeys (pks : string list) : Daric_crypto.Keyctx.t list =
  List.filter_map
    (fun enc ->
      match Daric_crypto.Schnorr.decode_public_key enc with
      | None -> None
      | Some pk -> (
          match Daric_crypto.Keyctx.peek pk with
          | Some kc -> Some kc
          | None -> Some (Daric_crypto.Keyctx.create pk)))
    pks

(** P2WPKH output paying [value] to [pk]. *)
let pay_to_pk ~(value : int) (pk : Daric_crypto.Schnorr.public_key) :
    Tx.output =
  { Tx.value;
    spk = Tx.P2wpkh (Daric_crypto.Hash.hash160 (Keys.enc pk)) }
