(** Executable FPPW channel [Mirzaei et al. 2021] (simplified).

    FPPW is a Lightning-style channel whose watchtower is *fair*: its
    collateral guarantees the client's funds. Operationally (following
    Appendix H.5) each party's commit transaction has two outputs:
    - the main output, revocable by a 3-of-3 multisig among the two
      parties and the watchtower (184-byte script) or splittable after
      the CSV delay;
    - a collateral output carrying the watchtower penalty branches
      (259-byte script).
    Revocation needs per-state data from both the counter-party and
    the watchtower, so party and watchtower storage grow linearly.
    Per update each party produces 6 signatures and verifies 10
    (Table 3). This model reproduces the closure transactions
    byte-for-byte (dishonest closure: 224+897 witness, 137+94
    non-witness = 2045 WU). *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Schnorr = Daric_crypto.Schnorr
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys

type side = {
  main : Keys.keypair;
  pen : Keys.keypair;  (** penalty-branch key *)
  mutable rev_current : Keys.keypair;  (** per-state revocation key *)
  mutable received_rev : (int * Schnorr.secret_key) list;  (** O(n) *)
}

type t = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  cash : int;
  collateral : int;
  rel_lock : int;
  fund : Tx.t;
  wt : Keys.keypair;  (** watchtower key *)
  mutable wt_rev : (int * Keys.keypair) list;  (** watchtower per-state data *)
  a : side;
  b : side;
  mutable sn : int;
  mutable commit_a : Tx.t;
  mutable ops_signs : int;
  mutable ops_verifies : int;
  mutable ops_exps : int;
}

(** Main commit output (Appendix H.5, 184 bytes):
    [IF 3 <revA> <revB> <revW> 3 CMS
     ELSE <t> CSV DROP 2 <splA> <splB> 2 CMS ENDIF] *)
let main_script (t : t) ~(rev_a : Schnorr.public_key)
    ~(rev_b : Schnorr.public_key) ~(rev_w : Schnorr.public_key) : Script.t =
  [ Script.If; Small 3; Push (Keys.enc rev_a); Push (Keys.enc rev_b);
    Push (Keys.enc rev_w); Small 3; Checkmultisig; Else; Num t.rel_lock; Csv;
    Drop; Small 2; Push (Keys.enc t.a.main.Keys.pk);
    Push (Keys.enc t.b.main.Keys.pk); Small 2; Checkmultisig; Endif ]

(** Collateral output (259 bytes): revocation 3-of-3, then delayed
    penalty branches pairing each party's penalty key with the other's
    per-state statement. *)
let collateral_script (t : t) ~(rev_a : Schnorr.public_key)
    ~(rev_b : Schnorr.public_key) ~(rev_w : Schnorr.public_key)
    ~(y_a : Schnorr.public_key) ~(y_b : Schnorr.public_key) : Script.t =
  [ Script.If; Small 3; Push (Keys.enc rev_a); Push (Keys.enc rev_b);
    Push (Keys.enc rev_w); Small 3; Checkmultisig; Else; Num t.rel_lock; Csv;
    Drop; If; Small 2; Push (Keys.enc t.b.pen.Keys.pk); Push (Keys.enc y_a);
    Small 2; Checkmultisig; Else; Small 2; Push (Keys.enc t.a.pen.Keys.pk);
    Push (Keys.enc y_b); Small 2; Checkmultisig; Endif; Endif ]

let gen_commit (t : t) : Tx.t =
  let rev_a = t.a.rev_current.Keys.pk and rev_b = t.b.rev_current.Keys.pk in
  let rev_w = (List.assoc t.sn t.wt_rev).Keys.pk in
  let y_a = t.a.pen.Keys.pk and y_b = t.b.pen.Keys.pk in
  Tx.make ~inputs:[ Tx.input_of_outpoint ~sequence:t.sn (Tx.outpoint_of t.fund 0) ] ~outputs:[ { Tx.value = t.cash;
          spk = Tx.P2wsh (Script.hash (main_script t ~rev_a ~rev_b ~rev_w)) };
        { Tx.value = t.collateral;
          spk =
            Tx.P2wsh
              (Script.hash (collateral_script t ~rev_a ~rev_b ~rev_w ~y_a ~y_b)) } ] ()

let sign_commit (t : t) (body : Tx.t) : Tx.t =
  let msg = Sighash.message All body ~input_index:0 in
  let sig_a = Sighash.sign_message t.a.main.Keys.sk All msg in
  let sig_b = Sighash.sign_message t.b.main.Keys.sk All msg in
  let script =
    Script.multisig_2 (Keys.enc t.a.main.Keys.pk) (Keys.enc t.b.main.Keys.pk)
  in
  Tx.with_witnesses body [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Wscript script ] ]

let create ?(rel_lock = 3) ~(ledger : Ledger.t) ~(rng : Daric_util.Rng.t)
    ~(bal_a : int) ~(bal_b : int) () : t =
  let mk_side () =
    { main = Keys.keygen rng; pen = Keys.keygen rng;
      rev_current = Keys.keygen rng; received_rev = [] }
  in
  let a = mk_side () and b = mk_side () in
  let wt = Keys.keygen rng in
  let cash = bal_a + bal_b in
  let collateral = cash in
  let fund_src = Ledger.mint ledger ~value:(cash + collateral) ~spk:Tx.Op_return in
  let fund =
    Tx.make ~witnesses:[ [] ] ~inputs:[ Tx.input_of_outpoint fund_src ] ~outputs:[ { Tx.value = cash + collateral;
            spk =
              Tx.P2wsh
                (Script.hash
                   (Script.multisig_2 (Keys.enc a.main.Keys.pk)
                      (Keys.enc b.main.Keys.pk))) } ] ()
  in
  Ledger.record ledger fund;
  let t =
    { ledger; rng = Daric_util.Rng.split rng; cash; collateral; rel_lock; fund;
      wt; wt_rev = [ (0, Keys.keygen rng) ]; a; b; sn = 0;
      commit_a = Tx.make ~inputs:[] ~outputs:[] ();
      ops_signs = 0; ops_verifies = 0; ops_exps = 0 }
  in
  (* oversize funding carries the watchtower collateral; split cash
     only between the parties *)
  t.commit_a <- sign_commit t (gen_commit t);
  t

(** Update: fresh revocation keys all around (party, counter-party,
    watchtower), reveal the old ones. Table 3 ops: 6 signs / 10
    verifies / 1 exp per party. *)
let update (t : t) ~(bal_a : int) ~(bal_b : int) : Tx.t =
  ignore (bal_a, bal_b);
  let old = t.commit_a in
  let old_rev_a = t.a.rev_current and old_rev_b = t.b.rev_current in
  t.sn <- t.sn + 1;
  t.a.rev_current <- Keys.keygen t.rng;
  t.b.rev_current <- Keys.keygen t.rng;
  t.wt_rev <- (t.sn, Keys.keygen t.rng) :: t.wt_rev;
  t.commit_a <- sign_commit t (gen_commit t);
  t.a.received_rev <- (t.sn - 1, old_rev_b.Keys.sk) :: t.a.received_rev;
  t.b.received_rev <- (t.sn - 1, old_rev_a.Keys.sk) :: t.b.received_rev;
  t.ops_signs <- t.ops_signs + 6;
  t.ops_verifies <- t.ops_verifies + 10;
  t.ops_exps <- t.ops_exps + 1;
  old

(** Punish a revoked commit: one transaction spending BOTH outputs
    with the 3-of-3 revocation branches (Appendix H.5: 897 witness +
    94 non-witness bytes). *)
let punish (t : t) ~(victim : [ `A | `B ]) ~(published : Tx.t) : Tx.t option =
  let side = match victim with `A -> t.a | `B -> t.b in
  let revoked = match published.Tx.inputs with [ i ] -> i.sequence | _ -> -1 in
  match
    (List.assoc_opt revoked side.received_rev, List.assoc_opt revoked t.wt_rev)
  with
  | Some peer_rev_sk, Some wt_rev ->
      let own_rev_sk =
        (* the victim archived its own per-state revocation secrets too;
           regenerate deterministically is not possible here, so the
           model keeps them via received_rev of the OTHER side *)
        match victim with
        | `A -> List.assoc revoked t.b.received_rev
        | `B -> List.assoc revoked t.a.received_rev
      in
      let rev_a_sk, rev_b_sk =
        match victim with
        | `A -> (own_rev_sk, peer_rev_sk)
        | `B -> (peer_rev_sk, own_rev_sk)
      in
      let rev_a = Schnorr.public_key_of_secret rev_a_sk in
      let rev_b = Schnorr.public_key_of_secret rev_b_sk in
      let rev_w = wt_rev.Keys.pk in
      let main = main_script t ~rev_a ~rev_b ~rev_w in
      let coll =
        collateral_script t ~rev_a ~rev_b ~rev_w ~y_a:t.a.pen.Keys.pk
          ~y_b:t.b.pen.Keys.pk
      in
      let body =
        Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of published 0);
              Tx.input_of_outpoint (Tx.outpoint_of published 1) ] ~outputs:[ { Tx.value = t.cash + t.collateral;
                spk = Tx.P2wsh (Script.hash (Script.p2pk (Keys.enc side.main.Keys.pk))) } ] ()
      in
      let sign i sk = Sighash.sign sk All body ~input_index:i in
      let wit i script =
        [ Tx.Data ""; Tx.Data (sign i rev_a_sk); Tx.Data (sign i rev_b_sk);
          Tx.Data (sign i wt_rev.Keys.sk); Tx.Data "\001"; Tx.Wscript script ]
      in
      Some (Tx.with_witnesses body [ wit 0 main; wit 1 coll ])
  | _ -> None

let commit_latest (t : t) : Tx.t = t.commit_a
let funding_outpoint (t : t) : Tx.outpoint = Tx.outpoint_of t.fund 0

let storage_bytes (t : t) ~(who : [ `A | `B ]) : int =
  let side = match who with `A -> t.a | `B -> t.b in
  let kp = 4 + Schnorr.public_key_size in
  (3 * kp)
  + Tx.non_witness_size t.commit_a
  + Tx.witness_size t.commit_a
  + (List.length side.received_rev * 8)

let watchtower_bytes (t : t) : int = List.length t.wt_rev * (4 + 4 + 33)
let ops (t : t) : int * int * int = (t.ops_signs, t.ops_verifies, t.ops_exps)

(* ------------------------------------------------------------------ *)
(* SCHEME instance.                                                    *)

module Scheme : Scheme_intf.SCHEME = struct
  module I = Scheme_intf

  let name = "FPPW"
  let has_watchtower = true

  type nonrec t = {
    env : I.env;
    ch : t;
    mutable bal : int * int;
    mutable revoked : Tx.t option;  (** first superseded commit *)
  }

  let open_channel (env : I.env) (cfg : I.config) =
    let ch =
      create ~rel_lock:cfg.rel_lock ~ledger:env.ledger ~rng:env.rng
        ~bal_a:cfg.bal_a ~bal_b:cfg.bal_b ()
    in
    Ok { env; ch; bal = (cfg.bal_a, cfg.bal_b); revoked = None }

  let update s ~bal_a ~bal_b =
    let old = update s.ch ~bal_a ~bal_b in
    if s.revoked = None then s.revoked <- Some old;
    s.bal <- (bal_a, bal_b);
    Ok ()

  let sn s = s.ch.sn
  let funding s = funding_outpoint s.ch
  let party_bytes s = storage_bytes s.ch ~who:`A
  let watchtower_bytes s = Some (watchtower_bytes s.ch)

  let ops s =
    let signs, verifies, exps = ops s.ch in
    { I.signs; verifies; exps }

  let known_pubkeys s =
    let side_keys sd =
      Keys.enc sd.main.Keys.pk
      :: Keys.enc sd.pen.Keys.pk
      :: Keys.enc sd.rev_current.Keys.pk
      :: List.map
           (fun (_, sk) -> Keys.enc (Schnorr.public_key_of_secret sk))
           sd.received_rev
    in
    (Keys.enc s.ch.wt.Keys.pk
     :: List.map (fun (_, kp) -> Keys.enc kp.Keys.pk) s.ch.wt_rev)
    @ side_keys s.ch.a @ side_keys s.ch.b

  (* The oversize funding output also carries the watchtower
     collateral, which a collaborative close returns to the tower. *)
  let key_contexts s = I.contexts_of_pubkeys (known_pubkeys s)

  let collaborative_close s =
    let h0 = Ledger.height s.env.ledger in
    let bal_a, bal_b = s.bal in
    let tx =
      I.coop_close_tx ~outpoint:(funding s)
        ~outputs:
          [ I.pay_to_pk ~value:bal_a s.ch.a.main.Keys.pk;
            I.pay_to_pk ~value:bal_b s.ch.b.main.Keys.pk;
            I.pay_to_pk ~value:s.ch.collateral s.ch.wt.Keys.pk ]
        ~sk_a:s.ch.a.main.Keys.sk ~sk_b:s.ch.b.main.Keys.sk
        ~wscript:
          (Some
             (Script.multisig_2 (Keys.enc s.ch.a.main.Keys.pk)
                (Keys.enc s.ch.b.main.Keys.pk)))
    in
    match I.post_confirmed s.env ~scheme:name ~stage:"collaborative_close" tx with
    | Error e -> Error e
    | Ok () ->
        Ok { I.punished = false; resolved = I.spent s.env (funding s);
             rounds = Ledger.height s.env.ledger - h0; trace = [ I.Settled ] }

  let dishonest_close s =
    match s.revoked with
    | None ->
        I.fail ~scheme:name ~stage:"dishonest_close"
          "no revoked state (needs at least one update)"
    | Some old_commit ->
        let h0 = Ledger.height s.env.ledger in
        let ( let* ) = Result.bind in
        let revoked_i =
          match old_commit.Tx.inputs with [ i ] -> i.Tx.sequence | _ -> -1
        in
        let* () =
          I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" old_commit
        in
        (match punish s.ch ~victim:`B ~published:old_commit with
        | None ->
            Ok { I.punished = false; resolved = false;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published revoked_i; I.Cheater_escaped ] }
        | Some pen ->
            let* () =
              I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" pen
            in
            let ok = I.spent s.env (Tx.outpoint_of old_commit 0) in
            Ok { I.punished = ok; resolved = ok;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published revoked_i; I.Punished ] })

  (* Publish the latest commit; after the CSV delay split the main
     output via its 2-of-2 ELSE branch. *)
  let force_close s =
    let h0 = Ledger.height s.env.ledger in
    let ( let* ) = Result.bind in
    let commit = commit_latest s.ch in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" commit in
    I.settle s.env s.ch.rel_lock;
    let bal_a, bal_b = s.bal in
    let script =
      main_script s.ch ~rev_a:s.ch.a.rev_current.Keys.pk
        ~rev_b:s.ch.b.rev_current.Keys.pk
        ~rev_w:(List.assoc s.ch.sn s.ch.wt_rev).Keys.pk
    in
    let body =
      Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of commit 0) ] ~outputs:[ I.pay_to_pk ~value:bal_a s.ch.a.main.Keys.pk;
            I.pay_to_pk ~value:bal_b s.ch.b.main.Keys.pk ] ()
    in
    let sig_a = Sighash.sign s.ch.a.main.Keys.sk All body ~input_index:0 in
    let sig_b = Sighash.sign s.ch.b.main.Keys.sk All body ~input_index:0 in
    let split =
      Tx.with_witnesses body [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Data "";
              Tx.Wscript script ] ]
    in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" split in
    let ok = I.spent s.env (Tx.outpoint_of commit 0) in
    Ok { I.punished = false; resolved = ok;
         rounds = Ledger.height s.env.ledger - h0;
         trace = [ I.Latest_published; I.Settled ] }
end
