(** Generic scenario engine: drive any {!Scheme_intf.SCHEME} through
    open → update×n → close and report uniform instrumentation.

    The balance trajectory mirrors the Daric driver's historical one —
    [bal_a - (k mod 1000) / bal_b + (k mod 1000)] at update k — so a
    single engine reproduces the exact channels the tables used to
    build by hand. Output sizes in this model are value-independent,
    which keeps the measured storage bytes stable across
    trajectories. *)

module I = Scheme_intf

type close = [ `None | `Collaborative | `Dishonest | `Force ]

type scenario = { updates : int; close : close }

(** Instrumentation snapshot taken after the updates, before the
    closure (storage at close time is what Table 1 reports). *)
type report = {
  scheme : string;
  updates_done : int;
  party_bytes : int;
  watchtower_bytes : int option;
  total_ops : I.ops;  (** cumulative, updates only *)
  per_update_ops : I.ops;
  outcome : I.outcome option;  (** [None] iff the scenario closes with [`None] *)
}

let balance_at (cfg : I.config) (k : int) : int * int =
  (cfg.bal_a - (k mod 1000), cfg.bal_b + (k mod 1000))

let run ?(config = I.default_config) ~(env : I.env)
    (module S : I.SCHEME) (sc : scenario) : (report, I.error) result =
  let ( let* ) = Result.bind in
  let* ch = S.open_channel env config in
  let ops0 = S.ops ch in
  let rec upd k =
    if k > sc.updates then Ok ()
    else
      let bal_a, bal_b = balance_at config k in
      let* () = S.update ch ~bal_a ~bal_b in
      upd (k + 1)
  in
  let* () = upd 1 in
  let total_ops = I.ops_sub (S.ops ch) ops0 in
  let report outcome =
    { scheme = S.name;
      updates_done = S.sn ch;
      party_bytes = S.party_bytes ch;
      watchtower_bytes = S.watchtower_bytes ch;
      total_ops;
      per_update_ops = I.ops_div total_ops sc.updates;
      outcome }
  in
  match sc.close with
  | `None -> Ok (report None)
  | `Collaborative ->
      let* o = S.collaborative_close ch in
      Ok (report (Some o))
  | `Dishonest ->
      let* o = S.dishonest_close ch in
      Ok (report (Some o))
  | `Force ->
      let* o = S.force_close ch in
      Ok (report (Some o))

(** [run] on a fresh environment (ledger Δ = [delta], RNG seed 7 — the
    historical Table 1 seeding). *)
let run_fresh ?(delta = 1) ?config (module S : I.SCHEME) (sc : scenario) :
    (report, I.error) result =
  run ?config ~env:(I.make_env ~delta ()) (module S) sc
