(** Executable FPPW channel [Mirzaei et al. 2021] (simplified): a
    Lightning-style channel whose fair watchtower's collateral
    guarantees the client's funds. Commits carry two outputs (main +
    collateral) with 3-of-3 revocation branches among the parties and
    the tower; party and watchtower storage grow linearly; 6 signs /
    10 verifies / 1 exp per update (Table 3). *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys
module Schnorr = Daric_crypto.Schnorr

type side = {
  main : Keys.keypair;
  pen : Keys.keypair;
  mutable rev_current : Keys.keypair;
  mutable received_rev : (int * Schnorr.secret_key) list;
}

type t = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  cash : int;
  collateral : int;
  rel_lock : int;
  fund : Tx.t;
  wt : Keys.keypair;
  mutable wt_rev : (int * Keys.keypair) list;
  a : side;
  b : side;
  mutable sn : int;
  mutable commit_a : Tx.t;
  mutable ops_signs : int;
  mutable ops_verifies : int;
  mutable ops_exps : int;
}

val main_script :
  t -> rev_a:Schnorr.public_key -> rev_b:Schnorr.public_key ->
  rev_w:Schnorr.public_key -> Script.t
(** The 185-byte main commit output script (the paper's H.5 listing
    quotes 184, omitting the split branch's final CHECKMULTISIG). *)

val collateral_script :
  t -> rev_a:Schnorr.public_key -> rev_b:Schnorr.public_key ->
  rev_w:Schnorr.public_key -> y_a:Schnorr.public_key ->
  y_b:Schnorr.public_key -> Script.t

val create :
  ?rel_lock:int -> ledger:Ledger.t -> rng:Daric_util.Rng.t -> bal_a:int ->
  bal_b:int -> unit -> t

val update : t -> bal_a:int -> bal_b:int -> Tx.t
(** Returns the superseded commit for adversarial replays. *)

val punish : t -> victim:[ `A | `B ] -> published:Tx.t -> Tx.t option
(** One transaction claiming both outputs of a revoked commit through
    the 3-of-3 revocation branches. *)

val commit_latest : t -> Tx.t
val funding_outpoint : t -> Tx.outpoint
val storage_bytes : t -> who:[ `A | `B ] -> int
val watchtower_bytes : t -> int
val ops : t -> int * int * int

(** First-class {!Scheme_intf.SCHEME} instance driving this module
    through the generic lifecycle engine. *)
module Scheme : Scheme_intf.SCHEME
