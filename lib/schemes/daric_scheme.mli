(** Daric as a {!Scheme_intf.SCHEME} instance, driving the real
    two-party protocol of lib/core through the generic lifecycle
    engine. The state is transparent so the scale harness can drive
    many channels on one shared environment. *)

type state

module Scheme : Scheme_intf.SCHEME with type t = state

val chan_id : state -> string
(** The channel id actually claimed on the environment at open — the
    config's [chan_id], or a derived ["id~k"] when that id was already
    taken on the shared env (see {!Scheme_intf.claim_chan_id}). *)

val watch_record : state -> Daric_core.Watchtower.record option
(** Alice's current watchtower record for the channel; [None] until
    the first update (state 0 has nothing to revoke). *)

val publish_revoked : state -> unit
(** Freeze both parties and replay Bob's revoked state-0 commit with
    no delay — only an external watchtower can react. Requires at
    least one prior update. *)
