(** Executable Generalized channel [Aumayr et al., ASIACRYPT 2021]:
    punish-then-split with a single commit per state, using adaptor
    pre-signatures — publishing reveals the publisher's witness, which
    together with the revocation preimage enables punishment. Storage
    O(n), one exponentiation per update. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys
module Adaptor = Daric_crypto.Adaptor

type state_secrets = {
  y : Adaptor.witness;
  y_stmt : Adaptor.statement;
  rev_preimage : string;
}

type side = {
  main : Keys.keypair;
  punish : Keys.keypair;
  mutable current : state_secrets;
  mutable peer_stmt : Adaptor.statement;
  mutable peer_rev_hash : string;
  mutable pre_sig_from_peer : Adaptor.pre_signature;
  mutable received_preimages : (int * string) list;  (** O(n) growth *)
}

type t = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  cash : int;
  rel_lock : int;
  fund : Tx.t;
  a : side;
  b : side;
  mutable sn : int;
  mutable commit : Tx.t;
  mutable split : Tx.t;
  mutable split_sigs : string * string;
  mutable stmt_log : Adaptor.statement list;
      (** every publishing statement ever placed in a commit script *)
  mutable ops_signs : int;
  mutable ops_verifies : int;
  mutable ops_exps : int;
}

val create :
  ?rel_lock:int -> ledger:Ledger.t -> rng:Daric_util.Rng.t -> bal_a:int ->
  bal_b:int -> unit -> t

(** What a cheater needs to replay an old state. *)
type old_state = {
  o_commit : Tx.t;
  o_index : int;
  o_presig_a : Adaptor.pre_signature;
  o_y_a : Adaptor.witness;
  o_script : Script.t;
}

val update : t -> bal_a:int -> bal_b:int -> old_state

val publish_commit_as_a : t -> old_state -> Tx.t
(** Publish a commit as party A: adapt B's pre-signature with A's
    witness (revealing it on chain) and attach A's own signature. *)

val punish_as_b : t -> published:Tx.t -> old_state -> Tx.t option
(** Extract A's witness from the on-chain signature, pair it with the
    revoked preimage, claim everything; [None] if not revoked. *)

val split_completed : t -> Tx.t
(** Honest settlement after the CSV delay. *)

val commit_completed_latest : t -> Tx.t
val funding_outpoint : t -> Tx.outpoint
val storage_bytes : t -> who:[ `A | `B ] -> int
val ops : t -> int * int * int

(** First-class {!Scheme_intf.SCHEME} instance driving this module
    through the generic lifecycle engine. *)
module Scheme : Scheme_intf.SCHEME
