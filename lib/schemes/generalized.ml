(** Executable Generalized channel [Aumayr et al., ASIACRYPT 2021].

    Punish-then-split with a SINGLE commit transaction per state (no
    state duplication), made possible by adaptor signatures: each party
    holds the counter-party's *pre-signature* on the commit transaction
    with respect to its own per-state publishing statement Y = g^y.
    Publishing requires adapting the pre-signature, which reveals the
    witness y on chain; combined with the revocation preimage exchanged
    when the state was revoked, the victim can take all funds.

    Storage: the per-state revocation preimages received from the
    counter-party accumulate — O(n), as in Table 1. One exponentiation
    per update (the fresh statement), 3 signs, 2 verifies (Table 3). *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Schnorr = Daric_crypto.Schnorr
module Adaptor = Daric_crypto.Adaptor
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys

type state_secrets = {
  y : Adaptor.witness;  (** own publishing witness *)
  y_stmt : Adaptor.statement;
  rev_preimage : string;  (** own revocation preimage *)
}

type side = {
  main : Keys.keypair;  (** funding + split keys *)
  punish : Keys.keypair;  (** second key of the punish branch *)
  mutable current : state_secrets;
  mutable peer_stmt : Adaptor.statement;  (** counter-party's current Y *)
  mutable peer_rev_hash : string;  (** hash of the peer's current preimage *)
  mutable pre_sig_from_peer : Adaptor.pre_signature;
      (** peer's pre-signature on the current commit w.r.t. our Y *)
  mutable received_preimages : (int * string) list;  (** O(n) growth *)
}

type t = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  cash : int;
  rel_lock : int;
  fund : Tx.t;
  a : side;
  b : side;
  mutable sn : int;
  mutable commit : Tx.t;  (** current commit body (single, shared) *)
  mutable split : Tx.t;  (** current split body, SIGHASH_ALL pre-signed *)
  mutable split_sigs : string * string;
  mutable stmt_log : Adaptor.statement list;
      (** every publishing statement ever placed in a commit script —
          revoked states' statements stay script-visible, so the
          static-analysis key inventory must remember them *)
  mutable ops_signs : int;
  mutable ops_verifies : int;
  mutable ops_exps : int;
}

(** Commit output script (the 228-byte script of Appendix H.2, adapted
    to our executable primitives):
    [IF
       IF   2 <Y_A> <punishB> 2 CMSV  SHA256 <h_revA> EQUAL   (punish A)
       ELSE 2 <Y_B> <punishA> 2 CMSV  SHA256 <h_revB> EQUAL   (punish B)
       ENDIF
     ELSE <delta> CSV DROP 2 <pkA> <pkB> 2 CMS                 (split)
     ENDIF] *)
let commit_script (t : t) ~(y_a : Adaptor.statement) ~(y_b : Adaptor.statement)
    ~(h_rev_a : string) ~(h_rev_b : string) : Script.t =
  [ Script.If; If; Small 2; Push (Keys.enc y_a);
    Push (Keys.enc t.b.punish.Keys.pk); Small 2; Checkmultisigverify; Sha256;
    Push h_rev_a; Equal; Else; Small 2; Push (Keys.enc y_b);
    Push (Keys.enc t.a.punish.Keys.pk); Small 2; Checkmultisigverify; Sha256;
    Push h_rev_b; Equal; Endif; Else; Num t.rel_lock; Csv; Drop; Small 2;
    Push (Keys.enc t.a.main.Keys.pk); Push (Keys.enc t.b.main.Keys.pk); Small 2;
    Checkmultisig; Endif ]

let fresh_secrets (rng : Daric_util.Rng.t) : state_secrets =
  let y, y_stmt = Adaptor.gen_statement rng in
  { y; y_stmt; rev_preimage = Daric_util.Rng.bytes rng 32 }

let gen_commit (t : t) : Tx.t =
  let script =
    commit_script t ~y_a:t.a.current.y_stmt ~y_b:t.b.current.y_stmt
      ~h_rev_a:(Daric_crypto.Sha256.digest t.a.current.rev_preimage)
      ~h_rev_b:(Daric_crypto.Sha256.digest t.b.current.rev_preimage)
  in
  Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of t.fund 0) ] ~outputs:[ { Tx.value = t.cash; spk = Tx.P2wsh (Script.hash script) } ] ()

let gen_split (t : t) ~(bal_a : int) ~(bal_b : int) : Tx.t =
  Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of t.commit 0) ] ~outputs:(Daric_core.Txs.balance_state ~pk_a:t.a.main.Keys.pk ~pk_b:t.b.main.Keys.pk
        ~bal_a ~bal_b) ()

(** Exchange pre-signatures and split signatures for the current
    commit/split pair. *)
let sign_state (t : t) ~(bal_a : int) ~(bal_b : int) : unit =
  t.stmt_log <- t.a.current.y_stmt :: t.b.current.y_stmt :: t.stmt_log;
  t.commit <- gen_commit t;
  let commit_msg = Sighash.message All t.commit ~input_index:0 in
  (* B pre-signs for A (w.r.t. Y_A): A needs it to publish. *)
  t.a.pre_sig_from_peer <-
    Adaptor.pre_sign t.b.main.Keys.sk t.a.current.y_stmt commit_msg;
  t.b.pre_sig_from_peer <-
    Adaptor.pre_sign t.a.main.Keys.sk t.b.current.y_stmt commit_msg;
  t.a.peer_stmt <- t.b.current.y_stmt;
  t.b.peer_stmt <- t.a.current.y_stmt;
  t.a.peer_rev_hash <- Daric_crypto.Sha256.digest t.b.current.rev_preimage;
  t.b.peer_rev_hash <- Daric_crypto.Sha256.digest t.a.current.rev_preimage;
  t.split <- gen_split t ~bal_a ~bal_b;
  let split_msg = Sighash.message All t.split ~input_index:0 in
  t.split_sigs <-
    ( Sighash.sign_message t.a.main.Keys.sk All split_msg,
      Sighash.sign_message t.b.main.Keys.sk All split_msg );
  (* per party: pre-sig + split sig + watchtower revocation sig *)
  t.ops_signs <- t.ops_signs + 3;
  t.ops_verifies <- t.ops_verifies + 2;
  t.ops_exps <- t.ops_exps + 1

let dummy_presig = { Adaptor.r = 1; s_pre = 0 }

let create ?(rel_lock = 3) ~(ledger : Ledger.t) ~(rng : Daric_util.Rng.t)
    ~(bal_a : int) ~(bal_b : int) () : t =
  let mk_side () =
    { main = Keys.keygen rng;
      punish = Keys.keygen rng;
      current = fresh_secrets rng;
      peer_stmt = 1;
      peer_rev_hash = "";
      pre_sig_from_peer = dummy_presig;
      received_preimages = [] }
  in
  let a = mk_side () and b = mk_side () in
  let cash = bal_a + bal_b in
  let fund_src = Ledger.mint ledger ~value:cash ~spk:Tx.Op_return in
  let fund =
    Tx.make ~witnesses:[ [] ] ~inputs:[ Tx.input_of_outpoint fund_src ] ~outputs:[ { Tx.value = cash;
            spk =
              Tx.P2wsh
                (Script.hash
                   (Script.multisig_2 (Keys.enc a.main.Keys.pk)
                      (Keys.enc b.main.Keys.pk))) } ] ()
  in
  Ledger.record ledger fund;
  let empty = Tx.make ~inputs:[] ~outputs:[] () in
  let t =
    { ledger; rng = Daric_util.Rng.split rng; cash; rel_lock; fund; a; b;
      sn = 0; commit = empty; split = empty; split_sigs = ("", "");
      stmt_log = []; ops_signs = 0; ops_verifies = 0; ops_exps = 0 }
  in
  sign_state t ~bal_a ~bal_b;
  t

(** Update: fresh statements and preimages, new commit/split pair, then
    revocation of the old state by exchanging the old preimages.
    Returns what a cheater would need to replay the old state. *)
type old_state = {
  o_commit : Tx.t;
  o_index : int;
  o_presig_a : Adaptor.pre_signature;  (** B's pre-sig for publisher A *)
  o_y_a : Adaptor.witness;
  o_script : Script.t;
}

let update (t : t) ~(bal_a : int) ~(bal_b : int) : old_state =
  let old =
    { o_commit = t.commit;
      o_index = t.sn;
      o_presig_a = t.a.pre_sig_from_peer;
      o_y_a = t.a.current.y;
      o_script =
        commit_script t ~y_a:t.a.current.y_stmt ~y_b:t.b.current.y_stmt
          ~h_rev_a:(Daric_crypto.Sha256.digest t.a.current.rev_preimage)
          ~h_rev_b:(Daric_crypto.Sha256.digest t.b.current.rev_preimage) }
  in
  let old_a = t.a.current and old_b = t.b.current in
  t.sn <- t.sn + 1;
  t.a.current <- fresh_secrets t.rng;
  t.b.current <- fresh_secrets t.rng;
  sign_state t ~bal_a ~bal_b;
  (* revocation: exchange the old preimages *)
  t.a.received_preimages <- (t.sn - 1, old_b.rev_preimage) :: t.a.received_preimages;
  t.b.received_preimages <- (t.sn - 1, old_a.rev_preimage) :: t.b.received_preimages;
  old

(** Publish a commit as party A: adapt B's pre-signature with own
    witness (revealing it on chain) and attach own signature. *)
let publish_commit_as_a (t : t) (o : old_state) : Tx.t =
  let msg = Sighash.message All o.o_commit ~input_index:0 in
  let full_b = Adaptor.adapt o.o_presig_a o.o_y_a in
  let sig_b =
    let b = Bytes.of_string (Schnorr.encode_signature full_b) in
    Bytes.set b (Bytes.length b - 1) '\001';
    Bytes.unsafe_to_string b
  in
  let sig_a = Sighash.sign_message t.a.main.Keys.sk All msg in
  let script =
    Script.multisig_2 (Keys.enc t.a.main.Keys.pk) (Keys.enc t.b.main.Keys.pk)
  in
  Tx.with_witnesses o.o_commit [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Wscript script ] ]

(** Victim B: extract A's publishing witness from the on-chain adapted
    signature, look up the revoked preimage, and claim all funds. *)
let punish_as_b (t : t) ~(published : Tx.t) (o : old_state) : Tx.t option =
  match List.assoc_opt o.o_index t.b.received_preimages with
  | None -> None
  | Some preimage ->
      let sig_b_bytes =
        match published.Tx.witnesses with
        | [ [ _; _; Tx.Data s; _ ] ] -> s
        | _ -> ""
      in
      (match Schnorr.decode_signature sig_b_bytes with
      | None -> None
      | Some full_b ->
          let y_a = Adaptor.extract full_b o.o_presig_a in
          let body =
            Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of published 0) ] ~outputs:[ { Tx.value = t.cash;
                    spk =
                      Tx.P2wpkh
                        (Daric_crypto.Hash.hash160 (Keys.enc t.b.main.Keys.pk)) } ] ()
          in
          let sig_y = Sighash.sign y_a All body ~input_index:0 in
          let sig_p = Sighash.sign t.b.punish.Keys.sk All body ~input_index:0 in
          Some
            (Tx.with_witnesses body [ [ Tx.Data preimage; Tx.Data ""; Tx.Data sig_y; Tx.Data sig_p;
                    Tx.Data "\001"; Tx.Data "\001"; Tx.Wscript o.o_script ] ]))

(** Honest split after the CSV delay. *)
let split_completed (t : t) : Tx.t =
  let script =
    commit_script t ~y_a:t.a.current.y_stmt ~y_b:t.b.current.y_stmt
      ~h_rev_a:(Daric_crypto.Sha256.digest t.a.current.rev_preimage)
      ~h_rev_b:(Daric_crypto.Sha256.digest t.b.current.rev_preimage)
  in
  let sig_a, sig_b = t.split_sigs in
  Tx.with_witnesses t.split [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Data ""; Tx.Wscript script ] ]

let commit_completed_latest (t : t) : Tx.t =
  publish_commit_as_a t
    { o_commit = t.commit;
      o_index = t.sn;
      o_presig_a = t.a.pre_sig_from_peer;
      o_y_a = t.a.current.y;
      o_script = [] }

let funding_outpoint (t : t) : Tx.outpoint = Tx.outpoint_of t.fund 0

let storage_bytes (t : t) ~(who : [ `A | `B ]) : int =
  let side = match who with `A -> t.a | `B -> t.b in
  let kp = 4 + Schnorr.public_key_size in
  (2 * kp) + (3 * 4) (* current secrets *)
  + (2 * Schnorr.signature_size) (* pre-sig + split sig held *)
  + Tx.non_witness_size t.commit
  + Tx.non_witness_size t.split
  + (List.length side.received_preimages * (4 + 32))

let ops (t : t) : int * int * int = (t.ops_signs, t.ops_verifies, t.ops_exps)

(* ------------------------------------------------------------------ *)
(* SCHEME instance.                                                    *)

module Scheme : Scheme_intf.SCHEME = struct
  module I = Scheme_intf

  let name = "Generalized"
  let has_watchtower = true

  type nonrec t = {
    env : I.env;
    ch : t;
    mutable bal : int * int;
    mutable revoked : old_state option;  (** first revoked state *)
  }

  let open_channel (env : I.env) (cfg : I.config) =
    let ch =
      create ~rel_lock:cfg.rel_lock ~ledger:env.ledger ~rng:env.rng
        ~bal_a:cfg.bal_a ~bal_b:cfg.bal_b ()
    in
    Ok { env; ch; bal = (cfg.bal_a, cfg.bal_b); revoked = None }

  let update s ~bal_a ~bal_b =
    let old = update s.ch ~bal_a ~bal_b in
    if s.revoked = None then s.revoked <- Some old;
    s.bal <- (bal_a, bal_b);
    Ok ()

  let sn s = s.ch.sn
  let funding s = funding_outpoint s.ch
  let party_bytes s = storage_bytes s.ch ~who:`A
  let watchtower_bytes s = Some (List.length s.ch.a.received_preimages * (4 + 32))

  let ops s =
    let signs, verifies, exps = ops s.ch in
    { I.signs; verifies; exps }

  let known_pubkeys s =
    List.map Keys.enc
      [ s.ch.a.main.Keys.pk; s.ch.b.main.Keys.pk; s.ch.a.punish.Keys.pk;
        s.ch.b.punish.Keys.pk ]
    @ List.map Keys.enc s.ch.stmt_log

  let key_contexts s = I.contexts_of_pubkeys (known_pubkeys s)

  let collaborative_close s =
    let h0 = Ledger.height s.env.ledger in
    let bal_a, bal_b = s.bal in
    let tx =
      I.coop_close_tx ~outpoint:(funding s)
        ~outputs:
          (Daric_core.Txs.balance_state ~pk_a:s.ch.a.main.Keys.pk
             ~pk_b:s.ch.b.main.Keys.pk ~bal_a ~bal_b)
        ~sk_a:s.ch.a.main.Keys.sk ~sk_b:s.ch.b.main.Keys.sk
        ~wscript:
          (Some
             (Script.multisig_2 (Keys.enc s.ch.a.main.Keys.pk)
                (Keys.enc s.ch.b.main.Keys.pk)))
    in
    match I.post_confirmed s.env ~scheme:name ~stage:"collaborative_close" tx with
    | Error e -> Error e
    | Ok () ->
        Ok { I.punished = false; resolved = I.spent s.env (funding s);
             rounds = Ledger.height s.env.ledger - h0; trace = [ I.Settled ] }

  (* Cheating A adapts B's pre-signature to publish a revoked commit —
     revealing the publishing witness — and B punishes with it plus the
     revoked preimage. *)
  let dishonest_close s =
    match s.revoked with
    | None ->
        I.fail ~scheme:name ~stage:"dishonest_close"
          "no revoked state (needs at least one update)"
    | Some old ->
        let h0 = Ledger.height s.env.ledger in
        let ( let* ) = Result.bind in
        let published = publish_commit_as_a s.ch old in
        let* () =
          I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" published
        in
        (match punish_as_b s.ch ~published old with
        | None ->
            Ok { I.punished = false; resolved = false;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published old.o_index; I.Cheater_escaped ] }
        | Some pen ->
            let* () =
              I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" pen
            in
            let ok = I.spent s.env (Tx.outpoint_of published 0) in
            Ok { I.punished = ok; resolved = ok;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published old.o_index; I.Punished ] })

  (* Publish the latest commit, wait out the CSV delay, then split. *)
  let force_close s =
    let h0 = Ledger.height s.env.ledger in
    let ( let* ) = Result.bind in
    let commit = commit_completed_latest s.ch in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" commit in
    I.settle s.env s.ch.rel_lock;
    let split = split_completed s.ch in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" split in
    let ok = I.spent s.env (Tx.outpoint_of commit 0) in
    Ok { I.punished = false; resolved = ok;
         rounds = Ledger.height s.env.ledger - h0;
         trace = [ I.Latest_published; I.Settled ] }
end
