(** Executable Outpost channel [Khabbazian et al. 2019] (simplified):
    the data needed to punish revoked commits is embedded in the
    commitment transactions themselves (a reverse revocation hash
    chain in an OP_RETURN-style output), so the watchtower stores only
    static channel data plus the state counter — O(log n) bits. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys
module Schnorr = Daric_crypto.Schnorr

val n_max : int
(** Chain length bound: maximum number of updates (limited lifetime). *)

type side = {
  main : Keys.keypair;
  penalty : Keys.keypair;
  seed : string;
  mutable chain_cache : string array;
}

val chain_value : side -> j:int -> string
(** H^(n_max - j)(seed); the value for j' derives every j <= j'. *)

val chain_down : string -> from_state:int -> to_state:int -> string
val secret_of_value : string -> Schnorr.secret_key
val rev_secret : side -> j:int -> Schnorr.secret_key
val rev_pk : side -> j:int -> Schnorr.public_key

type t = {
  ledger : Ledger.t;
  cash : int;
  rel_lock : int;
  fund : Tx.t;
  a : side;
  b : side;
  mutable sn : int;
  mutable commit_a : Tx.t;
  mutable commit_b : Tx.t;
  mutable ops_signs : int;
  mutable ops_verifies : int;
}

val create :
  ?rel_lock:int -> ledger:Ledger.t -> rng:Daric_util.Rng.t -> bal_a:int ->
  bal_b:int -> unit -> t

val update : t -> bal_a:int -> bal_b:int -> Tx.t * Tx.t

val embedded_values : Tx.t -> (string * string) option
(** The chain values carried in a commit's data output. *)

val punish : t -> victim:[ `A | `B ] -> published:Tx.t -> Tx.t option
(** Punish ANY revoked state by hashing the latest embedded value down
    to the published commit's state index. *)

val commit_of : t -> [ `A | `B ] -> Tx.t
val funding_outpoint : t -> Tx.outpoint

val watchtower_bytes : t -> int
(** Static key + funding outpoint + counter: O(log n). *)

val storage_bytes : t -> who:[ `A | `B ] -> int
val ops : t -> int * int

(** First-class {!Scheme_intf.SCHEME} instance driving this module
    through the generic lifecycle engine. *)
module Scheme : Scheme_intf.SCHEME
