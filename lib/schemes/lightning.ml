(** Executable Lightning channel (penalty-based) [Poon, Dryja 2016].

    Each party holds its own commit transaction for the current state
    with a to_local output (revocable, CSV-delayed) and a to_remote
    output. Updating generates fresh per-state revocation key pairs
    (the two exponentiations per update of Table 3) and reveals the
    previous state's revocation secrets to the counter-party —
    the received secrets must be stored forever, which is the O(n)
    party/watchtower storage of Table 1. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Schnorr = Daric_crypto.Schnorr
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys

type party_keys = {
  main : Keys.keypair;  (** funding multisig + to_remote *)
  delayed : Keys.keypair;  (** to_local after the CSV delay *)
}

(** The BOLT-3 to_local script shape:
    [IF <revocation_pk> ELSE <T> CSV DROP <delayed_pk> ENDIF CHECKSIG] *)
let to_local_script ~(revocation_pk : Schnorr.public_key)
    ~(delayed_pk : Schnorr.public_key) ~(rel_lock : int) : Script.t =
  [ Script.If; Push (Keys.enc revocation_pk); Else; Num rel_lock; Csv; Drop;
    Push (Keys.enc delayed_pk); Endif; Checksig ]

type revocation = { index : int; secret : Schnorr.secret_key }

type side = {
  keys : party_keys;
  mutable rev_current : Keys.keypair;  (** this state's revocation keypair *)
  mutable received_secrets : revocation list;  (** O(n) growth *)
  mutable commit : Tx.t;  (** own fully-signed commit for the current state *)
}

type t = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  cash : int;
  rel_lock : int;
  fund : Tx.t;
  a : side;
  b : side;
  mutable sn : int;
  mutable ops_signs : int;
  mutable ops_verifies : int;
  mutable ops_exps : int;
}

let empty_tx = Tx.make ~inputs:[] ~outputs:[] ()

(** Commit transaction held by [owner]: to_local (delayed/revocable by
    the owner's current revocation key) + to_remote (counter-party,
    immediate P2WPKH). *)
let gen_commit (t : t) ~(owner : [ `A | `B ]) ~(bal_own : int) ~(bal_other : int)
    ~(rev_pk : Schnorr.public_key) : Tx.t =
  let own, other = match owner with `A -> (t.a, t.b) | `B -> (t.b, t.a) in
  let to_local =
    { Tx.value = bal_own;
      spk =
        Tx.P2wsh
          (Script.hash
             (to_local_script ~revocation_pk:rev_pk
                ~delayed_pk:own.keys.delayed.Keys.pk ~rel_lock:t.rel_lock)) }
  in
  let to_remote =
    { Tx.value = bal_other;
      spk =
        Tx.P2wpkh (Daric_crypto.Hash.hash160 (Keys.enc other.keys.main.Keys.pk)) }
  in
  Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of t.fund 0) ] ~outputs:[ to_local; to_remote ] ()

let sign_commit (t : t) (body : Tx.t) : Tx.t =
  let msg = Sighash.message All body ~input_index:0 in
  let sig_a = Sighash.sign_message t.a.keys.main.Keys.sk All msg in
  let sig_b = Sighash.sign_message t.b.keys.main.Keys.sk All msg in
  let script =
    Script.multisig_2 (Keys.enc t.a.keys.main.Keys.pk) (Keys.enc t.b.keys.main.Keys.pk)
  in
  Tx.with_witnesses body [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Wscript script ] ]

let create ?(rel_lock = 3) ~(ledger : Ledger.t) ~(rng : Daric_util.Rng.t)
    ~(bal_a : int) ~(bal_b : int) () : t =
  let mk_side () =
    { keys = { main = Keys.keygen rng; delayed = Keys.keygen rng };
      rev_current = Keys.keygen rng;
      received_secrets = [];
      commit = empty_tx }
  in
  let a = mk_side () and b = mk_side () in
  let cash = bal_a + bal_b in
  let fund_src = Ledger.mint ledger ~value:cash ~spk:Tx.Op_return in
  let fund =
    Tx.make ~witnesses:[ [] ] ~inputs:[ Tx.input_of_outpoint fund_src ] ~outputs:[ { Tx.value = cash;
            spk =
              Tx.P2wsh
                (Script.hash
                   (Script.multisig_2 (Keys.enc a.keys.main.Keys.pk)
                      (Keys.enc b.keys.main.Keys.pk))) } ] ()
  in
  Ledger.record ledger fund;
  let t =
    { ledger; rng = Daric_util.Rng.split rng; cash; rel_lock; fund; a; b;
      sn = 0; ops_signs = 0; ops_verifies = 0; ops_exps = 0 }
  in
  t.a.commit <-
    sign_commit t (gen_commit t ~owner:`A ~bal_own:bal_a ~bal_other:bal_b
                     ~rev_pk:a.rev_current.Keys.pk);
  t.b.commit <-
    sign_commit t (gen_commit t ~owner:`B ~bal_own:bal_b ~bal_other:bal_a
                     ~rev_pk:b.rev_current.Keys.pk);
  t

(** Update the channel state. Each side generates a fresh revocation
    key pair (1 exponentiation each, +1 to verify the counter-party's),
    both commits are re-created, then the old revocation secrets are
    exchanged and stored — the storage that grows linearly. Returns the
    superseded commits so adversarial tests can replay them. *)
let update (t : t) ~(bal_a : int) ~(bal_b : int) : Tx.t * Tx.t =
  let old_a = t.a.commit and old_b = t.b.commit in
  let old_rev_a = t.a.rev_current and old_rev_b = t.b.rev_current in
  t.sn <- t.sn + 1;
  (* 2 exps per party: generate own revocation key, verify the peer's *)
  t.ops_exps <- t.ops_exps + 2;
  t.a.rev_current <- Keys.keygen t.rng;
  t.b.rev_current <- Keys.keygen t.rng;
  t.ops_signs <- t.ops_signs + 2 (* commit sig for peer + watchtower rev sig, m=0 *);
  t.ops_verifies <- t.ops_verifies + 1;
  t.a.commit <-
    sign_commit t
      (gen_commit t ~owner:`A ~bal_own:bal_a ~bal_other:bal_b
         ~rev_pk:t.a.rev_current.Keys.pk);
  t.b.commit <-
    sign_commit t
      (gen_commit t ~owner:`B ~bal_own:bal_b ~bal_other:bal_a
         ~rev_pk:t.b.rev_current.Keys.pk);
  (* revocation-secret exchange: each side stores the peer's secret *)
  t.a.received_secrets <-
    { index = t.sn - 1; secret = old_rev_b.Keys.sk } :: t.a.received_secrets;
  t.b.received_secrets <-
    { index = t.sn - 1; secret = old_rev_a.Keys.sk } :: t.b.received_secrets;
  (old_a, old_b)

(** Penalty transaction: the victim spends the cheater's to_local
    output with the revealed revocation secret (IF branch). The
    to_remote output already belongs to the victim. *)
let penalty (t : t) ~(victim : [ `A | `B ]) ~(published : Tx.t)
    ~(revoked_index : int) : Tx.t option =
  let side = match victim with `A -> t.a | `B -> t.b in
  match
    List.find_opt (fun r -> r.index = revoked_index) side.received_secrets
  with
  | None -> None
  | Some { secret; _ } ->
      let rev_pk = Schnorr.public_key_of_secret secret in
      let cheater = match victim with `A -> t.b | `B -> t.a in
      let script =
        to_local_script ~revocation_pk:rev_pk
          ~delayed_pk:cheater.keys.delayed.Keys.pk ~rel_lock:t.rel_lock
      in
      let to_local_value = (List.nth published.Tx.outputs 0).Tx.value in
      let body =
        Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of published 0) ] ~outputs:[ { Tx.value = to_local_value;
                spk =
                  Tx.P2wpkh
                    (Daric_crypto.Hash.hash160 (Keys.enc side.keys.main.Keys.pk)) } ] ()
      in
      let sg = Sighash.sign secret All body ~input_index:0 in
      Some
        (Tx.with_witnesses body [ [ Tx.Data sg; Tx.Data "\001"; Tx.Wscript script ] ])

(** Non-collaborative close by [who]: post the own commit, then after T
    rounds sweep to_local with the delayed key. *)
let commit_of (t : t) (who : [ `A | `B ]) : Tx.t =
  (match who with `A -> t.a | `B -> t.b).commit

let sweep_to_local (t : t) ~(who : [ `A | `B ]) ~(published : Tx.t) : Tx.t =
  let side = match who with `A -> t.a | `B -> t.b in
  let script =
    to_local_script ~revocation_pk:side.rev_current.Keys.pk
      ~delayed_pk:side.keys.delayed.Keys.pk ~rel_lock:t.rel_lock
  in
  let v = (List.nth published.Tx.outputs 0).Tx.value in
  let body =
    Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of published 0) ] ~outputs:[ { Tx.value = v;
            spk =
              Tx.P2wpkh (Daric_crypto.Hash.hash160 (Keys.enc side.keys.main.Keys.pk)) } ] ()
  in
  let sg = Sighash.sign side.keys.delayed.Keys.sk All body ~input_index:0 in
  Tx.with_witnesses body [ [ Tx.Data sg; Tx.Data ""; Tx.Wscript script ] ]

let funding_outpoint (t : t) : Tx.outpoint = Tx.outpoint_of t.fund 0

(** Party storage: keys + own commit + the peer's revealed secrets —
    grows by one secret per update. *)
let storage_bytes (t : t) ~(who : [ `A | `B ]) : int =
  let side = match who with `A -> t.a | `B -> t.b in
  let kp = 4 + Schnorr.public_key_size in
  (3 * kp)
  + Tx.non_witness_size side.commit
  + Tx.witness_size side.commit
  + List.length side.received_secrets * (4 + 4)

(** A Lightning watchtower must keep penalty data for every revoked
    state. *)
let watchtower_bytes (t : t) : int =
  (* per revoked state: one pre-signed penalty descriptor (index +
     secret + txid hint), for each guarded side *)
  List.length t.a.received_secrets * (4 + 4 + 32)

let ops (t : t) : int * int * int = (t.ops_signs, t.ops_verifies, t.ops_exps)

(* ------------------------------------------------------------------ *)
(* SCHEME instance.                                                    *)

module Scheme : Scheme_intf.SCHEME = struct
  module I = Scheme_intf

  let name = "Lightning"
  let has_watchtower = true

  type nonrec t = {
    env : I.env;
    ch : t;
    mutable bal : int * int;
    mutable revoked : (int * Tx.t) option;
        (** A's first superseded commit, kept by a cheating A *)
  }

  let open_channel (env : I.env) (cfg : I.config) =
    let ch =
      create ~rel_lock:cfg.rel_lock ~ledger:env.ledger ~rng:env.rng
        ~bal_a:cfg.bal_a ~bal_b:cfg.bal_b ()
    in
    Ok { env; ch; bal = (cfg.bal_a, cfg.bal_b); revoked = None }

  let update s ~bal_a ~bal_b =
    let i = s.ch.sn in
    let old_a, _old_b = update s.ch ~bal_a ~bal_b in
    if s.revoked = None then s.revoked <- Some (i, old_a);
    s.bal <- (bal_a, bal_b);
    Ok ()

  let sn s = s.ch.sn
  let funding s = funding_outpoint s.ch
  let party_bytes s = storage_bytes s.ch ~who:`A
  let watchtower_bytes s = Some (watchtower_bytes s.ch)

  let ops s =
    let signs, verifies, exps = ops s.ch in
    { I.signs; verifies; exps }

  let known_pubkeys s =
    let side_keys sd =
      Keys.enc sd.keys.main.Keys.pk
      :: Keys.enc sd.keys.delayed.Keys.pk
      :: Keys.enc sd.rev_current.Keys.pk
      :: List.map
           (fun r -> Keys.enc (Schnorr.public_key_of_secret r.secret))
           sd.received_secrets
    in
    side_keys s.ch.a @ side_keys s.ch.b

  let key_contexts s = I.contexts_of_pubkeys (known_pubkeys s)

  let collaborative_close s =
    let h0 = Ledger.height s.env.ledger in
    let bal_a, bal_b = s.bal in
    let tx =
      I.coop_close_tx ~outpoint:(funding s)
        ~outputs:
          [ I.pay_to_pk ~value:bal_a s.ch.a.keys.main.Keys.pk;
            I.pay_to_pk ~value:bal_b s.ch.b.keys.main.Keys.pk ]
        ~sk_a:s.ch.a.keys.main.Keys.sk ~sk_b:s.ch.b.keys.main.Keys.sk
        ~wscript:
          (Some
             (Script.multisig_2
                (Keys.enc s.ch.a.keys.main.Keys.pk)
                (Keys.enc s.ch.b.keys.main.Keys.pk)))
    in
    match I.post_confirmed s.env ~scheme:name ~stage:"collaborative_close" tx with
    | Error e -> Error e
    | Ok () ->
        Ok { I.punished = false; resolved = I.spent s.env (funding s);
             rounds = Ledger.height s.env.ledger - h0; trace = [ I.Settled ] }

  (* Cheating A publishes the first revoked commit; victim B reacts
     with the penalty transaction inside the CSV window. *)
  let dishonest_close s =
    match s.revoked with
    | None ->
        I.fail ~scheme:name ~stage:"dishonest_close"
          "no revoked state (needs at least one update)"
    | Some (i, old_commit) ->
        let h0 = Ledger.height s.env.ledger in
        let ( let* ) = Result.bind in
        let* () =
          I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close"
            old_commit
        in
        (match penalty s.ch ~victim:`B ~published:old_commit ~revoked_index:i with
        | None ->
            Ok { I.punished = false; resolved = false;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published i; I.Cheater_escaped ] }
        | Some pen ->
            let* () =
              I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" pen
            in
            let ok = I.spent s.env (Tx.outpoint_of old_commit 0) in
            Ok { I.punished = ok; resolved = ok;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published i; I.Punished ] })

  (* A closes unilaterally at the latest state, then sweeps her
     to_local output once the CSV delay elapsed. *)
  let force_close s =
    let h0 = Ledger.height s.env.ledger in
    let ( let* ) = Result.bind in
    let commit = commit_of s.ch `A in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" commit in
    I.settle s.env s.ch.rel_lock;
    let sweep = sweep_to_local s.ch ~who:`A ~published:commit in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" sweep in
    let ok = I.spent s.env (Tx.outpoint_of commit 0) in
    Ok { I.punished = false; resolved = ok;
         rounds = Ledger.height s.env.ledger - h0;
         trace = [ I.Latest_published; I.Settled ] }
end
