(** Executable Sleepy channel [Aumayr et al. 2021] (simplified).

    A bi-directional channel WITHOUT watchtowers: parties may go
    offline for prolonged periods because dispute windows are anchored
    to one absolute channel end-time T_end rather than to a relative
    delay after a (possibly unnoticed) closure. Each party's commit
    output gives the counter-party until T_end to present the
    revocation secret; the publisher can claim her own balance only
    after T_end. An honest party therefore needs to come online just
    once, shortly before T_end — and the channel's lifetime is
    necessarily limited (the Table 1 row: limited lifetime, no
    watchtower, O(n) party storage).

    Output script:
    [IF 2 <rev_pk> <other_pk> 2 CHECKMULTISIG            (revocation)
     ELSE <T_end> CLTV DROP <owner_pk> CHECKSIG ENDIF]   (after end-time) *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Schnorr = Daric_crypto.Schnorr
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys

type side = {
  main : Keys.keypair;
  mutable rev_current : Keys.keypair;
  mutable received_rev : (int * Schnorr.secret_key) list;  (** O(n) *)
}

type t = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  cash : int;
  t_end : int;  (** absolute channel end-time (ledger height class) *)
  fund : Tx.t;
  a : side;
  b : side;
  mutable sn : int;
  mutable commit_a : Tx.t;
  mutable commit_b : Tx.t;
  mutable ops_signs : int;
  mutable ops_verifies : int;
}

let output_script (t : t) ~(rev_pk : Schnorr.public_key)
    ~(other_pk : Schnorr.public_key) ~(owner_pk : Schnorr.public_key) :
    Script.t =
  [ Script.If; Small 2; Push (Keys.enc rev_pk); Push (Keys.enc other_pk);
    Small 2; Checkmultisig; Else; Num t.t_end; Cltv; Drop;
    Push (Keys.enc owner_pk); Checksig; Endif ]

let gen_commit (t : t) ~(owner : [ `A | `B ]) ~(bal_own : int)
    ~(bal_other : int) : Tx.t =
  let own, other = match owner with `A -> (t.a, t.b) | `B -> (t.b, t.a) in
  let out who_rev other_pk owner_pk bal =
    { Tx.value = bal;
      spk =
        Tx.P2wsh
          (Script.hash (output_script t ~rev_pk:who_rev ~other_pk ~owner_pk)) }
  in
  Tx.make ~inputs:[ Tx.input_of_outpoint ~sequence:t.sn (Tx.outpoint_of t.fund 0) ] ~outputs:[ (* the publisher's own balance: revocable by the other side,
           claimable by the owner only after T_end *)
        out own.rev_current.Keys.pk other.main.Keys.pk own.main.Keys.pk bal_own;
        (* the counter-party's balance: symmetric *)
        out other.rev_current.Keys.pk own.main.Keys.pk other.main.Keys.pk
          bal_other ] ()

let sign_commit (t : t) (body : Tx.t) : Tx.t =
  let msg = Sighash.message All body ~input_index:0 in
  let sig_a = Sighash.sign_message t.a.main.Keys.sk All msg in
  let sig_b = Sighash.sign_message t.b.main.Keys.sk All msg in
  let script =
    Script.multisig_2 (Keys.enc t.a.main.Keys.pk) (Keys.enc t.b.main.Keys.pk)
  in
  Tx.with_witnesses body [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Wscript script ] ]

let create ~(t_end : int) ~(ledger : Ledger.t) ~(rng : Daric_util.Rng.t)
    ~(bal_a : int) ~(bal_b : int) () : t =
  let mk_side () =
    { main = Keys.keygen rng; rev_current = Keys.keygen rng; received_rev = [] }
  in
  let a = mk_side () and b = mk_side () in
  let cash = bal_a + bal_b in
  let fund_src = Ledger.mint ledger ~value:cash ~spk:Tx.Op_return in
  let fund =
    Tx.make ~witnesses:[ [] ] ~inputs:[ Tx.input_of_outpoint fund_src ] ~outputs:[ { Tx.value = cash;
            spk =
              Tx.P2wsh
                (Script.hash
                   (Script.multisig_2 (Keys.enc a.main.Keys.pk)
                      (Keys.enc b.main.Keys.pk))) } ] ()
  in
  Ledger.record ledger fund;
  let empty = Tx.make ~inputs:[] ~outputs:[] () in
  let t =
    { ledger; rng = Daric_util.Rng.split rng; cash; t_end; fund; a; b; sn = 0;
      commit_a = empty; commit_b = empty; ops_signs = 0; ops_verifies = 0 }
  in
  t.commit_a <- sign_commit t (gen_commit t ~owner:`A ~bal_own:bal_a ~bal_other:bal_b);
  t.commit_b <- sign_commit t (gen_commit t ~owner:`B ~bal_own:bal_b ~bal_other:bal_a);
  t

let update (t : t) ~(bal_a : int) ~(bal_b : int) : Tx.t * Tx.t =
  let old = (t.commit_a, t.commit_b) in
  let old_rev_a = t.a.rev_current and old_rev_b = t.b.rev_current in
  t.sn <- t.sn + 1;
  t.a.rev_current <- Keys.keygen t.rng;
  t.b.rev_current <- Keys.keygen t.rng;
  t.commit_a <- sign_commit t (gen_commit t ~owner:`A ~bal_own:bal_a ~bal_other:bal_b);
  t.commit_b <- sign_commit t (gen_commit t ~owner:`B ~bal_own:bal_b ~bal_other:bal_a);
  t.a.received_rev <- (t.sn - 1, old_rev_b.Keys.sk) :: t.a.received_rev;
  t.b.received_rev <- (t.sn - 1, old_rev_a.Keys.sk) :: t.b.received_rev;
  (* Table 3 (Sleepy row): 5 signs / 5 verifies per update; the model
     counts the commitment exchanges and the fast-finish handshake *)
  t.ops_signs <- t.ops_signs + 5;
  t.ops_verifies <- t.ops_verifies + 5;
  old

(** Punish a revoked commit: the sleepy victim, waking any time before
    T_end, claims the cheater's balance output with the revealed
    secret (no relative timer to race). *)
let punish (t : t) ~(victim : [ `A | `B ]) ~(published : Tx.t) : Tx.t option =
  let side = match victim with `A -> t.a | `B -> t.b in
  let cheater = match victim with `A -> t.b | `B -> t.a in
  let revoked = match published.Tx.inputs with [ i ] -> i.sequence | _ -> -1 in
  match List.assoc_opt revoked side.received_rev with
  | None -> None
  | Some rev_sk ->
      let script =
        output_script t
          ~rev_pk:(Schnorr.public_key_of_secret rev_sk)
          ~other_pk:side.main.Keys.pk ~owner_pk:cheater.main.Keys.pk
      in
      let v = (List.nth published.Tx.outputs 0).Tx.value in
      let body =
        Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of published 0) ] ~outputs:[ { Tx.value = v;
                spk =
                  Tx.P2wpkh
                    (Daric_crypto.Hash.hash160 (Keys.enc side.main.Keys.pk)) } ] ()
      in
      let sig_rev = Sighash.sign rev_sk All body ~input_index:0 in
      let sig_own = Sighash.sign side.main.Keys.sk All body ~input_index:0 in
      Some
        (Tx.with_witnesses body [ [ Tx.Data ""; Tx.Data sig_rev; Tx.Data sig_own; Tx.Data "\001";
                Tx.Wscript script ] ])

(** The publisher sweeps her own balance — only valid once the
    spending transaction's nLockTime can reach T_end. For an old commit
    pass the revocation key that state used ([rev_pk] defaults to the
    current one). *)
let sweep_own ?(rev_pk : Schnorr.public_key option) (t : t)
    ~(who : [ `A | `B ]) ~(published : Tx.t) : Tx.t =
  let side = match who with `A -> t.a | `B -> t.b in
  let other = match who with `A -> t.b | `B -> t.a in
  let rev_pk =
    match rev_pk with Some pk -> pk | None -> side.rev_current.Keys.pk
  in
  let script =
    output_script t ~rev_pk ~other_pk:other.main.Keys.pk
      ~owner_pk:side.main.Keys.pk
  in
  let v = (List.nth published.Tx.outputs 0).Tx.value in
  let body =
    Tx.make ~locktime:t.t_end ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of published 0) ] ~outputs:[ { Tx.value = v;
            spk =
              Tx.P2wpkh (Daric_crypto.Hash.hash160 (Keys.enc side.main.Keys.pk)) } ] ()
  in
  let sg = Sighash.sign side.main.Keys.sk All body ~input_index:0 in
  Tx.with_witnesses body [ [ Tx.Data sg; Tx.Data ""; Tx.Wscript script ] ]

let commit_of (t : t) (who : [ `A | `B ]) : Tx.t =
  match who with `A -> t.commit_a | `B -> t.commit_b

let funding_outpoint (t : t) : Tx.outpoint = Tx.outpoint_of t.fund 0

(** Remaining channel lifetime in rounds (Table 1: limited). *)
let remaining_lifetime (t : t) : int = t.t_end - Ledger.height t.ledger

let storage_bytes (t : t) ~(who : [ `A | `B ]) : int =
  let side = match who with `A -> t.a | `B -> t.b in
  let kp = 4 + Schnorr.public_key_size in
  let commit = commit_of t who in
  (2 * kp)
  + Tx.non_witness_size commit
  + Tx.witness_size commit
  + (List.length side.received_rev * 8)

let ops (t : t) : int * int = (t.ops_signs, t.ops_verifies)

(* ------------------------------------------------------------------ *)
(* SCHEME instance.                                                    *)

module Scheme : Scheme_intf.SCHEME = struct
  module I = Scheme_intf

  let name = "Sleepy"
  let has_watchtower = false

  type nonrec t = {
    env : I.env;
    ch : t;
    mutable revoked : (Tx.t * Schnorr.public_key) option;
        (** A's first superseded commit + the rev key that state used *)
  }

  let open_channel (env : I.env) (cfg : I.config) =
    let ch =
      create ~t_end:cfg.t_end ~ledger:env.ledger ~rng:env.rng
        ~bal_a:cfg.bal_a ~bal_b:cfg.bal_b ()
    in
    Ok { env; ch; revoked = None }

  let update s ~bal_a ~bal_b =
    let old_rev_a = s.ch.a.rev_current.Keys.pk in
    let old_a, _old_b = update s.ch ~bal_a ~bal_b in
    if s.revoked = None then s.revoked <- Some (old_a, old_rev_a);
    Ok ()

  let sn s = s.ch.sn
  let funding s = funding_outpoint s.ch
  let party_bytes s = storage_bytes s.ch ~who:`A
  let watchtower_bytes _ = None

  let ops s =
    let signs, verifies = ops s.ch in
    { I.signs; verifies; exps = 0 }

  let known_pubkeys s =
    let side_keys sd =
      Keys.enc sd.main.Keys.pk
      :: Keys.enc sd.rev_current.Keys.pk
      :: List.map
           (fun (_, sk) -> Keys.enc (Schnorr.public_key_of_secret sk))
           sd.received_rev
    in
    side_keys s.ch.a @ side_keys s.ch.b

  let key_contexts s = I.contexts_of_pubkeys (known_pubkeys s)

  let collaborative_close s =
    let h0 = Ledger.height s.env.ledger in
    let latest = commit_of s.ch `A in
    let outputs =
      List.map2
        (fun (o : Tx.output) pk -> I.pay_to_pk ~value:o.Tx.value pk)
        latest.Tx.outputs
        [ s.ch.a.main.Keys.pk; s.ch.b.main.Keys.pk ]
    in
    let tx =
      I.coop_close_tx ~outpoint:(funding s) ~outputs
        ~sk_a:s.ch.a.main.Keys.sk ~sk_b:s.ch.b.main.Keys.sk
        ~wscript:
          (Some
             (Script.multisig_2 (Keys.enc s.ch.a.main.Keys.pk)
                (Keys.enc s.ch.b.main.Keys.pk)))
    in
    match I.post_confirmed s.env ~scheme:name ~stage:"collaborative_close" tx with
    | Error e -> Error e
    | Ok () ->
        Ok { I.punished = false; resolved = I.spent s.env (funding s);
             rounds = Ledger.height s.env.ledger - h0; trace = [ I.Settled ] }

  (* The sleepy victim wakes before T_end and claims the cheater's
     balance with the revealed revocation secret — no relative timer. *)
  let dishonest_close s =
    match s.revoked with
    | None ->
        I.fail ~scheme:name ~stage:"dishonest_close"
          "no revoked state (needs at least one update)"
    | Some (old_commit, _) ->
        let h0 = Ledger.height s.env.ledger in
        let ( let* ) = Result.bind in
        let revoked_i =
          match old_commit.Tx.inputs with [ i ] -> i.Tx.sequence | _ -> -1
        in
        let* () =
          I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" old_commit
        in
        (match punish s.ch ~victim:`B ~published:old_commit with
        | None ->
            Ok { I.punished = false; resolved = false;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published revoked_i; I.Cheater_escaped ] }
        | Some pen ->
            let* () =
              I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" pen
            in
            let ok = I.spent s.env (Tx.outpoint_of old_commit 0) in
            Ok { I.punished = ok; resolved = ok;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published revoked_i; I.Punished ] })

  (* The publisher can sweep her balance only after the absolute
     end-time T_end, so the sweep happens only when T_end is near
     enough to reach by ticking; otherwise the commit publication
     itself resolves the channel (the defining Sleepy trade-off). *)
  let force_close s =
    let h0 = Ledger.height s.env.ledger in
    let ( let* ) = Result.bind in
    let commit = commit_of s.ch `A in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" commit in
    let wait = remaining_lifetime s.ch in
    if wait >= 0 && wait <= 64 then (
      I.settle s.env wait;
      let sweep = sweep_own s.ch ~who:`A ~published:commit in
      let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" sweep in
      let ok = I.spent s.env (Tx.outpoint_of commit 0) in
      Ok { I.punished = false; resolved = ok;
           rounds = Ledger.height s.env.ledger - h0;
           trace = [ I.Latest_published; I.Settled ] })
    else
      Ok { I.punished = false; resolved = I.spent s.env (funding s);
           rounds = Ledger.height s.env.ledger - h0;
           trace = [ I.Latest_published ] }
end
