(** Daric as a {!Scheme_intf.SCHEME} instance.

    Unlike the baseline models in this directory, Daric is implemented
    as a full two-party protocol (lib/core): the wrapper drives the
    real {!Driver} round loop — INTRO/CREATE handshake, interactive
    updates, collaborative close, and the Punish daemon reacting to a
    replayed old commit — and measures storage with the byte-accurate
    {!Storage}/{!Watchtower} accounting.

    The channel state is transparent ([Scheme.t = state]) so the scale
    harness can drive many instances on one shared environment: hand
    each channel's record to an external watchtower, replay revoked
    commits with both parties corrupted, and let the tower (rather
    than a party's own Punish daemon) react. *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Storage = Daric_core.Storage
module Watchtower = Daric_core.Watchtower
module I = Scheme_intf

type state = {
  chan_id : string;
  env : I.env;
  d : Driver.t;
  alice : Party.t;
  bob : Party.t;
  pk_a : Daric_crypto.Schnorr.public_key;
  pk_b : Daric_crypto.Schnorr.public_key;
  old_commit : Tx.t;  (** Bob's state-0 commit, snapshotted at open *)
}

module Scheme : Scheme_intf.SCHEME with type t = state = struct
  let name = "Daric"
  let has_watchtower = true

  type t = state

  let open_channel (env : I.env) (cfg : I.config) =
    (* Party and watchtower state is indexed by channel id: claim it on
       the env so a second instance opened with the same config derives
       a distinct id instead of colliding in the shared indexes. *)
    let id = I.claim_chan_id env cfg.chan_id in
    (* The traffic log is capped so thousands of channels on one shared
       environment keep flat memory; byte/message totals are separate
       counters and unaffected. *)
    let d =
      Driver.create ~ledger:env.ledger ~net_log_cap:64
        ~seed:(cfg.party_seed + 41) ()
    in
    let alice = Party.create ~pid:("alice:" ^ id) ~seed:cfg.party_seed () in
    let bob = Party.create ~pid:("bob:" ^ id) ~seed:(cfg.party_seed + 1) () in
    Driver.add_party d alice;
    Driver.add_party d bob;
    Driver.open_channel d ~id ~alice ~bob ~bal_a:cfg.bal_a ~bal_b:cfg.bal_b
      ~rel_lock:cfg.rel_lock ();
    if not (Driver.run_until_operational d ~id ~alice ~bob) then
      I.fail ~scheme:name ~stage:"open_channel" "channel failed to open"
    else
      let c = Party.chan_exn alice id in
      let pk_a, pk_b = Party.main_pks c in
      match (Party.chan_exn bob id).Party.commit_mine with
      | None ->
          I.fail ~scheme:name ~stage:"open_channel" "no state-0 commit"
      | Some old_commit ->
          Ok { chan_id = id; env; d; alice; bob; pk_a; pk_b; old_commit }

  let update s ~bal_a ~bal_b =
    let theta =
      Daric_core.Txs.balance_state ~pk_a:s.pk_a ~pk_b:s.pk_b ~bal_a ~bal_b
    in
    if
      Driver.update_channel s.d ~id:s.chan_id ~initiator:s.alice
        ~responder:s.bob ~theta
    then Ok ()
    else I.fail ~scheme:name ~stage:"update" "update rejected or timed out"

  let sn s = (Party.chan_exn s.alice s.chan_id).Party.sn
  let funding s = Party.funding_outpoint (Party.chan_exn s.alice s.chan_id)
  let party_bytes s = Storage.party_bytes s.alice ~id:s.chan_id

  let watchtower_bytes s =
    match Watchtower.record_for s.alice ~id:s.chan_id with
    | Some r -> Some (Watchtower.record_bytes r)
    | None -> Some 0

  let ops s =
    let o = Party.ops s.alice in
    { I.signs = o.Party.signs; verifies = o.Party.verifies; exps = o.Party.exps }

  (* Daric's key inventory is state-independent (Table 1: O(1) keys):
     four key pairs per party cover every commit/split/revocation
     script the channel can ever produce. *)
  let known_pubkeys s =
    let c = Party.chan_exn s.alice s.chan_id in
    let ka, kb = Party.keys_ab c in
    let bundle (k : Daric_core.Keys.pub) =
      List.map Daric_core.Keys.enc
        [ k.Daric_core.Keys.main_pk; k.Daric_core.Keys.sp_pk;
          k.Daric_core.Keys.rv_pk; k.Daric_core.Keys.rv'_pk ]
    in
    bundle ka @ bundle kb

  let key_contexts s = I.contexts_of_pubkeys (known_pubkeys s)

  let saw s ev = Driver.saw_event s.alice ev

  (* Step the driver until [done_ ()] or [max] rounds elapse. *)
  let run_until s ~max done_ =
    let n = ref 0 in
    while (not (done_ ())) && !n < max do
      Driver.step s.d;
      incr n
    done;
    done_ ()

  let rel_lock s = (Party.chan_exn s.alice s.chan_id).Party.cfg.Party.rel_lock

  let collaborative_close s =
    let h0 = Ledger.height s.env.ledger in
    Party.request_close s.alice (Driver.ctx s.d s.alice.Party.pid)
      ~id:s.chan_id;
    let closed () = saw s (function Party.Closed _ -> true | _ -> false) in
    if run_until s ~max:20 closed then
      Ok { I.punished = false; resolved = true;
           rounds = Ledger.height s.env.ledger - h0; trace = [ I.Settled ] }
    else
      I.fail ~scheme:name ~stage:"collaborative_close"
        "close did not confirm in time"

  (* Corrupted Bob replays his state-0 commit; Alice's Punish daemon
     reacts with the floating revocation transaction. *)
  let dishonest_close s =
    if sn s = 0 then
      I.fail ~scheme:name ~stage:"dishonest_close"
        "no revoked state (needs at least one update)"
    else begin
      let h0 = Ledger.height s.env.ledger in
      Driver.corrupt s.d s.bob.Party.pid;
      Driver.adversary_post s.d s.old_commit;
      let punished () =
        saw s (function Party.Punished _ -> true | _ -> false)
      in
      let ok = run_until s ~max:((4 * rel_lock s) + 12) punished in
      Ok { I.punished = ok; resolved = ok;
           rounds = Ledger.height s.env.ledger - h0;
           trace =
             (if ok then [ I.Old_state_published 0; I.Punished ]
              else [ I.Old_state_published 0; I.Cheater_escaped ]) }
    end

  (* Alice posts her newest enforceable commit against an unresponsive
     Bob; the Punish daemon schedules the split after T rounds. *)
  let force_close s =
    let h0 = Ledger.height s.env.ledger in
    Driver.corrupt s.d s.bob.Party.pid;
    Party.force_close s.alice
      (Driver.ctx s.d s.alice.Party.pid)
      (Party.chan_exn s.alice s.chan_id);
    let closed () = saw s (function Party.Closed _ -> true | _ -> false) in
    let ok = run_until s ~max:((4 * rel_lock s) + 12) closed in
    if ok then
      Ok { I.punished = false; resolved = true;
           rounds = Ledger.height s.env.ledger - h0;
           trace = [ I.Latest_published; I.Settled ] }
    else
      I.fail ~scheme:name ~stage:"force_close" "split did not confirm in time"
end

(* ------------------------------------------------------------------ *)
(* Scale-harness access to the transparent state.                      *)

(** The channel id actually claimed on the environment at open. *)
let chan_id (s : state) : string = s.chan_id

(** Alice's current watchtower record for this channel ([None] until
    the first update — state 0 has nothing to revoke). *)
let watch_record (s : state) : Watchtower.record option =
  Watchtower.record_for s.alice ~id:s.chan_id

(** Freeze both parties and replay Bob's revoked state-0 commit on
    chain with no delay. With both punish daemons dead only an
    external watchtower holding the channel's record can react —
    exactly the delegated-monitoring scenario of the scale harness.
    Requires at least one prior update (otherwise state 0 is not
    revoked and the tower rightly stays silent). *)
let publish_revoked (s : state) : unit =
  Driver.corrupt s.d s.alice.Party.pid;
  Driver.corrupt s.d s.bob.Party.pid;
  Driver.adversary_post s.d s.old_commit
