(** Executable Cerberus channel [Avarikioti et al., FC 2020]
    (simplified).

    A Lightning-penalty-style channel whose watchtower is incentivized
    by collateral. Each party's commit transaction has two outputs
    (to_local and to_remote), BOTH revocable: the revocation branch is
    a 2-of-2 multisig between the victim's revocation key and the
    watchtower's (the 115-byte script of Appendix H.6), the normal
    branch is CSV-delayed to the owner. Punishing a revoked commit
    claims both outputs in a single transaction (534 witness + 123
    non-witness bytes; dishonest closure total 1798 WU). Per update
    each party signs 3 and verifies 6 (Table 3); storage is O(n). *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Schnorr = Daric_crypto.Schnorr
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys

type side = {
  main : Keys.keypair;
  delayed : Keys.keypair;
  mutable rev_current : Keys.keypair;
  mutable received_rev : (int * Schnorr.secret_key) list;  (** O(n) *)
}

type t = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  cash : int;
  rel_lock : int;
  fund : Tx.t;
  wt : Keys.keypair;
  mutable wt_rev : (int * Keys.keypair) list;
  a : side;
  b : side;
  mutable sn : int;
  mutable commit_a : Tx.t;
  mutable commit_b : Tx.t;
  mutable ops_signs : int;
  mutable ops_verifies : int;
  mutable ops_exps : int;
}

(** The 115-byte output script of Appendix H.6:
    [IF 2 <rev_pk1> <rev_pk2> 2 CMS
     ELSE <T> CSV DROP <delayed_pk> CHECKSIG ENDIF] *)
let output_script (t : t) ~(rev_pk1 : Schnorr.public_key)
    ~(rev_pk2 : Schnorr.public_key) ~(delayed_pk : Schnorr.public_key) :
    Script.t =
  [ Script.If; Small 2; Push (Keys.enc rev_pk1); Push (Keys.enc rev_pk2);
    Small 2; Checkmultisig; Else; Num t.rel_lock; Csv; Drop;
    Push (Keys.enc delayed_pk); Checksig; Endif ]

let gen_commit (t : t) ~(owner : [ `A | `B ]) ~(bal_own : int)
    ~(bal_other : int) : Tx.t =
  let own, other = match owner with `A -> (t.a, t.b) | `B -> (t.b, t.a) in
  let wt_pk = (List.assoc t.sn t.wt_rev).Keys.pk in
  let out who bal =
    { Tx.value = bal;
      spk =
        Tx.P2wsh
          (Script.hash
             (output_script t ~rev_pk1:who.rev_current.Keys.pk ~rev_pk2:wt_pk
                ~delayed_pk:who.delayed.Keys.pk)) }
  in
  Tx.make ~inputs:[ Tx.input_of_outpoint ~sequence:t.sn (Tx.outpoint_of t.fund 0) ] ~outputs:[ out own bal_own; out other bal_other ] ()

let sign_commit (t : t) (body : Tx.t) : Tx.t =
  let msg = Sighash.message All body ~input_index:0 in
  let sig_a = Sighash.sign_message t.a.main.Keys.sk All msg in
  let sig_b = Sighash.sign_message t.b.main.Keys.sk All msg in
  let script =
    Script.multisig_2 (Keys.enc t.a.main.Keys.pk) (Keys.enc t.b.main.Keys.pk)
  in
  Tx.with_witnesses body [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Wscript script ] ]

let create ?(rel_lock = 3) ~(ledger : Ledger.t) ~(rng : Daric_util.Rng.t)
    ~(bal_a : int) ~(bal_b : int) () : t =
  let mk_side () =
    { main = Keys.keygen rng; delayed = Keys.keygen rng;
      rev_current = Keys.keygen rng; received_rev = [] }
  in
  let a = mk_side () and b = mk_side () in
  let cash = bal_a + bal_b in
  let fund_src = Ledger.mint ledger ~value:cash ~spk:Tx.Op_return in
  let fund =
    Tx.make ~witnesses:[ [] ] ~inputs:[ Tx.input_of_outpoint fund_src ] ~outputs:[ { Tx.value = cash;
            spk =
              Tx.P2wsh
                (Script.hash
                   (Script.multisig_2 (Keys.enc a.main.Keys.pk)
                      (Keys.enc b.main.Keys.pk))) } ] ()
  in
  Ledger.record ledger fund;
  let empty = Tx.make ~inputs:[] ~outputs:[] () in
  let t =
    { ledger; rng = Daric_util.Rng.split rng; cash; rel_lock; fund;
      wt = Keys.keygen rng; wt_rev = []; a; b; sn = 0; commit_a = empty;
      commit_b = empty; ops_signs = 0; ops_verifies = 0; ops_exps = 0 }
  in
  t.wt_rev <- [ (0, Keys.keygen t.rng) ];
  t.commit_a <- sign_commit t (gen_commit t ~owner:`A ~bal_own:bal_a ~bal_other:bal_b);
  t.commit_b <- sign_commit t (gen_commit t ~owner:`B ~bal_own:bal_b ~bal_other:bal_a);
  t

let update (t : t) ~(bal_a : int) ~(bal_b : int) : Tx.t * Tx.t =
  let old = (t.commit_a, t.commit_b) in
  let old_rev_a = t.a.rev_current and old_rev_b = t.b.rev_current in
  t.sn <- t.sn + 1;
  t.a.rev_current <- Keys.keygen t.rng;
  t.b.rev_current <- Keys.keygen t.rng;
  t.wt_rev <- (t.sn, Keys.keygen t.rng) :: t.wt_rev;
  t.commit_a <- sign_commit t (gen_commit t ~owner:`A ~bal_own:bal_a ~bal_other:bal_b);
  t.commit_b <- sign_commit t (gen_commit t ~owner:`B ~bal_own:bal_b ~bal_other:bal_a);
  t.a.received_rev <- (t.sn - 1, old_rev_b.Keys.sk) :: t.a.received_rev;
  t.b.received_rev <- (t.sn - 1, old_rev_a.Keys.sk) :: t.b.received_rev;
  t.ops_signs <- t.ops_signs + 3;
  t.ops_verifies <- t.ops_verifies + 6;
  (* no fresh statements/exponentiations beyond key hashing in this
     simplified model (Table 3: exp = 0) *)
  old

(** Punish a revoked commit published by the counter-party: spend both
    outputs through their revocation branches (victim + watchtower
    keys). *)
let punish (t : t) ~(victim : [ `A | `B ]) ~(published : Tx.t) : Tx.t option =
  let side = match victim with `A -> t.a | `B -> t.b in
  let cheater = match victim with `A -> t.b | `B -> t.a in
  let revoked = match published.Tx.inputs with [ i ] -> i.sequence | _ -> -1 in
  match
    (List.assoc_opt revoked side.received_rev, List.assoc_opt revoked t.wt_rev)
  with
  | Some cheater_rev_sk, Some wt_rev ->
      (* output 0 = cheater's to_local (revocable with the cheater's
         leaked key); output 1 = victim's to_local on the cheater's
         commit, revocable with the victim's own old key — the victim
         archived it; regenerate via the OTHER side's received list *)
      let victim_rev_sk =
        match victim with
        | `A -> List.assoc revoked t.b.received_rev
        | `B -> List.assoc revoked t.a.received_rev
      in
      let body =
        Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of published 0);
              Tx.input_of_outpoint (Tx.outpoint_of published 1) ] ~outputs:[ { Tx.value = t.cash;
                spk =
                  Tx.P2wpkh
                    (Daric_crypto.Hash.hash160 (Keys.enc side.main.Keys.pk)) } ] ()
      in
      let wit i rev_sk delayed_pk =
        let script =
          output_script t
            ~rev_pk1:(Schnorr.public_key_of_secret rev_sk)
            ~rev_pk2:wt_rev.Keys.pk ~delayed_pk
        in
        [ Tx.Data "";
          Tx.Data (Sighash.sign rev_sk All body ~input_index:i);
          Tx.Data (Sighash.sign wt_rev.Keys.sk All body ~input_index:i);
          Tx.Data "\001"; Tx.Wscript script ]
      in
      Some
        (Tx.with_witnesses body [ wit 0 cheater_rev_sk cheater.delayed.Keys.pk;
              wit 1 victim_rev_sk side.delayed.Keys.pk ])
  | _ -> None

let commit_of (t : t) (who : [ `A | `B ]) : Tx.t =
  (match who with `A -> t.a | `B -> t.b) |> fun _ ->
  match who with `A -> t.commit_a | `B -> t.commit_b

let funding_outpoint (t : t) : Tx.outpoint = Tx.outpoint_of t.fund 0

let storage_bytes (t : t) ~(who : [ `A | `B ]) : int =
  let side = match who with `A -> t.a | `B -> t.b in
  let kp = 4 + Schnorr.public_key_size in
  let commit = match who with `A -> t.commit_a | `B -> t.commit_b in
  (3 * kp)
  + Tx.non_witness_size commit
  + Tx.witness_size commit
  + (List.length side.received_rev * 8)

let watchtower_bytes (t : t) : int = List.length t.wt_rev * (4 + 4 + 33)
let ops (t : t) : int * int * int = (t.ops_signs, t.ops_verifies, t.ops_exps)

(* ------------------------------------------------------------------ *)
(* SCHEME instance.                                                    *)

module Scheme : Scheme_intf.SCHEME = struct
  module I = Scheme_intf

  let name = "Cerberus"
  let has_watchtower = true

  type nonrec t = {
    env : I.env;
    ch : t;
    mutable revoked : Tx.t option;  (** A's first superseded commit *)
  }

  let open_channel (env : I.env) (cfg : I.config) =
    let ch =
      create ~rel_lock:cfg.rel_lock ~ledger:env.ledger ~rng:env.rng
        ~bal_a:cfg.bal_a ~bal_b:cfg.bal_b ()
    in
    Ok { env; ch; revoked = None }

  let update s ~bal_a ~bal_b =
    let old_a, _old_b = update s.ch ~bal_a ~bal_b in
    if s.revoked = None then s.revoked <- Some old_a;
    Ok ()

  let sn s = s.ch.sn
  let funding s = funding_outpoint s.ch
  let party_bytes s = storage_bytes s.ch ~who:`A
  let watchtower_bytes s = Some (watchtower_bytes s.ch)

  let ops s =
    let signs, verifies, exps = ops s.ch in
    { I.signs; verifies; exps }

  let known_pubkeys s =
    let side_keys sd =
      Keys.enc sd.main.Keys.pk
      :: Keys.enc sd.delayed.Keys.pk
      :: Keys.enc sd.rev_current.Keys.pk
      :: List.map
           (fun (_, sk) -> Keys.enc (Schnorr.public_key_of_secret sk))
           sd.received_rev
    in
    (Keys.enc s.ch.wt.Keys.pk
     :: List.map (fun (_, kp) -> Keys.enc kp.Keys.pk) s.ch.wt_rev)
    @ side_keys s.ch.a @ side_keys s.ch.b

  let key_contexts s = I.contexts_of_pubkeys (known_pubkeys s)

  let collaborative_close s =
    let h0 = Ledger.height s.env.ledger in
    let latest = commit_of s.ch `A in
    let outputs =
      List.map2
        (fun (o : Tx.output) pk -> I.pay_to_pk ~value:o.Tx.value pk)
        latest.Tx.outputs
        [ s.ch.a.main.Keys.pk; s.ch.b.main.Keys.pk ]
    in
    let tx =
      I.coop_close_tx ~outpoint:(funding s) ~outputs
        ~sk_a:s.ch.a.main.Keys.sk ~sk_b:s.ch.b.main.Keys.sk
        ~wscript:
          (Some
             (Script.multisig_2 (Keys.enc s.ch.a.main.Keys.pk)
                (Keys.enc s.ch.b.main.Keys.pk)))
    in
    match I.post_confirmed s.env ~scheme:name ~stage:"collaborative_close" tx with
    | Error e -> Error e
    | Ok () ->
        Ok { I.punished = false; resolved = I.spent s.env (funding s);
             rounds = Ledger.height s.env.ledger - h0; trace = [ I.Settled ] }

  let dishonest_close s =
    match s.revoked with
    | None ->
        I.fail ~scheme:name ~stage:"dishonest_close"
          "no revoked state (needs at least one update)"
    | Some old_commit ->
        let h0 = Ledger.height s.env.ledger in
        let ( let* ) = Result.bind in
        let revoked_i =
          match old_commit.Tx.inputs with [ i ] -> i.Tx.sequence | _ -> -1
        in
        let* () =
          I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" old_commit
        in
        (match punish s.ch ~victim:`B ~published:old_commit with
        | None ->
            Ok { I.punished = false; resolved = false;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published revoked_i; I.Cheater_escaped ] }
        | Some pen ->
            let* () =
              I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" pen
            in
            let ok = I.spent s.env (Tx.outpoint_of old_commit 0) in
            Ok { I.punished = ok; resolved = ok;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published revoked_i; I.Punished ] })

  (* A publishes its latest commit and, after the CSV delay, sweeps
     its own to_local output via the delayed branch. *)
  let force_close s =
    let h0 = Ledger.height s.env.ledger in
    let ( let* ) = Result.bind in
    let commit = commit_of s.ch `A in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" commit in
    I.settle s.env s.ch.rel_lock;
    let script =
      output_script s.ch ~rev_pk1:s.ch.a.rev_current.Keys.pk
        ~rev_pk2:(List.assoc s.ch.sn s.ch.wt_rev).Keys.pk
        ~delayed_pk:s.ch.a.delayed.Keys.pk
    in
    let value = (List.hd commit.Tx.outputs).Tx.value in
    let body =
      Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of commit 0) ] ~outputs:[ I.pay_to_pk ~value s.ch.a.main.Keys.pk ] ()
    in
    let sg = Sighash.sign s.ch.a.delayed.Keys.sk All body ~input_index:0 in
    let sweep =
      Tx.with_witnesses body [ [ Tx.Data sg; Tx.Data ""; Tx.Wscript script ] ]
    in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" sweep in
    let ok = I.spent s.env (Tx.outpoint_of commit 0) in
    Ok { I.punished = false; resolved = ok;
         rounds = Ledger.height s.env.ledger - h0;
         trace = [ I.Latest_published; I.Settled ] }
end
