(** Executable Outpost channel [Khabbazian, Nadahalli, Wattenhofer 2019]
    (simplified).

    Outpost makes the watchtower (almost) stateless: the data needed to
    punish revoked commits is embedded inside the commitment
    transactions themselves, so the tower keeps only static channel
    information plus the latest state number — O(log n) bits.

    Mechanics in this model:
    - each party's per-state revocation secret is an element of a
      reverse hash chain: secret(j) = H^(N-j)(seed), so the secret of
      any state j' >= j yields every older secret by further hashing;
    - every commit carries a 1-satoshi data output embedding the chain
      values of the just-revoked state, i.e. publishing ANY commit of
      state sn reveals on chain everything needed to punish any state
      j < sn;
    - the victim (or its tower) holds only the latest commit pair and
      the counter sn: reading the embedded values off its own latest
      commit and hashing down reaches every revoked state.

    Note on Table 1: the real Outpost keeps O(n) party storage; the
    reverse hash chain here makes party storage effectively constant at
    the price of a lifetime limited to n_max updates — the same
    trade-off the paper's Table 1 footnote describes for merkle-tree
    key pre-generation. The watchtower column (O(log n)) is the claim
    this model reproduces. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Schnorr = Daric_crypto.Schnorr
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys

(* Chain length bound: the model supports up to [n_max] updates. *)
let n_max = 4096

type side = {
  main : Keys.keypair;
  penalty : Keys.keypair;  (** static key shared with the watchtower *)
  seed : string;  (** root of the reverse revocation hash chain *)
  mutable chain_cache : string array;  (** lazily computed chain values *)
}

(** H^(n_max - j)(seed): the chain value for state j. Knowing the value
    for j' lets anyone compute it for any j <= j' by hashing further.
    The whole chain is materialized once per side (bench-friendly);
    punishers in the field derive values by hashing down instead. *)
let chain_value (s : side) ~(j : int) : string =
  if j < 0 || j > n_max then invalid_arg "Outpost.chain_value";
  if Array.length s.chain_cache = 0 then begin
    let c = Array.make (n_max + 1) "" in
    c.(n_max) <- Daric_crypto.Sha256.digest ("outpost/" ^ s.seed);
    for k = n_max - 1 downto 0 do
      c.(k) <- Daric_crypto.Sha256.digest c.(k + 1)
    done;
    s.chain_cache <- c
  end;
  s.chain_cache.(j)

let chain_down (value : string) ~(from_state : int) ~(to_state : int) : string =
  if to_state > from_state then invalid_arg "Outpost.chain_down";
  let v = ref value in
  for _ = 1 to from_state - to_state do
    v := Daric_crypto.Sha256.digest !v
  done;
  !v

let secret_of_value (v : string) : Schnorr.secret_key =
  1 + (Daric_crypto.Hash.digest_to_int v mod (Daric_crypto.Group.q - 1))

let rev_secret (s : side) ~(j : int) : Schnorr.secret_key =
  secret_of_value (chain_value s ~j)

let rev_pk (s : side) ~(j : int) : Schnorr.public_key =
  Schnorr.public_key_of_secret (rev_secret s ~j)

type t = {
  ledger : Ledger.t;
  cash : int;
  rel_lock : int;
  fund : Tx.t;
  a : side;
  b : side;
  mutable sn : int;
  mutable commit_a : Tx.t;
  mutable commit_b : Tx.t;
  mutable ops_signs : int;
  mutable ops_verifies : int;
}

(** Balance output: penalty 2-of-2 (the publisher's state-j revocation
    key + the victim's static penalty key) or the owner after the CSV
    delay. *)
let balance_script (t : t) ~(rev_pk : Schnorr.public_key)
    ~(penalty_pk : Schnorr.public_key) ~(owner_pk : Schnorr.public_key) :
    Script.t =
  [ Script.If; Small 2; Push (Keys.enc rev_pk); Push (Keys.enc penalty_pk);
    Small 2; Checkmultisig; Else; Num t.rel_lock; Csv; Drop;
    Push (Keys.enc owner_pk); Checksig; Endif ]

(** The embedded-data output: an OP_RETURN-style script carrying the
    chain values of the previous (just-revoked) state. *)
let data_script ~(value_a : string) ~(value_b : string) : Script.t =
  [ Script.Return; Push value_a; Push value_b ]

let gen_commit (t : t) ~(owner : [ `A | `B ]) ~(bal_own : int)
    ~(bal_other : int) : Tx.t =
  let own, other = match owner with `A -> (t.a, t.b) | `B -> (t.b, t.a) in
  (* revoked-state chain values: state sn-1 (zeros at state 0) *)
  let value_a, value_b =
    if t.sn = 0 then (String.make 32 '\000', String.make 32 '\000')
    else (chain_value t.a ~j:(t.sn - 1), chain_value t.b ~j:(t.sn - 1))
  in
  Tx.make ~inputs:[ Tx.input_of_outpoint ~sequence:t.sn (Tx.outpoint_of t.fund 0) ] ~outputs:[ { Tx.value = bal_own;
          spk =
            Tx.P2wsh
              (Script.hash
                 (balance_script t ~rev_pk:(rev_pk own ~j:t.sn)
                    ~penalty_pk:other.penalty.Keys.pk
                    ~owner_pk:own.main.Keys.pk)) };
        { Tx.value = bal_other;
          spk =
            Tx.P2wpkh (Daric_crypto.Hash.hash160 (Keys.enc other.main.Keys.pk)) };
        { Tx.value = 1; spk = Tx.Raw (data_script ~value_a ~value_b) } ] ()

let sign_commit (t : t) (body : Tx.t) : Tx.t =
  let msg = Sighash.message All body ~input_index:0 in
  let sig_a = Sighash.sign_message t.a.main.Keys.sk All msg in
  let sig_b = Sighash.sign_message t.b.main.Keys.sk All msg in
  let script =
    Script.multisig_2 (Keys.enc t.a.main.Keys.pk) (Keys.enc t.b.main.Keys.pk)
  in
  Tx.with_witnesses body [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Wscript script ] ]

let create ?(rel_lock = 3) ~(ledger : Ledger.t) ~(rng : Daric_util.Rng.t)
    ~(bal_a : int) ~(bal_b : int) () : t =
  let mk_side () =
    { main = Keys.keygen rng; penalty = Keys.keygen rng;
      seed = Daric_util.Rng.bytes rng 16; chain_cache = [||] }
  in
  let a = mk_side () and b = mk_side () in
  let cash = bal_a + bal_b in
  (* +1 satoshi funds the data-output carrier of whichever commit
     eventually closes the channel *)
  let fund_src = Ledger.mint ledger ~value:(cash + 1) ~spk:Tx.Op_return in
  let fund =
    Tx.make ~witnesses:[ [] ] ~inputs:[ Tx.input_of_outpoint fund_src ] ~outputs:[ { Tx.value = cash + 1;
            spk =
              Tx.P2wsh
                (Script.hash
                   (Script.multisig_2 (Keys.enc a.main.Keys.pk)
                      (Keys.enc b.main.Keys.pk))) } ] ()
  in
  Ledger.record ledger fund;
  let empty = Tx.make ~inputs:[] ~outputs:[] () in
  let t =
    { ledger; cash; rel_lock; fund; a; b; sn = 0; commit_a = empty;
      commit_b = empty; ops_signs = 0; ops_verifies = 0 }
  in
  t.commit_a <- sign_commit t (gen_commit t ~owner:`A ~bal_own:bal_a ~bal_other:bal_b);
  t.commit_b <- sign_commit t (gen_commit t ~owner:`B ~bal_own:bal_b ~bal_other:bal_a);
  t

let update (t : t) ~(bal_a : int) ~(bal_b : int) : Tx.t * Tx.t =
  let old = (t.commit_a, t.commit_b) in
  t.sn <- t.sn + 1;
  t.commit_a <- sign_commit t (gen_commit t ~owner:`A ~bal_own:bal_a ~bal_other:bal_b);
  t.commit_b <- sign_commit t (gen_commit t ~owner:`B ~bal_own:bal_b ~bal_other:bal_a);
  (* Table 3 (Outpost row): 4 signs / 4 verifies per update *)
  t.ops_signs <- t.ops_signs + 4;
  t.ops_verifies <- t.ops_verifies + 4;
  old

(** Read the embedded chain values out of a commit transaction. *)
let embedded_values (commit : Tx.t) : (string * string) option =
  match List.nth_opt commit.Tx.outputs 2 with
  | Some { Tx.spk = Tx.Raw [ Script.Return; Push a; Push b ]; _ } ->
      Some (a, b)
  | _ -> None

(** Punish a revoked commit of ANY state j < sn: read the chain values
    of state sn-1 off the victim's latest commit (or off any on-chain
    commit newer than j), hash down to state j, and claim the
    cheater's balance with the derived key plus the static penalty
    key. *)
let punish (t : t) ~(victim : [ `A | `B ]) ~(published : Tx.t) : Tx.t option =
  let side = match victim with `A -> t.a | `B -> t.b in
  let cheater = match victim with `A -> t.b | `B -> t.a in
  let revoked = match published.Tx.inputs with [ i ] -> i.sequence | _ -> -1 in
  if revoked < 0 || revoked >= t.sn then None
  else
    match embedded_values (match victim with `A -> t.commit_a | `B -> t.commit_b) with
    | None -> None
    | Some (value_a, value_b) ->
        let latest_embedded = t.sn - 1 in
        let v = match victim with `A -> value_b | `B -> value_a in
        let v_j = chain_down v ~from_state:latest_embedded ~to_state:revoked in
        let sk_rev = secret_of_value v_j in
        let script =
          balance_script t ~rev_pk:(Schnorr.public_key_of_secret sk_rev)
            ~penalty_pk:side.penalty.Keys.pk ~owner_pk:cheater.main.Keys.pk
        in
        let v_out = (List.nth published.Tx.outputs 0).Tx.value in
        let body =
          Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of published 0) ] ~outputs:[ { Tx.value = v_out;
                  spk =
                    Tx.P2wpkh
                      (Daric_crypto.Hash.hash160 (Keys.enc side.main.Keys.pk)) } ] ()
        in
        let sig_rev = Sighash.sign sk_rev All body ~input_index:0 in
        let sig_pen = Sighash.sign side.penalty.Keys.sk All body ~input_index:0 in
        Some
          (Tx.with_witnesses body [ [ Tx.Data ""; Tx.Data sig_rev; Tx.Data sig_pen; Tx.Data "\001";
                  Tx.Wscript script ] ])

let commit_of (t : t) (who : [ `A | `B ]) : Tx.t =
  match who with `A -> t.commit_a | `B -> t.commit_b

let funding_outpoint (t : t) : Tx.outpoint = Tx.outpoint_of t.fund 0

(** The Outpost watchtower's storage: static penalty key + funding
    outpoint + the state counter — O(log n) bits. *)
let watchtower_bytes (t : t) : int =
  ignore t;
  (4 + Schnorr.public_key_size) + 36 + 8

(** Party storage: keys, seed and the latest commit pair — constant
    apart from the O(log n) counter. *)
let storage_bytes (t : t) ~(who : [ `A | `B ]) : int =
  let kp = 4 + Schnorr.public_key_size in
  let commit = commit_of t who in
  (2 * kp) + 16 + Tx.non_witness_size commit + Tx.witness_size commit

let ops (t : t) : int * int = (t.ops_signs, t.ops_verifies)

(* ------------------------------------------------------------------ *)
(* SCHEME instance.                                                    *)

module Scheme : Scheme_intf.SCHEME = struct
  module I = Scheme_intf

  let name = "Outpost"
  let has_watchtower = true

  type nonrec t = {
    env : I.env;
    ch : t;
    mutable revoked : Tx.t option;  (** A's first superseded commit *)
  }

  let open_channel (env : I.env) (cfg : I.config) =
    let ch =
      create ~rel_lock:cfg.rel_lock ~ledger:env.ledger ~rng:env.rng
        ~bal_a:cfg.bal_a ~bal_b:cfg.bal_b ()
    in
    Ok { env; ch; revoked = None }

  (* The reverse hash chain bounds the channel lifetime to n_max
     updates; callers recreate the channel when it is exhausted. *)
  let update s ~bal_a ~bal_b =
    if s.ch.sn >= n_max then
      I.fail ~scheme:name ~stage:"update" "lifetime exhausted (n_max updates)"
    else begin
      let old_a, _old_b = update s.ch ~bal_a ~bal_b in
      if s.revoked = None then s.revoked <- Some old_a;
      Ok ()
    end

  let sn s = s.ch.sn
  let funding s = funding_outpoint s.ch
  let party_bytes s = storage_bytes s.ch ~who:`A
  let watchtower_bytes s = Some (watchtower_bytes s.ch)

  let ops s =
    let signs, verifies = ops s.ch in
    { I.signs; verifies; exps = 0 }

  let known_pubkeys s =
    let side_keys sd =
      Keys.enc sd.main.Keys.pk
      :: Keys.enc sd.penalty.Keys.pk
      :: List.init (s.ch.sn + 1) (fun j -> Keys.enc (rev_pk sd ~j))
    in
    side_keys s.ch.a @ side_keys s.ch.b

  (* Latest balances as recorded in A's latest commit outputs. *)
  let key_contexts s = I.contexts_of_pubkeys (known_pubkeys s)

  let bal s =
    match (commit_of s.ch `A).Tx.outputs with
    | own :: other :: _ -> (own.Tx.value, other.Tx.value)
    | _ -> (0, 0)

  let collaborative_close s =
    let h0 = Ledger.height s.env.ledger in
    let bal_a, bal_b = bal s in
    let tx =
      I.coop_close_tx ~outpoint:(funding s)
        ~outputs:
          [ I.pay_to_pk ~value:bal_a s.ch.a.main.Keys.pk;
            I.pay_to_pk ~value:bal_b s.ch.b.main.Keys.pk;
            (* the 1-satoshi data-output carrier is burned *)
            { Tx.value = 1; spk = Tx.Op_return } ]
        ~sk_a:s.ch.a.main.Keys.sk ~sk_b:s.ch.b.main.Keys.sk
        ~wscript:
          (Some
             (Script.multisig_2 (Keys.enc s.ch.a.main.Keys.pk)
                (Keys.enc s.ch.b.main.Keys.pk)))
    in
    match I.post_confirmed s.env ~scheme:name ~stage:"collaborative_close" tx with
    | Error e -> Error e
    | Ok () ->
        Ok { I.punished = false; resolved = I.spent s.env (funding s);
             rounds = Ledger.height s.env.ledger - h0; trace = [ I.Settled ] }

  let dishonest_close s =
    match s.revoked with
    | None ->
        I.fail ~scheme:name ~stage:"dishonest_close"
          "no revoked state (needs at least one update)"
    | Some old_commit ->
        let h0 = Ledger.height s.env.ledger in
        let ( let* ) = Result.bind in
        let revoked_i =
          match old_commit.Tx.inputs with [ i ] -> i.Tx.sequence | _ -> -1
        in
        let* () =
          I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" old_commit
        in
        (match punish s.ch ~victim:`B ~published:old_commit with
        | None ->
            Ok { I.punished = false; resolved = false;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published revoked_i; I.Cheater_escaped ] }
        | Some pen ->
            let* () =
              I.post_confirmed s.env ~scheme:name ~stage:"dishonest_close" pen
            in
            let ok = I.spent s.env (Tx.outpoint_of old_commit 0) in
            Ok { I.punished = ok; resolved = ok;
                 rounds = Ledger.height s.env.ledger - h0;
                 trace = [ I.Old_state_published revoked_i; I.Punished ] })

  (* A publishes its latest commit and, after the CSV delay, sweeps
     its own balance output via the delayed owner branch. *)
  let force_close s =
    let h0 = Ledger.height s.env.ledger in
    let ( let* ) = Result.bind in
    let commit = commit_of s.ch `A in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" commit in
    I.settle s.env s.ch.rel_lock;
    let script =
      balance_script s.ch ~rev_pk:(rev_pk s.ch.a ~j:s.ch.sn)
        ~penalty_pk:s.ch.b.penalty.Keys.pk ~owner_pk:s.ch.a.main.Keys.pk
    in
    let value = (List.hd commit.Tx.outputs).Tx.value in
    let body =
      Tx.make ~inputs:[ Tx.input_of_outpoint (Tx.outpoint_of commit 0) ] ~outputs:[ I.pay_to_pk ~value s.ch.a.main.Keys.pk ] ()
    in
    let sg = Sighash.sign s.ch.a.main.Keys.sk All body ~input_index:0 in
    let sweep =
      Tx.with_witnesses body [ [ Tx.Data sg; Tx.Data ""; Tx.Wscript script ] ]
    in
    let* () = I.post_confirmed s.env ~scheme:name ~stage:"force_close" sweep in
    let ok = I.spent s.env (Tx.outpoint_of commit 0) in
    Ok { I.punished = false; resolved = ok;
         rounds = Ledger.height s.env.ledger - h0;
         trace = [ I.Latest_published; I.Settled ] }
end
