(** Registry of the eight executable channel schemes, in
    {!Costmodel.all} row order. *)

val all : (module Scheme_intf.SCHEME) list

val name : (module Scheme_intf.SCHEME) -> string
val names : unit -> string list

val find : string -> (module Scheme_intf.SCHEME) option
val find_exn : string -> (module Scheme_intf.SCHEME)

val costmodel_row : (module Scheme_intf.SCHEME) -> Costmodel.scheme option
