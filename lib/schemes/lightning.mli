(** Executable Lightning channel (penalty-based) [Poon, Dryja 2016]:
    duplicated commits with revocable, CSV-delayed to_local outputs;
    per-state revocation secrets accumulate — the O(n) storage of
    Table 1. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys
module Schnorr = Daric_crypto.Schnorr

type party_keys = { main : Keys.keypair; delayed : Keys.keypair }

val to_local_script :
  revocation_pk:Schnorr.public_key -> delayed_pk:Schnorr.public_key ->
  rel_lock:int -> Script.t
(** The BOLT-3 to_local shape:
    IF <rev_pk> ELSE <T> CSV DROP <delayed_pk> ENDIF CHECKSIG. *)

type revocation = { index : int; secret : Schnorr.secret_key }

type side = {
  keys : party_keys;
  mutable rev_current : Keys.keypair;
  mutable received_secrets : revocation list;  (** O(n) growth *)
  mutable commit : Tx.t;
}

type t = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  cash : int;
  rel_lock : int;
  fund : Tx.t;
  a : side;
  b : side;
  mutable sn : int;
  mutable ops_signs : int;
  mutable ops_verifies : int;
  mutable ops_exps : int;
}

val create :
  ?rel_lock:int -> ledger:Ledger.t -> rng:Daric_util.Rng.t -> bal_a:int ->
  bal_b:int -> unit -> t

val update : t -> bal_a:int -> bal_b:int -> Tx.t * Tx.t
(** New revocation keys, new commits, old secrets exchanged; returns
    the superseded commit pair for adversarial replays. *)

val penalty :
  t -> victim:[ `A | `B ] -> published:Tx.t -> revoked_index:int -> Tx.t option
(** The victim claims the cheater's to_local output with the revealed
    secret; [None] if the state was never revoked. *)

val commit_of : t -> [ `A | `B ] -> Tx.t
val sweep_to_local : t -> who:[ `A | `B ] -> published:Tx.t -> Tx.t
val funding_outpoint : t -> Tx.outpoint

val storage_bytes : t -> who:[ `A | `B ] -> int
val watchtower_bytes : t -> int
val ops : t -> int * int * int

(** First-class {!Scheme_intf.SCHEME} instance driving this module
    through the generic lifecycle engine. *)
module Scheme : Scheme_intf.SCHEME
