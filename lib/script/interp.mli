(** Script interpreter.

    Runs a script against an initial witness stack within a spending
    context. Signature checking is delegated to a closure supplied by
    the transaction layer (which selects the SIGHASH message).
    Timelocks follow BIP-65/BIP-112: CLTV checks the spending
    transaction's nLockTime (same range class, at least the parameter);
    CSV checks the age in rounds of the spent output. *)

type context = {
  check_sig : pk_bytes:string -> sig_bytes:string -> bool;
  tx_locktime : int;  (** nLockTime of the spending transaction *)
  input_age : int;  (** rounds since the spent output was recorded *)
}

type error =
  | Stack_underflow
  | Verify_failed
  | Op_return
  | Unbalanced_conditional
  | Locktime_not_satisfied
  | Sequence_not_satisfied
  | Bad_multisig_arity
  | Non_canonical_number
  | Empty_final_stack
  | False_final_stack

val error_to_string : error -> string

val item_of_int : int -> string
(** Canonical stack encoding of a non-negative integer. *)

val decode_num : string -> int option
(** Canonical decode: accepts exactly the image of {!item_of_int}
    ("" for 0, one byte for 1..16, four bytes for anything larger);
    [None] on any non-minimal or otherwise non-canonical encoding. *)

val int_of_item : string -> int
(** {!decode_num}, raising the interpreter's [Non_canonical_number]
    failure on non-canonical input. *)

val truthy : string -> bool
(** Script truth: any non-zero byte present. *)

val locktime_threshold : int
(** 500,000,000 — locktimes below are block heights, above are UNIX
    timestamps. *)

val run : context -> Script.t -> string list -> (unit, error) result
(** [run ctx script stack] executes [script] on the initial [stack]
    (head = top). Success requires a truthy top at the end. *)
