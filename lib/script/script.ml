(** Bitcoin-style script: opcode set, byte sizing and pretty-printing.

    The byte-size conventions deliberately follow the counting used in
    the paper's Appendix H so that our *measured* transaction weights
    can be compared against its closed-form byte formulas:
    - [Small n] (OP_0..OP_16 style constants) costs 1 byte,
    - [Num v] (timelock/delay parameters) costs 4 bytes,
    - [Push data] costs 1 + length bytes (OP_DATA prefix),
    - every other opcode costs 1 byte. *)

type op =
  | Push of string  (** raw data push: pubkeys, hashes, preimages *)
  | Num of int  (** 4-byte script number: CLTV/CSV parameters *)
  | Small of int  (** small constant 0..16, used for multisig m/n and flags *)
  | If
  | Notif
  | Else
  | Endif
  | Verify
  | Return
  | Dup
  | Drop
  | Swap
  | Size
  | Equal
  | Equalverify
  | Hash160
  | Hash256
  | Sha256
  | Ripemd160
  | Checksig
  | Checksigverify
  | Checkmultisig
  | Checkmultisigverify
  | Cltv  (** OP_CHECKLOCKTIMEVERIFY *)
  | Csv  (** OP_CHECKSEQUENCEVERIFY *)

type t = op list

let op_size = function
  | Push data -> 1 + String.length data
  | Num _ -> 4
  | Small _ -> 1
  | If | Notif | Else | Endif | Verify | Return | Dup | Drop | Swap | Size
  | Equal | Equalverify | Hash160 | Hash256 | Sha256 | Ripemd160 | Checksig
  | Checksigverify | Checkmultisig | Checkmultisigverify | Cltv | Csv -> 1

(** Serialized script size in bytes (Appendix-H counting). *)
let size (s : t) : int = List.fold_left (fun acc op -> acc + op_size op) 0 s

(* Opcode tags for the canonical byte serialization (used for hashing
   scripts into P2WSH programs; sizes above are authoritative for
   weight accounting). *)
let tag = function
  | Push _ -> 0x01
  | Num _ -> 0x02
  | Small _ -> 0x03
  | If -> 0x63
  | Notif -> 0x64
  | Else -> 0x67
  | Endif -> 0x68
  | Verify -> 0x69
  | Return -> 0x6a
  | Dup -> 0x76
  | Drop -> 0x75
  | Swap -> 0x7c
  | Size -> 0x82
  | Equal -> 0x87
  | Equalverify -> 0x88
  | Hash160 -> 0xa9
  | Hash256 -> 0xaa
  | Sha256 -> 0xa8
  | Ripemd160 -> 0xa6
  | Checksig -> 0xac
  | Checksigverify -> 0xad
  | Checkmultisig -> 0xae
  | Checkmultisigverify -> 0xaf
  | Cltv -> 0xb1
  | Csv -> 0xb2

(** Canonical injective serialization, used to hash scripts (P2WSH). *)
let serialize (s : t) : string =
  let module W = Daric_util.Byteio.Writer in
  W.with_scratch (fun w ->
      List.iter
        (fun op ->
          W.byte w (tag op);
          match op with
          | Push data -> W.var_string w data
          | Num v -> W.u32 w v
          | Small v -> W.byte w v
          | _ -> ())
        s;
      W.contents w)

(* Script-hash memoization: every P2WSH spend verification and every
   output construction rehashes one of a handful of channel scripts.
   Scripts are immutable op lists, so the digest is memoized
   structurally; domain-local so witness verification on Dpool worker
   domains never races the main domain's table. Bounded, reset
   wholesale when full. *)
let hash_cache : (t, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let hash_cache_max = 1 lsl 14

let hash_uncached (s : t) : string = Daric_crypto.Sha256.digest (serialize s)

let hash (s : t) : string =
  let cache = Domain.DLS.get hash_cache in
  match Hashtbl.find_opt cache s with
  | Some h -> h
  | None ->
      let h = hash_uncached s in
      if Hashtbl.length cache >= hash_cache_max then Hashtbl.reset cache;
      Hashtbl.add cache s h;
      h

let pp_op ppf = function
  | Push d -> Fmt.pf ppf "<%s>" (Daric_util.Hex.short d)
  | Num v -> Fmt.pf ppf "%d" v
  | Small v -> Fmt.pf ppf "OP_%d" v
  | If -> Fmt.string ppf "OP_IF"
  | Notif -> Fmt.string ppf "OP_NOTIF"
  | Else -> Fmt.string ppf "OP_ELSE"
  | Endif -> Fmt.string ppf "OP_ENDIF"
  | Verify -> Fmt.string ppf "OP_VERIFY"
  | Return -> Fmt.string ppf "OP_RETURN"
  | Dup -> Fmt.string ppf "OP_DUP"
  | Drop -> Fmt.string ppf "OP_DROP"
  | Swap -> Fmt.string ppf "OP_SWAP"
  | Size -> Fmt.string ppf "OP_SIZE"
  | Equal -> Fmt.string ppf "OP_EQUAL"
  | Equalverify -> Fmt.string ppf "OP_EQUALVERIFY"
  | Hash160 -> Fmt.string ppf "OP_HASH160"
  | Hash256 -> Fmt.string ppf "OP_HASH256"
  | Sha256 -> Fmt.string ppf "OP_SHA256"
  | Ripemd160 -> Fmt.string ppf "OP_RIPEMD160"
  | Checksig -> Fmt.string ppf "OP_CHECKSIG"
  | Checksigverify -> Fmt.string ppf "OP_CHECKSIGVERIFY"
  | Checkmultisig -> Fmt.string ppf "OP_CHECKMULTISIG"
  | Checkmultisigverify -> Fmt.string ppf "OP_CHECKMULTISIGVERIFY"
  | Cltv -> Fmt.string ppf "OP_CHECKLOCKTIMEVERIFY"
  | Csv -> Fmt.string ppf "OP_CHECKSEQUENCEVERIFY"

let pp ppf (s : t) = Fmt.(list ~sep:sp pp_op) ppf s

(* ------------------------------------------------------------------ *)
(* Standard script templates shared by several channel constructions.  *)

(** [multisig_2 pk1 pk2]: 2 <pk1> <pk2> 2 OP_CHECKMULTISIG (71 bytes). *)
let multisig_2 (pk1 : string) (pk2 : string) : t =
  [ Small 2; Push pk1; Push pk2; Small 2; Checkmultisig ]

(** [p2pk pk]: <pk> OP_CHECKSIG. *)
let p2pk (pk : string) : t = [ Push pk; Checksig ]
