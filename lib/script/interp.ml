(** Script interpreter.

    Runs a script against an initial witness stack within a spending
    context. Signature checking is delegated to a closure supplied by
    the transaction-validation layer, which handles SIGHASH-flag message
    selection (SIGHASH_ALL vs ANYPREVOUT vs ANYPREVOUT|SINGLE).

    Timelock semantics follow BIP-65/BIP-112:
    - CLTV succeeds iff the spending transaction's nLockTime is of the
      same range class (block height < 500e6 vs timestamp) and at least
      the script parameter. The ledger separately enforces that the
      nLockTime itself has expired (check 5 of the ledger functionality).
    - CSV succeeds iff at least the script parameter's number of rounds
      have elapsed since the spent output was recorded on the ledger. *)

type context = {
  check_sig : pk_bytes:string -> sig_bytes:string -> bool;
      (** full signature verification, including message selection *)
  tx_locktime : int;  (** nLockTime of the spending transaction *)
  input_age : int;  (** rounds since the spent output was recorded *)
}

type error =
  | Stack_underflow
  | Verify_failed
  | Op_return
  | Unbalanced_conditional
  | Locktime_not_satisfied
  | Sequence_not_satisfied
  | Bad_multisig_arity
  | Non_canonical_number
  | Empty_final_stack
  | False_final_stack

let error_to_string = function
  | Stack_underflow -> "stack underflow"
  | Verify_failed -> "OP_VERIFY failed"
  | Op_return -> "OP_RETURN executed"
  | Unbalanced_conditional -> "unbalanced OP_IF/OP_ENDIF"
  | Locktime_not_satisfied -> "OP_CHECKLOCKTIMEVERIFY not satisfied"
  | Sequence_not_satisfied -> "OP_CHECKSEQUENCEVERIFY not satisfied"
  | Bad_multisig_arity -> "invalid multisig arity"
  | Non_canonical_number -> "non-canonical number encoding"
  | Empty_final_stack -> "empty stack at end of script"
  | False_final_stack -> "false value on top of stack at end of script"

exception Fail of error

(* Stack items are byte strings. *)

let item_of_int (v : int) : string =
  if v = 0 then ""
  else if v > 0 && v <= 16 then String.make 1 (Char.chr v)
  else Daric_crypto.Group.encode_int32 v

(* Canonical numbers are exactly the image of [item_of_int]: "" for 0,
   one byte for 1..16, four bytes only for values outside 0..16. *)
let decode_num (s : string) : int option =
  match String.length s with
  | 0 -> Some 0
  | 1 ->
      let v = Char.code s.[0] in
      if v >= 1 && v <= 16 then Some v else None
  | 4 ->
      let v = Daric_crypto.Group.decode_int32 s in
      if v >= 0 && v <= 16 then None else Some v
  | _ -> None

let int_of_item (s : string) : int =
  match decode_num s with
  | Some v -> v
  | None -> raise (Fail Non_canonical_number)

let truthy (s : string) : bool = String.exists (fun c -> c <> '\000') s

(* Locktimes below this threshold denote block heights; at or above it,
   timestamps (Bitcoin consensus constant). *)
let locktime_threshold = 500_000_000

let same_locktime_class a b =
  a < locktime_threshold = (b < locktime_threshold)

let run (ctx : context) (script : Script.t) (initial_stack : string list) :
    (unit, error) result =
  let stack = ref initial_stack in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | [] -> raise (Fail Stack_underflow)
    | x :: rest ->
        stack := rest;
        x
  in
  let peek () = match !stack with [] -> raise (Fail Stack_underflow) | x :: _ -> x in
  (* Conditional-execution state: one bool per enclosing IF, true when
     the current branch executes. *)
  let exec_stack = ref [] in
  let executing () = List.for_all (fun b -> b) !exec_stack in
  let step (op : Script.op) =
    match op with
    | Script.If ->
        if executing () then exec_stack := truthy (pop ()) :: !exec_stack
        else exec_stack := false :: !exec_stack
    | Notif ->
        if executing () then exec_stack := (not (truthy (pop ()))) :: !exec_stack
        else exec_stack := false :: !exec_stack
    | Else -> (
        match !exec_stack with
        | [] -> raise (Fail Unbalanced_conditional)
        | b :: rest -> exec_stack := (not b) :: rest)
    | Endif -> (
        match !exec_stack with
        | [] -> raise (Fail Unbalanced_conditional)
        | _ :: rest -> exec_stack := rest)
    | _ when not (executing ()) -> ()
    | Push d -> push d
    | Num v -> push (item_of_int v)
    | Small v -> push (item_of_int v)
    | Verify -> if not (truthy (pop ())) then raise (Fail Verify_failed)
    | Return -> raise (Fail Op_return)
    | Dup -> push (peek ())
    | Drop -> ignore (pop ())
    | Swap ->
        let a = pop () in
        let b = pop () in
        push a;
        push b
    | Size -> push (item_of_int (String.length (peek ())))
    | Equal ->
        let a = pop () in
        let b = pop () in
        push (item_of_int (if String.equal a b then 1 else 0))
    | Equalverify ->
        let a = pop () in
        let b = pop () in
        if not (String.equal a b) then raise (Fail Verify_failed)
    | Hash160 -> push (Daric_crypto.Hash.hash160 (pop ()))
    | Hash256 -> push (Daric_crypto.Hash.hash256 (pop ()))
    | Sha256 -> push (Daric_crypto.Sha256.digest (pop ()))
    | Ripemd160 -> push (Daric_crypto.Ripemd160.digest (pop ()))
    | Checksig ->
        let pk = pop () in
        let sg = pop () in
        push (item_of_int (if ctx.check_sig ~pk_bytes:pk ~sig_bytes:sg then 1 else 0))
    | Checksigverify ->
        let pk = pop () in
        let sg = pop () in
        if not (ctx.check_sig ~pk_bytes:pk ~sig_bytes:sg) then raise (Fail Verify_failed)
    | Checkmultisig | Checkmultisigverify ->
        let n = int_of_item (pop ()) in
        if n < 1 || n > 16 then raise (Fail Bad_multisig_arity);
        let pks = List.init n (fun _ -> pop ()) in
        (* popping reverses push order; restore script order *)
        let pks = List.rev pks in
        let m = int_of_item (pop ()) in
        if m < 1 || m > n then raise (Fail Bad_multisig_arity);
        let sigs = List.rev (List.init m (fun _ -> pop ())) in
        (* consume the historical extra (dummy) element *)
        ignore (pop ());
        (* each signature must match a pubkey, respecting pubkey order *)
        let rec check sigs pks =
          match (sigs, pks) with
          | [], _ -> true
          | _ :: _, [] -> false
          | sg :: sigs', pk :: pks' ->
              if ctx.check_sig ~pk_bytes:pk ~sig_bytes:sg then check sigs' pks'
              else check sigs pks'
        in
        let ok = check sigs pks in
        if op = Checkmultisig then push (item_of_int (if ok then 1 else 0))
        else if not ok then raise (Fail Verify_failed)
    | Cltv ->
        let t = int_of_item (peek ()) in
        if not (same_locktime_class t ctx.tx_locktime) || ctx.tx_locktime < t then
          raise (Fail Locktime_not_satisfied)
    | Csv ->
        let t = int_of_item (peek ()) in
        if ctx.input_age < t then raise (Fail Sequence_not_satisfied)
  in
  try
    List.iter step script;
    if !exec_stack <> [] then Error Unbalanced_conditional
    else
      match !stack with
      | [] -> Error Empty_final_stack
      | top :: _ -> if truthy top then Ok () else Error False_final_stack
  with Fail e -> Error e
