(** The global ledger functionality L(Δ, Σ) of the paper's Appendix C.

    The ledger runs on synchronous rounds. A posted transaction is
    recorded after an adversary-chosen delay of at most [delta] rounds,
    provided it passes the functionality's five validity checks: txid
    uniqueness; input existence and witness validity (with relative
    timelocks measured from each spent output's recording round);
    output validity; value conservation; absolute-timelock expiry.

    Absolute locktimes below 500,000,000 refer to the ledger height
    (one unit per round); larger values to the timestamp, which
    advances by [seconds_per_round] per round from [genesis_time].

    Chain-state reads are indexed — {!spender_of},
    {!recorded_round_of} and {!accepted_count} are O(1), and the
    append-only spent log ({!iter_spent_since}) lets monitors pay only
    for outpoints spent since their last poll. Rounds with several due
    transactions verify witnesses across {!Daric_util.Dpool} domains
    with rollback to an authoritative sequential replay on rejection,
    so acceptance semantics are identical to the sequential path. *)

module Tx = Daric_tx.Tx

type utxo = { recorded : int; output : Tx.output }

type reject_reason =
  | Duplicate_txid
  | Missing_input of Tx.outpoint
  | Invalid_witness of int * Daric_tx.Spend.error
  | Bad_output
  | Value_overspent
  | Locktime_in_future

val reject_to_string : reject_reason -> string

type event = Accepted of Tx.t | Rejected of Tx.t * reject_reason

type t

val default_genesis_time : int
(** 600,000,000 — leaves ~10^8 state numbers of headroom above the
    500e6 timestamp threshold used by Daric channels (S0). *)

val default_compact_depth : int
(** 16 — rounds an accepted transaction stays boxed before the log
    packs it to serialized bytes. *)

val create :
  ?genesis_time:int -> ?seconds_per_round:int -> ?compact_depth:int ->
  delta:int -> unit -> t
(** [compact_depth] (≥ 1) sets how many rounds behind the tip an
    accepted transaction is packed into the append-only byte arena;
    reads re-materialize transparently. *)

val height : t -> int
(** Current round (= block height). *)

val time : t -> int
(** Current ledger timestamp. *)

val delta : t -> int
(** The publication-delay bound Δ. *)

val locktime_expired : t -> int -> bool

val find_utxo : t -> Tx.outpoint -> utxo option
val is_unspent : t -> Tx.outpoint -> bool

val fold_utxos : t -> (Tx.outpoint -> utxo -> 'a -> 'a) -> 'a -> 'a
val total_value : t -> int

val spender_of : t -> Tx.outpoint -> Tx.t option
(** Which accepted transaction spent this outpoint, if any. O(1)
    (hashtable maintained on acceptance). *)

val spender_of_scan : t -> Tx.outpoint -> Tx.t option
(** Reference linear-scan spender lookup over the full accepted
    history — the pre-index cost shape, kept as the benchmark baseline
    and the differential-test oracle for {!spender_of}. *)

val recorded_round_of : t -> string -> int option
(** Round at which the given txid was recorded, if it was. O(1). *)

val accepted : t -> (int * Tx.t) list
(** All accepted transactions with recording rounds, oldest first.
    The list view is cached; repeated queries against an unchanged
    chain are O(1). *)

val accepted_count : t -> int
(** Number of accepted transactions. O(1). *)

val compacted_count : t -> int
(** Accepted-log entries currently held packed (serialized in the
    compaction arena) rather than as boxed transactions. *)

val pack_live_bytes : t -> int
(** Live packed bytes in the compaction arena. *)

val pack_capacity_bytes : t -> int
(** Heap bytes the compaction arena has allocated in chunks. *)

val spent_log_length : t -> int
(** Length of the append-only spent-outpoint log. A monitor stores
    this as its cursor and later reads everything after it. *)

val iter_spent_since : t -> cursor:int -> (Tx.outpoint -> unit) -> int
(** [iter_spent_since t ~cursor f] feeds every outpoint spent since
    [cursor] (in spend order) to [f] and returns the new cursor —
    O(newly spent), independent of chain length and channel count. *)

val validate : t -> Tx.t -> (unit, reject_reason) result
(** The five validity checks against the current state, witnesses
    verified inline per input. *)

val validate_deferring :
  t -> Tx.t -> defer:(Daric_tx.Sighash.deferred -> unit) ->
  (unit, reject_reason) result
(** Like {!validate} but every structurally valid signature check is
    handed to [defer] and assumed true. [Ok] plus an accepting
    {!discharge} of the deferred triples is equivalent to {!validate}
    returning [Ok]; [Error] implies {!validate} errors too. *)

val discharge : Daric_tx.Sighash.deferred list -> bool
(** Discharge deferred signature checks, splitting the batch across
    {!Daric_util.Dpool} domains (random-linear-combination batch
    verification per chunk; false-accept probability ≤ 2^-24 per
    item, as {!validate_batched}). *)

val validate_batched : t -> Tx.t -> (unit, reject_reason) result
(** Same acceptance set as {!validate}, but all signature checks are
    deferred and discharged in one
    {!Daric_crypto.Schnorr.batch_verify}; on any rejection it falls
    back to {!validate}, which isolates the invalid witness index. *)

(** Read-only overlay over the confirmed state: outpoints spent and
    outputs/txids produced by not-yet-committed acceptances. Staged
    validators (the sharded {!tick} reconciliation pass, the mempool's
    one-pass block assembly) accumulate acceptances here and commit
    through {!record} only after the round's deferred signature checks
    discharge — no speculative mutation, nothing to roll back. *)
module Staged : sig
  type view

  val create : t -> view
  val known_txid : view -> string -> bool
  val lookup : view -> Tx.outpoint -> utxo option

  val stage_accept : view -> Tx.t -> unit
  (** Overlay the effects of accepting a transaction (assumed
      validated against this view). *)
end

val validate_staged : Staged.view -> Tx.t -> (unit, reject_reason) result
(** {!validate} against a staged view. *)

val validate_deferring_staged :
  Staged.view -> Tx.t -> defer:(Daric_tx.Sighash.deferred -> unit) ->
  (unit, reject_reason) result
(** {!validate_deferring} against a staged view. *)

type checkpoint
(** Snapshot of everything {!record}, {!post}, {!mint} and {!tick}
    mutate; see {!rollback}. *)

val checkpoint : t -> checkpoint
(** O(1) for the immutable UTXO map plus O(pending) for the in-flight
    posting queue (bounded by Δ rounds of postings). *)

val rollback : t -> checkpoint -> unit
(** Undo every recording since the checkpoint — O(recorded since) —
    and restore the round, the pending queue and the mint counter, so
    rolling back works from any round at or after the checkpoint's
    (nested checkpoints may be re-entered in stack order — the model
    checker's DFS backtracking). Raises [Invalid_argument] only if the
    ledger sits at a round *before* the checkpoint's. Also used by
    optimistic validators ({!Mempool.tick} block assembly) to discard
    an optimistic prefix within a single round. *)

val pending_due : t -> (int * Tx.t list) list
(** Not-yet-due postings as [(due round, txs in posting order)],
    sorted by due round — deterministic regardless of internal
    hashtable order (used for state fingerprinting). *)

val record : t -> Tx.t -> unit
(** Record a transaction unconditionally (block production and
    environment setup; normal flow goes through {!post}). *)

val post : t -> Tx.t -> delay:int -> unit
(** Submit a transaction; [delay] (clamped to [\[0, delta\]]) models
    the adversary's scheduling. Validation happens when due. *)

val mint : t -> value:int -> spk:Tx.spk -> Tx.outpoint
(** Conjure a fresh funding UTXO (environment setup). *)

val tick : t -> event list
(** Advance one round: deliver due postings, return the round's
    events. *)
