(** The global ledger functionality L(Δ, Σ) of Appendix C.

    The ledger runs on synchronous rounds. A posted transaction is
    recorded after an adversary-chosen delay of at most [delta] rounds,
    provided it passes the five validity checks of the functionality:
    txid uniqueness; input existence and witness validity (including
    relative timelocks measured from the recording round of each spent
    output); output validity; value conservation; and absolute-timelock
    validity (nLockTime in the past).

    Absolute locktimes below 500,000,000 refer to the ledger height (one
    unit per round); larger values refer to the ledger timestamp, which
    advances by [seconds_per_round] per round from [genesis_time]
    (Section 4.1's block-height vs UNIX-timestamp distinction).

    Chain-state reads are indexed: spender lookups, recorded-round
    lookups and the accepted count are O(1), pending deliveries are
    bucketed by due round, and every spend is appended to an
    append-only *spent log* that watchtowers consume through a cursor —
    monitoring cost is O(newly spent outpoints), independent of both
    channel count and chain history. Rounds with several due
    transactions verify their witnesses across {!Daric_util.Dpool}
    domains, with journaled rollback to a sequential replay whenever
    the optimistic parallel pass rejects. *)

module Tx = Daric_tx.Tx
module Spend = Daric_tx.Spend
module Vec = Daric_util.Vec
module Dpool = Daric_util.Dpool

module Outpoint_map = Map.Make (struct
  type t = Tx.outpoint

  let compare (a : t) (b : t) =
    match String.compare a.txid b.txid with 0 -> compare a.vout b.vout | c -> c
end)

type utxo = { recorded : int; output : Tx.output }

type reject_reason =
  | Duplicate_txid
  | Missing_input of Tx.outpoint
  | Invalid_witness of int * Spend.error
  | Bad_output
  | Value_overspent
  | Locktime_in_future

let reject_to_string = function
  | Duplicate_txid -> "duplicate txid"
  | Missing_input o -> Fmt.str "missing input %a" Tx.pp_outpoint o
  | Invalid_witness (i, e) ->
      Fmt.str "invalid witness for input %d: %s" i (Spend.error_to_string e)
  | Bad_output -> "invalid output"
  | Value_overspent -> "outputs exceed inputs"
  | Locktime_in_future -> "nLockTime not yet expired"

type event =
  | Accepted of Tx.t
  | Rejected of Tx.t * reject_reason

let dummy_tx : Tx.t =
  { Tx.inputs = []; locktime = 0; outputs = []; witnesses = [] }

let dummy_outpoint : Tx.outpoint = { Tx.txid = ""; vout = 0 }

type t = {
  delta : int;
  genesis_time : int;
  seconds_per_round : int;
  mutable round : int;
  mutable utxos : utxo Outpoint_map.t;
  txids : (string, int) Hashtbl.t;  (** txid → recording round *)
  accepted_log : (int * Tx.t) Vec.t;  (** (round, tx), oldest first *)
  mutable accepted_view : (int * Tx.t) list;
      (** cached oldest-first list view of [accepted_log] *)
  mutable accepted_view_len : int;  (** log length the view reflects *)
  spenders : (Tx.outpoint, Tx.t) Hashtbl.t;  (** outpoint → spending tx *)
  spent_log : Tx.outpoint Vec.t;
      (** every spent outpoint in spend order — the watchtower
          notification feed (append-only; read through cursors) *)
  pending : (int, Tx.t list ref) Hashtbl.t;
      (** processing round → due txs, reverse posting order *)
  mutable events : event list;  (** events of the current round, newest first *)
  mutable mints : int;  (** counter making minted coinbase txids unique *)
}

(* The default genesis timestamp leaves ample room above the 500e6
   locktime threshold: channels initialised at S0 = 500e6 can perform
   ~10^8 updates before outrunning the clock. *)
let default_genesis_time = 600_000_000

let create ?(genesis_time = default_genesis_time) ?(seconds_per_round = 1)
    ~(delta : int) () : t =
  if delta < 0 then invalid_arg "Ledger.create: negative delta";
  { delta;
    genesis_time;
    seconds_per_round;
    round = 0;
    utxos = Outpoint_map.empty;
    txids = Hashtbl.create 64;
    accepted_log = Vec.create ~dummy:(0, dummy_tx) ();
    accepted_view = [];
    accepted_view_len = 0;
    spenders = Hashtbl.create 64;
    spent_log = Vec.create ~dummy:dummy_outpoint ();
    pending = Hashtbl.create 16;
    events = [];
    mints = 0 }

let height (t : t) : int = t.round
let time (t : t) : int = t.genesis_time + (t.round * t.seconds_per_round)
let delta (t : t) : int = t.delta

let locktime_expired (t : t) (locktime : int) : bool =
  if locktime < Daric_script.Interp.locktime_threshold then locktime <= height t
  else locktime <= time t

let find_utxo (t : t) (o : Tx.outpoint) : utxo option = Outpoint_map.find_opt o t.utxos

let is_unspent (t : t) (o : Tx.outpoint) : bool = Outpoint_map.mem o t.utxos

(** Fold over the current UTXO set. *)
let fold_utxos (t : t) (f : Tx.outpoint -> utxo -> 'a -> 'a) (init : 'a) : 'a =
  Outpoint_map.fold f t.utxos init

(** Total value held in the UTXO set (for conservation checks). *)
let total_value (t : t) : int =
  fold_utxos t (fun _ u acc -> acc + u.output.value) 0

(** Who spent this outpoint, if anyone (it must have existed). O(1). *)
let spender_of (t : t) (o : Tx.outpoint) : Tx.t option =
  Hashtbl.find_opt t.spenders o

(** Reference spender lookup: a linear scan of the full accepted
    history, reproducing the pre-index cost shape (the seed kept a
    historical spend list and scanned it per query). Kept runnable as
    the benchmark baseline and the differential-test oracle. *)
let spender_of_scan (t : t) (o : Tx.outpoint) : Tx.t option =
  let found = ref None in
  Vec.iter t.accepted_log (fun (_, tx) ->
      if !found = None then
        List.iter
          (fun (i : Tx.input) ->
            if !found = None && Tx.outpoint_equal i.prevout o then
              found := Some tx)
          tx.inputs);
  !found

(** Round at which [txid] was recorded, if it was. O(1). *)
let recorded_round_of (t : t) (txid : string) : int option =
  Hashtbl.find_opt t.txids txid

(** Number of accepted transactions. O(1). *)
let accepted_count (t : t) : int = Vec.length t.accepted_log

(** All accepted transactions with their recording round, oldest first.
    The list view is cached and only rebuilt after new recordings, so
    repeated queries against an unchanged chain are O(1). *)
let accepted (t : t) : (int * Tx.t) list =
  if t.accepted_view_len <> Vec.length t.accepted_log then begin
    t.accepted_view <- Vec.to_list t.accepted_log;
    t.accepted_view_len <- Vec.length t.accepted_log
  end;
  t.accepted_view

(* ---------------- spent-outpoint notification feed ---------------- *)

(** Length of the append-only spent log; a monitor stores this as its
    cursor and later asks for everything after it. *)
let spent_log_length (t : t) : int = Vec.length t.spent_log

(** [iter_spent_since t ~cursor f] feeds every outpoint spent since
    [cursor] (in spend order) to [f] and returns the new cursor. Cost
    is O(newly spent), regardless of chain length or channel count. *)
let iter_spent_since (t : t) ~(cursor : int) (f : Tx.outpoint -> unit) : int =
  Vec.iter_from t.spent_log ~from:cursor f;
  Vec.length t.spent_log

(* Shared shape of validation; [verify_witness] is either the inline
   verifier or the deferring one. *)
let validate_gen (t : t) (tx : Tx.t)
    ~(verify_witness :
       Tx.t -> input_index:int -> spent:Tx.output -> input_age:int ->
       (unit, Spend.error) result) : (unit, reject_reason) result =
  let txid = Tx.txid tx in
  if Hashtbl.mem t.txids txid then Error Duplicate_txid
  else if not (locktime_expired t tx.locktime) then Error Locktime_in_future
  else if
    List.exists (fun (o : Tx.output) -> o.value <= 0) tx.outputs
    || tx.outputs = []
  then Error Bad_output
  else
    (* inputs exist and witnesses verify *)
    let rec check_inputs i (inputs : Tx.input list) total_in =
      match inputs with
      | [] ->
          if Tx.total_output_value tx > total_in then Error Value_overspent
          else Ok ()
      | input :: rest -> (
          match find_utxo t input.prevout with
          | None -> Error (Missing_input input.prevout)
          | Some utxo -> (
              let input_age = t.round - utxo.recorded in
              match
                verify_witness tx ~input_index:i ~spent:utxo.output ~input_age
              with
              | Error e -> Error (Invalid_witness (i, e))
              | Ok () -> check_inputs (i + 1) rest (total_in + utxo.output.value)))
    in
    check_inputs 0 tx.inputs 0

let validate (t : t) (tx : Tx.t) : (unit, reject_reason) result =
  validate_gen t tx ~verify_witness:Spend.verify_input

(** Deferring validation: every structurally valid signature check is
    handed to [defer] and assumed true; all other checks run inline
    against the current state. [Ok] plus an accepting discharge of the
    deferred triples is equivalent to {!validate} returning [Ok];
    [Error] here implies {!validate} also errors (assuming checks true
    can only widen acceptance). *)
let validate_deferring (t : t) (tx : Tx.t)
    ~(defer : Daric_tx.Sighash.deferred -> unit) :
    (unit, reject_reason) result =
  validate_gen t tx
    ~verify_witness:(fun tx ~input_index ~spent ~input_age ->
      Spend.verify_input_deferred tx ~input_index ~spent ~input_age ~defer)

(** Discharge a set of deferred signature checks, splitting the batch
    across {!Daric_util.Dpool} domains (one random-linear-combination
    batch verification per chunk; sequential single batch when the
    pool has one domain). False-accept probability is bounded by
    2^-24 per item — identical to the per-transaction batching of
    {!validate_batched}. *)
let discharge (ds : Daric_tx.Sighash.deferred list) : bool =
  match ds with
  | [] -> true
  | ds ->
      let items =
        Array.of_list
          (List.rev_map (fun d -> Daric_tx.Sighash.(d.d_pk, d.d_msg, d.d_sig)) ds)
      in
      Dpool.all_chunks
        (fun chunk -> Daric_crypto.Schnorr.batch_verify (Array.to_list chunk))
        items

(** Batched witness validation: every signature check across all of
    [tx]'s inputs is deferred, then discharged in a single
    {!Daric_crypto.Schnorr.batch_verify} multi-exponentiation. Any
    rejection — a script error in the deferred pass or a rejecting
    batch — falls back to the inline {!validate}, whose per-input
    verification is authoritative and isolates the invalid witness
    (its index lands in [Invalid_witness]). Accepts exactly the same
    transactions as {!validate}: assuming a deferred check true can
    only make the deferred pass accept more often, and the batch then
    rejects unless every assumed check really holds. *)
let validate_batched (t : t) (tx : Tx.t) : (unit, reject_reason) result =
  let deferred = ref [] in
  let result = validate_deferring t tx ~defer:(fun d -> deferred := d :: !deferred) in
  match result with
  | Error _ -> validate t tx
  | Ok () -> (
      match !deferred with
      | [] -> Ok ()
      | ds ->
          let items =
            List.rev_map
              (fun d -> Daric_tx.Sighash.(d.d_pk, d.d_msg, d.d_sig))
              ds
          in
          if Daric_crypto.Schnorr.batch_verify items then Ok ()
          else validate t tx)

let record (t : t) (tx : Tx.t) =
  let txid = Tx.txid tx in
  Hashtbl.replace t.txids txid t.round;
  Vec.push t.accepted_log (t.round, tx);
  List.iter
    (fun (input : Tx.input) ->
      t.utxos <- Outpoint_map.remove input.prevout t.utxos;
      Hashtbl.replace t.spenders input.prevout tx;
      Vec.push t.spent_log input.prevout)
    tx.inputs;
  List.iteri
    (fun vout output ->
      t.utxos <-
        Outpoint_map.add { Tx.txid; vout } { recorded = t.round; output } t.utxos)
    tx.outputs;
  t.events <- Accepted tx :: t.events

(* ---------------- journaled rollback ---------------- *)

(** A checkpoint of everything {!record} mutates. The UTXO set is an
    immutable map (O(1) to snapshot); hashtable entries added since
    the checkpoint are recovered from the accepted-log slice, so a
    rollback costs O(recorded since checkpoint). The round must not
    change between {!checkpoint} and {!rollback}. *)
type checkpoint = {
  c_round : int;
  c_utxos : utxo Outpoint_map.t;
  c_events : event list;
  c_accepted_len : int;
  c_spent_len : int;
}

let checkpoint (t : t) : checkpoint =
  { c_round = t.round;
    c_utxos = t.utxos;
    c_events = t.events;
    c_accepted_len = Vec.length t.accepted_log;
    c_spent_len = Vec.length t.spent_log }

let rollback (t : t) (c : checkpoint) : unit =
  if t.round <> c.c_round then
    invalid_arg "Ledger.rollback: round advanced since checkpoint";
  Vec.iter_from t.accepted_log ~from:c.c_accepted_len (fun (_, tx) ->
      Hashtbl.remove t.txids (Tx.txid tx);
      List.iter
        (fun (i : Tx.input) -> Hashtbl.remove t.spenders i.prevout)
        tx.inputs);
  Vec.truncate t.accepted_log c.c_accepted_len;
  Vec.truncate t.spent_log c.c_spent_len;
  t.utxos <- c.c_utxos;
  t.events <- c.c_events;
  (* the cached oldest-first view may reflect rolled-back entries *)
  if t.accepted_view_len > c.c_accepted_len then begin
    t.accepted_view <- [];
    t.accepted_view_len <- 0
  end

(** [post t tx ~delay] submits [tx]; the adversary-chosen [delay] is
    clamped to [0, delta]. The transaction is (re)validated when due.
    Bucketed by processing round: a delay of d lands at round
    [round + max d 1] (a 0-delay post is still processed at the next
    tick, as the list-based pending queue always did). *)
let post (t : t) (tx : Tx.t) ~(delay : int) =
  let delay = max 0 (min t.delta delay) in
  let due = t.round + max delay 1 in
  match Hashtbl.find_opt t.pending due with
  | Some l -> l := tx :: !l
  | None -> Hashtbl.add t.pending due (ref [ tx ])

(** [mint t ~value ~spk] conjures a fresh funding UTXO (environment
    setup — stands in for pre-existing on-chain coins). *)
let mint (t : t) ~(value : int) ~(spk : Tx.spk) : Tx.outpoint =
  t.mints <- t.mints + 1;
  (* A unique synthetic input keeps the txids of otherwise-identical
     minted outputs distinct; [record] bypasses input validation. *)
  let coinbase =
    { Tx.prevout = { Tx.txid = Fmt.str "coinbase#%d" t.mints; vout = 0 };
      sequence = Tx.default_sequence }
  in
  let tx =
    { Tx.inputs = [ coinbase ];
      locktime = 0;
      outputs = [ { Tx.value; spk } ];
      witnesses = [] }
  in
  record t tx;
  { Tx.txid = Tx.txid tx; vout = 0 }

(* Authoritative sequential processing of a round's due transactions. *)
let process_sequential (t : t) (due : Tx.t list) : unit =
  List.iter
    (fun tx ->
      match validate_batched t tx with
      | Ok () -> record t tx
      | Error reason -> t.events <- Rejected (tx, reason) :: t.events)
    due

(* Optimistic parallel processing: walk the due transactions in
   posting order, deferring every signature check and recording
   accepters immediately (so later transactions validate against the
   same incremental state the sequential path would build), then
   discharge all deferred checks at once across Dpool domains. If the
   discharge rejects — some optimistically recorded transaction had an
   invalid witness — roll the whole round back and replay it
   sequentially; the sequential path is authoritative.

   Deferred triples are only added to the round's batch for
   transactions that pass the deferring validation; a transaction
   rejected in the deferring pass is rejected by the inline validator
   too (deferral only widens acceptance), which is re-run to emit the
   same isolating reject reason the sequential path reports. *)
let process_parallel (t : t) (due : Tx.t list) : unit =
  let ckpt = checkpoint t in
  let deferred = ref [] in
  List.iter
    (fun tx ->
      let mine = ref [] in
      match validate_deferring t tx ~defer:(fun d -> mine := d :: !mine) with
      | Ok () ->
          deferred := List.rev_append !mine !deferred;
          record t tx
      | Error _ -> (
          match validate t tx with
          | Error reason -> t.events <- Rejected (tx, reason) :: t.events
          | Ok () ->
              (* unreachable (deferral only widens acceptance), but if
                 the impossible happens the inline verdict wins *)
              record t tx))
    due;
  if not (discharge !deferred) then begin
    rollback t ckpt;
    process_sequential t due
  end

(* Parallel processing only pays once a round carries enough deferred
   work to split; below this many due transactions the sequential path
   is used directly. *)
let parallel_min_due = 2

(** Advance one round: deliver due pending transactions (in posting
    order) and return this round's events. *)
let tick (t : t) : event list =
  t.round <- t.round + 1;
  t.events <- [];
  let due =
    match Hashtbl.find_opt t.pending t.round with
    | None -> []
    | Some l ->
        Hashtbl.remove t.pending t.round;
        List.rev !l
  in
  (match due with
  | [] -> ()
  | _ :: rest when rest <> [] && Dpool.count () > 1
                   && List.length due >= parallel_min_due ->
      process_parallel t due
  | _ -> process_sequential t due);
  List.rev t.events
