(** The global ledger functionality L(Δ, Σ) of Appendix C.

    The ledger runs on synchronous rounds. A posted transaction is
    recorded after an adversary-chosen delay of at most [delta] rounds,
    provided it passes the five validity checks of the functionality:
    txid uniqueness; input existence and witness validity (including
    relative timelocks measured from the recording round of each spent
    output); output validity; value conservation; and absolute-timelock
    validity (nLockTime in the past).

    Absolute locktimes below 500,000,000 refer to the ledger height (one
    unit per round); larger values refer to the ledger timestamp, which
    advances by [seconds_per_round] per round from [genesis_time]
    (Section 4.1's block-height vs UNIX-timestamp distinction).

    Chain-state reads are indexed: spender lookups, recorded-round
    lookups and the accepted count are O(1), pending deliveries are
    bucketed by due round, and every spend is appended to an
    append-only *spent log* that watchtowers consume through a cursor —
    monitoring cost is O(newly spent outpoints), independent of both
    channel count and chain history. Rounds with several due
    transactions verify their witnesses across {!Daric_util.Dpool}
    domains, with journaled rollback to a sequential replay whenever
    the optimistic parallel pass rejects. *)

module Tx = Daric_tx.Tx
module Txcodec = Daric_tx.Txcodec
module Spend = Daric_tx.Spend
module Vec = Daric_util.Vec
module Arena = Daric_util.Arena
module Dpool = Daric_util.Dpool

module Outpoint_map = Map.Make (struct
  type t = Tx.outpoint

  let compare (a : t) (b : t) =
    match String.compare a.txid b.txid with 0 -> compare a.vout b.vout | c -> c
end)

type utxo = { recorded : int; output : Tx.output }

type reject_reason =
  | Duplicate_txid
  | Missing_input of Tx.outpoint
  | Invalid_witness of int * Spend.error
  | Bad_output
  | Value_overspent
  | Locktime_in_future

let reject_to_string = function
  | Duplicate_txid -> "duplicate txid"
  | Missing_input o -> Fmt.str "missing input %a" Tx.pp_outpoint o
  | Invalid_witness (i, e) ->
      Fmt.str "invalid witness for input %d: %s" i (Spend.error_to_string e)
  | Bad_output -> "invalid output"
  | Value_overspent -> "outputs exceed inputs"
  | Locktime_in_future -> "nLockTime not yet expired"

type event =
  | Accepted of Tx.t
  | Rejected of Tx.t * reject_reason

let dummy_tx : Tx.t = Tx.empty

let dummy_outpoint : Tx.outpoint = { Tx.txid = ""; vout = 0 }

(** An accepted-log entry. Entries start [Live] and, once
    [compact_depth] rounds deep (reorg-safe territory for every
    rollback user, which operates within a single round), are packed
    to their serialized bytes in the [pack] arena — the major GC then
    scans one slot-record per entry instead of the whole transaction
    graph. Reads re-materialize transparently. Transactions the
    persistence codec cannot express (raw-script outputs from
    adversarial tests) simply stay [Live]. *)
type log_entry = Live of Tx.t | Packed of Arena.slot

type t = {
  delta : int;
  genesis_time : int;
  seconds_per_round : int;
  compact_depth : int;
      (** accepted txs this many rounds behind the tip are packed *)
  mutable round : int;
  mutable utxos : utxo Outpoint_map.t;
  txids : (string, int) Hashtbl.t;  (** txid → recording round *)
  accepted_log : (int * log_entry) Vec.t;  (** (round, entry), oldest first *)
  pack : Arena.t;  (** packed bytes of compacted entries *)
  mutable compact_watermark : int;
      (** accepted-log index up to which compaction has scanned *)
  mutable compacted : int;  (** entries currently packed *)
  mutable accepted_view : (int * Tx.t) list;
      (** cached oldest-first list view of [accepted_log] *)
  mutable accepted_view_len : int;  (** log length the view reflects *)
  spenders : (Tx.outpoint, int) Hashtbl.t;
      (** outpoint → accepted-log index of the spending tx *)
  spent_log : Tx.outpoint Vec.t;
      (** every spent outpoint in spend order — the watchtower
          notification feed (append-only; read through cursors) *)
  pending : (int, Tx.t Vec.t) Hashtbl.t;
      (** processing round → due txs, posting order *)
  mutable events : event list;  (** events of the current round, newest first *)
  mutable mints : int;  (** counter making minted coinbase txids unique *)
}

(* The default genesis timestamp leaves ample room above the 500e6
   locktime threshold: channels initialised at S0 = 500e6 can perform
   ~10^8 updates before outrunning the clock. *)
let default_genesis_time = 600_000_000

let default_compact_depth = 16

let create ?(genesis_time = default_genesis_time) ?(seconds_per_round = 1)
    ?(compact_depth = default_compact_depth) ~(delta : int) () : t =
  if delta < 0 then invalid_arg "Ledger.create: negative delta";
  if compact_depth < 1 then invalid_arg "Ledger.create: compact_depth < 1";
  { delta;
    genesis_time;
    seconds_per_round;
    compact_depth;
    round = 0;
    utxos = Outpoint_map.empty;
    txids = Hashtbl.create 64;
    accepted_log = Vec.create ~dummy:(0, Live dummy_tx) ();
    pack = Arena.create ();
    compact_watermark = 0;
    compacted = 0;
    accepted_view = [];
    accepted_view_len = 0;
    spenders = Hashtbl.create 64;
    spent_log = Vec.create ~dummy:dummy_outpoint ();
    pending = Hashtbl.create 16;
    events = [];
    mints = 0 }

let height (t : t) : int = t.round
let time (t : t) : int = t.genesis_time + (t.round * t.seconds_per_round)
let delta (t : t) : int = t.delta

let locktime_expired (t : t) (locktime : int) : bool =
  if locktime < Daric_script.Interp.locktime_threshold then locktime <= height t
  else locktime <= time t

let find_utxo (t : t) (o : Tx.outpoint) : utxo option = Outpoint_map.find_opt o t.utxos

let is_unspent (t : t) (o : Tx.outpoint) : bool = Outpoint_map.mem o t.utxos

(** Fold over the current UTXO set. *)
let fold_utxos (t : t) (f : Tx.outpoint -> utxo -> 'a -> 'a) (init : 'a) : 'a =
  Outpoint_map.fold f t.utxos init

(** Total value held in the UTXO set (for conservation checks). *)
let total_value (t : t) : int =
  fold_utxos t (fun _ u acc -> acc + u.output.value) 0

(* Re-materialize a log entry (decode of the packed bytes; identity
   for live entries). *)
let entry_tx (t : t) (e : log_entry) : Tx.t =
  match e with
  | Live tx -> tx
  | Packed slot -> Txcodec.decode_tx_exn (Arena.read t.pack slot)

(** Who spent this outpoint, if anyone (it must have existed). O(1)
    index lookup plus at most one packed-entry decode. *)
let spender_of (t : t) (o : Tx.outpoint) : Tx.t option =
  match Hashtbl.find_opt t.spenders o with
  | None -> None
  | Some idx ->
      let _, e = Vec.get t.accepted_log idx in
      Some (entry_tx t e)

(** Reference spender lookup: a linear scan of the full accepted
    history, reproducing the pre-index cost shape (the seed kept a
    historical spend list and scanned it per query). Kept runnable as
    the benchmark baseline and the differential-test oracle. Packed
    entries are matched on a decode of their inputs prefix alone; only
    the winning entry is fully materialized. *)
let spender_of_scan (t : t) (o : Tx.outpoint) : Tx.t option =
  let found = ref None in
  Vec.iter t.accepted_log (fun (_, e) ->
      if !found = None then
        match e with
        | Live tx ->
            List.iter
              (fun (i : Tx.input) ->
                if !found = None && Tx.outpoint_equal i.prevout o then
                  found := Some tx)
              tx.inputs
        | Packed slot ->
            let blob = Arena.read t.pack slot in
            if
              List.exists
                (fun (i : Tx.input) -> Tx.outpoint_equal i.prevout o)
                (Txcodec.decode_inputs_prefix blob)
            then found := Some (Txcodec.decode_tx_exn blob));
  !found

(** Round at which [txid] was recorded, if it was. O(1). *)
let recorded_round_of (t : t) (txid : string) : int option =
  Hashtbl.find_opt t.txids txid

(** Number of accepted transactions. O(1). *)
let accepted_count (t : t) : int = Vec.length t.accepted_log

(** All accepted transactions with their recording round, oldest first.
    The list view is cached and only rebuilt after new recordings, so
    repeated queries against an unchanged chain are O(1). *)
let accepted (t : t) : (int * Tx.t) list =
  if t.accepted_view_len <> Vec.length t.accepted_log then begin
    let acc = ref [] in
    Vec.iter t.accepted_log (fun (r, e) -> acc := (r, entry_tx t e) :: !acc);
    t.accepted_view <- List.rev !acc;
    t.accepted_view_len <- Vec.length t.accepted_log
  end;
  t.accepted_view

(* ---------------- accepted-log compaction ---------------- *)

(** Entries currently held packed (vs live) in the accepted log. *)
let compacted_count (t : t) : int = t.compacted

let pack_live_bytes (t : t) : int = Arena.live_bytes t.pack
let pack_capacity_bytes (t : t) : int = Arena.capacity_bytes t.pack

(* Pack every entry recorded at least [compact_depth] rounds ago. The
   log is in nondecreasing round order, so one watermark cursor makes
   this amortized O(1) per accepted transaction. *)
let compact_tail (t : t) : unit =
  let n = Vec.length t.accepted_log in
  let horizon = t.round - t.compact_depth in
  let continue_ = ref true in
  while !continue_ && t.compact_watermark < n do
    let r, e = Vec.get t.accepted_log t.compact_watermark in
    if r > horizon then continue_ := false
    else begin
      (match e with
      | Live tx when Txcodec.packable tx ->
          let slot = Arena.store t.pack (Txcodec.encode_tx tx) in
          Vec.set t.accepted_log t.compact_watermark (r, Packed slot);
          t.compacted <- t.compacted + 1
      | Live _ | Packed _ -> ());
      t.compact_watermark <- t.compact_watermark + 1
    end
  done

(* ---------------- spent-outpoint notification feed ---------------- *)

(** Length of the append-only spent log; a monitor stores this as its
    cursor and later asks for everything after it. *)
let spent_log_length (t : t) : int = Vec.length t.spent_log

(** [iter_spent_since t ~cursor f] feeds every outpoint spent since
    [cursor] (in spend order) to [f] and returns the new cursor. Cost
    is O(newly spent), regardless of chain length or channel count. *)
let iter_spent_since (t : t) ~(cursor : int) (f : Tx.outpoint -> unit) : int =
  Vec.iter_from t.spent_log ~from:cursor f;
  Vec.length t.spent_log

(* Shared shape of validation, parameterized over the state view:
   [known_txid] and [lookup] default to the ledger's confirmed state,
   but staged validators (sharded tick, block assembly) substitute
   views that overlay not-yet-committed effects. [verify_witness] is
   either the inline verifier or the deferring one. *)
let validate_gen (t : t) (tx : Tx.t) ~(known_txid : string -> bool)
    ~(lookup : Tx.outpoint -> utxo option)
    ~(verify_witness :
       Tx.t -> input_index:int -> spent:Tx.output -> input_age:int ->
       (unit, Spend.error) result) : (unit, reject_reason) result =
  let txid = Tx.txid tx in
  if known_txid txid then Error Duplicate_txid
  else if not (locktime_expired t tx.locktime) then Error Locktime_in_future
  else if
    List.exists (fun (o : Tx.output) -> o.value <= 0) tx.outputs
    || tx.outputs = []
  then Error Bad_output
  else
    (* inputs exist and witnesses verify *)
    let rec check_inputs i (inputs : Tx.input list) total_in =
      match inputs with
      | [] ->
          if Tx.total_output_value tx > total_in then Error Value_overspent
          else Ok ()
      | input :: rest -> (
          match lookup input.prevout with
          | None -> Error (Missing_input input.prevout)
          | Some utxo -> (
              let input_age = t.round - utxo.recorded in
              match
                verify_witness tx ~input_index:i ~spent:utxo.output ~input_age
              with
              | Error e -> Error (Invalid_witness (i, e))
              | Ok () -> check_inputs (i + 1) rest (total_in + utxo.output.value)))
    in
    check_inputs 0 tx.inputs 0

let chain_txid (t : t) (id : string) : bool = Hashtbl.mem t.txids id

let validate (t : t) (tx : Tx.t) : (unit, reject_reason) result =
  validate_gen t tx ~known_txid:(chain_txid t) ~lookup:(find_utxo t)
    ~verify_witness:Spend.verify_input

(** Deferring validation: every structurally valid signature check is
    handed to [defer] and assumed true; all other checks run inline
    against the current state. [Ok] plus an accepting discharge of the
    deferred triples is equivalent to {!validate} returning [Ok];
    [Error] here implies {!validate} also errors (assuming checks true
    can only widen acceptance). *)
let validate_deferring (t : t) (tx : Tx.t)
    ~(defer : Daric_tx.Sighash.deferred -> unit) :
    (unit, reject_reason) result =
  validate_gen t tx ~known_txid:(chain_txid t) ~lookup:(find_utxo t)
    ~verify_witness:(fun tx ~input_index ~spent ~input_age ->
      Spend.verify_input_deferred tx ~input_index ~spent ~input_age ~defer)

(** Discharge a set of deferred signature checks, splitting the batch
    across {!Daric_util.Dpool} domains (one random-linear-combination
    batch verification per chunk; sequential single batch when the
    pool has one domain). False-accept probability is bounded by
    2^-24 per item — identical to the per-transaction batching of
    {!validate_batched}. *)
let discharge (ds : Daric_tx.Sighash.deferred list) : bool =
  match ds with
  | [] -> true
  | ds ->
      let items =
        Array.of_list
          (List.rev_map (fun d -> Daric_tx.Sighash.(d.d_pk, d.d_msg, d.d_sig)) ds)
      in
      (* pooled: triples whose key context is resident on the executing
         domain discharge through per-key window tables (always the case
         for pinned channel keys when the pool runs sequentially on the
         protocol domain); the rest join the plain batch unchanged *)
      Dpool.all_chunks
        (fun chunk ->
          Daric_crypto.Schnorr.batch_verify_pooled (Array.to_list chunk))
        items

(** Batched witness validation: every signature check across all of
    [tx]'s inputs is deferred, then discharged in a single
    {!Daric_crypto.Schnorr.batch_verify} multi-exponentiation. Any
    rejection — a script error in the deferred pass or a rejecting
    batch — falls back to the inline {!validate}, whose per-input
    verification is authoritative and isolates the invalid witness
    (its index lands in [Invalid_witness]). Accepts exactly the same
    transactions as {!validate}: assuming a deferred check true can
    only make the deferred pass accept more often, and the batch then
    rejects unless every assumed check really holds. *)
let validate_batched (t : t) (tx : Tx.t) : (unit, reject_reason) result =
  let deferred = ref [] in
  let result = validate_deferring t tx ~defer:(fun d -> deferred := d :: !deferred) in
  match result with
  | Error _ -> validate t tx
  | Ok () -> (
      match !deferred with
      | [] -> Ok ()
      | ds ->
          let items =
            List.rev_map
              (fun d -> Daric_tx.Sighash.(d.d_pk, d.d_msg, d.d_sig))
              ds
          in
          if Daric_crypto.Schnorr.batch_verify_pooled items then Ok ()
          else validate t tx)

(* ---------------- staged state views ---------------- *)

(** A read-only overlay over the confirmed chain state: outpoints spent
    and outputs/txids produced by not-yet-committed acceptances. Both
    the sharded tick's reconciliation pass and the mempool's one-pass
    block assembly validate against such a view and commit (through
    {!record}) only after every deferred signature check has been
    discharged — replacing the optimistic record-then-rollback scheme,
    which serialized on mutating the live chain state. *)
module Staged = struct
  type view = {
    base : t;
    spent : (Tx.outpoint, unit) Hashtbl.t;
    fresh : (Tx.outpoint, utxo) Hashtbl.t;
        (** outputs created by staged acceptances (recorded this round) *)
    ids : (string, unit) Hashtbl.t;  (** txids staged this round *)
  }

  let create (base : t) : view =
    { base;
      spent = Hashtbl.create 32;
      fresh = Hashtbl.create 32;
      ids = Hashtbl.create 32 }

  let known_txid (v : view) (id : string) : bool =
    Hashtbl.mem v.ids id || chain_txid v.base id

  let lookup (v : view) (o : Tx.outpoint) : utxo option =
    if Hashtbl.mem v.spent o then None
    else
      match Hashtbl.find_opt v.fresh o with
      | Some _ as u -> u
      | None -> find_utxo v.base o

  (** Overlay the effects of accepting [tx] (assumed validated against
      this view) without touching the underlying ledger. *)
  let stage_accept (v : view) (tx : Tx.t) : unit =
    let txid = Tx.txid tx in
    Hashtbl.replace v.ids txid ();
    List.iter
      (fun (i : Tx.input) -> Hashtbl.replace v.spent i.prevout ())
      tx.inputs;
    List.iteri
      (fun vout output ->
        Hashtbl.replace v.fresh { Tx.txid; vout }
          { recorded = v.base.round; output })
      tx.outputs
end

(** {!validate} against a staged view. *)
let validate_staged (v : Staged.view) (tx : Tx.t) :
    (unit, reject_reason) result =
  validate_gen v.Staged.base tx ~known_txid:(Staged.known_txid v)
    ~lookup:(Staged.lookup v) ~verify_witness:Spend.verify_input

(** {!validate_deferring} against a staged view. *)
let validate_deferring_staged (v : Staged.view) (tx : Tx.t)
    ~(defer : Daric_tx.Sighash.deferred -> unit) :
    (unit, reject_reason) result =
  validate_gen v.Staged.base tx ~known_txid:(Staged.known_txid v)
    ~lookup:(Staged.lookup v)
    ~verify_witness:(fun tx ~input_index ~spent ~input_age ->
      Spend.verify_input_deferred tx ~input_index ~spent ~input_age ~defer)

let record (t : t) (tx : Tx.t) =
  let txid = Tx.txid tx in
  Hashtbl.replace t.txids txid t.round;
  Vec.push t.accepted_log (t.round, Live tx);
  let idx = Vec.length t.accepted_log - 1 in
  List.iter
    (fun (input : Tx.input) ->
      t.utxos <- Outpoint_map.remove input.prevout t.utxos;
      Hashtbl.replace t.spenders input.prevout idx;
      Vec.push t.spent_log input.prevout)
    tx.inputs;
  List.iteri
    (fun vout output ->
      t.utxos <-
        Outpoint_map.add { Tx.txid; vout } { recorded = t.round; output } t.utxos)
    tx.outputs;
  (* The tx is now retained forever in the accepted log; drop its
     encode/sighash memo (txid survives) so the log doesn't pin dead
     serialization bytes in the heap the major GC keeps marking. *)
  Tx.seal tx;
  t.events <- Accepted tx :: t.events

(* ---------------- journaled rollback ---------------- *)

(** A checkpoint of everything {!record}, {!post}, {!mint} and {!tick}
    mutate. The UTXO set is an immutable map (O(1) to snapshot) and
    the pending queue is tiny (bounded by Δ rounds of postings), so a
    checkpoint costs O(pending) and a rollback O(recorded since
    checkpoint). Rolling back restores the round too, so a checkpoint
    taken at round r can be re-entered from any later round — the
    stack discipline the model checker's DFS backtracking relies on.
    Rolling back to a checkpoint from a round *before* it was taken is
    meaningless and raises [Invalid_argument]. *)
type checkpoint = {
  c_round : int;
  c_utxos : utxo Outpoint_map.t;
  c_events : event list;
  c_accepted_len : int;
  c_spent_len : int;
  c_mints : int;
  c_pending : (int * Tx.t list) list;  (** due-round buckets, snapshotted *)
}

let checkpoint (t : t) : checkpoint =
  { c_round = t.round;
    c_utxos = t.utxos;
    c_events = t.events;
    c_accepted_len = Vec.length t.accepted_log;
    c_spent_len = Vec.length t.spent_log;
    c_mints = t.mints;
    c_pending =
      Hashtbl.fold
        (fun due bucket acc -> (due, Vec.to_list bucket) :: acc)
        t.pending [] }

let rollback (t : t) (c : checkpoint) : unit =
  if t.round < c.c_round then
    invalid_arg "Ledger.rollback: checkpoint from a future round";
  Vec.iter_from t.accepted_log ~from:c.c_accepted_len (fun (_, e) ->
      let tx = entry_tx t e in
      (match e with
      | Packed slot ->
          Arena.free t.pack slot;
          t.compacted <- t.compacted - 1
      | Live _ -> ());
      Hashtbl.remove t.txids (Tx.txid tx);
      List.iter
        (fun (i : Tx.input) -> Hashtbl.remove t.spenders i.prevout)
        tx.inputs);
  Vec.truncate t.accepted_log c.c_accepted_len;
  if t.compact_watermark > c.c_accepted_len then
    t.compact_watermark <- c.c_accepted_len;
  Vec.truncate t.spent_log c.c_spent_len;
  t.utxos <- c.c_utxos;
  t.events <- c.c_events;
  t.round <- c.c_round;
  t.mints <- c.c_mints;
  Hashtbl.reset t.pending;
  List.iter
    (fun (due, txs) ->
      let bucket = Vec.create ~dummy:dummy_tx () in
      List.iter (Vec.push bucket) txs;
      Hashtbl.replace t.pending due bucket)
    c.c_pending;
  (* the cached oldest-first view may reflect rolled-back entries *)
  if t.accepted_view_len > c.c_accepted_len then begin
    t.accepted_view <- [];
    t.accepted_view_len <- 0
  end

(** Not-yet-due postings as [(due round, txs in posting order)],
    sorted by due round — the model checker folds this into its state
    fingerprint (hashtable iteration order must not leak in). *)
let pending_due (t : t) : (int * Tx.t list) list =
  Hashtbl.fold
    (fun due bucket acc -> (due, Vec.to_list bucket) :: acc)
    t.pending []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** [post t tx ~delay] submits [tx]; the adversary-chosen [delay] is
    clamped to [0, delta]. The transaction is (re)validated when due.
    Bucketed by processing round: a delay of d lands at round
    [round + max d 1] (a 0-delay post is still processed at the next
    tick, as the list-based pending queue always did). *)
let post (t : t) (tx : Tx.t) ~(delay : int) =
  let delay = max 0 (min t.delta delay) in
  let due = t.round + max delay 1 in
  match Hashtbl.find_opt t.pending due with
  | Some bucket -> Vec.push bucket tx
  | None ->
      let bucket = Vec.create ~dummy:dummy_tx () in
      Vec.push bucket tx;
      Hashtbl.add t.pending due bucket

(** [mint t ~value ~spk] conjures a fresh funding UTXO (environment
    setup — stands in for pre-existing on-chain coins). *)
let mint (t : t) ~(value : int) ~(spk : Tx.spk) : Tx.outpoint =
  t.mints <- t.mints + 1;
  (* A unique synthetic input keeps the txids of otherwise-identical
     minted outputs distinct; [record] bypasses input validation. *)
  let coinbase =
    { Tx.prevout = { Tx.txid = Fmt.str "coinbase#%d" t.mints; vout = 0 };
      sequence = Tx.default_sequence }
  in
  let tx =
    Tx.make ~inputs:[ coinbase ] ~outputs:[ { Tx.value; spk } ] ()
  in
  record t tx;
  { Tx.txid = Tx.txid tx; vout = 0 }

(* Authoritative sequential processing of a round's due transactions. *)
let process_sequential (t : t) (due : Tx.t list) : unit =
  List.iter
    (fun tx ->
      match validate_batched t tx with
      | Ok () -> record t tx
      | Error reason -> t.events <- Rejected (tx, reason) :: t.events)
    due

(* ---------------- sharded round processing ----------------

   The round's due transactions are partitioned by the hash of their
   input outpoints into [Dpool.count ()] shards. A transaction whose
   inputs all fall in one shard — and whose validity cannot depend on
   any other due transaction — is validated entirely inside that
   shard, against the immutable pre-round state plus a shard-local
   spent set, with every signature check deferred. Shards only read
   the shared ledger, so they run concurrently with no speculative
   mutation and nothing to roll back.

   Transactions a shard cannot decide alone form the reconciliation
   set R:
   - no inputs (no shard to own them; always value-overspent anyway),
   - inputs spanning more than one shard,
   - spending an output another due transaction creates
     (prevout txid among the due txids),
   - a txid duplicated within the round,
   - transitively: spending an outpoint some R member also spends
     (the poisoning fixpoint below) — otherwise the shard walk could
     not know whether the contested outpoint is still unspent.

   R is resolved in one sequential pass in posting order over ALL due
   transactions: non-R verdicts are replayed onto a staged view at
   their original positions (so an R transaction at index i sees
   exactly the acceptances a sequential validator would have applied
   before i), and R members validate against that view.

   All deferred signature checks — shard and reconciliation alike —
   are then discharged in a single batch across the pool. Only after
   an accepting discharge does the commit pass mutate the ledger, in
   posting order, reproducing the sequential event stream exactly. A
   rejecting discharge abandons the verdicts (nothing was mutated)
   and replays the round sequentially, which is authoritative. *)

type verdict =
  | V_accept of Daric_tx.Sighash.deferred list
  | V_reject of reject_reason

let shard_of_outpoint (nshards : int) (o : Tx.outpoint) : int =
  (Hashtbl.hash o.txid + o.vout) mod nshards

(* Shard of a transaction's inputs, or [None] when they span shards
   (or there are none). *)
let shard_of_tx (nshards : int) (tx : Tx.t) : int option =
  match tx.inputs with
  | [] -> None
  | first :: rest ->
      let s = shard_of_outpoint nshards first.prevout in
      if
        List.for_all
          (fun (i : Tx.input) -> shard_of_outpoint nshards i.prevout = s)
          rest
      then Some s
      else None

(* Verdict of one transaction against a state view: deferring
   validation first; a deferring reject re-runs the inline validator
   (deferral only widens acceptance, so it rejects too) for the
   authoritative isolating reason, exactly as the sequential
   [validate_batched] fallback reports it. *)
let verdict_of (t : t) ~(known_txid : string -> bool)
    ~(lookup : Tx.outpoint -> utxo option) (tx : Tx.t) : verdict =
  let defs = ref [] in
  match
    validate_gen t tx ~known_txid ~lookup
      ~verify_witness:(fun tx ~input_index ~spent ~input_age ->
        Spend.verify_input_deferred tx ~input_index ~spent ~input_age
          ~defer:(fun d -> defs := d :: !defs))
  with
  | Ok () -> V_accept (List.rev !defs)
  | Error _ -> (
      match validate_gen t tx ~known_txid ~lookup ~verify_witness:Spend.verify_input with
      | Error reason -> V_reject reason
      | Ok () ->
          (* unreachable (deferral only widens acceptance), but if the
             impossible happens the inline verdict wins *)
          V_accept [])

let process_sharded (t : t) (due : Tx.t array) : unit =
  let n = Array.length due in
  let nshards = max 1 (Dpool.count ()) in
  (* Reconciliation membership. *)
  let in_recon = Array.make n false in
  let shard = Array.make n 0 in
  let id_count : (string, int) Hashtbl.t = Hashtbl.create (2 * n) in
  Array.iter
    (fun tx ->
      let id = Tx.txid tx in
      Hashtbl.replace id_count id
        (1 + Option.value ~default:0 (Hashtbl.find_opt id_count id)))
    due;
  for idx = 0 to n - 1 do
    let tx = due.(idx) in
    (match shard_of_tx nshards tx with
    | None -> in_recon.(idx) <- true
    | Some s -> shard.(idx) <- s);
    if
      Hashtbl.find id_count (Tx.txid tx) > 1
      || List.exists
           (fun (i : Tx.input) -> Hashtbl.mem id_count i.prevout.txid)
           tx.inputs
    then in_recon.(idx) <- true
  done;
  (* Poisoning fixpoint: an R member contests its input outpoints; any
     transaction spending a contested outpoint joins R (its shard
     cannot know whether the outpoint survives the earlier members). *)
  let poisoned : (Tx.outpoint, unit) Hashtbl.t = Hashtbl.create 16 in
  let poison (tx : Tx.t) =
    List.iter
      (fun (i : Tx.input) -> Hashtbl.replace poisoned i.prevout ())
      tx.inputs
  in
  for idx = 0 to n - 1 do
    if in_recon.(idx) then poison due.(idx)
  done;
  if Hashtbl.length poisoned > 0 then begin
    let changed = ref true in
    while !changed do
      changed := false;
      for idx = 0 to n - 1 do
        if
          (not in_recon.(idx))
          && List.exists
               (fun (i : Tx.input) -> Hashtbl.mem poisoned i.prevout)
               due.(idx).inputs
        then begin
          in_recon.(idx) <- true;
          poison due.(idx);
          changed := true
        end
      done
    done
  end;
  (* Shard walks: per-shard index lists in posting order, validated
     read-only against the pre-round state plus a shard-local spent
     set. Disjoint slots of [verdicts] are written from pool domains;
     the [map_array] barrier publishes them to this domain. *)
  let verdicts : verdict option array = Array.make n None in
  let buckets = Array.make nshards [] in
  for idx = n - 1 downto 0 do
    if not in_recon.(idx) then buckets.(shard.(idx)) <- idx :: buckets.(shard.(idx))
  done;
  let walk_shard (idxs : int list) : unit =
    let spent : (Tx.outpoint, unit) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun idx ->
        let tx = due.(idx) in
        let v =
          verdict_of t ~known_txid:(chain_txid t)
            ~lookup:(fun o ->
              if Hashtbl.mem spent o then None else find_utxo t o)
            tx
        in
        (match v with
        | V_accept _ ->
            List.iter
              (fun (i : Tx.input) -> Hashtbl.replace spent i.prevout ())
              tx.inputs
        | V_reject _ -> ());
        verdicts.(idx) <- Some v)
      idxs
  in
  ignore (Dpool.map_array walk_shard buckets);
  (* Reconciliation: replay in posting order over a staged view. *)
  let recon_count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_recon in
  if recon_count > 0 then begin
    let view = Staged.create t in
    for idx = 0 to n - 1 do
      let tx = due.(idx) in
      match verdicts.(idx) with
      | Some (V_accept _) -> Staged.stage_accept view tx
      | Some (V_reject _) -> ()
      | None ->
          let v =
            verdict_of t ~known_txid:(Staged.known_txid view)
              ~lookup:(Staged.lookup view) tx
          in
          (match v with
          | V_accept _ -> Staged.stage_accept view tx
          | V_reject _ -> ());
          verdicts.(idx) <- Some v
    done
  end;
  (* One discharge for the whole round, then commit in posting order. *)
  let deferred = ref [] in
  for idx = n - 1 downto 0 do
    match verdicts.(idx) with
    | Some (V_accept ds) -> deferred := List.rev_append (List.rev ds) !deferred
    | _ -> ()
  done;
  if discharge !deferred then
    Array.iteri
      (fun idx tx ->
        match verdicts.(idx) with
        | Some (V_accept _) -> record t tx
        | Some (V_reject reason) -> t.events <- Rejected (tx, reason) :: t.events
        | None -> assert false)
      due
  else process_sequential t (Array.to_list due)

(* Sharded processing only pays once a round carries enough work to
   split; below this many due transactions the sequential path is used
   directly. *)
let parallel_min_due = 2

(** Advance one round: deliver due pending transactions (in posting
    order) and return this round's events. *)
let tick (t : t) : event list =
  t.round <- t.round + 1;
  t.events <- [];
  (match Hashtbl.find_opt t.pending t.round with
  | None -> ()
  | Some bucket ->
      Hashtbl.remove t.pending t.round;
      if Vec.length bucket >= parallel_min_due && Dpool.count () > 1 then
        process_sharded t (Vec.to_array bucket)
      else process_sequential t (Vec.to_list bucket));
  compact_tail t;
  List.rev t.events
