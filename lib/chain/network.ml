(** Authenticated synchronous message network (the functionality
    F_GDC of Appendix C): a message sent in round τ is delivered to its
    recipient at the beginning of round τ+1; the adversary observes
    messages and may reorder within a round but cannot drop, delay or
    forge them. Corrupted parties simply stop sending. *)

type 'msg envelope = { sender : string; recipient : string; payload : 'msg }

type 'msg t = {
  mutable in_flight : (int * 'msg envelope) list;
      (** (delivery round, env), newest first — sends prepend in O(1) *)
  mutable log : (int * 'msg envelope) list;  (** newest first *)
  mutable log_len : int;
  log_cap : int option;  (** retain at most this many log entries *)
  mutable total_sent : int;  (** messages ever sent, survives log capping *)
}

let create ?log_cap () : 'msg t =
  { in_flight = []; log = []; log_len = 0; log_cap; total_sent = 0 }

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

(** [send t ~round ~sender ~recipient payload] queues a message sent in
    [round] for delivery in round [round+1]. *)
let send (t : 'msg t) ~(round : int) ~(sender : string) ~(recipient : string)
    (payload : 'msg) : unit =
  let env = { sender; recipient; payload } in
  t.in_flight <- (round + 1, env) :: t.in_flight;
  t.log <- (round, env) :: t.log;
  t.log_len <- t.log_len + 1;
  t.total_sent <- t.total_sent + 1;
  (* amortized O(1): let the log reach twice the cap, then truncate to
     the cap's newest entries in one pass *)
  match t.log_cap with
  | Some cap when t.log_len > 2 * cap ->
      t.log <- take cap t.log;
      t.log_len <- cap
  | _ -> ()

(** [deliver t ~round ~recipient] removes and returns the messages due
    for [recipient] at [round], in sending order. [in_flight] is kept
    newest first, so reversing the partitioned slice restores it. *)
let deliver (t : 'msg t) ~(round : int) ~(recipient : string) :
    'msg envelope list =
  let mine, rest =
    List.partition
      (fun (r, env) -> r <= round && String.equal env.recipient recipient)
      t.in_flight
  in
  t.in_flight <- rest;
  List.rev_map snd mine

(** In-flight messages as [(delivery round, envelope)], newest first —
    the adversary's view of undelivered traffic (model-checker worlds
    enumerate withholding choices over this). *)
let in_flight (t : 'msg t) : (int * 'msg envelope) list = t.in_flight

(** [drop t p] adversarially removes every in-flight message matching
    [p] and returns how many were removed. The party-to-party links of
    F_GDC forbid drops; this models the *best-effort* channel-to-
    watchtower notification link the model checker's tower worlds
    corrupt (a tower that never hears about a state update). The
    traffic log keeps the dropped messages — they were sent. *)
let drop (t : 'msg t) (p : 'msg envelope -> bool) : int =
  let keep, dropped = List.partition (fun (_, env) -> not (p env)) t.in_flight in
  t.in_flight <- keep;
  List.length dropped

(** Retained traffic log (newest first), for adversary observation and
    tests. Bounded by [log_cap] when one was given at {!create}. *)
let log (t : 'msg t) : (int * 'msg envelope) list = t.log

(** Total messages ever sent — unaffected by log capping. *)
let total_sent (t : 'msg t) : int = t.total_sent
