(** Authenticated synchronous message network (Appendix C): a message
    sent in round τ reaches its recipient at round τ+1; the adversary
    observes and may reorder within a round but cannot drop, delay or
    forge. *)

type 'msg envelope = { sender : string; recipient : string; payload : 'msg }

type 'msg t

val create : ?log_cap:int -> unit -> 'msg t
(** [log_cap] bounds the retained traffic log (the queue of in-flight
    messages is always bounded by the synchrony assumption); without it
    the log keeps every message ever sent. *)

val send :
  'msg t -> round:int -> sender:string -> recipient:string -> 'msg -> unit
(** O(1) enqueue. *)

val deliver : 'msg t -> round:int -> recipient:string -> 'msg envelope list
(** Remove and return the messages due for a recipient, in sending
    order. *)

val in_flight : 'msg t -> (int * 'msg envelope) list
(** Undelivered messages as [(delivery round, envelope)], newest
    first — the adversary's observation of traffic still in transit. *)

val drop : 'msg t -> ('msg envelope -> bool) -> int
(** Adversarially remove matching in-flight messages, returning the
    number removed. Party-to-party delivery under F_GDC is guaranteed,
    so this primitive exists for the *best-effort* links the model
    checker corrupts (channel-to-watchtower notifications); the
    traffic log still records dropped messages as sent. *)

val log : 'msg t -> (int * 'msg envelope) list
(** Retained traffic log, newest first (adversary observation,
    accounting); truncated to the newest [log_cap] entries when a cap
    was set. *)

val total_sent : 'msg t -> int
(** Messages ever sent — independent of log capping. *)
