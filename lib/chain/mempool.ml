(** Economic ledger mode: a fee-market mempool in front of the ledger.

    The UC ledger functionality abstracts fees away; the HTLC-security
    attack of Section 6.1 depends on them, so this module adds:
    - a minimum relay fee rate (1 sat/vbyte in the paper),
    - the 100,000-vbyte standardness cap on transaction size,
    - BIP-125 opt-in replace-by-fee: a replacement must pay strictly
      more absolute fee than everything it conflicts with, plus relay
      fee for its own size, at a fee rate no lower than what it evicts,
    - block production every [rounds_per_block] rounds, filling up to
      [block_vbytes] with the highest-fee-rate transactions. *)

module Tx = Daric_tx.Tx

type config = {
  min_relay_feerate : int;  (** satoshi per vbyte *)
  max_tx_vbytes : int;
  block_vbytes : int;
  rounds_per_block : int;
}

let default_config =
  { min_relay_feerate = 1;
    max_tx_vbytes = 100_000;
    block_vbytes = 1_000_000;
    rounds_per_block = 1 }

type entry = { tx : Tx.t; fee : int; vbytes : int; seq : int }
(** [seq] is the admission sequence number — the fee-rate sort's
    deterministic tie-break (earlier submission wins). *)

let feerate (e : entry) : float = float_of_int e.fee /. float_of_int e.vbytes

type submit_error =
  | Too_large
  | Feerate_below_minimum
  | Unknown_input of Tx.outpoint
  | Negative_fee
  | Rbf_insufficient_fee  (** conflicts with pooled txs it cannot displace *)
  | Invalid of Ledger.reject_reason

let submit_error_to_string = function
  | Too_large -> "transaction exceeds 100,000 vbytes"
  | Feerate_below_minimum -> "fee rate below minimum relay fee"
  | Unknown_input o -> Fmt.str "input %a not found" Tx.pp_outpoint o
  | Negative_fee -> "outputs exceed inputs"
  | Rbf_insufficient_fee -> "replacement does not pay for conflicts (BIP-125)"
  | Invalid r -> Ledger.reject_to_string r

type t = {
  config : config;
  ledger : Ledger.t;
  mutable pool : entry list;
  by_outpoint : (Tx.outpoint, entry) Hashtbl.t;
      (** admission conflict index: each outpoint spent by a pooled
          transaction maps to its entry (the pool holds at most one
          spender per outpoint), so conflict detection is O(inputs)
          instead of a full pool scan *)
  mutable next_seq : int;
  mutable confirmed_fees : int;  (** total fees collected by miners *)
}

let create ?(config = default_config) ~(ledger : Ledger.t) () : t =
  { config;
    ledger;
    pool = [];
    by_outpoint = Hashtbl.create 64;
    next_seq = 0;
    confirmed_fees = 0 }

let ledger (t : t) : Ledger.t = t.ledger

(** Fee of a transaction given the current UTXO view (pool parents are
    not supported: all inputs must be confirmed). *)
let fee_of (t : t) (tx : Tx.t) : (int, submit_error) result =
  let rec total acc (inputs : Tx.input list) =
    match inputs with
    | [] -> Ok acc
    | input :: rest -> (
        match Ledger.find_utxo t.ledger input.prevout with
        | None -> Error (Unknown_input input.prevout)
        | Some utxo -> total (acc + utxo.output.value) rest)
  in
  match total 0 tx.inputs with
  | Error e -> Error e
  | Ok total_in ->
      let fee = total_in - Tx.total_output_value tx in
      if fee < 0 then Error Negative_fee else Ok fee

(** Pooled entries spending any of [tx]'s inputs — O(inputs) lookups
    in the admission index, deduplicated (an entry conflicting on two
    outpoints is reported once). *)
let conflicts_with (t : t) (tx : Tx.t) : entry list =
  List.fold_left
    (fun acc (i : Tx.input) ->
      match Hashtbl.find_opt t.by_outpoint i.prevout with
      | Some e when not (List.memq e acc) -> e :: acc
      | _ -> acc)
    [] tx.inputs

let index_add (t : t) (e : entry) : unit =
  List.iter
    (fun (i : Tx.input) -> Hashtbl.replace t.by_outpoint i.prevout e)
    e.tx.inputs

let index_remove (t : t) (e : entry) : unit =
  List.iter
    (fun (i : Tx.input) ->
      (* only clear slots this entry still owns (a replacement may
         already have overwritten some of them) *)
      match Hashtbl.find_opt t.by_outpoint i.prevout with
      | Some e' when e' == e -> Hashtbl.remove t.by_outpoint i.prevout
      | _ -> ())
    e.tx.inputs

(** Submit a transaction to the mempool; applies standardness and
    BIP-125 replacement rules, then queues by fee rate. *)
let submit (t : t) (tx : Tx.t) : (unit, submit_error) result =
  let vb = Tx.vbytes tx in
  if vb > t.config.max_tx_vbytes then Error Too_large
  else
    match fee_of t tx with
    | Error e -> Error e
    | Ok fee ->
        if fee < t.config.min_relay_feerate * vb then Error Feerate_below_minimum
        else
          let admit () =
            let entry = { tx; fee; vbytes = vb; seq = t.next_seq } in
            t.next_seq <- t.next_seq + 1;
            entry
          in
          let conflicts = conflicts_with t tx in
          if conflicts = [] then begin
            let entry = admit () in
            t.pool <- entry :: t.pool;
            index_add t entry;
            Ok ()
          end
          else
            let old_fees = List.fold_left (fun a e -> a + e.fee) 0 conflicts in
            let old_max_rate =
              List.fold_left (fun a e -> Float.max a (feerate e)) 0. conflicts
            in
            if
              fee >= old_fees + (t.config.min_relay_feerate * vb)
              && float_of_int fee /. float_of_int vb >= old_max_rate
            then begin
              List.iter (index_remove t) conflicts;
              let entry = admit () in
              t.pool <-
                entry
                :: List.filter (fun e -> not (List.memq e conflicts)) t.pool;
              index_add t entry;
              Ok ()
            end
            else Error Rbf_insufficient_fee

(* Replace the pool wholesale and rebuild the admission index to
   match (assembly moves many entries at once; a rebuild is O(pool)). *)
let set_pool (t : t) (pool : entry list) : unit =
  t.pool <- pool;
  Hashtbl.reset t.by_outpoint;
  List.iter (index_add t) pool

(* Candidate order for a block: descending fee rate, admission order
   breaking ties — deterministic regardless of pool-list layout. *)
let by_rate_order (a : entry) (b : entry) : int =
  match Float.compare (feerate b) (feerate a) with
  | 0 -> compare a.seq b.seq
  | c -> c

(* Authoritative greedy block assembly: walk entries by descending fee
   rate, confirm whatever still validates up to the capacity, evict
   what no longer does. *)
let assemble_sequential (t : t) (by_rate : entry list) : Tx.t list =
  let confirmed = ref [] in
  let used = ref 0 in
  let remaining = ref [] in
  List.iter
    (fun e ->
      if !used + e.vbytes <= t.config.block_vbytes then begin
        match Ledger.validate_batched t.ledger e.tx with
        | Ok () ->
            Ledger.record t.ledger e.tx;
            t.confirmed_fees <- t.confirmed_fees + e.fee;
            used := !used + e.vbytes;
            confirmed := e.tx :: !confirmed
        | Error _ ->
            (* inputs were spent by an earlier tx in this block or a
               previous one: evict *)
            ()
      end
      else remaining := e :: !remaining)
    by_rate;
  set_pool t (List.rev !remaining);
  List.rev !confirmed

(* Staged one-pass assembly: the same greedy walk, but acceptances are
   accumulated on a {!Ledger.Staged} view (the live chain state is
   never touched) and every signature check is deferred, then the
   whole block's checks are discharged at once across Dpool domains.
   A transaction rejected by the deferring pass is rejected by the
   inline validator too (deferral only widens acceptance), so eviction
   decisions match the sequential walk. Only an accepting discharge
   commits — in walk order, through {!Ledger.record} — so a rejecting
   discharge simply abandons the view; there is no rollback. *)
let assemble_staged (t : t) (by_rate : entry list) : Tx.t list option =
  let view = Ledger.Staged.create t.ledger in
  let deferred = ref [] in
  let confirmed = ref [] in
  let used = ref 0 in
  let remaining = ref [] in
  List.iter
    (fun e ->
      if !used + e.vbytes <= t.config.block_vbytes then begin
        let mine = ref [] in
        match
          Ledger.validate_deferring_staged view e.tx
            ~defer:(fun d -> mine := d :: !mine)
        with
        | Ok () ->
            deferred := List.rev_append !mine !deferred;
            Ledger.Staged.stage_accept view e.tx;
            used := !used + e.vbytes;
            confirmed := e :: !confirmed
        | Error _ -> ()
      end
      else remaining := e :: !remaining)
    by_rate;
  if Ledger.discharge !deferred then begin
    List.iter
      (fun e ->
        Ledger.record t.ledger e.tx;
        t.confirmed_fees <- t.confirmed_fees + e.fee)
      (List.rev !confirmed);
    set_pool t (List.rev !remaining);
    Some (List.rev_map (fun e -> e.tx) !confirmed)
  end
  else None

(** Advance one round. On block rounds, confirm the highest-fee-rate
    transactions that still validate, up to the block capacity; returns
    the confirmed transactions. Blocks with at least two candidate
    transactions assemble on a staged view with witness verification
    discharged across {!Daric_util.Dpool} domains; any rejection falls
    back to the sequential walk (nothing was committed), so
    confirmation semantics are identical. *)
let tick (t : t) : Tx.t list =
  (* Advance the underlying ledger clock (it has nothing pending). *)
  ignore (Ledger.tick t.ledger);
  if Ledger.height t.ledger mod t.config.rounds_per_block <> 0 then []
  else begin
    let by_rate = List.sort by_rate_order t.pool in
    match by_rate with
    | _ :: _ :: _ when Daric_util.Dpool.count () > 1 -> (
        match assemble_staged t by_rate with
        | Some txs -> txs
        | None -> assemble_sequential t by_rate)
    | _ -> assemble_sequential t by_rate
  end

let pool_size (t : t) : int = List.length t.pool
let total_fees_collected (t : t) : int = t.confirmed_fees
