(** Economic ledger mode: a fee-market mempool in front of the ledger.

    The UC ledger functionality abstracts fees away; the HTLC-security
    attack of Section 6.1 depends on them, so this module adds:
    - a minimum relay fee rate (1 sat/vbyte in the paper),
    - the 100,000-vbyte standardness cap on transaction size,
    - BIP-125 opt-in replace-by-fee: a replacement must pay strictly
      more absolute fee than everything it conflicts with, plus relay
      fee for its own size, at a fee rate no lower than what it evicts,
    - block production every [rounds_per_block] rounds, filling up to
      [block_vbytes] with the highest-fee-rate transactions. *)

module Tx = Daric_tx.Tx

type config = {
  min_relay_feerate : int;  (** satoshi per vbyte *)
  max_tx_vbytes : int;
  block_vbytes : int;
  rounds_per_block : int;
}

let default_config =
  { min_relay_feerate = 1;
    max_tx_vbytes = 100_000;
    block_vbytes = 1_000_000;
    rounds_per_block = 1 }

type entry = { tx : Tx.t; fee : int; vbytes : int }

let feerate (e : entry) : float = float_of_int e.fee /. float_of_int e.vbytes

type submit_error =
  | Too_large
  | Feerate_below_minimum
  | Unknown_input of Tx.outpoint
  | Negative_fee
  | Rbf_insufficient_fee  (** conflicts with pooled txs it cannot displace *)
  | Invalid of Ledger.reject_reason

let submit_error_to_string = function
  | Too_large -> "transaction exceeds 100,000 vbytes"
  | Feerate_below_minimum -> "fee rate below minimum relay fee"
  | Unknown_input o -> Fmt.str "input %a not found" Tx.pp_outpoint o
  | Negative_fee -> "outputs exceed inputs"
  | Rbf_insufficient_fee -> "replacement does not pay for conflicts (BIP-125)"
  | Invalid r -> Ledger.reject_to_string r

type t = {
  config : config;
  ledger : Ledger.t;
  mutable pool : entry list;
  mutable confirmed_fees : int;  (** total fees collected by miners *)
}

let create ?(config = default_config) ~(ledger : Ledger.t) () : t =
  { config; ledger; pool = []; confirmed_fees = 0 }

let ledger (t : t) : Ledger.t = t.ledger

(** Fee of a transaction given the current UTXO view (pool parents are
    not supported: all inputs must be confirmed). *)
let fee_of (t : t) (tx : Tx.t) : (int, submit_error) result =
  let rec total acc (inputs : Tx.input list) =
    match inputs with
    | [] -> Ok acc
    | input :: rest -> (
        match Ledger.find_utxo t.ledger input.prevout with
        | None -> Error (Unknown_input input.prevout)
        | Some utxo -> total (acc + utxo.output.value) rest)
  in
  match total 0 tx.inputs with
  | Error e -> Error e
  | Ok total_in ->
      let fee = total_in - Tx.total_output_value tx in
      if fee < 0 then Error Negative_fee else Ok fee

let conflicts_with (t : t) (tx : Tx.t) : entry list =
  List.filter
    (fun e ->
      List.exists
        (fun (i : Tx.input) ->
          List.exists
            (fun (j : Tx.input) -> Tx.outpoint_equal i.prevout j.prevout)
            e.tx.inputs)
        tx.inputs)
    t.pool

(** Submit a transaction to the mempool; applies standardness and
    BIP-125 replacement rules, then queues by fee rate. *)
let submit (t : t) (tx : Tx.t) : (unit, submit_error) result =
  let vb = Tx.vbytes tx in
  if vb > t.config.max_tx_vbytes then Error Too_large
  else
    match fee_of t tx with
    | Error e -> Error e
    | Ok fee ->
        if fee < t.config.min_relay_feerate * vb then Error Feerate_below_minimum
        else
          let entry = { tx; fee; vbytes = vb } in
          let conflicts = conflicts_with t tx in
          if conflicts = [] then begin
            t.pool <- entry :: t.pool;
            Ok ()
          end
          else
            let old_fees = List.fold_left (fun a e -> a + e.fee) 0 conflicts in
            let old_max_rate =
              List.fold_left (fun a e -> Float.max a (feerate e)) 0. conflicts
            in
            if
              fee >= old_fees + (t.config.min_relay_feerate * vb)
              && feerate entry >= old_max_rate
            then begin
              t.pool <-
                entry
                :: List.filter (fun e -> not (List.memq e conflicts)) t.pool;
              Ok ()
            end
            else Error Rbf_insufficient_fee

(* Authoritative greedy block assembly: walk entries by descending fee
   rate, confirm whatever still validates up to the capacity, evict
   what no longer does. *)
let assemble_sequential (t : t) (by_rate : entry list) : Tx.t list =
  let confirmed = ref [] in
  let used = ref 0 in
  let remaining = ref [] in
  List.iter
    (fun e ->
      if !used + e.vbytes <= t.config.block_vbytes then begin
        match Ledger.validate_batched t.ledger e.tx with
        | Ok () ->
            Ledger.record t.ledger e.tx;
            t.confirmed_fees <- t.confirmed_fees + e.fee;
            used := !used + e.vbytes;
            confirmed := e.tx :: !confirmed
        | Error _ ->
            (* inputs were spent by an earlier tx in this block or a
               previous one: evict *)
            ()
      end
      else remaining := e :: !remaining)
    by_rate;
  t.pool <- List.rev !remaining;
  List.rev !confirmed

(* Optimistic parallel assembly: same greedy walk, but every signature
   check is deferred and the whole block's checks are discharged at
   once across Dpool domains. A transaction rejected by the deferring
   pass is rejected by the inline validator too (deferral only widens
   acceptance), so eviction decisions match the sequential walk. If
   the discharge rejects, roll the ledger back and report failure —
   the caller replays sequentially, which is authoritative. *)
let assemble_parallel (t : t) (by_rate : entry list) : Tx.t list option =
  let ckpt = Ledger.checkpoint t.ledger in
  let deferred = ref [] in
  let confirmed = ref [] in
  let used = ref 0 in
  let remaining = ref [] in
  List.iter
    (fun e ->
      if !used + e.vbytes <= t.config.block_vbytes then begin
        let mine = ref [] in
        match
          Ledger.validate_deferring t.ledger e.tx
            ~defer:(fun d -> mine := d :: !mine)
        with
        | Ok () ->
            deferred := List.rev_append !mine !deferred;
            Ledger.record t.ledger e.tx;
            used := !used + e.vbytes;
            confirmed := e :: !confirmed
        | Error _ -> ()
      end
      else remaining := e :: !remaining)
    by_rate;
  if Ledger.discharge !deferred then begin
    List.iter (fun e -> t.confirmed_fees <- t.confirmed_fees + e.fee) !confirmed;
    t.pool <- List.rev !remaining;
    Some (List.rev_map (fun e -> e.tx) !confirmed)
  end
  else begin
    Ledger.rollback t.ledger ckpt;
    None
  end

(** Advance one round. On block rounds, confirm the highest-fee-rate
    transactions that still validate, up to the block capacity; returns
    the confirmed transactions. Blocks with at least two candidate
    transactions assemble optimistically with witness verification
    split across {!Daric_util.Dpool} domains; any rejection falls back
    to the sequential walk, so confirmation semantics are identical. *)
let tick (t : t) : Tx.t list =
  (* Advance the underlying ledger clock (it has nothing pending). *)
  ignore (Ledger.tick t.ledger);
  if Ledger.height t.ledger mod t.config.rounds_per_block <> 0 then []
  else begin
    let by_rate =
      List.sort (fun a b -> Float.compare (feerate b) (feerate a)) t.pool
    in
    match by_rate with
    | _ :: _ :: _ when Daric_util.Dpool.count () > 1 -> (
        match assemble_parallel t by_rate with
        | Some txs -> txs
        | None -> assemble_sequential t by_rate)
    | _ -> assemble_sequential t by_rate
  end

let pool_size (t : t) : int = List.length t.pool
let total_fees_collected (t : t) : int = t.confirmed_fees
