(** Scale harness: N Daric channels on one shared ledger.

    Drives the real two-party protocol (through the SCHEME registry's
    Daric wrapper) for every channel — open, a sweep of off-chain
    updates, delegation to one watchtower guarding all N channels —
    then measures what the monitoring loop costs per round:

    - the indexed monitor ({!Daric_core.Watchtower.end_of_round}),
      driven by the ledger's spent-outpoint log, whose per-round cost
      is O(newly spent) and should stay flat as N grows;
    - the pre-index reference ({!end_of_round_scan}), O(N × accepted
      history) per round, timed over a channel sample and extrapolated
      linearly to N (a full scan at N = 100k would be ~10^10 list
      visits — the very behaviour this PR removes).

    The run ends with a fraud wave: revoked commits are replayed on a
    slice of channels with both parties frozen, and the tower must
    punish every one of them. *)

module I = Daric_schemes.Scheme_intf
module DS = Daric_schemes.Daric_scheme
module Ledger = Daric_chain.Ledger
module Watchtower = Daric_core.Watchtower
module Durable = Daric_core.Durable
module Memtune = Daric_util.Memtune

type sample = {
  channels : int;
  updates_per_channel : int;
  open_seconds : float;
  update_seconds : float;
  updates_per_sec : float;
  monitor_polls : int;  (** idle polls timed for the indexed monitor *)
  monitor_seconds_per_poll : float;
  scan_sample_channels : int;
  scan_seconds_per_poll : float;
      (** one {!end_of_round_scan} poll over the sample *)
  scan_seconds_extrapolated : float;
      (** sample poll cost × (channels / sample) — the pre-index
          per-round monitor cost at N channels *)
  frauds : int;
  punished : int;
  fraud_react_seconds : float;
      (** one indexed poll that catches all [frauds] spends *)
  ledger_height : int;
  accepted_txs : int;
  tower_storage_bytes : int;
  durable : bool;  (** tower ran behind the snapshot+WAL layer *)
  wal_bytes : int;  (** total WAL appended (0 when not durable) *)
  snapshot_bytes : int;  (** latest snapshot (0 when not durable) *)
  gc : Memtune.stats;  (** collector quick-stats at end of run *)
}

let timed (f : unit -> 'a) : 'a * float =
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)

(** [run ~channels ~updates ~frauds ~seed ()] builds the N-channel
    system and returns the measured sample. [frauds] is clamped to
    [channels]; every channel gets [updates] off-chain updates (at
    least 1 — a revoked state must exist for the tower to be of use). *)
let run ?(channels = 100) ?(updates = 1) ?(frauds = 4) ?(seed = 7)
    ?(durable = false) () : sample =
  (* An update's allocations are almost all dead within the round; the
     default 256k-word minor heap still promotes a slice of them at
     every minor cycle, and at N=100k that promoted garbage is what the
     major GC spends the run collecting. [Memtune.pace] raises the
     minor heap to 1M words (8 MB — still cache-benign) so most of it
     dies young: ~15–20% more updates/sec at N ≥ 10k, flat below. *)
  Memtune.pace ();
  let env = I.make_env ~delta:1 ~seed () in
  let updates = max 1 updates in
  let frauds = min (max frauds 0) channels in
  let chans = Array.make channels None in
  let (), open_seconds =
    timed (fun () ->
        for k = 0 to channels - 1 do
          let cfg =
            { I.default_config with
              chan_id = Printf.sprintf "c%d" k;
              party_seed = 1000 + (2 * k);
              bal_a = 500_000 + (k mod 997);
              bal_b = 500_000 - (k mod 997) }
          in
          match DS.Scheme.open_channel env cfg with
          | Ok s -> chans.(k) <- Some s
          | Error e -> failwith (I.error_to_string e)
        done)
  in
  let (), update_seconds =
    timed (fun () ->
        Array.iteri
          (fun k s ->
            let s = Option.get s in
            for u = 1 to updates do
              let shift = (k mod 997) + (u * 13) in
              match
                DS.Scheme.update s ~bal_a:(500_000 + shift)
                  ~bal_b:(500_000 - shift)
              with
              | Ok () -> ()
              | Error e -> failwith (I.error_to_string e)
            done)
          chans)
  in
  (* Delegate every channel to one tower — behind the snapshot+WAL
     layer when [durable], so the sweep also prices the journal. *)
  let dtower =
    if durable then
      Some (Durable.create ~wid:"tower" (Durable.memory_store ()))
    else None
  in
  let tower =
    match dtower with
    | Some d -> Durable.tower d
    | None -> Watchtower.create ~wid:"tower" ()
  in
  let do_watch r =
    match dtower with
    | Some d -> Durable.watch d r
    | None -> Watchtower.watch tower r
  in
  Array.iter
    (fun s ->
      match DS.watch_record (Option.get s) with
      | Some r ->
          if not (do_watch r) then
            failwith "scale: tower rejected a valid record"
      | None -> failwith "scale: no record after update")
    chans;
  let post tx = Ledger.post env.ledger tx ~delay:0 in
  let eor () =
    let round = Ledger.height env.ledger in
    match dtower with
    | Some d -> Durable.end_of_round d ~round ~ledger:env.ledger ~post
    | None -> Watchtower.end_of_round tower ~round ~ledger:env.ledger ~post
  in
  (* First poll swallows the one-time fresh-record check (O(N), paid
     once per watch, not per round); idle polls after it are what a
     steady-state round costs. *)
  eor ();
  let monitor_polls = 8 in
  let (), monitor_total =
    timed (fun () ->
        for _ = 1 to monitor_polls do
          I.settle env 1;
          eor ()
        done)
  in
  (* Pre-index reference: a fresh tower guarding a channel sample,
     polled once with the linear-scan monitor against the same chain. *)
  let scan_sample_channels = min channels 64 in
  let scan_tower = Watchtower.create ~wid:"tower-scan" () in
  for k = 0 to scan_sample_channels - 1 do
    match DS.watch_record (Option.get chans.(k)) with
    | Some r -> ignore (Watchtower.watch scan_tower r)
    | None -> ()
  done;
  let (), scan_seconds_per_poll =
    timed (fun () ->
        Watchtower.end_of_round_scan scan_tower
          ~round:(Ledger.height env.ledger) ~ledger:env.ledger ~post)
  in
  let scan_seconds_extrapolated =
    scan_seconds_per_poll *. float_of_int channels
    /. float_of_int (max scan_sample_channels 1)
  in
  (* Fraud wave: replay revoked commits on the last [frauds] channels
     with both parties frozen; only the tower can react. *)
  for k = channels - frauds to channels - 1 do
    DS.publish_revoked (Option.get chans.(k))
  done;
  I.settle env 1;
  (* The reaction poll is O(frauds) — microseconds — but at large N the
     incremental major GC still owes marking work for the O(N) heap the
     open/update phases built, and it pays that debt at allocation
     points *inside* whatever code runs next, inflating a one-shot
     timing ~8× at N=100k. Finish the outstanding cycle first so the
     timing measures the punish path, not the collector's backlog. *)
  Memtune.quiesce ();
  let (), fraud_react_seconds = timed eor in
  I.settle env 1;
  (* let the revocations confirm, then settle the punished list *)
  eor ();
  { channels;
    updates_per_channel = updates;
    open_seconds;
    update_seconds;
    updates_per_sec =
      (if update_seconds > 0. then
         float_of_int (channels * updates) /. update_seconds
       else 0.);
    monitor_polls;
    monitor_seconds_per_poll = monitor_total /. float_of_int monitor_polls;
    scan_sample_channels;
    scan_seconds_per_poll;
    scan_seconds_extrapolated;
    frauds;
    punished = List.length (Watchtower.punished tower);
    fraud_react_seconds;
    ledger_height = Ledger.height env.ledger;
    accepted_txs = Ledger.accepted_count env.ledger;
    tower_storage_bytes = Watchtower.storage_bytes tower;
    durable;
    wal_bytes = (match dtower with Some d -> Durable.wal_bytes d | None -> 0);
    snapshot_bytes =
      (match dtower with Some d -> Durable.snapshot_bytes d | None -> 0);
    gc = Memtune.quick_stats () }

let pp ppf (s : sample) =
  Fmt.pf ppf
    "@[<v>N=%d channels (%d updates each)@,\
     open: %.2fs   updates: %.2fs (%.0f upd/s)@,\
     monitor/round (indexed): %.6fs over %d polls@,\
     monitor/round (scan, %d-channel sample): %.6fs → %.4fs extrapolated at N@,\
     frauds: %d posted, %d punished (react poll: %.6fs)@,\
     height=%d accepted=%d tower=%dB%s@,\
     gc: top-heap=%dw majors=%d promoted=%.0fw@]"
    s.channels s.updates_per_channel s.open_seconds s.update_seconds
    s.updates_per_sec s.monitor_seconds_per_poll s.monitor_polls
    s.scan_sample_channels s.scan_seconds_per_poll s.scan_seconds_extrapolated
    s.frauds s.punished s.fraud_react_seconds s.ledger_height s.accepted_txs
    s.tower_storage_bytes
    (if s.durable then
       Printf.sprintf " (durable: wal=%dB snapshot=%dB)" s.wal_bytes
         s.snapshot_bytes
     else "")
    s.gc.Memtune.top_heap_words s.gc.Memtune.major_collections
    s.gc.Memtune.promoted_words
