(** Regeneration of the paper's tables and Section 6 analyses.

    Storage and operation measurements iterate the scheme registry
    ({!Daric_schemes.Registry}) through the generic scenario engine;
    a scheme that fails yields [Error] cells, not an exception. *)

(** One scheme's storage snapshot after n updates. *)
type measurement = { party : int; watchtower : int option }

(** One row of the Table 1 measured-storage sweep: a measurement (or
    failure reason) per registered scheme, keyed by scheme name. *)
type storage_point = {
  n_updates : int;
  rows : (string * (measurement, string) result) list;
}

val storage_point : n:int -> storage_point
val storage_sweep : ?ns:int list -> unit -> storage_point list

val measurement : storage_point -> string -> (measurement, string) result

val party_cell : storage_point -> string -> (int, string) result
(** Party-storage bytes of a scheme at a sweep point. *)

val watchtower_cell : storage_point -> string -> (int, string) result
(** Watchtower-storage bytes; [Error] also when the scheme has no
    watchtower. *)

val table1 : ?ns:int list -> unit -> string
(** Table 1 plus the measured storage sweep. *)

val table3 : ?ms:int list -> unit -> string
(** Table 3: closure costs per m, paper quotes side by side, operation
    counts. *)

type measured_ops = { scheme : string; sign : int; verify : int; exp : int }

val measured_ops_schemes : string list
(** The schemes whose measured operation counts the table reports. *)

val measure_ops : unit -> (measured_ops, string) result list
(** Per-party per-update operation counts measured on the executable
    schemes (Daric via the full two-party protocol). *)

val measured_ops_table : unit -> string

val attack_report : ?cfg:Daric_pcn.Attack.config -> unit -> string
(** Section 6.1: analytic arithmetic + simulated eltoo pinning +
    the same adversary against Daric. *)

val incentives_report : unit -> string
(** Section 6.2: thresholds, sweeps, Monte-Carlo validation. *)
