(** Durable-tower harness: N Daric channels guarded by a replicated
    {!Daric_core.Towerset} (R durable towers with injected faults)
    plus one fault-free durable probe tower whose store is crashed and
    re-opened at the end to measure recovery cost. Reports WAL
    overhead per round, snapshot size, recovery time, and the
    per-replica liveness/accountability scorecard. *)

type sample = {
  channels : int;
  updates_per_channel : int;
  rounds : int;  (** monitoring rounds driven after delegation *)
  replicas : int;
  snapshot_every : int;
  frauds : int;
  punished : int;  (** union over replicas — must equal [frauds] *)
  open_seconds : float;
  update_seconds : float;
  monitor_seconds : float;  (** whole monitoring loop, all replicas *)
  wal_bytes_total : int;
      (** bytes the probe tower appended to its WAL over the run *)
  wal_bytes_per_round : float;
  snapshot_bytes : int;  (** most recent probe snapshot *)
  snapshots_taken : int;
  tower_storage_bytes : int;  (** probe tower in-RAM storage *)
  recovery_seconds : float;
      (** re-open the probe store: snapshot load + WAL replay +
          cursor catch-up poll *)
  recovery_replayed : int;  (** WAL records applied on recovery *)
  recovery_had_snapshot : bool;
  scores : Daric_core.Towerset.score list;
}

val staggered_faults :
  replicas:int -> period:int -> round:int -> replica:int -> Daric_core.Towerset.fault
(** Rotating single-crash schedule: replica [r] is [`Down] exactly when
    [(round / period) mod replicas = r] — at every instant one replica
    is crashed, each takes turns, so every replica's recovery path and
    the any-one-honest property are both exercised. *)

val run :
  ?channels:int ->
  ?updates:int ->
  ?frauds:int ->
  ?rounds:int ->
  ?snapshot_every:int ->
  ?replicas:int ->
  ?seed:int ->
  ?probe_store:Daric_core.Durable.store ->
  ?mk_store:(int -> Daric_core.Durable.store) ->
  ?faults:(round:int -> replica:int -> Daric_core.Towerset.fault) ->
  unit ->
  sample
(** Build the system and measure. Defaults: 100 channels, 1 update,
    4 frauds (clamped to [channels]), 24 rounds, snapshot every 8,
    3 replicas under {!staggered_faults} with period 4, probe and
    replica stores in memory. Raises [Failure] if any fraud goes
    unpunished. *)

val pp : Format.formatter -> sample -> unit
