(** Memory sweep: retained heap of an N-channel Daric system (parties,
    packed tower records, compacted ledger, indexes) plus the update
    phase's promotion rate and an estimated major-GC time share —
    the {!Scale} harness's space-side companion. *)

type sample = {
  channels : int;
  updates_per_channel : int;
  retained_words : int;
  retained_words_per_channel : float;
  top_heap_words : int;
  promoted_words_per_update : float;
  major_collections : int;
  major_time_share : float;
  updates_per_sec : float;
  tower_arena_bytes : int;
  ledger_pack_bytes : int;
  ledger_compacted : int;
  intern_saved_bytes : int;
}

val run : ?channels:int -> ?updates:int -> ?seed:int -> unit -> sample
(** Build the N-channel system (keeping every root live), settle past
    the ledger's compaction depth, quiesce, and report the retained
    live-word delta against a pre-build baseline plus allocator
    behaviour during the update phase. [major_time_share] is an
    estimate: one timed full major × majors during updates ÷ update
    seconds. *)

val pp : Format.formatter -> sample -> unit
