(** Durable-tower harness: N channels, R replicated durable towers
    with injected faults, one fault-free probe tower for clean WAL /
    recovery numbers.

    The probe and every replica guard the same channels against the
    same ledger, so revocation posts collide — the ledger rejects the
    duplicates (same txid), which is exactly the idempotence argument
    that makes R independent towers safe to run unco-ordinated. At the
    end the probe's RAM is dropped and its store re-opened, timing the
    full recovery path: snapshot decode, WAL replay, and the catch-up
    poll that rescans the spent log from the restored cursor. *)

module I = Daric_schemes.Scheme_intf
module DS = Daric_schemes.Daric_scheme
module Ledger = Daric_chain.Ledger
module Watchtower = Daric_core.Watchtower
module Persist = Daric_core.Persist
module Durable = Daric_core.Durable
module Towerset = Daric_core.Towerset

type sample = {
  channels : int;
  updates_per_channel : int;
  rounds : int;
  replicas : int;
  snapshot_every : int;
  frauds : int;
  punished : int;
  open_seconds : float;
  update_seconds : float;
  monitor_seconds : float;
  wal_bytes_total : int;
  wal_bytes_per_round : float;
  snapshot_bytes : int;
  snapshots_taken : int;
  tower_storage_bytes : int;
  recovery_seconds : float;
  recovery_replayed : int;
  recovery_had_snapshot : bool;
  scores : Towerset.score list;
}

let timed (f : unit -> 'a) : 'a * float =
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)

let staggered_faults ~(replicas : int) ~(period : int) ~(round : int)
    ~(replica : int) : Towerset.fault =
  if replicas <= 1 then `Up
  else if (round / max 1 period) mod replicas = replica then `Down
  else `Up

let run ?(channels = 100) ?(updates = 1) ?(frauds = 4) ?(rounds = 24)
    ?(snapshot_every = 8) ?(replicas = 3) ?(seed = 7)
    ?(probe_store = Durable.memory_store ())
    ?(mk_store = fun (_ : int) -> Durable.memory_store ()) ?faults () :
    sample =
  let env = I.make_env ~delta:1 ~seed () in
  let updates = max 1 updates in
  let rounds = max 2 rounds in
  let frauds = min (max frauds 0) channels in
  let faults =
    match faults with
    | Some f -> f
    | None -> fun ~round ~replica -> staggered_faults ~replicas ~period:4 ~round ~replica
  in
  let chans = Array.make channels None in
  let (), open_seconds =
    timed (fun () ->
        for k = 0 to channels - 1 do
          let cfg =
            { I.default_config with
              chan_id = Printf.sprintf "c%d" k;
              party_seed = 1000 + (2 * k);
              bal_a = 500_000 + (k mod 997);
              bal_b = 500_000 - (k mod 997) }
          in
          match DS.Scheme.open_channel env cfg with
          | Ok s -> chans.(k) <- Some s
          | Error e -> failwith (I.error_to_string e)
        done)
  in
  let (), update_seconds =
    timed (fun () ->
        Array.iteri
          (fun k s ->
            let s = Option.get s in
            for u = 1 to updates do
              let shift = (k mod 997) + (u * 13) in
              match
                DS.Scheme.update s ~bal_a:(500_000 + shift)
                  ~bal_b:(500_000 - shift)
              with
              | Ok () -> ()
              | Error e -> failwith (I.error_to_string e)
            done)
          chans)
  in
  (* Delegate every channel to the probe and to the replica set. *)
  let probe = Durable.create ~snapshot_every ~wid:"probe" probe_store in
  let ts = Towerset.create ~snapshot_every ~faults ~wid:"tower" ~mk_store replicas in
  let round0 = Ledger.height env.ledger in
  Array.iter
    (fun s ->
      match DS.watch_record (Option.get s) with
      | Some r ->
          if not (Durable.watch probe r) then
            failwith "tower_sim: probe rejected a valid record";
          if not (Towerset.watch ts ~round:round0 r) then
            failwith "tower_sim: every replica rejected a valid record"
      | None -> failwith "tower_sim: no record after update")
    chans;
  let post tx = Ledger.post env.ledger tx ~delay:0 in
  let eor_both () =
    let round = Ledger.height env.ledger in
    Towerset.end_of_round ts ~round ~ledger:env.ledger ~post;
    Durable.end_of_round probe ~round ~ledger:env.ledger ~post
  in
  (* Fraud wave A lands halfway through the loop (punished, journaled,
     then absorbed into a later snapshot); wave B lands *after* the
     loop's last snapshot, so the crash point below has live WAL
     content and recovery must replay punishments, not just load the
     snapshot. Both replay revoked commits with the channel parties
     frozen; only the towers can react. *)
  let frauds_a = frauds - (frauds / 2) in
  let fraud_round = max 1 (rounds / 2) in
  let (), monitor_seconds =
    timed (fun () ->
        for i = 1 to rounds do
          if i = fraud_round then
            for k = channels - frauds to channels - frauds + frauds_a - 1 do
              DS.publish_revoked (Option.get chans.(k))
            done;
          I.settle env 1;
          eor_both ()
        done)
  in
  (* Wave B, then let the revocations confirm and the punished lists
     settle. *)
  for k = channels - frauds + frauds_a to channels - 1 do
    DS.publish_revoked (Option.get chans.(k))
  done;
  I.settle env 1;
  eor_both ();
  I.settle env 1;
  eor_both ();
  let final_round = Ledger.height env.ledger in
  let punished = List.length (Towerset.punished ts) in
  if punished <> frauds then
    failwith
      (Printf.sprintf "tower_sim: %d frauds posted, %d punished" frauds punished);
  let probe_punished = List.length (Watchtower.punished (Durable.tower probe)) in
  if probe_punished <> frauds then
    failwith
      (Printf.sprintf "tower_sim: probe punished %d of %d" probe_punished frauds);
  let wal_bytes_total = Durable.wal_bytes probe in
  let snapshot_bytes = Durable.snapshot_bytes probe in
  let snapshots_taken = Durable.snapshots_taken probe in
  let tower_storage_bytes = Watchtower.storage_bytes (Durable.tower probe) in
  let guarded_before = Watchtower.guarded_count (Durable.tower probe) in
  (* Crash the probe (drop its RAM) and time the full re-open: snapshot
     + WAL replay + one catch-up poll from the restored cursor. *)
  let recovery, recovery_seconds =
    timed (fun () ->
        match Durable.recover ~snapshot_every ~wid:"probe" probe_store with
        | Ok r ->
            Durable.end_of_round r.Durable.t ~round:final_round
              ~ledger:env.ledger ~post;
            r
        | Error e ->
            failwith ("tower_sim: recovery failed: " ^ Persist.error_to_string e))
  in
  let tw = Durable.tower recovery.Durable.t in
  if Watchtower.guarded_count tw <> guarded_before then
    failwith "tower_sim: recovered tower lost channels";
  if List.length (Watchtower.punished tw) <> frauds then
    failwith "tower_sim: recovered tower lost punishments";
  { channels;
    updates_per_channel = updates;
    rounds;
    replicas;
    snapshot_every;
    frauds;
    punished;
    open_seconds;
    update_seconds;
    monitor_seconds;
    wal_bytes_total;
    wal_bytes_per_round = float_of_int wal_bytes_total /. float_of_int rounds;
    snapshot_bytes;
    snapshots_taken;
    tower_storage_bytes;
    recovery_seconds;
    recovery_replayed = recovery.Durable.replayed;
    recovery_had_snapshot = recovery.Durable.had_snapshot;
    scores = Towerset.scorecard ts }

let pp ppf (s : sample) =
  Fmt.pf ppf
    "@[<v>N=%d channels (%d updates each), %d replicas, %d rounds, \
     snapshot every %d@,\
     open: %.2fs   updates: %.2fs   monitor: %.3fs@,\
     frauds: %d posted, %d punished@,\
     probe WAL: %dB total (%.1fB/round)   snapshot: %dB (%d taken)   \
     tower RAM: %dB@,\
     recovery: %.6fs (%d WAL records replayed, snapshot=%b)@,%a@]"
    s.channels s.updates_per_channel s.replicas s.rounds s.snapshot_every
    s.open_seconds s.update_seconds s.monitor_seconds s.frauds s.punished
    s.wal_bytes_total s.wal_bytes_per_round s.snapshot_bytes
    s.snapshots_taken s.tower_storage_bytes s.recovery_seconds
    s.recovery_replayed s.recovery_had_snapshot Towerset.pp_scorecard
    s.scores
