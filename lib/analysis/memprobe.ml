(** Memory sweep: what an N-channel Daric system *retains* on the
    heap, as opposed to what it costs in time ({!Scale}).

    The probe builds the same system as {!Scale.run} — N channels
    opened through the SCHEME registry's Daric wrapper, a sweep of
    off-chain updates, every channel delegated to one watchtower — but
    keeps every root alive across a full compaction and diffs
    [Gc.stat].live_words against a quiesced baseline taken before the
    first allocation. That difference divided by N is the
    retained-words-per-channel figure the memory engine is judged on:
    it prices the parties' O(1) channel state, the tower's packed
    record arena, the ledger's compacted accepted log and every index
    over them, all at once.

    Alongside retention it reports the allocator's behaviour during
    the update phase: promoted words per update (how much of an
    update's transient garbage escaped the minor heap) and an
    *estimated* share of update wall-time spent in major collections —
    one timed full major at the end, multiplied by the number of major
    cycles the update phase triggered, over the phase's duration. An
    estimate, not a measurement (OCaml's incremental marker has no
    per-slice clock), but it moves in the right direction and is cheap
    enough to run at N = 100k. *)

module I = Daric_schemes.Scheme_intf
module DS = Daric_schemes.Daric_scheme
module Ledger = Daric_chain.Ledger
module Watchtower = Daric_core.Watchtower
module Memtune = Daric_util.Memtune
module Intern = Daric_util.Intern

type sample = {
  channels : int;
  updates_per_channel : int;
  retained_words : int;  (** quiesced live-word delta for the system *)
  retained_words_per_channel : float;
  top_heap_words : int;  (** [Gc.quick_stat].top_heap_words at end *)
  promoted_words_per_update : float;
  major_collections : int;  (** during the update phase *)
  major_time_share : float;
      (** estimated fraction of update time in the major collector *)
  updates_per_sec : float;
  tower_arena_bytes : int;  (** live packed record bytes *)
  ledger_pack_bytes : int;  (** live packed accepted-log bytes *)
  ledger_compacted : int;  (** accepted-log entries held packed *)
  intern_saved_bytes : int;  (** duplicate payload bytes deduplicated *)
}

let timed (f : unit -> 'a) : 'a * float =
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)

(** [run ~channels ~updates ~seed ()] builds the system, measures, and
    returns the sample. All roots (channels, tower, ledger) stay live
    until the final statistics are read. *)
let run ?(channels = 1_000) ?(updates = 2) ?(seed = 7) () : sample =
  Memtune.pace ();
  Memtune.quiesce ();
  let base_live = (Gc.stat ()).Gc.live_words in
  let intern0 = Intern.stats () in
  let env = I.make_env ~delta:1 ~seed () in
  let updates = max 1 updates in
  let chans = Array.make channels None in
  for k = 0 to channels - 1 do
    let cfg =
      { I.default_config with
        chan_id = Printf.sprintf "m%d" k;
        party_seed = 1000 + (2 * k);
        bal_a = 500_000 + (k mod 997);
        bal_b = 500_000 - (k mod 997) }
    in
    match DS.Scheme.open_channel env cfg with
    | Ok s -> chans.(k) <- Some s
    | Error e -> failwith (I.error_to_string e)
  done;
  let before = Memtune.quick_stats () in
  let (), update_seconds =
    timed (fun () ->
        Array.iteri
          (fun k s ->
            let s = Option.get s in
            for u = 1 to updates do
              let shift = (k mod 997) + (u * 13) in
              match
                DS.Scheme.update s ~bal_a:(500_000 + shift)
                  ~bal_b:(500_000 - shift)
              with
              | Ok () -> ()
              | Error e -> failwith (I.error_to_string e)
            done)
          chans)
  in
  let after = Memtune.quick_stats () in
  let tower = Watchtower.create ~wid:"mem-tower" () in
  Array.iter
    (fun s ->
      match DS.watch_record (Option.get s) with
      | Some r ->
          if not (Watchtower.watch tower r) then
            failwith "memprobe: tower rejected a valid record"
      | None -> failwith "memprobe: no record after update")
    chans;
  (* One snapshot/recovery roundtrip: decodes every packed record,
     which routes ids, txids and signatures through the interner —
     recovered copies share bytes with the live ones. The restored
     tower itself is dropped before the retention diff. *)
  (let snap = Daric_core.Persist.encode_tower tower in
   match Daric_core.Persist.restore_tower snap with
   | Ok t2 ->
       if Watchtower.guarded_count t2 <> channels then
         failwith "memprobe: snapshot roundtrip lost records"
   | Error e -> failwith (Daric_core.Persist.error_to_string e));
  (* Let the accepted log compact past the funding transactions. *)
  I.settle env (Ledger.default_compact_depth + 1);
  (* Quiesce, then diff live words against the pre-build baseline. *)
  let major_seconds = Memtune.timed_quiesce () in
  let end_live = (Gc.stat ()).Gc.live_words in
  let gcs = Memtune.quick_stats () in
  let intern1 = Intern.stats () in
  let n_updates = channels * updates in
  let majors = after.Memtune.major_collections - before.Memtune.major_collections in
  let sample =
    { channels;
      updates_per_channel = updates;
      retained_words = end_live - base_live;
      retained_words_per_channel =
        float_of_int (end_live - base_live) /. float_of_int (max channels 1);
      top_heap_words = gcs.Memtune.top_heap_words;
      promoted_words_per_update =
        (after.Memtune.promoted_words -. before.Memtune.promoted_words)
        /. float_of_int (max n_updates 1);
      major_collections = majors;
      major_time_share =
        (if update_seconds > 0. then
           Float.min 1. (major_seconds *. float_of_int majors /. update_seconds)
         else 0.);
      updates_per_sec =
        (if update_seconds > 0. then
           float_of_int n_updates /. update_seconds
         else 0.);
      tower_arena_bytes = Watchtower.arena_live_bytes tower;
      ledger_pack_bytes = Ledger.pack_live_bytes env.ledger;
      ledger_compacted = Ledger.compacted_count env.ledger;
      intern_saved_bytes =
        intern1.Intern.saved_bytes - intern0.Intern.saved_bytes }
  in
  (* Roots must survive every statistic read above. *)
  ignore (Sys.opaque_identity chans);
  ignore (Sys.opaque_identity tower);
  ignore (Sys.opaque_identity env);
  sample

let pp ppf (s : sample) =
  Fmt.pf ppf
    "@[<v>N=%d channels (%d updates each, %.0f upd/s)@,\
     retained: %d words (%.1f words/channel)   top-heap: %d words@,\
     promoted/update: %.1f words   major GC share (est.): %.1f%% over %d \
     majors@,\
     tower arena: %dB   ledger pack: %dB (%d entries)   interned: %dB saved@]"
    s.channels s.updates_per_channel s.updates_per_sec s.retained_words
    s.retained_words_per_channel s.top_heap_words s.promoted_words_per_update
    (100. *. s.major_time_share)
    s.major_collections s.tower_arena_bytes s.ledger_pack_bytes
    s.ledger_compacted s.intern_saved_bytes
