(** Scale harness: N Daric channels (real two-party protocol, via the
    SCHEME registry's Daric wrapper) on one shared ledger, guarded by
    one watchtower — measures per-round monitoring cost of the indexed
    spent-log monitor vs the pre-index linear scan, and checks the
    tower punishes a wave of replayed revoked commits. *)

type sample = {
  channels : int;
  updates_per_channel : int;
  open_seconds : float;
  update_seconds : float;
  updates_per_sec : float;
  monitor_polls : int;
  monitor_seconds_per_poll : float;
  scan_sample_channels : int;
  scan_seconds_per_poll : float;
  scan_seconds_extrapolated : float;
  frauds : int;
  punished : int;
  fraud_react_seconds : float;
  ledger_height : int;
  accepted_txs : int;
  tower_storage_bytes : int;
  durable : bool;
  wal_bytes : int;
  snapshot_bytes : int;
  gc : Daric_util.Memtune.stats;
}

val run :
  ?channels:int -> ?updates:int -> ?frauds:int -> ?seed:int ->
  ?durable:bool -> unit -> sample
(** Build the system and measure. [frauds] is clamped to [channels];
    [updates] is at least 1. With [~durable:true] the tower runs
    behind the {!Daric_core.Durable} snapshot+WAL layer (memory
    store), so the sweep also prices the journal. *)

val pp : Format.formatter -> sample -> unit
