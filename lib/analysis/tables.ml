(** Regeneration of the paper's tables.

    - {!table1}: the qualitative scheme comparison, backed by *measured*
      party/watchtower storage growth over n updates for every
      executable scheme in {!Daric_schemes.Registry}.
    - {!table3}: on-chain closure costs and per-update operation counts
      for all eight schemes, from the Appendix-H closed forms, with the
      paper-quoted weight strings side by side; plus measured operation
      counts from the executable implementations.

    All measurements run through the generic scenario engine
    ({!Daric_schemes.Harness}): this module contains no per-scheme
    lifecycle wiring, only registry iteration plus the tables' column
    layouts. Scheme failures surface as [Error] cells and footnotes
    instead of aborting the whole regeneration. *)

module Costmodel = Daric_schemes.Costmodel
module Registry = Daric_schemes.Registry
module Harness = Daric_schemes.Harness
module Intf = Daric_schemes.Scheme_intf

let fmt_buf (f : Format.formatter -> unit) : string =
  let b = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer b in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Table 1: storage measurements.                                      *)

(** One scheme's storage snapshot after n updates. *)
type measurement = { party : int; watchtower : int option }

(** One row of the Table 1 sweep: every registered scheme's measurement
    (or the reason it failed), keyed by scheme name. *)
type storage_point = {
  n_updates : int;
  rows : (string * (measurement, string) result) list;
}

let storage_point ~(n : int) : storage_point =
  { n_updates = n;
    rows =
      List.map
        (fun (module S : Intf.SCHEME) ->
          ( S.name,
            match
              Harness.run_fresh (module S) { updates = n; close = `None }
            with
            | Ok r ->
                Ok { party = r.Harness.party_bytes;
                     watchtower = r.Harness.watchtower_bytes }
            | Error e -> Error (Intf.error_to_string e) ))
        Registry.all }

let measurement (p : storage_point) (scheme : string) :
    (measurement, string) result =
  match List.assoc_opt scheme p.rows with
  | Some m -> m
  | None -> Error (scheme ^ ": not in registry")

(** Party-storage bytes of [scheme] at point [p]; [Error reason] when
    the scheme failed to run. *)
let party_cell (p : storage_point) (scheme : string) : (int, string) result =
  Result.map (fun m -> m.party) (measurement p scheme)

let watchtower_cell (p : storage_point) (scheme : string) :
    (int, string) result =
  Result.bind (measurement p scheme) (fun m ->
      match m.watchtower with
      | Some w -> Ok w
      | None -> Error (scheme ^ ": no watchtower"))

let storage_sweep ?(ns = [ 1; 10; 100; 1000 ]) () : storage_point list =
  List.map (fun n -> storage_point ~n) ns

(* Column layouts of the two measured-storage tables: scheme row name,
   printed header label, column width. *)
let party_columns =
  [ ("Daric", "Daric", 8); ("eltoo", "eltoo", 8); ("Lightning", "Lightning", 10);
    ("Generalized", "Generalized", 12); ("FPPW", "FPPW", 8);
    ("Cerberus", "Cerberus", 9); ("Sleepy", "Sleepy", 8);
    ("Outpost", "Outpost*", 9) ]

let watchtower_columns =
  [ ("Daric", "Daric", 10); ("Lightning", "Lightning", 10);
    ("FPPW", "FPPW", 10); ("Outpost", "Outpost", 10) ]

(* Print one table row: cells are strings padded to the layout widths
   (identical bytes to the historical %-<w>d columns). *)
let print_row ppf (cells : (string * int) list) : unit =
  Format.fprintf ppf "%s@."
    (String.concat " " (List.map (fun (s, w) -> Printf.sprintf "%-*s" w s) cells))

let storage_table ppf ~(title : string) ~(n_width : int)
    ~(columns : (string * string * int) list)
    ~(cell : storage_point -> string -> (int, string) result)
    (points : storage_point list) : unit =
  Format.fprintf ppf "%s@." title;
  print_row ppf
    (("n", n_width) :: List.map (fun (_, label, w) -> (label, w)) columns);
  let errors = ref [] in
  List.iter
    (fun p ->
      print_row ppf
        ((string_of_int p.n_updates, n_width)
        :: List.map
             (fun (scheme, _, w) ->
               match cell p scheme with
               | Ok v -> (string_of_int v, w)
               | Error reason ->
                   if not (List.mem reason !errors) then
                     errors := reason :: !errors;
                   ("err", w))
             columns))
    points;
  List.iter
    (fun reason -> Format.fprintf ppf "(! %s)@." reason)
    (List.rev !errors)

let table1 ?(ns = [ 1; 10; 100; 1000 ]) () : string =
  let points = storage_sweep ~ns () in
  fmt_buf (fun ppf ->
      Format.fprintf ppf
        "Table 1 - scheme comparison (n channel updates, k recursive splits)@.";
      Format.fprintf ppf
        "%-12s %-9s %-9s %-11s %-8s %-7s %-9s %-5s@." "Scheme" "PartySt"
        "WatchSt" "Lifetime" "Incent" "#Txs" "AdaAvoid" "BndCls";
      List.iter
        (fun (s : Costmodel.scheme) ->
          Format.fprintf ppf "%-12s %-9s %-9s %-11s %-8s %-7s %-9s %-5s@."
            s.Costmodel.name s.party_storage s.watchtower_storage s.lifetime
            (if s.incentive_compatible then "yes" else "no")
            s.txs_per_k_apps
            (if s.avoids_adaptor_sigs then "yes" else "no")
            (if s.bounded_closure then "yes" else "no"))
        Costmodel.all;
      Format.fprintf ppf
        "@.";
      storage_table ppf
        ~title:"Measured party storage (bytes) after n updates:" ~n_width:8
        ~columns:party_columns ~cell:party_cell points;
      Format.fprintf ppf
        "(*Outpost party storage is O(1) here via the reverse hash chain;\n\
        \ the paper's O(n) variant stores per-state data instead - see\n\
        \ lib/schemes/outpost.ml)@.";
      Format.fprintf ppf "@.";
      storage_table ppf ~title:"Measured watchtower storage (bytes):"
        ~n_width:8 ~columns:watchtower_columns ~cell:watchtower_cell points)

(* ------------------------------------------------------------------ *)
(* Table 3.                                                            *)

let table3 ?(ms = [ 0; 1; 5; 10 ]) () : string =
  fmt_buf (fun ppf ->
      Format.fprintf ppf
        "Table 3 - on-chain closure cost (weight units) and ops per update@.";
      List.iter
        (fun m ->
          Format.fprintf ppf "@.m = %d HTLC outputs:@." m;
          Format.fprintf ppf "%-12s %5s %10s %-18s %5s %10s %-14s@." "Scheme"
            "#TxD" "WU-dish" "paper(dish)" "#TxN" "WU-nonc" "paper(noncoll)";
          List.iter
            (fun (s : Costmodel.scheme) ->
              if m = 0 || s.Costmodel.supports_htlc then begin
                let dc = s.dishonest ~m and nc = s.non_collaborative ~m in
                let pd, pn =
                  match Costmodel.paper_quoted s.name with
                  | Some (a, b) -> (a, b)
                  | None -> ("-", "-")
                in
                Format.fprintf ppf "%-12s %5.0f %10.1f %-18s %5.0f %10.1f %-14s@."
                  s.name dc.n_tx (Costmodel.weight dc) pd nc.n_tx
                  (Costmodel.weight nc) pn
              end)
            Costmodel.all)
        ms;
      Format.fprintf ppf "@.Operations per channel update (m = 0):@.";
      Format.fprintf ppf "%-12s %6s %7s %5s@." "Scheme" "Sign" "Verify" "Exp";
      List.iter
        (fun (s : Costmodel.scheme) ->
          let o = s.Costmodel.ops_per_update ~m:0 in
          Format.fprintf ppf "%-12s %6.1f %7.1f %5.1f@." s.name o.sign o.verify
            o.exp)
        Costmodel.all)

(* Measured operation counts per update from the executable schemes. *)
type measured_ops = { scheme : string; sign : int; verify : int; exp : int }

(* Schemes whose measured per-update operation counts the table
   reports (the historical Table 3 comparison set), in print order. *)
let measured_ops_schemes = [ "Daric"; "eltoo"; "Lightning"; "Generalized" ]

let measure_ops () : (measured_ops, string) result list =
  let config = { Intf.default_config with bal_a = 1000; bal_b = 1000 } in
  List.map
    (fun name ->
      match Registry.find name with
      | None -> Error (name ^ ": not in registry")
      | Some (module S : Intf.SCHEME) -> (
          match
            Harness.run_fresh ~config (module S) { updates = 10; close = `None }
          with
          | Ok r ->
              let o = r.Harness.per_update_ops in
              Ok { scheme = name; sign = o.Intf.signs; verify = o.Intf.verifies;
                   exp = o.Intf.exps }
          | Error e -> Error (Intf.error_to_string e)))
    measured_ops_schemes

let measured_ops_table () : string =
  fmt_buf (fun ppf ->
      Format.fprintf ppf
        "Measured operations per update (executable schemes, per party, m = 0):@.";
      Format.fprintf ppf "%-12s %6s %7s %5s@." "Scheme" "Sign" "Verify" "Exp";
      List.iter
        (function
          | Ok r ->
              Format.fprintf ppf "%-12s %6d %7d %5d@." r.scheme r.sign r.verify
                r.exp
          | Error reason -> Format.fprintf ppf "(! %s)@." reason)
        (measure_ops ()))

(* ------------------------------------------------------------------ *)
(* Section 6 reports.                                                  *)

let attack_report ?(cfg = Daric_pcn.Attack.default_config) () : string =
  let module A = Daric_pcn.Attack in
  let el = A.run_eltoo cfg in
  let da = A.run_daric { cfg with n_channels = min cfg.n_channels 5 } in
  fmt_buf (fun ppf ->
      Format.fprintf ppf "Section 6.1 - HTLC-security delay attack@.";
      Format.fprintf ppf
        "analytic: <=%d channels per delay tx; %d delay txs over a 3-day \
         timelock; cost %dA vs revenue up to %dA -> %s@."
        (A.Analytic.max_channels_per_delay_tx ())
        (A.Analytic.delay_txs_before_expiry ())
        (A.Analytic.cost_over_a ())
        (A.Analytic.max_revenue_over_a ())
        (if A.Analytic.profitable () then "PROFITABLE against eltoo"
         else "unprofitable");
      Format.fprintf ppf
        "@.simulated eltoo (N=%d, A=%d sat, %d blocks):@." cfg.n_channels
        cfg.htlc_value cfg.timelock_blocks;
      Format.fprintf ppf
        "  delay txs confirmed        %d@." el.A.delay_txs_confirmed;
      Format.fprintf ppf
        "  adversary fees paid        %d sat@." el.A.adversary_fees_paid;
      Format.fprintf ppf
        "  victim overrides rejected  %d (BIP-125 out-bid)@."
        el.A.victim_overrides_rejected;
      Format.fprintf ppf
        "  victims escaped in time    %d / %d@." el.A.victims_escaped_in_time
        cfg.n_channels;
      Format.fprintf ppf
        "  HTLCs claimed by adversary %d@." el.A.htlcs_claimed_by_adversary;
      Format.fprintf ppf "  adversary net              %d sat@." el.A.adversary_net;
      Format.fprintf ppf "@.simulated Daric under the same adversary:@.";
      Format.fprintf ppf "  old commits posted   %d@." da.A.old_commits_posted;
      Format.fprintf ppf "  punished in window   %d@." da.A.punished_within_window;
      Format.fprintf ppf "  adversary lost       %d sat@."
        da.A.adversary_capacity_lost;
      Format.fprintf ppf "  HTLCs claimed        %d (attack inapplicable)@."
        da.A.htlcs_claimed)

let incentives_report () : string =
  let module I = Incentives in
  fmt_buf (fun ppf ->
      Format.fprintf ppf "Section 6.2 - punishment thresholds@.";
      Format.fprintf ppf "%-28s %-12s %-12s@." "scenario" "eltoo p>" "Daric p>";
      List.iter
        (fun (r : I.threshold_row) ->
          Format.fprintf ppf "%-28s %-12.5f %-12.5f@." r.label r.eltoo r.daric)
        (I.paper_rows ());
      Format.fprintf ppf "@.threshold vs channel capacity (min fee, 1%% reserve):@.";
      Format.fprintf ppf "%-12s %-12s %-12s@." "cap (BTC)" "eltoo" "Daric";
      List.iter
        (fun (c, e, d) -> Format.fprintf ppf "%-12.3f %-12.6f %-12.6f@." c e d)
        (I.capacity_sweep ());
      Format.fprintf ppf "@.Daric threshold vs reserve (flexibility):@.";
      Format.fprintf ppf "%-12s %-12s@." "reserve" "p >";
      List.iter
        (fun (r, p) -> Format.fprintf ppf "%-12.2f %-12.2f@." r p)
        (I.reserve_sweep ());
      Format.fprintf ppf "@.min punishable amount: %.1f USD (paper: ~20 USD)@."
        (I.daric_min_punishment_usd ());
      (* Monte-Carlo check just above/below the thresholds *)
      let rng = Daric_util.Rng.create ~seed:77 in
      let cap = I.Constants.avg_channel_capacity_btc in
      let fee = I.Constants.min_fee_btc in
      let e_thr = I.eltoo_threshold ~fee ~capacity:cap in
      let below = I.simulate_eltoo ~rng ~trials:200_000 ~p:(e_thr -. 0.0005) ~fee ~capacity:cap in
      let above = I.simulate_eltoo ~rng ~trials:200_000 ~p:(e_thr +. 0.0005) ~fee ~capacity:cap in
      Format.fprintf ppf
        "@.Monte-Carlo (eltoo, min fee): E[profit] below thr = %+.2e BTC, above thr = %+.2e BTC@."
        below above;
      let d_thr = I.daric_threshold ~reserve:0.01 in
      let below = I.simulate_daric ~rng ~trials:200_000 ~p:(d_thr -. 0.005) ~reserve:0.01 ~capacity:cap in
      let above = I.simulate_daric ~rng ~trials:200_000 ~p:(d_thr +. 0.005) ~reserve:0.01 ~capacity:cap in
      Format.fprintf ppf
        "Monte-Carlo (Daric, 1%% reserve): E[profit] below thr = %+.2e BTC, above thr = %+.2e BTC@."
        below above)
