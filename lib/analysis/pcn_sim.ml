(** Network-scale simulation: random payments over a random topology
    of Daric channels, reporting delivery rate and route length as a
    function of payment size — the PCN workload the paper's
    introduction motivates, run end-to-end through the real protocol
    (every hop of every payment is a complete Daric update). *)

module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Router = Daric_pcn.Router

type config = {
  n_nodes : int;
  n_channels : int;
  channel_balance : int;  (** per side *)
  n_payments : int;
  max_payment : int;
  seed : int;
}

let default_config =
  { n_nodes = 10;
    n_channels = 15;
    channel_balance = 50_000;
    n_payments = 40;
    max_payment = 40_000;
    seed = 0x9C1 }

type bucket = {
  lo : int;
  hi : int;
  mutable attempted : int;
  mutable delivered : int;
  mutable route_hops : int;
}

type result = {
  delivered : int;
  attempted : int;
  buckets : bucket list;
  avg_route_length : float;
}

let run (cfg : config) : result =
  let rng = Daric_util.Rng.create ~seed:cfg.seed in
  (* the payment workload routes through one driver; cap the retained
     network log so memory stays flat in n_payments *)
  let d = Driver.create ~delta:1 ~seed:cfg.seed ~net_log_cap:256 () in
  let nodes =
    Array.init cfg.n_nodes (fun i ->
        let p = Party.create ~pid:(Fmt.str "n%d" i) ~seed:(cfg.seed + i) () in
        Driver.add_party d p;
        p)
  in
  let net = Router.create d in
  (* random connected-ish topology: a ring plus random chords *)
  let opened = Hashtbl.create 32 in
  let open_edge i j =
    let key = (min i j, max i j) in
    if i <> j && not (Hashtbl.mem opened key) then begin
      Hashtbl.replace opened key ();
      let id = Fmt.str "e%d-%d" i j in
      Driver.open_channel d ~id ~alice:nodes.(i) ~bob:nodes.(j)
        ~bal_a:cfg.channel_balance ~bal_b:cfg.channel_balance ();
      if Driver.run_until_operational d ~id ~alice:nodes.(i) ~bob:nodes.(j)
      then Router.add_channel net ~channel_id:id ~a:nodes.(i) ~b:nodes.(j)
    end
  in
  for i = 0 to cfg.n_nodes - 1 do
    open_edge i ((i + 1) mod cfg.n_nodes)
  done;
  let extra = max 0 (cfg.n_channels - cfg.n_nodes) in
  let added = ref 0 in
  while !added < extra do
    let i = Daric_util.Rng.int rng cfg.n_nodes in
    let j = Daric_util.Rng.int rng cfg.n_nodes in
    if i <> j && not (Hashtbl.mem opened (min i j, max i j)) then incr added;
    open_edge i j
  done;
  (* payment workload *)
  let n_buckets = 4 in
  let buckets =
    List.init n_buckets (fun k ->
        { lo = k * cfg.max_payment / n_buckets;
          hi = (k + 1) * cfg.max_payment / n_buckets;
          attempted = 0;
          delivered = 0;
          route_hops = 0 })
  in
  let delivered = ref 0 and total_hops = ref 0 in
  for k = 1 to cfg.n_payments do
    let src = Daric_util.Rng.int rng cfg.n_nodes in
    let dst = (src + 1 + Daric_util.Rng.int rng (cfg.n_nodes - 1)) mod cfg.n_nodes in
    let amount = 1 + Daric_util.Rng.int rng cfg.max_payment in
    let r =
      Router.pay net ~src:nodes.(src) ~dst:nodes.(dst) ~amount
        ~preimage:(Fmt.str "pay-%d" k) ()
    in
    let b = List.find (fun (b : bucket) -> amount > b.lo && amount <= b.hi) buckets in
    b.attempted <- b.attempted + 1;
    if r.Router.delivered then begin
      incr delivered;
      total_hops := !total_hops + r.Router.route_length;
      b.delivered <- b.delivered + 1;
      b.route_hops <- b.route_hops + r.Router.route_length
    end
  done;
  { delivered = !delivered;
    attempted = cfg.n_payments;
    buckets;
    avg_route_length =
      (if !delivered = 0 then 0.
       else float_of_int !total_hops /. float_of_int !delivered) }

let report ?(cfg = default_config) () : string =
  let r = run cfg in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Fmt.str
       "PCN simulation: %d nodes, %d channels (%d sat/side), %d random payments\n"
       cfg.n_nodes cfg.n_channels cfg.channel_balance cfg.n_payments);
  Buffer.add_string b
    (Fmt.str "delivered %d/%d (%.0f%%), mean route %.2f hops\n" r.delivered
       r.attempted
       (100. *. float_of_int r.delivered /. float_of_int r.attempted)
       r.avg_route_length);
  Buffer.add_string b "size bucket (sat)    attempted  delivered  rate\n";
  List.iter
    (fun (bu : bucket) ->
      if bu.attempted > 0 then
        Buffer.add_string b
          (Fmt.str "%7d - %-9d %9d %10d  %3.0f%%\n" bu.lo bu.hi bu.attempted
             bu.delivered
             (100. *. float_of_int bu.delivered /. float_of_int bu.attempted)))
    r.buckets;
  Buffer.contents b

let to_csv (r : result) ~(dir : string) : string =
  Csv.write_file ~dir ~name:"pcn_delivery.csv"
    ~header:"bucket_lo,bucket_hi,attempted,delivered"
    (List.map
       (fun (b : bucket) -> Fmt.str "%d,%d,%d,%d" b.lo b.hi b.attempted b.delivered)
       r.buckets)
