(** GC pacing policy: one owner for the [Gc.set] knobs the harnesses
    need (minor-heap sizing, space overhead) and for draining major-GC
    debt before one-shot timings, with call counters and a
    [Gc.quick_stat] snapshot type for heap-trajectory reporting. *)

type stats = {
  top_heap_words : int;  (** largest major heap so far *)
  heap_words : int;  (** current major heap *)
  major_collections : int;
  minor_collections : int;
  promoted_words : float;  (** words copied minor -> major, lifetime *)
  minor_words : float;  (** words allocated in the minor heap, lifetime *)
}

val quick_stats : unit -> stats
(** Cheap counters from [Gc.quick_stat] (no heap walk). *)

val pace : ?minor_heap_words:int -> ?space_overhead:int -> unit -> unit
(** Apply the pacing policy: raise the minor heap to at least
    [minor_heap_words] (default 1M words / 8 MB; an explicitly larger
    current setting is kept) and optionally set [space_overhead].
    Idempotent; no-op when nothing would change. *)

val quiesce : unit -> unit
(** Finish the outstanding major cycle and collect, so a following
    timed section measures its own work rather than the collector's
    backlog. *)

val timed_quiesce : unit -> float
(** {!quiesce}, returning its CPU seconds — the current per-cycle
    cost of marking the live heap. *)

val default_minor_heap_words : int

val paces : unit -> int
(** Lifetime {!pace} calls (telemetry). *)

val quiesces : unit -> int
(** Lifetime {!quiesce}/{!timed_quiesce} calls (telemetry). *)
