(** Byte arena with size-class free lists: length-prefixed blobs packed
    into a few large [Bytes] chunks, so retained state is opaque to the
    major GC (it marks a handful of unscanned blocks, not one boxed
    value per blob). Freed slots are reused by size class — footprint
    tracks the live set, not the allocation history. Single-owner; not
    thread-safe. *)

type slot
(** Handle to one stored blob. *)

type t

val create : ?chunk_bytes:int -> unit -> t
(** Fresh arena; chunks default to 1 MiB. *)

val store : t -> string -> slot
(** Copy [blob] into the arena (reusing a freed slot of the same size
    class when one exists) and return its handle. *)

val replace : t -> slot -> string -> slot
(** Overwrite a live slot in place when the new blob fits its
    capacity — the common case for fixed-shape records — otherwise
    free + store. Returns the slot now holding the blob. *)

val free : t -> slot -> unit
(** Return the slot to its size-class free list. Idempotent. *)

val read : t -> slot -> string
(** Copy the slot's bytes back out. *)

val slot_length : slot -> int
(** Stored bytes in this slot (0 once freed). *)

val live_bytes : t -> int
(** Total bytes across live slots. *)

val live_slots : t -> int
val freed_slots : t -> int
(** Lifetime number of frees (telemetry). *)

val capacity_bytes : t -> int
(** Total chunk bytes allocated from the OCaml heap. *)
