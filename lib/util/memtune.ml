(** GC pacing policy for the long-lived, large-heap runs (the scale
    sweeps, the memory probes, the CLI demos at big N).

    Owns the two knobs the harnesses used to poke ad hoc:

    - the minor heap: an update's allocations are almost all dead
      within the round, but the default 256k-word minor heap promotes
      a slice of them at every minor cycle, and at N=100k that
      promoted garbage is what the major GC spends the run collecting.
      1M words (8 MB — still cache-benign) lets most of it die young:
      ~15–20% more updates/sec at N >= 10k, flat below that.
    - draining major-GC debt before a one-shot timing: the incremental
      major GC owes marking work proportional to the live heap and
      pays it at allocation points inside whatever runs next, so an
      O(frauds) reaction poll can read ~8x slower at N=100k unless the
      outstanding cycle is finished first.

    Every call is counted, so the benches can report how often the
    policy fired alongside the {!quick_stats} heap trajectory. *)

type stats = {
  top_heap_words : int;  (** largest major heap so far *)
  heap_words : int;  (** current major heap *)
  major_collections : int;
  minor_collections : int;
  promoted_words : float;  (** words copied minor -> major, lifetime *)
  minor_words : float;  (** words allocated in the minor heap, lifetime *)
}

let quick_stats () : stats =
  let q = Gc.quick_stat () in
  { top_heap_words = q.Gc.top_heap_words;
    heap_words = q.Gc.heap_words;
    major_collections = q.Gc.major_collections;
    minor_collections = q.Gc.minor_collections;
    promoted_words = q.Gc.promoted_words;
    minor_words = q.Gc.minor_words }

let pace_calls = Atomic.make 0
let quiesce_calls = Atomic.make 0

let paces () : int = Atomic.get pace_calls
let quiesces () : int = Atomic.get quiesce_calls

(** Default pacing: 1M-word minor heap (never shrunk below a larger
    explicit setting), stock space_overhead unless asked. *)
let default_minor_heap_words = 1_048_576

let pace ?(minor_heap_words = default_minor_heap_words) ?space_overhead () :
    unit =
  Atomic.incr pace_calls;
  let g = Gc.get () in
  let minor = max g.Gc.minor_heap_size minor_heap_words in
  let overhead =
    match space_overhead with Some o -> o | None -> g.Gc.space_overhead
  in
  if minor <> g.Gc.minor_heap_size || overhead <> g.Gc.space_overhead then
    Gc.set { g with Gc.minor_heap_size = minor; space_overhead = overhead }

(** Finish the outstanding major cycle (and collect) so the next timed
    section measures its own work, not the collector's backlog. *)
let quiesce () : unit =
  Atomic.incr quiesce_calls;
  Gc.full_major ()

(** [timed_quiesce ()] is {!quiesce} returning the wall-clock seconds
    one full major cycle costs right now — the per-cycle marking price
    of the current live heap, used to estimate the major-GC time share
    of a phase from its collection count. *)
let timed_quiesce () : float =
  let t0 = Sys.time () in
  quiesce ();
  Sys.time () -. t0
