(** Growable append-only array (amortized O(1) push, O(1) random
    access). Backs the ledger's accepted-transaction and spent-outpoint
    logs, where assoc lists used to cost a full copy per query.

    Truncation ({!truncate}) supports the ledger's optimistic parallel
    round execution: a speculative batch of appends can be rolled back
    in O(appended). *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;  (** fills unused slots so no [Obj.magic] is needed *)
}

let create ~(dummy : 'a) () : 'a t = { data = [||]; len = 0; dummy }

let length (t : 'a t) : int = t.len

let get (t : 'a t) (i : int) : 'a =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  Array.unsafe_get t.data i

(** [set t i x] overwrites an existing element in place (the ledger's
    accepted-log compaction swaps a live entry for its packed form). *)
let set (t : 'a t) (i : int) (x : 'a) : unit =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  Array.unsafe_set t.data i x

let push (t : 'a t) (x : 'a) : unit =
  if t.len = Array.length t.data then begin
    let cap = max 8 (2 * Array.length t.data) in
    let data = Array.make cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

(** [truncate t n] drops every element at index >= [n]; no-op when
    [n >= length t]. Dropped slots are reset to the dummy so rolled-back
    values do not leak. *)
let truncate (t : 'a t) (n : int) : unit =
  if n < 0 then invalid_arg "Vec.truncate";
  if n < t.len then begin
    Array.fill t.data n (t.len - n) t.dummy;
    t.len <- n
  end

(** Iterate indices [from, length) in order. *)
let iter_from (t : 'a t) ~(from : int) (f : 'a -> unit) : unit =
  for i = max 0 from to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iter (t : 'a t) (f : 'a -> unit) : unit = iter_from t ~from:0 f

let fold_left (t : 'a t) (f : 'b -> 'a -> 'b) (init : 'b) : 'b =
  let acc = ref init in
  iter t (fun x -> acc := f !acc x);
  !acc

(** Elements [from, length) as a list, in index order. *)
let list_from (t : 'a t) ~(from : int) : 'a list =
  let acc = ref [] in
  for i = t.len - 1 downto max 0 from do
    acc := Array.unsafe_get t.data i :: !acc
  done;
  !acc

let to_list (t : 'a t) : 'a list = list_from t ~from:0

let to_array (t : 'a t) : 'a array = Array.sub t.data 0 t.len

(** Drop all elements (capacity is kept for reuse). *)
let clear (t : 'a t) : unit = truncate t 0
