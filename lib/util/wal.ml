(** Append-only write-ahead log: length-prefixed, CRC-framed,
    versioned records over an abstract byte sink. See the interface
    for the frame layout and the torn-tail / corruption distinction. *)

(* ---- CRC-32 (IEEE 802.3, reflected) ------------------------------- *)

let crc_table : int array =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let crc32 ?(init = 0xffffffff) (s : string) ~(pos : int) ~(len : int) : int =
  let c = ref init in
  for i = pos to pos + len - 1 do
    c := crc_table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c

let crc32_final (c : int) : int = c lxor 0xffffffff land 0xffffffff

(* ---- sinks -------------------------------------------------------- *)

module Sink = struct
  type ops = {
    append : string -> unit;
    contents : unit -> string;
    truncate : int -> unit;
    flush : unit -> unit;
    close : unit -> unit;
  }

  type t = { ops : ops; mutable size : int }

  let size (t : t) : int = t.size
  let contents (t : t) : string = t.ops.contents ()

  let append (t : t) (s : string) : unit =
    t.ops.append s;
    t.size <- t.size + String.length s

  let truncate (t : t) (n : int) : unit =
    if n < t.size then begin
      t.ops.truncate n;
      t.size <- n
    end

  let flush (t : t) : unit = t.ops.flush ()
  let close (t : t) : unit = t.ops.close ()

  let memory () : t =
    let buf = Buffer.create 256 in
    { ops =
        { append = Buffer.add_string buf;
          contents = (fun () -> Buffer.contents buf);
          truncate = Buffer.truncate buf;
          flush = ignore;
          close = ignore };
      size = 0 }

  (* File sink: append-mode channel; truncation (a rare, open-time
     operation) rewrites the good prefix, which keeps the
     implementation on the portable Stdlib. *)
  let file (path : string) : t =
    let read_all () =
      match open_in_bin path with
      | exception Sys_error _ -> ""
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
    in
    let oc =
      ref (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path)
    in
    let ops =
      { append = (fun s -> output_string !oc s);
        contents =
          (fun () ->
            Stdlib.flush !oc;
            read_all ());
        truncate =
          (fun n ->
            Stdlib.flush !oc;
            let keep = String.sub (read_all ()) 0 n in
            close_out_noerr !oc;
            let trunc =
              open_out_gen [ Open_trunc; Open_creat; Open_binary ] 0o644 path
            in
            output_string trunc keep;
            close_out_noerr trunc;
            oc :=
              open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path);
        flush = (fun () -> Stdlib.flush !oc);
        close = (fun () -> close_out_noerr !oc) }
    in
    { ops; size = String.length (read_all ()) }
end

(* ---- framing ------------------------------------------------------ *)

type record = { kind : int; payload : string }
type status = Complete | Torn of int

type error =
  | Bad_version of { offset : int; version : int }
  | Corrupt of { offset : int }

let error_to_string = function
  | Bad_version { offset; version } ->
      Printf.sprintf "unknown WAL frame version %d at offset %d" version offset
  | Corrupt { offset } ->
      Printf.sprintf "WAL frame CRC mismatch at offset %d" offset

let status_to_string = function
  | Complete -> "complete"
  | Torn n -> Printf.sprintf "torn tail (%d bytes dropped)" n

let version = 1
let header_len = 6 (* u32 payload length + version byte + kind byte *)
let frame_overhead = header_len + 4 (* + trailing CRC *)

let frame ~(kind : int) (payload : string) : string =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u32 w (String.length payload);
  Byteio.Writer.byte w version;
  Byteio.Writer.byte w kind;
  Byteio.Writer.string w payload;
  let body = Byteio.Writer.contents w in
  let crc = crc32_final (crc32 body ~pos:0 ~len:(String.length body)) in
  let w2 = Byteio.Writer.create () in
  Byteio.Writer.string w2 body;
  Byteio.Writer.u32 w2 crc;
  Byteio.Writer.contents w2

let u32_at (s : string) (pos : int) : int =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

(** Decode raw log bytes into records. A frame that extends past the
    end of the input is a torn tail (reported, not an error); a
    complete frame with a CRC mismatch refuses the whole log. *)
let decode (log : string) : (record list * status, error) result =
  let len = String.length log in
  let rec go (off : int) (acc : record list) =
    if off = len then Ok (List.rev acc, Complete)
    else if len - off < frame_overhead then Ok (List.rev acc, Torn (len - off))
    else begin
      let plen = u32_at log off in
      if plen < 0 || len - off < frame_overhead + plen then
        Ok (List.rev acc, Torn (len - off))
      else begin
        let ver = Char.code log.[off + 4] in
        let kind = Char.code log.[off + 5] in
        let stored_crc = u32_at log (off + header_len + plen) in
        let crc =
          crc32_final (crc32 log ~pos:off ~len:(header_len + plen))
        in
        if crc <> stored_crc then Error (Corrupt { offset = off })
        else if ver <> version then
          Error (Bad_version { offset = off; version = ver })
        else
          let payload = String.sub log (off + header_len) plen in
          go (off + frame_overhead + plen) ({ kind; payload } :: acc)
      end
    end
  in
  go 0 []

(* ---- log handle --------------------------------------------------- *)

type t = { s : Sink.t; mutable appended : int }

let attach (s : Sink.t) : (t * record list * status, error) result =
  match decode (Sink.contents s) with
  | Error e -> Error e
  | Ok (records, status) ->
      (match status with
      | Complete -> ()
      | Torn dropped -> Sink.truncate s (Sink.size s - dropped));
      Ok ({ s; appended = 0 }, records, status)

let append (t : t) ~(kind : int) (payload : string) : unit =
  let f = frame ~kind payload in
  Sink.append t.s f;
  Sink.flush t.s;
  t.appended <- t.appended + String.length f

let reset (t : t) : unit = Sink.truncate t.s 0
let size (t : t) : int = Sink.size t.s
let appended_bytes (t : t) : int = t.appended
let sink (t : t) : Sink.t = t.s
