(** Byte-oriented serialization: a growable writer and a cursor reader,
    with Bitcoin-style little-endian integers and CompactSize varints. *)

module Writer : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val length : t -> int

  val byte : t -> int -> unit
  (** Append the low 8 bits of the argument. *)

  val string : t -> string -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit

  val varint : t -> int -> unit
  (** Bitcoin CompactSize encoding.
      @raise Invalid_argument on negative values. *)

  val var_string : t -> string -> unit
  (** Varint length prefix followed by the raw bytes. *)

  val with_scratch : (t -> 'a) -> 'a
  (** [with_scratch f] runs [f] with a cleared writer borrowed from a
      domain-local arena instead of a fresh allocation; the writer is
      recycled when [f] returns and must not escape it. Borrows nest
      safely. *)
end

module Reader : sig
  type t

  exception Truncated
  (** Raised by every reading function on insufficient input. *)

  val create : string -> t
  val remaining : t -> int
  val at_end : t -> bool
  val byte : t -> int
  val string : t -> int -> string
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val varint : t -> int
  val var_string : t -> string
end
