(** Shared domain pool for data-parallel verification work.

    Sized by [DPOOL_DOMAINS] (when set, >= 1), else
    [Domain.recommended_domain_count ()]. Count 1 = sequential
    fallback on the calling domain, byte-identical results. Workers
    spawn lazily and are joined at exit. Entry points are meant to be
    called from one domain at a time (the simulation main loop); work
    handed to the pool must only touch domain-safe state. *)

val count : unit -> int
(** Current logical parallelism. *)

val with_domains : int -> (unit -> 'a) -> 'a
(** Run with the count forced (differential-test hook). *)

val map_chunks : ('a array -> 'b) -> 'a array -> 'b array
(** Split into [count ()] contiguous slices, apply the function to
    each slice across domains, return per-slice results in order.
    Sequential (one slice) when the count is 1 or the input is tiny. *)

val all_chunks : ('a array -> bool) -> 'a array -> bool
(** Conjunction of {!map_chunks}. *)

val map_array : ('a -> 'b) -> 'a array -> 'b array
(** [Array.map] with elements spread across pool domains, order
    preserved; plain [Array.map] when the count is 1. *)

val shutdown : unit -> unit
(** Join all workers (registered [at_exit]; safe to call twice). *)
