(** String interning (hash-consing): [string s] returns the canonical
    instance of [s], so structurally-equal immutable payloads (pubkey
    encodings, signatures, txids, channel ids) share one heap block
    across channels and parties. Domain-local bounded tables; losing a
    table entry only costs future sharing, never correctness. *)

val string : string -> string
(** Canonical instance of [s] ([String.equal], possibly [==] to an
    earlier argument). Strings longer than an internal cutoff are
    returned unchanged. *)

type stats = { hits : int; misses : int; saved_bytes : int }
(** [saved_bytes] counts the lengths of non-canonical duplicates that
    were dropped in favour of the shared instance. *)

val stats : unit -> stats
