(** Append-only write-ahead log: length-prefixed, CRC-framed,
    versioned records over an abstract byte sink.

    Frame layout (all integers little-endian):

    {v
      +----------+---------+------+-----------------+--------+
      | u32 plen | u8 ver  | u8 k | payload (plen)  | u32 crc|
      +----------+---------+------+-----------------+--------+
    v}

    [crc] is CRC-32 (IEEE) over the 6 header bytes and the payload, so
    any single-byte corruption of a complete frame is detected. A
    frame whose declared extent runs past the end of the log is a
    *torn tail* (a write interrupted by a crash): {!attach} truncates
    it in place and replays the surviving prefix. A complete frame
    with a CRC mismatch is *corruption* and replay refuses the log
    rather than mis-replaying it. *)

module Sink : sig
  (** Where the log bytes live. The WAL only ever appends, reads the
      whole contents back (at open), and truncates a torn tail. *)
  type t

  val memory : unit -> t
  (** Volatile in-process sink (tests, benches, crash simulation —
      the "disk" that survives a simulated tower kill). *)

  val file : string -> t
  (** File-backed sink; created empty if missing, appended otherwise. *)

  val size : t -> int
  val contents : t -> string
  val append : t -> string -> unit
  val truncate : t -> int -> unit
  (** Keep only the first [n] bytes. *)

  val flush : t -> unit
  val close : t -> unit
end

type record = { kind : int; payload : string }

type status =
  | Complete  (** every frame decoded *)
  | Torn of int  (** a torn tail of this many bytes was dropped *)

type error =
  | Bad_version of { offset : int; version : int }
  | Corrupt of { offset : int }
      (** complete frame whose CRC does not match *)

val error_to_string : error -> string
val status_to_string : status -> string

val version : int
(** Frame format version written by {!append}. *)

val frame_overhead : int
(** Framing bytes added per record (header + CRC). *)

val decode : string -> (record list * status, error) result
(** Pure frame decoder over raw log bytes: records oldest-first plus
    whether a torn tail was dropped. Never truncates anything. *)

type t
(** An open log handle over a sink. *)

val attach : Sink.t -> (t * record list * status, error) result
(** Open a WAL over a sink: decode existing frames, truncate a torn
    tail in place, and return the surviving records oldest-first. *)

val append : t -> kind:int -> string -> unit
(** Frame and append one record, then flush the sink — the record is
    durable when [append] returns. *)

val reset : t -> unit
(** Truncate the log to empty (the snapshot just superseded it). *)

val size : t -> int
(** Current log size in bytes. *)

val appended_bytes : t -> int
(** Bytes appended through this handle (WAL-overhead accounting;
    survives {!reset}). *)

val sink : t -> Sink.t
