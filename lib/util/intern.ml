(** String interning (hash-consing) for immutable payloads duplicated
    across channels and parties: 33-byte pubkey encodings, 73-byte
    signatures, txids, channel ids, script bytes.

    [string s] returns the canonical instance of [s]: the first caller
    donates its copy, every later structurally-equal string is dropped
    in favour of the shared one — N channels that each decode the same
    pubkey retain one heap block, not N.

    Tables are domain-local (same discipline as the crypto and script
    memo tables: no locks, no false sharing) and bounded — when a
    table fills it is reset wholesale, which only costs future sharing,
    never correctness. Counters are process-wide so the memory benches
    can report hit rates and deduplicated bytes. *)

let table_max = 1 lsl 16

let table : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let hits = Atomic.make 0
let misses = Atomic.make 0
let saved_bytes = Atomic.make 0

(* Interning pays for itself on short immutable payloads; very large
   strings are rare, unlikely to repeat, and would bloat the table. *)
let max_len = 256

let string (s : string) : string =
  if String.length s > max_len then s
  else
    let t = Domain.DLS.get table in
    match Hashtbl.find_opt t s with
    | Some canonical ->
        Atomic.incr hits;
        if not (canonical == s) then
          ignore (Atomic.fetch_and_add saved_bytes (String.length s));
        canonical
    | None ->
        Atomic.incr misses;
        if Hashtbl.length t >= table_max then Hashtbl.reset t;
        Hashtbl.add t s s;
        s

type stats = { hits : int; misses : int; saved_bytes : int }

let stats () : stats =
  { hits = Atomic.get hits;
    misses = Atomic.get misses;
    saved_bytes = Atomic.get saved_bytes }
