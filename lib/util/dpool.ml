(** A small shared domain pool for data-parallel verification work.

    Sizing: the [DPOOL_DOMAINS] environment variable when set (>= 1),
    otherwise [Domain.recommended_domain_count ()]. A count of 1 means
    every entry point runs sequentially on the calling domain — the
    fallback path with byte-identical results, exercised directly by
    the differential tests via {!with_domains}.

    Workers are spawned lazily on first parallel use and torn down by
    an [at_exit] hook, so programs that never cross the parallel
    threshold never pay a domain spawn. Work submitted to the pool must
    only touch domain-safe state (the crypto/tx memo caches are
    domain-local for exactly this reason). *)

let forced : int option ref = ref None

let env_count () : int option =
  match Sys.getenv_opt "DPOOL_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

(** Logical parallelism: forced override, then [DPOOL_DOMAINS], then
    the runtime's recommendation. *)
let count () : int =
  match !forced with
  | Some n -> max 1 n
  | None -> (
      match env_count () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

(** [with_domains n f] runs [f] with the pool's logical count forced to
    [n] (test hook for sequential-vs-parallel differentials). *)
let with_domains (n : int) (f : unit -> 'a) : 'a =
  let prev = !forced in
  forced := Some n;
  Fun.protect ~finally:(fun () -> forced := prev) f

(* ------------------------------------------------------------------ *)
(* Worker pool.                                                        *)

type task = unit -> unit

let mutex = Mutex.create ()
let have_work = Condition.create ()
let queue : task Queue.t = Queue.create ()
let workers : unit Domain.t list ref = ref []
let stopping = ref false

(* Nested parallelism guard: a worker that somehow re-enters a parallel
   entry point just runs its share sequentially. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop () : unit =
  Domain.DLS.set in_worker true;
  let rec next () =
    Mutex.lock mutex;
    let rec wait () =
      if !stopping then begin
        Mutex.unlock mutex;
        None
      end
      else if Queue.is_empty queue then begin
        Condition.wait have_work mutex;
        wait ()
      end
      else begin
        let t = Queue.pop queue in
        Mutex.unlock mutex;
        Some t
      end
    in
    match wait () with
    | None -> ()
    | Some t ->
        (try t () with _ -> ());
        next ()
  in
  next ()

let shutdown () : unit =
  Mutex.lock mutex;
  stopping := true;
  Condition.broadcast have_work;
  Mutex.unlock mutex;
  List.iter Domain.join !workers;
  workers := [];
  stopping := false

(* Grow the pool to [n] workers (callers hold no locks). *)
let ensure_workers (n : int) : unit =
  let cur = List.length !workers in
  if cur < n then begin
    if cur = 0 then at_exit shutdown;
    for _ = cur + 1 to n do
      workers := Domain.spawn worker_loop :: !workers
    done
  end

let submit (t : task) : unit =
  Mutex.lock mutex;
  Queue.push t queue;
  Condition.signal have_work;
  Mutex.unlock mutex

(* ------------------------------------------------------------------ *)
(* Parallel map over contiguous chunks.                                *)

(** [map_chunks f xs] splits [xs] into [count ()] contiguous slices and
    applies [f] to each slice — remote slices on pool workers, one on
    the calling domain — returning the per-slice results in slice
    order. With a count of 1 (or a tiny input, or when called from a
    pool worker) this is exactly [[| f xs |]]: the sequential
    fallback. [f] must be safe to run on another domain. *)
let map_chunks (f : 'a array -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  let k = min (count ()) (max 1 n) in
  if k <= 1 || n <= 1 || Domain.DLS.get in_worker then [| f xs |]
  else begin
    ensure_workers (k - 1);
    let chunk = (n + k - 1) / k in
    let slices =
      Array.init k (fun i ->
          let lo = i * chunk in
          Array.sub xs lo (min chunk (n - lo)))
    in
    let results : 'b option array = Array.make k None in
    let failure : exn option ref = ref None in
    let remaining = ref (k - 1) in
    let done_mutex = Mutex.create () in
    let all_done = Condition.create () in
    for i = 1 to k - 1 do
      submit (fun () ->
          (try results.(i) <- Some (f slices.(i))
           with e ->
             Mutex.lock done_mutex;
             if !failure = None then failure := Some e;
             Mutex.unlock done_mutex);
          Mutex.lock done_mutex;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock done_mutex)
    done;
    results.(0) <- Some (f slices.(0));
    Mutex.lock done_mutex;
    while !remaining > 0 do
      Condition.wait all_done done_mutex
    done;
    Mutex.unlock done_mutex;
    (match !failure with Some e -> raise e | None -> ());
    Array.map Option.get results
  end

(** [all_chunks f xs]: [f] holds on every chunk (conjunction of
    {!map_chunks}). *)
let all_chunks (f : 'a array -> bool) (xs : 'a array) : bool =
  Array.for_all Fun.id (map_chunks f xs)

(** [map_array f xs] is [Array.map f xs] with the elements spread
    across pool domains (element order preserved). With a count of 1
    this is exactly [Array.map f xs]. *)
let map_array (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let chunks = map_chunks (Array.map f) xs in
  match chunks with
  | [| one |] -> one
  | _ -> Array.concat (Array.to_list chunks)
