(** Byte-oriented serialization helpers: a growable writer and a cursor
    reader, with Bitcoin-style little-endian integers and varints. *)

module Writer = struct
  type t = Buffer.t

  let create () : t = Buffer.create 64
  let contents (t : t) : string = Buffer.contents t
  let length (t : t) : int = Buffer.length t
  let byte (t : t) (v : int) = Buffer.add_char t (Char.chr (v land 0xff))
  let string (t : t) (s : string) = Buffer.add_string t s

  let u16 (t : t) (v : int) =
    byte t v;
    byte t (v lsr 8)

  let u32 (t : t) (v : int) =
    byte t v;
    byte t (v lsr 8);
    byte t (v lsr 16);
    byte t (v lsr 24)

  let u64 (t : t) (v : int64) =
    for i = 0 to 7 do
      byte t (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

  (* Bitcoin CompactSize encoding. *)
  let varint (t : t) (v : int) =
    if v < 0 then invalid_arg "Writer.varint: negative"
    else if v < 0xfd then byte t v
    else if v <= 0xffff then begin
      byte t 0xfd;
      u16 t v
    end
    else if v <= 0xffffffff then begin
      byte t 0xfe;
      u32 t v
    end
    else begin
      byte t 0xff;
      u64 t (Int64.of_int v)
    end

  (** Length-prefixed (varint) string. *)
  let var_string (t : t) (s : string) =
    varint t (String.length s);
    string t s

  (* Arena of reusable buffers, one small stack per domain: hot
     encoders (tx bodies, scripts) borrow a cleared buffer instead of
     allocating a fresh one per serialization. Nested borrows pop
     further down the stack, so encoders that call encoders stay
     safe. *)
  let scratch_pool : t list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  (** [with_scratch f] runs [f] with a writer borrowed from the
      domain-local arena (cleared, contents preserved only for the
      duration of [f]). The writer must not escape [f]. *)
  let with_scratch (f : t -> 'a) : 'a =
    let pool = Domain.DLS.get scratch_pool in
    let w =
      match !pool with
      | w :: rest ->
          pool := rest;
          Buffer.clear w;
          w
      | [] -> Buffer.create 256
    in
    Fun.protect
      ~finally:(fun () ->
        if Buffer.length w <= 1 lsl 16 then pool := w :: !pool)
      (fun () -> f w)
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  exception Truncated

  let create (src : string) : t = { src; pos = 0 }
  let remaining (t : t) : int = String.length t.src - t.pos
  let at_end (t : t) : bool = remaining t = 0

  let byte (t : t) : int =
    if t.pos >= String.length t.src then raise Truncated;
    let c = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    c

  let string (t : t) (n : int) : string =
    if remaining t < n then raise Truncated;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let u16 (t : t) : int =
    let a = byte t in
    let b = byte t in
    a lor (b lsl 8)

  let u32 (t : t) : int =
    let a = u16 t in
    let b = u16 t in
    a lor (b lsl 16)

  let u64 (t : t) : int64 =
    let lo = u32 t in
    let hi = u32 t in
    Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

  let varint (t : t) : int =
    match byte t with
    | 0xfd -> u16 t
    | 0xfe -> u32 t
    | 0xff -> Int64.to_int (u64 t)
    | v -> v

  let var_string (t : t) : string =
    let n = varint t in
    string t n
end
