(** Byte arena with size-class free lists: GC-opaque retained storage.

    Blobs live inside a few large [Bytes] chunks, so the major GC
    marks a handful of unscanned blocks instead of one boxed value per
    stored blob. Slots are bump-allocated at power-of-two capacities;
    a freed slot goes on the free list of its size class and is reused
    by the next store of a fitting blob — a churned arena's footprint
    tracks its live set, not its allocation history.

    Not thread-safe: an arena belongs to one owner (a watchtower, a
    ledger), mutated from one domain at a time — the same discipline
    as the hashtable indexes next to it. *)

type slot = {
  s_chunk : int;  (** index into the chunk table *)
  s_off : int;  (** byte offset inside the chunk *)
  s_cap : int;  (** power-of-two capacity *)
  mutable s_len : int;  (** live bytes ([-1] once freed) *)
}

let slot_length (s : slot) : int = max 0 s.s_len

(* Size classes are powers of two from 2^4 up; class k holds slots of
   capacity 2^(k+min_class_bits). *)
let min_class_bits = 4
let max_classes = 48

type t = {
  chunk_bytes : int;
  mutable chunks : Bytes.t array;
  mutable nchunks : int;
  mutable bump : int;  (** next free offset in the last chunk *)
  free : slot list array;  (** size class -> reusable slots *)
  mutable live_bytes : int;
  mutable live_slots : int;
  mutable freed_slots : int;  (** lifetime frees (telemetry) *)
}

let default_chunk_bytes = 1 lsl 20

let create ?(chunk_bytes = default_chunk_bytes) () : t =
  if chunk_bytes < 1 lsl min_class_bits then
    invalid_arg "Arena.create: chunk too small";
  { chunk_bytes;
    chunks = [||];
    nchunks = 0;
    bump = 0;
    free = Array.make max_classes [];
    live_bytes = 0;
    live_slots = 0;
    freed_slots = 0 }

let class_of_cap (cap : int) : int =
  (* cap is a power of two >= 2^min_class_bits *)
  let rec bits n acc = if n <= 1 then acc else bits (n lsr 1) (acc + 1) in
  bits cap 0 - min_class_bits

let cap_of_len (len : int) : int =
  let min_cap = 1 lsl min_class_bits in
  let rec up c = if c >= len then c else up (c * 2) in
  up min_cap

let capacity_bytes (t : t) : int =
  Array.fold_left (fun acc c -> acc + Bytes.length c) 0 t.chunks

let live_bytes (t : t) : int = t.live_bytes
let live_slots (t : t) : int = t.live_slots
let freed_slots (t : t) : int = t.freed_slots

let add_chunk (t : t) (size : int) : unit =
  let chunk = Bytes.create size in
  let chunks = Array.make (t.nchunks + 1) chunk in
  Array.blit t.chunks 0 chunks 0 t.nchunks;
  t.chunks <- chunks;
  t.nchunks <- t.nchunks + 1;
  t.bump <- 0

let fresh_slot (t : t) (cap : int) : slot =
  if t.nchunks = 0 || t.bump + cap > Bytes.length t.chunks.(t.nchunks - 1)
  then add_chunk t (max t.chunk_bytes cap);
  let s = { s_chunk = t.nchunks - 1; s_off = t.bump; s_cap = cap; s_len = 0 } in
  t.bump <- t.bump + cap;
  s

let store (t : t) (blob : string) : slot =
  let len = String.length blob in
  let cap = cap_of_len len in
  let cls = class_of_cap cap in
  let s =
    match t.free.(cls) with
    | s :: rest ->
        t.free.(cls) <- rest;
        s
    | [] -> fresh_slot t cap
  in
  Bytes.blit_string blob 0 t.chunks.(s.s_chunk) s.s_off len;
  s.s_len <- len;
  t.live_bytes <- t.live_bytes + len;
  t.live_slots <- t.live_slots + 1;
  s

let free (t : t) (s : slot) : unit =
  if s.s_len >= 0 then begin
    t.live_bytes <- t.live_bytes - s.s_len;
    t.live_slots <- t.live_slots - 1;
    t.freed_slots <- t.freed_slots + 1;
    s.s_len <- -1;
    t.free.(class_of_cap s.s_cap) <- s :: t.free.(class_of_cap s.s_cap)
  end

(** Overwrite in place when the new blob fits the slot's capacity (the
    common case: a watchtower record's size is stable across updates);
    otherwise free + store. Returns the slot now holding [blob]. *)
let replace (t : t) (s : slot) (blob : string) : slot =
  let len = String.length blob in
  if s.s_len >= 0 && len <= s.s_cap then begin
    Bytes.blit_string blob 0 t.chunks.(s.s_chunk) s.s_off len;
    t.live_bytes <- t.live_bytes + len - s.s_len;
    s.s_len <- len;
    s
  end
  else begin
    free t s;
    store t blob
  end

let read (t : t) (s : slot) : string =
  Bytes.sub_string t.chunks.(s.s_chunk) s.s_off s.s_len
