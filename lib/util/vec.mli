(** Growable append-only array with O(appended) rollback via
    {!truncate}. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] fills unused capacity (avoids [Obj.magic]). *)

val length : 'a t -> int
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
(** Overwrite an existing element in place ([0 <= i < length]). *)

val push : 'a t -> 'a -> unit

val truncate : 'a t -> int -> unit
(** Drop every element at index >= the given length. *)

val iter : 'a t -> ('a -> unit) -> unit
val iter_from : 'a t -> from:int -> ('a -> unit) -> unit
val fold_left : 'a t -> ('b -> 'a -> 'b) -> 'b -> 'b

val list_from : 'a t -> from:int -> 'a list
(** Elements [\[from, length)] in index order. *)

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array
(** Elements [\[0, length)] as a fresh array. *)

val clear : 'a t -> unit
(** Drop all elements; capacity is kept for reuse. *)
