(** The HTLC-security (channel-closure delay) attack of Section 6.1.

    The adversary runs nodes M1 and M2 with N eltoo channels from M1 to
    victims V_1..V_N and routes N simultaneous HTLC payments of A coins
    through them. After M2 collects the payments, M1 refuses to update
    her channels, and when the victims try to close on-chain she keeps
    them pinned with *delay transactions*: one transaction per block
    that spends every channel's current on-chain head with another
    outdated update state, paying a fee larger than A. By BIP-125, a
    victim wanting to evict it must out-bid the full absolute fee —
    irrational when the HTLC at stake is itself worth A. Once the HTLC
    timelocks expire, the adversary finally lets the latest states
    settle and races the victims for the HTLC outputs.

    Against Daric the same adversary is powerless: the only transaction
    that can spend a published revoked commit within the dispute window
    is the victim's revocation transaction (the split path is
    CSV-blocked and there is nothing to out-bid), and publishing a
    revoked commit forfeits the entire channel balance. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Ledger = Daric_chain.Ledger
module Mempool = Daric_chain.Mempool
module Eltoo = Daric_schemes.Eltoo
module Keys = Daric_core.Keys
module Schnorr = Daric_crypto.Schnorr

type config = {
  n_channels : int;
  htlc_value : int;  (** A, in satoshi *)
  channel_capacity : int;
  timelock_blocks : int;  (** HTLC expiry measured in blocks (144 = 3 days
                              at one min-fee confirmation per 30 min) *)
  victim_fee : int;  (** fee a victim is willing to attach to an override *)
  race_win_prob : float;  (** adversary's chance in the post-expiry race *)
  seed : int;
}

let default_config =
  { n_channels = 10;
    htlc_value = 100_000;
    channel_capacity = 1_000_000;
    timelock_blocks = 12;
    victim_fee = 1_000;
    race_win_prob = 0.5;
    seed = 0xA77AC }

(** Paper-scale constants (Section 6.1). *)
module Analytic = struct
  (** Bytes per input-output channel pair in a delay transaction. *)
  let pair_witness_bytes = 222.

  let pair_non_witness_bytes = 84.
  let pair_vbytes = (0.25 *. pair_witness_bytes) +. pair_non_witness_bytes

  (** ~715 channels fit under the 100,000-vbyte standardness cap. *)
  let max_channels_per_delay_tx ?(max_vbytes = 100_000.) () : int =
    int_of_float (max_vbytes /. pair_vbytes)

  (** 144 delay transactions over a 3-day timelock at one min-fee
      confirmation per 30 minutes. *)
  let delay_txs_before_expiry ?(timelock_hours = 72.)
      ?(inclusion_minutes = 30.) () : int =
    int_of_float (timelock_hours *. 60. /. inclusion_minutes)

  (** Attacker cost (total delay fees) and maximum revenue, in units of
      the HTLC value A. *)
  let cost_over_a () = delay_txs_before_expiry ()
  let max_revenue_over_a () = max_channels_per_delay_tx ()

  let profitable () = max_revenue_over_a () > cost_over_a ()
end

type eltoo_result = {
  blocks : int;
  delay_txs_confirmed : int;
  adversary_fees_paid : int;
  victim_overrides_rejected : int;  (** RBF refusals (insufficient fee) *)
  victims_escaped_in_time : int;  (** latest state on chain before expiry *)
  htlcs_claimed_by_adversary : int;
  adversary_net : int;  (** htlc revenue - fees *)
}

(** Per-channel tracking: on-chain head output and its state index. *)
type head = { mutable outpoint : Tx.outpoint; mutable state : int }
(* state = -1 means the head is still the funding output *)

let mk_fee_input (ledger : Ledger.t) (kp : Keys.keypair) ~(value : int) :
    Tx.outpoint =
  Ledger.mint ledger ~value
    ~spk:(Tx.P2wpkh (Daric_crypto.Hash.hash160 (Keys.enc kp.Keys.pk)))

(** Mint a fresh fee source and attach it with a change output
    (Section 8 fee handling — the channel inputs carry
    ANYPREVOUT|SINGLE signatures and survive the modification). *)
let add_fee (ledger : Ledger.t) (kp : Keys.keypair) ~(fee : int)
    ~(fund_value : int) (tx : Tx.t) : Tx.t =
  let src = mk_fee_input ledger kp ~value:fund_value in
  Daric_tx.Fee.attach tx ~source:src ~source_value:fund_value ~fee
    ~key_sk:kp.Keys.sk

(** Run the delay attack against eltoo channels on the economic
    ledger. One mempool tick = one block = one minimum-fee
    confirmation opportunity. *)
let run_eltoo (cfg : config) : eltoo_result =
  let rng = Daric_util.Rng.create ~seed:cfg.seed in
  let ledger = Ledger.create ~delta:0 () in
  let mp =
    Mempool.create
      ~config:{ Mempool.default_config with rounds_per_block = 1 }
      ~ledger ()
  in
  let adv_key = Keys.keygen rng and victim_key = Keys.keygen rng in
  (* N channels; the adversary keeps every superseded state. *)
  let n_states = cfg.timelock_blocks + 2 in
  let channels =
    Array.init cfg.n_channels (fun _ ->
        Eltoo.create ~ledger ~rng ~bal_a:(cfg.channel_capacity / 2)
          ~bal_b:(cfg.channel_capacity / 2) ())
  in
  let old_states =
    Array.map
      (fun ch ->
        Array.init n_states (fun _ ->
            Eltoo.update ch ~bal_a:(cfg.channel_capacity / 2)
              ~bal_b:(cfg.channel_capacity / 2)))
      channels
  in
  let heads =
    Array.map
      (fun ch -> { outpoint = Eltoo.funding_outpoint ch; state = -1 })
      channels
  in
  let victim_escaped = Array.make cfg.n_channels false in
  let delay_confirmed = ref 0 in
  let fees_paid = ref 0 in
  let overrides_rejected = ref 0 in
  (* The adversary's delay-transaction fee exceeds A (set equal to A as
     in the paper's cost analysis). *)
  let delay_fee = cfg.htlc_value in
  let build_delay ~(block : int) : Tx.t option =
    (* state used this block must exceed every current head state and
       stay below the latest (n_states) *)
    let next_state =
      Array.fold_left (fun acc h -> max acc (h.state + 1)) 0 heads
    in
    if next_state >= n_states then None
    else
      let inputs, outputs, witnesses =
        Array.to_list
          (Array.mapi
             (fun i h ->
               let ch = channels.(i) in
               let body, sigs = old_states.(i).(next_state) in
               let from =
                 if h.state < 0 then `Funding else `Update h.state
               in
               let completed =
                 Eltoo.complete_update ch (body, sigs) ~from ~outpoint:h.outpoint
               in
               ( List.hd completed.Tx.inputs,
                 List.hd completed.Tx.outputs,
                 List.hd completed.Tx.witnesses ))
             heads)
        |> fun l ->
        ( List.map (fun (a, _, _) -> a) l,
          List.map (fun (_, b, _) -> b) l,
          List.map (fun (_, _, c) -> c) l )
      in
      ignore block;
      let tx =
        Tx.make ~inputs
          ~locktime:((channels.(0)).Eltoo.s0 + next_state)
          ~outputs ~witnesses ()
      in
      Some (add_fee ledger adv_key ~fee:delay_fee ~fund_value:(2 * delay_fee) tx)
  in
  let victim_override (i : int) ~(fee : int) : Tx.t =
    let ch = channels.(i) in
    let h = heads.(i) in
    let from = if h.state < 0 then `Funding else `Update h.state in
    let tx = Eltoo.latest_update_completed ch ~from ~outpoint:h.outpoint in
    add_fee ledger victim_key ~fee ~fund_value:(2 * fee) tx
  in
  let update_heads ?(count_escapes = true) (confirmed : Tx.t list) =
    List.iter
      (fun tx ->
        (* a confirmed tx whose output j pays channel j's capacity under
           an update script moves that channel's head *)
        let txid = Tx.txid tx in
        List.iteri
          (fun j (_o : Tx.output) ->
            if j < cfg.n_channels && List.length tx.Tx.inputs > j then begin
              (* delay tx: all channels advance to its state *)
              let state = tx.Tx.locktime - (channels.(0)).Eltoo.s0 in
              if List.length tx.Tx.outputs > cfg.n_channels then begin
                heads.(j).outpoint <- { Tx.txid; vout = j };
                heads.(j).state <- state
              end
            end)
          tx.Tx.outputs;
        (* single-channel victim override: exactly 2 outputs *)
        if List.length tx.Tx.outputs = 2 then
          Array.iteri
            (fun i h ->
              if
                List.exists
                  (fun (inp : Tx.input) -> Tx.outpoint_equal inp.prevout h.outpoint)
                  tx.Tx.inputs
              then begin
                h.outpoint <- { Tx.txid; vout = 0 };
                h.state <- tx.Tx.locktime - (channels.(0)).Eltoo.s0;
                if count_escapes && h.state = (channels.(i)).Eltoo.sn then
                  victim_escaped.(i) <- true
              end)
            heads)
      confirmed
  in
  (* --- main block loop until the HTLC timelock expires --- *)
  for block = 1 to cfg.timelock_blocks do
    (* the adversary pins every channel with the next delay transaction *)
    (match build_delay ~block with
    | Some tx -> (
        match Mempool.submit mp tx with
        | Ok () -> ()
        | Error e ->
            failwith ("adversary submit failed: " ^ Mempool.submit_error_to_string e))
    | None -> ());
    (* victims now face BIP-125: evicting the delay transaction would
       cost more than its full absolute fee (> A) — their modest-fee
       overrides are rejected *)
    Array.iteri
      (fun i _ ->
        if not victim_escaped.(i) then
          match Mempool.submit mp (victim_override i ~fee:cfg.victim_fee) with
          | Ok () -> ()
          | Error Mempool.Rbf_insufficient_fee -> incr overrides_rejected
          | Error _ -> ())
      heads;
    let confirmed = Mempool.tick mp in
    List.iter
      (fun tx ->
        if List.length tx.Tx.outputs > 2 then begin
          incr delay_confirmed;
          fees_paid := !fees_paid + delay_fee
        end)
      confirmed;
    update_heads confirmed
  done;
  (* every channel whose latest state confirmed BEFORE expiry redeems
     its HTLC safely; freeze that count now *)
  let escaped = Array.fold_left (fun a b -> if b then a + 1 else a) 0 victim_escaped in
  (* --- expiry: adversary stops; victims settle; the HTLC race --- *)
  Array.iteri
    (fun i _ ->
      if not victim_escaped.(i) then
        match Mempool.submit mp (victim_override i ~fee:cfg.victim_fee) with
        | Ok () -> ()
        | Error _ -> ())
    heads;
  let confirmed = Mempool.tick mp in
  update_heads ~count_escapes:false confirmed;
  let raced = cfg.n_channels - escaped in
  let adv_wins = ref 0 in
  for _ = 1 to raced do
    if Daric_util.Rng.bool rng cfg.race_win_prob then incr adv_wins
  done;
  { blocks = cfg.timelock_blocks;
    delay_txs_confirmed = !delay_confirmed;
    adversary_fees_paid = !fees_paid;
    victim_overrides_rejected = !overrides_rejected;
    victims_escaped_in_time = escaped;
    htlcs_claimed_by_adversary = !adv_wins;
    adversary_net = (!adv_wins * cfg.htlc_value) - !fees_paid }

type daric_result = {
  old_commits_posted : int;
  punished_within_window : int;
  adversary_capacity_lost : int;
  htlcs_claimed : int;  (** always 0: the attack does not apply *)
}

(** The same adversary against Daric channels: publishing any old
    commit hands the whole channel to the victim; there is no
    transaction with which to pin the revocation. *)
let run_daric (cfg : config) : daric_result =
  let module Party = Daric_core.Party in
  let module Driver = Daric_core.Driver in
  let d = Driver.create ~delta:1 ~seed:cfg.seed () in
  let adv = Party.create ~pid:"M1" ~seed:(cfg.seed + 1) () in
  Driver.add_party d adv;
  let victims =
    List.init cfg.n_channels (fun i ->
        let v = Party.create ~pid:(Fmt.str "V%d" i) ~seed:(cfg.seed + 10 + i) () in
        Driver.add_party d v;
        v)
  in
  let old_commits = ref [] in
  List.iteri
    (fun i v ->
      let id = Fmt.str "chan%d" i in
      Driver.open_channel d ~id ~alice:adv ~bob:v
        ~bal_a:(cfg.channel_capacity / 2) ~bal_b:(cfg.channel_capacity / 2) ();
      if not (Driver.run_until_operational d ~id ~alice:adv ~bob:v) then
        failwith "channel failed to open";
      (* snapshot the adversary's state-0 commit, then update twice *)
      let c = Party.chan_exn adv id in
      old_commits := (id, v, Option.get c.Party.commit_mine) :: !old_commits;
      let pk_a, pk_b = Party.main_pks c in
      let theta k =
        Daric_core.Txs.balance_state ~pk_a ~pk_b
          ~bal_a:((cfg.channel_capacity / 2) - (k * 1000))
          ~bal_b:((cfg.channel_capacity / 2) + (k * 1000))
      in
      assert (Driver.update_channel d ~id ~initiator:adv ~responder:v ~theta:(theta 1));
      assert (Driver.update_channel d ~id ~initiator:adv ~responder:v ~theta:(theta 2)))
    victims;
  (* the adversary goes rogue and replays all old states *)
  Driver.corrupt d "M1";
  List.iter (fun (_, _, commit) -> Driver.adversary_post d commit) !old_commits;
  Driver.run d 10;
  let punished =
    List.length
      (List.filter
         (fun (_, v, _) ->
           Driver.saw_event v (function Party.Punished _ -> true | _ -> false))
         !old_commits)
  in
  { old_commits_posted = List.length !old_commits;
    punished_within_window = punished;
    adversary_capacity_lost = punished * cfg.channel_capacity / 2;
    htlcs_claimed = 0 }
