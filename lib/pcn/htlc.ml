(** Hash time-locked contract outputs, as added to Daric split
    transactions for multi-hop payments (Section 8, "Extending Daric to
    multi-hop payments").

    The script is the 101-byte form of Appendix H.2:
    [HASH160 <digest> EQUAL
     IF <payee_pk> ELSE <T> CSV DROP <payer_pk> ENDIF CHECKSIG]
    The payee claims with the preimage at any time; after the relative
    timeout the payer claims back with any non-matching first item. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Sighash = Daric_tx.Sighash
module Schnorr = Daric_crypto.Schnorr
module Keys = Daric_core.Keys

type terms = {
  amount : int;
  digest : string;  (** hash160 of the payment preimage *)
  payee_pk : Schnorr.public_key;
  payer_pk : Schnorr.public_key;
  timeout : int;  (** relative rounds until the payer can reclaim *)
}

let of_preimage ~(preimage : string) ~amount ~payee_pk ~payer_pk ~timeout :
    terms =
  { amount; digest = Daric_crypto.Hash.hash160 preimage; payee_pk; payer_pk;
    timeout }

let script (h : terms) : Script.t =
  [ Script.Hash160; Push h.digest; Equal; If; Push (Keys.enc h.payee_pk); Else;
    Num h.timeout; Csv; Drop; Push (Keys.enc h.payer_pk); Endif; Checksig ]

(** The HTLC as a split-transaction output (P2WSH, 43 bytes). *)
let output (h : terms) : Tx.output =
  { Tx.value = h.amount; spk = Tx.P2wsh (Script.hash (script h)) }

(** Redeem transaction: the payee claims with the preimage
    (the Redeem' transaction of Appendix H.2: 212 witness bytes). *)
let redeem (h : terms) ~(payee_sk : Schnorr.secret_key) ~(preimage : string)
    ~(htlc_outpoint : Tx.outpoint) : Tx.t =
  let body =
    Tx.make ~inputs:[ Tx.input_of_outpoint htlc_outpoint ] ~outputs:[ { Tx.value = h.amount;
            spk = Tx.P2wpkh (Daric_crypto.Hash.hash160 (Keys.enc h.payee_pk)) } ] ()
  in
  let sg = Sighash.sign payee_sk All body ~input_index:0 in
  Tx.with_witnesses body [ [ Tx.Data sg; Tx.Data preimage; Tx.Wscript (script h) ] ]

(** Claim-back transaction: the payer reclaims after the timeout
    (the Claimback' transaction: 180 witness bytes). *)
let claimback (h : terms) ~(payer_sk : Schnorr.secret_key)
    ~(htlc_outpoint : Tx.outpoint) : Tx.t =
  let body =
    Tx.make ~inputs:[ Tx.input_of_outpoint htlc_outpoint ] ~outputs:[ { Tx.value = h.amount;
            spk = Tx.P2wpkh (Daric_crypto.Hash.hash160 (Keys.enc h.payer_pk)) } ] ()
  in
  let sg = Sighash.sign payer_sk All body ~input_index:0 in
  Tx.with_witnesses body [ [ Tx.Data sg; Tx.Data ""; Tx.Wscript (script h) ] ]
