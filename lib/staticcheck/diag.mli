(** Structured diagnostics for the static analyzer.

    Every finding — from the abstract script interpreter, the
    transaction-DAG linter, or the Daric closure-graph model — is a
    {!t}: which scheme, which transaction, which spend path, which
    rule fired, at what severity. The CLI [lint] subcommand and the
    [@lint] alias fail iff any {!Error}-severity diagnostic survives. *)

type severity = Info | Warning | Error

type rule =
  | Unbalanced_conditional  (** If/Notif nesting never closes *)
  | Unspendable_script      (** no spend path is satisfiable *)
  | Guaranteed_failure      (** a specific path always fails *)
  | Dead_branch             (** branch gated by a constant condition *)
  | Mixed_cltv_classes      (** height- and timestamp-class CLTV on one path *)
  | Data_carrier            (** OP_RETURN-led data output (informational) *)
  | Nonpositive_output      (** output with value <= 0 *)
  | Negative_fee            (** outputs exceed resolvable inputs *)
  | Value_leak              (** inputs exceed outputs — value burned as fee *)
  | Witness_mismatch        (** witness does not match the spent program *)
  | Cltv_unsatisfiable      (** spender nLockTime can never satisfy script *)
  | Locktime_regression     (** nLockTime not monotone in state number *)
  | Locktime_state_mismatch (** split nLockTime differs from commit CLTV *)
  | Timelock_ordering       (** revocation window not before spendability *)
  | Revocation_missing      (** stale commit without a covering revocation *)
  | Revocation_unsatisfiable(** revocation exists but cannot execute *)
  | Orphan_key              (** script key owned by no protocol party *)
  | Scenario_failure        (** lifecycle scenario itself failed *)

type t = {
  scheme : string;
  txid : string;  (** short hex txid, or [""] for scheme-level findings *)
  path : string;  (** branch combination, e.g. ["T"], ["FT"], or ["-"] *)
  rule : rule;
  severity : severity;
  detail : string;
}

val make :
  scheme:string -> ?txid:string -> ?path:string -> rule:rule ->
  severity:severity -> string -> t

val rule_name : rule -> string
val severity_name : severity -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val count : severity -> t list -> int

val sort : t list -> t list
(** Most severe first, then by scheme/txid/rule, deduplicated. *)

val short_txid : string -> string
(** First 8 hex chars of a txid, for display. *)
