module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Keys = Daric_core.Keys
module Txs = Daric_core.Txs

type kind =
  | Fund
  | Commit of Keys.role * int
  | Split of int
  | Revoke of int
  | Fin_split

type entry = {
  label : string;
  kind : kind;
  tx : Tx.t;
  script : Script.t option;
}

type mutation =
  | Drop_revocation
  | Swap_cltv_params
  | Off_by_one_locktime
  | Orphan_rev_key
  | Leak_value
  | Overpay_outputs
  | Mixed_cltv
  | Unbalanced_script
  | Dead_rev_branch
  | Rev_csv_delay

let mutation_name = function
  | Drop_revocation -> "drop-revocation"
  | Swap_cltv_params -> "swap-cltv-params"
  | Off_by_one_locktime -> "off-by-one-locktime"
  | Orphan_rev_key -> "orphan-rev-key"
  | Leak_value -> "leak-value"
  | Overpay_outputs -> "overpay-outputs"
  | Mixed_cltv -> "mixed-cltv"
  | Unbalanced_script -> "unbalanced-script"
  | Dead_rev_branch -> "dead-rev-branch"
  | Rev_csv_delay -> "rev-csv-delay"

let all_mutations =
  [ (Drop_revocation, Diag.Revocation_missing);
    (Swap_cltv_params, Diag.Locktime_regression);
    (Off_by_one_locktime, Diag.Locktime_state_mismatch);
    (Orphan_rev_key, Diag.Orphan_key);
    (Leak_value, Diag.Value_leak);
    (Overpay_outputs, Diag.Negative_fee);
    (Mixed_cltv, Diag.Mixed_cltv_classes);
    (Unbalanced_script, Diag.Unbalanced_conditional);
    (Dead_rev_branch, Diag.Revocation_unsatisfiable);
    (Rev_csv_delay, Diag.Timelock_ordering) ]

type model = {
  s0 : int;
  rel_lock : int;
  cash : int;
  n_states : int;
  keys_a : Keys.t;
  keys_b : Keys.t;
  entries : entry list;
  known : string list;
}

let insert_after_if ins script =
  let rec go = function
    | Script.If :: rest -> Script.If :: (ins @ rest)
    | op :: rest -> op :: go rest
    | [] -> []
  in
  go script

let build ?(n_states = 4) ?(s0 = 600_000_000) ?(rel_lock = 3) ?(seed = 11)
    ?mutate () : model =
  let rng = Daric_util.Rng.create ~seed in
  let ka = Keys.generate rng and kb = Keys.generate rng in
  let orphan = Keys.generate rng in
  let pa = Keys.pub ka and pb = Keys.pub kb in
  let cash = 1_000_000 in
  let is m = mutate = Some m in
  let abs_lock i = if is Swap_cltv_params then s0 + (n_states - 1 - i) else s0 + i in
  let commit_script role i =
    let rev_pk1, rev_pk2 =
      match role with
      | Keys.Alice -> (pa.Keys.rv_pk, pb.Keys.rv_pk)
      | Keys.Bob ->
          if is Orphan_rev_key then
            ((Keys.pub orphan).Keys.rv'_pk, (Keys.pub orphan).Keys.rv_pk)
          else (pa.Keys.rv'_pk, pb.Keys.rv'_pk)
    in
    let base =
      Txs.commit_script ~abs_lock:(abs_lock i) ~rel_lock ~rev_pk1 ~rev_pk2
        ~spl_pk1:pa.Keys.sp_pk ~spl_pk2:pb.Keys.sp_pk
    in
    if is Mixed_cltv then Script.Num 100 :: Script.Cltv :: Script.Drop :: base
    else if is Unbalanced_script then
      List.filter (fun op -> op <> Script.Endif) base
    else if is Dead_rev_branch then
      insert_after_if [ Script.Small 0; Script.Verify ] base
    else if is Rev_csv_delay then
      insert_after_if [ Script.Num rel_lock; Script.Csv; Script.Drop ] base
    else base
  in
  let main_a = ka.Keys.main.Keys.pk and main_b = kb.Keys.main.Keys.pk in
  let fund =
    Txs.gen_fund
      ~tid_a:{ Tx.txid = "env:a"; vout = 0 }
      ~tid_b:{ Tx.txid = "env:b"; vout = 0 }
      ~cash ~pk_a:main_a ~pk_b:main_b
  in
  let fund_op = Tx.outpoint_of fund 0 in
  let commit role i =
    let script = commit_script role i in
    let body =
      Tx.make ~inputs:[ Tx.input_of_outpoint ~sequence:i fund_op ] ~outputs:[ { Tx.value = cash; spk = Tx.P2wsh (Script.hash script) } ] ()
    in
    let sig_a = Sighash.sign ka.Keys.main.Keys.sk All body ~input_index:0 in
    let sig_b = Sighash.sign kb.Keys.main.Keys.sk All body ~input_index:0 in
    let tx = Txs.complete_commit body ~sig_a ~sig_b ~pk_a:main_a ~pk_b:main_b in
    { label = Printf.sprintf "commit_%s_%d"
        (String.lowercase_ascii (Keys.role_to_string role)) i;
      kind = Commit (role, i); tx; script = Some script }
  in
  let theta i =
    let bal_a = (cash / 2) - (1000 * i) in
    let adjust = if is Leak_value then -10 else if is Overpay_outputs then 10 else 0 in
    Txs.balance_state ~pk_a:main_a ~pk_b:main_b ~bal_a
      ~bal_b:(cash - bal_a + adjust)
  in
  let split commit_a i =
    let body = Txs.gen_split ~theta:(theta i) ~s0 ~i in
    let body =
      if is Off_by_one_locktime then
        Tx.make
          ~locktime:(body.Tx.locktime - 1)
          ~inputs:body.Tx.inputs ~outputs:body.Tx.outputs ()
      else body
    in
    let sig_a = Sighash.sign ka.Keys.sp.Keys.sk Anyprevout body ~input_index:0 in
    let sig_b = Sighash.sign kb.Keys.sp.Keys.sk Anyprevout body ~input_index:0 in
    let tx =
      Txs.complete_split body
        ~commit_outpoint:(Tx.outpoint_of commit_a.tx 0)
        ~commit_script:(Option.get commit_a.script) ~sig_a ~sig_b
    in
    { label = Printf.sprintf "split_%d" i; kind = Split i; tx; script = None }
  in
  let revoke commit_b r =
    (* A punishes B's stale state-r commit: the (rv'_A, rv'_B) branch. *)
    let to_a, _to_b = Txs.gen_revoke ~pk_a:main_a ~pk_b:main_b ~cash ~s0 ~revoked:r in
    let sig1 = Sighash.sign ka.Keys.rv'.Keys.sk Anyprevout to_a ~input_index:0 in
    let sig2 = Sighash.sign kb.Keys.rv'.Keys.sk Anyprevout to_a ~input_index:0 in
    let tx =
      Txs.complete_revocation to_a
        ~commit_outpoint:(Tx.outpoint_of commit_b.tx 0)
        ~commit_script:(Option.get commit_b.script) ~sig1 ~sig2
    in
    { label = Printf.sprintf "revoke_%d" r; kind = Revoke r; tx; script = None }
  in
  let states = List.init n_states (fun i -> i) in
  let commits_a = List.map (commit Keys.Alice) states in
  let commits_b = List.map (commit Keys.Bob) states in
  let splits = List.map2 split commits_a states in
  let stale = List.filter (fun r -> r < n_states - 1) states in
  let stale = if is Drop_revocation then List.tl stale else stale in
  let revokes = List.map (fun r -> revoke (List.nth commits_b r) r) stale in
  let fin =
    let body = Txs.gen_fin_split ~funding:fund_op ~theta:(theta (n_states - 1)) in
    let sig_a = Sighash.sign ka.Keys.main.Keys.sk All body ~input_index:0 in
    let sig_b = Sighash.sign kb.Keys.main.Keys.sk All body ~input_index:0 in
    { label = "fin_split"; kind = Fin_split;
      tx = Txs.complete_fin_split body ~sig_a ~sig_b ~pk_a:main_a ~pk_b:main_b;
      script = None }
  in
  let fund_entry =
    { label = "fund"; kind = Fund; tx = fund;
      script = Some (Txs.funding_script ~pk_a:main_a ~pk_b:main_b) }
  in
  let known =
    let bundle (p : Keys.pub) =
      List.map Keys.enc
        [ p.Keys.main_pk; p.Keys.sp_pk; p.Keys.rv_pk; p.Keys.rv'_pk ]
    in
    bundle pa @ bundle pb
  in
  { s0; rel_lock; cash; n_states; keys_a = ka; keys_b = kb;
    entries = (fund_entry :: commits_a) @ commits_b @ splits @ revokes @ [ fin ];
    known }

(* ------------------------------------------------------------------ *)
(* Daric-specific structural rules on top of the generic DAG lint.     *)

let scheme = "Daric"

let locktime_class t = t >= Daric_script.Interp.locktime_threshold

(* Largest constant CLTV demand anywhere in the script; -1 if none
   (or if the script does not even parse). *)
let script_abs_lock (s : Script.t) : int =
  let a = Abstract.analyze s in
  List.fold_left
    (fun acc (p : Abstract.path) ->
      List.fold_left (fun acc (_, t) -> max acc t) acc p.cltv)
    (-1) a.Abstract.paths

let find_path (a : Abstract.t) taken =
  List.find_opt (fun (p : Abstract.path) -> p.Abstract.taken = taken) a.Abstract.paths

let lint (m : model) : Diag.t list =
  let diags = ref [] in
  let add ?txid ?path ~rule ~severity detail =
    diags := Diag.make ~scheme ?txid ?path ~rule ~severity detail :: !diags
  in
  let base =
    Dagcheck.lint ~scheme ~known_keys:m.known
      (List.mapi (fun i e -> (i, e.tx)) m.entries)
  in
  let commit_entries role =
    List.filter_map
      (fun e ->
        match e.kind with
        | Commit (r, i) when r = role -> Some (i, e)
        | _ -> None)
      m.entries
    |> List.sort compare
  in
  let split_of i =
    List.find_opt
      (fun e -> match e.kind with Split j -> j = i | _ -> false)
      m.entries
  in
  let revoke_of r =
    List.find_opt
      (fun e -> match e.kind with Revoke j -> j = r | _ -> false)
      m.entries
  in
  (* nLockTime-vs-state monotonicity across the commit chain. *)
  let abs_of e = script_abs_lock (Option.get e.script) in
  let rec mono = function
    | (i, e1) :: ((j, e2) :: _ as rest) ->
        let a1 = abs_of e1 and a2 = abs_of e2 in
        if a1 >= 0 && a2 >= 0 && a1 >= a2 then
          add ~txid:(Diag.short_txid (Tx.txid e2.tx))
            ~rule:Diag.Locktime_regression ~severity:Diag.Error
            (Printf.sprintf
               "state-%d commit locks at %d, not above state-%d's %d" j a2 i a1);
        mono rest
    | _ -> ()
  in
  mono (commit_entries Keys.Alice);
  mono (commit_entries Keys.Bob);
  (* Each split's nLockTime must equal its commit script's CLTV state. *)
  List.iter
    (fun (i, e) ->
      let abs = abs_of e in
      match split_of i with
      | Some sp when abs >= 0 && sp.tx.Tx.locktime <> abs ->
          add ~txid:(Diag.short_txid (Tx.txid sp.tx))
            ~rule:Diag.Locktime_state_mismatch ~severity:Diag.Error
            (Printf.sprintf "split nLockTime %d, commit script expects %d"
               sp.tx.Tx.locktime abs)
      | _ -> ())
    (commit_entries Keys.Alice);
  (* Every stale commit needs a revocation whose IF-branch is
     satisfiable under the revocation's own nLockTime. *)
  List.iter
    (fun (r, e) ->
      if r < m.n_states - 1 then
        match revoke_of r with
        | None ->
            add ~txid:(Diag.short_txid (Tx.txid e.tx))
              ~rule:Diag.Revocation_missing ~severity:Diag.Error
              (Printf.sprintf "stale state %d has no revocation transaction" r)
        | Some rv -> (
            let a = Abstract.analyze (Option.get e.script) in
            let lt = rv.tx.Tx.locktime in
            match find_path a "T" with
            | Some p
              when (match p.Abstract.verdict with `Unsat _ -> false | _ -> true)
                   && List.for_all
                        (fun (cls, t) -> cls = locktime_class lt && lt >= t)
                        p.Abstract.cltv ->
                ()
            | _ ->
                add ~txid:(Diag.short_txid (Tx.txid rv.tx)) ~path:"T"
                  ~rule:Diag.Revocation_unsatisfiable ~severity:Diag.Error
                  (Printf.sprintf
                     "state-%d revocation cannot execute its commit's \
                      revocation branch" r)))
    (commit_entries Keys.Bob);
  (* Revocation window must strictly precede split spendability. *)
  List.iter
    (fun e ->
      match e.kind with
      | Commit (_, i) -> (
          let a = Abstract.analyze (Option.get e.script) in
          match (find_path a "T", find_path a "F") with
          | Some rev, Some split ->
              if rev.Abstract.csv >= split.Abstract.csv then
                add ~txid:(Diag.short_txid (Tx.txid e.tx))
                  ~rule:Diag.Timelock_ordering ~severity:Diag.Error
                  (Printf.sprintf
                     "state-%d revocation CSV %d does not precede split CSV %d"
                     i rev.Abstract.csv split.Abstract.csv)
              else if split.Abstract.csv < 1 then
                add ~txid:(Diag.short_txid (Tx.txid e.tx))
                  ~rule:Diag.Timelock_ordering ~severity:Diag.Error
                  (Printf.sprintf "state-%d split has no CSV delay" i)
          | _ -> ())
      | _ -> ())
    m.entries;
  Diag.sort (base @ !diags)
