module Interp = Daric_script.Interp

type oracle = {
  sign : string -> string option;
  preimage : Abstract.hash_fn -> string -> string option;
}

let null_oracle = { sign = (fun _ -> None); preimage = (fun _ _ -> None) }

let sig_tag_oracle =
  { sign = (fun pk -> Some ("sig:" ^ pk)); preimage = (fun _ _ -> None) }

let sig_tag_checker ~pk_bytes ~sig_bytes = sig_bytes = "sig:" ^ pk_bytes

let resolve (o : oracle) (s : Abstract.slot) : string option =
  let ok v =
    (not (List.mem v s.not_exact))
    && (match s.truth with None -> true | Some t -> Interp.truthy v = t)
    && (match s.preimage with
        | None -> true
        | Some (f, d) -> Abstract.apply_hash f v = d)
  in
  let check v = if ok v then Some v else None in
  match (s.exact, s.sig_for, s.preimage) with
  | Some _, Some _, _ -> None  (* merge degrades this to Unknown upstream *)
  | Some c, None, _ -> check c
  | None, Some pk, _ -> Option.bind (o.sign pk) check
  | None, None, Some (f, d) -> Option.bind (o.preimage f d) check
  | None, None, None ->
      let pool =
        match s.truth with
        | Some false -> [ ""; "\000"; "\000\000"; "\000\000\000" ]
        | Some true -> [ "\001"; "\002"; "\003"; "x" ]
        | None -> [ "\001"; ""; "\002"; "x" ]
      in
      List.find_map check pool

let synthesize (o : oracle) (p : Abstract.path) : string list option =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | s :: rest -> (
        match resolve o s with
        | None -> None
        | Some v -> go (v :: acc) rest)
  in
  go [] p.slots

let context_for ?(check_sig = fun ~pk_bytes:_ ~sig_bytes:_ -> false)
    (p : Abstract.path) : Interp.context =
  let tx_locktime =
    List.fold_left (fun acc (_, t) -> max acc t) 0 p.cltv
  in
  { Interp.check_sig; tx_locktime; input_age = p.csv }
