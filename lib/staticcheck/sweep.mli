(** Registry-wide static-analysis sweep.

    For every scheme in {!Daric_schemes.Registry.all} (or a selected
    one), runs each closure scenario — collaborative, dishonest, and
    force close, after a few updates — on a fresh environment, then
    lints the resulting ledger DAG with the channel's own
    {!Scheme_intf.SCHEME.known_pubkeys} inventory. For Daric it
    additionally runs the deep closure-graph model lint
    ({!Daricmodel}). A failing scenario is itself a diagnostic. *)

type report = {
  scheme : string;
  txs : int;  (** transactions linted across the scenarios *)
  scenarios : int;
  diags : Diag.t list;
}

val run_scheme : ?updates:int -> (module Daric_schemes.Scheme_intf.SCHEME) -> report

val daric_model_report : unit -> report
(** The {!Daricmodel} deep lint, reported as scheme ["Daric[model]"]. *)

val run : ?updates:int -> ?scheme:string -> unit -> report list
(** All registry schemes (plus the Daric model), or just the named
    one. Unknown names yield an empty list. *)

val errors : report list -> int
val pp_report : verbose:bool -> Format.formatter -> report -> unit
