module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Hash = Daric_crypto.Hash

let lint ~scheme ~known_keys (accepted : (int * Tx.t) list) : Diag.t list =
  let txs = List.map snd accepted in
  let index : (string, Tx.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun tx -> Hashtbl.replace index (Tx.txid tx) tx) txs;
  let known_pkh = List.map Hash.hash160 known_keys in
  let diags = ref [] in
  let add ?txid ?path ~rule ~severity detail =
    diags := Diag.make ~scheme ?txid ?path ~rule ~severity detail :: !diags
  in
  (* Analyses are cached per script; script-level findings are emitted
     once per distinct script, not once per spend. *)
  let analyses : (string, Abstract.t) Hashtbl.t = Hashtbl.create 16 in
  let analyze ~txid (s : Script.t) : Abstract.t =
    let h = Script.hash s in
    match Hashtbl.find_opt analyses h with
    | Some a -> a
    | None ->
        let a = Abstract.analyze s in
        Hashtbl.add analyses h a;
        List.iter
          (fun (rule, severity, path, detail) ->
            add ~txid ~path ~rule ~severity detail)
          a.Abstract.diags;
        a
  in
  let check_keys ~txid (a : Abstract.t) =
    if known_keys <> [] then
      List.iter
        (fun k ->
          if not (List.mem k known_keys) then
            add ~txid ~rule:Diag.Orphan_key ~severity:Diag.Error
              (Printf.sprintf "script checks key %s owned by no party"
                 (Daric_util.Hex.short k)))
        a.Abstract.used_keys
  in
  let check_script_spend ~txid ~(spender : Tx.t) (s : Script.t) =
    let a = analyze ~txid s in
    check_keys ~txid a;
    if
      Abstract.satisfiable a
      && not (Abstract.locktime_compatible a spender.Tx.locktime)
    then
      add ~txid ~rule:Diag.Cltv_unsatisfiable ~severity:Diag.Error
        (Printf.sprintf
           "no spend path accepts the spender's nLockTime %d"
           spender.Tx.locktime)
  in
  let lint_tx (tx : Tx.t) =
    let txid = Diag.short_txid (Tx.txid tx) in
    List.iter
      (fun (o : Tx.output) ->
        if o.value <= 0 then
          add ~txid ~rule:Diag.Nonpositive_output ~severity:Diag.Error
            (Printf.sprintf "output carries %d sat" o.value);
        match o.spk with
        | Tx.Raw s ->
            let a = analyze ~txid s in
            check_keys ~txid a
        | Tx.P2wpkh h ->
            if known_keys <> [] && not (List.mem h known_pkh) then
              add ~txid ~rule:Diag.Orphan_key ~severity:Diag.Error
                "P2WPKH output pays a key owned by no party"
        | Tx.P2wsh _ | Tx.Op_return -> ())
      tx.Tx.outputs;
    let resolved_all = ref (tx.Tx.inputs <> []) in
    let in_sum = ref 0 in
    List.iteri
      (fun i (inp : Tx.input) ->
        match Hashtbl.find_opt index inp.Tx.prevout.Tx.txid with
        | None -> resolved_all := false (* environment root (coinbase) *)
        | Some prev -> (
            match List.nth_opt prev.Tx.outputs inp.Tx.prevout.Tx.vout with
            | None ->
                resolved_all := false;
                add ~txid ~rule:Diag.Witness_mismatch ~severity:Diag.Error
                  "input references a nonexistent output"
            | Some out -> (
                in_sum := !in_sum + out.Tx.value;
                let w =
                  Option.value ~default:[] (List.nth_opt tx.Tx.witnesses i)
                in
                match out.Tx.spk with
                | Tx.Op_return ->
                    (* recorded environment funding; never validated *)
                    ()
                | Tx.P2wpkh h -> (
                    match w with
                    | [ Tx.Data _sg; Tx.Data pk ] ->
                        if Hash.hash160 pk <> h then
                          add ~txid ~rule:Diag.Witness_mismatch
                            ~severity:Diag.Error
                            "revealed key does not hash to the spent program"
                        else if known_keys <> [] && not (List.mem pk known_keys)
                        then
                          add ~txid ~rule:Diag.Orphan_key ~severity:Diag.Error
                            "P2WPKH spend reveals a key owned by no party"
                    | _ ->
                        add ~txid ~rule:Diag.Witness_mismatch
                          ~severity:Diag.Error "malformed P2WPKH witness")
                | Tx.P2wsh h -> (
                    match List.rev w with
                    | Tx.Wscript s :: _ ->
                        if Script.hash s <> h then
                          add ~txid ~rule:Diag.Witness_mismatch
                            ~severity:Diag.Error
                            "revealed script does not hash to the spent program";
                        check_script_spend ~txid ~spender:tx s
                    | _ ->
                        add ~txid ~rule:Diag.Witness_mismatch
                          ~severity:Diag.Error "P2WSH spend reveals no script")
                | Tx.Raw s -> check_script_spend ~txid ~spender:tx s)))
      tx.Tx.inputs;
    if !resolved_all then begin
      let fee = !in_sum - Tx.total_output_value tx in
      if fee < 0 then
        add ~txid ~rule:Diag.Negative_fee ~severity:Diag.Error
          (Printf.sprintf "outputs exceed inputs by %d sat" (-fee))
      else if fee > 0 then
        add ~txid ~rule:Diag.Value_leak ~severity:Diag.Warning
          (Printf.sprintf "%d sat of input value unaccounted for" fee)
    end
  in
  List.iter lint_tx txs;
  Diag.sort !diags

let lint_ledger ~scheme ~known_keys ledger =
  lint ~scheme ~known_keys (Daric_chain.Ledger.accepted ledger)
