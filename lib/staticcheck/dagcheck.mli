(** Transaction-DAG linter.

    Walks a ledger's accepted transactions (oldest first) as a DAG:
    inputs whose prevout txid resolves to an earlier accepted
    transaction are edges; unresolvable prevouts (coinbase mints) mark
    environment roots. Checks, per transaction:

    - every output value is positive;
    - value conservation: with all inputs resolvable, a negative fee
      is an error and a positive fee a warning (the models here
      conserve value exactly — any gap is a leak);
    - every P2WSH spend reveals a script hashing to the spent program,
      and the revealed script passes the abstract interpreter
      ({!Abstract.analyze}) with at least one satisfiable path whose
      CLTV demands the spender's nLockTime can meet;
    - every P2WPKH spend reveals a key hashing to the spent program;
    - no orphan keys: every constant [Checksig]/[Checkmultisig]
      operand and every P2WPKH owner belongs to [known_keys] (pass
      [[]] to disable ownership checks).

    Transactions spending [Op_return] outputs are the environment's
    funding idiom (recorded, never validated) and are exempt from
    witness checks. *)

module Tx = Daric_tx.Tx

val lint :
  scheme:string -> known_keys:string list -> (int * Tx.t) list -> Diag.t list

val lint_ledger :
  scheme:string -> known_keys:string list -> Daric_chain.Ledger.t ->
  Diag.t list
(** {!lint} over {!Daric_chain.Ledger.accepted}. *)
