(** Model-based deep lint of the Daric closure graph.

    Builds the full transaction closure of an n-state Daric channel
    from the real generators ({!Daric_core.Txs}): funding, both
    parties' commits for every state, completed splits, completed
    revocations for every stale state, and the collaborative-close
    split — with genuine keys and signatures. The {!lint} pass then
    checks the Daric-specific structural invariants on top of the
    generic {!Dagcheck} rules:

    - commit-script absolute locktimes strictly increase with the
      state number (nLockTime-vs-state monotonicity);
    - each split's nLockTime equals its commit script's CLTV state;
    - every stale commit is covered by a revocation whose IF-branch
      the abstract interpreter deems satisfiable under the
      revocation's own nLockTime;
    - the revocation window strictly precedes split spendability
      (revocation-branch CSV < split-branch CSV, split CSV >= 1);
    - no key outside the channel's eight-key inventory appears.

    {!mutation} seeds one deliberate defect into the construction;
    {!all_mutations} pairs each with the rule that must flag it —
    the mutation-test matrix of [test/test_staticcheck.ml]. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Keys = Daric_core.Keys

type kind =
  | Fund
  | Commit of Keys.role * int
  | Split of int
  | Revoke of int
  | Fin_split

type entry = {
  label : string;
  kind : kind;
  tx : Tx.t;
  script : Script.t option;  (** P2WSH script behind output 0 *)
}

type mutation =
  | Drop_revocation      (** forget one stale state's revocation *)
  | Swap_cltv_params     (** reverse the per-state CLTV ordering *)
  | Off_by_one_locktime  (** split nLockTime one below its state *)
  | Orphan_rev_key       (** revocation keys nobody owns *)
  | Leak_value           (** split outputs short of the channel cash *)
  | Overpay_outputs      (** split outputs exceed the channel cash *)
  | Mixed_cltv           (** height- and timestamp-class CLTV together *)
  | Unbalanced_script    (** commit script loses its ENDIF *)
  | Dead_rev_branch      (** revocation branch made a guaranteed failure *)
  | Rev_csv_delay        (** revocation delayed as long as the split *)

val mutation_name : mutation -> string

val all_mutations : (mutation * Diag.rule) list
(** Every mutation with the rule expected to flag it. *)

type model = {
  s0 : int;
  rel_lock : int;
  cash : int;
  n_states : int;
  keys_a : Keys.t;
  keys_b : Keys.t;
  entries : entry list;
  known : string list;  (** the eight-key inventory *)
}

val build :
  ?n_states:int -> ?s0:int -> ?rel_lock:int -> ?seed:int ->
  ?mutate:mutation -> unit -> model
(** Defaults: 4 states, [s0 = 600_000_000], [rel_lock = 3]. *)

val lint : model -> Diag.t list
