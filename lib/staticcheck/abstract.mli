(** Abstract stack-effect interpreter over {!Daric_script.Script.t}.

    The analyzer enumerates every If/Notif branch combination of a
    script (mirroring {!Daric_script.Interp}'s Else-toggle semantics,
    where repeated [Else] segments alternate) and symbolically executes
    each path. Witness items are materialized lazily: the [k]-th pop
    from an empty abstract stack becomes witness slot [k] — the [k]-th
    item from the top of the initial stack passed to [Interp.run].

    Per path the analyzer computes a three-valued verdict:
    - [`Sat]: a witness template (one {!slot} constraint per stack
      item) that should drive the concrete interpreter down this path
      to success; {!Witness.synthesize} turns it into actual bytes.
    - [`Unsat reason]: no witness can make this path succeed — the
      analyzer only claims this when it is certain (constant [Verify]
      failure, executed [Return], contradictory slot demands,
      conflicting CLTV classes, non-canonical constants where numbers
      are required).
    - [`Unknown why]: the path uses a feature the abstract domain does
      not track (witness-supplied multisig arity, signature checks on
      constants, equality between two witness items demanded false,
      ...). Soundness over completeness: never claim Sat or Unsat
      without certainty.

    Signature semantics follow the repo's oracle model (one signature
    string validates under exactly one public key), which both the
    production {!Daric_crypto.Sighash.check} and the differential-fuzz
    oracle satisfy. *)

module Script = Daric_script.Script
module Interp = Daric_script.Interp

type hash_fn = H160 | H256 | Sha | Ripemd

val apply_hash : hash_fn -> string -> string

(** Accumulated constraints on one witness slot. All present fields
    must hold simultaneously; {!Witness.synthesize} resolves them. *)
type slot = {
  exact : string option;           (** must equal this byte string *)
  not_exact : string list;         (** must differ from each of these *)
  truth : bool option;             (** [Some true] truthy, [Some false] falsy *)
  sig_for : string option;         (** valid signature for this encoded pk *)
  nonsig_for : string list;        (** not a valid signature for these pks *)
  preimage : (hash_fn * string) option;  (** hash-fn preimage of digest *)
}

val free_slot : slot

type verdict = [ `Sat | `Unsat of string | `Unknown of string ]

type path = {
  taken : string;       (** branch decisions top-down, e.g. ["TF"]; ["-"] if none *)
  verdict : verdict;
  arity : int;          (** number of witness slots consumed *)
  slots : slot list;    (** length [arity]; index 0 = top of initial stack *)
  cltv : (bool * int) list;
      (** constant CLTV demands as [(is_timestamp_class, value)] *)
  csv : int;            (** largest constant CSV demand; 0 if none *)
  keys : string list;   (** constant pk operands checked on this path *)
  notes : string list;  (** human-readable oddities *)
}

type t = {
  paths : path list;
  parse_ok : bool;      (** false iff conditionals never balance *)
  data_carrier : bool;  (** script opens with [Return] *)
  used_keys : string list;  (** union of per-path [keys] *)
  diags : (Diag.rule * Diag.severity * string * string) list;
      (** script-level findings as [(rule, severity, path, detail)] *)
}

val analyze : Script.t -> t

val satisfiable : t -> bool
(** Some path is [`Sat] or [`Unknown] — i.e. the analyzer cannot rule
    the script unspendable. *)

val sat_paths : t -> path list

val locktime_compatible : t -> int -> bool
(** [locktime_compatible a nlocktime] — some not-certainly-unsat path's
    CLTV demands are satisfied by a spender carrying [nlocktime]. *)
