type severity = Info | Warning | Error

type rule =
  | Unbalanced_conditional
  | Unspendable_script
  | Guaranteed_failure
  | Dead_branch
  | Mixed_cltv_classes
  | Data_carrier
  | Nonpositive_output
  | Negative_fee
  | Value_leak
  | Witness_mismatch
  | Cltv_unsatisfiable
  | Locktime_regression
  | Locktime_state_mismatch
  | Timelock_ordering
  | Revocation_missing
  | Revocation_unsatisfiable
  | Orphan_key
  | Scenario_failure

type t = {
  scheme : string;
  txid : string;
  path : string;
  rule : rule;
  severity : severity;
  detail : string;
}

let make ~scheme ?(txid = "") ?(path = "-") ~rule ~severity detail =
  { scheme; txid; path; rule; severity; detail }

let rule_name = function
  | Unbalanced_conditional -> "unbalanced-conditional"
  | Unspendable_script -> "unspendable-script"
  | Guaranteed_failure -> "guaranteed-failure"
  | Dead_branch -> "dead-branch"
  | Mixed_cltv_classes -> "mixed-cltv-classes"
  | Data_carrier -> "data-carrier"
  | Nonpositive_output -> "nonpositive-output"
  | Negative_fee -> "negative-fee"
  | Value_leak -> "value-leak"
  | Witness_mismatch -> "witness-mismatch"
  | Cltv_unsatisfiable -> "cltv-unsatisfiable"
  | Locktime_regression -> "locktime-regression"
  | Locktime_state_mismatch -> "locktime-state-mismatch"
  | Timelock_ordering -> "timelock-ordering"
  | Revocation_missing -> "revocation-missing"
  | Revocation_unsatisfiable -> "revocation-unsatisfiable"
  | Orphan_key -> "orphan-key"
  | Scenario_failure -> "scenario-failure"

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let short_txid t = Daric_util.Hex.short t

let pp fmt d =
  Format.fprintf fmt "[%s] %s: %s%s (path %s): %s"
    (severity_name d.severity) d.scheme (rule_name d.rule)
    (if d.txid = "" then "" else " tx " ^ d.txid)
    d.path d.detail

let to_string d = Format.asprintf "%a" pp d

let count sev l = List.length (List.filter (fun d -> d.severity = sev) l)

let sort l =
  let cmp a b =
    match compare (severity_rank a.severity) (severity_rank b.severity) with
    | 0 -> compare (a.scheme, a.txid, a.rule, a.path) (b.scheme, b.txid, b.rule, b.path)
    | c -> c
  in
  List.sort_uniq (fun a b -> match cmp a b with 0 -> compare a b | c -> c) l
