module Script = Daric_script.Script
module Interp = Daric_script.Interp

type hash_fn = H160 | H256 | Sha | Ripemd

let apply_hash = function
  | H160 -> Daric_crypto.Hash.hash160
  | H256 -> Daric_crypto.Hash.hash256
  | Sha -> Daric_crypto.Sha256.digest
  | Ripemd -> Daric_crypto.Ripemd160.digest

type slot = {
  exact : string option;
  not_exact : string list;
  truth : bool option;
  sig_for : string option;
  nonsig_for : string list;
  preimage : (hash_fn * string) option;
}

let free_slot =
  { exact = None; not_exact = []; truth = None; sig_for = None;
    nonsig_for = []; preimage = None }

type verdict = [ `Sat | `Unsat of string | `Unknown of string ]

type path = {
  taken : string;
  verdict : verdict;
  arity : int;
  slots : slot list;
  cltv : (bool * int) list;
  csv : int;
  keys : string list;
  notes : string list;
}

type t = {
  paths : path list;
  parse_ok : bool;
  data_carrier : bool;
  used_keys : string list;
  diags : (Diag.rule * Diag.severity * string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Conditional-tree parser.

   The concrete interpreter treats every [Else] as a toggle of the
   innermost execution flag, so a conditional with several [Else]
   segments alternates: segments 0, 2, 4... run when the condition
   selects the then-arm, segments 1, 3, 5... when it selects the
   else-arm. We normalise to a two-arm [Cond] by concatenating the
   even- and odd-indexed segments. *)

type node =
  | Op of Script.op
  | Cond of bool * node list * node list  (* negated?, then-arm, else-arm *)

type frame = {
  negated : bool;
  mutable segs : node list list;  (* completed segments, reversed *)
  mutable cur : node list;        (* current segment, reversed *)
}

let parse (ops : Script.t) : (node list, unit) result =
  let top = { negated = false; segs = []; cur = [] } in
  let stack = ref [ top ] in
  let cur () = List.hd !stack in
  let emit n = (cur ()).cur <- n :: (cur ()).cur in
  let ok = ref true in
  List.iter
    (fun (op : Script.op) ->
      if !ok then
        match op with
        | If -> stack := { negated = false; segs = []; cur = [] } :: !stack
        | Notif -> stack := { negated = true; segs = []; cur = [] } :: !stack
        | Else -> (
            match !stack with
            | [ _ ] -> ok := false
            | f :: _ ->
                f.segs <- List.rev f.cur :: f.segs;
                f.cur <- []
            | [] -> ok := false)
        | Endif -> (
            match !stack with
            | [ _ ] | [] -> ok := false
            | f :: rest ->
                stack := rest;
                let segs = List.rev (List.rev f.cur :: f.segs) in
                let thn, els =
                  List.fold_left
                    (fun (t, e, even) seg ->
                      if even then (seg :: t, e, false) else (t, seg :: e, true))
                    ([], [], true) segs
                  |> fun (t, e, _) -> (List.concat (List.rev t),
                                       List.concat (List.rev e))
                in
                emit (Cond (f.negated, thn, els)))
        | op -> emit (Op op))
    ops;
  match !stack with
  | [ f ] when !ok && f.segs = [] -> Ok (List.rev f.cur)
  | _ -> Error ()

(* ------------------------------------------------------------------ *)
(* Abstract values and path state. *)

type aval =
  | Const of string
  | Wit of int
  | Hashed of hash_fn * aval
  | Sig1 of string option * aval  (* constant pk (if any), sig operand *)
  | Msig of string list * aval list  (* constant pks, sig operands; script order *)
  | Sized of aval
  | Eqv of aval * aval
  | Opaque of string

module IM = Map.Make (Int)

type vstatus = St_ok | St_unsat of string | St_unknown of string

type pstate = {
  stack : aval list;
  slots : slot IM.t;
  nslots : int;
  taken : string;
  cltv : (bool * int) list;
  csv : int;
  keys : string list;
  notes : string list;
  status : vstatus;
  halted : bool;  (* stop interpreting: certain failure or lost track *)
  pdiags : (Diag.rule * Diag.severity * string * string) list;
}

let init_state =
  { stack = []; slots = IM.empty; nslots = 0; taken = ""; cltv = []; csv = 0;
    keys = []; notes = []; status = St_ok; halted = false; pdiags = [] }

let unsat st why = { st with status = St_unsat why; halted = true }

(* First Unknown reason wins; Unsat is stronger and never downgraded. *)
let unknown st why =
  match st.status with
  | St_ok -> { st with status = St_unknown why }
  | St_unsat _ | St_unknown _ -> st

let unknown_halt st why = { (unknown st why) with halted = true }

let pdiag st rule sev detail =
  { st with
    pdiags = (rule, sev, (if st.taken = "" then "-" else st.taken), detail)
             :: st.pdiags }

let push st v = { st with stack = v :: st.stack }

(* The k-th pop from an empty abstract stack is witness slot k: the
   k-th item from the top of the concrete initial stack. *)
let pop st =
  match st.stack with
  | v :: rest -> (v, { st with stack = rest })
  | [] ->
      let id = st.nslots in
      (Wit id, { st with nslots = id + 1; slots = IM.add id free_slot st.slots })

let peek st =
  match st.stack with
  | v :: _ -> (v, st)
  | [] ->
      let id = st.nslots in
      ( Wit id,
        { st with nslots = id + 1; slots = IM.add id free_slot st.slots;
          stack = [ Wit id ] } )

let static_truth = function
  | Const c -> Some (Interp.truthy c)
  | _ -> None

let const_num = function
  | Const c -> (
      match Interp.decode_num c with Some v -> `Num v | None -> `Bad)
  | _ -> `Dyn

(* Constraint merging. Each [with_*] function tightens one slot; a
   contradiction that is certain under the one-signature-one-key
   oracle model yields Unsat, anything subtler degrades to Unknown. *)

type upd = U_ok of slot | U_unsat of string | U_unknown of string

let constrain st i (f : slot -> upd) : pstate =
  match f (IM.find i st.slots) with
  | U_ok s -> { st with slots = IM.add i s st.slots }
  | U_unsat why -> unsat st why
  | U_unknown why -> unknown st why

let with_truth want s =
  match s.truth with
  | Some t when t <> want -> U_unsat "witness item demanded both truthy and falsy"
  | _ -> (
      match s.exact with
      | Some c when Interp.truthy c <> want ->
          U_unsat "pinned witness item has the wrong truth value"
      | _ ->
          if s.sig_for <> None && not want then
            U_unsat "valid signature demanded falsy"
          else if s.preimage <> None && not want then
            U_unknown "falsy hash preimage"
          else U_ok { s with truth = Some want })

let with_exact c s =
  match s.exact with
  | Some c' when c' <> c -> U_unsat "witness item pinned to two values"
  | _ ->
      if List.mem c s.not_exact then
        U_unsat "witness item both pinned to and excluded from a value"
      else if (match s.truth with Some t -> t <> Interp.truthy c | None -> false)
      then U_unsat "pinned witness item has the wrong truth value"
      else if s.sig_for <> None then U_unknown "constant demanded as signature"
      else (
        match s.preimage with
        | Some (f, d) when apply_hash f c <> d ->
            U_unsat "pinned witness item is not the demanded preimage"
        | _ -> U_ok { s with exact = Some c })

let with_not_exact c s =
  match s.exact with
  | Some c' when c' = c ->
      U_unsat "witness item both pinned to and excluded from a value"
  | _ -> U_ok { s with not_exact = c :: s.not_exact }

let with_sig pk s =
  match s.sig_for with
  | Some pk' when pk' <> pk ->
      U_unsat "one witness item demanded as signature for two keys"
  | _ ->
      if List.mem pk s.nonsig_for then
        U_unknown "signature demanded both valid and invalid for one key"
      else if s.truth = Some false then U_unsat "valid signature demanded falsy"
      else if s.exact <> None then U_unknown "constant demanded as signature"
      else if s.preimage <> None then U_unknown "preimage demanded as signature"
      else U_ok { s with sig_for = Some pk }

let with_nonsig pks s =
  match s.sig_for with
  | Some pk when List.mem pk pks ->
      U_unknown "signature demanded both valid and invalid for one key"
  | _ -> U_ok { s with nonsig_for = pks @ s.nonsig_for }

let with_preimage f d s =
  match s.preimage with
  | Some (f', d') when f' = f && d' <> d ->
      U_unsat "one witness item demanded as preimage of two digests"
  | Some (f', _) when f' <> f -> U_unknown "preimage demands under two hashes"
  | _ -> (
      match s.exact with
      | Some c ->
          if apply_hash f c = d then U_ok s
          else U_unsat "pinned witness item is not the demanded preimage"
      | None ->
          if s.sig_for <> None then U_unknown "preimage demanded as signature"
          else if s.truth = Some false then U_unknown "falsy hash preimage"
          else U_ok { s with preimage = Some (f, d) })

(* Demand that abstract value [v] evaluate truthy ([want]=true) or
   falsy. [why] labels the certain-failure case. *)
let rec demand want v st ~why =
  match v with
  | Const c -> if Interp.truthy c = want then st else unsat st why
  | Wit i -> constrain st i (with_truth want)
  | Sig1 (Some pk, Wit i) ->
      if want then constrain st i (with_sig pk)
      else constrain st i (with_nonsig [ pk ])
  | Sig1 (None, _) -> unknown st "signature check with non-constant key"
  | Sig1 (Some _, _) -> unknown st "signature check on derived operand"
  | Msig (pks, sigs) -> demand_msig want pks sigs st
  | Hashed _ -> unknown st "truth of a computed digest"
  | Sized _ -> unknown st "truth of a computed size"
  | Eqv (a, b) -> demand_eq want a b st ~why
  | Opaque reason -> unknown st reason

and demand_msig want pks sigs st =
  if want then (
    (* Pair the j-th signature with the j-th key (script order): the
       interpreter's ordered-subsequence matcher accepts exactly this
       shape, so it is a sufficient witness template. When m < n the
       pairing is merely one valid matching among several, so a
       conflict only degrades to Unknown; with m = n the identity
       pairing is forced and a conflict is a genuine contradiction. *)
    let slots_of =
      List.map (function Wit i -> Some i | _ -> None) sigs
    in
    if List.exists (( = ) None) slots_of then
      unknown st "multisig signature operand is not a witness item"
    else
      let ids = List.filter_map (fun x -> x) slots_of in
      if List.length (List.sort_uniq compare ids) <> List.length ids then
        unknown st "one witness item used as two multisig signatures"
      else
        let st' =
          List.fold_left2
            (fun st i pk ->
              if st.halted then st else constrain st i (with_sig pk))
            st ids
            (List.filteri (fun j _ -> j < List.length ids) pks)
        in
        match st'.status with
        | St_unsat _ when List.length ids < List.length pks ->
            unknown st "multisig pairing ambiguous"
        | _ -> st')
  else
    List.fold_left
      (fun st sg ->
        match sg with
        | Wit i -> if st.halted then st else constrain st i (with_nonsig pks)
        | _ -> unknown st "multisig signature operand is not a witness item")
      st sigs

and demand_eq want a b st ~why =
  match (a, b) with
  | Const x, Const y -> if (x = y) = want then st else unsat st why
  | Wit i, Const c | Const c, Wit i ->
      if want then constrain st i (with_exact c)
      else constrain st i (with_not_exact c)
  | Hashed (f, Wit i), Const d | Const d, Hashed (f, Wit i) ->
      if want then constrain st i (with_preimage f d)
      else unknown st "digest demanded unequal to a constant"
  | Wit i, Wit j when i = j -> if want then st else unsat st why
  | _ -> unknown st "equality between untracked values"

(* ------------------------------------------------------------------ *)
(* Symbolic execution of one op (no forking here). *)

let locktime_class t = t >= Interp.locktime_threshold

let rec exec_op (op : Script.op) st =
  match op with
  | If | Notif | Else | Endif ->
      (* structurally removed by the parser *)
      unknown_halt st "conditional op survived parsing"
  | Push d -> push st (Const d)
  | Num v -> push st (Const (Interp.item_of_int v))
  | Small v -> push st (Const (Interp.item_of_int v))
  | Verify ->
      let v, st = pop st in
      demand true v st ~why:"VERIFY on a falsy value"
  | Return -> unsat st "OP_RETURN executed"
  | Dup ->
      let v, st = peek st in
      push st v
  | Drop ->
      let _, st = pop st in
      st
  | Swap ->
      let a, st = pop st in
      let b, st = pop st in
      push (push st a) b
  | Size -> (
      let v, st = peek st in
      match v with
      | Const c -> push st (Const (Interp.item_of_int (String.length c)))
      | _ -> push st (Sized v))
  | Equal -> (
      let a, st = pop st in
      let b, st = pop st in
      match (a, b) with
      | Const x, Const y ->
          push st (Const (Interp.item_of_int (if x = y then 1 else 0)))
      | _ -> push st (Eqv (a, b)))
  | Equalverify ->
      let a, st = pop st in
      let b, st = pop st in
      demand_eq true a b st ~why:"EQUALVERIFY on unequal constants"
  | Hash160 -> exec_hash H160 st
  | Hash256 -> exec_hash H256 st
  | Sha256 -> exec_hash Sha st
  | Ripemd160 -> exec_hash Ripemd st
  | Checksig -> exec_checksig ~verify:false st
  | Checksigverify -> exec_checksig ~verify:true st
  | Checkmultisig -> exec_multisig ~verify:false st
  | Checkmultisigverify -> exec_multisig ~verify:true st
  | Cltv -> (
      let v, st = peek st in
      match v with
      | Const c -> (
          match Interp.decode_num c with
          | None -> unsat st "non-canonical CLTV operand"
          | Some t ->
              let cls = locktime_class t in
              if List.exists (fun (cls', _) -> cls' <> cls) st.cltv then
                let st =
                  pdiag st Diag.Mixed_cltv_classes Diag.Error
                    (Printf.sprintf
                       "path requires CLTV %d alongside the other range class" t)
                in
                unsat st "height- and timestamp-class CLTV on one path"
              else { st with cltv = (cls, t) :: st.cltv })
      | _ -> unknown st "non-constant CLTV operand")
  | Csv -> (
      let v, st = peek st in
      match v with
      | Const c -> (
          match Interp.decode_num c with
          | None -> unsat st "non-canonical CSV operand"
          | Some t -> { st with csv = max st.csv t })
      | _ -> unknown st "non-constant CSV operand")

and exec_hash f st =
  let v, st = pop st in
  match v with
  | Const c -> push st (Const (apply_hash f c))
  | _ -> push st (Hashed (f, v))

and exec_checksig ~verify st =
  let pk, st = pop st in
  let sg, st = pop st in
  let st, pkc =
    match pk with
    | Const c -> ({ st with keys = c :: st.keys }, Some c)
    | _ -> (st, None)
  in
  let res = Sig1 (pkc, sg) in
  if verify then demand true res st ~why:"CHECKSIGVERIFY failed"
  else push st res

and exec_multisig ~verify st =
  let rec pop_n n acc st =
    if n = 0 then (List.rev acc, st)
    else
      let v, st = pop st in
      pop_n (n - 1) (v :: acc) st
  in
  let nv, st = pop st in
  match const_num nv with
  | `Bad -> unsat st "non-canonical multisig key count"
  | `Dyn -> unknown_halt st "witness-supplied multisig key count"
  | `Num n when n < 1 || n > 16 -> unsat st "multisig key count out of range"
  | `Num n -> (
      let pks_rev, st = pop_n n [] st in
      let pks = List.rev pks_rev in
      (* pop order is reverse script order; [pks] is script order *)
      let st =
        List.fold_left
          (fun st pk ->
            match pk with
            | Const c -> { st with keys = c :: st.keys }
            | _ -> st)
          st pks
      in
      let mv, st = pop st in
      match const_num mv with
      | `Bad -> unsat st "non-canonical multisig signature count"
      | `Dyn -> unknown_halt st "witness-supplied multisig signature count"
      | `Num m when m < 1 || m > n ->
          unsat st "multisig signature count out of range"
      | `Num m ->
          let sigs_rev, st = pop_n m [] st in
          let sigs = List.rev sigs_rev in
          let _dummy, st = pop st in
          let pk_consts =
            List.filter_map
              (function Const c -> Some c | _ -> None)
              pks
          in
          let res =
            if List.length pk_consts = n then Msig (pk_consts, sigs)
            else Opaque "non-constant multisig key operand"
          in
          if verify then demand true res st ~why:"CHECKMULTISIGVERIFY failed"
          else push st res)

(* ------------------------------------------------------------------ *)
(* Path enumeration. *)

let max_conditionals = 8

let rec exec_nodes nodes st =
  match nodes with
  | [] -> [ st ]
  | n :: rest ->
      exec_node n st
      |> List.concat_map (fun s ->
             if s.halted then [ s ] else exec_nodes rest s)

and exec_node n st =
  if st.halted then [ st ]
  else
    match n with
    | Op op -> [ exec_op op st ]
    | Cond (negated, thn, els) -> (
        let cond, st = pop st in
        match static_truth cond with
        | Some b ->
            (* Constant condition: one arm is dead code. *)
            let sel = if negated then not b else b in
            let live, dead = if sel then (thn, els) else (els, thn) in
            let st = { st with taken = st.taken ^ (if sel then "T" else "F") } in
            let st =
              if dead = [] then st
              else
                pdiag st Diag.Dead_branch Diag.Warning
                  "branch gated by a constant condition can never run"
            in
            exec_nodes live st
        | None ->
            let fork sel arm =
              let st = { st with taken = st.taken ^ (if sel then "T" else "F") } in
              let st =
                demand (if negated then not sel else sel) cond st
                  ~why:"branch condition pinned the other way"
              in
              if st.halted then [ st ] else exec_nodes arm st
            in
            fork true thn @ fork false els)

let finalize st =
  let st =
    if st.halted then st
    else
      let top, st = peek st in
      demand true top st ~why:"final stack top falsy"
  in
  let verdict : verdict =
    match st.status with
    | St_ok -> `Sat
    | St_unsat why -> `Unsat why
    | St_unknown why -> `Unknown why
  in
  { taken = (if st.taken = "" then "-" else st.taken);
    verdict;
    arity = st.nslots;
    slots = List.map snd (IM.bindings st.slots);
    cltv = List.rev st.cltv;
    csv = st.csv;
    keys = List.sort_uniq compare st.keys;
    notes = List.rev st.notes }

let count_conds ops =
  List.length
    (List.filter (function Script.If | Script.Notif -> true | _ -> false) ops)

let analyze (s : Script.t) : t =
  match s with
  | Script.Return :: _ ->
      (* Data-carrier output: intentionally unspendable, by design. *)
      { paths =
          [ { taken = "-"; verdict = `Unsat "OP_RETURN data carrier";
              arity = 0; slots = []; cltv = []; csv = 0; keys = [];
              notes = [] } ];
        parse_ok = true; data_carrier = true; used_keys = [];
        diags =
          [ (Diag.Data_carrier, Diag.Info, "-",
             "OP_RETURN-led script carries data and is unspendable by design") ] }
  | _ -> (
      match parse s with
      | Error () ->
          { paths = []; parse_ok = false; data_carrier = false; used_keys = [];
            diags =
              [ (Diag.Unbalanced_conditional, Diag.Error, "-",
                 "If/Notif/Else/Endif nesting never balances; every spend fails") ] }
      | Ok nodes ->
          if count_conds s > max_conditionals then
            { paths =
                [ { taken = "-"; verdict = `Unknown "too many conditionals";
                    arity = 0; slots = []; cltv = []; csv = 0; keys = [];
                    notes = [] } ];
              parse_ok = true; data_carrier = false; used_keys = []; diags = [] }
          else
            let states = exec_nodes nodes init_state in
            let paths = List.map finalize states in
            let used_keys =
              List.sort_uniq compare
                (List.concat_map (fun (p : path) -> p.keys) paths)
            in
            let pdiags =
              List.concat_map (fun st -> List.rev st.pdiags) states
            in
            let sat_or_unknown =
              List.exists
                (fun p -> match p.verdict with `Unsat _ -> false | _ -> true)
                paths
            in
            let structural =
              if sat_or_unknown then
                (* Certain-failure arms of a live script are only worth a
                   warning: the script still has working spend paths. *)
                List.filter_map
                  (fun p ->
                    match p.verdict with
                    | `Unsat why ->
                        Some
                          (Diag.Guaranteed_failure, Diag.Warning, p.taken, why)
                    | _ -> None)
                  paths
              else
                [ (Diag.Unspendable_script, Diag.Error, "-",
                   "no branch combination of this script is satisfiable") ]
            in
            { paths; parse_ok = true; data_carrier = false; used_keys;
              diags = pdiags @ structural })

let satisfiable a =
  a.data_carrier
  || List.exists
       (fun p -> match p.verdict with `Unsat _ -> false | _ -> true)
       a.paths

let sat_paths a =
  List.filter (fun p -> p.verdict = `Sat) a.paths

let locktime_compatible a n =
  List.exists
    (fun p ->
      match p.verdict with
      | `Unsat _ -> false
      | `Sat | `Unknown _ ->
          List.for_all
            (fun (cls, t) -> cls = locktime_class n && n >= t)
            p.cltv)
    a.paths
