(** Concrete witness synthesis from an {!Abstract.path} template.

    Given oracles for signing and hash preimages, turns the per-slot
    constraints of a satisfiable path into actual stack bytes. This is
    the bridge used by the differential tests: any path the analyzer
    calls [`Sat] must, once synthesized, execute successfully in
    {!Daric_script.Interp}; conversely no witness should make an
    [`Unsat] path succeed. *)

type oracle = {
  sign : string -> string option;
      (** encoded public key -> signature bytes valid for it *)
  preimage : Abstract.hash_fn -> string -> string option;
      (** digest -> preimage under the given hash *)
}

val null_oracle : oracle
(** Fails every signature and preimage request. *)

val sig_tag_oracle : oracle
(** Toy oracle for differential fuzzing: the (unique) valid signature
    for key [pk] is ["sig:" ^ pk]; preimages are unknown. Pair it with
    {!sig_tag_checker} as the interpreter's [check_sig]. *)

val sig_tag_checker : pk_bytes:string -> sig_bytes:string -> bool

val synthesize : oracle -> Abstract.path -> string list option
(** Initial stack for {!Daric_script.Interp.run} (head = top), or
    [None] when some slot cannot be realised with these oracles. *)

val context_for :
  ?check_sig:(pk_bytes:string -> sig_bytes:string -> bool) ->
  Abstract.path -> Daric_script.Interp.context
(** A spending context that meets the path's CLTV/CSV demands: the
    smallest satisfying [tx_locktime] and [input_age]. *)
