module I = Daric_schemes.Scheme_intf
module Registry = Daric_schemes.Registry
module Harness = Daric_schemes.Harness
module Ledger = Daric_chain.Ledger

type report = {
  scheme : string;
  txs : int;
  scenarios : int;
  diags : Diag.t list;
}

type close = [ `Collaborative | `Dishonest | `Force ]

let close_name = function
  | `Collaborative -> "collaborative"
  | `Dishonest -> "dishonest"
  | `Force -> "force"

(* One scenario on a fresh environment: open, a few updates, close.
   Returns the key inventory and the ledger to lint. The harness's
   [run] discards the channel handle, and we need it for
   [known_pubkeys] — hence the small local loop. *)
let run_scenario (module S : I.SCHEME) ~updates (close : close) :
    (string list * Ledger.t, I.error) result =
  let ( let* ) = Result.bind in
  let env = I.make_env () in
  let cfg = I.default_config in
  let* ch = S.open_channel env cfg in
  let rec upd k =
    if k > updates then Ok ()
    else
      let bal_a, bal_b = Harness.balance_at cfg k in
      let* () = S.update ch ~bal_a ~bal_b in
      upd (k + 1)
  in
  let* () = upd 1 in
  let* _outcome =
    match close with
    | `Collaborative -> S.collaborative_close ch
    | `Dishonest -> S.dishonest_close ch
    | `Force -> S.force_close ch
  in
  Ok (S.known_pubkeys ch, env.I.ledger)

let run_scheme ?(updates = 3) (module S : I.SCHEME) : report =
  let txs = ref 0 in
  let diags =
    List.concat_map
      (fun close ->
        match run_scenario (module S : I.SCHEME) ~updates close with
        | Error e ->
            [ Diag.make ~scheme:S.name ~path:(close_name close)
                ~rule:Diag.Scenario_failure ~severity:Diag.Error
                (I.error_to_string e) ]
        | Ok (known, ledger) ->
            let accepted = Ledger.accepted ledger in
            txs := !txs + List.length accepted;
            Dagcheck.lint ~scheme:S.name ~known_keys:known accepted)
      [ `Collaborative; `Dishonest; `Force ]
  in
  { scheme = S.name; txs = !txs; scenarios = 3; diags = Diag.sort diags }

let daric_model_report () : report =
  let m = Daricmodel.build () in
  let diags = Daricmodel.lint m in
  let diags =
    List.map (fun d -> { d with Diag.scheme = "Daric[model]" }) diags
  in
  { scheme = "Daric[model]"; txs = List.length m.Daricmodel.entries;
    scenarios = 1; diags = Diag.sort diags }

let run ?(updates = 3) ?scheme () : report list =
  match scheme with
  | None ->
      List.map (run_scheme ~updates) Registry.all @ [ daric_model_report () ]
  | Some name -> (
      match Registry.find name with
      | None -> []
      | Some s ->
          let base = [ run_scheme ~updates s ] in
          if Registry.name s = "Daric" then base @ [ daric_model_report () ]
          else base)

let errors reports =
  List.fold_left (fun acc r -> acc + Diag.count Diag.Error r.diags) 0 reports

let pp_report ~verbose fmt r =
  let e = Diag.count Diag.Error r.diags
  and w = Diag.count Diag.Warning r.diags
  and i = Diag.count Diag.Info r.diags in
  Format.fprintf fmt "%-12s %4d txs  %d scenarios  %d errors, %d warnings, %d notes@."
    r.scheme r.txs r.scenarios e w i;
  List.iter
    (fun d ->
      if verbose || d.Diag.severity = Diag.Error then
        Format.fprintf fmt "    %s@." (Diag.to_string d))
    r.diags
