(** Per-public-key crypto contexts.

    A context captures everything about one key that is worth paying
    for once and amortizing across a channel lifetime of signature
    operations: the subgroup-membership verdict, the fixed 4-byte
    element/scalar encodings (so hot paths hash slices instead of
    concatenating), and — lazily — a {!Group.precomp} window table
    that turns the key's side of a verification into a handful of
    table multiplications ({!Group.precomp_bytes} bytes each, so
    tables are built only when a context is actually verified under).

    Contexts live in a bounded, domain-local pool with two classes of
    residency, mirroring the watchtower arena's reclaim discipline:

    - {e pinned}: refcounted via {!pin}/{!release}. A party pins its
      channel's keys at open and releases them at close/punish; a
      pinned entry is never evicted. Pinning saturates at the pool
      capacity, so opening 100k channels cannot retain 100k tables —
      later channels simply run on the un-keyed paths.
    - {e cached}: inserted by {!find} on demand for ad-hoc keys and
      evicted least-recently-used above the capacity, keeping pool
      memory flat regardless of how many distinct keys pass by.

    {!peek} is the hot-path lookup: it never inserts, so a miss (a key
    beyond the pinning budget) costs one hashtable probe and falls
    back to the plain paths instead of thrashing the pool. *)

module Group = Group

type t = {
  pk : Group.element;
  valid : bool;  (** subgroup membership, checked once at build *)
  pk_enc : string;  (** [Group.encode_element pk], shared *)
  sk : Group.scalar option;  (** present only in signing contexts *)
  sk_enc : string;  (** [Group.encode_scalar sk] ("" without [sk]) *)
  mutable table : Group.precomp option;  (** lazy fixed-base window table *)
}

let create ?(sk : Group.scalar option) (pk : Group.element) : t =
  { pk;
    valid = Group.is_element_fast pk;
    pk_enc = Group.encode_element pk;
    sk;
    sk_enc = (match sk with Some sk -> Group.encode_scalar sk | None -> "");
    table = None }

let of_secret (sk : Group.scalar) : t = create ~sk (Group.pow_g sk)

let pk (t : t) : Group.element = t.pk
let is_valid (t : t) : bool = t.valid
let sk (t : t) : Group.scalar option = t.sk
let pk_enc (t : t) : string = t.pk_enc
let sk_enc (t : t) : string = t.sk_enc
let has_table (t : t) : bool = t.table <> None

(** The key's window table, built on first use and retained for the
    context's lifetime ({!Group.precomp_bytes} bytes). *)
let table (t : t) : Group.precomp =
  match t.table with
  | Some tb -> tb
  | None ->
      let tb = Group.precompute t.pk in
      t.table <- Some tb;
      tb

let table_bytes : int = Group.precomp_bytes

(* ------------------------------------------------------------------ *)
(* Bounded pool.                                                       *)

type entry = { ctx : t; mutable pins : int; mutable last : int }

type pool = {
  tbl : (int, entry) Hashtbl.t;
  mutable tick : int;  (** LRU clock, bumped on every touch *)
  mutable pinned : int;  (** entries with [pins > 0] *)
}

(** Pool capacity: pinned + cached entries together. 512 contexts bound
    retained pool memory at roughly 512 * (context + table) ≈ 0.9 MB
    per domain — flat in the number of channels, and small against the
    scale sweep's per-channel budget at every N in BENCH_mem.json. *)
let capacity = 512

(* Domain-local like every other crypto cache: the ledger discharges
   signature batches on Dpool worker domains, and a pool probe there
   must not race the protocol domain's table. *)
let pool_key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { tbl = Hashtbl.create 256; tick = 0; pinned = 0 })

let touch (p : pool) (e : entry) : unit =
  p.tick <- p.tick + 1;
  e.last <- p.tick

(* Evict the least-recently-used unpinned entry (linear scan: eviction
   only runs on insert pressure, never on the lookup path). *)
let evict_one (p : pool) : unit =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      if e.pins = 0 then
        match !victim with
        | Some (_, le) when le.last <= e.last -> ()
        | _ -> victim := Some (k, e))
    p.tbl;
  match !victim with
  | Some (k, _) -> Hashtbl.remove p.tbl k
  | None -> ()

let insert (p : pool) (pk : Group.element) (ctx : t) : entry =
  if Hashtbl.length p.tbl >= capacity then evict_one p;
  let e = { ctx; pins = 0; last = 0 } in
  touch p e;
  Hashtbl.replace p.tbl pk e;
  e

(** [peek pk] is the pooled context for [pk], or [None] — never
    inserts, so hot paths beyond the pinning budget degrade to one
    hashtable probe instead of evicting each other's tables. *)
let peek (pk : Group.element) : t option =
  let p = Domain.DLS.get pool_key in
  match Hashtbl.find_opt p.tbl pk with
  | Some e ->
      touch p e;
      Some e.ctx
  | None -> None

(** [find pk] is the pooled context for [pk], inserted (and LRU-evicting
    above capacity) on miss. *)
let find ?(sk : Group.scalar option) (pk : Group.element) : t =
  let p = Domain.DLS.get pool_key in
  match Hashtbl.find_opt p.tbl pk with
  | Some e when e.ctx.sk <> None || sk = None ->
      touch p e;
      e.ctx
  | Some e ->
      (* upgrade a verify-only entry to a signing one, keeping residency *)
      let ctx = { (create ?sk pk) with table = e.ctx.table } in
      let e' = { e with ctx } in
      Hashtbl.replace p.tbl pk e';
      touch p e';
      ctx
  | None -> (insert p pk (create ?sk pk)).ctx

(** [pin pk] takes a refcount on [pk]'s context so it cannot be
    evicted. Saturates: once the pool is at capacity with no evictable
    entry, pinning is a no-op (the caller's verifies simply stay on the
    un-keyed paths) — so a million channel opens retain a bounded pool,
    not a million tables. Returns whether the pin was taken. *)
let pin ?(sk : Group.scalar option) (pk : Group.element) : bool =
  let p = Domain.DLS.get pool_key in
  match Hashtbl.find_opt p.tbl pk with
  | Some e ->
      if e.pins = 0 then p.pinned <- p.pinned + 1;
      e.pins <- e.pins + 1;
      touch p e;
      true
  | None ->
      if p.pinned >= capacity then false
      else begin
        let e = insert p pk (create ?sk pk) in
        e.pins <- 1;
        p.pinned <- p.pinned + 1;
        true
      end

(** [pin_ctx ctx] pins an already-built context under its public key,
    sharing the object (and any window table it has built) with the
    pool instead of constructing a second context for the same key.
    Same saturation rule as {!pin}; an entry already present for the
    key just gains a pin (first context in wins). *)
let pin_ctx (ctx : t) : bool =
  let p = Domain.DLS.get pool_key in
  match Hashtbl.find_opt p.tbl ctx.pk with
  | Some e ->
      if e.pins = 0 then p.pinned <- p.pinned + 1;
      e.pins <- e.pins + 1;
      touch p e;
      true
  | None ->
      if p.pinned >= capacity then false
      else begin
        let e = insert p ctx.pk ctx in
        e.pins <- 1;
        p.pinned <- p.pinned + 1;
        true
      end

(** [release pk] drops one pin. At refcount zero the entry is not
    freed — it stays as an ordinary LRU-evictable cache entry, so a
    channel reopening on the same keys rebuilds nothing. No-op for
    unknown (never-pinned or saturated-out) keys, so callers release
    unconditionally at close/punish. *)
let release (pk : Group.element) : unit =
  let p = Domain.DLS.get pool_key in
  match Hashtbl.find_opt p.tbl pk with
  | Some e when e.pins > 0 ->
      e.pins <- e.pins - 1;
      if e.pins = 0 then p.pinned <- p.pinned - 1
  | _ -> ()

type stats = { live : int; pinned : int; tables : int }

let stats () : stats =
  let p = Domain.DLS.get pool_key in
  let tables = ref 0 in
  Hashtbl.iter (fun _ e -> if e.ctx.table <> None then incr tables) p.tbl;
  { live = Hashtbl.length p.tbl; pinned = p.pinned; tables = !tables }

(** Drop every pooled context (pins included) on this domain. *)
let clear () : unit =
  let p = Domain.DLS.get pool_key in
  Hashtbl.reset p.tbl;
  p.pinned <- 0
