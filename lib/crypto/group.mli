(** A small Schnorr group: the order-q subgroup of Z_p^* for the safe
    prime p = 2q + 1 with p = 2147483579, q = 1073741789, generator
    g = 4.

    A simulation stand-in for secp256k1: the full algebraic structure
    (so Schnorr and adaptor signatures verify properly between
    independent parties) at toy security. All byte-size accounting in
    the repository uses the paper's 33/73-byte constants, never the
    size of these elements. *)

val p : int
(** The group modulus (prime, < 2^31 so products fit native ints). *)

val q : int
(** The subgroup order (prime, p = 2q + 1). *)

val g : int
(** Generator of the order-q subgroup. *)

type element = int
(** Group element in [\[1, p-1\]], member of the order-q subgroup. *)

type scalar = int
(** Exponent in [\[0, q-1\]]. *)

val mul : element -> element -> element

val pow : element -> scalar -> element
(** Generic square-and-multiply; the reference path the fast
    exponentiations below are tested against. *)

val inv : element -> element

type precomp
(** Fixed-base window table for one base: [precomp] for base b holds
    b^(j * 2^(w*i)) so b^e costs at most [ceil(30/w)] multiplications. *)

val precompute : element -> precomp
(** Builds the window table for one base: [fb_windows * (fb_digits - 1)]
    multiplications up front, amortized when the same base is
    exponentiated more than ~8 times (one table costs
    {!precomp_bytes} bytes of retained heap). *)

val pow_precomp : precomp -> scalar -> element

val precomp_bytes : int
(** Retained memory cost of one {!precomp} in bytes (arrays, headers
    and all): with the w = 5 windows over 30-bit exponents used here,
    205 words = 1640 bytes per base. Budget tables accordingly — a
    per-key table pays for itself in speed only while the key is hot,
    so unbounded per-key caching would trade O(keys) memory for it. *)

val g_precomp : precomp
(** THE table for the generator, built once at module initialisation.
    Callers needing g as one base of a multi-exponentiation must reuse
    this table (or {!pow_g}); never [precompute g] again. *)

val pow_g : scalar -> element
(** g^e through a module-initialisation-time table for the generator —
    the hot path of [keygen], [sign] and the g^s side of [verify]. *)

val dbl_pow_precomp : precomp -> scalar -> precomp -> scalar -> element
(** [dbl_pow_precomp ta ea tb eb] = a^ea * b^eb with both bases
    precomputed: at most [2 * ceil(30/w)] table multiplications plus
    one combining one — no squaring ladder, unlike {!dbl_pow}. *)

val dbl_pow : element -> scalar -> element -> scalar -> element
(** [dbl_pow a ea b eb] = a^ea * b^eb by Shamir's trick: one shared
    squaring ladder instead of two independent exponentiations. *)

val multi_pow : (element * scalar) list -> element
(** Straus interleaved multi-exponentiation of a product of powers;
    shares one squaring ladder across every term (batch verification). *)

val scalar_add : scalar -> scalar -> scalar
val scalar_sub : scalar -> scalar -> scalar
val scalar_mul : scalar -> scalar -> scalar

val scalar_of_digest : string -> scalar
(** Reduce a hash digest to a scalar. *)

val is_element : int -> bool
(** Subgroup membership: x in (0, p) with x^q = 1 (reference path, one
    full modexp). *)

val jacobi : int -> int -> int
(** Jacobi symbol (a/n) for odd positive n; -1, 0 or 1. *)

val is_element_fast : int -> bool
(** Same predicate as {!is_element} without the modexp: for the safe
    prime p = 2q + 1 the order-q subgroup is the quadratic residues, so
    membership is the Jacobi symbol (x/p) = 1 (Euler's criterion). *)

val encode_int32 : int -> string
(** 4-byte big-endian encoding (values < 2^31). *)

val decode_int32 : string -> int
(** @raise Invalid_argument unless the input has exactly 4 bytes. *)

val encode_element : element -> string
val decode_element : string -> element
val encode_scalar : scalar -> string
