(** SHA-256 (FIPS 180-4), pure OCaml.

    Implemented on 32-bit words carried in native ints; every word is
    masked to 32 bits after arithmetic. Verified in the test suite
    against the FIPS/NIST vectors. *)

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

let mask = 0xffffffff
let ( &: ) a b = a land b
let ( |: ) a b = a lor b
let ( ^: ) a b = a lxor b
let add32 a b = (a + b) &: mask

(* Unaligned 16-bit loads, for assembling big-endian 32-bit schedule
   words in two loads instead of four byte reads. The primitives return
   immediate ints (unlike the 32-bit load, which boxes an Int32). *)
external get16u : string -> int -> int = "%caml_string_get16u"
external bswap16 : int -> int = "%bswap16"

type ctx = { h : int array; w : int array }
(** [w] is the 64-word message schedule, allocated once per context and
    reused by every [compress] call instead of per block. *)

let init () : ctx =
  { h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    w = Array.make 64 0 }

(* Hot path: bounds checks are skipped (offsets are validated by the
   caller) and masking is deferred — all inputs are 32-bit, so sums of
   up to five terms stay well inside the 63-bit native int and only the
   final assignment masks back to 32 bits.

   Rotations use the duplicate-word trick: for a 32-bit x, the value
   x | (x lsl 32) carries every rotation of x as a 32-bit window, so a
   three-rotation sigma is three shifts, two xors and one mask instead
   of six shifts, three masks and five or/xors. (Bit 31 of the high
   copy falls off the 63-bit native int, but the windows read here stop
   at bit 56.) *)
let compress (ctx : ctx) (block : string) (off : int) =
  let w = ctx.w in
  let word16 i = bswap16 (get16u block i) in
  for t = 0 to 15 do
    let i = off + (4 * t) in
    Array.unsafe_set w t ((word16 i lsl 16) |: word16 (i + 2))
  done;
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let d15 = w15 |: (w15 lsl 32) and d2 = w2 |: (w2 lsl 32) in
    let s0 = ((d15 lsr 7) ^: (d15 lsr 18) ^: (w15 lsr 3)) &: mask in
    let s1 = ((d2 lsr 17) ^: (d2 lsr 19) ^: (w2 lsr 10)) &: mask in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
      &: mask)
  done;
  let h = ctx.h in
  (* The working variables live as arguments of a tail-recursive loop
     rather than [ref] cells: without flambda, local refs are boxed and
     every round would pay 16+ heap loads/stores; as loop parameters
     they stay in registers. *)
  let rec round t a b c d e f g hh =
    if t = 64 then begin
      h.(0) <- add32 h.(0) a;
      h.(1) <- add32 h.(1) b;
      h.(2) <- add32 h.(2) c;
      h.(3) <- add32 h.(3) d;
      h.(4) <- add32 h.(4) e;
      h.(5) <- add32 h.(5) f;
      h.(6) <- add32 h.(6) g;
      h.(7) <- add32 h.(7) hh
    end
    else
      let de = e |: (e lsl 32) in
      let s1 = ((de lsr 6) ^: (de lsr 11) ^: (de lsr 25)) &: mask in
      (* ch = (e & f) ^ (~e & g), rewritten to need no 32-bit not *)
      let ch = g ^: (e &: (f ^: g)) in
      let t1 = hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t in
      let da = a |: (a lsl 32) in
      let s0 = ((da lsr 2) ^: (da lsr 13) ^: (da lsr 22)) &: mask in
      (* maj = (a & b) ^ (a & c) ^ (b & c), one and fewer *)
      let maj = (a &: b) ^: (c &: (a ^: b)) in
      round (t + 1) ((t1 + s0 + maj) &: mask) a b c ((d + t1) &: mask) e f g
  in
  round 0 h.(0) h.(1) h.(2) h.(3) h.(4) h.(5) h.(6) h.(7)

let output_of_h (h : int array) : string =
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = Array.unsafe_get h i in
    Bytes.unsafe_set out (4 * i) (Char.unsafe_chr ((v lsr 24) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set out ((4 * i) + 3) (Char.unsafe_chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

(* Pad-and-finish into a domain-local two-block scratch: writes the
   remaining [rem] bytes already placed at the scratch head, the 0x80
   marker, zeros and the 64-bit big-endian bit length, then compresses
   the one or two tail blocks. Shared by every digest path, so
   finishing a hash allocates nothing beyond the 32-byte output. *)
let tail_scratch : Bytes.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Bytes.create 128)

let finish_tail (ctx : ctx) (tail : Bytes.t) (rem : int) (total : int) : string =
  let tail_blocks = if rem < 56 then 1 else 2 in
  Bytes.fill tail rem ((tail_blocks * 64) - rem) '\000';
  Bytes.unsafe_set tail rem '\x80';
  let bits = total * 8 in
  for i = 0 to 7 do
    Bytes.unsafe_set tail
      ((tail_blocks * 64) - 1 - i)
      (Char.unsafe_chr ((bits lsr (8 * i)) land 0xff))
  done;
  let tail_s = Bytes.unsafe_to_string tail in
  compress ctx tail_s 0;
  if tail_blocks = 2 then compress ctx tail_s 64;
  output_of_h ctx.h

(* One scratch context per domain: [digest] resets its chaining array
   in place instead of allocating a fresh [ctx] (and 64-word schedule)
   per call. *)
let iv = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
            0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]

let ctx_scratch : ctx Domain.DLS.key =
  Domain.DLS.new_key (fun () -> init ())

(** [digest s] is the 32-byte SHA-256 digest of [s].

    Full 64-byte blocks are compressed in place from [msg] — the input
    is never copied into a padded buffer. Only the tail (the remaining
    bytes, the 0x80 marker, zeros and the 64-bit big-endian bit length)
    lands in a small domain-local scratch of at most two blocks; the
    context itself is domain-local too, so a digest allocates only its
    32-byte result. *)
let digest (msg : string) : string =
  let ctx = Domain.DLS.get ctx_scratch in
  Array.blit iv 0 ctx.h 0 8;
  let len = String.length msg in
  let full = len / 64 in
  for b = 0 to full - 1 do
    compress ctx msg (b * 64)
  done;
  let rem = len - (full * 64) in
  let tail = Domain.DLS.get tail_scratch in
  Bytes.blit_string msg (full * 64) tail 0 rem;
  finish_tail ctx tail rem len

(* ------------------------------------------------------------------ *)
(* Streaming interface.                                                *)

type st = {
  st_h : int array;  (** chaining value after [st_total / 64] blocks *)
  st_buf : Bytes.t;  (** 64-byte partial-block buffer *)
  mutable st_buflen : int;
  mutable st_total : int;  (** total bytes fed *)
}
(** A resumable hash state. The point of the streaming interface is
    *midstates*: feed a fixed prefix once (e.g. the 64-byte tagged-hash
    prefix), keep the state, and later produce digests of
    prefix-plus-suffix without recompressing the prefix — see
    {!st_digest}, which never mutates the state it reads. *)

(* The 64-word message schedule is scratch within one [compress]; all
   streaming states on a domain share one, so cloning a state copies
   only the 8-word chaining value and the partial block. *)
let st_scratch_w : int array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make 64 0)

let st_create () : st =
  { st_h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    st_buf = Bytes.create 64;
    st_buflen = 0;
    st_total = 0 }

let st_copy (st : st) : st =
  { st_h = Array.copy st.st_h;
    st_buf = Bytes.copy st.st_buf;
    st_buflen = st.st_buflen;
    st_total = st.st_total }

(* Compress with a borrowed schedule: a [ctx] sharing the state's
   chaining array and the domain scratch. *)
let st_ctx (st : st) : ctx = { h = st.st_h; w = Domain.DLS.get st_scratch_w }

(** [st_feed st s off len] absorbs [len] bytes of [s] from [off]. *)
let st_feed (st : st) (s : string) (off : int) (len : int) : unit =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Sha256.st_feed";
  let ctx = st_ctx st in
  let pos = ref off and left = ref len in
  st.st_total <- st.st_total + len;
  (* top up a partial block first *)
  if st.st_buflen > 0 then begin
    let take = min !left (64 - st.st_buflen) in
    Bytes.blit_string s !pos st.st_buf st.st_buflen take;
    st.st_buflen <- st.st_buflen + take;
    pos := !pos + take;
    left := !left - take;
    if st.st_buflen = 64 then begin
      compress ctx (Bytes.unsafe_to_string st.st_buf) 0;
      st.st_buflen <- 0
    end
  end;
  (* whole blocks straight from the input, no copy *)
  while !left >= 64 do
    compress ctx s !pos;
    pos := !pos + 64;
    left := !left - 64
  done;
  if !left > 0 then begin
    Bytes.blit_string s !pos st.st_buf 0 !left;
    st.st_buflen <- !left
  end

(* Finalize destructively: pad and emit. *)
let st_finalize (st : st) : string =
  let ctx = st_ctx st in
  let rem = st.st_buflen in
  let tail = Domain.DLS.get tail_scratch in
  Bytes.blit st.st_buf 0 tail 0 rem;
  finish_tail ctx tail rem st.st_total

(* Scratch state for the non-mutating digest path: [st_digest] restores
   the midstate into this per-domain state instead of allocating a
   fresh copy per call. *)
let st_scratch : st Domain.DLS.key = Domain.DLS.new_key (fun () -> st_create ())

(** [st_digest st parts] is the digest of everything fed to [st] so far
    followed by the [(string, off, len)] slices of [parts], without
    mutating [st] — the midstate entry point: the caller keeps [st]
    (typically a cached fixed-prefix state) and derives digests of
    arbitrary suffixes from it, each suffix fed as slices with no
    intermediate concatenation. Allocation-free beyond the 32-byte
    result: the working copy is a domain-local scratch state. *)
let st_digest (st : st) (parts : (string * int * int) list) : string =
  let tmp = Domain.DLS.get st_scratch in
  Array.blit st.st_h 0 tmp.st_h 0 8;
  Bytes.blit st.st_buf 0 tmp.st_buf 0 st.st_buflen;
  tmp.st_buflen <- st.st_buflen;
  tmp.st_total <- st.st_total;
  List.iter (fun (s, off, len) -> st_feed tmp s off len) parts;
  st_finalize tmp

(** Hex digest, convenience for tests. *)
let hexdigest (msg : string) : string = Daric_util.Hex.encode (digest msg)
