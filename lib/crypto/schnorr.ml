(** Schnorr signatures over {!Group}, with deterministic nonces.

    Serialized sizes intentionally match the constants used throughout
    the paper's Appendix H: public keys serialize to exactly 33 bytes
    and signatures to exactly 73 bytes, so that the transactions we
    build have byte-accurate witness sizes.

    Verification runs on fast paths (Jacobi-symbol subgroup membership,
    Shamir double exponentiation, fixed-base g table); [verify_naive]
    keeps the textbook path as the reference the tests compare against. *)

type secret_key = Group.scalar
type public_key = Group.element

type signature = { r : Group.element; s : Group.scalar }

let public_key_size = 33
let signature_size = 73

(** [keygen rng] draws a fresh keypair. *)
let keygen (rng : Daric_util.Rng.t) : secret_key * public_key =
  let sk = 1 + Daric_util.Rng.int rng (Group.q - 1) in
  (sk, Group.pow_g sk)

let public_key_of_secret (sk : secret_key) : public_key = Group.pow_g sk

(* Decoded-key cache: public keys that already passed subgroup
   validation. Channel peers and watchtowers see the same handful of
   keys on every update, so repeat decodes skip even the cheap
   Jacobi-symbol check. Bounded; reset rather than evicted when full.
   Domain-local: verification runs on Dpool worker domains, and a
   cache miss there must not race the main domain's table. *)
let validated_keys : (int, unit) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let validated_keys_max = 1 lsl 14

let is_valid_key (pk : int) : bool =
  let cache = Domain.DLS.get validated_keys in
  Hashtbl.mem cache pk
  || Group.is_element_fast pk
     && begin
          if Hashtbl.length cache >= validated_keys_max then
            Hashtbl.reset cache;
          Hashtbl.add cache pk ();
          true
        end

(* Encoded-key cache: the 33-byte encoding is rebuilt inside every
   script construction and witness completion for the same handful of
   channel keys; strings are immutable, so sharing one per key is
   safe. Domain-local like the other memo tables. *)
let encoded_keys : (int, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let encoded_keys_max = 1 lsl 14

let encode_public_key_uncached (pk : public_key) : string =
  "\x02" ^ String.make 28 '\000' ^ Group.encode_element pk

(** 33-byte encoding: 0x02 marker, 28 zero bytes, 4-byte element.
    Memoized per key. *)
let encode_public_key (pk : public_key) : string =
  let cache = Domain.DLS.get encoded_keys in
  match Hashtbl.find_opt cache pk with
  | Some s -> s
  | None ->
      let s = encode_public_key_uncached pk in
      if Hashtbl.length cache >= encoded_keys_max then Hashtbl.reset cache;
      Hashtbl.add cache pk s;
      s

let all_zero (s : string) ~(from : int) ~(upto : int) : bool =
  let rec go i = i > upto || (s.[i] = '\000' && go (i + 1)) in
  go from

let decode_public_key (s : string) : public_key option =
  if
    String.length s <> public_key_size
    || s.[0] <> '\x02'
    (* non-zero filler would give one key many encodings *)
    || not (all_zero s ~from:1 ~upto:28)
  then None
  else
    let pk = Group.decode_element (String.sub s 29 4) in
    if is_valid_key pk then Some pk else None

(** 73-byte encoding: R (4), s (4), then zero padding; the final byte
    is left free for a SIGHASH flag. *)
let encode_signature (sg : signature) : string =
  Group.encode_element sg.r ^ Group.encode_scalar sg.s ^ String.make 65 '\000'

let decode_signature (s : string) : signature option =
  if
    String.length s <> signature_size
    (* strict padding: bytes 8..71 must be zero (the last byte carries
       the SIGHASH flag); otherwise one signature has 2^512 encodings
       and witness malleability would change txids *)
    || not (all_zero s ~from:8 ~upto:(signature_size - 2))
  then None
  else
    Some
      { r = Group.decode_element (String.sub s 0 4);
        s = Group.decode_int32 (String.sub s 4 4) }

let challenge_uncached (r : Group.element) (pk : public_key) (msg : string) :
    Group.scalar =
  Group.scalar_of_digest
    (Hash.tagged_uncached "daric/challenge"
       (Group.encode_element r ^ Group.encode_element pk ^ msg))

(* Fiat-Shamir challenges are recomputed for the same (R, pk, msg) by
   signer, peer, ledger, mempool and watchtower alike; e = H(...) is a
   pure function, so the scalar is memoized on its preimage. Bounded;
   reset wholesale when full. Domain-local for the same reason as
   [validated_keys]. *)
let challenge_cache : (string, Group.scalar) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let challenge_cache_max = 1 lsl 16

let challenge (r : Group.element) (pk : public_key) (msg : string) : Group.scalar =
  let cache = Domain.DLS.get challenge_cache in
  let preimage = Group.encode_element r ^ Group.encode_element pk ^ msg in
  match Hashtbl.find_opt cache preimage with
  | Some e -> e
  | None ->
      let e =
        Group.scalar_of_digest (Hash.tagged "daric/challenge" preimage)
      in
      if Hashtbl.length cache >= challenge_cache_max then Hashtbl.reset cache;
      Hashtbl.add cache preimage e;
      e

let nonce (sk : secret_key) (msg : string) (aux : string) : Group.scalar =
  let k =
    Group.scalar_of_digest
      (Hash.tagged "daric/nonce" (Group.encode_scalar sk ^ aux ^ msg))
  in
  if k = 0 then 1 else k

let sign (sk : secret_key) (msg : string) : signature =
  let k = nonce sk msg "" in
  let r = Group.pow_g k in
  let e = challenge r (public_key_of_secret sk) msg in
  { r; s = Group.scalar_add k (Group.scalar_mul e sk) }

(** Fast verify: membership via the Jacobi symbol, then the equation
    g^s = R * pk^e rewritten as g^s * pk^(-e) = R so both
    exponentiations share one Shamir ladder. *)
let verify (pk : public_key) (msg : string) (sg : signature) : bool =
  is_valid_key pk
  && Group.is_element_fast sg.r
  &&
  let e = challenge sg.r pk msg in
  Group.dbl_pow Group.g sg.s pk (Group.scalar_sub 0 e) = sg.r

(* ------------------------------------------------------------------ *)
(* Keyed operations: the per-key half of every exponentiation and the
   key-dependent hash prefixes come precomputed from a {!Keyctx.t}.
   Each keyed operation agrees pointwise with its plain counterpart
   (the differential suite asserts it); the plain paths above stay as
   the oracles. *)

(** [sign_keyed kc msg] = [sign sk msg] for the context's secret key,
    bit-identical: the nonce preimage [enc sk || msg] is fed as slices
    from the context's cached scalar encoding (no per-call encode or
    concatenation), and the public key comes from the context instead
    of a fresh [pow_g].
    @raise Invalid_argument on a verify-only context. *)
let sign_keyed (kc : Keyctx.t) (msg : string) : signature =
  let sk =
    match Keyctx.sk kc with
    | Some sk -> sk
    | None -> invalid_arg "Schnorr.sign_keyed: verify-only context"
  in
  let sk_enc = Keyctx.sk_enc kc in
  let k =
    Group.scalar_of_digest
      (Hash.tagged_parts "daric/nonce"
         [ (sk_enc, 0, String.length sk_enc); (msg, 0, String.length msg) ])
  in
  let k = if k = 0 then 1 else k in
  let r = Group.pow_g k in
  let e = challenge r (Keyctx.pk kc) msg in
  { r; s = Group.scalar_add k (Group.scalar_mul e sk) }

(** [verify_keyed kc msg sg] = [verify (pk kc) msg sg], with the key's
    membership check amortized into context construction and the
    Shamir ladder replaced by two fixed-base window tables (the shared
    g table and the context's): a dozen multiplications instead of 30
    squarings. *)
let verify_keyed (kc : Keyctx.t) (msg : string) (sg : signature) : bool =
  Keyctx.is_valid kc
  && Group.is_element_fast sg.r
  &&
  let e = challenge sg.r (Keyctx.pk kc) msg in
  Group.dbl_pow_precomp Group.g_precomp sg.s (Keyctx.table kc)
    (Group.scalar_sub 0 e)
  = sg.r

(** Pool-probing verify: keyed when [pk]'s context is resident (a
    channel key pinned at open), the plain fast path otherwise. Never
    inserts into the pool, so cold keys cost one table probe extra. *)
let verify_pooled (pk : public_key) (msg : string) (sg : signature) : bool =
  match Keyctx.peek pk with
  | Some kc -> verify_keyed kc msg sg
  | None -> verify pk msg sg

(** Reference verify, reproducing the pre-optimization path end to
    end: two independent [Group.pow] ladders, two full x^q membership
    modexps and an uncached challenge — the baseline for the property
    tests and the bench's [_naive] timings. *)
let verify_naive (pk : public_key) (msg : string) (sg : signature) : bool =
  Group.is_element pk && Group.is_element sg.r
  &&
  let e = challenge_uncached sg.r pk msg in
  Group.pow Group.g sg.s = Group.mul sg.r (Group.pow pk e)

(* ------------------------------------------------------------------ *)
(* Batch verification (random linear combination).                     *)

(* Coefficients are derived deterministically from the whole batch, so
   the check needs no RNG input and an item cannot choose its own
   weight: one tagged hash absorbs a compact summary of every item —
   (pk, R, s, e), where e = H(R || pk || msg) already binds the message
   through SHA-256 — and a splitmix64 expander stretches the digest
   into one 24-bit coefficient per item. 24 bits bound the
   false-accept probability by 2^-24 while keeping the R_i^z_i side of
   the multi-exponentiation short. *)
let batch_coeff_bits = 24

let batch_coeffs (items : (public_key * string * signature) list)
    (challenges : Group.scalar list) : Group.scalar list =
  let buf = Buffer.create (16 * List.length items) in
  List.iter2
    (fun (pk, _, sg) e ->
      Buffer.add_string buf (Group.encode_element pk);
      Buffer.add_string buf (Group.encode_element sg.r);
      Buffer.add_string buf (Group.encode_int32 sg.s);
      Buffer.add_string buf (Group.encode_int32 e))
    items challenges;
  let seed =
    Hash.digest_to_int (Hash.tagged "daric/batch-seed" (Buffer.contents buf))
  in
  let prg = Daric_util.Rng.create ~seed in
  List.map (fun _ -> 1 + Daric_util.Rng.int prg ((1 lsl batch_coeff_bits) - 1)) items

(** [batch_verify items] accepts iff (whp) every (pk, msg, sig) triple
    individually verifies. One fixed-base exponentiation plus two
    shared-ladder multi-exponentiations replace 2N independent ladders:
    with random z_i it checks
      g^(sum z_i s_i) * prod pk_i^(-z_i e_i)  =  prod R_i^(z_i). *)
let batch_verify (items : (public_key * string * signature) list) : bool =
  match items with
  | [] -> true
  | [ (pk, msg, sg) ] -> verify pk msg sg
  | _ ->
      List.for_all
        (fun (pk, _, sg) -> is_valid_key pk && Group.is_element_fast sg.r)
        items
      &&
      let es = List.map (fun (pk, msg, sg) -> challenge sg.r pk msg) items in
      let zs = batch_coeffs items es in
      let s_sum =
        List.fold_left2
          (fun acc (_, _, sg) z -> Group.scalar_add acc (Group.scalar_mul z sg.s))
          0 items zs
      in
      let lhs_terms =
        List.map2
          (fun ((pk, _, _), e) z -> (pk, Group.scalar_sub 0 (Group.scalar_mul z e)))
          (List.combine items es) zs
      in
      let rhs_terms = List.map2 (fun (_, _, sg) z -> (sg.r, z)) items zs in
      Group.mul (Group.pow_g s_sum) (Group.multi_pow lhs_terms)
      = Group.multi_pow rhs_terms

(** [batch_verify_detailed items] is the isolating form: [Ok ()] when
    the batch accepts, [Error bad] with the (non-empty, sorted) indices
    of every individually-failing triple otherwise. Individual [verify]
    is the ground truth, so a batch rejected only by an (astronomically
    unlikely) coefficient collision still returns [Ok ()]. *)
let batch_verify_detailed (items : (public_key * string * signature) list) :
    (unit, int list) result =
  if batch_verify items then Ok ()
  else
    let bad = ref [] in
    List.iteri
      (fun i (pk, msg, sg) -> if not (verify pk msg sg) then bad := i :: !bad)
      items;
    match List.rev !bad with [] -> Ok () | bad -> Error bad

(* Keyed batch: same random-linear-combination check and the same
   coefficient derivation as [batch_verify], but each public-key term
   g^(-z_i * e_i)-side is discharged through the key's window table
   (a handful of multiplications) instead of occupying a lane of the
   Straus ladder; only the per-signature R_i terms — fresh group
   elements with nothing to precompute — keep the shared ladder. *)
let batch_verify_keyed (items : (Keyctx.t * string * signature) list) : bool =
  match items with
  | [] -> true
  | [ (kc, msg, sg) ] -> verify_keyed kc msg sg
  | _ ->
      List.for_all
        (fun (kc, _, sg) -> Keyctx.is_valid kc && Group.is_element_fast sg.r)
        items
      &&
      let plain = List.map (fun (kc, msg, sg) -> (Keyctx.pk kc, msg, sg)) items in
      let es = List.map (fun (kc, msg, sg) -> challenge sg.r (Keyctx.pk kc) msg) items in
      let zs = batch_coeffs plain es in
      let s_sum =
        List.fold_left2
          (fun acc (_, _, sg) z -> Group.scalar_add acc (Group.scalar_mul z sg.s))
          0 items zs
      in
      let lhs =
        List.fold_left2
          (fun acc ((kc, _, _), e) z ->
            Group.mul acc
              (Group.pow_precomp (Keyctx.table kc)
                 (Group.scalar_sub 0 (Group.scalar_mul z e))))
          (Group.pow_g s_sum)
          (List.combine items es) zs
      in
      let rhs_terms = List.map2 (fun (_, _, sg) z -> (sg.r, z)) items zs in
      lhs = Group.multi_pow rhs_terms

(** Pool-probing batch: items whose key has a resident context join a
    keyed sub-batch, the rest a plain one; both random-linear-
    combination checks must accept. Never inserts into the pool. *)
let batch_verify_pooled (items : (public_key * string * signature) list) : bool =
  let keyed, plain =
    List.partition_map
      (fun ((pk, msg, sg) as item) ->
        match Keyctx.peek pk with
        | Some kc -> Either.Left (kc, msg, sg)
        | None -> Either.Right item)
      items
  in
  (match plain with [] -> true | _ -> batch_verify plain)
  && (match keyed with [] -> true | _ -> batch_verify_keyed keyed)

(* Convenience wrappers over the wire encodings, used by the script
   interpreter which only sees byte strings. *)

let sign_bytes (sk : secret_key) (msg : string) : string = encode_signature (sign sk msg)

let verify_bytes (pk_bytes : string) (msg : string) (sig_bytes : string) : bool =
  match (decode_public_key pk_bytes, decode_signature sig_bytes) with
  | Some pk, Some sg -> verify pk msg sg
  | _ -> false

let sign_bytes_keyed (kc : Keyctx.t) (msg : string) : string =
  encode_signature (sign_keyed kc msg)

let verify_bytes_pooled (pk_bytes : string) (msg : string) (sig_bytes : string)
    : bool =
  match (decode_public_key pk_bytes, decode_signature sig_bytes) with
  | Some pk, Some sg -> verify_pooled pk msg sg
  | _ -> false
