(** SHA-256 (FIPS 180-4), pure OCaml. Verified against the NIST test
    vectors in the test suite. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 digest of [s]. *)

val hexdigest : string -> string
(** Hex rendering of {!digest}, for tests and display. *)

(** {2 Streaming interface}

    A resumable hash state, built for *midstates*: absorb a fixed
    prefix once, keep the state, and derive digests of
    prefix-plus-suffix messages without recompressing the prefix or
    concatenating strings. *)

type st

val st_create : unit -> st

val st_feed : st -> string -> int -> int -> unit
(** [st_feed st s off len] absorbs the slice [s\[off, off+len)].
    Whole 64-byte blocks are compressed straight from [s] (no copy);
    raises [Invalid_argument] on an out-of-bounds slice. *)

val st_copy : st -> st

val st_digest : st -> (string * int * int) list -> string
(** [st_digest st parts] is the digest of everything fed to [st] so
    far followed by the given [(string, off, len)] slices. [st] is not
    mutated, so a cached midstate can be reused for any number of
    suffixes. *)
