(** A small Schnorr group: the order-q subgroup of Z_p^* with
    p = 2q + 1 a safe prime.

    p = 2147483579 and q = 1073741789 are both prime, p < 2^31, so all
    intermediate products fit in OCaml's 63-bit native integers. The
    generator g = 4 is a quadratic residue and hence generates the
    subgroup of order q.

    This group is a *simulation stand-in* for secp256k1: it has the full
    algebraic structure (so Schnorr and adaptor signatures verify
    properly between independent parties) but only toy security. All
    byte-size accounting uses the paper's 33/73-byte constants, not the
    size of these elements. *)

let p = 2147483579
let q = 1073741789
let g = 4

type element = int
(** Group element in [1, p-1], member of the order-q subgroup. *)

type scalar = int
(** Exponent in [0, q-1]. *)

let mul (a : element) (b : element) : element = a * b mod p

let pow (base : element) (e : scalar) : element =
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (e lsr 1)
  in
  go 1 (base mod p) (((e mod q) + q) mod q)

(** Fermat inverse in Z_p^*. *)
let inv (a : element) : element =
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (e lsr 1)
  in
  go 1 (a mod p) (p - 2)

(* ------------------------------------------------------------------ *)
(* Fast exponentiation paths. Each has a naive counterpart above or
   below; the test suite asserts pointwise agreement.                  *)

let reduce_exp (e : scalar) : scalar = ((e mod q) + q) mod q

(* q < 2^30, so every reduced exponent fits in [exp_bits] bits. *)
let exp_bits = 30

(* Fixed-base windowed precomputation: for a base b, table.(i).(j) holds
   b^(j * 2^(w*i)), so b^e is the product over windows i of
   table.(i).(digit_i e) — at most [fb_windows] multiplications per
   exponentiation instead of a full square-and-multiply ladder. *)
let fb_window = 5
let fb_windows = (exp_bits + fb_window - 1) / fb_window
let fb_digits = 1 lsl fb_window

type precomp = element array array

let precompute (base : element) : precomp =
  let base = base mod p in
  let table = Array.make_matrix fb_windows fb_digits 1 in
  let cur = ref base in
  for i = 0 to fb_windows - 1 do
    (* row i: powers of base^(2^(w*i)) *)
    let row = table.(i) in
    for j = 1 to fb_digits - 1 do
      row.(j) <- mul row.(j - 1) !cur
    done;
    (* advance cur to base^(2^(w*(i+1))) by w squarings *)
    for _ = 1 to fb_window do
      cur := mul !cur !cur
    done
  done;
  table

let pow_precomp (table : precomp) (e : scalar) : element =
  let e = reduce_exp e in
  let acc = ref 1 in
  for i = 0 to fb_windows - 1 do
    let digit = (e lsr (fb_window * i)) land (fb_digits - 1) in
    if digit <> 0 then acc := mul !acc table.(i).(digit)
  done;
  !acc

(* Memory cost of one [precomp], in bytes: the outer array (header +
   fb_windows pointers) plus fb_windows rows of (header + fb_digits
   boxed-free immediates), at 8 bytes per word on a 64-bit runtime.
   With w = 5 over 30-bit exponents that is
   (1 + 6) + 6 * (1 + 32) = 205 words = 1640 bytes per base. *)
let precomp_bytes : int =
  8 * (1 + fb_windows + (fb_windows * (1 + fb_digits)))

(* The generator table is by far the most used one (keygen, sign, the
   g^s side of every verify); build it once at module initialisation
   and share it everywhere — no caller should ever build a second
   table for g (or fall back to a cold ladder on it). *)
let g_table : precomp = precompute g

let g_precomp : precomp = g_table

(** [pow_g e] = g^e via the fixed-base table. *)
let pow_g (e : scalar) : element = pow_precomp g_table e

(** [dbl_pow_precomp ta ea tb eb] = a^ea * b^eb when BOTH bases have
    window tables: at most [2 * fb_windows] table multiplications plus
    one combining multiplication — no squaring ladder at all. The
    keyed counterpart of {!dbl_pow} for {!Schnorr.verify_keyed}, where
    the two bases are the (precomputed) generator and a channel public
    key whose table lives in a {!Keyctx.t}. *)
let dbl_pow_precomp (ta : precomp) (ea : scalar) (tb : precomp) (eb : scalar) :
    element =
  mul (pow_precomp ta ea) (pow_precomp tb eb)

(** Shamir/Straus double exponentiation: [dbl_pow a ea b eb] computes
    a^ea * b^eb in one interleaved ladder — the squarings are shared
    between the two exponents, so the cost is one ladder plus at most
    one multiplication per bit instead of two full ladders. *)
let dbl_pow (a : element) (ea : scalar) (b : element) (eb : scalar) : element =
  let a = a mod p and b = b mod p in
  let ea = reduce_exp ea and eb = reduce_exp eb in
  let ab = mul a b in
  let acc = ref 1 in
  for i = exp_bits - 1 downto 0 do
    acc := mul !acc !acc;
    let bit_a = (ea lsr i) land 1 and bit_b = (eb lsr i) land 1 in
    if bit_a = 1 then
      if bit_b = 1 then acc := mul !acc ab else acc := mul !acc a
    else if bit_b = 1 then acc := mul !acc b
  done;
  !acc

(** Straus interleaved multi-exponentiation: the product of b^e over all
    [(b, e)] terms, sharing one squaring ladder across every term. The
    backbone of {!Schnorr.batch_verify}'s random linear combination. *)
let multi_pow (terms : (element * scalar) list) : element =
  match terms with
  | [] -> 1
  | [ (b, e) ] -> pow b e
  | _ ->
      let n = List.length terms in
      let bases = Array.make n 1 and exps = Array.make n 0 in
      List.iteri
        (fun i (b, e) ->
          bases.(i) <- b mod p;
          exps.(i) <- reduce_exp e)
        terms;
      let acc = ref 1 in
      for i = exp_bits - 1 downto 0 do
        acc := mul !acc !acc;
        for j = 0 to n - 1 do
          if (exps.(j) lsr i) land 1 = 1 then acc := mul !acc bases.(j)
        done
      done;
      !acc

let scalar_add (a : scalar) (b : scalar) : scalar = (a + b) mod q
let scalar_sub (a : scalar) (b : scalar) : scalar = ((a - b) mod q + q) mod q
let scalar_mul (a : scalar) (b : scalar) : scalar = a * b mod q

(** Reduce a digest to a scalar. *)
let scalar_of_digest (d : string) : scalar = Hash.digest_to_int d mod q

(** [is_element x] checks subgroup membership: x^q = 1 (and x != 0).
    Reference (slow) path: a full x^q modular exponentiation.

    Note the ladder here must NOT reduce the exponent mod q: Lagrange
    reduction is only sound for bases already in the order-q subgroup,
    which is the very thing being tested. ([pow x q] would compute
    x^(q mod q) = 1 and accept everything.) *)
let is_element (x : int) : bool =
  x > 0 && x < p
  &&
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (e lsr 1)
  in
  go 1 x q = 1

(** Jacobi symbol (a/n) for odd positive n, by quadratic reciprocity —
    a GCD-shaped loop of shifts and reductions, no exponentiation. *)
let jacobi (a : int) (n : int) : int =
  let a = ref (((a mod n) + n) mod n) and n = ref n and result = ref 1 in
  while !a <> 0 do
    while !a land 1 = 0 do
      a := !a lsr 1;
      let r = !n land 7 in
      if r = 3 || r = 5 then result := - !result
    done;
    let t = !a in
    a := !n;
    n := t;
    if !a land 3 = 3 && !n land 3 = 3 then result := - !result;
    a := !a mod !n
  done;
  if !n = 1 then !result else 0

(** [is_element_fast x] is {!is_element} via Euler's criterion: since
    p = 2q + 1 is a safe prime, the order-q subgroup is exactly the set
    of quadratic residues mod p, and x^q = x^((p-1)/2) = (x/p). The
    Jacobi symbol computes the same bit without a modexp. *)
let is_element_fast (x : int) : bool = x > 0 && x < p && jacobi x p = 1

(** Fixed-width serializations (elements and scalars are < 2^31). *)
let encode_int32 (v : int) : string =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
  done;
  Bytes.unsafe_to_string b

let decode_int32 (s : string) : int =
  if String.length s <> 4 then invalid_arg "Group.decode_int32";
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code s.[i]
  done;
  !v

let encode_element = encode_int32
let decode_element = decode_int32
let encode_scalar = encode_int32
