(** Schnorr signatures over {!Group} with deterministic nonces.

    Serialized sizes match the constants of the paper's Appendix H:
    public keys are exactly 33 bytes, signatures exactly 73 bytes, so
    the transactions built from them have byte-accurate witnesses. *)

type secret_key = Group.scalar
type public_key = Group.element

type signature = { r : Group.element; s : Group.scalar }

val public_key_size : int
(** 33. *)

val signature_size : int
(** 73. *)

val keygen : Daric_util.Rng.t -> secret_key * public_key
val public_key_of_secret : secret_key -> public_key

val encode_public_key : public_key -> string
(** 33-byte encoding. *)

val decode_public_key : string -> public_key option
(** Returns [None] on malformed input (including non-zero filler
    bytes — each key has exactly one encoding) or non-subgroup points.
    Validated keys are cached, so repeat decodes of the same key skip
    the membership check. *)

val encode_signature : signature -> string
(** 73-byte encoding (the last byte is free for a SIGHASH flag). *)

val decode_signature : string -> signature option
(** [None] unless the input is 73 bytes with all-zero padding (the
    final byte excepted — it carries the SIGHASH flag): each signature
    has exactly one encoding per flag, so witnesses are non-malleable. *)

val challenge : Group.element -> public_key -> string -> Group.scalar
(** The Fiat-Shamir challenge e = H(R || pk || msg); exposed for the
    adaptor-signature construction. *)

val nonce : secret_key -> string -> string -> Group.scalar
(** Deterministic nonce derivation; [aux] separates usage domains. *)

val sign : secret_key -> string -> signature

val verify : public_key -> string -> signature -> bool
(** Fast path: Jacobi-symbol membership and one Shamir double
    exponentiation. Agrees pointwise with {!verify_naive}. *)

val verify_naive : public_key -> string -> signature -> bool
(** Reference path (two independent ladders, x^q membership); kept for
    property tests and the [_naive] bench baselines. *)

val batch_verify : (public_key * string * signature) list -> bool
(** Random-linear-combination batch verification: accepts iff (up to a
    2^-24 soundness error against adversarially crafted batches) every
    triple individually verifies. N triples cost roughly one
    multi-exponentiation instead of N full verifies. *)

val batch_verify_detailed :
  (public_key * string * signature) list -> (unit, int list) result
(** Isolating form of {!batch_verify}: on rejection, returns the
    non-empty sorted indices of every individually-invalid triple. *)

(** {2 Keyed operations}

    Per-public-key precomputation from a {!Keyctx.t}: validation,
    encodings and fixed-base window tables amortized across a channel
    lifetime. Each agrees pointwise with its plain counterpart above
    (asserted by the keyed/plain differential suite); the plain paths
    remain the oracles. *)

val sign_keyed : Keyctx.t -> string -> signature
(** Bit-identical to {!sign} under the context's secret key, with the
    nonce's key-dependent prefix and the public key cached.
    @raise Invalid_argument on a verify-only context. *)

val verify_keyed : Keyctx.t -> string -> signature -> bool
(** = [verify (Keyctx.pk kc) msg sg], as two fixed-base window-table
    exponentiations (shared g table + the key's) — no squaring ladder,
    no per-call membership check on the key. *)

val verify_pooled : public_key -> string -> signature -> bool
(** {!verify_keyed} when the key's context is resident in the
    {!Keyctx} pool (never inserting), {!verify} otherwise. *)

val batch_verify_keyed : (Keyctx.t * string * signature) list -> bool
(** {!batch_verify} with every public-key term discharged through its
    key's window table; only the fresh R_i terms keep the shared
    Straus ladder. Identical accept/reject behaviour. *)

val batch_verify_pooled : (public_key * string * signature) list -> bool
(** Splits the batch by pool residency into a keyed and a plain
    sub-batch (never inserting); accepts iff both accept. *)

val sign_bytes : secret_key -> string -> string
(** {!sign} composed with {!encode_signature}. *)

val verify_bytes : string -> string -> string -> bool
(** [verify_bytes pk_bytes msg sig_bytes] decodes and verifies;
    [false] on any malformed input. *)

val sign_bytes_keyed : Keyctx.t -> string -> string
(** {!sign_keyed} composed with {!encode_signature}; bit-identical
    output to {!sign_bytes} under the context's secret key. *)

val verify_bytes_pooled : string -> string -> string -> bool
(** {!verify_bytes} with the verification discharged through
    {!verify_pooled}: same strict decoding, same verdict. *)
