(** Per-public-key crypto contexts: amortized validation, shared
    encodings and a lazy fixed-base window table per key, behind a
    bounded domain-local pool with watchtower-arena-style pin/release
    residency. See {!Schnorr.verify_keyed} and friends for the
    operations consuming these. *)

type t

val create : ?sk:Group.scalar -> Group.element -> t
(** Standalone (un-pooled) context for a public key; [sk] makes it a
    signing context. Subgroup membership is checked once, here. *)

val of_secret : Group.scalar -> t
(** Signing context with the public key derived from [sk]. *)

val pk : t -> Group.element
val is_valid : t -> bool
(** The context key's subgroup membership, as checked at build time. *)

val sk : t -> Group.scalar option
val pk_enc : t -> string
(** Cached [Group.encode_element (pk t)]. *)

val sk_enc : t -> string
(** Cached [Group.encode_scalar sk]; [""] for verify-only contexts. *)

val table : t -> Group.precomp
(** The key's window table, built on first use and retained on the
    context ({!table_bytes} bytes). *)

val has_table : t -> bool

val table_bytes : int
(** = {!Group.precomp_bytes}: retained bytes per built table. *)

(** {2 Bounded pool}

    Domain-local (ledger discharge probes from Dpool worker domains).
    At most {!capacity} entries live per domain; pinned entries are
    never evicted, unpinned ones go least-recently-used. *)

val capacity : int

val peek : Group.element -> t option
(** Pool lookup that never inserts — the hot-path probe. *)

val find : ?sk:Group.scalar -> Group.element -> t
(** Pool lookup inserting on miss (evicting the LRU unpinned entry
    above capacity). [sk] upgrades a verify-only entry in place. *)

val pin : ?sk:Group.scalar -> Group.element -> bool
(** Refcounted pin (insert if absent): the entry becomes non-evictable
    until {!release}d as many times. Saturates at {!capacity} — a
    failed pin returns [false] and the key simply stays on the
    un-keyed paths, so mass channel opens retain a bounded pool. *)

val pin_ctx : t -> bool
(** {!pin} with an already-built context: the pool shares the object
    (and its lazy table) instead of building a second one. *)

val release : Group.element -> unit
(** Drop one pin; at zero the entry remains as an evictable cache
    entry. No-op for unknown keys. *)

type stats = { live : int; pinned : int; tables : int }

val stats : unit -> stats
(** Pool occupancy on the calling domain: total entries, pinned
    entries, entries with a built table. *)

val clear : unit -> unit
(** Drop all pooled contexts on the calling domain, pins included. *)
