(** Schnorr adaptor signatures (pre-signatures) over {!Group}.

    Used only by the Generalized-channel baseline [Aumayr et al. 2021];
    Daric itself deliberately avoids adaptor signatures — reproducing
    that distinction is part of Table 1/Table 3 (column "Ada. Sig.
    Avoid." and the per-update exponentiation counts). *)

type statement = Group.element
(** Y = g^y for witness y. *)

type witness = Group.scalar

type pre_signature = { r : Group.element; s_pre : Group.scalar }

(** [gen_statement rng] draws a witness/statement pair. *)
let gen_statement (rng : Daric_util.Rng.t) : witness * statement =
  let y = 1 + Daric_util.Rng.int rng (Group.q - 1) in
  (y, Group.pow_g y)

(** [pre_sign sk y_stmt msg] produces a pre-signature valid w.r.t. the
    statement: it becomes a full Schnorr signature once adapted with the
    witness. *)
let pre_sign (sk : Schnorr.secret_key) (y_stmt : statement) (msg : string) :
    pre_signature =
  let k = Schnorr.nonce sk msg (Group.encode_element y_stmt) in
  let r = Group.pow_g k in
  let e = Schnorr.challenge (Group.mul r y_stmt) (Schnorr.public_key_of_secret sk) msg in
  { r; s_pre = Group.scalar_add k (Group.scalar_mul e sk) }

let pre_verify (pk : Schnorr.public_key) (y_stmt : statement) (msg : string)
    (ps : pre_signature) : bool =
  Group.is_element_fast ps.r
  &&
  let e = Schnorr.challenge (Group.mul ps.r y_stmt) pk msg in
  Group.dbl_pow Group.g ps.s_pre pk (Group.scalar_sub 0 e) = ps.r

(** [adapt ps y] completes a pre-signature into a full signature. *)
let adapt (ps : pre_signature) (y : witness) : Schnorr.signature =
  { Schnorr.r = Group.mul ps.r (Group.pow_g y);
    s = Group.scalar_add ps.s_pre y }

(** [extract full ps] recovers the witness from a published full
    signature and the corresponding pre-signature — this is how the
    Generalized channel identifies the publisher of a revoked state. *)
let extract (full : Schnorr.signature) (ps : pre_signature) : witness =
  Group.scalar_sub full.Schnorr.s ps.s_pre
