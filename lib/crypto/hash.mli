(** Bitcoin-style hash combinators and domain-separated hashing. *)

val hash256 : string -> string
(** Double SHA-256 (32 bytes) — transaction ids. *)

val hash160 : string -> string
(** SHA-256 then RIPEMD-160 (20 bytes) — P2WPKH programs. *)

val tagged : string -> string -> string
(** [tagged tag msg] is the BIP-340 style tagged hash
    [SHA256(SHA256(tag) || SHA256(tag) || msg)], separating the domains
    of nonces, challenges and sighashes. The per-tag 64-byte prefix is
    memoized (the repository uses a small fixed tag set). *)

val tagged_parts : string -> (string * int * int) list -> string
(** [tagged_parts tag parts] = [tagged tag (concat parts)] where each
    part is a [(string, off, len)] slice, computed from the cached tag
    midstate without materializing the concatenation. *)

val tagged_uncached : string -> string -> string
(** Reference path of {!tagged} recomputing the tag digest every call;
    the property tests assert pointwise agreement. *)

val digest_to_int : string -> int
(** Interpret the first 8 bytes of a digest as a non-negative int. *)
