(** Bitcoin-style hash combinators and domain-separated (tagged) hashing. *)

(** Double SHA-256, as used for transaction ids. *)
let hash256 (s : string) : string = Sha256.digest (Sha256.digest s)

(** SHA-256 then RIPEMD-160, as used for P2WPKH witness programs. *)
let hash160 (s : string) : string = Ripemd160.digest (Sha256.digest s)

(** Uncached BIP-340 style tagged hash:
    SHA256(SHA256(tag) || SHA256(tag) || msg). Reference path. *)
let tagged_uncached (tag : string) (msg : string) : string =
  let th = Sha256.digest tag in
  Sha256.digest (th ^ th ^ msg)

(* The repository uses a small fixed set of domain-separation tags
   ("daric/challenge", "daric/nonce", "daric/sighash", ...), so the
   *midstate* of each tagged hash — the SHA-256 chaining value after
   absorbing the 64-byte prefix SHA256(tag) || SHA256(tag), which is
   exactly one block — is cached. Every tagged call then pays only the
   message blocks: one compression and the prefix concatenation
   cheaper than rehashing the prefix. The cache is domain-local (one
   table per domain), so tagged hashing is safe from the Dpool worker
   domains that parallelize witness verification. *)
let tag_midstate_cache : (string, Sha256.st) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let tag_midstate (tag : string) : Sha256.st =
  let cache = Domain.DLS.get tag_midstate_cache in
  match Hashtbl.find_opt cache tag with
  | Some st -> st
  | None ->
      let th = Sha256.digest tag in
      let st = Sha256.st_create () in
      Sha256.st_feed st th 0 32;
      Sha256.st_feed st th 0 32;
      if Hashtbl.length cache >= 256 then Hashtbl.reset cache;
      Hashtbl.add cache tag st;
      st

(** BIP-340 style tagged hash: SHA256(SHA256(tag) || SHA256(tag) || msg).
    Used to domain-separate nonce derivation, challenges, etc.
    Equal to {!tagged_uncached}; the per-tag prefix midstate is
    memoized. *)
let tagged (tag : string) (msg : string) : string =
  Sha256.st_digest (tag_midstate tag) [ (msg, 0, String.length msg) ]

(** [tagged_parts tag parts] = {!tagged} of the concatenation of the
    [(string, off, len)] slices, computed without materializing it —
    the zero-copy path for sighashes over cached body encodings. *)
let tagged_parts (tag : string) (parts : (string * int * int) list) : string =
  Sha256.st_digest (tag_midstate tag) parts

(** Interpret the first 8 bytes of a digest as a non-negative int. *)
let digest_to_int (d : string) : int =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int
