(** Bitcoin-style hash combinators and domain-separated (tagged) hashing. *)

(** Double SHA-256, as used for transaction ids. *)
let hash256 (s : string) : string = Sha256.digest (Sha256.digest s)

(** SHA-256 then RIPEMD-160, as used for P2WPKH witness programs. *)
let hash160 (s : string) : string = Ripemd160.digest (Sha256.digest s)

(** Uncached BIP-340 style tagged hash:
    SHA256(SHA256(tag) || SHA256(tag) || msg). Reference path. *)
let tagged_uncached (tag : string) (msg : string) : string =
  let th = Sha256.digest tag in
  Sha256.digest (th ^ th ^ msg)

(* The repository uses a small fixed set of domain-separation tags
   ("daric/challenge", "daric/nonce", "daric/sighash", ...), so the
   64-byte prefix SHA256(tag) || SHA256(tag) of each tagged hash is
   cached — one full digest saved per call. The cache is domain-local
   (one table per domain), so tagged hashing is safe from the
   Dpool worker domains that parallelize witness verification. *)
let tag_prefix_cache : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let tag_prefix (tag : string) : string =
  let cache = Domain.DLS.get tag_prefix_cache in
  match Hashtbl.find_opt cache tag with
  | Some p -> p
  | None ->
      let th = Sha256.digest tag in
      let p = th ^ th in
      if Hashtbl.length cache >= 256 then Hashtbl.reset cache;
      Hashtbl.add cache tag p;
      p

(** BIP-340 style tagged hash: SHA256(SHA256(tag) || SHA256(tag) || msg).
    Used to domain-separate nonce derivation, challenges, etc.
    Equal to {!tagged_uncached}; the per-tag prefix is memoized. *)
let tagged (tag : string) (msg : string) : string =
  Sha256.digest (tag_prefix tag ^ msg)

(** Interpret the first 8 bytes of a digest as a non-negative int. *)
let digest_to_int (d : string) : int =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int
