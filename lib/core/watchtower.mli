(** Daric watchtower with O(1) per-channel storage: one fixed-size
    record per channel — the latest floating revocation transaction
    with both ANYPREVOUT signatures plus script-reconstruction
    parameters — *replaced* on every update, never accumulated.

    Records are retained packed by default: encoded bytes in a
    {!Daric_util.Arena} slot (a few large unscanned [Bytes] chunks the
    major GC never walks), decoded on demand. The boxed representation
    is kept behind the [Boxed] backend as the differential oracle.
    [unwatch] and the punish path reclaim the slot, so the heap tracks
    the guarded count, not the lifetime watch count. *)

module Tx = Daric_tx.Tx

type record = {
  channel_id : string;
  funding : Tx.outpoint;
  keys_a : Keys.pub;
  keys_b : Keys.pub;
  s0 : int;
  rel_lock : int;
  cash : int;
  client_role : Keys.role;
  revoked : int;  (** latest revoked state index (sn - 1) *)
  rev_body : Tx.t;
  sig_a : string;  (** revocation-branch signature, Alice position *)
  sig_b : string;
}

type backend =
  | Packed  (** arena-packed encoded records (default) *)
  | Boxed  (** plain boxed records — the differential-test oracle *)

type t

val create : ?backend:backend -> wid:string -> unit -> t

val wid : t -> string
val backend : t -> backend

val find_record : t -> string -> record option
(** The record currently guarding this channel, if any. O(1) lookup;
    the packed backend decodes the record on demand. *)

val record_valid : record -> bool
(** Batch-verify the record's two revocation-branch signatures against
    the counter-party commit's revocation keys. *)

val watch : t -> record -> bool
(** Install or replace a channel's record (constant storage; an
    in-place arena overwrite when the new encoding fits the slot).
    Returns [false] — keeping the previous record — when
    {!record_valid} rejects the signatures. *)

val restore_record : t -> fresh:bool -> record -> unit
(** Install a record without re-running {!record_valid} — the
    snapshot/WAL recovery path ({!Persist.restore_tower},
    {!Durable.recover}): the record was verified when first watched
    and the store is CRC-framed. [fresh] queues the channel for a
    direct funding check at the next poll. *)

val unwatch : t -> channel_id:string -> unit
(** Remove the channel and reclaim its record storage (the arena slot
    joins the free list; a boxed record is unpinned). *)

val punished : t -> string list
(** Channels on which the tower has reacted, newest first. *)

val punished_mem : t -> string -> bool

val mark_punished : t -> string -> unit
(** Replay a journaled punishment during recovery: record the fact
    without re-posting (idempotent), reclaiming the channel's record
    exactly as the live punish path does. *)

val cursor : t -> int
(** Position in the ledger's spent-outpoint log up to which this tower
    has monitored. *)

val set_cursor : t -> int -> unit
(** Restore the spent-log cursor (recovery). *)

val fresh_ids : t -> string list
(** Channels (re)watched since the last poll, newest first. *)

val fold_records : t -> (record -> 'a -> 'a) -> 'a -> 'a
(** Fold over every guarded record (decoded from the packed form). *)

val iter_record_blobs : t -> (string -> unit) -> unit
(** Iterate the {!encode_record} bytes of every guarded record — the
    packed backend blits them straight from the arena, so snapshots
    never decode/re-encode; both backends yield identical bytes. *)

val guarded_count : t -> int
(** Number of channels currently watched. O(1). *)

val record_bytes : record -> int
(** Serialized bytes retained per channel — constant in the number of
    updates (the Table 1 watchtower column). *)

val storage_bytes : t -> int

val arena_live_bytes : t -> int
(** Live packed-record bytes in the arena (0 for the boxed oracle). *)

val arena_capacity_bytes : t -> int
(** Arena chunk bytes allocated from the heap — bounded by peak
    concurrent watches, not lifetime churn. *)

val write_record : Daric_util.Byteio.Writer.t -> record -> unit
(** Append a record's encoding (the {!Persist} WAL/snapshot format —
    headerless; the frame carries the version). *)

val read_record : Daric_util.Byteio.Reader.t -> record
(** Inverse of {!write_record}; raises {!Daric_tx.Txcodec.Bad_blob} or
    [Reader.Truncated] on malformed input. Decoded ids, txids and
    signatures are interned. *)

val encode_record : record -> string
val decode_record_exn : string -> record

val end_of_round :
  t -> round:int -> ledger:Daric_chain.Ledger.t -> post:(Tx.t -> unit) -> unit
(** Complete and post the revocation transaction when a revoked
    counter-party commit appears, then reclaim the punished channel's
    record. Driven by the ledger's spent-outpoint log through a
    cursor: cost per round is O(newly watched records + newly spent
    outpoints), independent of the number of guarded channels and the
    chain length. *)

val end_of_round_scan :
  t -> round:int -> ledger:Daric_chain.Ledger.t -> post:(Tx.t -> unit) -> unit
(** Reference monitor with the pre-index cost shape — every guarded
    channel resolved through {!Daric_chain.Ledger.spender_of_scan},
    O(channels × history) per round. Reacts identically to
    {!end_of_round}; kept as benchmark baseline and test oracle. *)

val record_for : Party.t -> id:string -> record option
(** Build the current record from a party's channel state; [None]
    until the first update (state 0 has nothing to revoke). *)
