(** Daric watchtower with O(1) per-channel storage: one fixed-size
    record per channel — the latest floating revocation transaction
    with both ANYPREVOUT signatures plus script-reconstruction
    parameters — *replaced* on every update, never accumulated. *)

module Tx = Daric_tx.Tx

type record = {
  channel_id : string;
  funding : Tx.outpoint;
  keys_a : Keys.pub;
  keys_b : Keys.pub;
  s0 : int;
  rel_lock : int;
  cash : int;
  client_role : Keys.role;
  revoked : int;  (** latest revoked state index (sn - 1) *)
  rev_body : Tx.t;
  sig_a : string;  (** revocation-branch signature, Alice position *)
  sig_b : string;
}

type t

val create : wid:string -> unit -> t

val wid : t -> string

val find_record : t -> string -> record option
(** The record currently guarding this channel, if any. O(1). *)

val record_valid : record -> bool
(** Batch-verify the record's two revocation-branch signatures against
    the counter-party commit's revocation keys. *)

val watch : t -> record -> bool
(** Install or replace a channel's record (constant storage). Returns
    [false] — keeping the previous record — when {!record_valid}
    rejects the signatures. *)

val restore_record : t -> fresh:bool -> record -> unit
(** Install a record without re-running {!record_valid} — the
    snapshot/WAL recovery path ({!Persist.restore_tower},
    {!Durable.recover}): the record was verified when first watched
    and the store is CRC-framed. [fresh] queues the channel for a
    direct funding check at the next poll. *)

val unwatch : t -> channel_id:string -> unit

val punished : t -> string list
(** Channels on which the tower has reacted, newest first. *)

val punished_mem : t -> string -> bool

val mark_punished : t -> string -> unit
(** Replay a journaled punishment during recovery: record the fact
    without re-posting (idempotent). *)

val cursor : t -> int
(** Position in the ledger's spent-outpoint log up to which this tower
    has monitored. *)

val set_cursor : t -> int -> unit
(** Restore the spent-log cursor (recovery). *)

val fresh_ids : t -> string list
(** Channels (re)watched since the last poll, newest first. *)

val fold_records : t -> (record -> 'a -> 'a) -> 'a -> 'a
(** Fold over every guarded record (snapshot encoding). *)

val guarded_count : t -> int
(** Number of channels currently watched. O(1). *)

val record_bytes : record -> int
(** Serialized bytes retained per channel — constant in the number of
    updates (the Table 1 watchtower column). *)

val storage_bytes : t -> int

val end_of_round :
  t -> round:int -> ledger:Daric_chain.Ledger.t -> post:(Tx.t -> unit) -> unit
(** Complete and post the revocation transaction when a revoked
    counter-party commit appears. Driven by the ledger's spent-outpoint
    log through a cursor: cost per round is O(newly watched records +
    newly spent outpoints), independent of the number of guarded
    channels and the chain length. *)

val end_of_round_scan :
  t -> round:int -> ledger:Daric_chain.Ledger.t -> post:(Tx.t -> unit) -> unit
(** Reference monitor with the pre-index cost shape — every guarded
    channel resolved through {!Daric_chain.Ledger.spender_of_scan},
    O(channels × history) per round. Reacts identically to
    {!end_of_round}; kept as benchmark baseline and test oracle. *)

val record_for : Party.t -> id:string -> record option
(** Build the current record from a party's channel state; [None]
    until the first update (state 0 has nothing to revoke). *)
