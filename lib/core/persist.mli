(** Durable state codecs: versioned binary snapshots of a party's
    per-channel state and of a watchtower's full guarded-set state.

    The channel blob IS the party's entire per-channel storage —
    constant-size in the number of updates — and a restarted party can
    still update, close and punish from it. Only quiescent channels
    (no update/closure in flight) are persisted. The tower snapshot is
    the at-rest half of {!Durable}: snapshot every K rounds, journal
    deltas in a {!Daric_util.Wal} between snapshots, recover via
    {!restore_tower} + replay. *)

type error = Bad_magic | Bad_version | Truncated | Bad_field of string
(** Decoding failures: wrong leading magic, unknown format version,
    input exhausted mid-field, or a structurally invalid field
    (including trailing bytes, duplicate channel ids and
    not-quiescent encode refusals). *)

val error_to_string : error -> string

val encode_chan : Party.chan -> (string, error) result
(** Serialize a quiescent channel; [Error (Bad_field _)] names the
    blocking phase when an update or closure is in flight. *)

val restore_chan : Party.t -> string -> (unit, error) result
(** Restore a channel into a party that does not already track it.
    Rejects malformed, truncated or padded blobs. *)

val blob_size : Party.chan -> (int, error) result
(** Size of the encoded channel blob in bytes. *)

val encode_record : Watchtower.record -> string
(** One guarded-channel record, as journaled in a durable tower's WAL
    (headerless — the WAL frame carries the version). *)

val decode_record : string -> (Watchtower.record, error) result

val encode_tower : Watchtower.t -> string
(** Full tower snapshot: identity, every guarded record, the punished
    list, the fresh list and the spent-log cursor — O(guarded
    channels) bytes, each O(1). *)

val restore_tower : string -> (Watchtower.t, error) result
(** Rebuild a tower from {!encode_tower} output. Records install
    without signature re-verification — they were verified when
    watched and the store is CRC-framed. *)
