(** Durable watchtower: snapshot + write-ahead-log persistence around
    {!Watchtower}.

    Every state transition of the in-RAM tower is journaled to a
    CRC-framed {!Daric_util.Wal} *before* its external effect is
    released: [watch]/[unwatch] append the full record (it is O(1),
    so the WAL stays O(changes)), and [end_of_round] first runs the
    monitor with posts buffered, journals the round's punishments and
    the new spent-log cursor, and only then hands the buffered
    revocation transactions to the real [post]. Every K rounds the
    whole tower state (O(guarded channels) bytes) is snapshotted and
    the WAL is reset — so the store never exceeds one snapshot plus K
    rounds of deltas.

    Recovery is snapshot + replay: {!recover} loads the latest
    snapshot, replays the WAL suffix (idempotent events — a stale WAL
    over a newer snapshot re-applies harmlessly), and marks replayed
    watches fresh so the next poll re-checks their funding directly
    (it may have been spent while the tower was down). The spent-log
    cursor is restored, so everything spent after the crash is still
    scanned — a crashed-and-recovered tower punishes exactly what the
    never-crashed tower punishes. *)

module Wal = Daric_util.Wal
module Ledger = Daric_chain.Ledger
module Tx = Daric_tx.Tx

(* ---- stores ------------------------------------------------------- *)

(** Where the snapshot and the WAL live. The two members must refer to
    the same durable location family (e.g. [PATH.snap] and [PATH]). *)
type store = {
  wal_sink : Wal.Sink.t;
  save_snapshot : string -> unit;
  load_snapshot : unit -> string option;
  erase : unit -> unit;  (** drop both halves (fresh [create]) *)
}

(** Volatile store that survives a *simulated* crash: the in-RAM tower
    is dropped, the store object is kept — the test/bench "disk". *)
let memory_store () : store =
  let snapshot = ref None in
  let sink = Wal.Sink.memory () in
  { wal_sink = sink;
    save_snapshot = (fun s -> snapshot := Some s);
    load_snapshot = (fun () -> !snapshot);
    erase =
      (fun () ->
        snapshot := None;
        Wal.Sink.truncate sink 0) }

(** File-backed store: WAL at [path], snapshot at [path ^ ".snap"]
    (written to a temp file and renamed, so a crash mid-snapshot
    leaves the previous one intact). *)
let file_store (path : string) : store =
  let snap_path = path ^ ".snap" in
  let sink = Wal.Sink.file path in
  { wal_sink = sink;
    save_snapshot =
      (fun s ->
        let tmp = snap_path ^ ".tmp" in
        let oc = open_out_bin tmp in
        output_string oc s;
        close_out oc;
        Sys.rename tmp snap_path);
    load_snapshot =
      (fun () ->
        match open_in_bin snap_path with
        | exception Sys_error _ -> None
        | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                Some (really_input_string ic (in_channel_length ic))));
    erase =
      (fun () ->
        if Sys.file_exists snap_path then Sys.remove snap_path;
        Wal.Sink.truncate sink 0) }

(* ---- journal record kinds ---------------------------------------- *)

let k_watch = 1
let k_unwatch = 2
let k_punish = 3
let k_cursor = 4

let encode_cursor (c : int) : string =
  let w = Daric_util.Byteio.Writer.create () in
  Daric_util.Byteio.Writer.u64 w (Int64.of_int c);
  Daric_util.Byteio.Writer.contents w

let decode_cursor (s : string) : (int, Persist.error) result =
  if String.length s <> 8 then Error (Persist.Bad_field "bad cursor payload")
  else
    Ok
      (Int64.to_int
         (Daric_util.Byteio.Reader.u64 (Daric_util.Byteio.Reader.create s)))

(* ---- coordinator -------------------------------------------------- *)

type t = {
  tower : Watchtower.t;
  store : store;
  wal : Wal.t;
  snapshot_every : int;
  mutable rounds_since_snapshot : int;
  mutable journaled_punished : int;
      (** prefix of the tower's punished list already in the journal *)
  mutable journaled_cursor : int;
  mutable snapshots_taken : int;
  mutable last_snapshot_bytes : int;
}

let tower (t : t) : Watchtower.t = t.tower
let store (t : t) : store = t.store
let wal_bytes (t : t) : int = Wal.appended_bytes t.wal
let wal_size (t : t) : int = Wal.size t.wal
let snapshots_taken (t : t) : int = t.snapshots_taken
let snapshot_bytes (t : t) : int = t.last_snapshot_bytes

(** Snapshot now: persist the whole tower state, then reset the WAL.
    A crash between the two leaves snapshot + stale WAL, whose replay
    is idempotent. *)
let snapshot (t : t) : unit =
  let blob = Persist.encode_tower t.tower in
  t.store.save_snapshot blob;
  Wal.reset t.wal;
  t.snapshots_taken <- t.snapshots_taken + 1;
  t.last_snapshot_bytes <- String.length blob;
  t.rounds_since_snapshot <- 0

let mk ?(snapshot_every = 16) (tower : Watchtower.t) (store : store)
    (wal : Wal.t) : t =
  { tower;
    store;
    wal;
    snapshot_every = max 1 snapshot_every;
    rounds_since_snapshot = 0;
    journaled_punished = List.length (Watchtower.punished tower);
    journaled_cursor = Watchtower.cursor tower;
    snapshots_taken = 0;
    last_snapshot_bytes = 0 }

(** Fresh durable tower over an (erased) store. *)
let create ?snapshot_every ~(wid : string) (store : store) : t =
  store.erase ();
  match Wal.attach store.wal_sink with
  | Error _ | Ok (_, _ :: _, _) -> assert false (* just erased *)
  | Ok (wal, [], _) -> mk ?snapshot_every (Watchtower.create ~wid ()) store wal

type recovery = {
  t : t;
  replayed : int;  (** WAL records applied on top of the snapshot *)
  wal_status : Wal.status;  (** whether a torn tail was truncated *)
  had_snapshot : bool;
}

(** Rebuild from the store: load the snapshot (if any), replay the WAL
    suffix, restore the cursor. [wid] names the tower only when the
    store holds nothing yet. *)
let recover ?snapshot_every ~(wid : string) (store : store) :
    (recovery, Persist.error) result =
  let ( let* ) = Result.bind in
  let* tower, had_snapshot =
    match store.load_snapshot () with
    | None -> Ok (Watchtower.create ~wid (), false)
    | Some blob ->
        let* tw = Persist.restore_tower blob in
        Ok (tw, true)
  in
  let* wal, records, wal_status =
    match Wal.attach store.wal_sink with
    | Ok v -> Ok v
    | Error e -> Error (Persist.Bad_field (Wal.error_to_string e))
  in
  let* () =
    List.fold_left
      (fun acc (r : Wal.record) ->
        let* () = acc in
        if r.kind = k_watch then
          let* rec_ = Persist.decode_record r.payload in
          Ok (Watchtower.restore_record tower ~fresh:true rec_)
        else if r.kind = k_unwatch then
          Ok (Watchtower.unwatch tower ~channel_id:r.payload)
        else if r.kind = k_punish then
          Ok (Watchtower.mark_punished tower r.payload)
        else if r.kind = k_cursor then
          let* c = decode_cursor r.payload in
          Ok (Watchtower.set_cursor tower c)
        else Error (Persist.Bad_field (Fmt.str "unknown WAL kind %d" r.kind))
      )
      (Ok ()) records
  in
  let t = mk ?snapshot_every tower store wal in
  Ok { t; replayed = List.length records; wal_status; had_snapshot }

(* ---- journaled operations ----------------------------------------- *)

(** {!Watchtower.watch}, journaled: the record hits the WAL before
    [watch] returns. A crash earlier loses nothing the client cannot
    re-send. *)
let watch (t : t) (r : Watchtower.record) : bool =
  if Watchtower.watch t.tower r then begin
    Wal.append t.wal ~kind:k_watch (Persist.encode_record r);
    true
  end
  else false

let unwatch (t : t) ~(channel_id : string) : unit =
  match Watchtower.find_record t.tower channel_id with
  | None -> ()
  | Some _ ->
      Watchtower.unwatch t.tower ~channel_id;
      Wal.append t.wal ~kind:k_unwatch channel_id

(** One monitoring round with write-ahead semantics: run the monitor
    with posts buffered, journal the punishments and the cursor
    advance, then release the buffered revocation transactions.
    Snapshots every [snapshot_every] rounds. *)
let end_of_round (t : t) ~(round : int) ~(ledger : Ledger.t)
    ~(post : Tx.t -> unit) : unit =
  let buffered = ref [] in
  Watchtower.end_of_round t.tower ~round ~ledger ~post:(fun tx ->
      buffered := tx :: !buffered);
  let punished = Watchtower.punished t.tower in
  let n_new = List.length punished - t.journaled_punished in
  let new_ids = List.filteri (fun i _ -> i < n_new) punished in
  List.iter
    (fun cid -> Wal.append t.wal ~kind:k_punish cid)
    (List.rev new_ids);
  t.journaled_punished <- t.journaled_punished + n_new;
  let cursor = Watchtower.cursor t.tower in
  if cursor <> t.journaled_cursor then begin
    Wal.append t.wal ~kind:k_cursor (encode_cursor cursor);
    t.journaled_cursor <- cursor
  end;
  List.iter post (List.rev !buffered);
  t.rounds_since_snapshot <- t.rounds_since_snapshot + 1;
  if t.rounds_since_snapshot >= t.snapshot_every then snapshot t
