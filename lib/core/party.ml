(** Daric channel party: the protocol state machine of Appendix D.

    A party is driven by the simulation loop in three ways:
    - {!handle_msg} processes a message delivered by the authenticated
      network;
    - the [request_*] functions inject environment commands
      (INTRO/CREATE, UPDATE, CLOSE);
    - {!end_of_round} runs the Punish phase ("executed at the end of
      every round"), watches the funding output, schedules split
      transactions after the T-round delay, and fires the timeout
      (ForceClose) transitions.

    Environment round-trips (SETUP/SETUP-OK etc.) are modelled by a
    synchronous {!env_policy} consulted at the corresponding protocol
    step; tests inject rejecting policies to exercise every ForceClose
    branch. This collapses the paper's +-1-round environment hops but
    preserves the message/abort structure and all on-chain timings. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger

let src = Logs.Src.create "daric.party" ~doc:"Daric channel party"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)

(** Channel configuration fixed at INTRO time. *)
type config = {
  id : string;
  role : Keys.role;  (** which of the two asymmetric key positions we hold *)
  peer : string;  (** network identity of the counter-party *)
  bal_a : int;  (** initial balance of the Alice side *)
  bal_b : int;
  rel_lock : int;  (** the dispute window T (rounds), must exceed Delta *)
  s0 : int;  (** base of the state-number locktime encoding *)
}

let cash (cfg : config) : int = cfg.bal_a + cfg.bal_b

(** Environment decisions at the interactive protocol steps. *)
type env_policy = {
  approve_update : id:string -> theta:Tx.output list -> bool;  (** UPDATE-OK *)
  approve_setup : id:string -> bool;  (** SETUP-OK *)
  approve_setup' : id:string -> bool;  (** SETUP'-OK *)
  approve_revoke : id:string -> bool;  (** REVOKE *)
  approve_revoke' : id:string -> bool;  (** REVOKE' *)
  approve_close : id:string -> bool;  (** counter-party's CLOSE consent *)
}

let accept_all : env_policy =
  { approve_update = (fun ~id:_ ~theta:_ -> true);
    approve_setup = (fun ~id:_ -> true);
    approve_setup' = (fun ~id:_ -> true);
    approve_revoke = (fun ~id:_ -> true);
    approve_revoke' = (fun ~id:_ -> true);
    approve_close = (fun ~id:_ -> true) }

(** Events reported to the environment. *)
type event =
  | Created of string
  | Update_requested of string
  | Updated of string * int  (** new state number *)
  | Update_rejected of string
  | Closed of string
  | Punished of string
  | Aborted of string  (** channel creation failed *)
  | Force_closed of string  (** commit posted unilaterally *)
  | Protocol_error of string * string

let event_to_string = function
  | Created id -> "CREATED " ^ id
  | Update_requested id -> "UPDATE-REQ " ^ id
  | Updated (id, n) -> Fmt.str "UPDATED %s -> state %d" id n
  | Update_rejected id -> "UPDATE-REJECTED " ^ id
  | Closed id -> "CLOSED " ^ id
  | Punished id -> "PUNISHED " ^ id
  | Aborted id -> "ABORTED " ^ id
  | Force_closed id -> "FORCE-CLOSE " ^ id
  | Protocol_error (id, m) -> Fmt.str "ERROR %s: %s" id m

(** Operation counters (Table 3, "num. of operations"). Only signatures
    produced for the counter-party or the watchtower and verifications
    of received signatures are counted, matching Appendix H's counting
    rules. *)
type ops = { mutable signs : int; mutable verifies : int; mutable exps : int }

let ops_copy (o : ops) = { signs = o.signs; verifies = o.verifies; exps = o.exps }

(* ------------------------------------------------------------------ *)

(** The channel's own signing contexts, one per keypair — built once
    at INTRO and used by every [sign_counted], so deterministic
    signing's key-dependent setup (scalar encoding, public key) is
    paid per channel, not per signature. *)
type sctx = {
  x_main : Daric_crypto.Keyctx.t;
  x_sp : Daric_crypto.Keyctx.t;
  x_rv : Daric_crypto.Keyctx.t;
  x_rv' : Daric_crypto.Keyctx.t;
}

let sctx_of_keys (k : Keys.t) : sctx =
  let kc (kp : Keys.keypair) =
    Daric_crypto.Keyctx.create ~sk:kp.Keys.sk kp.Keys.pk
  in
  { x_main = kc k.Keys.main;
    x_sp = kc k.Keys.sp;
    x_rv = kc k.Keys.rv;
    x_rv' = kc k.Keys.rv' }

type split_data = { split_body : Tx.t; split_sig_a : string; split_sig_b : string }

(** In-progress update (the paper's Gamma'^P). *)
type update_ctx = {
  u_theta : Tx.output list;
  mutable u_commit_mine : Tx.t option;  (** fully signed state-(sn+1) commit *)
  u_commit_mine_body : Tx.t;
  u_commit_theirs_body : Tx.t;
  u_split_body : Tx.t;
      (** state-(sn+1) split body, generated once per update so later
          steps reuse its encoding memo instead of re-deriving it *)
  u_my_split_sig : string option;
      (** our own split signature, produced when the update began;
          deterministic signing makes any re-sign of the same body
          bit-identical, so later steps reuse these bytes *)
  mutable u_split : split_data option;
  u_initiator : bool;
}

type phase =
  | Await_create_info
  | Await_create_com
  | Await_create_fund
  | Await_funding_confirm
  | Refunding  (** refund posted after a create-phase abort *)
  | Operational
  | Upd_await_info  (** initiator sent updateReq *)
  | Upd_await_com_initiator  (** responder sent updateInfo *)
  | Upd_await_com_responder  (** initiator sent updateComP *)
  | Upd_await_revoke_initiator  (** responder sent updateComQ *)
  | Upd_await_revoke_responder  (** initiator sent revokeP *)
  | Close_await_ack
  | Close_await_confirm
  | Force_closed_waiting  (** commit posted; Punish daemon finishes up *)
  | Done

let phase_to_string = function
  | Await_create_info -> "await-create-info"
  | Await_create_com -> "await-create-com"
  | Await_create_fund -> "await-create-fund"
  | Await_funding_confirm -> "await-funding-confirm"
  | Refunding -> "refunding"
  | Operational -> "operational"
  | Upd_await_info -> "upd-await-info"
  | Upd_await_com_initiator -> "upd-await-com-initiator"
  | Upd_await_com_responder -> "upd-await-com-responder"
  | Upd_await_revoke_initiator -> "upd-await-revoke-initiator"
  | Upd_await_revoke_responder -> "upd-await-revoke-responder"
  | Close_await_ack -> "close-await-ack"
  | Close_await_confirm -> "close-await-confirm"
  | Force_closed_waiting -> "force-closed"
  | Done -> "done"

type chan = {
  cfg : config;
  keys : Keys.t;
  sctx : sctx;  (** own signing contexts, alive for the channel *)
  mutable pinned_pks : Daric_crypto.Schnorr.public_key list;
      (** keys this channel pinned in the {!Daric_crypto.Keyctx} pool
          (own and peer's); released exactly once, at Done *)
  mutable their_keys : Keys.pub option;
  mutable tid_mine : Tx.outpoint option;
  mutable tid_theirs : Tx.outpoint option;
  mutable fund : Tx.t option;  (** body; completed when posted *)
  mutable fund_sig_mine : string option;
  mutable fund_sig_theirs : string option;
  (* Latest committed state (the paper's Gamma^P). *)
  mutable sn : int;
  mutable st : Tx.output list;
  mutable flag : int;  (** 1 = single active state, 2 = update in flight *)
  mutable st' : Tx.output list option;
  mutable commit_mine : Tx.t option;  (** fully signed, postable *)
  mutable commit_theirs_body : Tx.t option;
  mutable split : split_data option;
  mutable rev_sig_theirs : string option;  (** Theta^P, revokes state sn-1 *)
  mutable rev_sig_mine : string option;  (** own sig, produced for the watchtower *)
  mutable pending : update_ctx option;
  mutable requested_theta : Tx.output list option;
      (** state we proposed in an outstanding updateReq *)
  mutable phase : phase;
  mutable deadline : int option;
  mutable fin_split : Tx.t option;  (** collaborative-close body *)
  (* Punish-daemon bookkeeping. *)
  mutable commit_on_chain : (int * Tx.outpoint * Script.t * int) option;
      (** (recorded round, outpoint, commit script, state index) *)
  mutable split_posted : bool;
  mutable punish_posted : Tx.t option;
  mutable outcome : event option;
}

type t = {
  pid : string;
  env : env_policy;
  rng : Daric_util.Rng.t;
  mutable chans : (string * chan) list;
  mutable outbox : (int * event) list;
  ops : ops;
}

(** Per-round I/O capabilities handed to the party by the driver. *)
type ctx = {
  round : int;
  ledger : Ledger.t;
  send : recipient:string -> Wire.msg -> unit;
  post : Tx.t -> unit;
}

let create ?(env = accept_all) ~(pid : string) ~(seed : int) () : t =
  { pid;
    env;
    rng = Daric_util.Rng.create ~seed;
    chans = [];
    outbox = [];
    ops = { signs = 0; verifies = 0; exps = 0 } }

let events (t : t) : (int * event) list = List.rev t.outbox
let ops (t : t) : ops = t.ops

let emit (t : t) (ctx : ctx) (ev : event) =
  Log.debug (fun m -> m "%s: %s" t.pid (event_to_string ev));
  t.outbox <- (ctx.round, ev) :: t.outbox

let find_chan (t : t) (id : string) : chan option = List.assoc_opt id t.chans

let chan_exn (t : t) (id : string) : chan =
  match find_chan t id with
  | Some c -> c
  | None -> invalid_arg ("unknown channel " ^ id)

(* ---- key/role helpers -------------------------------------------- *)

let keys_ab (c : chan) : Keys.pub * Keys.pub =
  let mine = Keys.pub c.keys in
  let theirs = Option.get c.their_keys in
  match c.cfg.role with Keys.Alice -> (mine, theirs) | Keys.Bob -> (theirs, mine)

let main_pks (c : chan) : Daric_crypto.Schnorr.public_key * Daric_crypto.Schnorr.public_key =
  let a, b = keys_ab c in
  (a.Keys.main_pk, b.Keys.main_pk)

(** Context signing the counter-party's revocation transaction
    (update steps 9/11): rv when we are Alice, rv' when we are Bob. *)
let rev_sign_ctx_for_theirs (c : chan) : Daric_crypto.Keyctx.t =
  match c.cfg.role with Keys.Alice -> c.sctx.x_rv | Keys.Bob -> c.sctx.x_rv'

(** Their public key verifying their signature on OUR revocation tx. *)
let rev_verify_key_for_mine (c : chan) : Daric_crypto.Schnorr.public_key =
  let theirs = Option.get c.their_keys in
  match c.cfg.role with Keys.Alice -> theirs.Keys.rv'_pk | Keys.Bob -> theirs.Keys.rv_pk

(** Context completing OUR OWN revocation transaction at punish time
    (and pre-signing it for the watchtower): rv' when we are Alice, rv
    when we are Bob. *)
let rev_complete_ctx_mine (c : chan) : Daric_crypto.Keyctx.t =
  match c.cfg.role with Keys.Alice -> c.sctx.x_rv' | Keys.Bob -> c.sctx.x_rv

(** My revocation transaction body for revoked state [revoked]. *)
let my_rev_body (c : chan) ~(revoked : int) : Tx.t =
  let pk_a, pk_b = main_pks c in
  let rv_a, rv_b =
    Txs.gen_revoke ~pk_a ~pk_b ~cash:(cash c.cfg) ~s0:c.cfg.s0 ~revoked
  in
  match c.cfg.role with Keys.Alice -> rv_a | Keys.Bob -> rv_b

(** Their revocation transaction body for revoked state [revoked]. *)
let their_rev_body (c : chan) ~(revoked : int) : Tx.t =
  let pk_a, pk_b = main_pks c in
  let rv_a, rv_b =
    Txs.gen_revoke ~pk_a ~pk_b ~cash:(cash c.cfg) ~s0:c.cfg.s0 ~revoked
  in
  match c.cfg.role with Keys.Alice -> rv_b | Keys.Bob -> rv_a

(** Witness order inside the revocation branch is (Alice key, Bob key). *)
let rev_witness_sigs (c : chan) ~(sig_mine : string) ~(sig_theirs : string) :
    string * string =
  match c.cfg.role with
  | Keys.Alice -> (sig_mine, sig_theirs)
  | Keys.Bob -> (sig_theirs, sig_mine)

(* ---- counted crypto operations ----------------------------------- *)

let sign_counted (t : t) (kc : Daric_crypto.Keyctx.t) (flag : Sighash.flag)
    (msg : string) : string =
  t.ops.signs <- t.ops.signs + 1;
  Sighash.sign_message_keyed kc flag msg

(* Pooled: the peer's keys are pinned at createInfo, so in-protocol
   verifications discharge through their window tables; after release
   (or pin saturation) the same call transparently takes the plain
   path with the same verdict. *)
let verify_counted (t : t) (pk : Daric_crypto.Schnorr.public_key) (msg : string)
    (sig_bytes : string) : bool =
  t.ops.verifies <- t.ops.verifies + 1;
  Sighash.verify_message_pooled
    (Daric_crypto.Schnorr.encode_public_key pk)
    msg sig_bytes

(* Pool residency over the channel lifecycle: pin at open, release at
   Done — the explicit reclaim discipline that keeps pool memory
   proportional to LIVE channels. Saturated (refused) pins are simply
   not recorded, so release stays balanced. *)

let pin_own_keys (c : chan) : Daric_crypto.Schnorr.public_key list =
  List.filter_map
    (fun kc ->
      if Daric_crypto.Keyctx.pin_ctx kc then Some (Daric_crypto.Keyctx.pk kc)
      else None)
    [ c.sctx.x_main; c.sctx.x_sp; c.sctx.x_rv; c.sctx.x_rv' ]

let pin_their_keys (theirs : Keys.pub) : Daric_crypto.Schnorr.public_key list =
  List.filter_map
    (fun pk -> if Daric_crypto.Keyctx.pin pk then Some pk else None)
    [ theirs.Keys.main_pk; theirs.Keys.sp_pk; theirs.Keys.rv_pk;
      theirs.Keys.rv'_pk ]

let release_chan_keys (c : chan) : unit =
  List.iter Daric_crypto.Keyctx.release c.pinned_pks;
  c.pinned_pks <- []

(** (Re)take the channel's pool pins — used after crash recovery
    reconstructs a [chan] outside the INTRO/createInfo path. *)
let repin_keys (c : chan) : unit =
  release_chan_keys c;
  let own = pin_own_keys c in
  let theirs =
    match c.their_keys with Some k -> pin_their_keys k | None -> []
  in
  c.pinned_pks <- theirs @ own

(* ---- transaction (re)construction helpers ------------------------ *)

let funding_outpoint (c : chan) : Tx.outpoint =
  Tx.outpoint_of (Option.get c.fund) 0

let gen_commits (c : chan) ~(i : int) : Tx.t * Tx.t =
  let keys_a, keys_b = keys_ab c in
  Txs.gen_commit ~funding:(funding_outpoint c) ~value:(cash c.cfg) ~keys_a
    ~keys_b ~s0:c.cfg.s0 ~i ~rel_lock:c.cfg.rel_lock

(** (my commit body, their commit body) for state [i]. *)
let commits_for_roles (c : chan) ~(i : int) : Tx.t * Tx.t =
  let cm_a, cm_b = gen_commits c ~i in
  match c.cfg.role with Keys.Alice -> (cm_a, cm_b) | Keys.Bob -> (cm_b, cm_a)

let commit_script_for (c : chan) ~(owner : Keys.role) ~(i : int) : Script.t =
  let keys_a, keys_b = keys_ab c in
  Txs.commit_script_of ~role:owner ~keys_a ~keys_b ~s0:c.cfg.s0 ~i
    ~rel_lock:c.cfg.rel_lock

(* ------------------------------------------------------------------ *)
(* Create phase.                                                       *)

(** INTRO: start creating the channel. [tid] must reference a P2WPKH
    output controlled by our main key holding our side's balance;
    tests that pre-mint that output pass the pre-generated [keys]. *)
let intro (t : t) (ctx : ctx) ?(keys : Keys.t option) ~(cfg : config)
    ~(tid : Tx.outpoint) () : unit =
  if List.mem_assoc cfg.id t.chans then invalid_arg "duplicate channel id";
  if cfg.rel_lock <= Ledger.delta ctx.ledger then
    invalid_arg "rel_lock (T) must exceed the ledger delay";
  let keys = match keys with Some k -> k | None -> Keys.generate t.rng in
  let c =
    { cfg;
      keys;
      sctx = sctx_of_keys keys;
      pinned_pks = [];
      their_keys = None;
      tid_mine = Some tid;
      tid_theirs = None;
      fund = None;
      fund_sig_mine = None;
      fund_sig_theirs = None;
      sn = 0;
      st = [];
      flag = 1;
      st' = None;
      commit_mine = None;
      commit_theirs_body = None;
      split = None;
      rev_sig_theirs = None;
      rev_sig_mine = None;
      pending = None;
      requested_theta = None;
      phase = Await_create_info;
      deadline = Some (ctx.round + 2);
      fin_split = None;
      commit_on_chain = None;
      split_posted = false;
      punish_posted = None;
      outcome = None }
  in
  t.chans <- (cfg.id, c) :: t.chans;
  c.pinned_pks <- pin_own_keys c;
  ctx.send ~recipient:cfg.peer
    (Wire.Create_info { id = cfg.id; tid; keys = Keys.pub keys })

let initial_state (c : chan) : Tx.output list =
  let pk_a, pk_b = main_pks c in
  Txs.balance_state ~pk_a ~pk_b ~bal_a:c.cfg.bal_a ~bal_b:c.cfg.bal_b

let on_create_info (t : t) (ctx : ctx) (c : chan) ~(tid : Tx.outpoint)
    ~(keys : Keys.pub) : unit =
  c.their_keys <- Some keys;
  c.pinned_pks <- pin_their_keys keys @ c.pinned_pks;
  c.tid_theirs <- Some tid;
  let pk_a, pk_b = main_pks c in
  let tid_a, tid_b =
    match c.cfg.role with
    | Keys.Alice -> (Option.get c.tid_mine, tid)
    | Keys.Bob -> (tid, Option.get c.tid_mine)
  in
  let fund = Txs.gen_fund ~tid_a ~tid_b ~cash:(cash c.cfg) ~pk_a ~pk_b in
  c.fund <- Some fund;
  c.st <- initial_state c;
  let _, commit_theirs = commits_for_roles c ~i:0 in
  let split0 = Txs.gen_split ~theta:c.st ~s0:c.cfg.s0 ~i:0 in
  let split_sig =
    sign_counted t c.sctx.x_sp Anyprevout (Txs.split_message split0)
  in
  let commit_sig =
    sign_counted t c.sctx.x_main All (Txs.commit_message commit_theirs)
  in
  c.phase <- Await_create_com;
  c.deadline <- Some (ctx.round + 2);
  ctx.send ~recipient:c.cfg.peer
    (Wire.Create_com { id = c.cfg.id; split_sig; commit_sig })

let on_create_com (t : t) (ctx : ctx) (c : chan) ~(split_sig : string)
    ~(commit_sig : string) : unit =
  let theirs = Option.get c.their_keys in
  let commit_mine_body, _ = commits_for_roles c ~i:0 in
  let split0 = Txs.gen_split ~theta:c.st ~s0:c.cfg.s0 ~i:0 in
  let split_ok =
    verify_counted t theirs.Keys.sp_pk (Txs.split_message split0) split_sig
  in
  let commit_ok =
    verify_counted t theirs.Keys.main_pk (Txs.commit_message commit_mine_body)
      commit_sig
  in
  if not (split_ok && commit_ok) then
    emit t ctx (Protocol_error (c.cfg.id, "invalid createCom signatures"))
  else begin
    (* Assemble state-0 data. *)
    let my_split_sig =
      Sighash.sign_message_keyed c.sctx.x_sp Anyprevout (Txs.split_message split0)
    in
    let sig_a, sig_b =
      match c.cfg.role with
      | Keys.Alice -> (my_split_sig, split_sig)
      | Keys.Bob -> (split_sig, my_split_sig)
    in
    c.split <- Some { split_body = split0; split_sig_a = sig_a; split_sig_b = sig_b };
    let my_commit_sig =
      Sighash.sign_message_keyed c.sctx.x_main All
        (Txs.commit_message commit_mine_body)
    in
    let sig_a, sig_b =
      match c.cfg.role with
      | Keys.Alice -> (my_commit_sig, commit_sig)
      | Keys.Bob -> (commit_sig, my_commit_sig)
    in
    let pk_a, pk_b = main_pks c in
    c.commit_mine <-
      Some (Txs.complete_commit commit_mine_body ~sig_a ~sig_b ~pk_a ~pk_b);
    let _, commit_theirs = commits_for_roles c ~i:0 in
    c.commit_theirs_body <- Some commit_theirs;
    (* Sign and send the funding transaction. *)
    let fund = Option.get c.fund in
    let fund_sig =
      sign_counted t c.sctx.x_main All (Txs.funding_message fund)
    in
    c.fund_sig_mine <- Some fund_sig;
    c.phase <- Await_create_fund;
    c.deadline <- Some (ctx.round + 2);
    ctx.send ~recipient:c.cfg.peer (Wire.Create_fund { id = c.cfg.id; fund_sig })
  end

let on_create_fund (t : t) (ctx : ctx) (c : chan) ~(fund_sig : string) : unit =
  let theirs = Option.get c.their_keys in
  let fund = Option.get c.fund in
  if not (verify_counted t theirs.Keys.main_pk (Txs.funding_message fund) fund_sig)
  then emit t ctx (Protocol_error (c.cfg.id, "invalid createFund signature"))
  else begin
    c.fund_sig_theirs <- Some fund_sig;
    let pk_a, pk_b = main_pks c in
    let sig_a, sig_b =
      match c.cfg.role with
      | Keys.Alice -> (Option.get c.fund_sig_mine, fund_sig)
      | Keys.Bob -> (fund_sig, Option.get c.fund_sig_mine)
    in
    let completed = Txs.complete_fund fund ~sig_a ~pk_a ~sig_b ~pk_b in
    ctx.post completed;
    c.phase <- Await_funding_confirm;
    c.deadline <- Some (ctx.round + 1 + Ledger.delta ctx.ledger)
  end

(** Abort channel creation by spending our own funding source back to
    ourselves (create step 5, Else branch). *)
let post_refund (t : t) (ctx : ctx) (c : chan) : unit =
  match (c.tid_mine, Ledger.find_utxo ctx.ledger (Option.get c.tid_mine)) with
  | Some tid, Some utxo ->
      let refund =
        Tx.make
          ~inputs:[ Tx.input_of_outpoint tid ]
          ~outputs:
            [ { Tx.value = utxo.output.value;
                spk =
                  Tx.P2wpkh
                    (Daric_crypto.Hash.hash160 (Keys.enc c.keys.Keys.main.pk)) } ]
          ()
      in
      let sig_mine = Sighash.sign c.keys.Keys.main.sk All refund ~input_index:0 in
      let refund =
        Tx.with_witnesses refund
          [ [ Tx.Data sig_mine; Tx.Data (Keys.enc c.keys.Keys.main.pk) ] ]
      in
      ctx.post refund;
      c.phase <- Refunding;
      c.deadline <- Some (ctx.round + 1 + Ledger.delta ctx.ledger)
  | _ ->
      c.phase <- Done;
      release_chan_keys c;
      emit t ctx (Aborted c.cfg.id)

(* ------------------------------------------------------------------ *)
(* ForceClose.                                                         *)

(** Post the newest fully-signed commit transaction (Appendix D,
    subprocedure ForceClose): state sn when flag = 1 or the new commit
    is not yet signed, state sn+1 otherwise. The Punish daemon then
    completes the closure by posting the matching split transaction
    after T rounds. *)
let force_close (t : t) (ctx : ctx) (c : chan) : unit =
  let commit =
    match (c.flag, c.pending) with
    | 2, Some { u_commit_mine = Some cm; _ } -> Some cm
    | _ -> c.commit_mine
  in
  match commit with
  | None ->
      (* Nothing enforceable yet (creation never completed). *)
      c.phase <- Done;
      release_chan_keys c;
      emit t ctx (Aborted c.cfg.id)
  | Some commit ->
      ctx.post commit;
      c.phase <- Force_closed_waiting;
      c.deadline <- None;
      emit t ctx (Force_closed c.cfg.id)

(* ------------------------------------------------------------------ *)
(* Update phase.                                                       *)

(** Update step 1 (initiator): request a state update to [theta]. *)
let request_update (t : t) (ctx : ctx) ~(id : string) ~(theta : Tx.output list)
    ?(tstp : int = 0) () : unit =
  let c = chan_exn t id in
  if c.phase <> Operational then invalid_arg "request_update: channel busy";
  if
    List.fold_left (fun a (o : Tx.output) -> a + o.value) 0 theta <> cash c.cfg
  then invalid_arg "request_update: state must redistribute exactly the cash";
  ctx.send ~recipient:c.cfg.peer (Wire.Update_req { id; theta; tstp });
  c.requested_theta <- Some theta;
  c.phase <- Upd_await_info;
  c.deadline <- Some (ctx.round + 2 + tstp)

(** Update steps 2-3 (responder): consult the environment; on approval,
    sign the new split transaction. *)
let on_update_req (t : t) (ctx : ctx) (c : chan) ~(theta : Tx.output list)
    ~(tstp : int) : unit =
  ignore tstp;
  emit t ctx (Update_requested c.cfg.id);
  if c.phase <> Operational then ()
  else if not (t.env.approve_update ~id:c.cfg.id ~theta) then
    emit t ctx (Update_rejected c.cfg.id)
  else begin
    let i' = c.sn + 1 in
    let commit_mine_body, commit_theirs_body = commits_for_roles c ~i:i' in
    let split_body = Txs.gen_split ~theta ~s0:c.cfg.s0 ~i:i' in
    let split_sig =
      sign_counted t c.sctx.x_sp Anyprevout (Txs.split_message split_body)
    in
    c.pending <-
      Some
        { u_theta = theta;
          u_commit_mine = None;
          u_commit_mine_body = commit_mine_body;
          u_commit_theirs_body = commit_theirs_body;
          u_split_body = split_body;
          u_my_split_sig = Some split_sig;
          u_split = None;
          u_initiator = false };
    c.phase <- Upd_await_com_initiator;
    c.deadline <- Some (ctx.round + 2);
    ctx.send ~recipient:c.cfg.peer (Wire.Update_info { id = c.cfg.id; split_sig })
  end

(** Update steps 4-5 (initiator): verify the responder's split
    signature; with the environment's SETUP-OK, sign the responder's
    commit and our own split signature. From here the channel has two
    potentially-enforceable states (flag = 2). *)
let on_update_info (t : t) (ctx : ctx) (c : chan) ~(split_sig : string)
    ~(theta : Tx.output list) : unit =
  let theirs = Option.get c.their_keys in
  let i' = c.sn + 1 in
  let commit_mine_body, commit_theirs_body = commits_for_roles c ~i:i' in
  let split_body = Txs.gen_split ~theta ~s0:c.cfg.s0 ~i:i' in
  if not (verify_counted t theirs.Keys.sp_pk (Txs.split_message split_body) split_sig)
  then begin
    emit t ctx (Protocol_error (c.cfg.id, "invalid updateInfo signature"));
    c.phase <- Operational;
    c.deadline <- None
  end
  else begin
    let my_split_sig =
      sign_counted t c.sctx.x_sp Anyprevout (Txs.split_message split_body)
    in
    let sig_a, sig_b =
      match c.cfg.role with
      | Keys.Alice -> (my_split_sig, split_sig)
      | Keys.Bob -> (split_sig, my_split_sig)
    in
    c.pending <-
      Some
        { u_theta = theta;
          u_commit_mine = None;
          u_commit_mine_body = commit_mine_body;
          u_commit_theirs_body = commit_theirs_body;
          u_split_body = split_body;
          u_my_split_sig = Some my_split_sig;
          u_split =
            Some { split_body; split_sig_a = sig_a; split_sig_b = sig_b };
          u_initiator = true };
    c.flag <- 2;
    c.st' <- Some theta;
    if not (t.env.approve_setup ~id:c.cfg.id) then force_close t ctx c
    else begin
      let commit_sig =
        sign_counted t c.sctx.x_main All
          (Txs.commit_message commit_theirs_body)
      in
      c.phase <- Upd_await_com_responder;
      c.deadline <- Some (ctx.round + 2);
      ctx.send ~recipient:c.cfg.peer
        (Wire.Update_com_initiator
           { id = c.cfg.id; split_sig = my_split_sig; commit_sig })
    end
  end

(** Update steps 6-7 (responder): verify the initiator's split and
    commit signatures; our new commit is now enforceable (flag = 2);
    with SETUP'-OK, sign the initiator's commit. *)
let on_update_com_initiator (t : t) (ctx : ctx) (c : chan)
    ~(split_sig : string) ~(commit_sig : string) : unit =
  match c.pending with
  | None -> ()
  | Some u ->
      let theirs = Option.get c.their_keys in
      let split_body = u.u_split_body in
      let split_ok =
        verify_counted t theirs.Keys.sp_pk (Txs.split_message split_body)
          split_sig
      in
      let commit_ok =
        verify_counted t theirs.Keys.main_pk
          (Txs.commit_message u.u_commit_mine_body)
          commit_sig
      in
      if not (split_ok && commit_ok) then begin
        emit t ctx (Protocol_error (c.cfg.id, "invalid updateComP signatures"));
        force_close t ctx c
      end
      else begin
        let my_split_sig =
          match u.u_my_split_sig with
          | Some s ->
              (* Deterministic signing: our updateInfo signature over
                 this very body is bit-identical, so reuse the bytes.
                 Still counted — the ops counters report the protocol's
                 Table-3 cost model, not the memoization. *)
              t.ops.signs <- t.ops.signs + 1;
              s
          | None ->
              sign_counted t c.sctx.x_sp Anyprevout
                (Txs.split_message split_body)
        in
        let sig_a, sig_b =
          match c.cfg.role with
          | Keys.Alice -> (my_split_sig, split_sig)
          | Keys.Bob -> (split_sig, my_split_sig)
        in
        u.u_split <-
          Some { split_body; split_sig_a = sig_a; split_sig_b = sig_b };
        let my_commit_sig =
          Sighash.sign_message_keyed c.sctx.x_main All
            (Txs.commit_message u.u_commit_mine_body)
        in
        let csig_a, csig_b =
          match c.cfg.role with
          | Keys.Alice -> (my_commit_sig, commit_sig)
          | Keys.Bob -> (commit_sig, my_commit_sig)
        in
        let pk_a, pk_b = main_pks c in
        u.u_commit_mine <-
          Some
            (Txs.complete_commit u.u_commit_mine_body ~sig_a:csig_a
               ~sig_b:csig_b ~pk_a ~pk_b);
        c.flag <- 2;
        c.st' <- Some u.u_theta;
        if not (t.env.approve_setup' ~id:c.cfg.id) then force_close t ctx c
        else begin
          let commit_sig =
            sign_counted t c.sctx.x_main All
              (Txs.commit_message u.u_commit_theirs_body)
          in
          c.phase <- Upd_await_revoke_initiator;
          c.deadline <- Some (ctx.round + 2);
          ctx.send ~recipient:c.cfg.peer
            (Wire.Update_com_responder { id = c.cfg.id; commit_sig })
        end
      end

(** Update steps 8-9 (initiator): our new commit is enforceable; with
    the environment's REVOKE, revoke state sn by signing the
    counter-party's floating revocation transaction. *)
let on_update_com_responder (t : t) (ctx : ctx) (c : chan)
    ~(commit_sig : string) : unit =
  match c.pending with
  | None -> ()
  | Some u ->
      let theirs = Option.get c.their_keys in
      if
        not
          (verify_counted t theirs.Keys.main_pk
             (Txs.commit_message u.u_commit_mine_body)
             commit_sig)
      then begin
        emit t ctx (Protocol_error (c.cfg.id, "invalid updateComQ signature"));
        force_close t ctx c
      end
      else begin
        let my_commit_sig =
          Sighash.sign_message_keyed c.sctx.x_main All
            (Txs.commit_message u.u_commit_mine_body)
        in
        let sig_a, sig_b =
          match c.cfg.role with
          | Keys.Alice -> (my_commit_sig, commit_sig)
          | Keys.Bob -> (commit_sig, my_commit_sig)
        in
        let pk_a, pk_b = main_pks c in
        u.u_commit_mine <-
          Some
            (Txs.complete_commit u.u_commit_mine_body ~sig_a ~sig_b ~pk_a ~pk_b);
        if not (t.env.approve_revoke ~id:c.cfg.id) then force_close t ctx c
        else begin
          let rev_theirs = their_rev_body c ~revoked:c.sn in
          let rev_sig =
            sign_counted t (rev_sign_ctx_for_theirs c) Anyprevout
              (Txs.revoke_message rev_theirs)
          in
          c.phase <- Upd_await_revoke_responder;
          c.deadline <- Some (ctx.round + 2);
          ctx.send ~recipient:c.cfg.peer
            (Wire.Revoke_initiator { id = c.cfg.id; rev_sig })
        end
      end

(** Their public key under which we verify the revocation signature we
    receive (it covers OUR revocation tx): their rv' when we are Alice,
    their rv when we are Bob. *)
let rev_verify_pk (c : chan) : Daric_crypto.Schnorr.public_key =
  rev_verify_key_for_mine c

(** Commit the pending state: the paper's step-10/12 bookkeeping common
    to both parties, including pre-signing our own revocation
    transaction for the watchtower. *)
let finalize_update (t : t) (ctx : ctx) (c : chan) (u : update_ctx)
    ~(rev_sig : string) : unit =
  c.rev_sig_theirs <- Some rev_sig;
  c.sn <- c.sn + 1;
  c.st <- u.u_theta;
  c.flag <- 1;
  c.st' <- None;
  c.commit_mine <- u.u_commit_mine;
  c.commit_theirs_body <- Some u.u_commit_theirs_body;
  c.split <- u.u_split;
  c.pending <- None;
  c.phase <- Operational;
  c.deadline <- None;
  (* Pre-sign our own revocation transaction for the watchtower
     (counted: it is sent off-device). *)
  let my_rev = my_rev_body c ~revoked:(c.sn - 1) in
  c.rev_sig_mine <-
    Some
      (sign_counted t (rev_complete_ctx_mine c) Anyprevout
         (Txs.revoke_message my_rev));
  emit t ctx (Updated (c.cfg.id, c.sn))

(** Update steps 10-11 (responder): verify the revocation signature,
    commit the new state, and with REVOKE' send our own revocation
    signature back. *)
let on_revoke_initiator (t : t) (ctx : ctx) (c : chan) ~(rev_sig : string) :
    unit =
  match c.pending with
  | None -> ()
  | Some u ->
      let my_rev = my_rev_body c ~revoked:c.sn in
      if
        not
          (verify_counted t (rev_verify_pk c) (Txs.revoke_message my_rev)
             rev_sig)
      then begin
        emit t ctx (Protocol_error (c.cfg.id, "invalid revokeP signature"));
        force_close t ctx c
      end
      else if not (t.env.approve_revoke' ~id:c.cfg.id) then force_close t ctx c
      else begin
        let rev_theirs = their_rev_body c ~revoked:c.sn in
        let their_rev_sig =
          sign_counted t (rev_sign_ctx_for_theirs c) Anyprevout
            (Txs.revoke_message rev_theirs)
        in
        finalize_update t ctx c u ~rev_sig;
        ctx.send ~recipient:c.cfg.peer
          (Wire.Revoke_responder { id = c.cfg.id; rev_sig = their_rev_sig })
      end

(** Update step 12 (initiator): verify and store the responder's
    revocation signature; the update is complete. *)
let on_revoke_responder (t : t) (ctx : ctx) (c : chan) ~(rev_sig : string) :
    unit =
  match c.pending with
  | None -> ()
  | Some u ->
      let my_rev = my_rev_body c ~revoked:c.sn in
      if
        not
          (verify_counted t (rev_verify_pk c) (Txs.revoke_message my_rev)
             rev_sig)
      then begin
        emit t ctx (Protocol_error (c.cfg.id, "invalid revokeQ signature"));
        force_close t ctx c
      end
      else finalize_update t ctx c u ~rev_sig

(* ------------------------------------------------------------------ *)
(* Close phase.                                                        *)

(** CLOSE (requester): propose a collaborative close with the modified
    split transaction spending the funding output directly. *)
let request_close (t : t) (ctx : ctx) ~(id : string) : unit =
  let c = chan_exn t id in
  if c.phase <> Operational then invalid_arg "request_close: channel busy";
  let fin = Txs.gen_fin_split ~funding:(funding_outpoint c) ~theta:c.st in
  let fin_sig =
    sign_counted t c.sctx.x_main All (Txs.fin_split_message fin)
  in
  c.fin_split <- Some fin;
  c.phase <- Close_await_ack;
  c.deadline <- Some (ctx.round + 2);
  ctx.send ~recipient:c.cfg.peer (Wire.Close_req { id; fin_sig })

let on_close_req (t : t) (ctx : ctx) (c : chan) ~(fin_sig : string) : unit =
  if c.phase <> Operational then ()
  else if not (t.env.approve_close ~id:c.cfg.id) then ()
    (* staying silent forces the requester into ForceClose, as in the
       ideal functionality's "Q disagreed" branch *)
  else begin
    let theirs = Option.get c.their_keys in
    let fin = Txs.gen_fin_split ~funding:(funding_outpoint c) ~theta:c.st in
    if
      not
        (verify_counted t theirs.Keys.main_pk (Txs.fin_split_message fin)
           fin_sig)
    then emit t ctx (Protocol_error (c.cfg.id, "invalid closeP signature"))
    else begin
      let my_sig =
        sign_counted t c.sctx.x_main All (Txs.fin_split_message fin)
      in
      c.fin_split <- Some fin;
      c.phase <- Close_await_confirm;
      c.deadline <- Some (ctx.round + 2 + Ledger.delta ctx.ledger);
      ctx.send ~recipient:c.cfg.peer
        (Wire.Close_ack { id = c.cfg.id; fin_sig = my_sig })
    end
  end

let on_close_ack (t : t) (ctx : ctx) (c : chan) ~(fin_sig : string) : unit =
  match (c.phase, c.fin_split) with
  | Close_await_ack, Some fin ->
      let theirs = Option.get c.their_keys in
      if
        not
          (verify_counted t theirs.Keys.main_pk (Txs.fin_split_message fin)
             fin_sig)
      then begin
        emit t ctx (Protocol_error (c.cfg.id, "invalid closeQ signature"));
        force_close t ctx c
      end
      else begin
        let my_sig =
          Sighash.sign_message_keyed c.sctx.x_main All
            (Txs.fin_split_message fin)
        in
        let sig_a, sig_b =
          match c.cfg.role with
          | Keys.Alice -> (my_sig, fin_sig)
          | Keys.Bob -> (fin_sig, my_sig)
        in
        let pk_a, pk_b = main_pks c in
        ctx.post (Txs.complete_fin_split fin ~sig_a ~sig_b ~pk_a ~pk_b);
        c.phase <- Close_await_confirm;
        c.deadline <- Some (ctx.round + 1 + Ledger.delta ctx.ledger)
      end
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Punish daemon.                                                      *)

let outputs_equal (a : Tx.output list) (b : Tx.output list) : bool =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Tx.output) (y : Tx.output) ->
         x.value = y.value
         &&
         match (x.spk, y.spk) with
         | Tx.P2wsh h1, Tx.P2wsh h2 | Tx.P2wpkh h1, Tx.P2wpkh h2 ->
             String.equal h1 h2
         | Tx.Raw s1, Tx.Raw s2 ->
             String.equal (Script.serialize s1) (Script.serialize s2)
         | Tx.Op_return, Tx.Op_return -> true
         | _ -> false)
       a b

(** Bodies of the currently-enforceable commit transactions — the
    paper's set I. *)
let enforceable_commit_txids (c : chan) : (string * int * Keys.role) list =
  let base =
    List.filter_map
      (fun (tx, i, owner) ->
        Option.map (fun tx -> (Tx.txid tx, i, owner)) tx)
      [ (c.commit_mine, c.sn, c.cfg.role);
        (c.commit_theirs_body, c.sn, Keys.other_role c.cfg.role) ]
  in
  match c.pending with
  | Some u when c.flag = 2 ->
      base
      @ [ (Tx.txid u.u_commit_mine_body, c.sn + 1, c.cfg.role);
          (Tx.txid u.u_commit_theirs_body, c.sn + 1, Keys.other_role c.cfg.role) ]
  | _ -> base

(** Punish a revoked commit: complete the latest floating revocation
    transaction with the published commit's output as input and post it
    instantly (Section 4.4). The revoked commit's state index is read
    from its sequence field to reconstruct the hidden P2WSH script. *)
let punish (t : t) (ctx : ctx) (c : chan) (published : Tx.t) : unit =
  match c.rev_sig_theirs with
  | None ->
      emit t ctx
        (Protocol_error (c.cfg.id, "foreign spend of funding output (forgery?)"))
  | Some sig_theirs ->
      let revoked_index =
        match published.Tx.inputs with
        | [ input ] -> input.sequence
        | _ -> -1
      in
      let owner = Keys.other_role c.cfg.role in
      let script = commit_script_for c ~owner ~i:revoked_index in
      let spk_matches =
        match published.Tx.outputs with
        | [ { Tx.spk = Tx.P2wsh h; _ } ] -> String.equal h (Script.hash script)
        | _ -> false
      in
      if not spk_matches then
        emit t ctx
          (Protocol_error (c.cfg.id, "unrecognized spend of funding output"))
      else begin
        let my_rev = my_rev_body c ~revoked:(c.sn - 1) in
        let sig_mine =
          match c.rev_sig_mine with
          | Some s -> s
          | None ->
              Sighash.sign_message_keyed (rev_complete_ctx_mine c) Anyprevout
                (Txs.revoke_message my_rev)
        in
        let sig1, sig2 = rev_witness_sigs c ~sig_mine ~sig_theirs in
        let rv =
          Txs.complete_revocation my_rev
            ~commit_outpoint:(Tx.outpoint_of published 0)
            ~commit_script:script ~sig1 ~sig2
        in
        ctx.post rv;
        c.punish_posted <- Some rv
      end

(** Post the split transaction matching the on-chain commit, once T
    rounds have elapsed since the commit was recorded. *)
let try_post_split (t : t) (ctx : ctx) (c : chan) : unit =
  match c.commit_on_chain with
  | Some (recorded, outpoint, script, idx) when not c.split_posted ->
      if ctx.round - recorded >= c.cfg.rel_lock then begin
        let split =
          if idx = c.sn then c.split
          else
            match c.pending with Some u -> u.u_split | None -> None
        in
        match split with
        | None ->
            emit t ctx
              (Protocol_error (c.cfg.id, "no split transaction for on-chain commit"))
        | Some sd ->
            let tx =
              Txs.complete_split sd.split_body ~commit_outpoint:outpoint
                ~commit_script:script ~sig_a:sd.split_sig_a
                ~sig_b:sd.split_sig_b
            in
            ctx.post tx;
            c.split_posted <- true
      end
  | _ -> ()

let settle (t : t) (ctx : ctx) (c : chan) (ev : event) : unit =
  c.phase <- Done;
  release_chan_keys c;
  c.deadline <- None;
  c.outcome <- Some ev;
  emit t ctx ev

(** The Punish phase, executed at the end of every round: watch the
    funding output and react to whatever spent it. *)
let punish_daemon (t : t) (ctx : ctx) (c : chan) : unit =
  match c.fund with
  | None -> ()
  | Some fund -> (
      let fund_op = Tx.outpoint_of fund 0 in
      match Ledger.spender_of ctx.ledger fund_op with
      | None -> ()
      | Some spender -> (
          (* Creation completed under us even if we were mid-abort. *)
          (match c.phase with
          | Await_funding_confirm | Refunding ->
              c.phase <- Operational;
              c.deadline <- None;
              emit t ctx (Created c.cfg.id)
          | _ -> ());
          let spender_id = Tx.txid spender in
          match
            List.find_opt
              (fun (txid, _, _) -> String.equal txid spender_id)
              (enforceable_commit_txids c)
          with
          | Some (_, idx, owner) -> (
              (* A valid commit: schedule the matching split after T. *)
              (if c.commit_on_chain = None then
                 let script = commit_script_for c ~owner ~i:idx in
                 let recorded =
                   match Ledger.recorded_round_of ctx.ledger spender_id with
                   | Some r -> r
                   | None -> ctx.round
                 in
                 c.commit_on_chain <-
                   Some (recorded, Tx.outpoint_of spender 0, script, idx));
              try_post_split t ctx c;
              (* Did something spend the commit output? *)
              let _, commit_op, _, _ = Option.get c.commit_on_chain in
              match Ledger.spender_of ctx.ledger commit_op with
              | None -> ()
              | Some settlement ->
                  let expected_st =
                    outputs_equal settlement.Tx.outputs c.st
                    ||
                    match c.st' with
                    | Some st' -> outputs_equal settlement.Tx.outputs st'
                    | None -> false
                  in
                  if expected_st then settle t ctx c (Closed c.cfg.id)
                  else begin
                    (* Our old commit was punished (we must have been
                       acting dishonestly) — or a forgery occurred. *)
                    settle t ctx c
                      (Protocol_error (c.cfg.id, "commit output claimed by revocation"))
                  end)
          | None ->
              (* Not an enforceable commit: expected closure or fraud. *)
              let expected_st =
                outputs_equal spender.Tx.outputs c.st
                ||
                match c.st' with
                | Some st' -> outputs_equal spender.Tx.outputs st'
                | None -> false
              in
              if expected_st then settle t ctx c (Closed c.cfg.id)
              else (
                match c.punish_posted with
                | Some rv ->
                    (* Already reacting: settle once the revocation lands. *)
                    if not (Ledger.is_unspent ctx.ledger fund_op) then
                      let rv_op = Tx.outpoint_of rv 0 in
                      if Ledger.find_utxo ctx.ledger rv_op <> None then
                        settle t ctx c (Punished c.cfg.id)
                | None -> punish t ctx c spender)))

(** Create step 6: once the funding transaction is recorded, the
    channel becomes operational. Also resolves the refund race — if the
    funding lands despite a posted refund, the channel proceeds (all
    state-0 data is already in hand). *)
let check_funding_confirmed (t : t) (ctx : ctx) (c : chan) : unit =
  match (c.phase, c.fund) with
  | (Await_funding_confirm | Refunding), Some fund ->
      if Ledger.is_unspent ctx.ledger (Tx.outpoint_of fund 0) then begin
        c.phase <- Operational;
        c.deadline <- None;
        emit t ctx (Created c.cfg.id)
      end
  | _ -> ()

(** Timeout transitions. *)
let check_deadline (t : t) (ctx : ctx) (c : chan) : unit =
  match c.deadline with
  | Some d when ctx.round >= d -> (
      c.deadline <- None;
      match c.phase with
      | Await_create_info | Await_create_com -> post_refund t ctx c
      | Await_create_fund -> post_refund t ctx c
      | Await_funding_confirm | Refunding ->
          (* Neither the funding nor the refund made it: report and stop. *)
          c.phase <- Done;
          release_chan_keys c;
          emit t ctx (Aborted c.cfg.id)
      | Upd_await_info ->
          (* Responder declined or vanished before revealing anything:
             the update simply does not happen (consensus on update). *)
          c.pending <- None;
          c.phase <- Operational;
          emit t ctx (Update_rejected c.cfg.id)
      | Upd_await_com_initiator | Upd_await_com_responder
      | Upd_await_revoke_initiator | Upd_await_revoke_responder ->
          force_close t ctx c
      | Close_await_ack -> force_close t ctx c
      | Close_await_confirm ->
          if c.outcome = None then
            emit t ctx (Protocol_error (c.cfg.id, "close did not confirm in time"))
      | Operational | Force_closed_waiting | Done -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Driver entry points.                                                *)

(** Process one delivered protocol message. Ill-formed or unexpected
    messages are dropped (protocol wrapper W_P of Appendix F). *)
let handle_msg (t : t) (ctx : ctx) (env : Wire.msg Daric_chain.Network.envelope)
    : unit =
  let msg = env.payload in
  match find_chan t (Wire.channel_id msg) with
  | None -> ()
  | Some c -> (
      if not (String.equal env.sender c.cfg.peer) then ()
      else
        match (msg, c.phase) with
        | Wire.Create_info { tid; keys; _ }, Await_create_info ->
            on_create_info t ctx c ~tid ~keys
        | Wire.Create_com { split_sig; commit_sig; _ }, Await_create_com ->
            on_create_com t ctx c ~split_sig ~commit_sig
        | Wire.Create_fund { fund_sig; _ }, Await_create_fund ->
            on_create_fund t ctx c ~fund_sig
        | Wire.Update_req { theta; tstp; _ }, Operational ->
            on_update_req t ctx c ~theta ~tstp
        | Wire.Update_info { split_sig; _ }, Upd_await_info -> (
            match c.pending with
            | Some _ -> ()
            | None -> (
                (* theta travelled in our own Update_req; we keep it in
                   the deadline closure — reconstruct from the request *)
                match c.requested_theta with
                | Some theta -> on_update_info t ctx c ~split_sig ~theta
                | None -> ()))
        | Wire.Update_com_initiator { split_sig; commit_sig; _ },
          Upd_await_com_initiator ->
            on_update_com_initiator t ctx c ~split_sig ~commit_sig
        | Wire.Update_com_responder { commit_sig; _ }, Upd_await_com_responder
          ->
            on_update_com_responder t ctx c ~commit_sig
        | Wire.Revoke_initiator { rev_sig; _ }, Upd_await_revoke_initiator ->
            on_revoke_initiator t ctx c ~rev_sig
        | Wire.Revoke_responder { rev_sig; _ }, Upd_await_revoke_responder ->
            on_revoke_responder t ctx c ~rev_sig
        | Wire.Close_req { fin_sig; _ }, Operational ->
            on_close_req t ctx c ~fin_sig
        | Wire.Close_ack { fin_sig; _ }, Close_await_ack ->
            on_close_ack t ctx c ~fin_sig
        | _ -> Log.debug (fun m -> m "%s: dropping %s" t.pid (Wire.kind msg)))

(** End-of-round processing: Punish daemon, split scheduling, timeouts. *)
let end_of_round (t : t) (ctx : ctx) : unit =
  List.iter
    (fun (_, c) ->
      if c.phase <> Done then begin
        check_funding_confirmed t ctx c;
        punish_daemon t ctx c;
        if c.phase <> Done then begin
          try_post_split t ctx c;
          check_deadline t ctx c
        end
      end)
    t.chans
