(** Daric transaction generators (Appendix D subprocedures GenFund,
    GenCommit, GenSplit, GenRevoke, GenFinSplit), the Appendix-B output
    scripts, and the witness-completion helpers that turn floating
    transactions into postable ones. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script

(* ------------------------------------------------------------------ *)
(* Scripts (Appendix B).                                               *)

(* Script generation and hashing are on the per-update hot path
   (every commit pair rebuilds and rehashes its output scripts), but
   the inputs are a handful of ints — public keys are group elements,
   locks are heights — so scripts and their P2WSH hashes are memoized
   on exactly those ints. Domain-local like the crypto memo tables;
   bounded, reset wholesale when full. *)
let memo_max = 1 lsl 14

let memoize (type k v) () : (k -> v) -> k -> v =
  let table : (k, v) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 256)
  in
  fun compute key ->
    let cache = Domain.DLS.get table in
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
        let v = compute key in
        if Hashtbl.length cache >= memo_max then Hashtbl.reset cache;
        Hashtbl.add cache key v;
        v

let funding_memo :
    (Daric_crypto.Schnorr.public_key * Daric_crypto.Schnorr.public_key ->
    Script.t * string) ->
    Daric_crypto.Schnorr.public_key * Daric_crypto.Schnorr.public_key ->
    Script.t * string =
  memoize ()

let funding_script_and_hash ~pk_a ~pk_b : Script.t * string =
  funding_memo
    (fun (pk_a, pk_b) ->
      let s = Script.multisig_2 (Keys.enc pk_a) (Keys.enc pk_b) in
      (s, Script.hash s))
    (pk_a, pk_b)

(** Funding output: [2 <pkA> <pkB> 2 OP_CHECKMULTISIG] behind P2WSH. *)
let funding_script ~(pk_a : Daric_crypto.Schnorr.public_key)
    ~(pk_b : Daric_crypto.Schnorr.public_key) : Script.t =
  fst (funding_script_and_hash ~pk_a ~pk_b)

(** The P2WPKH payout condition of a public key; the hash160 of the
    33-byte encoding is memoized per key. *)
let p2wpkh_memo :
    (Daric_crypto.Schnorr.public_key -> Tx.spk) ->
    Daric_crypto.Schnorr.public_key ->
    Tx.spk =
  memoize ()

let p2wpkh_spk (pk : Daric_crypto.Schnorr.public_key) : Tx.spk =
  p2wpkh_memo
    (fun pk -> Tx.P2wpkh (Daric_crypto.Hash.hash160 (Keys.enc pk)))
    pk

(** Commit output script:
    [<S0+i> CLTV DROP
     IF    2 <rev1> <rev2> 2 CHECKMULTISIG          (revocation branch)
     ELSE  <T> CSV DROP 2 <spl1> <spl2> 2 CHECKMULTISIG  (split branch)
     ENDIF]
    157 bytes under the Appendix-H size conventions. *)
let commit_memo :
    (int * int * int * int * int * int -> Script.t * string) ->
    int * int * int * int * int * int ->
    Script.t * string =
  memoize ()

let commit_script_and_hash ~(abs_lock : int) ~(rel_lock : int) ~rev_pk1
    ~rev_pk2 ~spl_pk1 ~spl_pk2 : Script.t * string =
  commit_memo
    (fun (abs_lock, rel_lock, rev_pk1, rev_pk2, spl_pk1, spl_pk2) ->
      let s =
        [ Script.Num abs_lock; Cltv; Drop; If; Small 2;
          Push (Keys.enc rev_pk1); Push (Keys.enc rev_pk2); Small 2;
          Checkmultisig; Else; Num rel_lock; Csv; Drop; Small 2;
          Push (Keys.enc spl_pk1); Push (Keys.enc spl_pk2); Small 2;
          Checkmultisig; Endif ]
      in
      (s, Script.hash s))
    (abs_lock, rel_lock, rev_pk1, rev_pk2, spl_pk1, spl_pk2)

let commit_script ~(abs_lock : int) ~(rel_lock : int) ~rev_pk1 ~rev_pk2
    ~spl_pk1 ~spl_pk2 : Script.t =
  fst
    (commit_script_and_hash ~abs_lock ~rel_lock ~rev_pk1 ~rev_pk2 ~spl_pk1
       ~spl_pk2)

(* ------------------------------------------------------------------ *)
(* Transaction bodies.                                                 *)

(** GenFund: funding transaction body spending the two parties' funding
    sources into the shared 2-of-2 output. *)
let gen_fund ~(tid_a : Tx.outpoint) ~(tid_b : Tx.outpoint) ~(cash : int)
    ~(pk_a : Daric_crypto.Schnorr.public_key)
    ~(pk_b : Daric_crypto.Schnorr.public_key) : Tx.t =
  Tx.make
    ~inputs:[ Tx.input_of_outpoint tid_a; Tx.input_of_outpoint tid_b ]
    ~outputs:
      [ { Tx.value = cash;
          spk = Tx.P2wsh (snd (funding_script_and_hash ~pk_a ~pk_b)) } ]
    ()

(* --- body sharing ---------------------------------------------------
   During an update both parties generate the same commit pair, split
   and revocation bodies from identical inputs. Memoizing the
   generators on exactly those inputs makes the two [Party.t] sides
   hold ONE heap copy of each body instead of two structurally-equal
   ones — and makes an N-update run reuse bodies across channels with
   identical parameters. The [_fresh] generators below are the
   uncopied originals, kept callable as the differential-test oracle;
   [set_sharing false] routes the public generators through them. *)
let sharing = Atomic.make true

let set_sharing (b : bool) : unit = Atomic.set sharing b
let sharing_enabled () : bool = Atomic.get sharing

(** GenCommit: the pair of state-i commit transaction bodies.
    A's commit carries the (rv_A, rv_B) revocation branch; B's carries
    (rv'_A, rv'_B). The absolute lock [s0 + i] orders states. *)
let gen_commit_fresh ~(funding : Tx.outpoint) ~(value : int)
    ~(keys_a : Keys.pub) ~(keys_b : Keys.pub) ~(s0 : int) ~(i : int)
    ~(rel_lock : int) : Tx.t * Tx.t =
  let mk rev_pk1 rev_pk2 =
    let _, script_hash =
      commit_script_and_hash ~abs_lock:(s0 + i) ~rel_lock ~rev_pk1 ~rev_pk2
        ~spl_pk1:keys_a.Keys.sp_pk ~spl_pk2:keys_b.Keys.sp_pk
    in
    (* The state index is encoded in the input's sequence field so a
       punisher can reconstruct the (P2WSH-hidden) commit script of a
       revoked commit without storing old states — Section 8,
       "Compatibility with P2WSH transactions". *)
    Tx.make
      ~inputs:[ Tx.input_of_outpoint ~sequence:i funding ]
      ~outputs:[ { Tx.value; spk = Tx.P2wsh script_hash } ]
      ()
  in
  (mk keys_a.Keys.rv_pk keys_b.Keys.rv_pk, mk keys_a.Keys.rv'_pk keys_b.Keys.rv'_pk)

let commit_body_memo :
    (Tx.outpoint * int * Keys.pub * Keys.pub * int * int * int -> Tx.t * Tx.t) ->
    Tx.outpoint * int * Keys.pub * Keys.pub * int * int * int ->
    Tx.t * Tx.t =
  memoize ()

let gen_commit ~(funding : Tx.outpoint) ~(value : int) ~(keys_a : Keys.pub)
    ~(keys_b : Keys.pub) ~(s0 : int) ~(i : int) ~(rel_lock : int) : Tx.t * Tx.t
    =
  if not (Atomic.get sharing) then
    gen_commit_fresh ~funding ~value ~keys_a ~keys_b ~s0 ~i ~rel_lock
  else
    commit_body_memo
      (fun (funding, value, keys_a, keys_b, s0, i, rel_lock) ->
        gen_commit_fresh ~funding ~value ~keys_a ~keys_b ~s0 ~i ~rel_lock)
      (funding, value, keys_a, keys_b, s0, i, rel_lock)

(** The script of a party's state-i commit output (needed to complete
    floating transactions that spend it). *)
let commit_script_of ~(role : Keys.role) ~(keys_a : Keys.pub)
    ~(keys_b : Keys.pub) ~(s0 : int) ~(i : int) ~(rel_lock : int) : Script.t =
  let rev_pk1, rev_pk2 =
    match role with
    | Keys.Alice -> (keys_a.Keys.rv_pk, keys_b.Keys.rv_pk)
    | Keys.Bob -> (keys_a.Keys.rv'_pk, keys_b.Keys.rv'_pk)
  in
  commit_script ~abs_lock:(s0 + i) ~rel_lock ~rev_pk1 ~rev_pk2
    ~spl_pk1:keys_a.Keys.sp_pk ~spl_pk2:keys_b.Keys.sp_pk

(** GenSplit: floating split transaction body for state i. Its
    nLockTime stores the state number (S0 + i); it carries no input. *)
let gen_split_fresh ~(theta : Tx.output list) ~(s0 : int) ~(i : int) : Tx.t =
  Tx.make ~locktime:(s0 + i) ~inputs:[] ~outputs:theta ()

let split_body_memo :
    (Tx.output list * int * int -> Tx.t) -> Tx.output list * int * int -> Tx.t =
  memoize ()

let gen_split ~(theta : Tx.output list) ~(s0 : int) ~(i : int) : Tx.t =
  if not (Atomic.get sharing) then gen_split_fresh ~theta ~s0 ~i
  else
    split_body_memo
      (fun (theta, s0, i) -> gen_split_fresh ~theta ~s0 ~i)
      (theta, s0, i)

(** GenRevoke: the pair of floating revocation transaction bodies
    revoking state [revoked]. nLockTime = S0 + revoked lets them spend
    the output of any commit with state index <= revoked, but of no
    later commit. The full channel funds go to the punishing party. *)
let gen_revoke_fresh ~(pk_a : Daric_crypto.Schnorr.public_key)
    ~(pk_b : Daric_crypto.Schnorr.public_key) ~(cash : int) ~(s0 : int)
    ~(revoked : int) : Tx.t * Tx.t =
  let mk pk =
    Tx.make ~locktime:(s0 + revoked) ~inputs:[]
      ~outputs:[ { Tx.value = cash; spk = p2wpkh_spk pk } ]
      ()
  in
  (mk pk_a, mk pk_b)

let revoke_body_memo :
    (Daric_crypto.Schnorr.public_key * Daric_crypto.Schnorr.public_key * int
     * int * int ->
    Tx.t * Tx.t) ->
    Daric_crypto.Schnorr.public_key * Daric_crypto.Schnorr.public_key * int
    * int * int ->
    Tx.t * Tx.t =
  memoize ()

let gen_revoke ~(pk_a : Daric_crypto.Schnorr.public_key)
    ~(pk_b : Daric_crypto.Schnorr.public_key) ~(cash : int) ~(s0 : int)
    ~(revoked : int) : Tx.t * Tx.t =
  if not (Atomic.get sharing) then
    gen_revoke_fresh ~pk_a ~pk_b ~cash ~s0 ~revoked
  else
    revoke_body_memo
      (fun (pk_a, pk_b, cash, s0, revoked) ->
        gen_revoke_fresh ~pk_a ~pk_b ~cash ~s0 ~revoked)
      (pk_a, pk_b, cash, s0, revoked)

(** GenFinSplit: the modified split transaction of a collaborative
    close — spends the funding output directly. *)
let gen_fin_split ~(funding : Tx.outpoint) ~(theta : Tx.output list) : Tx.t =
  Tx.make ~inputs:[ Tx.input_of_outpoint funding ] ~outputs:theta ()

(* ------------------------------------------------------------------ *)
(* Signing messages.                                                   *)

let funding_message (fund : Tx.t) : string = Sighash.message All fund ~input_index:0
let commit_message (commit : Tx.t) : string = Sighash.message All commit ~input_index:0

let split_message (split : Tx.t) : string =
  Sighash.message Anyprevout split ~input_index:0

let revoke_message (rv : Tx.t) : string = Sighash.message Anyprevout rv ~input_index:0

let fin_split_message (tx : Tx.t) : string = Sighash.message All tx ~input_index:0

(* ------------------------------------------------------------------ *)
(* Witness completion.                                                 *)

(** 2-of-2 multisig witness (dummy, sigs in pubkey order, script). *)
let multisig_witness ~(sig1 : string) ~(sig2 : string) (script : Script.t) :
    Tx.witness =
  [ Tx.Data ""; Tx.Data sig1; Tx.Data sig2; Tx.Wscript script ]

(** Complete a commit transaction with both funding signatures
    (sig order: A then B, matching the funding script). *)
let complete_commit (body : Tx.t) ~(sig_a : string) ~(sig_b : string)
    ~(pk_a : Daric_crypto.Schnorr.public_key)
    ~(pk_b : Daric_crypto.Schnorr.public_key) : Tx.t =
  Tx.with_witnesses body
    [ multisig_witness ~sig1:sig_a ~sig2:sig_b (funding_script ~pk_a ~pk_b) ]

(** Complete the funding transaction with the two parties' signatures
    over their respective P2WPKH funding sources. *)
let complete_fund (body : Tx.t) ~(sig_a : string)
    ~(pk_a : Daric_crypto.Schnorr.public_key) ~(sig_b : string)
    ~(pk_b : Daric_crypto.Schnorr.public_key) : Tx.t =
  Tx.with_witnesses body
    [ [ Tx.Data sig_a; Tx.Data (Keys.enc pk_a) ];
      [ Tx.Data sig_b; Tx.Data (Keys.enc pk_b) ] ]

(** Attach a published commit's output as the input of the floating
    split transaction and install its witness. The witness selects the
    split (ELSE) branch of the revealed commit script. *)
let complete_split (split : Tx.t) ~(commit_outpoint : Tx.outpoint)
    ~(commit_script : Script.t) ~(sig_a : string) ~(sig_b : string) : Tx.t =
  Tx.make ~locktime:split.Tx.locktime ~outputs:split.Tx.outputs
    ~inputs:[ Tx.input_of_outpoint commit_outpoint ]
    ~witnesses:
      [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Data "";
          Tx.Wscript commit_script ] ]
    ()

(** Attach a published (revoked) commit's output as the input of the
    floating revocation transaction. The witness selects the revocation
    (IF) branch. *)
let complete_revocation (rv : Tx.t) ~(commit_outpoint : Tx.outpoint)
    ~(commit_script : Script.t) ~(sig1 : string) ~(sig2 : string) : Tx.t =
  Tx.make ~locktime:rv.Tx.locktime ~outputs:rv.Tx.outputs
    ~inputs:[ Tx.input_of_outpoint commit_outpoint ]
    ~witnesses:
      [ [ Tx.Data ""; Tx.Data sig1; Tx.Data sig2; Tx.Data "\001";
          Tx.Wscript commit_script ] ]
    ()

(** Complete the collaborative-close split with both signatures. *)
let complete_fin_split (body : Tx.t) ~(sig_a : string) ~(sig_b : string)
    ~(pk_a : Daric_crypto.Schnorr.public_key)
    ~(pk_b : Daric_crypto.Schnorr.public_key) : Tx.t =
  Tx.with_witnesses body
    [ multisig_witness ~sig1:sig_a ~sig2:sig_b (funding_script ~pk_a ~pk_b) ]

(** A simple channel state: two balance outputs paying the parties. *)
let balance_state ~(pk_a : Daric_crypto.Schnorr.public_key)
    ~(pk_b : Daric_crypto.Schnorr.public_key) ~(bal_a : int) ~(bal_b : int) :
    Tx.output list =
  [ { Tx.value = bal_a; spk = p2wpkh_spk pk_a };
    { Tx.value = bal_b; spk = p2wpkh_spk pk_b } ]
