(** N-tower replication: R independent {!Durable} towers over the same
    channel set and ledger, with per-(round, replica) fault injection
    — crash ([`Down]: RAM lost, store survives, recovery + cursor
    catch-up at the next up-round) and omission ([`Omit]: poll
    skipped, cursor unmoved). Any one honest replica suffices for
    every fraud to be punished; the per-tower scorecard makes each
    replica's liveness and accountability measurable. *)

type fault = [ `Up | `Down | `Omit ]

type t

val no_faults : round:int -> replica:int -> fault

val create :
  ?snapshot_every:int ->
  ?faults:(round:int -> replica:int -> fault) ->
  wid:string ->
  ?mk_store:(int -> Durable.store) ->
  int ->
  t
(** [create ~wid r] builds [r] replicas, each over its own store
    (default: fresh memory stores; pass [mk_store] for file-backed
    replicas). *)

val replica_count : t -> int

val watch : t -> round:int -> Watchtower.record -> bool
(** Fan the record to every live replica; [true] iff at least one
    accepted and journaled it. Down replicas miss the watch (scored). *)

val unwatch : t -> round:int -> channel_id:string -> unit

val end_of_round :
  t -> round:int -> ledger:Daric_chain.Ledger.t ->
  post:(Daric_tx.Tx.t -> unit) -> unit
(** Apply the fault schedule, recover any replica coming back up, and
    let every up replica monitor the shared spent-log window.
    Duplicate revocation posts across replicas are rejected by the
    ledger (same txid / already-spent outpoint) — idempotent. *)

val punished : t -> string list
(** Union of channels punished by any live replica, oldest first. *)

type score = {
  s_idx : int;
  s_alive : bool;
  s_guarded : int;
  s_rounds_served : int;
  s_rounds_down : int;
  s_omissions : int;
  s_recoveries : int;
  s_missed_watches : int;
  s_punished : int;
  s_storage_bytes : int;
  s_wal_bytes : int;  (** current WAL length on the store *)
  s_snapshots : int;
  s_liveness : float;  (** rounds served / rounds scheduled *)
}

val scorecard : t -> score list
val pp_scorecard : Format.formatter -> score list -> unit
