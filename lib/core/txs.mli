(** Daric transaction generators: the Appendix-D subprocedures
    (GenFund, GenCommit, GenSplit, GenRevoke, GenFinSplit), the
    Appendix-B output scripts, and the witness-completion helpers that
    turn floating transactions into postable ones. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script

val funding_script :
  pk_a:Daric_crypto.Schnorr.public_key ->
  pk_b:Daric_crypto.Schnorr.public_key ->
  Script.t
(** The 2-of-2 funding output script. *)

val commit_script :
  abs_lock:int -> rel_lock:int ->
  rev_pk1:Daric_crypto.Schnorr.public_key ->
  rev_pk2:Daric_crypto.Schnorr.public_key ->
  spl_pk1:Daric_crypto.Schnorr.public_key ->
  spl_pk2:Daric_crypto.Schnorr.public_key ->
  Script.t
(** The 157-byte commit output script:
    CLTV state ordering, then revocation branch | delayed split branch. *)

val gen_fund :
  tid_a:Tx.outpoint -> tid_b:Tx.outpoint -> cash:int ->
  pk_a:Daric_crypto.Schnorr.public_key ->
  pk_b:Daric_crypto.Schnorr.public_key ->
  Tx.t

val gen_commit :
  funding:Tx.outpoint -> value:int -> keys_a:Keys.pub -> keys_b:Keys.pub ->
  s0:int -> i:int -> rel_lock:int -> Tx.t * Tx.t
(** The state-i commit pair (Alice's, Bob's): Alice's carries the
    (rv_A, rv_B) revocation branch, Bob's (rv'_A, rv'_B). The state
    index is also encoded in the input's sequence field so punishers
    can reconstruct the hidden script (Section 8).

    With {!set_sharing} on (the default) the result is memoized on its
    inputs, so the two parties of an update — both generating this
    pair from the same data — share one physical body instead of two
    structurally-equal copies. *)

val set_sharing : bool -> unit
(** Toggle body sharing for {!gen_commit}, {!gen_split} and
    {!gen_revoke} (default [true]; [false] routes through the fresh
    generators — the differential-test configuration). *)

val sharing_enabled : unit -> bool

val gen_commit_fresh :
  funding:Tx.outpoint -> value:int -> keys_a:Keys.pub -> keys_b:Keys.pub ->
  s0:int -> i:int -> rel_lock:int -> Tx.t * Tx.t
(** Unshared {!gen_commit} (always builds fresh bodies) — the
    shared-vs-copied differential oracle. *)

val commit_script_of :
  role:Keys.role -> keys_a:Keys.pub -> keys_b:Keys.pub -> s0:int -> i:int ->
  rel_lock:int -> Script.t
(** The script hidden behind [role]'s state-i commit output. *)

val gen_split : theta:Tx.output list -> s0:int -> i:int -> Tx.t
(** Floating split body; nLockTime = S0 + i stores the state number.
    Shared across the two parties of an update (see {!set_sharing}). *)

val gen_split_fresh : theta:Tx.output list -> s0:int -> i:int -> Tx.t

val gen_revoke :
  pk_a:Daric_crypto.Schnorr.public_key ->
  pk_b:Daric_crypto.Schnorr.public_key ->
  cash:int -> s0:int -> revoked:int -> Tx.t * Tx.t
(** Floating revocation pair for states up to [revoked]; the full
    channel funds go to the punishing party. Shared across the two
    parties of an update (see {!set_sharing}). *)

val gen_revoke_fresh :
  pk_a:Daric_crypto.Schnorr.public_key ->
  pk_b:Daric_crypto.Schnorr.public_key ->
  cash:int -> s0:int -> revoked:int -> Tx.t * Tx.t

val gen_fin_split : funding:Tx.outpoint -> theta:Tx.output list -> Tx.t
(** Collaborative-close transaction spending the funding directly. *)

(** {1 Signing messages} *)

val funding_message : Tx.t -> string
val commit_message : Tx.t -> string
val split_message : Tx.t -> string
val revoke_message : Tx.t -> string
val fin_split_message : Tx.t -> string

(** {1 Witness completion} *)

val multisig_witness : sig1:string -> sig2:string -> Script.t -> Tx.witness

val complete_commit :
  Tx.t -> sig_a:string -> sig_b:string ->
  pk_a:Daric_crypto.Schnorr.public_key ->
  pk_b:Daric_crypto.Schnorr.public_key -> Tx.t

val complete_fund :
  Tx.t -> sig_a:string -> pk_a:Daric_crypto.Schnorr.public_key ->
  sig_b:string -> pk_b:Daric_crypto.Schnorr.public_key -> Tx.t

val complete_split :
  Tx.t -> commit_outpoint:Tx.outpoint -> commit_script:Script.t ->
  sig_a:string -> sig_b:string -> Tx.t
(** Bind a floating split to a published commit's output (ELSE branch). *)

val complete_revocation :
  Tx.t -> commit_outpoint:Tx.outpoint -> commit_script:Script.t ->
  sig1:string -> sig2:string -> Tx.t
(** Bind a floating revocation to a revoked commit's output (IF branch). *)

val complete_fin_split :
  Tx.t -> sig_a:string -> sig_b:string ->
  pk_a:Daric_crypto.Schnorr.public_key ->
  pk_b:Daric_crypto.Schnorr.public_key -> Tx.t

val balance_state :
  pk_a:Daric_crypto.Schnorr.public_key ->
  pk_b:Daric_crypto.Schnorr.public_key ->
  bal_a:int -> bal_b:int -> Tx.output list
(** A plain two-output channel state. *)
