(** Channels on top of channels (Section 8, "Other applications" and
    "Channel reset").

    To put an application — here: another Daric channel — on top of an
    existing channel, the parties update the parent so that its split
    transaction carries a 2-of-2 output acting as the child's funding
    output. Because the parent's split transaction is floating, its
    txid is unknown until closure, so the child's commit transactions
    must be floating too (ANYPREVOUT). Each child level therefore adds
    a *constant* number of pre-signed transactions — the O(1)
    transaction growth of Table 1 — where schemes with state
    duplication (Lightning and derivatives) double the transaction set
    with every level: O(2^k).

    This module builds a k-deep stack of nested Daric channels, closes
    it level by level on the ledger, and counts the transactions
    involved. *)

module Tx = Daric_tx.Tx
module Sighash = Daric_tx.Sighash
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger

(** One nested level: pre-signed floating state-0 transactions. For
    simplicity both commit variants share a level; revocation data is
    analogous to the flat channel and omitted at state 0 (there is
    nothing to revoke yet). *)
type level = {
  keys_a : Keys.t;
  keys_b : Keys.t;
  funding_script : Script.t;  (** 2-of-2 funding this level *)
  commit_body : Tx.t;  (** floating commit (the A variant) *)
  commit_sigs : string * string;  (** ANYPREVOUT sigs of A and B *)
  commit_script : Script.t;  (** this level's commit output script *)
  split_body : Tx.t;  (** floating split *)
  split_sigs : string * string;
  value : int;
}

type stack = {
  levels : level list;  (** outermost (on-chain funding) first *)
  base_funding : Tx.outpoint;
  rel_lock : int;
  s0 : int;
}

(** Transactions that must be created and signed to ADD one level on a
    Daric channel: one commit per party plus one split (state 0). *)
let txs_per_daric_level = 3

(** Under state duplication, every sub-channel state exists once per
    copy of the parent state, so k recursive splits cost O(2^k)
    transactions (Table 1, Lightning/Cerberus/Sleepy/Outpost row). *)
let txs_with_state_duplication (k : int) : int = (1 lsl (k + 1)) - 1

let txs_daric (k : int) : int = txs_per_daric_level * k

(** Build one level funding [value] coins under fresh keys, with the
    child funding output as its split output. [child_funding_script] is
    [None] for the innermost level, which splits into balances. *)
let build_level ~(rng : Daric_util.Rng.t) ~(value : int) ~(s0 : int)
    ~(rel_lock : int) ~(child_funding_script : Script.t option) : level =
  let keys_a = Keys.generate rng and keys_b = Keys.generate rng in
  let pub_a = Keys.pub keys_a and pub_b = Keys.pub keys_b in
  let funding_script =
    Script.multisig_2 (Keys.enc keys_a.Keys.main.pk) (Keys.enc keys_b.Keys.main.pk)
  in
  let commit_script =
    Txs.commit_script_of ~role:Keys.Alice ~keys_a:pub_a ~keys_b:pub_b ~s0 ~i:0
      ~rel_lock
  in
  (* floating commit: no input, ANYPREVOUT over (nLT, outputs) *)
  let commit_body =
    Tx.make ~locktime:s0 ~inputs:[]
      ~outputs:[ { Tx.value; spk = Tx.P2wsh (Script.hash commit_script) } ]
      ()
  in
  let commit_msg = Sighash.message Anyprevout commit_body ~input_index:0 in
  let commit_sigs =
    ( Sighash.sign_message keys_a.Keys.main.sk Anyprevout commit_msg,
      Sighash.sign_message keys_b.Keys.main.sk Anyprevout commit_msg )
  in
  let theta =
    match child_funding_script with
    | Some s -> [ { Tx.value; spk = Tx.P2wsh (Script.hash s) } ]
    | None ->
        Txs.balance_state ~pk_a:keys_a.Keys.main.pk ~pk_b:keys_b.Keys.main.pk
          ~bal_a:(value / 2) ~bal_b:(value - (value / 2))
  in
  let split_body = Txs.gen_split ~theta ~s0 ~i:0 in
  let split_msg = Txs.split_message split_body in
  let split_sigs =
    ( Sighash.sign_message keys_a.Keys.sp.sk Anyprevout split_msg,
      Sighash.sign_message keys_b.Keys.sp.sk Anyprevout split_msg )
  in
  { keys_a; keys_b; funding_script; commit_body; commit_sigs; commit_script;
    split_body; split_sigs; value }

(** Build a [depth]-level stack, minting the outermost funding output
    on the ledger. All inner levels exist purely off-chain. *)
let build (ledger : Ledger.t) ~(rng : Daric_util.Rng.t) ~(depth : int)
    ~(value : int) ?(s0 = 500_000_000) ?(rel_lock = 3) () : stack =
  if depth < 1 then invalid_arg "Nesting.build: depth must be >= 1";
  (* innermost first, then wrap *)
  let rec go k child =
    if k = 0 then child
    else
      let child_script =
        match child with [] -> None | l :: _ -> Some l.funding_script
      in
      let l = build_level ~rng ~value ~s0 ~rel_lock ~child_funding_script:child_script in
      go (k - 1) (l :: child)
  in
  let levels = go depth [] in
  let outer = List.hd levels in
  let base_funding =
    Ledger.mint ledger ~value ~spk:(Tx.P2wsh (Script.hash outer.funding_script))
  in
  { levels; base_funding; rel_lock; s0 }

(** Bind a level's floating commit to [funding] and complete its
    witness. *)
let completed_commit (l : level) ~(funding : Tx.outpoint) : Tx.t =
  let sig_a, sig_b = l.commit_sigs in
  Tx.make ~locktime:l.commit_body.Tx.locktime
    ~inputs:[ Tx.input_of_outpoint ~sequence:0 funding ]
    ~outputs:l.commit_body.Tx.outputs
    ~witnesses:
      [ [ Tx.Data ""; Tx.Data sig_a; Tx.Data sig_b; Tx.Wscript l.funding_script ] ]
    ()

let completed_split (l : level) ~(commit_outpoint : Tx.outpoint) : Tx.t =
  let sig_a, sig_b = l.split_sigs in
  Txs.complete_split l.split_body ~commit_outpoint
    ~commit_script:l.commit_script ~sig_a ~sig_b

(** Close the whole stack non-collaboratively on the ledger: for each
    level post the commit, wait out the CSV delay, post the split,
    then descend into the child. Returns the transactions posted
    (2 per level). *)
let close_on_chain (stack : stack) (ledger : Ledger.t) : Tx.t list =
  let settle n = for _ = 1 to n do ignore (Ledger.tick ledger) done in
  let rec go funding levels acc =
    match levels with
    | [] -> List.rev acc
    | l :: rest ->
        let commit = completed_commit l ~funding in
        Ledger.post ledger commit ~delay:0;
        settle 1;
        assert (Ledger.is_unspent ledger (Tx.outpoint_of commit 0));
        settle stack.rel_lock;
        let split = completed_split l ~commit_outpoint:(Tx.outpoint_of commit 0) in
        Ledger.post ledger split ~delay:0;
        settle 1;
        assert (Ledger.is_unspent ledger (Tx.outpoint_of split 0));
        go (Tx.outpoint_of split 0) rest (split :: commit :: acc)
  in
  go stack.base_funding stack.levels []
