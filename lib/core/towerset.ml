(** N-tower replication: R independent {!Durable} towers guarding the
    same channel set, each with its own store, polled against the same
    ledger spent-log window every round.

    Faults are injected per (round, replica): [`Down] kills the
    replica's in-RAM state (the store survives; it recovers from
    snapshot + WAL at its next [`Up] round and catches up from its
    restored cursor), [`Omit] models a tower that is up but skips the
    poll (its cursor does not advance, so nothing is lost — only
    delayed). Because every replica holds the full O(1)-per-channel
    record set and punishment is idempotent on chain (duplicate
    revocation posts are rejected as already-spent/duplicate txid),
    any one honest replica suffices for every fraud to be punished —
    the Brick/fail-safe-watchtower replication argument, which the
    scorecard makes measurable per tower. *)

module Ledger = Daric_chain.Ledger
module Tx = Daric_tx.Tx

type fault = [ `Up | `Down | `Omit ]

type replica = {
  idx : int;
  rstore : Durable.store;
  mutable state : Durable.t option;  (** [None] while crashed *)
  mutable rounds_served : int;
  mutable rounds_down : int;
  mutable omissions : int;
  mutable recoveries : int;
  mutable missed_watches : int;
      (** watch calls that arrived while this replica was down *)
}

type t = {
  wid : string;
  snapshot_every : int;
  replicas : replica array;
  faults : round:int -> replica:int -> fault;
}

let no_faults ~round:_ ~replica:_ = `Up

let create ?(snapshot_every = 16) ?(faults = no_faults) ~(wid : string)
    ?(mk_store = fun (_ : int) -> Durable.memory_store ())
    (n : int) : t =
  if n < 1 then invalid_arg "Towerset.create: need at least one replica";
  { wid;
    snapshot_every;
    faults;
    replicas =
      Array.init n (fun idx ->
          let rstore = mk_store idx in
          { idx;
            rstore;
            state =
              Some
                (Durable.create ~snapshot_every
                   ~wid:(Printf.sprintf "%s-%d" wid idx)
                   rstore);
            rounds_served = 0;
            rounds_down = 0;
            omissions = 0;
            recoveries = 0;
            missed_watches = 0 })
  }

let replica_count (t : t) : int = Array.length t.replicas

let revive (t : t) (r : replica) : Durable.t =
  match r.state with
  | Some d -> d
  | None -> (
      match
        Durable.recover ~snapshot_every:t.snapshot_every
          ~wid:(Printf.sprintf "%s-%d" t.wid r.idx)
          r.rstore
      with
      | Ok rec_ ->
          r.state <- Some rec_.Durable.t;
          r.recoveries <- r.recoveries + 1;
          rec_.Durable.t
      | Error e ->
          failwith
            (Printf.sprintf "towerset: replica %d store corrupt: %s" r.idx
               (Persist.error_to_string e)))

(** Fan a watch to every live replica. Returns [true] iff at least one
    replica accepted and journaled the record; replicas that are down
    miss it (counted in the scorecard) — exactly the window a client
    closes by re-sending its record each update. *)
let watch (t : t) ~(round : int) (r : Watchtower.record) : bool =
  Array.fold_left
    (fun acc rep ->
      match t.faults ~round ~replica:rep.idx with
      | `Down ->
          rep.state <- None;
          rep.missed_watches <- rep.missed_watches + 1;
          acc
      | `Up | `Omit -> Durable.watch (revive t rep) r || acc)
    false t.replicas

let unwatch (t : t) ~(round : int) ~(channel_id : string) : unit =
  Array.iter
    (fun rep ->
      match t.faults ~round ~replica:rep.idx with
      | `Down -> rep.state <- None
      | `Up | `Omit -> Durable.unwatch (revive t rep) ~channel_id)
    t.replicas

(** One round: every replica consults the fault schedule, then either
    loses its RAM ([`Down]), skips the poll ([`Omit]) or recovers if
    needed and monitors the shared spent-log window ([`Up]). *)
let end_of_round (t : t) ~(round : int) ~(ledger : Ledger.t)
    ~(post : Tx.t -> unit) : unit =
  Array.iter
    (fun rep ->
      match t.faults ~round ~replica:rep.idx with
      | `Down ->
          rep.state <- None;
          rep.rounds_down <- rep.rounds_down + 1
      | `Omit -> rep.omissions <- rep.omissions + 1
      | `Up ->
          Durable.end_of_round (revive t rep) ~round ~ledger ~post;
          rep.rounds_served <- rep.rounds_served + 1)
    t.replicas

(** Channels punished by at least one replica (union, no duplicates,
    stable order). *)
let punished (t : t) : string list =
  let seen = Hashtbl.create 16 in
  Array.fold_left
    (fun acc rep ->
      match rep.state with
      | None -> acc
      | Some d ->
          List.fold_left
            (fun acc cid ->
              if Hashtbl.mem seen cid then acc
              else begin
                Hashtbl.add seen cid ();
                cid :: acc
              end)
            acc
            (List.rev (Watchtower.punished (Durable.tower d))))
    [] t.replicas
  |> List.rev

(* ---- per-tower liveness / accountability scorecard ---------------- *)

type score = {
  s_idx : int;
  s_alive : bool;
  s_guarded : int;
  s_rounds_served : int;
  s_rounds_down : int;
  s_omissions : int;
  s_recoveries : int;
  s_missed_watches : int;
  s_punished : int;
  s_storage_bytes : int;
  s_wal_bytes : int;
  s_snapshots : int;
  s_liveness : float;  (** rounds served / rounds scheduled *)
}

let scorecard (t : t) : score list =
  Array.to_list
    (Array.map
       (fun rep ->
         let guarded, punished, storage, walb, snaps =
           match rep.state with
           | None -> (0, 0, 0, 0, 0)
           | Some d ->
               let tw = Durable.tower d in
               ( Watchtower.guarded_count tw,
                 List.length (Watchtower.punished tw),
                 Watchtower.storage_bytes tw,
                 Durable.wal_size d,
                 Durable.snapshots_taken d )
         in
         let scheduled =
           rep.rounds_served + rep.rounds_down + rep.omissions
         in
         { s_idx = rep.idx;
           s_alive = rep.state <> None;
           s_guarded = guarded;
           s_rounds_served = rep.rounds_served;
           s_rounds_down = rep.rounds_down;
           s_omissions = rep.omissions;
           s_recoveries = rep.recoveries;
           s_missed_watches = rep.missed_watches;
           s_punished = punished;
           s_storage_bytes = storage;
           s_wal_bytes = walb;
           s_snapshots = snaps;
           s_liveness =
             (if scheduled = 0 then 1.0
              else float_of_int rep.rounds_served /. float_of_int scheduled)
         })
       t.replicas)

let pp_scorecard ppf (scores : score list) =
  Fmt.pf ppf "%-6s %-6s %-8s %-7s %-6s %-6s %-5s %-8s %-9s %-9s %-5s@."
    "tower" "alive" "guarded" "served" "down" "omit" "recov" "punished"
    "bytes" "wal" "live%";
  List.iter
    (fun s ->
      Fmt.pf ppf "%-6d %-6b %-8d %-7d %-6d %-6d %-5d %-8d %-9d %-9d %.0f@."
        s.s_idx s.s_alive s.s_guarded s.s_rounds_served s.s_rounds_down
        s.s_omissions s.s_recoveries s.s_punished s.s_storage_bytes
        s.s_wal_bytes (100. *. s.s_liveness))
    scores
