(** Simulation driver: wires parties, the authenticated network and
    the ledger into the synchronous round structure of Appendix C.

    Per round: the ledger processes due postings; every honest party
    handles its delivered messages; honest parties and watchtowers run
    their end-of-round (Punish) logic. Corrupting a party freezes its
    honest logic — the test then plays the adversary with the party's
    recorded data. *)

module Ledger = Daric_chain.Ledger
module Tx = Daric_tx.Tx

type t

val create :
  ?ledger:Ledger.t -> ?net_log_cap:int -> ?delta:int -> ?genesis_time:int ->
  ?seed:int -> unit -> t
(** When [ledger] is given the driver runs on that shared ledger (its
    Δ governs posting delays) instead of creating a private one;
    [delta]/[genesis_time] then have no effect. [net_log_cap] bounds
    the retained network traffic log (total counters are unaffected) —
    set it when simulating very many channels so memory stays flat. *)

val ledger : t -> Ledger.t
val round : t -> int

val add_party : t -> Party.t -> unit
val add_watchtower : t -> Watchtower.t -> unit

val corrupt : t -> string -> unit
val is_corrupted : t -> string -> bool

val ctx : t -> string -> Party.ctx
(** Per-round capabilities for one party. *)

val adversary_post : ?delay:int -> t -> Tx.t -> unit
(** Post a transaction as the adversary, with a chosen delay. *)

val step : t -> unit
(** Advance one round. *)

val run : t -> int -> unit

val mint_to_key :
  t -> value:int -> pk:Daric_crypto.Schnorr.public_key -> Tx.outpoint

val open_channel :
  t -> id:string -> alice:Party.t -> bob:Party.t -> bal_a:int -> bal_b:int ->
  ?rel_lock:int -> ?s0:int -> unit -> unit
(** Mint both funding sources and INTRO both parties in the same
    round; the create phase completes over subsequent {!step}s. *)

val saw_event : Party.t -> (Party.event -> bool) -> bool
val channel_operational : Party.t -> id:string -> bool

val run_until_operational :
  ?max_rounds:int -> t -> id:string -> alice:Party.t -> bob:Party.t -> bool

val update_channel :
  ?max_rounds:int -> t -> id:string -> initiator:Party.t -> responder:Party.t ->
  theta:Tx.output list -> bool
(** Drive a full update to completion on both sides; [false] on
    timeout or rejection. *)

val bytes_sent : t -> int
(** Total protocol bytes exchanged (canonical wire encoding). *)

val messages_sent : t -> int
