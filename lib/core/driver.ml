(** Simulation driver: wires parties, the authenticated network and the
    ledger into the synchronous round structure of Appendix C.

    Per round: the ledger processes due postings; every honest party
    handles its delivered messages; every honest party and every
    watchtower runs its end-of-round (Punish) logic. Corrupting a party
    freezes its honest logic; the test then acts as the adversary,
    using the party's recorded data and keys directly. *)

module Ledger = Daric_chain.Ledger
module Network = Daric_chain.Network
module Tx = Daric_tx.Tx

type t = {
  ledger : Ledger.t;
  net : Wire.msg Network.t;
  rng : Daric_util.Rng.t;
  mutable parties : (string * Party.t) list;
  corrupted : (string, unit) Hashtbl.t;
  mutable post_delay : int;  (** adversary-chosen ledger delay for posts *)
  mutable watchtowers : Watchtower.t list;
}

let create ?ledger ?net_log_cap ?(delta = 1) ?genesis_time ?(seed = 0xD0C5) () :
    t =
  let ledger =
    match ledger with
    | Some l -> l
    | None -> Ledger.create ?genesis_time ~delta ()
  in
  { ledger;
    net = Network.create ?log_cap:net_log_cap ();
    rng = Daric_util.Rng.create ~seed;
    parties = [];
    corrupted = Hashtbl.create 4;
    post_delay = Ledger.delta ledger;
    watchtowers = [] }

let ledger (t : t) : Ledger.t = t.ledger
let round (t : t) : int = Ledger.height t.ledger

let add_party (t : t) (p : Party.t) : unit =
  t.parties <- t.parties @ [ (p.Party.pid, p) ]

let add_watchtower (t : t) (w : Watchtower.t) : unit =
  t.watchtowers <- t.watchtowers @ [ w ]

let corrupt (t : t) (pid : string) : unit = Hashtbl.replace t.corrupted pid ()

let is_corrupted (t : t) (pid : string) : bool = Hashtbl.mem t.corrupted pid

(** Per-round capabilities for party [pid]. *)
let ctx (t : t) (pid : string) : Party.ctx =
  { Party.round = round t;
    ledger = t.ledger;
    send =
      (fun ~recipient msg ->
        Network.send t.net ~round:(round t) ~sender:pid ~recipient msg);
    post = (fun tx -> Ledger.post t.ledger tx ~delay:t.post_delay) }

(** Post a transaction as the adversary (with a chosen delay). *)
let adversary_post ?(delay = 0) (t : t) (tx : Tx.t) : unit =
  Ledger.post t.ledger tx ~delay

(** Advance one round. *)
let step (t : t) : unit =
  ignore (Ledger.tick t.ledger);
  let r = round t in
  List.iter
    (fun (pid, p) ->
      let delivered = Network.deliver t.net ~round:r ~recipient:pid in
      if not (is_corrupted t pid) then
        List.iter (fun env -> Party.handle_msg p (ctx t pid) env) delivered)
    t.parties;
  List.iter
    (fun (pid, p) ->
      if not (is_corrupted t pid) then Party.end_of_round p (ctx t pid))
    t.parties;
  List.iter
    (fun w ->
      Watchtower.end_of_round w ~round:r ~ledger:t.ledger
        ~post:(fun tx -> Ledger.post t.ledger tx ~delay:t.post_delay))
    t.watchtowers

let run (t : t) (rounds : int) : unit =
  for _ = 1 to rounds do
    step t
  done

(* ------------------------------------------------------------------ *)
(* Scenario helpers.                                                   *)

let mint_to_key (t : t) ~(value : int)
    ~(pk : Daric_crypto.Schnorr.public_key) : Tx.outpoint =
  Ledger.mint t.ledger ~value
    ~spk:
      (Tx.P2wpkh
         (Daric_crypto.Hash.hash160 (Daric_crypto.Schnorr.encode_public_key pk)))

(** Start channel creation between two registered parties: mint each
    side's funding source, then INTRO both in the same round. The
    create phase completes during subsequent [step]s (allow
    ~4 + 2*delta rounds). *)
let open_channel (t : t) ~(id : string) ~(alice : Party.t) ~(bob : Party.t)
    ~(bal_a : int) ~(bal_b : int) ?(rel_lock = 3) ?(s0 = 500_000_000) () : unit
    =
  let cfg_a =
    { Party.id; role = Keys.Alice; peer = bob.Party.pid; bal_a; bal_b;
      rel_lock; s0 }
  in
  let cfg_b = { cfg_a with Party.role = Keys.Bob; peer = alice.Party.pid } in
  let keys_a = Keys.generate t.rng in
  let keys_b = Keys.generate t.rng in
  let tid_a = mint_to_key t ~value:bal_a ~pk:keys_a.Keys.main.pk in
  let tid_b = mint_to_key t ~value:bal_b ~pk:keys_b.Keys.main.pk in
  Party.intro alice (ctx t alice.Party.pid) ~keys:keys_a ~cfg:cfg_a ~tid:tid_a ();
  Party.intro bob (ctx t bob.Party.pid) ~keys:keys_b ~cfg:cfg_b ~tid:tid_b ()

(** Did this party report the given event (at any round)? *)
let saw_event (p : Party.t) (pred : Party.event -> bool) : bool =
  List.exists (fun (_, ev) -> pred ev) (Party.events p)

let channel_operational (p : Party.t) ~(id : string) : bool =
  match Party.find_chan p id with
  | Some c -> c.Party.phase = Party.Operational
  | None -> false

(** Run until both parties have the channel operational (or give up
    after [max_rounds]). *)
let run_until_operational ?(max_rounds = 30) (t : t) ~(id : string)
    ~(alice : Party.t) ~(bob : Party.t) : bool =
  let rec go n =
    if n = 0 then false
    else if channel_operational alice ~id && channel_operational bob ~id then
      true
    else begin
      step t;
      go (n - 1)
    end
  in
  go max_rounds

(** Perform a complete update to [theta], driving rounds until both
    sides report state [expected_sn]; false on timeout. *)
let update_channel ?(max_rounds = 20) (t : t) ~(id : string)
    ~(initiator : Party.t) ~(responder : Party.t) ~(theta : Tx.output list) :
    bool =
  Party.request_update initiator (ctx t initiator.Party.pid) ~id ~theta ();
  let target c = (c : Party.chan).Party.phase = Party.Operational in
  let done_ () =
    match (Party.find_chan initiator id, Party.find_chan responder id) with
    | Some ci, Some cr ->
        target ci && target cr && ci.Party.sn = cr.Party.sn
        && ci.Party.pending = None && cr.Party.pending = None
        && ci.Party.sn > 0
        && Party.outputs_equal ci.Party.st theta
    | _ -> false
  in
  let rec go n =
    if n = 0 then false
    else if done_ () then true
    else begin
      step t;
      go (n - 1)
    end
  in
  go max_rounds

(** Total protocol bytes exchanged so far (communication cost, using
    the canonical wire encoding). *)
let bytes_sent (t : t) : int =
  List.fold_left
    (fun acc (_, env) -> acc + Wire.size env.Network.payload)
    0 (Network.log t.net)

(** Number of protocol messages exchanged so far. *)
let messages_sent (t : t) : int = Network.total_sent t.net
