(** Key-material codecs shared by the channel/tower snapshots
    ({!Persist}) and the watchtower's packed record storage
    ({!Watchtower}) — split out of {!Persist} so the watchtower can
    encode records without a dependency cycle (Persist depends on
    Watchtower for the snapshot codec). Headerless; same byte format
    as always. *)

module W = Daric_util.Byteio.Writer
module R = Daric_util.Byteio.Reader
module Schnorr = Daric_crypto.Schnorr

let write_keypair w (k : Keys.keypair) = W.u32 w k.Keys.sk

let read_keypair r : Keys.keypair =
  let sk = R.u32 r in
  { Keys.sk; pk = Schnorr.public_key_of_secret sk }

let write_pub w (k : Keys.pub) =
  W.u32 w k.Keys.main_pk;
  W.u32 w k.Keys.sp_pk;
  W.u32 w k.Keys.rv_pk;
  W.u32 w k.Keys.rv'_pk

let read_pub r : Keys.pub =
  let main_pk = R.u32 r in
  let sp_pk = R.u32 r in
  let rv_pk = R.u32 r in
  let rv'_pk = R.u32 r in
  { Keys.main_pk; sp_pk; rv_pk; rv'_pk }

let write_role w (role : Keys.role) =
  W.byte w (match role with Keys.Alice -> 0 | Keys.Bob -> 1)

let read_role r : Keys.role = if R.byte r = 0 then Keys.Alice else Keys.Bob
