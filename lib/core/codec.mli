(** Key-material codecs shared by {!Persist} and the watchtower's
    packed record storage (no {!Persist} dependency, so {!Watchtower}
    can use them without a cycle). *)

module W = Daric_util.Byteio.Writer
module R = Daric_util.Byteio.Reader

val write_keypair : W.t -> Keys.keypair -> unit
val read_keypair : R.t -> Keys.keypair
val write_pub : W.t -> Keys.pub -> unit
val read_pub : R.t -> Keys.pub
val write_role : W.t -> Keys.role -> unit
val read_role : R.t -> Keys.role
