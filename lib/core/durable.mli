(** Durable watchtower: snapshot + write-ahead-log persistence around
    {!Watchtower}, with crash recovery by snapshot + replay.

    Write-ahead discipline: watches are journaled before [watch]
    returns; a monitoring round journals its punishments and cursor
    advance before the revocation transactions are released to the
    chain. Every [snapshot_every] rounds the full tower state is
    snapshotted and the WAL reset, bounding the store at one snapshot
    plus K rounds of deltas. A recovered tower re-checks replayed
    watches directly and rescans the spent log from its restored
    cursor, so it punishes exactly what a never-crashed tower would. *)

module Wal = Daric_util.Wal

type store = {
  wal_sink : Wal.Sink.t;
  save_snapshot : string -> unit;
  load_snapshot : unit -> string option;
  erase : unit -> unit;
}
(** Where the snapshot and WAL live — both halves must name the same
    durable location family. *)

val memory_store : unit -> store
(** Volatile store surviving a *simulated* crash (tests/benches): drop
    the in-RAM tower, keep the store object. *)

val file_store : string -> store
(** WAL at [path], snapshot at [path ^ ".snap"] (temp-file + rename,
    so a crash mid-snapshot keeps the previous one). *)

type t

val create : ?snapshot_every:int -> wid:string -> store -> t
(** Fresh durable tower; erases whatever the store held. Default
    snapshot cadence: every 16 rounds. *)

type recovery = {
  t : t;
  replayed : int;  (** WAL records applied on top of the snapshot *)
  wal_status : Wal.status;
  had_snapshot : bool;
}

val recover :
  ?snapshot_every:int -> wid:string -> store -> (recovery, Persist.error) result
(** Rebuild from the store: snapshot (if any) + WAL replay, torn tail
    truncated. [wid] applies only when the store is empty. *)

val tower : t -> Watchtower.t
(** The live in-RAM tower (read-only use; mutate through this module
    so the journal stays ahead of the state). *)

val store : t -> store

val watch : t -> Watchtower.record -> bool
(** Journaled {!Watchtower.watch}; [false] (nothing journaled) when
    the record's signatures do not verify. *)

val unwatch : t -> channel_id:string -> unit

val end_of_round :
  t -> round:int -> ledger:Daric_chain.Ledger.t ->
  post:(Daric_tx.Tx.t -> unit) -> unit
(** Monitor with write-ahead semantics: posts are buffered, the
    round's punishments and cursor advance are journaled, then the
    buffered revocations are released. Snapshots on cadence. *)

val snapshot : t -> unit
(** Snapshot now and reset the WAL. *)

val wal_bytes : t -> int
(** Total WAL bytes appended through this handle (overhead metric;
    not reset by snapshots). *)

val wal_size : t -> int
(** Current WAL length on the store (reset by snapshots). *)

val snapshots_taken : t -> int

val snapshot_bytes : t -> int
(** Size of the most recent snapshot blob. *)
