(** Daric watchtower with O(1) per-channel storage.

    After every channel update the client hands the watchtower one
    fixed-size record: the reconstruction parameters of the channel's
    commit scripts plus the latest floating revocation transaction with
    both ANYPREVOUT signatures. The record *replaces* the previous one —
    unlike a Lightning watchtower, nothing accumulates.

    Monitoring is driven by the ledger's append-only spent-outpoint
    log: each round the tower reads only the outpoints spent since its
    last poll (a stored cursor) and maps them through a funding-output
    index to the guarded channel, so end-of-round cost is O(newly
    spent outpoints) — independent of both the number of guarded
    channels and the chain length. Records installed since the last
    poll are additionally checked once directly (their funding may
    have been spent before the tower started watching). If a spend is
    a counter-party commit whose (sequence-encoded) state index is at
    most the latest revoked index, the tower completes the revocation
    transaction and posts it instantly. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger

type record = {
  channel_id : string;
  funding : Tx.outpoint;
  keys_a : Keys.pub;
  keys_b : Keys.pub;
  s0 : int;
  rel_lock : int;
  cash : int;
  client_role : Keys.role;  (** whose funds we guard *)
  revoked : int;  (** latest revoked state index (sn - 1) *)
  rev_body : Tx.t;  (** the client's floating revocation transaction *)
  sig_a : string;  (** revocation-branch signature in Alice position *)
  sig_b : string;  (** revocation-branch signature in Bob position *)
}

type t = {
  wid : string;
  records : (string, record) Hashtbl.t;  (** by channel id *)
  by_funding : (Tx.outpoint, string) Hashtbl.t;
      (** guarded funding outpoint → channel id *)
  mutable fresh : string list;
      (** channels (re)watched since the last poll; checked once
          directly in case their funding was spent before watching *)
  punished_set : (string, unit) Hashtbl.t;
  mutable punished_list : string list;  (** newest first, for reporting *)
  mutable cursor : int;  (** position in the ledger's spent log *)
}

let create ~(wid : string) () : t =
  { wid;
    records = Hashtbl.create 64;
    by_funding = Hashtbl.create 64;
    fresh = [];
    punished_set = Hashtbl.create 16;
    punished_list = [];
    cursor = 0 }

(** Check a client record's two revocation-branch signatures in one
    {!Daric_crypto.Schnorr.batch_verify}. The record guards against the
    *counter-party's* commits, whose revocation branch carries the rv
    keys (owner Alice) or rv' keys (owner Bob); both signatures cover
    the ANYPREVOUT message of the floating revocation body. A tower
    that skipped this would store garbage it can never post. *)
let record_valid (r : record) : bool =
  let owner = Keys.other_role r.client_role in
  let rv1, rv2 =
    match owner with
    | Keys.Alice -> (r.keys_a.Keys.rv_pk, r.keys_b.Keys.rv_pk)
    | Keys.Bob -> (r.keys_a.Keys.rv'_pk, r.keys_b.Keys.rv'_pk)
  in
  let item pk sig_bytes =
    if String.length sig_bytes <> Daric_crypto.Schnorr.signature_size then None
    else
      match
        ( Daric_tx.Sighash.flag_of_byte
            (Char.code sig_bytes.[String.length sig_bytes - 1]),
          Daric_crypto.Schnorr.decode_signature sig_bytes )
      with
      | Some flag, Some sg ->
          Some (pk, Daric_tx.Sighash.message flag r.rev_body ~input_index:0, sg)
      | _ -> None
  in
  match (item rv1 r.sig_a, item rv2 r.sig_b) with
  | Some a, Some b -> Daric_crypto.Schnorr.batch_verify [ a; b ]
  | _ -> false

(** Install or replace the record for a channel — the client calls this
    after each update. Storage stays constant per channel; both the
    replace and the funding-index update are O(1). Records whose
    signatures do not batch-verify are rejected (returns [false]) and
    the previous record, if any, is kept. *)
let watch (t : t) (r : record) : bool =
  if not (record_valid r) then false
  else begin
    (match Hashtbl.find_opt t.records r.channel_id with
    | Some old when not (Tx.outpoint_equal old.funding r.funding) ->
        Hashtbl.remove t.by_funding old.funding
    | _ -> ());
    Hashtbl.replace t.records r.channel_id r;
    Hashtbl.replace t.by_funding r.funding r.channel_id;
    t.fresh <- r.channel_id :: t.fresh;
    true
  end

(** Install a record without re-running {!record_valid} — the recovery
    path: the record came from this tower's own snapshot/WAL (it was
    verified when first watched, and the store is CRC-framed), so the
    batch verification is not paid again. [fresh] controls whether the
    next poll re-checks the channel's funding directly — replayed
    journal entries say [true] (their funding may have been spent while
    the tower was down), snapshot restores carry the persisted flag. *)
let restore_record (t : t) ~(fresh : bool) (r : record) : unit =
  (match Hashtbl.find_opt t.records r.channel_id with
  | Some old when not (Tx.outpoint_equal old.funding r.funding) ->
      Hashtbl.remove t.by_funding old.funding
  | _ -> ());
  Hashtbl.replace t.records r.channel_id r;
  Hashtbl.replace t.by_funding r.funding r.channel_id;
  if fresh then t.fresh <- r.channel_id :: t.fresh

let unwatch (t : t) ~(channel_id : string) : unit =
  match Hashtbl.find_opt t.records channel_id with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.records channel_id;
      Hashtbl.remove t.by_funding r.funding

let wid (t : t) : string = t.wid

let find_record (t : t) (channel_id : string) : record option =
  Hashtbl.find_opt t.records channel_id

let punished (t : t) : string list = t.punished_list
let punished_mem (t : t) (channel_id : string) : bool =
  Hashtbl.mem t.punished_set channel_id

(** Replay a journaled punishment (recovery): record the fact without
    posting anything — the revocation transaction was already posted
    (or is already on chain) in the run that journaled it. *)
let mark_punished (t : t) (channel_id : string) : unit =
  if not (Hashtbl.mem t.punished_set channel_id) then begin
    t.punished_list <- channel_id :: t.punished_list;
    Hashtbl.replace t.punished_set channel_id ()
  end

let cursor (t : t) : int = t.cursor
let set_cursor (t : t) (c : int) : unit = t.cursor <- c
let fresh_ids (t : t) : string list = t.fresh

let fold_records (t : t) (f : record -> 'a -> 'a) (init : 'a) : 'a =
  Hashtbl.fold (fun _ r acc -> f r acc) t.records init

let guarded_count (t : t) : int = Hashtbl.length t.records

(** Serialized size in bytes of everything retained for one channel:
    two 33-byte key bundles (4 keys each), script parameters, the
    revocation body and two 73-byte signatures. Constant in the number
    of channel updates — the Table 1 watchtower-storage claim. *)
let record_bytes (r : record) : int =
  let keys = 2 * 4 * Daric_crypto.Schnorr.public_key_size in
  let params = 4 * 4 in
  let body = Tx.non_witness_size r.rev_body in
  let sigs = 2 * Daric_crypto.Schnorr.signature_size in
  let outpoint = 36 in
  keys + params + body + sigs + outpoint + String.length r.channel_id

let storage_bytes (t : t) : int =
  Hashtbl.fold (fun _ r acc -> acc + record_bytes r) t.records 0

(* React to a spend of a guarded funding output: if it is a revoked
   counter-party commit, complete and post the revocation tx. *)
let react (t : t) (r : record) (spender : Tx.t) ~(post : Tx.t -> unit) : unit =
  let seq = match spender.Tx.inputs with [ i ] -> i.sequence | _ -> -1 in
  if seq >= 0 && seq <= r.revoked then
    (* reconstruct the counter-party's state-seq commit script *)
    let owner = Keys.other_role r.client_role in
    let script =
      Txs.commit_script_of ~role:owner ~keys_a:r.keys_a ~keys_b:r.keys_b
        ~s0:r.s0 ~i:seq ~rel_lock:r.rel_lock
    in
    match spender.Tx.outputs with
    | [ { Tx.spk = Tx.P2wsh h; _ } ] when String.equal h (Script.hash script) ->
        let rv =
          Txs.complete_revocation r.rev_body
            ~commit_outpoint:(Tx.outpoint_of spender 0)
            ~commit_script:script ~sig1:r.sig_a ~sig2:r.sig_b
        in
        post rv;
        t.punished_list <- r.channel_id :: t.punished_list;
        Hashtbl.replace t.punished_set r.channel_id ()
    | _ -> ()

let check_channel (t : t) ~(ledger : Ledger.t) ~(post : Tx.t -> unit)
    (cid : string) : unit =
  match Hashtbl.find_opt t.records cid with
  | None -> ()
  | Some r ->
      if not (Hashtbl.mem t.punished_set cid) then (
        match Ledger.spender_of ledger r.funding with
        | None -> ()
        | Some spender -> react t r spender ~post)

(** End-of-round monitoring: punish revoked counter-party commits.
    Cost is O(records watched since the last poll + outpoints spent
    since the last poll) — channels whose funding stayed untouched are
    never visited. *)
let end_of_round (t : t) ~(round : int) ~(ledger : Ledger.t)
    ~(post : Tx.t -> unit) : unit =
  ignore round;
  let fresh = t.fresh in
  t.fresh <- [];
  List.iter (check_channel t ~ledger ~post) fresh;
  t.cursor <-
    Ledger.iter_spent_since ledger ~cursor:t.cursor (fun o ->
        match Hashtbl.find_opt t.by_funding o with
        | None -> ()
        | Some cid -> check_channel t ~ledger ~post cid)

(** Reference monitor reproducing the pre-index cost shape: visit
    every guarded channel and resolve its funding spender with the
    ledger's linear history scan — O(channels × accepted history) per
    round. Reacts identically to {!end_of_round} (the differential
    tests rely on this); kept runnable as the benchmark baseline. *)
let end_of_round_scan (t : t) ~(round : int) ~(ledger : Ledger.t)
    ~(post : Tx.t -> unit) : unit =
  ignore round;
  t.fresh <- [];
  t.cursor <- Ledger.spent_log_length ledger;
  Hashtbl.iter
    (fun cid r ->
      if not (Hashtbl.mem t.punished_set cid) then
        match Ledger.spender_of_scan ledger r.funding with
        | None -> ()
        | Some spender -> react t r spender ~post)
    t.records

(** Build the current watchtower record for a party's channel. Returns
    [None] until the first update has completed (there is nothing to
    revoke in state 0). *)
let record_for (p : Party.t) ~(id : string) : record option =
  match Party.find_chan p id with
  | None -> None
  | Some c -> (
      match (c.Party.rev_sig_theirs, c.Party.rev_sig_mine, c.Party.fund) with
      | Some sig_theirs, Some sig_mine, Some fund ->
          let keys_a, keys_b = Party.keys_ab c in
          let revoked = c.Party.sn - 1 in
          let rev_body = Party.my_rev_body c ~revoked in
          let sig_a, sig_b = Party.rev_witness_sigs c ~sig_mine ~sig_theirs in
          Some
            { channel_id = id;
              funding = Tx.outpoint_of fund 0;
              keys_a;
              keys_b;
              s0 = c.Party.cfg.s0;
              rel_lock = c.Party.cfg.rel_lock;
              cash = Party.cash c.Party.cfg;
              client_role = c.Party.cfg.role;
              revoked;
              rev_body;
              sig_a;
              sig_b }
      | _ -> None)
