(** Daric watchtower with O(1) per-channel storage.

    After every channel update the client hands the watchtower one
    fixed-size record: the reconstruction parameters of the channel's
    commit scripts plus the latest floating revocation transaction with
    both ANYPREVOUT signatures. The record *replaces* the previous one —
    unlike a Lightning watchtower, nothing accumulates.

    Records are retained in packed form by default: each one is
    encoded with the durable-state codec and stored as a slot in a
    {!Daric_util.Arena} — a few large unscanned [Bytes] chunks — so a
    tower guarding 100k channels presents the major GC with a handful
    of opaque blocks instead of ~20·N boxed words to mark every cycle.
    [find_record] decodes on demand; snapshots blit the packed bytes
    directly. The boxed representation is kept behind the [Boxed]
    backend flag as the differential-test oracle.

    Storage is reclaimed, not merely unindexed: [unwatch] and the
    punish path free the record's arena slot (or drop the boxed
    record), so a churned tower's heap tracks its guarded count, not
    its lifetime watch count. A punished channel needs no record — the
    revocation transaction is already posted.

    Monitoring is driven by the ledger's append-only spent-outpoint
    log: each round the tower reads only the outpoints spent since its
    last poll (a stored cursor) and maps them through a funding-output
    index to the guarded channel, so end-of-round cost is O(newly
    spent outpoints) — independent of both the number of guarded
    channels and the chain length. Records installed since the last
    poll are additionally checked once directly (their funding may
    have been spent before the tower started watching). If a spend is
    a counter-party commit whose (sequence-encoded) state index is at
    most the latest revoked index, the tower completes the revocation
    transaction and posts it instantly. *)

module Tx = Daric_tx.Tx
module Txcodec = Daric_tx.Txcodec
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Arena = Daric_util.Arena
module Intern = Daric_util.Intern
module W = Daric_util.Byteio.Writer
module R = Daric_util.Byteio.Reader

type record = {
  channel_id : string;
  funding : Tx.outpoint;
  keys_a : Keys.pub;
  keys_b : Keys.pub;
  s0 : int;
  rel_lock : int;
  cash : int;
  client_role : Keys.role;  (** whose funds we guard *)
  revoked : int;  (** latest revoked state index (sn - 1) *)
  rev_body : Tx.t;  (** the client's floating revocation transaction *)
  sig_a : string;  (** revocation-branch signature in Alice position *)
  sig_b : string;  (** revocation-branch signature in Bob position *)
}

type backend = Packed | Boxed

(* One guarded channel. The funding outpoint and serialized size are
   kept unpacked — the monitor reads them on every poll that touches
   the channel, and storage accounting must not decode. *)
type entry = {
  mutable e_funding : Tx.outpoint;
  mutable e_rbytes : int;  (** {!record_bytes} of the current record *)
  mutable e_data : data;
}

and data = Slot of Arena.slot | Boxed_rec of record

type t = {
  wid : string;
  backend : backend;
  arena : Arena.t;  (** packed record bytes (unused when [Boxed]) *)
  entries : (string, entry) Hashtbl.t;  (** by channel id *)
  by_funding : (Tx.outpoint, string) Hashtbl.t;
      (** guarded funding outpoint → channel id *)
  mutable fresh : string list;
      (** channels (re)watched since the last poll; checked once
          directly in case their funding was spent before watching *)
  punished_set : (string, unit) Hashtbl.t;
  mutable punished_list : string list;  (** newest first, for reporting *)
  mutable cursor : int;  (** position in the ledger's spent log *)
}

let create ?(backend = Packed) ~(wid : string) () : t =
  { wid;
    backend;
    arena = Arena.create ();
    entries = Hashtbl.create 64;
    by_funding = Hashtbl.create 64;
    fresh = [];
    punished_set = Hashtbl.create 16;
    punished_list = [];
    cursor = 0 }

let backend (t : t) : backend = t.backend

(* ---- record codec (same byte format as the Persist WAL records) ---- *)

let write_record w (r : record) =
  W.var_string w r.channel_id;
  W.var_string w r.funding.Tx.txid;
  W.u32 w r.funding.Tx.vout;
  Codec.write_pub w r.keys_a;
  Codec.write_pub w r.keys_b;
  W.u32 w r.s0;
  W.u32 w r.rel_lock;
  W.u32 w r.cash;
  Codec.write_role w r.client_role;
  W.u32 w r.revoked;
  Txcodec.write_tx w r.rev_body;
  W.var_string w r.sig_a;
  W.var_string w r.sig_b

let read_record r : record =
  let channel_id = Intern.string (R.var_string r) in
  let txid = Intern.string (R.var_string r) in
  let vout = R.u32 r in
  let keys_a = Codec.read_pub r in
  let keys_b = Codec.read_pub r in
  let s0 = R.u32 r in
  let rel_lock = R.u32 r in
  let cash = R.u32 r in
  let client_role = Codec.read_role r in
  let revoked = R.u32 r in
  let rev_body = Txcodec.read_tx r in
  let sig_a = Intern.string (R.var_string r) in
  let sig_b = Intern.string (R.var_string r) in
  { channel_id; funding = { Tx.txid; vout }; keys_a; keys_b; s0; rel_lock;
    cash; client_role; revoked; rev_body; sig_a; sig_b }

let encode_record (r : record) : string =
  let w = W.create () in
  write_record w r;
  W.contents w

(* The arena is process-private and CRC-framed stores re-verify before
   handing us bytes, so a decode failure here is a logic error. *)
let decode_record_exn (blob : string) : record =
  read_record (R.create blob)

(** Serialized size in bytes of everything retained for one channel:
    two 33-byte key bundles (4 keys each), script parameters, the
    revocation body and two 73-byte signatures. Constant in the number
    of channel updates — the Table 1 watchtower-storage claim. *)
let record_bytes (r : record) : int =
  let keys = 2 * 4 * Daric_crypto.Schnorr.public_key_size in
  let params = 4 * 4 in
  let body = Tx.non_witness_size r.rev_body in
  let sigs = 2 * Daric_crypto.Schnorr.signature_size in
  let outpoint = 36 in
  keys + params + body + sigs + outpoint + String.length r.channel_id

(* ---- entry plumbing ---- *)

let entry_record (t : t) (e : entry) : record =
  match e.e_data with
  | Boxed_rec r -> r
  | Slot s -> decode_record_exn (Arena.read t.arena s)

(* Install or overwrite the entry for [r.channel_id], reusing the
   existing arena slot in place when the new encoding fits (record
   sizes are stable across updates of one channel). *)
let put_record (t : t) (r : record) : unit =
  let rb = record_bytes r in
  match Hashtbl.find_opt t.entries r.channel_id with
  | Some e ->
      if not (Tx.outpoint_equal e.e_funding r.funding) then begin
        Hashtbl.remove t.by_funding e.e_funding;
        Hashtbl.replace t.by_funding r.funding r.channel_id;
        e.e_funding <- r.funding
      end;
      e.e_rbytes <- rb;
      (match e.e_data with
      | Slot s -> e.e_data <- Slot (Arena.replace t.arena s (encode_record r))
      | Boxed_rec _ -> e.e_data <- Boxed_rec r)
  | None ->
      let data =
        match t.backend with
        | Packed -> Slot (Arena.store t.arena (encode_record r))
        | Boxed -> Boxed_rec r
      in
      Hashtbl.replace t.entries r.channel_id
        { e_funding = r.funding; e_rbytes = rb; e_data = data };
      Hashtbl.replace t.by_funding r.funding r.channel_id

(* Drop a channel's entry and reclaim its storage: the arena slot goes
   back on the free list (packed) or the boxed record is unpinned. *)
let drop_record (t : t) (channel_id : string) : unit =
  match Hashtbl.find_opt t.entries channel_id with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.entries channel_id;
      Hashtbl.remove t.by_funding e.e_funding;
      (match e.e_data with
      | Slot s -> Arena.free t.arena s
      | Boxed_rec _ -> ())

(** Check a client record's two revocation-branch signatures in one
    {!Daric_crypto.Schnorr.batch_verify}. The record guards against the
    *counter-party's* commits, whose revocation branch carries the rv
    keys (owner Alice) or rv' keys (owner Bob); both signatures cover
    the ANYPREVOUT message of the floating revocation body. A tower
    that skipped this would store garbage it can never post. *)
let record_valid (r : record) : bool =
  let owner = Keys.other_role r.client_role in
  let rv1, rv2 =
    match owner with
    | Keys.Alice -> (r.keys_a.Keys.rv_pk, r.keys_b.Keys.rv_pk)
    | Keys.Bob -> (r.keys_a.Keys.rv'_pk, r.keys_b.Keys.rv'_pk)
  in
  let item pk sig_bytes =
    if String.length sig_bytes <> Daric_crypto.Schnorr.signature_size then None
    else
      match
        ( Daric_tx.Sighash.flag_of_byte
            (Char.code sig_bytes.[String.length sig_bytes - 1]),
          Daric_crypto.Schnorr.decode_signature sig_bytes )
      with
      | Some flag, Some sg ->
          Some (pk, Daric_tx.Sighash.message flag r.rev_body ~input_index:0, sg)
      | _ -> None
  in
  match (item rv1 r.sig_a, item rv2 r.sig_b) with
  | Some a, Some b -> Daric_crypto.Schnorr.batch_verify_pooled [ a; b ]
  | _ -> false

(** Install or replace the record for a channel — the client calls this
    after each update. Storage stays constant per channel; both the
    replace and the funding-index update are O(1). Records whose
    signatures do not batch-verify are rejected (returns [false]) and
    the previous record, if any, is kept. *)
let watch (t : t) (r : record) : bool =
  if not (record_valid r) then false
  else begin
    put_record t r;
    t.fresh <- r.channel_id :: t.fresh;
    true
  end

(** Install a record without re-running {!record_valid} — the recovery
    path: the record came from this tower's own snapshot/WAL (it was
    verified when first watched, and the store is CRC-framed), so the
    batch verification is not paid again. [fresh] controls whether the
    next poll re-checks the channel's funding directly — replayed
    journal entries say [true] (their funding may have been spent while
    the tower was down), snapshot restores carry the persisted flag. *)
let restore_record (t : t) ~(fresh : bool) (r : record) : unit =
  put_record t r;
  if fresh then t.fresh <- r.channel_id :: t.fresh

let unwatch (t : t) ~(channel_id : string) : unit = drop_record t channel_id

let wid (t : t) : string = t.wid

let find_record (t : t) (channel_id : string) : record option =
  match Hashtbl.find_opt t.entries channel_id with
  | None -> None
  | Some e -> Some (entry_record t e)

let punished (t : t) : string list = t.punished_list
let punished_mem (t : t) (channel_id : string) : bool =
  Hashtbl.mem t.punished_set channel_id

(** Replay a journaled punishment (recovery): record the fact without
    posting anything — the revocation transaction was already posted
    (or is already on chain) in the run that journaled it. The
    channel's record, if restored, is reclaimed exactly as the live
    punish path would have. *)
let mark_punished (t : t) (channel_id : string) : unit =
  if not (Hashtbl.mem t.punished_set channel_id) then begin
    t.punished_list <- channel_id :: t.punished_list;
    Hashtbl.replace t.punished_set channel_id ()
  end;
  drop_record t channel_id

let cursor (t : t) : int = t.cursor
let set_cursor (t : t) (c : int) : unit = t.cursor <- c
let fresh_ids (t : t) : string list = t.fresh

let fold_records (t : t) (f : record -> 'a -> 'a) (init : 'a) : 'a =
  Hashtbl.fold (fun _ e acc -> f (entry_record t e) acc) t.entries init

(** Iterate the encoded form of every guarded record — exactly the
    {!encode_record} bytes. The packed backend blits them straight out
    of the arena (no decode/re-encode round trip); the boxed oracle
    encodes on the fly. Snapshots ({!Persist.encode_tower}) are built
    from this, so both backends snapshot byte-identically. *)
let iter_record_blobs (t : t) (f : string -> unit) : unit =
  Hashtbl.iter
    (fun _ e ->
      match e.e_data with
      | Slot s -> f (Arena.read t.arena s)
      | Boxed_rec r -> f (encode_record r))
    t.entries

let guarded_count (t : t) : int = Hashtbl.length t.entries

let storage_bytes (t : t) : int =
  Hashtbl.fold (fun _ e acc -> acc + e.e_rbytes) t.entries 0

(** Bytes of packed record storage currently live in the arena (0 for
    the boxed oracle) — the retained-memory metric of the mem bench. *)
let arena_live_bytes (t : t) : int = Arena.live_bytes t.arena

(** Bytes of arena capacity allocated from the heap (chunks), live or
    free-listed. Bounded by peak concurrent watches, not churn. *)
let arena_capacity_bytes (t : t) : int = Arena.capacity_bytes t.arena

(* React to a spend of a guarded funding output: if it is a revoked
   counter-party commit, complete and post the revocation tx. The
   punished channel's record is reclaimed — nothing is left to guard
   once the revocation transaction is on its way. *)
let react (t : t) (r : record) (spender : Tx.t) ~(post : Tx.t -> unit) : unit =
  let seq = match spender.Tx.inputs with [ i ] -> i.sequence | _ -> -1 in
  if seq >= 0 && seq <= r.revoked then
    (* reconstruct the counter-party's state-seq commit script *)
    let owner = Keys.other_role r.client_role in
    let script =
      Txs.commit_script_of ~role:owner ~keys_a:r.keys_a ~keys_b:r.keys_b
        ~s0:r.s0 ~i:seq ~rel_lock:r.rel_lock
    in
    match spender.Tx.outputs with
    | [ { Tx.spk = Tx.P2wsh h; _ } ] when String.equal h (Script.hash script) ->
        let rv =
          Txs.complete_revocation r.rev_body
            ~commit_outpoint:(Tx.outpoint_of spender 0)
            ~commit_script:script ~sig1:r.sig_a ~sig2:r.sig_b
        in
        post rv;
        t.punished_list <- r.channel_id :: t.punished_list;
        Hashtbl.replace t.punished_set r.channel_id ();
        drop_record t r.channel_id
    | _ -> ()

let check_channel (t : t) ~(ledger : Ledger.t) ~(post : Tx.t -> unit)
    (cid : string) : unit =
  match find_record t cid with
  | None -> ()
  | Some r ->
      if not (Hashtbl.mem t.punished_set cid) then (
        match Ledger.spender_of ledger r.funding with
        | None -> ()
        | Some spender -> react t r spender ~post)

(** End-of-round monitoring: punish revoked counter-party commits.
    Cost is O(records watched since the last poll + outpoints spent
    since the last poll) — channels whose funding stayed untouched are
    never visited. *)
let end_of_round (t : t) ~(round : int) ~(ledger : Ledger.t)
    ~(post : Tx.t -> unit) : unit =
  ignore round;
  let fresh = t.fresh in
  t.fresh <- [];
  List.iter (check_channel t ~ledger ~post) fresh;
  t.cursor <-
    Ledger.iter_spent_since ledger ~cursor:t.cursor (fun o ->
        match Hashtbl.find_opt t.by_funding o with
        | None -> ()
        | Some cid -> check_channel t ~ledger ~post cid)

(** Reference monitor reproducing the pre-index cost shape: visit
    every guarded channel and resolve its funding spender with the
    ledger's linear history scan — O(channels × accepted history) per
    round. Reacts identically to {!end_of_round} (the differential
    tests rely on this); kept runnable as the benchmark baseline. *)
let end_of_round_scan (t : t) ~(round : int) ~(ledger : Ledger.t)
    ~(post : Tx.t -> unit) : unit =
  ignore round;
  t.fresh <- [];
  t.cursor <- Ledger.spent_log_length ledger;
  (* a punish reclaims the record, so snapshot the guarded set before
     iterating — mutating a hashtable mid-[iter] is unspecified *)
  let guarded =
    Hashtbl.fold (fun cid e acc -> (cid, entry_record t e) :: acc) t.entries []
  in
  List.iter
    (fun (cid, r) ->
      if not (Hashtbl.mem t.punished_set cid) then
        match Ledger.spender_of_scan ledger r.funding with
        | None -> ()
        | Some spender -> react t r spender ~post)
    guarded

(** Build the current watchtower record for a party's channel. Returns
    [None] until the first update has completed (there is nothing to
    revoke in state 0). Signature and txid strings are interned — the
    same bytes are also held by the parties, and at N channels the
    duplicates add up. *)
let record_for (p : Party.t) ~(id : string) : record option =
  match Party.find_chan p id with
  | None -> None
  | Some c -> (
      match (c.Party.rev_sig_theirs, c.Party.rev_sig_mine, c.Party.fund) with
      | Some sig_theirs, Some sig_mine, Some fund ->
          let keys_a, keys_b = Party.keys_ab c in
          let revoked = c.Party.sn - 1 in
          let rev_body = Party.my_rev_body c ~revoked in
          let sig_a, sig_b = Party.rev_witness_sigs c ~sig_mine ~sig_theirs in
          Some
            { channel_id = Intern.string id;
              funding = Tx.outpoint_of fund 0;
              keys_a;
              keys_b;
              s0 = c.Party.cfg.s0;
              rel_lock = c.Party.cfg.rel_lock;
              cash = Party.cash c.Party.cfg;
              client_role = c.Party.cfg.role;
              revoked;
              rev_body;
              sig_a = Intern.string sig_a;
              sig_b = Intern.string sig_b }
      | _ -> None)
