(** Durable state codecs: versioned binary snapshots of exactly what a
    Daric party must retain per channel and of a watchtower's full
    guarded-set state (records, punished set, spent-log cursor).

    The channel blob IS the party's entire per-channel storage — its
    size is constant in the number of updates, and a party restarted
    from it can still close, settle and punish. Only quiescent
    channels (flag = 1, no update in flight) are persisted — a crashed
    mid-update party recovers by ForceClose from its last durable
    state, exactly the conservative behaviour the protocol prescribes.

    The tower snapshot is the at-rest half of the {!Durable}
    subsystem: {!encode_tower} every K rounds, journal the
    watch/unwatch/punish/cursor deltas in between ({!Daric_util.Wal}),
    recover with {!restore_tower} + replay.

    The low-level transaction codec lives in {!Daric_tx.Txcodec}
    (shared with the ledger's accepted-log compaction), the key
    codecs in {!Codec}, and the record codec in {!Watchtower} (whose
    packed arena stores exactly those bytes — snapshots blit them out
    without a decode/re-encode round trip).

    Every blob opens with a 7-byte magic and a format-version byte;
    decoding failures are the typed {!error} variant (rendered for the
    CLI by {!error_to_string}), never a raw exception. *)

module Tx = Daric_tx.Tx
module Txcodec = Daric_tx.Txcodec
module W = Daric_util.Byteio.Writer
module R = Daric_util.Byteio.Reader

type error = Bad_magic | Bad_version | Truncated | Bad_field of string

let error_to_string = function
  | Bad_magic -> "bad magic"
  | Bad_version -> "unsupported blob version"
  | Truncated -> "truncated blob"
  | Bad_field m -> m

(* Blob kinds are distinguished by magic; both share the version byte
   that follows it. *)
let chan_magic = "DARICCH"
let tower_magic = "DARICTW"
let format_version = 1

let write_header w ~magic =
  W.string w magic;
  W.byte w format_version

(** Check magic + version; all further decoding errors surface as
    {!Truncated} or {!Bad_field} via {!wrap_decode}. *)
let read_header r ~magic : (unit, error) result =
  match R.string r (String.length magic) with
  | exception R.Truncated -> Error Truncated
  | m when not (String.equal m magic) -> Error Bad_magic
  | _ -> (
      match R.byte r with
      | exception R.Truncated -> Error Truncated
      | v when v <> format_version -> Error Bad_version
      | _ -> Ok ())

let wrap_decode (f : unit -> ('a, error) result) : ('a, error) result =
  try f () with
  | R.Truncated -> Error Truncated
  | Txcodec.Bad_blob m -> Error (Bad_field m)

(* Shared codec aliases (byte format unchanged across the split). *)
let write_tx = Txcodec.write_tx
let read_tx = Txcodec.read_tx
let write_output = Txcodec.write_output
let read_output = Txcodec.read_output
let write_list = Txcodec.write_list
let read_list = Txcodec.read_list
let write_opt = Txcodec.write_opt
let read_opt = Txcodec.read_opt

(* ---- channel encoding --------------------------------------------- *)

(** Serialize a quiescent channel. Fails if an update or closure is in
    flight (persist only between operations). *)
let encode_chan (c : Party.chan) : (string, error) result =
  if c.Party.phase <> Party.Operational then
    Error
      (Bad_field
         (Fmt.str "channel %s is not quiescent (%s)" c.Party.cfg.id
            (Party.phase_to_string c.Party.phase)))
  else begin
    let w = W.create () in
    write_header w ~magic:chan_magic;
    W.var_string w c.Party.cfg.id;
    Codec.write_role w c.Party.cfg.role;
    W.var_string w c.Party.cfg.peer;
    W.u32 w c.Party.cfg.bal_a;
    W.u32 w c.Party.cfg.bal_b;
    W.u32 w c.Party.cfg.rel_lock;
    W.u32 w c.Party.cfg.s0;
    Codec.write_keypair w c.Party.keys.Keys.main;
    Codec.write_keypair w c.Party.keys.Keys.sp;
    Codec.write_keypair w c.Party.keys.Keys.rv;
    Codec.write_keypair w c.Party.keys.Keys.rv';
    write_opt w Codec.write_pub c.Party.their_keys;
    W.u32 w c.Party.sn;
    write_list w write_output c.Party.st;
    write_opt w write_tx c.Party.fund;
    write_opt w write_tx c.Party.commit_mine;
    write_opt w write_tx c.Party.commit_theirs_body;
    write_opt w
      (fun w (sd : Party.split_data) ->
        write_tx w sd.Party.split_body;
        W.var_string w sd.Party.split_sig_a;
        W.var_string w sd.Party.split_sig_b)
      c.Party.split;
    write_opt w (fun w s -> W.var_string w s) c.Party.rev_sig_theirs;
    write_opt w (fun w s -> W.var_string w s) c.Party.rev_sig_mine;
    Ok (W.contents w)
  end

(** Restore a channel into [party] (which must not already track it). *)
let restore_chan (party : Party.t) (blob : string) : (unit, error) result =
  let r = R.create blob in
  match read_header r ~magic:chan_magic with
  | Error e -> Error e
  | Ok () ->
      wrap_decode (fun () ->
          let id = R.var_string r in
          if Party.find_chan party id <> None then
            Error (Bad_field ("duplicate channel " ^ id))
          else begin
            let role = Codec.read_role r in
            let peer = R.var_string r in
            let bal_a = R.u32 r in
            let bal_b = R.u32 r in
            let rel_lock = R.u32 r in
            let s0 = R.u32 r in
            let cfg = { Party.id; role; peer; bal_a; bal_b; rel_lock; s0 } in
            let main = Codec.read_keypair r in
            let sp = Codec.read_keypair r in
            let rv = Codec.read_keypair r in
            let rv' = Codec.read_keypair r in
            let keys = { Keys.main; sp; rv; rv' } in
            let their_keys = read_opt r Codec.read_pub in
            let sn = R.u32 r in
            let st = read_list r read_output in
            let fund = read_opt r read_tx in
            let commit_mine = read_opt r read_tx in
            let commit_theirs_body = read_opt r read_tx in
            let split =
              read_opt r (fun r ->
                  let split_body = read_tx r in
                  let split_sig_a = R.var_string r in
                  let split_sig_b = R.var_string r in
                  { Party.split_body; split_sig_a; split_sig_b })
            in
            let rev_sig_theirs = read_opt r (fun r -> R.var_string r) in
            let rev_sig_mine = read_opt r (fun r -> R.var_string r) in
            if not (R.at_end r) then Error (Bad_field "trailing bytes")
            else begin
              let c : Party.chan =
                { cfg; keys; sctx = Party.sctx_of_keys keys; pinned_pks = [];
                  their_keys; tid_mine = None; tid_theirs = None;
                  fund; fund_sig_mine = None; fund_sig_theirs = None; sn; st;
                  flag = 1; st' = None; commit_mine; commit_theirs_body; split;
                  rev_sig_theirs; rev_sig_mine; pending = None;
                  requested_theta = None; phase = Party.Operational;
                  deadline = None; fin_split = None; commit_on_chain = None;
                  split_posted = false; punish_posted = None; outcome = None }
              in
              party.Party.chans <- (id, c) :: party.Party.chans;
              Party.repin_keys c;
              Ok ()
            end
          end)

let blob_size (c : Party.chan) : (int, error) result =
  Result.map String.length (encode_chan c)

(* ---- watchtower record & snapshot codecs -------------------------- *)

(** One guarded-channel record, as journaled in the durable tower's
    WAL (no header — the WAL frame already carries the version). The
    codec itself lives in {!Watchtower}, next to the packed arena that
    stores exactly these bytes. *)
let encode_record = Watchtower.encode_record

let decode_record (blob : string) : (Watchtower.record, error) result =
  wrap_decode (fun () ->
      let r = R.create blob in
      let rec_ = Watchtower.read_record r in
      if not (R.at_end r) then Error (Bad_field "trailing bytes")
      else Ok rec_)

(** Full tower snapshot: identity, every guarded record, the punished
    list (oldest first), the fresh list and the spent-log cursor.
    Size is O(guarded channels) — each of them O(1) — which is the
    Table 1 storage claim made durable. Record bytes are blitted
    straight from the packed arena (no decode/re-encode). *)
let encode_tower (t : Watchtower.t) : string =
  let w = W.create () in
  write_header w ~magic:tower_magic;
  W.var_string w (Watchtower.wid t);
  W.varint w (Watchtower.guarded_count t);
  Watchtower.iter_record_blobs t (fun blob -> W.string w blob);
  write_list w (fun w s -> W.var_string w s)
    (List.rev (Watchtower.punished t));
  write_list w (fun w s -> W.var_string w s) (Watchtower.fresh_ids t);
  W.u64 w (Int64.of_int (Watchtower.cursor t));
  W.contents w

(** Rebuild a tower from its snapshot. Records are installed through
    {!Watchtower.restore_record} (no re-verification — they were
    verified when watched and the store is CRC-framed). *)
let restore_tower (blob : string) : (Watchtower.t, error) result =
  let r = R.create blob in
  match read_header r ~magic:tower_magic with
  | Error e -> Error e
  | Ok () ->
      wrap_decode (fun () ->
          let wid = R.var_string r in
          let t = Watchtower.create ~wid () in
          let n = R.varint r in
          let records =
            List.init n (fun _ -> Watchtower.read_record r)
          in
          let punished = read_list r (fun r -> R.var_string r) in
          (* Punishments first: [mark_punished] reclaims the channel's
             record exactly as the live punish path does, but a record
             in the snapshot was *re-watched after* any punishment it
             appears next to — installing it afterwards preserves the
             live ordering. *)
          List.iter (Watchtower.mark_punished t) punished;
          List.iter (Watchtower.restore_record t ~fresh:false) records;
          let fresh = read_list r (fun r -> R.var_string r) in
          List.iter
            (fun cid ->
              match Watchtower.find_record t cid with
              | Some rec_ -> Watchtower.restore_record t ~fresh:true rec_
              | None -> ())
            (List.rev fresh);
          Watchtower.set_cursor t (Int64.to_int (R.u64 r));
          if not (R.at_end r) then Error (Bad_field "trailing bytes")
          else Ok t)
