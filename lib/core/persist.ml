(** Durable state codecs: versioned binary snapshots of exactly what a
    Daric party must retain per channel and of a watchtower's full
    guarded-set state (records, punished set, spent-log cursor).

    The channel blob IS the party's entire per-channel storage — its
    size is constant in the number of updates, and a party restarted
    from it can still close, settle and punish. Only quiescent
    channels (flag = 1, no update in flight) are persisted — a crashed
    mid-update party recovers by ForceClose from its last durable
    state, exactly the conservative behaviour the protocol prescribes.

    The tower snapshot is the at-rest half of the {!Durable}
    subsystem: {!encode_tower} every K rounds, journal the
    watch/unwatch/punish/cursor deltas in between ({!Daric_util.Wal}),
    recover with {!restore_tower} + replay.

    Every blob opens with a 7-byte magic and a format-version byte;
    decoding failures are the typed {!error} variant (rendered for the
    CLI by {!error_to_string}), never a raw exception. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module W = Daric_util.Byteio.Writer
module R = Daric_util.Byteio.Reader
module Schnorr = Daric_crypto.Schnorr

type error = Bad_magic | Bad_version | Truncated | Bad_field of string

let error_to_string = function
  | Bad_magic -> "bad magic"
  | Bad_version -> "unsupported blob version"
  | Truncated -> "truncated blob"
  | Bad_field m -> m

(* Blob kinds are distinguished by magic; both share the version byte
   that follows it. *)
let chan_magic = "DARICCH"
let tower_magic = "DARICTW"
let format_version = 1

exception Bad_blob of string

let write_header w ~magic =
  W.string w magic;
  W.byte w format_version

(** Check magic + version; all further decoding errors surface as
    {!Truncated} or {!Bad_field} via {!wrap_decode}. *)
let read_header r ~magic : (unit, error) result =
  match R.string r (String.length magic) with
  | exception R.Truncated -> Error Truncated
  | m when not (String.equal m magic) -> Error Bad_magic
  | _ -> (
      match R.byte r with
      | exception R.Truncated -> Error Truncated
      | v when v <> format_version -> Error Bad_version
      | _ -> Ok ())

let wrap_decode (f : unit -> ('a, error) result) : ('a, error) result =
  try f () with
  | R.Truncated -> Error Truncated
  | Bad_blob m -> Error (Bad_field m)

(* ---- transaction encoding (full, with witnesses) ------------------ *)

let write_spk w (spk : Tx.spk) =
  match spk with
  | Tx.P2wsh h ->
      W.byte w 0;
      W.var_string w h
  | Tx.P2wpkh h ->
      W.byte w 1;
      W.var_string w h
  | Tx.Raw s ->
      W.byte w 2;
      W.var_string w (Script.serialize s)
  | Tx.Op_return -> W.byte w 3

let read_spk r : Tx.spk =
  match R.byte r with
  | 0 -> Tx.P2wsh (R.var_string r)
  | 1 -> Tx.P2wpkh (R.var_string r)
  | 3 -> Tx.Op_return
  | 2 -> raise (Bad_blob "raw scripts are not persisted")
  | _ -> raise (Bad_blob "unknown spk tag")

let write_output w (o : Tx.output) =
  W.u64 w (Int64.of_int o.Tx.value);
  write_spk w o.Tx.spk

let read_output r : Tx.output =
  let value = Int64.to_int (R.u64 r) in
  { Tx.value; spk = read_spk r }

let write_list w f l =
  W.varint w (List.length l);
  List.iter (f w) l

let read_list r f =
  let n = R.varint r in
  List.init n (fun _ -> f r)

let write_input w (i : Tx.input) =
  W.var_string w i.Tx.prevout.txid;
  W.u32 w i.Tx.prevout.vout;
  W.u32 w i.Tx.sequence

let read_input r : Tx.input =
  let txid = R.var_string r in
  let vout = R.u32 r in
  let sequence = R.u32 r in
  { Tx.prevout = { Tx.txid; vout }; sequence }

let opcode_tag (op : Script.op) : int =
  match op with
  | Script.If -> 0
  | Notif -> 1
  | Else -> 2
  | Endif -> 3
  | Verify -> 4
  | Return -> 5
  | Dup -> 6
  | Drop -> 7
  | Swap -> 8
  | Size -> 9
  | Equal -> 10
  | Equalverify -> 11
  | Hash160 -> 12
  | Hash256 -> 13
  | Sha256 -> 14
  | Ripemd160 -> 15
  | Checksig -> 16
  | Checksigverify -> 17
  | Checkmultisig -> 18
  | Checkmultisigverify -> 19
  | Cltv -> 20
  | Csv -> 21
  | Push _ | Num _ | Small _ -> raise (Bad_blob "not an opcode")

let opcode_of_tag = function
  | 0 -> Script.If
  | 1 -> Notif
  | 2 -> Else
  | 3 -> Endif
  | 4 -> Verify
  | 5 -> Return
  | 6 -> Dup
  | 7 -> Drop
  | 8 -> Swap
  | 9 -> Size
  | 10 -> Equal
  | 11 -> Equalverify
  | 12 -> Hash160
  | 13 -> Hash256
  | 14 -> Sha256
  | 15 -> Ripemd160
  | 16 -> Checksig
  | 17 -> Checksigverify
  | 18 -> Checkmultisig
  | 19 -> Checkmultisigverify
  | 20 -> Cltv
  | 21 -> Csv
  | _ -> raise (Bad_blob "unknown opcode tag")

let write_witness_elt w (e : Tx.witness_elt) =
  match e with
  | Tx.Data d ->
      W.byte w 0;
      W.var_string w d
  | Tx.Wscript s ->
      W.byte w 1;
      write_list w
        (fun w op ->
          match op with
          | Script.Push d ->
              W.byte w 0;
              W.var_string w d
          | Script.Num v ->
              W.byte w 1;
              W.u32 w v
          | Script.Small v ->
              W.byte w 2;
              W.byte w v
          | other ->
              W.byte w 3;
              W.byte w (opcode_tag other))
        s

let read_witness_elt r : Tx.witness_elt =
  match R.byte r with
  | 0 -> Tx.Data (R.var_string r)
  | 1 ->
      Tx.Wscript
        (read_list r (fun r ->
             match R.byte r with
             | 0 -> Script.Push (R.var_string r)
             | 1 -> Script.Num (R.u32 r)
             | 2 -> Script.Small (R.byte r)
             | 3 -> opcode_of_tag (R.byte r)
             | _ -> raise (Bad_blob "unknown script-op tag")))
  | _ -> raise (Bad_blob "unknown witness tag")

let write_tx w (tx : Tx.t) =
  write_list w write_input tx.Tx.inputs;
  W.u32 w tx.Tx.locktime;
  write_list w write_output tx.Tx.outputs;
  write_list w (fun w wit -> write_list w write_witness_elt wit) tx.Tx.witnesses

let read_tx r : Tx.t =
  let inputs = read_list r read_input in
  let locktime = R.u32 r in
  let outputs = read_list r read_output in
  let witnesses = read_list r (fun r -> read_list r read_witness_elt) in
  Tx.make ~inputs ~locktime ~outputs ~witnesses ()

let write_opt w f = function
  | None -> W.byte w 0
  | Some v ->
      W.byte w 1;
      f w v

let read_opt r f = match R.byte r with 0 -> None | _ -> Some (f r)

let write_keypair w (k : Keys.keypair) = W.u32 w k.Keys.sk

let read_keypair r : Keys.keypair =
  let sk = R.u32 r in
  { Keys.sk; pk = Schnorr.public_key_of_secret sk }

let write_pub w (k : Keys.pub) =
  W.u32 w k.Keys.main_pk;
  W.u32 w k.Keys.sp_pk;
  W.u32 w k.Keys.rv_pk;
  W.u32 w k.Keys.rv'_pk

let read_pub r : Keys.pub =
  let main_pk = R.u32 r in
  let sp_pk = R.u32 r in
  let rv_pk = R.u32 r in
  let rv'_pk = R.u32 r in
  { Keys.main_pk; sp_pk; rv_pk; rv'_pk }

let write_role w (role : Keys.role) =
  W.byte w (match role with Keys.Alice -> 0 | Keys.Bob -> 1)

let read_role r : Keys.role = if R.byte r = 0 then Keys.Alice else Keys.Bob

(* ---- channel encoding --------------------------------------------- *)

(** Serialize a quiescent channel. Fails if an update or closure is in
    flight (persist only between operations). *)
let encode_chan (c : Party.chan) : (string, error) result =
  if c.Party.phase <> Party.Operational then
    Error
      (Bad_field
         (Fmt.str "channel %s is not quiescent (%s)" c.Party.cfg.id
            (Party.phase_to_string c.Party.phase)))
  else begin
    let w = W.create () in
    write_header w ~magic:chan_magic;
    W.var_string w c.Party.cfg.id;
    write_role w c.Party.cfg.role;
    W.var_string w c.Party.cfg.peer;
    W.u32 w c.Party.cfg.bal_a;
    W.u32 w c.Party.cfg.bal_b;
    W.u32 w c.Party.cfg.rel_lock;
    W.u32 w c.Party.cfg.s0;
    write_keypair w c.Party.keys.Keys.main;
    write_keypair w c.Party.keys.Keys.sp;
    write_keypair w c.Party.keys.Keys.rv;
    write_keypair w c.Party.keys.Keys.rv';
    write_opt w write_pub c.Party.their_keys;
    W.u32 w c.Party.sn;
    write_list w write_output c.Party.st;
    write_opt w write_tx c.Party.fund;
    write_opt w write_tx c.Party.commit_mine;
    write_opt w write_tx c.Party.commit_theirs_body;
    write_opt w
      (fun w (sd : Party.split_data) ->
        write_tx w sd.Party.split_body;
        W.var_string w sd.Party.split_sig_a;
        W.var_string w sd.Party.split_sig_b)
      c.Party.split;
    write_opt w (fun w s -> W.var_string w s) c.Party.rev_sig_theirs;
    write_opt w (fun w s -> W.var_string w s) c.Party.rev_sig_mine;
    Ok (W.contents w)
  end

(** Restore a channel into [party] (which must not already track it). *)
let restore_chan (party : Party.t) (blob : string) : (unit, error) result =
  let r = R.create blob in
  match read_header r ~magic:chan_magic with
  | Error e -> Error e
  | Ok () ->
      wrap_decode (fun () ->
          let id = R.var_string r in
          if Party.find_chan party id <> None then
            Error (Bad_field ("duplicate channel " ^ id))
          else begin
            let role = read_role r in
            let peer = R.var_string r in
            let bal_a = R.u32 r in
            let bal_b = R.u32 r in
            let rel_lock = R.u32 r in
            let s0 = R.u32 r in
            let cfg = { Party.id; role; peer; bal_a; bal_b; rel_lock; s0 } in
            let main = read_keypair r in
            let sp = read_keypair r in
            let rv = read_keypair r in
            let rv' = read_keypair r in
            let keys = { Keys.main; sp; rv; rv' } in
            let their_keys = read_opt r read_pub in
            let sn = R.u32 r in
            let st = read_list r read_output in
            let fund = read_opt r read_tx in
            let commit_mine = read_opt r read_tx in
            let commit_theirs_body = read_opt r read_tx in
            let split =
              read_opt r (fun r ->
                  let split_body = read_tx r in
                  let split_sig_a = R.var_string r in
                  let split_sig_b = R.var_string r in
                  { Party.split_body; split_sig_a; split_sig_b })
            in
            let rev_sig_theirs = read_opt r (fun r -> R.var_string r) in
            let rev_sig_mine = read_opt r (fun r -> R.var_string r) in
            if not (R.at_end r) then Error (Bad_field "trailing bytes")
            else begin
              let c : Party.chan =
                { cfg; keys; their_keys; tid_mine = None; tid_theirs = None;
                  fund; fund_sig_mine = None; fund_sig_theirs = None; sn; st;
                  flag = 1; st' = None; commit_mine; commit_theirs_body; split;
                  rev_sig_theirs; rev_sig_mine; pending = None;
                  requested_theta = None; phase = Party.Operational;
                  deadline = None; fin_split = None; commit_on_chain = None;
                  split_posted = false; punish_posted = None; outcome = None }
              in
              party.Party.chans <- (id, c) :: party.Party.chans;
              Ok ()
            end
          end)

let blob_size (c : Party.chan) : (int, error) result =
  Result.map String.length (encode_chan c)

(* ---- watchtower record & snapshot codecs -------------------------- *)

(** One guarded-channel record, as journaled in the durable tower's
    WAL (no header — the WAL frame already carries the version). *)
let write_record w (r : Watchtower.record) =
  W.var_string w r.Watchtower.channel_id;
  W.var_string w r.Watchtower.funding.Tx.txid;
  W.u32 w r.Watchtower.funding.Tx.vout;
  write_pub w r.Watchtower.keys_a;
  write_pub w r.Watchtower.keys_b;
  W.u32 w r.Watchtower.s0;
  W.u32 w r.Watchtower.rel_lock;
  W.u32 w r.Watchtower.cash;
  write_role w r.Watchtower.client_role;
  W.u32 w r.Watchtower.revoked;
  write_tx w r.Watchtower.rev_body;
  W.var_string w r.Watchtower.sig_a;
  W.var_string w r.Watchtower.sig_b

let read_record r : Watchtower.record =
  let channel_id = R.var_string r in
  let txid = R.var_string r in
  let vout = R.u32 r in
  let keys_a = read_pub r in
  let keys_b = read_pub r in
  let s0 = R.u32 r in
  let rel_lock = R.u32 r in
  let cash = R.u32 r in
  let client_role = read_role r in
  let revoked = R.u32 r in
  let rev_body = read_tx r in
  let sig_a = R.var_string r in
  let sig_b = R.var_string r in
  { Watchtower.channel_id; funding = { Tx.txid; vout }; keys_a; keys_b; s0;
    rel_lock; cash; client_role; revoked; rev_body; sig_a; sig_b }

let encode_record (r : Watchtower.record) : string =
  let w = W.create () in
  write_record w r;
  W.contents w

let decode_record (blob : string) : (Watchtower.record, error) result =
  wrap_decode (fun () ->
      let r = R.create blob in
      let rec_ = read_record r in
      if not (R.at_end r) then Error (Bad_field "trailing bytes")
      else Ok rec_)

(** Full tower snapshot: identity, every guarded record, the punished
    list (oldest first), the fresh list and the spent-log cursor.
    Size is O(guarded channels) — each of them O(1) — which is the
    Table 1 storage claim made durable. *)
let encode_tower (t : Watchtower.t) : string =
  let w = W.create () in
  write_header w ~magic:tower_magic;
  W.var_string w (Watchtower.wid t);
  W.varint w (Watchtower.guarded_count t);
  Watchtower.fold_records t (fun r () -> write_record w r) ();
  write_list w (fun w s -> W.var_string w s)
    (List.rev (Watchtower.punished t));
  write_list w (fun w s -> W.var_string w s) (Watchtower.fresh_ids t);
  W.u64 w (Int64.of_int (Watchtower.cursor t));
  W.contents w

(** Rebuild a tower from its snapshot. Records are installed through
    {!Watchtower.restore_record} (no re-verification — they were
    verified when watched and the store is CRC-framed). *)
let restore_tower (blob : string) : (Watchtower.t, error) result =
  let r = R.create blob in
  match read_header r ~magic:tower_magic with
  | Error e -> Error e
  | Ok () ->
      wrap_decode (fun () ->
          let wid = R.var_string r in
          let t = Watchtower.create ~wid () in
          let n = R.varint r in
          for _ = 1 to n do
            Watchtower.restore_record t ~fresh:false (read_record r)
          done;
          let punished = read_list r (fun r -> R.var_string r) in
          List.iter (Watchtower.mark_punished t) punished;
          let fresh = read_list r (fun r -> R.var_string r) in
          List.iter
            (fun cid ->
              match Watchtower.find_record t cid with
              | Some rec_ -> Watchtower.restore_record t ~fresh:true rec_
              | None -> ())
            (List.rev fresh);
          Watchtower.set_cursor t (Int64.to_int (R.u64 r));
          if not (R.at_end r) then Error (Bad_field "trailing bytes")
          else Ok t)
