(** Durable channel state: serialize exactly what a Daric party must
    retain per channel and restore it into a fresh party.

    This makes the Table 1 storage claim operational rather than
    merely counted: the encoded blob IS the party's entire per-channel
    storage, its size is constant in the number of updates, and a
    party restarted from it can still close, settle and punish.

    Only quiescent channels (flag = 1, no update in flight) are
    persisted — a crashed mid-update party recovers by ForceClose from
    its last durable state, exactly the conservative behaviour the
    protocol prescribes. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module W = Daric_util.Byteio.Writer
module R = Daric_util.Byteio.Reader
module Schnorr = Daric_crypto.Schnorr

let magic = "DARIC1\x00"

(* ---- transaction encoding (full, with witnesses) ------------------ *)

let write_spk w (spk : Tx.spk) =
  match spk with
  | Tx.P2wsh h ->
      W.byte w 0;
      W.var_string w h
  | Tx.P2wpkh h ->
      W.byte w 1;
      W.var_string w h
  | Tx.Raw s ->
      W.byte w 2;
      W.var_string w (Script.serialize s)
  | Tx.Op_return -> W.byte w 3

exception Bad_blob of string

let read_spk r : Tx.spk =
  match R.byte r with
  | 0 -> Tx.P2wsh (R.var_string r)
  | 1 -> Tx.P2wpkh (R.var_string r)
  | 3 -> Tx.Op_return
  | 2 -> raise (Bad_blob "raw scripts are not persisted")
  | _ -> raise (Bad_blob "unknown spk tag")

let write_output w (o : Tx.output) =
  W.u64 w (Int64.of_int o.Tx.value);
  write_spk w o.Tx.spk

let read_output r : Tx.output =
  let value = Int64.to_int (R.u64 r) in
  { Tx.value; spk = read_spk r }

let write_list w f l =
  W.varint w (List.length l);
  List.iter (f w) l

let read_list r f =
  let n = R.varint r in
  List.init n (fun _ -> f r)

let write_input w (i : Tx.input) =
  W.var_string w i.Tx.prevout.txid;
  W.u32 w i.Tx.prevout.vout;
  W.u32 w i.Tx.sequence

let read_input r : Tx.input =
  let txid = R.var_string r in
  let vout = R.u32 r in
  let sequence = R.u32 r in
  { Tx.prevout = { Tx.txid; vout }; sequence }

let opcode_tag (op : Script.op) : int =
  match op with
  | Script.If -> 0
  | Notif -> 1
  | Else -> 2
  | Endif -> 3
  | Verify -> 4
  | Return -> 5
  | Dup -> 6
  | Drop -> 7
  | Swap -> 8
  | Size -> 9
  | Equal -> 10
  | Equalverify -> 11
  | Hash160 -> 12
  | Hash256 -> 13
  | Sha256 -> 14
  | Ripemd160 -> 15
  | Checksig -> 16
  | Checksigverify -> 17
  | Checkmultisig -> 18
  | Checkmultisigverify -> 19
  | Cltv -> 20
  | Csv -> 21
  | Push _ | Num _ | Small _ -> raise (Bad_blob "not an opcode")

let opcode_of_tag = function
  | 0 -> Script.If
  | 1 -> Notif
  | 2 -> Else
  | 3 -> Endif
  | 4 -> Verify
  | 5 -> Return
  | 6 -> Dup
  | 7 -> Drop
  | 8 -> Swap
  | 9 -> Size
  | 10 -> Equal
  | 11 -> Equalverify
  | 12 -> Hash160
  | 13 -> Hash256
  | 14 -> Sha256
  | 15 -> Ripemd160
  | 16 -> Checksig
  | 17 -> Checksigverify
  | 18 -> Checkmultisig
  | 19 -> Checkmultisigverify
  | 20 -> Cltv
  | 21 -> Csv
  | _ -> raise (Bad_blob "unknown opcode tag")

let write_witness_elt w (e : Tx.witness_elt) =
  match e with
  | Tx.Data d ->
      W.byte w 0;
      W.var_string w d
  | Tx.Wscript s ->
      W.byte w 1;
      write_list w
        (fun w op ->
          match op with
          | Script.Push d ->
              W.byte w 0;
              W.var_string w d
          | Script.Num v ->
              W.byte w 1;
              W.u32 w v
          | Script.Small v ->
              W.byte w 2;
              W.byte w v
          | other ->
              W.byte w 3;
              W.byte w (opcode_tag other))
        s

let read_witness_elt r : Tx.witness_elt =
  match R.byte r with
  | 0 -> Tx.Data (R.var_string r)
  | 1 ->
      Tx.Wscript
        (read_list r (fun r ->
             match R.byte r with
             | 0 -> Script.Push (R.var_string r)
             | 1 -> Script.Num (R.u32 r)
             | 2 -> Script.Small (R.byte r)
             | 3 -> opcode_of_tag (R.byte r)
             | _ -> raise (Bad_blob "unknown script-op tag")))
  | _ -> raise (Bad_blob "unknown witness tag")

let write_tx w (tx : Tx.t) =
  write_list w write_input tx.Tx.inputs;
  W.u32 w tx.Tx.locktime;
  write_list w write_output tx.Tx.outputs;
  write_list w (fun w wit -> write_list w write_witness_elt wit) tx.Tx.witnesses

let read_tx r : Tx.t =
  let inputs = read_list r read_input in
  let locktime = R.u32 r in
  let outputs = read_list r read_output in
  let witnesses = read_list r (fun r -> read_list r read_witness_elt) in
  Tx.make ~inputs ~locktime ~outputs ~witnesses ()

let write_opt w f = function
  | None -> W.byte w 0
  | Some v ->
      W.byte w 1;
      f w v

let read_opt r f = match R.byte r with 0 -> None | _ -> Some (f r)

let write_keypair w (k : Keys.keypair) = W.u32 w k.Keys.sk

let read_keypair r : Keys.keypair =
  let sk = R.u32 r in
  { Keys.sk; pk = Schnorr.public_key_of_secret sk }

let write_pub w (k : Keys.pub) =
  W.u32 w k.Keys.main_pk;
  W.u32 w k.Keys.sp_pk;
  W.u32 w k.Keys.rv_pk;
  W.u32 w k.Keys.rv'_pk

let read_pub r : Keys.pub =
  let main_pk = R.u32 r in
  let sp_pk = R.u32 r in
  let rv_pk = R.u32 r in
  let rv'_pk = R.u32 r in
  { Keys.main_pk; sp_pk; rv_pk; rv'_pk }

(* ---- channel encoding --------------------------------------------- *)

(** Serialize a quiescent channel. Fails if an update or closure is in
    flight (persist only between operations). *)
let encode_chan (c : Party.chan) : (string, string) result =
  if c.Party.phase <> Party.Operational then
    Error
      (Fmt.str "channel %s is not quiescent (%s)" c.Party.cfg.id
         (Party.phase_to_string c.Party.phase))
  else begin
    let w = W.create () in
    W.string w magic;
    W.var_string w c.Party.cfg.id;
    W.byte w (match c.Party.cfg.role with Keys.Alice -> 0 | Keys.Bob -> 1);
    W.var_string w c.Party.cfg.peer;
    W.u32 w c.Party.cfg.bal_a;
    W.u32 w c.Party.cfg.bal_b;
    W.u32 w c.Party.cfg.rel_lock;
    W.u32 w c.Party.cfg.s0;
    write_keypair w c.Party.keys.Keys.main;
    write_keypair w c.Party.keys.Keys.sp;
    write_keypair w c.Party.keys.Keys.rv;
    write_keypair w c.Party.keys.Keys.rv';
    write_opt w write_pub c.Party.their_keys;
    W.u32 w c.Party.sn;
    write_list w write_output c.Party.st;
    write_opt w write_tx c.Party.fund;
    write_opt w write_tx c.Party.commit_mine;
    write_opt w write_tx c.Party.commit_theirs_body;
    write_opt w
      (fun w (sd : Party.split_data) ->
        write_tx w sd.Party.split_body;
        W.var_string w sd.Party.split_sig_a;
        W.var_string w sd.Party.split_sig_b)
      c.Party.split;
    write_opt w (fun w s -> W.var_string w s) c.Party.rev_sig_theirs;
    write_opt w (fun w s -> W.var_string w s) c.Party.rev_sig_mine;
    Ok (W.contents w)
  end

(** Restore a channel into [party] (which must not already track it). *)
let restore_chan (party : Party.t) (blob : string) : (unit, string) result =
  try
    let r = R.create blob in
    if R.string r (String.length magic) <> magic then Error "bad magic"
    else begin
      let id = R.var_string r in
      if Party.find_chan party id <> None then Error ("duplicate channel " ^ id)
      else begin
        let role = if R.byte r = 0 then Keys.Alice else Keys.Bob in
        let peer = R.var_string r in
        let bal_a = R.u32 r in
        let bal_b = R.u32 r in
        let rel_lock = R.u32 r in
        let s0 = R.u32 r in
        let cfg = { Party.id; role; peer; bal_a; bal_b; rel_lock; s0 } in
        let main = read_keypair r in
        let sp = read_keypair r in
        let rv = read_keypair r in
        let rv' = read_keypair r in
        let keys = { Keys.main; sp; rv; rv' } in
        let their_keys = read_opt r read_pub in
        let sn = R.u32 r in
        let st = read_list r read_output in
        let fund = read_opt r read_tx in
        let commit_mine = read_opt r read_tx in
        let commit_theirs_body = read_opt r read_tx in
        let split =
          read_opt r (fun r ->
              let split_body = read_tx r in
              let split_sig_a = R.var_string r in
              let split_sig_b = R.var_string r in
              { Party.split_body; split_sig_a; split_sig_b })
        in
        let rev_sig_theirs = read_opt r (fun r -> R.var_string r) in
        let rev_sig_mine = read_opt r (fun r -> R.var_string r) in
        if not (R.at_end r) then Error "trailing bytes"
        else begin
          let c : Party.chan =
            { cfg; keys; their_keys; tid_mine = None; tid_theirs = None; fund;
              fund_sig_mine = None; fund_sig_theirs = None; sn; st; flag = 1;
              st' = None; commit_mine; commit_theirs_body; split;
              rev_sig_theirs; rev_sig_mine; pending = None;
              requested_theta = None; phase = Party.Operational;
              deadline = None; fin_split = None; commit_on_chain = None;
              split_posted = false; punish_posted = None; outcome = None }
          in
          party.Party.chans <- (id, c) :: party.Party.chans;
          Ok ()
        end
      end
    end
  with
  | R.Truncated -> Error "truncated blob"
  | Bad_blob m -> Error m

let blob_size (c : Party.chan) : (int, string) result =
  Result.map String.length (encode_chan c)
