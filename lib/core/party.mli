(** Daric channel party: the protocol state machine of Appendix D.

    A party is driven by the simulation loop in three ways:
    {!handle_msg} processes network messages; the [request_*]/{!intro}
    functions inject environment commands (INTRO/CREATE, UPDATE,
    CLOSE); {!end_of_round} runs the per-round Punish phase, watches
    the funding output, schedules split transactions after the
    T-round delay and fires the timeout (ForceClose) transitions.

    Channel state is exposed transparently: tests, the watchtower and
    the storage accounting read it, and adversarial tests snapshot it
    to model cheaters who keep revoked data. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger

(** Channel configuration fixed at INTRO time. *)
type config = {
  id : string;
  role : Keys.role;
  peer : string;
  bal_a : int;
  bal_b : int;
  rel_lock : int;  (** the dispute window T (rounds), must exceed Δ *)
  s0 : int;  (** base of the state-number locktime encoding *)
}

val cash : config -> int

(** Environment decisions at the interactive protocol steps. *)
type env_policy = {
  approve_update : id:string -> theta:Tx.output list -> bool;
  approve_setup : id:string -> bool;
  approve_setup' : id:string -> bool;
  approve_revoke : id:string -> bool;
  approve_revoke' : id:string -> bool;
  approve_close : id:string -> bool;
}

val accept_all : env_policy

(** Events reported to the environment. *)
type event =
  | Created of string
  | Update_requested of string
  | Updated of string * int
  | Update_rejected of string
  | Closed of string
  | Punished of string
  | Aborted of string
  | Force_closed of string
  | Protocol_error of string * string

val event_to_string : event -> string

(** Operation counters (Table 3): only signatures produced for the
    counter-party or the watchtower and verifications of received
    signatures are counted. *)
type ops = { mutable signs : int; mutable verifies : int; mutable exps : int }

val ops_copy : ops -> ops

(** The channel's own signing contexts, one per keypair — built once
    at INTRO so deterministic signing's key-dependent setup is paid
    per channel, not per signature. *)
type sctx = {
  x_main : Daric_crypto.Keyctx.t;
  x_sp : Daric_crypto.Keyctx.t;
  x_rv : Daric_crypto.Keyctx.t;
  x_rv' : Daric_crypto.Keyctx.t;
}

type split_data = { split_body : Tx.t; split_sig_a : string; split_sig_b : string }

(** In-progress update (the paper's Γ'). *)
type update_ctx = {
  u_theta : Tx.output list;
  mutable u_commit_mine : Tx.t option;
  u_commit_mine_body : Tx.t;
  u_commit_theirs_body : Tx.t;
  u_split_body : Tx.t;  (** state-(sn+1) split body, generated once *)
  u_my_split_sig : string option;
      (** our split signature from the update's first step; later
          steps reuse it (deterministic signing — bit-identical) *)
  mutable u_split : split_data option;
  u_initiator : bool;
}

type phase =
  | Await_create_info
  | Await_create_com
  | Await_create_fund
  | Await_funding_confirm
  | Refunding
  | Operational
  | Upd_await_info
  | Upd_await_com_initiator
  | Upd_await_com_responder
  | Upd_await_revoke_initiator
  | Upd_await_revoke_responder
  | Close_await_ack
  | Close_await_confirm
  | Force_closed_waiting
  | Done

val phase_to_string : phase -> string

type chan = {
  cfg : config;
  keys : Keys.t;
  sctx : sctx;  (** own signing contexts, alive for the channel *)
  mutable pinned_pks : Daric_crypto.Schnorr.public_key list;
      (** keys pinned in the {!Daric_crypto.Keyctx} pool at open
          (own and peer's), released exactly once at Done *)
  mutable their_keys : Keys.pub option;
  mutable tid_mine : Tx.outpoint option;
  mutable tid_theirs : Tx.outpoint option;
  mutable fund : Tx.t option;
  mutable fund_sig_mine : string option;
  mutable fund_sig_theirs : string option;
  mutable sn : int;
  mutable st : Tx.output list;
  mutable flag : int;
  mutable st' : Tx.output list option;
  mutable commit_mine : Tx.t option;
  mutable commit_theirs_body : Tx.t option;
  mutable split : split_data option;
  mutable rev_sig_theirs : string option;
  mutable rev_sig_mine : string option;
  mutable pending : update_ctx option;
  mutable requested_theta : Tx.output list option;
  mutable phase : phase;
  mutable deadline : int option;
  mutable fin_split : Tx.t option;
  mutable commit_on_chain : (int * Tx.outpoint * Script.t * int) option;
  mutable split_posted : bool;
  mutable punish_posted : Tx.t option;
  mutable outcome : event option;
}

type t = {
  pid : string;
  env : env_policy;
  rng : Daric_util.Rng.t;
  mutable chans : (string * chan) list;
  mutable outbox : (int * event) list;
  ops : ops;
}

(** Per-round I/O capabilities handed to the party by the driver. *)
type ctx = {
  round : int;
  ledger : Ledger.t;
  send : recipient:string -> Wire.msg -> unit;
  post : Tx.t -> unit;
}

val create : ?env:env_policy -> pid:string -> seed:int -> unit -> t

val events : t -> (int * event) list
(** Environment outputs, oldest first. *)

val ops : t -> ops

val find_chan : t -> string -> chan option
val chan_exn : t -> string -> chan

val sctx_of_keys : Keys.t -> sctx
(** Build the per-channel signing contexts (used by crash recovery,
    which reconstructs a [chan] outside INTRO). *)

val repin_keys : chan -> unit
(** Release and re-take the channel's {!Daric_crypto.Keyctx} pool
    pins — crash recovery's counterpart of the pinning done at INTRO
    and createInfo. *)

val keys_ab : chan -> Keys.pub * Keys.pub
(** (Alice-side, Bob-side) public key bundles. *)

val main_pks :
  chan -> Daric_crypto.Schnorr.public_key * Daric_crypto.Schnorr.public_key

val my_rev_body : chan -> revoked:int -> Tx.t
(** This party's floating revocation transaction body for a revoked
    state index. *)

val their_rev_body : chan -> revoked:int -> Tx.t

val rev_witness_sigs :
  chan -> sig_mine:string -> sig_theirs:string -> string * string
(** Order the two revocation-branch signatures into the (Alice, Bob)
    witness positions. *)

val funding_outpoint : chan -> Tx.outpoint

val commit_script_for : chan -> owner:Keys.role -> i:int -> Script.t
(** Reconstruct the commit output script of either party for state [i]. *)

val outputs_equal : Tx.output list -> Tx.output list -> bool

val intro :
  t -> ctx -> ?keys:Keys.t -> cfg:config -> tid:Tx.outpoint -> unit -> unit
(** INTRO: start creating the channel. [tid] must be a P2WPKH output
    of the main key holding this side's balance; tests that pre-mint
    it pass the pre-generated [keys]. *)

val request_update :
  t -> ctx -> id:string -> theta:Tx.output list -> ?tstp:int -> unit -> unit
(** UPDATE (initiator): propose the new state [theta]; the value must
    redistribute exactly the channel cash. *)

val request_close : t -> ctx -> id:string -> unit
(** CLOSE: propose a collaborative close at the current state. *)

val force_close : t -> ctx -> chan -> unit
(** Post the newest enforceable commit; the Punish daemon completes
    the closure (ForceClose of Appendix D). *)

val handle_msg : t -> ctx -> Wire.msg Daric_chain.Network.envelope -> unit
(** Process one delivered message; ill-formed or unexpected messages
    are dropped (the wrapper W_P of Appendix F). *)

val end_of_round : t -> ctx -> unit
(** The Punish phase plus split scheduling and timeout transitions;
    run at the end of every round. *)
