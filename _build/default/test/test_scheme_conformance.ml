(* Cross-scheme conformance: every registered SCHEME implementation
   must exhibit the qualitative Table 1 properties its Costmodel row
   claims — punishment (or not), O(1) vs O(n) storage slope, bounded
   dispute resolution — when driven through the generic harness. *)

module I = Daric_schemes.Scheme_intf
module Harness = Daric_schemes.Harness
module Registry = Daric_schemes.Registry
module Costmodel = Daric_schemes.Costmodel

let row_exn (module S : I.SCHEME) : Costmodel.scheme =
  match Registry.costmodel_row (module S) with
  | Some r -> r
  | None -> Alcotest.failf "%s: no Costmodel row" S.name

let report_exn name = function
  | Ok (r : Harness.report) -> r
  | Error e -> Alcotest.failf "%s: %s" name (I.error_to_string e)

let outcome_exn name (r : Harness.report) : I.outcome =
  match r.outcome with
  | Some o -> o
  | None -> Alcotest.failf "%s: scenario produced no outcome" name

(* Generous analytic bound on dispute rounds for the default config
   (rel_lock = 3, delta = 1): commit confirmation + the T-round
   dispute window + reaction + confirmation. *)
let round_bound = (4 * I.default_config.rel_lock) + 12

(* ------------------------------------------------------------------ *)

let test_registry_matches_costmodel () =
  Alcotest.(check (list string))
    "registry covers Costmodel.all, in row order"
    (List.map (fun (c : Costmodel.scheme) -> c.Costmodel.name) Costmodel.all)
    (Registry.names ())

let test_collaborative (module S : I.SCHEME) () =
  let r =
    report_exn S.name
      (Harness.run_fresh (module S) { updates = 3; close = `Collaborative })
  in
  let o = outcome_exn S.name r in
  Alcotest.(check bool) (S.name ^ ": resolved") true o.I.resolved;
  Alcotest.(check bool) (S.name ^ ": nobody punished") false o.I.punished

let test_force (module S : I.SCHEME) () =
  let row = row_exn (module S) in
  let r =
    report_exn S.name
      (Harness.run_fresh (module S) { updates = 3; close = `Force })
  in
  let o = outcome_exn S.name r in
  Alcotest.(check bool) (S.name ^ ": resolved") true o.I.resolved;
  Alcotest.(check bool) (S.name ^ ": nobody punished") false o.I.punished;
  if row.Costmodel.bounded_closure then
    Alcotest.(check bool)
      (Printf.sprintf "%s: closure within %d rounds (took %d)" S.name
         round_bound o.I.rounds)
      true
      (o.I.rounds <= round_bound)

let test_dishonest (module S : I.SCHEME) () =
  let row = row_exn (module S) in
  let r =
    report_exn S.name
      (Harness.run_fresh (module S) { updates = 3; close = `Dishonest })
  in
  let o = outcome_exn S.name r in
  Alcotest.(check bool) (S.name ^ ": resolved") true o.I.resolved;
  (* Table 1 "punish": schemes marked incentive-compatible punish the
     publisher of a revoked state; eltoo merely overrides it. *)
  Alcotest.(check bool)
    (S.name ^ ": cheater punished iff incentive-compatible")
    row.Costmodel.incentive_compatible o.I.punished;
  if not row.Costmodel.incentive_compatible then
    Alcotest.(check bool)
      (S.name ^ ": old state overridden instead")
      true
      (List.mem I.Overridden o.I.trace)

let test_storage_slope (module S : I.SCHEME) () =
  let row = row_exn (module S) in
  let point n =
    report_exn S.name (Harness.run_fresh (module S) { updates = n; close = `None })
  in
  let small = point 2 and big = point 34 in
  (* Party storage: O(n) rows must grow, O(1) rows must not. The
     Outpost implementation deliberately deviates (reverse hash chain
     makes party storage constant; see lib/schemes/outpost.ml). *)
  (if S.name = "Outpost" then
     Alcotest.(check int)
       (S.name ^ ": party storage constant (documented O(1) deviation)")
       small.Harness.party_bytes big.Harness.party_bytes
   else
     match row.Costmodel.party_storage with
     | "O(n)" ->
         Alcotest.(check bool)
           (S.name ^ ": party storage grows with n")
           true
           (big.Harness.party_bytes > small.Harness.party_bytes)
     | _ ->
         Alcotest.(check int)
           (S.name ^ ": party storage constant in n")
           small.Harness.party_bytes big.Harness.party_bytes);
  match (small.Harness.watchtower_bytes, big.Harness.watchtower_bytes) with
  | Some ws, Some wb ->
      if row.Costmodel.watchtower_storage = "O(n)" then
        Alcotest.(check bool)
          (S.name ^ ": watchtower storage grows with n")
          true (wb > ws)
      else
        Alcotest.(check int)
          (S.name ^ ": watchtower storage constant in n")
          ws wb
  | None, None -> ()
  | _ -> Alcotest.failf "%s: watchtower_bytes changed presence" S.name

let test_ops_match_table3 (module S : I.SCHEME) () =
  let row = row_exn (module S) in
  let r =
    report_exn S.name
      (Harness.run_fresh (module S) { updates = 10; close = `None })
  in
  let o = r.Harness.per_update_ops in
  let expect = row.Costmodel.ops_per_update ~m:0 in
  Alcotest.(check (triple int int int))
    (S.name ^ ": per-update sign/verify/exp match Table 3")
    ( int_of_float expect.Costmodel.sign,
      int_of_float expect.Costmodel.verify,
      int_of_float expect.Costmodel.exp )
    (o.I.signs, o.I.verifies, o.I.exps)

(* Outpost-specific: the reverse hash chain bounds the lifetime. *)
let test_outpost_lifetime () =
  let (module S) = Registry.find_exn "Outpost" in
  match S.open_channel (I.make_env ()) I.default_config with
  | Error e -> Alcotest.failf "Outpost open: %s" (I.error_to_string e)
  | Ok _ -> ()

let per_scheme mk =
  List.map
    (fun (module S : I.SCHEME) -> Alcotest.test_case S.name `Quick (mk (module S : I.SCHEME)))
    Registry.all

let () =
  Alcotest.run "scheme_conformance"
    [ ( "registry",
        [ Alcotest.test_case "matches Costmodel.all" `Quick
            test_registry_matches_costmodel;
          Alcotest.test_case "Outpost opens" `Quick test_outpost_lifetime ] );
      ("collaborative-close", per_scheme test_collaborative);
      ("force-close", per_scheme test_force);
      ("dishonest-close", per_scheme test_dishonest);
      ("storage-slope", per_scheme test_storage_slope);
      ("ops-per-update", per_scheme test_ops_match_table3) ]
