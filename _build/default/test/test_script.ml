(* Script interpreter tests: stack semantics, conditionals, multisig,
   timelocks, and the Appendix-H byte-size conventions. *)

module Script = Daric_script.Script
module Interp = Daric_script.Interp
module Schnorr = Daric_crypto.Schnorr
module Rng = Daric_util.Rng

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let no_sig ~pk_bytes:_ ~sig_bytes:_ = false

let ctx ?(check_sig = no_sig) ?(tx_locktime = 0) ?(input_age = 0) () =
  { Interp.check_sig; tx_locktime; input_age }

let ok script stack = Interp.run (ctx ()) script stack = Ok ()
let run_with c script stack = Interp.run c script stack

let test_push_equal () =
  check_b "equal true" true (ok [ Script.Push "x"; Push "x"; Equal ] []);
  check_b "equal false ends false" true
    (run_with (ctx ()) [ Script.Push "x"; Push "y"; Equal ] []
    = Error Interp.False_final_stack);
  check_b "equalverify passes" true
    (ok [ Script.Push "x"; Push "x"; Equalverify; Small 1 ] []);
  check_b "equalverify fails" true
    (run_with (ctx ()) [ Script.Push "x"; Push "y"; Equalverify; Small 1 ] []
    = Error Interp.Verify_failed)

let test_stack_ops () =
  check_b "dup" true (ok [ Script.Push "a"; Dup; Equal ] []);
  check_b "drop" true (ok [ Script.Small 1; Push "junk"; Drop ] []);
  check_b "swap" true
    (ok [ Script.Push "a"; Push "b"; Swap; Push "a"; Equalverify; Small 1; Drop; Small 1 ] []);
  check_b "size" true
    (ok [ Script.Push "abc"; Size; Small 3; Equalverify; Drop; Small 1 ] []);
  check_b "underflow" true
    (run_with (ctx ()) [ Script.Drop ] [] = Error Interp.Stack_underflow)

let test_truthiness () =
  check_b "empty is false" true
    (run_with (ctx ()) [ Script.Push "" ] [] = Error Interp.False_final_stack);
  check_b "zero bytes are false" true
    (run_with (ctx ()) [ Script.Push "\000\000" ] []
    = Error Interp.False_final_stack);
  check_b "nonzero is true" true (ok [ Script.Push "\000\001" ] []);
  check_b "empty final stack" true
    (run_with (ctx ()) [] [] = Error Interp.Empty_final_stack)

let test_conditionals () =
  let branch sel =
    [ Script.If; Push "then"; Else; Push "else"; Endif; Push "then"; Equal ]
    |> fun s -> run_with (ctx ()) s [ sel ]
  in
  check_b "true branch" true (branch "\001" = Ok ());
  check_b "false branch" true (branch "" = Error Interp.False_final_stack);
  check_b "notif" true (ok [ Script.Notif; Small 1; Else; Small 0; Endif ] [ "" ]);
  check_b "nested" true
    (ok
       [ Script.If; If; Small 1; Else; Small 0; Endif; Else; Small 0; Endif ]
       [ "\001"; "\001" ]);
  check_b "unbalanced detected" true
    (run_with (ctx ()) [ Script.If; Small 1 ] [ "\001" ]
    = Error Interp.Unbalanced_conditional);
  check_b "op_return aborts" true
    (run_with (ctx ()) [ Script.Return ] [] = Error Interp.Op_return)

let test_hash_opcodes () =
  let h = Daric_crypto.Sha256.digest "data" in
  check_b "sha256" true (ok [ Script.Push "data"; Sha256; Push h; Equal ] []);
  let h2 = Daric_crypto.Hash.hash256 "data" in
  check_b "hash256" true (ok [ Script.Push "data"; Hash256; Push h2; Equal ] []);
  let h160 = Daric_crypto.Hash.hash160 "data" in
  check_b "hash160" true (ok [ Script.Push "data"; Hash160; Push h160; Equal ] [])

(* A check_sig closure backed by real Schnorr keys. *)
let sig_env () =
  let rng = Rng.create ~seed:11 in
  let sk1, pk1 = Schnorr.keygen rng in
  let sk2, pk2 = Schnorr.keygen rng in
  let msg = "spend-me" in
  let check_sig ~pk_bytes ~sig_bytes = Schnorr.verify_bytes pk_bytes msg sig_bytes in
  let enc = Schnorr.encode_public_key in
  ( ctx ~check_sig (),
    enc pk1,
    enc pk2,
    Schnorr.sign_bytes sk1 msg,
    Schnorr.sign_bytes sk2 msg )

let test_checksig () =
  let c, pk1, _, sig1, sig2 = sig_env () in
  check_b "valid" true (run_with c [ Script.Push pk1; Checksig ] [ sig1 ] = Ok ());
  check_b "wrong sig" true
    (run_with c [ Script.Push pk1; Checksig ] [ sig2 ]
    = Error Interp.False_final_stack);
  check_b "checksigverify" true
    (run_with c [ Script.Push pk1; Checksigverify; Small 1 ] [ sig1 ] = Ok ())

let test_multisig () =
  let c, pk1, pk2, sig1, sig2 = sig_env () in
  let ms = [ Script.Small 2; Push pk1; Push pk2; Small 2; Checkmultisig ] in
  (* The interpreter's initial stack lists the top first: the witness
     (dummy, sig1, sig2) bottom-to-top arrives as [sig2; sig1; dummy]. *)
  check_b "2-of-2 valid" true (run_with c ms [ sig2; sig1; "" ] = Ok ());
  check_b "order matters" true
    (run_with c ms [ sig1; sig2; "" ] = Error Interp.False_final_stack);
  check_b "missing dummy underflows" true
    (run_with c ms [ sig2; sig1 ] = Error Interp.Stack_underflow);
  let ms12 = [ Script.Small 1; Push pk1; Push pk2; Small 2; Checkmultisig ] in
  check_b "1-of-2 with first key" true (run_with c ms12 [ sig1; "" ] = Ok ());
  check_b "1-of-2 with second key" true (run_with c ms12 [ sig2; "" ] = Ok ());
  let bad = [ Script.Small 3; Push pk1; Push pk2; Small 2; Checkmultisig ] in
  check_b "m > n rejected" true
    (run_with c bad [ sig2; sig2; sig1; "" ] = Error Interp.Bad_multisig_arity)

let test_cltv () =
  let script t = [ Script.Num t; Cltv; Drop; Small 1 ] in
  check_b "locktime satisfied" true
    (run_with (ctx ~tx_locktime:100 ()) (script 50) [] = Ok ());
  check_b "locktime equal ok" true
    (run_with (ctx ~tx_locktime:50 ()) (script 50) [] = Ok ());
  check_b "locktime too small" true
    (run_with (ctx ~tx_locktime:49 ()) (script 50) []
    = Error Interp.Locktime_not_satisfied);
  (* class mismatch: height-class param vs timestamp-class nLockTime *)
  check_b "class mismatch rejected" true
    (run_with (ctx ~tx_locktime:600_000_000 ()) (script 50) []
    = Error Interp.Locktime_not_satisfied);
  check_b "timestamp class ok" true
    (run_with (ctx ~tx_locktime:600_000_000 ()) (script 500_000_123) [] = Ok ())

let test_csv () =
  let script t = [ Script.Num t; Csv; Drop; Small 1 ] in
  check_b "age satisfied" true (run_with (ctx ~input_age:5 ()) (script 3) [] = Ok ());
  check_b "age equal" true (run_with (ctx ~input_age:3 ()) (script 3) [] = Ok ());
  check_b "age too young" true
    (run_with (ctx ~input_age:2 ()) (script 3) []
    = Error Interp.Sequence_not_satisfied)

(* Appendix-H size conventions. *)
let test_sizes () =
  let pk = String.make 33 'k' in
  check_i "2-of-2 multisig script is 71 bytes" 71
    (Script.size (Script.multisig_2 pk pk));
  check_i "p2pk script is 35 bytes" 35 (Script.size (Script.p2pk pk));
  check_i "commit script is 157 bytes" 157
    (Script.size
       (Daric_core.Txs.commit_script ~abs_lock:500_000_000 ~rel_lock:144
          ~rev_pk1:1 ~rev_pk2:1 ~spl_pk1:1 ~spl_pk2:1))

let test_serialize_injective () =
  let s1 = [ Script.Push "ab"; Small 2 ] in
  let s2 = [ Script.Push "a"; Push "b"; Small 2 ] in
  check_b "distinct scripts hash differently" true (Script.hash s1 <> Script.hash s2)

let prop_small_push_roundtrip =
  QCheck.Test.make ~name:"item_of_int/int_of_item roundtrip" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun v -> Interp.int_of_item (Interp.item_of_int v) = v)

(* Fuzz: arbitrary scripts on arbitrary stacks never escape the
   Result type — the interpreter is total. *)
let gen_op : Script.op QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [ map (fun s -> Script.Push s) (string_size (0 -- 40));
        map (fun v -> Script.Num v) (0 -- 1_000_000_000);
        map (fun v -> Script.Small v) (0 -- 16);
        oneofl
          [ Script.If; Notif; Else; Endif; Verify; Return; Dup; Drop; Swap;
            Size; Equal; Equalverify; Hash160; Hash256; Sha256; Ripemd160;
            Checksig; Checksigverify; Checkmultisig; Checkmultisigverify;
            Cltv; Csv ] ])

let prop_interp_total =
  QCheck.Test.make ~name:"interpreter never raises" ~count:2000
    QCheck.(
      pair
        (make Gen.(list_size (0 -- 30) gen_op))
        (list_of_size Gen.(0 -- 8) (string_of_size Gen.(0 -- 8))))
    (fun (script, stack) ->
      match
        Interp.run
          { Interp.check_sig = (fun ~pk_bytes:_ ~sig_bytes:_ -> false);
            tx_locktime = 17;
            input_age = 3 }
          script stack
      with
      | Ok () | Error _ -> true)

let prop_serialize_stable =
  QCheck.Test.make ~name:"script hash deterministic" ~count:300
    QCheck.(make Gen.(list_size (0 -- 20) gen_op))
    (fun script -> Script.hash script = Script.hash script)

let () =
  Alcotest.run "daric-script"
    [ ( "stack",
        [ Alcotest.test_case "push/equal" `Quick test_push_equal;
          Alcotest.test_case "stack ops" `Quick test_stack_ops;
          Alcotest.test_case "truthiness" `Quick test_truthiness ] );
      ( "control",
        [ Alcotest.test_case "conditionals" `Quick test_conditionals;
          Alcotest.test_case "hash opcodes" `Quick test_hash_opcodes ] );
      ( "signatures",
        [ Alcotest.test_case "checksig" `Quick test_checksig;
          Alcotest.test_case "multisig" `Quick test_multisig ] );
      ( "timelocks",
        [ Alcotest.test_case "cltv" `Quick test_cltv;
          Alcotest.test_case "csv" `Quick test_csv ] );
      ( "sizes",
        [ Alcotest.test_case "appendix-H sizes" `Quick test_sizes;
          Alcotest.test_case "injective serialization" `Quick
            test_serialize_injective;
          QCheck_alcotest.to_alcotest prop_small_push_roundtrip ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest prop_interp_total;
          QCheck_alcotest.to_alcotest prop_serialize_stable ] ) ]
