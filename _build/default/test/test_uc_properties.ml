(* Universal-composability-style property probes (Section 5.2 /
   Appendix A): randomized adversarial schedules against the concrete
   protocol, checking the four properties the ideal functionality F
   guarantees — consensus on creation, consensus on update, bounded
   closure with punish, and optimistic update — plus ledger value
   conservation.

   The environment/adversary here is the qcheck generator: it picks
   balance trajectories, when the corrupted party deviates, which
   historical state it replays, ledger delays, and at which protocol
   step cooperation stops. *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Txs = Daric_core.Txs
module Keys = Daric_core.Keys

let check_b = Alcotest.(check bool)

(* Sum of P2WPKH outputs spendable by [pk] in the UTXO set. *)
let spendable_by (l : Ledger.t) (pk : Daric_crypto.Schnorr.public_key) : int =
  let h = Daric_crypto.Hash.hash160 (Daric_crypto.Schnorr.encode_public_key pk) in
  Ledger.fold_utxos l
    (fun _ u acc ->
      match u.Ledger.output.Tx.spk with
      | Tx.P2wpkh h' when String.equal h h' -> acc + u.Ledger.output.Tx.value
      | _ -> acc)
    0

type session = {
  d : Driver.t;
  alice : Party.t;
  bob : Party.t;
  mutable commits_bob : (int * Tx.t) list;  (** what a cheating Bob kept *)
}

let cash = 100_000

let run_session ~seed ~delta ~n_updates ~balances : session =
  let d = Driver.create ~delta ~seed () in
  let alice = Party.create ~pid:"alice" ~seed:(seed + 1) () in
  let bob = Party.create ~pid:"bob" ~seed:(seed + 2) () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  Driver.open_channel d ~id:"c" ~alice ~bob ~bal_a:(cash / 2) ~bal_b:(cash / 2)
    ~rel_lock:(delta + 2) ();
  if not (Driver.run_until_operational d ~id:"c" ~alice ~bob) then
    failwith "session: channel failed to open";
  let s = { d; alice; bob; commits_bob = [] } in
  let c = Party.chan_exn alice "c" in
  let pk_a, pk_b = Party.main_pks c in
  for k = 1 to n_updates do
    (* Bob (the future cheater) archives his current commit *)
    let cb = Party.chan_exn bob "c" in
    s.commits_bob <-
      (cb.Party.sn, Option.get cb.Party.commit_mine) :: s.commits_bob;
    let bal_a = List.nth balances ((k - 1) mod List.length balances) in
    let theta = Txs.balance_state ~pk_a ~pk_b ~bal_a ~bal_b:(cash - bal_a) in
    if not (Driver.update_channel d ~id:"c" ~initiator:alice ~responder:bob ~theta)
    then failwith "session: update failed"
  done;
  s

let alice_balance (s : session) : int =
  match (Party.chan_exn s.alice "c").Party.st with
  | { Tx.value; _ } :: _ -> value
  | [] -> 0

(* Property: whatever revoked state Bob replays, and whatever ledger
   delay the adversary chooses, Alice ends up with at least her latest
   balance — in fact with the full capacity (punishment). *)
let prop_balance_security =
  QCheck.Test.make ~name:"punish secures the full capacity" ~count:25
    QCheck.(quad (int_range 1 6) (int_range 1 3) (int_range 0 1000) small_nat)
    (fun (n_updates, delta, bal_seed, replay_choice) ->
      let balances =
        List.init 5 (fun i -> 1_000 + ((bal_seed * (i + 3)) mod 98_000))
      in
      let s = run_session ~seed:(bal_seed + (7 * n_updates)) ~delta ~n_updates ~balances in
      let c = Party.chan_exn s.alice "c" in
      let pk_a, _ = Party.main_pks c in
      (* Bob replays a random revoked commit *)
      let idx = replay_choice mod List.length s.commits_bob in
      let _, old_commit = List.nth s.commits_bob idx in
      Driver.corrupt s.d "bob";
      Driver.adversary_post s.d old_commit;
      Driver.run s.d (delta + (Party.chan_exn s.alice "c").Party.cfg.rel_lock + 6);
      Driver.saw_event s.alice (function Party.Punished _ -> true | _ -> false)
      && spendable_by (Driver.ledger s.d) pk_a >= cash)

(* Property: bounded closure — a unilateral close by either side
   resolves within T + 2*delta + slack rounds and pays the latest
   state. *)
let prop_bounded_closure =
  QCheck.Test.make ~name:"unilateral close is bounded and pays st" ~count:25
    QCheck.(triple (int_range 0 5) (int_range 1 3) (int_range 0 1000))
    (fun (n_updates, delta, bal_seed) ->
      let balances = List.init 5 (fun i -> 2_000 + ((bal_seed * (i + 1)) mod 96_000)) in
      let s = run_session ~seed:(bal_seed + 13) ~delta ~n_updates ~balances in
      let entitled = alice_balance s in
      let c = Party.chan_exn s.alice "c" in
      let pk_a, _ = Party.main_pks c in
      let t_rel = c.Party.cfg.rel_lock in
      Driver.corrupt s.d "bob";
      Party.request_close s.alice (Driver.ctx s.d "alice") ~id:"c";
      (* close request times out -> ForceClose -> commit -> T -> split *)
      let bound = 2 + delta + t_rel + delta + 6 in
      Driver.run s.d bound;
      Driver.saw_event s.alice (function Party.Closed _ -> true | _ -> false)
      && spendable_by (Driver.ledger s.d) pk_a >= entitled)

(* Property: consensus on update — under arbitrary env rejection
   patterns, either both parties advance to the same new state or the
   protocol terminates safely (Alice keeps at least her entitled
   balance from one of the two candidate states). *)
let prop_consensus_on_update =
  QCheck.Test.make ~name:"update rejections never fork the state" ~count:30
    QCheck.(pair (int_range 0 31) (int_range 0 1000))
    (fun (reject_mask, bal_seed) ->
      let rejects bit = reject_mask land (1 lsl bit) <> 0 in
      let env_bob =
        { Party.accept_all with
          Party.approve_update = (fun ~id:_ ~theta:_ -> not (rejects 0));
          approve_setup' = (fun ~id:_ -> not (rejects 1));
          approve_revoke' = (fun ~id:_ -> not (rejects 2)) }
      in
      let env_alice =
        { Party.accept_all with
          Party.approve_setup = (fun ~id:_ -> not (rejects 3));
          approve_revoke = (fun ~id:_ -> not (rejects 4)) }
      in
      let d = Driver.create ~delta:1 ~seed:(bal_seed + 31) () in
      let alice = Party.create ~env:env_alice ~pid:"alice" ~seed:1 () in
      let bob = Party.create ~env:env_bob ~pid:"bob" ~seed:2 () in
      Driver.add_party d alice;
      Driver.add_party d bob;
      Driver.open_channel d ~id:"c" ~alice ~bob ~bal_a:(cash / 2)
        ~bal_b:(cash / 2) ();
      if not (Driver.run_until_operational d ~id:"c" ~alice ~bob) then false
      else begin
        let c = Party.chan_exn alice "c" in
        let pk_a, pk_b = Party.main_pks c in
        let bal_a = 1_000 + (bal_seed mod 98_000) in
        let theta = Txs.balance_state ~pk_a ~pk_b ~bal_a ~bal_b:(cash - bal_a) in
        Party.request_update alice (Driver.ctx d "alice") ~id:"c" ~theta ();
        Driver.run d 30;
        let ca = Party.chan_exn alice "c" and cb = Party.chan_exn bob "c" in
        let both_operational =
          ca.Party.phase = Party.Operational && cb.Party.phase = Party.Operational
        in
        if both_operational then
          (* no fork: identical state number and state *)
          ca.Party.sn = cb.Party.sn && Party.outputs_equal ca.Party.st cb.Party.st
        else begin
          (* some rejection forced an on-chain resolution: Alice must
             end with her balance from the old or the new state *)
          let ok_amount v = v >= min (cash / 2) bal_a in
          Driver.run d 20;
          ok_amount (spendable_by (Driver.ledger d) pk_a)
          || (* channel may still be mid-close; the funding output then
                still holds the full capacity *)
          Ledger.is_unspent (Driver.ledger d)
            (Tx.outpoint_of (Option.get ca.Party.fund) 0)
        end
      end)

(* Property: optimistic update — honest sessions never touch the
   ledger after funding, for any number of updates. *)
let prop_optimistic_update =
  QCheck.Test.make ~name:"honest updates are purely off-chain" ~count:20
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (n_updates, bal_seed) ->
      let balances = List.init 4 (fun i -> 500 + ((bal_seed * (i + 2)) mod 99_000)) in
      let s = run_session ~seed:bal_seed ~delta:2 ~n_updates ~balances in
      let txs = List.length (Ledger.accepted (Driver.ledger s.d)) in
      (* 2 mints + 1 funding = 3 *)
      txs = 3)

(* Property: value conservation on the ledger under the whole protocol
   (no transaction creates money). *)
let prop_value_conservation =
  QCheck.Test.make ~name:"ledger value conservation" ~count:15
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (n_updates, bal_seed) ->
      let balances = [ 10_000; 40_000; 70_000 ] in
      let s = run_session ~seed:(bal_seed + 5) ~delta:1 ~n_updates ~balances in
      let total_before = Ledger.total_value (Driver.ledger s.d) in
      (* force a full unilateral closure *)
      Driver.corrupt s.d "bob";
      Party.request_close s.alice (Driver.ctx s.d "alice") ~id:"c";
      Driver.run s.d 25;
      Ledger.total_value (Driver.ledger s.d) = total_before)

(* Deterministic abort-at-every-message checks: kill the responder
   right before each protocol message it would send; the initiator must
   always resolve on chain with at least her entitled balance. *)
let test_abort_matrix () =
  (* abort after r rounds of the update flow, for every r covering each
     message of the 6-step update exchange *)
  List.iter
    (fun abort_round ->
      let d = Driver.create ~delta:1 ~seed:(900 + abort_round) () in
      let alice = Party.create ~pid:"alice" ~seed:1 () in
      let bob = Party.create ~pid:"bob" ~seed:2 () in
      Driver.add_party d alice;
      Driver.add_party d bob;
      Driver.open_channel d ~id:"c" ~alice ~bob ~bal_a:60_000 ~bal_b:40_000 ();
      assert (Driver.run_until_operational d ~id:"c" ~alice ~bob);
      let c = Party.chan_exn alice "c" in
      let pk_a, pk_b = Party.main_pks c in
      let theta = Txs.balance_state ~pk_a ~pk_b ~bal_a:10_000 ~bal_b:90_000 in
      Party.request_update alice (Driver.ctx d "alice") ~id:"c" ~theta ();
      Driver.run d abort_round;
      Driver.corrupt d "bob";
      Driver.run d 30;
      let resolved =
        Driver.saw_event alice (function
          | Party.Closed _ | Party.Punished _ -> true
          | _ -> false)
        ||
        (* update never started from Bob's view: channel still open *)
        (Party.chan_exn alice "c").Party.phase = Party.Operational
      in
      check_b (Fmt.str "abort at round +%d resolves" abort_round) true resolved;
      (* Alice ends with her old or new balance, never less *)
      let bal = spendable_by (Driver.ledger d) pk_a in
      check_b
        (Fmt.str "abort at round +%d keeps alice's funds (got %d)" abort_round bal)
        true
        (bal >= 10_000
        || (Party.chan_exn alice "c").Party.phase = Party.Operational))
    [ 0; 1; 2; 3; 4; 5; 6 ]

(* Creation requires both parties: a lone INTRO must refund, not lock
   funds forever. *)
let test_consensus_on_creation () =
  let d = Driver.create ~delta:1 ~seed:700 () in
  let alice = Party.create ~pid:"alice" ~seed:1 () in
  let bob = Party.create ~pid:"bob" ~seed:2 () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  (* Bob is corrupted from the start: he never answers createInfo *)
  Driver.corrupt d "bob";
  Driver.open_channel d ~id:"c" ~alice ~bob ~bal_a:60_000 ~bal_b:40_000 ();
  Driver.run d 15;
  check_b "no channel created" false
    (Driver.saw_event alice (function Party.Created _ -> true | _ -> false));
  (* Alice refunded herself: her funding source value is back under her key *)
  let c = Party.chan_exn alice "c" in
  let pk_a =
    match c.Party.cfg.role with
    | Keys.Alice -> (fst (Party.keys_ab c)).Keys.main_pk
    | Keys.Bob -> (snd (Party.keys_ab c)).Keys.main_pk
  in
  check_b "funds refunded" true (spendable_by (Driver.ledger d) pk_a >= 60_000)

let () =
  Alcotest.run "daric-uc"
    [ ( "properties",
        [ QCheck_alcotest.to_alcotest prop_balance_security;
          QCheck_alcotest.to_alcotest prop_bounded_closure;
          QCheck_alcotest.to_alcotest prop_consensus_on_update;
          QCheck_alcotest.to_alcotest prop_optimistic_update;
          QCheck_alcotest.to_alcotest prop_value_conservation ] );
      ( "aborts",
        [ Alcotest.test_case "abort matrix" `Quick test_abort_matrix;
          Alcotest.test_case "consensus on creation" `Quick
            test_consensus_on_creation ] ) ]
