(* Nested channels (Section 8): a k-deep stack of Daric channels built
   off-chain on top of one funding output, closed level by level on the
   ledger — and the O(1)-per-level transaction growth of Table 1. *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Nesting = Daric_core.Nesting
module Rng = Daric_util.Rng

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let test_stack_closes ~depth () =
  let ledger = Ledger.create ~delta:1 () in
  let rng = Rng.create ~seed:(90 + depth) in
  let stack = Nesting.build ledger ~rng ~depth ~value:100_000 () in
  let posted = Nesting.close_on_chain stack ledger in
  check_i "two on-chain txs per level" (2 * depth) (List.length posted);
  (* the innermost split pays the final balances *)
  let final = List.nth posted ((2 * depth) - 1) in
  check_b "final balances on chain" true
    (List.map (fun (o : Tx.output) -> o.value) final.Tx.outputs
    = [ 50_000; 50_000 ]);
  (* value is conserved through every level *)
  List.iter
    (fun tx -> check_i "value conserved" 100_000 (Tx.total_output_value tx))
    posted

let test_depth_1 () = test_stack_closes ~depth:1 ()
let test_depth_3 () = test_stack_closes ~depth:3 ()
let test_depth_6 () = test_stack_closes ~depth:6 ()

let test_commit_blocked_before_delay () =
  (* the child's commit cannot fire before the parent level settled:
     it needs the parent split's output to exist at all *)
  let ledger = Ledger.create ~delta:1 () in
  let rng = Rng.create ~seed:7 in
  let stack = Nesting.build ledger ~rng ~depth:2 ~value:50_000 () in
  match stack.Nesting.levels with
  | [ outer; inner ] ->
      let commit_outer = Nesting.completed_commit outer ~funding:stack.Nesting.base_funding in
      Ledger.post ledger commit_outer ~delay:0;
      ignore (Ledger.tick ledger);
      (* split blocked by CSV *)
      let split_outer =
        Nesting.completed_split outer
          ~commit_outpoint:(Tx.outpoint_of commit_outer 0)
      in
      check_b "outer split blocked before T" true
        (Ledger.validate ledger split_outer <> Ok ());
      (* the INNER commit cannot spend the outer commit output either:
         its witness carries the inner 2-of-2 funding script, which does
         not hash to the outer commit's script *)
      let commit_inner =
        Nesting.completed_commit inner ~funding:(Tx.outpoint_of commit_outer 0)
      in
      check_b "inner commit cannot jump a level" true
        (Ledger.validate ledger commit_inner <> Ok ())
  | _ -> Alcotest.fail "expected two levels"

let test_tx_growth () =
  (* Table 1, "# of Txs" column: Daric grows linearly with the number
     of stacked applications, state-duplicating schemes exponentially *)
  check_i "daric k=1" 3 (Nesting.txs_daric 1);
  check_i "daric k=8" 24 (Nesting.txs_daric 8);
  check_i "duplication k=1" 3 (Nesting.txs_with_state_duplication 1);
  check_i "duplication k=8" 511 (Nesting.txs_with_state_duplication 8);
  check_b "daric asymptotically cheaper" true
    (Nesting.txs_daric 12 < Nesting.txs_with_state_duplication 12)

let prop_any_depth_closes =
  QCheck.Test.make ~name:"stacks of any depth close correctly" ~count:10
    QCheck.(int_range 1 5)
    (fun depth ->
      let ledger = Ledger.create ~delta:1 () in
      let rng = Rng.create ~seed:depth in
      let stack = Nesting.build ledger ~rng ~depth ~value:64_000 () in
      let posted = Nesting.close_on_chain stack ledger in
      List.length posted = 2 * depth)

let () =
  Alcotest.run "daric-nesting"
    [ ( "nesting",
        [ Alcotest.test_case "depth 1" `Quick test_depth_1;
          Alcotest.test_case "depth 3" `Quick test_depth_3;
          Alcotest.test_case "depth 6" `Quick test_depth_6;
          Alcotest.test_case "level isolation" `Quick
            test_commit_blocked_before_delay;
          Alcotest.test_case "tx growth O(k) vs O(2^k)" `Quick test_tx_growth;
          QCheck_alcotest.to_alcotest prop_any_depth_closes ] ) ]
