(* PCN router tests: route finding under liquidity constraints,
   payment execution over real Daric channels, rerouting around
   offline nodes, and liquidity shifting as payments flow. *)

module Tx = Daric_tx.Tx
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Router = Daric_pcn.Router

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* Build this network (all channels 50k/50k):

      n0 --- n1 --- n2 --- n3
       \                  /
        +------ n4 ------+          *)
let build () =
  let d = Driver.create ~delta:1 ~seed:101 () in
  let nodes =
    Array.init 5 (fun i ->
        let p = Party.create ~pid:(Fmt.str "n%d" i) ~seed:(200 + i) () in
        Driver.add_party d p;
        p)
  in
  let r = Router.create d in
  let link i j =
    let id = Fmt.str "e%d%d" i j in
    Driver.open_channel d ~id ~alice:nodes.(i) ~bob:nodes.(j) ~bal_a:50_000
      ~bal_b:50_000 ();
    assert (Driver.run_until_operational d ~id ~alice:nodes.(i) ~bob:nodes.(j));
    Router.add_channel r ~channel_id:id ~a:nodes.(i) ~b:nodes.(j)
  in
  link 0 1;
  link 1 2;
  link 2 3;
  link 0 4;
  link 4 3;
  (d, nodes, r)

let test_shortest_route () =
  let _, nodes, r = build () in
  match Router.find_route r ~src:nodes.(0) ~dst:nodes.(3) ~amount:10_000 () with
  | None -> Alcotest.fail "no route"
  | Some route ->
      check_i "two hops via n4" 2 (List.length route)

let test_liquidity_constraint () =
  let _, nodes, r = build () in
  (* 60k exceeds every single channel's 50k side *)
  check_b "oversized payment unroutable" true
    (Router.find_route r ~src:nodes.(0) ~dst:nodes.(3) ~amount:60_000 () = None);
  check_b "exact liquidity routable" true
    (Router.find_route r ~src:nodes.(0) ~dst:nodes.(3) ~amount:50_000 () <> None)

let test_payment_end_to_end () =
  let _, nodes, r = build () in
  let res =
    Router.pay r ~src:nodes.(0) ~dst:nodes.(3) ~amount:20_000
      ~preimage:"invoice-1" ()
  in
  check_b "delivered" true res.Router.delivered;
  check_i "one attempt" 1 res.Router.attempts;
  (* liquidity moved: n0 spent 20k, n3 gained 20k *)
  check_i "n0 liquidity down" (100_000 - 20_000) (Router.node_liquidity r "n0");
  check_i "n3 liquidity up" (100_000 + 20_000) (Router.node_liquidity r "n3")

let test_reroute_around_offline () =
  let d, nodes, r = build () in
  (* n4 goes offline: the short route dies, BFS finds n1-n2 *)
  Driver.corrupt d "n4";
  (match Router.find_route r ~src:nodes.(0) ~dst:nodes.(3) ~amount:10_000 () with
  | None -> Alcotest.fail "no route around offline node"
  | Some route -> check_i "three hops via n1,n2" 3 (List.length route));
  let res =
    Router.pay r ~src:nodes.(0) ~dst:nodes.(3) ~amount:10_000
      ~preimage:"invoice-2" ()
  in
  check_b "delivered around offline node" true res.Router.delivered;
  check_i "long route used" 3 res.Router.route_length

let test_liquidity_exhaustion_reroutes () =
  let _, nodes, r = build () in
  (* drain the n0->n4 direction with two 25k payments, then pay again:
     the third must go via n1-n2 *)
  let pay k =
    Router.pay r ~src:nodes.(0) ~dst:nodes.(3) ~amount:25_000
      ~preimage:(Fmt.str "inv-%d" k) ()
  in
  let r1 = pay 1 and r2 = pay 2 in
  check_b "first two delivered" true (r1.Router.delivered && r2.Router.delivered);
  let r3 = pay 3 in
  check_b "third delivered" true r3.Router.delivered;
  check_i "third took the long route" 3 r3.Router.route_length;
  let att, ok = Router.stats r in
  check_b "stats track" true (att = 3 && ok = 3)

let test_unknown_destination () =
  let d, nodes, r = build () in
  let stranger = Party.create ~pid:"stranger" ~seed:999 () in
  Driver.add_party d stranger;
  check_b "unreachable destination" true
    (Router.find_route r ~src:nodes.(0) ~dst:stranger ~amount:1 () = None)

let () =
  Alcotest.run "daric-router"
    [ ( "router",
        [ Alcotest.test_case "shortest route" `Quick test_shortest_route;
          Alcotest.test_case "liquidity constraint" `Quick test_liquidity_constraint;
          Alcotest.test_case "payment end-to-end" `Quick test_payment_end_to_end;
          Alcotest.test_case "reroute around offline" `Quick
            test_reroute_around_offline;
          Alcotest.test_case "liquidity exhaustion" `Quick
            test_liquidity_exhaustion_reroutes;
          Alcotest.test_case "unknown destination" `Quick test_unknown_destination ] ) ]
