test/test_persist.ml: Alcotest Daric_chain Daric_core Daric_tx Option Result String
