test/test_protocol.ml: Alcotest Daric_chain Daric_core Daric_tx Fmt List Option
