test/test_router.ml: Alcotest Array Daric_core Daric_pcn Daric_tx Fmt List
