test/test_script.ml: Alcotest Daric_core Daric_crypto Daric_script Daric_util Gen QCheck QCheck_alcotest String
