test/test_pcn.ml: Alcotest Daric_chain Daric_core Daric_crypto Daric_pcn Daric_script Daric_tx Daric_util Fmt List Option String
