test/test_nesting.ml: Alcotest Daric_chain Daric_core Daric_tx Daric_util List QCheck QCheck_alcotest
