test/test_wire.ml: Alcotest Daric_core Daric_tx Daric_util List QCheck QCheck_alcotest String
