test/test_nesting.mli:
