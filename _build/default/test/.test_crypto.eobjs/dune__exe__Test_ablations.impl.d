test/test_ablations.ml: Alcotest Daric_chain Daric_core Daric_script Daric_tx Daric_util
