test/test_crypto.ml: Alcotest Bytes Daric_crypto Daric_tx Daric_util Fmt Gen List QCheck QCheck_alcotest String
