test/test_crypto.ml: Alcotest Daric_crypto Daric_util Fmt Gen List QCheck QCheck_alcotest String
