test/test_ablations.mli:
