test/test_analysis.ml: Alcotest Daric_analysis Daric_core Daric_util List String
