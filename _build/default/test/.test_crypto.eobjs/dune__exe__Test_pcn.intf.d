test/test_pcn.mli:
