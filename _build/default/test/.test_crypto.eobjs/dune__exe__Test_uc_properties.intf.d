test/test_uc_properties.mli:
