test/test_tx.ml: Alcotest Daric_core Daric_crypto Daric_script Daric_tx Daric_util List String
