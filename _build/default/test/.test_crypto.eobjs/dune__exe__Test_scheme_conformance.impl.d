test/test_scheme_conformance.ml: Alcotest Daric_schemes List Printf
