test/test_scheme_conformance.mli:
