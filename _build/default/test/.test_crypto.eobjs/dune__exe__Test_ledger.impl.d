test/test_ledger.ml: Alcotest Array Daric_chain Daric_crypto Daric_tx Daric_util List QCheck QCheck_alcotest String
