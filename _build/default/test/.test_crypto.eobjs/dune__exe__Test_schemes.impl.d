test/test_schemes.ml: Alcotest Daric_chain Daric_core Daric_schemes Daric_script Daric_tx Daric_util Fmt List Option QCheck QCheck_alcotest
