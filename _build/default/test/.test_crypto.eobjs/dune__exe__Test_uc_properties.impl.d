test/test_uc_properties.ml: Alcotest Daric_chain Daric_core Daric_crypto Daric_tx Fmt List Option QCheck QCheck_alcotest String
