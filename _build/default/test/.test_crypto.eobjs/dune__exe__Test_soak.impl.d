test/test_soak.ml: Alcotest Daric_analysis Daric_core Daric_tx List Option
