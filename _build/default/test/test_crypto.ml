(* Crypto substrate tests: FIPS 180-4 and RIPEMD-160 vectors, group
   laws, Schnorr signatures and Schnorr adaptor signatures. *)

module Sha256 = Daric_crypto.Sha256
module Ripemd160 = Daric_crypto.Ripemd160
module Hash = Daric_crypto.Hash
module Group = Daric_crypto.Group
module Schnorr = Daric_crypto.Schnorr
module Adaptor = Daric_crypto.Adaptor
module Rng = Daric_util.Rng

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

let test_sha256_vectors () =
  check_s "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hexdigest "");
  check_s "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hexdigest "abc");
  check_s "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hexdigest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_s "896-bit"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.hexdigest
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu");
  check_s "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hexdigest (String.make 1_000_000 'a'))

(* Padding boundaries: lengths 55, 56, 63, 64, 65 exercise the one- vs
   two-block padding logic. Reference values from any standard
   implementation (python hashlib). *)
let test_sha256_padding_boundaries () =
  let cases =
    [ (55, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
      (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
      (63, "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34");
      (64, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
      (65, "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0") ]
  in
  List.iter
    (fun (n, expected) ->
      check_s (Fmt.str "len %d" n) expected (Sha256.hexdigest (String.make n 'a')))
    cases

let test_ripemd160_vectors () =
  check_s "empty" "9c1185a5c5e9fc54612808977ee8f548b2258d31" (Ripemd160.hexdigest "");
  check_s "a" "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe" (Ripemd160.hexdigest "a");
  check_s "abc" "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc" (Ripemd160.hexdigest "abc");
  check_s "message digest" "5d0689ef49d2fae572b881b123a85ffa21595f36"
    (Ripemd160.hexdigest "message digest");
  check_s "a..z" "f71c27109c692c1b56bbdceb5b9d2865b3708dbc"
    (Ripemd160.hexdigest "abcdefghijklmnopqrstuvwxyz");
  check_s "digits"
    "9b752e45573d4b39f4dbd3323cab82bf63326bfb"
    (Ripemd160.hexdigest
       (String.concat "" (List.init 8 (fun _ -> "1234567890"))))

let test_hash_combinators () =
  check_b "hash256 = sha256^2" true
    (Hash.hash256 "x" = Sha256.digest (Sha256.digest "x"));
  check_b "hash160 = ripemd160(sha256)" true
    (Hash.hash160 "x" = Ripemd160.digest (Sha256.digest "x"));
  check_b "tagged domain separation" true
    (Hash.tagged "a" "msg" <> Hash.tagged "b" "msg")

let test_group_laws () =
  check_b "p = 2q+1" true (Group.p = (2 * Group.q) + 1);
  check_b "g in subgroup" true (Group.is_element Group.g);
  check_b "g^q = 1" true (Group.pow Group.g Group.q = 1);
  (* exponent laws on a sample *)
  let rng = Rng.create ~seed:99 in
  for _ = 1 to 50 do
    let a = 1 + Rng.int rng (Group.q - 1) in
    let b = 1 + Rng.int rng (Group.q - 1) in
    check_b "g^(a+b) = g^a g^b" true
      (Group.pow Group.g (Group.scalar_add a b)
      = Group.mul (Group.pow Group.g a) (Group.pow Group.g b));
    let x = Group.pow Group.g a in
    check_b "x * x^-1 = 1" true (Group.mul x (Group.inv x) = 1)
  done

let test_schnorr_roundtrip () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 20 do
    let sk, pk = Schnorr.keygen rng in
    let msg = Rng.bytes rng 40 in
    let sg = Schnorr.sign sk msg in
    check_b "verifies" true (Schnorr.verify pk msg sg);
    check_b "wrong message fails" false (Schnorr.verify pk (msg ^ "x") sg);
    let sk2, pk2 = Schnorr.keygen rng in
    ignore sk2;
    check_b "wrong key fails" false (Schnorr.verify pk2 msg sg)
  done

let test_schnorr_encoding () =
  let rng = Rng.create ~seed:2 in
  let sk, pk = Schnorr.keygen rng in
  let enc = Schnorr.encode_public_key pk in
  Alcotest.(check int) "pubkey is 33 bytes" 33 (String.length enc);
  check_b "pubkey roundtrip" true (Schnorr.decode_public_key enc = Some pk);
  let sg = Schnorr.sign sk "m" in
  let senc = Schnorr.encode_signature sg in
  Alcotest.(check int) "signature is 73 bytes" 73 (String.length senc);
  check_b "sig roundtrip" true (Schnorr.decode_signature senc = Some sg);
  check_b "bytes verify" true (Schnorr.verify_bytes enc "m" senc)

let test_signature_determinism () =
  let rng = Rng.create ~seed:3 in
  let sk, _ = Schnorr.keygen rng in
  check_b "deterministic nonce" true (Schnorr.sign sk "m" = Schnorr.sign sk "m");
  check_b "distinct messages, distinct sigs" true
    (Schnorr.sign sk "m" <> Schnorr.sign sk "n")

let test_adaptor () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 20 do
    let sk, pk = Schnorr.keygen rng in
    let y, ys = Adaptor.gen_statement rng in
    let msg = Rng.bytes rng 32 in
    let ps = Adaptor.pre_sign sk ys msg in
    check_b "pre-verifies" true (Adaptor.pre_verify pk ys msg ps);
    (* a pre-signature is NOT a valid signature *)
    check_b "pre-sig not full sig" false
      (Schnorr.verify pk msg { Schnorr.r = ps.Adaptor.r; s = ps.Adaptor.s_pre });
    let full = Adaptor.adapt ps y in
    check_b "adapted verifies" true (Schnorr.verify pk msg full);
    Alcotest.(check int) "witness extraction" y (Adaptor.extract full ps)
  done

let test_adaptor_wrong_statement () =
  let rng = Rng.create ~seed:5 in
  let sk, pk = Schnorr.keygen rng in
  let _, ys = Adaptor.gen_statement rng in
  let y2, ys2 = Adaptor.gen_statement rng in
  let ps = Adaptor.pre_sign sk ys "m" in
  check_b "pre-verify with wrong statement fails" false
    (Adaptor.pre_verify pk ys2 "m" ps);
  check_b "adapting with wrong witness fails" false
    (Schnorr.verify pk "m" (Adaptor.adapt ps y2))

(* qcheck properties *)
let prop_sign_verify =
  QCheck.Test.make ~name:"schnorr sign/verify for arbitrary messages"
    ~count:200
    QCheck.(pair small_nat (string_of_size Gen.(0 -- 200)))
    (fun (seed, msg) ->
      let rng = Rng.create ~seed:(seed + 1) in
      let sk, pk = Schnorr.keygen rng in
      Schnorr.verify pk msg (Schnorr.sign sk msg))

let prop_group_assoc =
  QCheck.Test.make ~name:"group multiplication associativity" ~count:500
    QCheck.(triple pos_int pos_int pos_int)
    (fun (a, b, c) ->
      let f x = 1 + (x mod (Group.p - 1)) in
      let a = f a and b = f b and c = f c in
      Group.mul (Group.mul a b) c = Group.mul a (Group.mul b c))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun s -> Daric_util.Hex.decode (Daric_util.Hex.encode s) = s)

let () =
  Alcotest.run "daric-crypto"
    [ ( "hash",
        [ Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "sha256 padding boundaries" `Quick
            test_sha256_padding_boundaries;
          Alcotest.test_case "ripemd160 vectors" `Quick test_ripemd160_vectors;
          Alcotest.test_case "combinators" `Quick test_hash_combinators ] );
      ( "group",
        [ Alcotest.test_case "laws" `Quick test_group_laws;
          QCheck_alcotest.to_alcotest prop_group_assoc ] );
      ( "schnorr",
        [ Alcotest.test_case "roundtrip" `Quick test_schnorr_roundtrip;
          Alcotest.test_case "encodings" `Quick test_schnorr_encoding;
          Alcotest.test_case "determinism" `Quick test_signature_determinism;
          QCheck_alcotest.to_alcotest prop_sign_verify ] );
      ( "adaptor",
        [ Alcotest.test_case "pre-sign/adapt/extract" `Quick test_adaptor;
          Alcotest.test_case "wrong statement" `Quick test_adaptor_wrong_statement ] );
      ("util", [ QCheck_alcotest.to_alcotest prop_hex_roundtrip ]) ]
