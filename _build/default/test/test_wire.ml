(* Wire-format tests: canonical encoding roundtrips for every protocol
   message, tamper rejection, and the per-update communication cost. *)

module Tx = Daric_tx.Tx
module Wire = Daric_core.Wire
module Keys = Daric_core.Keys
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Rng = Daric_util.Rng

let check_b = Alcotest.(check bool)

let sample_messages () : Wire.msg list =
  let rng = Rng.create ~seed:3 in
  let keys = Keys.pub (Keys.generate rng) in
  let sig73 = String.make 73 's' in
  let tid = { Tx.txid = Rng.bytes rng 32; vout = 2 } in
  let theta =
    [ { Tx.value = 40_000; spk = Tx.P2wpkh (Rng.bytes rng 20) };
      { Tx.value = 60_000; spk = Tx.P2wsh (Rng.bytes rng 32) } ]
  in
  [ Wire.Create_info { id = "chan-9"; tid; keys };
    Wire.Create_com { id = "c"; split_sig = sig73; commit_sig = sig73 };
    Wire.Create_fund { id = "c"; fund_sig = sig73 };
    Wire.Update_req { id = "c"; theta; tstp = 3 };
    Wire.Update_info { id = "c"; split_sig = sig73 };
    Wire.Update_com_initiator { id = "c"; split_sig = sig73; commit_sig = sig73 };
    Wire.Update_com_responder { id = "c"; commit_sig = sig73 };
    Wire.Revoke_initiator { id = "c"; rev_sig = sig73 };
    Wire.Revoke_responder { id = "c"; rev_sig = sig73 };
    Wire.Close_req { id = "c"; fin_sig = sig73 };
    Wire.Close_ack { id = "c"; fin_sig = sig73 } ]

let test_roundtrip () =
  List.iter
    (fun m ->
      match Wire.decode (Wire.encode m) with
      | Some m' -> check_b (Wire.kind m ^ " roundtrips") true (m = m')
      | None -> Alcotest.fail ("decode failed for " ^ Wire.kind m))
    (sample_messages ())

let test_tamper_rejected () =
  List.iter
    (fun m ->
      let enc = Wire.encode m in
      (* truncation must be detected *)
      check_b (Wire.kind m ^ " truncated rejected") true
        (Wire.decode (String.sub enc 0 (String.length enc - 1))
         <> Some m);
      (* trailing garbage must be detected *)
      check_b (Wire.kind m ^ " padded rejected") true
        (Wire.decode (enc ^ "x") = None))
    (sample_messages ())

let test_bad_tag () =
  check_b "unknown tag" true (Wire.decode "\xff\x01c" = None);
  check_b "empty" true (Wire.decode "" = None)

(* Per-update communication: the 4-message update exchange is a few
   hundred bytes, independent of the state number. *)
let test_update_communication_cost () =
  let d = Driver.create ~delta:1 ~seed:8 () in
  let alice = Party.create ~pid:"alice" ~seed:1 () in
  let bob = Party.create ~pid:"bob" ~seed:2 () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  Driver.open_channel d ~id:"c" ~alice ~bob ~bal_a:50_000 ~bal_b:50_000 ();
  assert (Driver.run_until_operational d ~id:"c" ~alice ~bob);
  let c = Party.chan_exn alice "c" in
  let pk_a, pk_b = Party.main_pks c in
  let measure k =
    let before = Driver.bytes_sent d in
    let theta =
      Daric_core.Txs.balance_state ~pk_a ~pk_b ~bal_a:(50_000 - k)
        ~bal_b:(50_000 + k)
    in
    assert (Driver.update_channel d ~id:"c" ~initiator:alice ~responder:bob ~theta);
    Driver.bytes_sent d - before
  in
  let c1 = measure 1 in
  let c100 = measure 100 in
  check_b "update costs a few hundred bytes" true (c1 > 200 && c1 < 2_000);
  check_b "cost independent of state number" true (c1 = c100);
  Alcotest.(check int) "six messages per update" 6
    (let before = Driver.messages_sent d in
     let theta =
       Daric_core.Txs.balance_state ~pk_a ~pk_b ~bal_a:49_000 ~bal_b:51_000
     in
     assert (Driver.update_channel d ~id:"c" ~initiator:alice ~responder:bob ~theta);
     Driver.messages_sent d - before)

let prop_roundtrip_update_req =
  QCheck.Test.make ~name:"updateReq roundtrips for arbitrary states" ~count:100
    QCheck.(pair (list (pair (int_bound 1_000_000) (int_bound 1))) small_nat)
    (fun (outs, tstp) ->
      let theta =
        List.map
          (fun (v, kind) ->
            { Tx.value = v;
              spk =
                (if kind = 0 then Tx.P2wpkh (String.make 20 'h')
                 else Tx.P2wsh (String.make 32 'H')) })
          outs
      in
      let m = Wire.Update_req { id = "x"; theta; tstp } in
      Wire.decode (Wire.encode m) = Some m)

let () =
  Alcotest.run "daric-wire"
    [ ( "wire",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "tamper rejected" `Quick test_tamper_rejected;
          Alcotest.test_case "bad tag" `Quick test_bad_tag;
          Alcotest.test_case "update communication cost" `Quick
            test_update_communication_cost;
          QCheck_alcotest.to_alcotest prop_roundtrip_update_req ] ) ]
