(* PCN tests: HTLC script semantics, multi-hop payments across Daric
   channels, and the Section 6.1 delay attack (eltoo pinned, Daric
   immune). *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Htlc = Daric_pcn.Htlc
module Multihop = Daric_pcn.Multihop
module Attack = Daric_pcn.Attack
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Keys = Daric_core.Keys
module Rng = Daric_util.Rng

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ---------------- HTLC scripts ---------------- *)

let htlc_setup () =
  let l = Ledger.create ~delta:1 () in
  let rng = Rng.create ~seed:31 in
  let payee = Keys.keygen rng and payer = Keys.keygen rng in
  let preimage = Rng.bytes rng 32 in
  let h =
    Htlc.of_preimage ~preimage ~amount:500 ~payee_pk:payee.Keys.pk
      ~payer_pk:payer.Keys.pk ~timeout:4
  in
  let op = Ledger.mint l ~value:500 ~spk:(Htlc.output h).Tx.spk in
  (l, payee, payer, preimage, h, op)

let test_htlc_redeem () =
  let l, payee, _, preimage, h, op = htlc_setup () in
  let tx = Htlc.redeem h ~payee_sk:payee.Keys.sk ~preimage ~htlc_outpoint:op in
  check_b "redeem valid immediately" true (Ledger.validate l tx = Ok ());
  (* wrong preimage fails *)
  let bad = Htlc.redeem h ~payee_sk:payee.Keys.sk ~preimage:"nope" ~htlc_outpoint:op in
  check_b "wrong preimage rejected" true (Ledger.validate l bad <> Ok ())

let test_htlc_claimback () =
  let l, _, payer, _, h, op = htlc_setup () in
  let tx = Htlc.claimback h ~payer_sk:payer.Keys.sk ~htlc_outpoint:op in
  check_b "claimback blocked before timeout" true (Ledger.validate l tx <> Ok ());
  for _ = 1 to h.Htlc.timeout do
    ignore (Ledger.tick l)
  done;
  check_b "claimback valid after timeout" true (Ledger.validate l tx = Ok ())

let test_htlc_payee_key_required () =
  let l, _, payer, preimage, h, op = htlc_setup () in
  (* the payer cannot redeem even with the preimage *)
  let tx = Htlc.redeem h ~payee_sk:payer.Keys.sk ~preimage ~htlc_outpoint:op in
  check_b "payer cannot use redeem path" true (Ledger.validate l tx <> Ok ())

let test_htlc_sizes () =
  (* the Appendix-H.2 101-byte witness script *)
  let rng = Rng.create ~seed:32 in
  let k = Keys.keygen rng in
  let h =
    Htlc.of_preimage ~preimage:"x" ~amount:1 ~payee_pk:k.Keys.pk
      ~payer_pk:k.Keys.pk ~timeout:144
  in
  check_i "101-byte HTLC script" 101 (Daric_script.Script.size (Htlc.script h));
  let tx = Htlc.redeem h ~payee_sk:k.Keys.sk ~preimage:(String.make 32 'p') ~htlc_outpoint:{ Tx.txid = String.make 32 'o'; vout = 0 } in
  (* Redeem' = 212 witness bytes, 82 non-witness (Appendix H.2) *)
  check_i "redeem witness bytes" 212 (Tx.witness_size tx);
  check_i "redeem non-witness bytes" 82 (Tx.non_witness_size tx);
  let cb = Htlc.claimback h ~payer_sk:k.Keys.sk ~htlc_outpoint:{ Tx.txid = String.make 32 'o'; vout = 0 } in
  check_i "claimback witness bytes" 180 (Tx.witness_size cb);
  check_i "claimback non-witness bytes" 82 (Tx.non_witness_size cb)

(* ---------------- multi-hop over Daric ---------------- *)

let mk_network n_hops =
  let d = Driver.create ~delta:1 ~seed:51 () in
  let parties =
    List.init (n_hops + 1) (fun i ->
        let p = Party.create ~pid:(Fmt.str "p%d" i) ~seed:(60 + i) () in
        Driver.add_party d p;
        p)
  in
  let route =
    List.init n_hops (fun i ->
        let payer = List.nth parties i and payee = List.nth parties (i + 1) in
        let id = Fmt.str "hop%d" i in
        Driver.open_channel d ~id ~alice:payer ~bob:payee ~bal_a:50_000
          ~bal_b:50_000 ();
        if not (Driver.run_until_operational d ~id ~alice:payer ~bob:payee) then
          failwith "hop failed to open";
        { Multihop.channel_id = id; payer; payee })
  in
  (d, parties, route)

let test_multihop_payment () =
  let d, _, route = mk_network 3 in
  let outcome =
    Multihop.pay d ~route ~amount:10_000 ~preimage:"secret-payment-1" ~timeout:20
  in
  check_b "payment delivered" true outcome.Multihop.delivered;
  check_i "all hops locked" 3 outcome.Multihop.hops_locked;
  check_i "all hops settled" 3 outcome.Multihop.hops_settled;
  (* balances moved along the route: sender side decreased *)
  List.iteri
    (fun i hop ->
      let c = Party.chan_exn hop.Multihop.payer hop.Multihop.channel_id in
      let vals = List.map (fun (o : Tx.output) -> o.Tx.value) c.Party.st in
      check_b (Fmt.str "hop %d settled 40k/60k" i) true (vals = [ 40_000; 60_000 ]))
    route

let test_multihop_htlc_on_chain_enforcement () =
  (* lock a payment, then force the channel on chain mid-flight: the
     split transaction carries the HTLC output and the payee can redeem
     it with the preimage *)
  let d, _, route = mk_network 1 in
  let hop = List.hd route in
  let preimage = "secret-payment-2" in
  let digest = Daric_crypto.Hash.hash160 preimage in
  let theta = Multihop.locked_state hop ~amount:10_000 ~digest ~timeout:20 in
  check_b "lock update" true
    (Driver.update_channel d ~id:hop.Multihop.channel_id
       ~initiator:hop.Multihop.payer ~responder:hop.Multihop.payee ~theta);
  (* the payee force-closes *)
  Driver.corrupt d "p0";
  Party.request_close hop.Multihop.payee (Driver.ctx d "p1")
    ~id:hop.Multihop.channel_id;
  Driver.run d 20;
  check_b "payee closed on chain" true
    (Driver.saw_event hop.Multihop.payee (function
      | Party.Closed _ -> true
      | _ -> false));
  (* find the split on chain and redeem its HTLC output *)
  let c = Party.chan_exn hop.Multihop.payee hop.Multihop.channel_id in
  let fund_op = Tx.outpoint_of (Option.get c.Party.fund) 0 in
  let l = Driver.ledger d in
  let commit = Option.get (Ledger.spender_of l fund_op) in
  let split = Option.get (Ledger.spender_of l (Tx.outpoint_of commit 0)) in
  check_i "split has 3 outputs (2 balances + HTLC)" 3
    (List.length split.Tx.outputs);
  let pk_a, pk_b = Party.main_pks c in
  let payee_is_a = c.Party.cfg.role = Keys.Alice in
  let payee_pk = if payee_is_a then pk_a else pk_b in
  let payer_pk = if payee_is_a then pk_b else pk_a in
  let h =
    Htlc.of_preimage ~preimage ~amount:10_000 ~payee_pk ~payer_pk ~timeout:20
  in
  let payee_sk = c.Party.keys.Keys.main.Keys.sk in
  let redeem =
    Htlc.redeem h ~payee_sk ~preimage ~htlc_outpoint:(Tx.outpoint_of split 2)
  in
  check_b "HTLC redeemable on chain" true (Ledger.validate l redeem = Ok ())

(* ---------------- the Section 6.1 attack ---------------- *)

let test_attack_analytics () =
  check_i "~715 channels per delay tx" 716
    (Attack.Analytic.max_channels_per_delay_tx ());
  check_i "144 delay txs over 3 days" 144
    (Attack.Analytic.delay_txs_before_expiry ());
  check_b "attack profitable against eltoo at paper scale" true
    (Attack.Analytic.profitable ())

let test_attack_pins_eltoo () =
  let cfg =
    { Attack.default_config with n_channels = 5; timelock_blocks = 8 }
  in
  let r = Attack.run_eltoo cfg in
  check_i "one delay tx per block" 8 r.Attack.delay_txs_confirmed;
  check_i "no victim escapes before expiry" 0 r.Attack.victims_escaped_in_time;
  check_b "victim overrides rejected by BIP-125" true
    (r.Attack.victim_overrides_rejected >= 5);
  check_i "fees = blocks * A" (8 * cfg.htlc_value) r.Attack.adversary_fees_paid

let test_attack_fails_on_daric () =
  let cfg = { Attack.default_config with n_channels = 3 } in
  let r = Attack.run_daric cfg in
  check_i "all cheats punished" r.Attack.old_commits_posted
    r.Attack.punished_within_window;
  check_i "no HTLC stolen" 0 r.Attack.htlcs_claimed;
  check_b "adversary loses capacity" true (r.Attack.adversary_capacity_lost > 0)

(* Measured vs analytic (Table 3, m > 0): build the full Daric
   non-collaborative closure with m HTLC outputs — commit, split,
   m/2 Redeem' and m/2 Claimback' transactions — and compare total
   witness/non-witness bytes against Appendix H.3's closed form:
   535+196m witness, 207+125m non-witness (weight 1363 + 696m). *)
let test_daric_noncollab_weight_with_htlcs () =
  List.iter
    (fun m ->
      let rng = Rng.create ~seed:(500 + m) in
      let keys_a = Keys.generate rng and keys_b = Keys.generate rng in
      let pub_a = Keys.pub keys_a and pub_b = Keys.pub keys_b in
      let cash = 1_000_000 in
      let fund =
        Daric_core.Txs.gen_fund
          ~tid_a:{ Tx.txid = String.make 32 'a'; vout = 0 }
          ~tid_b:{ Tx.txid = String.make 32 'b'; vout = 0 }
          ~cash ~pk_a:pub_a.Keys.main_pk ~pk_b:pub_b.Keys.main_pk
      in
      let cm_a, _ =
        Daric_core.Txs.gen_commit ~funding:(Tx.outpoint_of fund 0) ~value:cash
          ~keys_a:pub_a ~keys_b:pub_b ~s0:500_000_000 ~i:7 ~rel_lock:144
      in
      let commit =
        let msg = Daric_core.Txs.commit_message cm_a in
        Daric_core.Txs.complete_commit cm_a
          ~sig_a:(Daric_tx.Sighash.sign_message keys_a.Keys.main.Keys.sk All msg)
          ~sig_b:(Daric_tx.Sighash.sign_message keys_b.Keys.main.Keys.sk All msg)
          ~pk_a:pub_a.Keys.main_pk ~pk_b:pub_b.Keys.main_pk
      in
      (* split with two balance outputs + m HTLC outputs *)
      let htlcs =
        List.init m (fun i ->
            Htlc.of_preimage ~preimage:(Fmt.str "%032d" i) ~amount:1_000
              ~payee_pk:pub_b.Keys.main_pk ~payer_pk:pub_a.Keys.main_pk
              ~timeout:144)
      in
      let theta =
        Daric_core.Txs.balance_state ~pk_a:pub_a.Keys.main_pk
          ~pk_b:pub_b.Keys.main_pk
          ~bal_a:((cash / 2) - (1_000 * m))
          ~bal_b:(cash / 2)
        @ List.map Htlc.output htlcs
      in
      let split_body = Daric_core.Txs.gen_split ~theta ~s0:500_000_000 ~i:7 in
      let msg = Daric_core.Txs.split_message split_body in
      let script =
        Daric_core.Txs.commit_script_of ~role:Keys.Alice ~keys_a:pub_a
          ~keys_b:pub_b ~s0:500_000_000 ~i:7 ~rel_lock:144
      in
      let split =
        Daric_core.Txs.complete_split split_body
          ~commit_outpoint:(Tx.outpoint_of commit 0) ~commit_script:script
          ~sig_a:(Daric_tx.Sighash.sign_message keys_a.Keys.sp.Keys.sk Anyprevout msg)
          ~sig_b:(Daric_tx.Sighash.sign_message keys_b.Keys.sp.Keys.sk Anyprevout msg)
      in
      (* half redeemed by the payee, half claimed back by the payer *)
      let claims =
        List.mapi
          (fun i h ->
            let op = Tx.outpoint_of split (2 + i) in
            if i mod 2 = 0 then
              Htlc.redeem h ~payee_sk:keys_b.Keys.main.Keys.sk
                ~preimage:(Fmt.str "%032d" i) ~htlc_outpoint:op
            else Htlc.claimback h ~payer_sk:keys_a.Keys.main.Keys.sk ~htlc_outpoint:op)
          htlcs
      in
      let all_txs = commit :: split :: claims in
      let wit = List.fold_left (fun a t -> a + Tx.witness_size t) 0 all_txs in
      let nonwit = List.fold_left (fun a t -> a + Tx.non_witness_size t) 0 all_txs in
      check_i (Fmt.str "witness bytes at m=%d" m) (535 + (196 * m)) wit;
      check_i (Fmt.str "non-witness bytes at m=%d" m) (207 + (125 * m)) nonwit;
      check_i (Fmt.str "weight at m=%d" m) (1363 + (696 * m))
        ((4 * nonwit) + wit))
    [ 0; 2; 4; 10 ]

let () =
  Alcotest.run "daric-pcn"
    [ ( "htlc",
        [ Alcotest.test_case "redeem" `Quick test_htlc_redeem;
          Alcotest.test_case "claimback" `Quick test_htlc_claimback;
          Alcotest.test_case "payee key required" `Quick
            test_htlc_payee_key_required;
          Alcotest.test_case "appendix-H sizes" `Quick test_htlc_sizes;
          Alcotest.test_case "non-collab closure weight, m HTLCs" `Quick
            test_daric_noncollab_weight_with_htlcs ] );
      ( "multihop",
        [ Alcotest.test_case "3-hop payment" `Quick test_multihop_payment;
          Alcotest.test_case "on-chain HTLC enforcement" `Quick
            test_multihop_htlc_on_chain_enforcement ] );
      ( "attack",
        [ Alcotest.test_case "analytic numbers" `Quick test_attack_analytics;
          Alcotest.test_case "eltoo pinned" `Quick test_attack_pins_eltoo;
          Alcotest.test_case "daric immune" `Quick test_attack_fails_on_daric ] ) ]
