(* Soak tests: long-running sessions exercising the protocol and the
   network simulation at a larger scale than the unit suites. *)

module Tx = Daric_tx.Tx
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Txs = Daric_core.Txs
module Pcn_sim = Daric_analysis.Pcn_sim

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* 200 updates, then a dishonest replay of a mid-life state. *)
let test_long_channel () =
  let d = Driver.create ~delta:1 ~seed:1001 () in
  let alice = Party.create ~pid:"alice" ~seed:1 () in
  let bob = Party.create ~pid:"bob" ~seed:2 () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  Driver.open_channel d ~id:"c" ~alice ~bob ~bal_a:500_000 ~bal_b:500_000 ();
  assert (Driver.run_until_operational d ~id:"c" ~alice ~bob);
  let c = Party.chan_exn alice "c" in
  let pk_a, pk_b = Party.main_pks c in
  let snapshot = ref None in
  let storage_mid = ref 0 in
  for k = 1 to 200 do
    if k = 100 then begin
      snapshot := (Party.chan_exn bob "c").Party.commit_mine;
      storage_mid := Daric_core.Storage.party_bytes alice ~id:"c"
    end;
    let theta =
      Txs.balance_state ~pk_a ~pk_b
        ~bal_a:(500_000 - (k mod 97 * 100))
        ~bal_b:(500_000 + (k mod 97 * 100))
    in
    assert (Driver.update_channel d ~id:"c" ~initiator:alice ~responder:bob ~theta)
  done;
  check_i "sn = 200" 200 (Party.chan_exn alice "c").Party.sn;
  check_i "storage constant across 100 further updates" !storage_mid
    (Daric_core.Storage.party_bytes alice ~id:"c");
  (* replay state 99 *)
  Driver.corrupt d "bob";
  Driver.adversary_post d (Option.get !snapshot);
  Driver.run d 10;
  check_b "mid-life replay punished" true
    (Driver.saw_event alice (function Party.Punished _ -> true | _ -> false));
  check_i "full capacity recovered" 1_000_000
    (Tx.total_output_value (Option.get (Party.chan_exn alice "c").Party.punish_posted))

(* The PCN simulation is internally consistent and deterministic. *)
let test_pcn_sim_consistent () =
  let cfg = { Pcn_sim.default_config with n_nodes = 6; n_channels = 9; n_payments = 12 } in
  let r = Pcn_sim.run cfg in
  check_i "bucket attempts sum to total" r.Pcn_sim.attempted
    (List.fold_left (fun a (b : Pcn_sim.bucket) -> a + b.attempted) 0 r.buckets);
  check_i "bucket deliveries sum to total" r.Pcn_sim.delivered
    (List.fold_left (fun a (b : Pcn_sim.bucket) -> a + b.delivered) 0 r.buckets);
  check_b "some payments deliver" true (r.Pcn_sim.delivered > 0);
  let r2 = Pcn_sim.run cfg in
  check_i "deterministic under the same seed" r.Pcn_sim.delivered r2.Pcn_sim.delivered

let () =
  Alcotest.run "daric-soak"
    [ ( "soak",
        [ Alcotest.test_case "200-update channel" `Slow test_long_channel;
          Alcotest.test_case "pcn sim consistency" `Quick test_pcn_sim_consistent ] ) ]
