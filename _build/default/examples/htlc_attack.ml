(* The Section 6.1 channel-closure delay attack, side by side.

   Against eltoo, the adversary pins her victims' channels with one
   cheap delay transaction per block until their HTLC timelocks expire;
   against Daric the very first replayed state costs her the entire
   channel balance.

   Run with: dune exec examples/htlc_attack.exe *)

let () =
  let cfg =
    { Daric_pcn.Attack.default_config with
      n_channels = 8;
      timelock_blocks = 10;
      htlc_value = 100_000 }
  in
  print_string (Daric_analysis.Tables.attack_report ~cfg ());
  print_newline ();
  (* Paper-scale extrapolation: at N = 715 channels and 144 blocks the
     fee outlay is 144A against up to 715A of stolen HTLCs. *)
  let module A = Daric_pcn.Attack.Analytic in
  Fmt.pr
    "at paper scale (N=%d, 3-day timelock): cost %dA, revenue up to %dA -> \
     net up to %+dA per attack round@."
    (A.max_channels_per_delay_tx ())
    (A.cost_over_a ()) (A.max_revenue_over_a ())
    (A.max_revenue_over_a () - A.cost_over_a ())
