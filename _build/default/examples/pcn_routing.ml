(* A small payment-channel network with routing: open a mesh of Daric
   channels, route payments by liquidity-aware shortest path, watch
   liquidity shift, and survive a relay going offline.

   Topology (all channels 50k/50k):

        alice --- hub1 --- hub2 --- dana
           \                       /
            +------- hub3 --------+

   Run with: dune exec examples/pcn_routing.exe *)

module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Router = Daric_pcn.Router

let () =
  let d = Driver.create ~delta:1 ~seed:20_26 () in
  let mk pid seed =
    let p = Party.create ~pid ~seed () in
    Driver.add_party d p;
    p
  in
  let alice = mk "alice" 1 and hub1 = mk "hub1" 2 in
  let hub2 = mk "hub2" 3 and hub3 = mk "hub3" 4 in
  let dana = mk "dana" 5 in
  let net = Router.create d in
  let link a b id =
    Driver.open_channel d ~id ~alice:a ~bob:b ~bal_a:50_000 ~bal_b:50_000 ();
    assert (Driver.run_until_operational d ~id ~alice:a ~bob:b);
    Router.add_channel net ~channel_id:id ~a ~b;
    Fmt.pr "opened %-14s %s <-> %s@." id a.Party.pid b.Party.pid
  in
  link alice hub1 "alice-hub1";
  link hub1 hub2 "hub1-hub2";
  link hub2 dana "hub2-dana";
  link alice hub3 "alice-hub3";
  link hub3 dana "hub3-dana";

  let pay k amount =
    let r =
      Router.pay net ~src:alice ~dst:dana ~amount
        ~preimage:(Fmt.str "invoice-%d" k) ()
    in
    Fmt.pr "payment %d (%d sat): delivered=%b via %d hop(s), %d attempt(s)@." k
      amount r.Router.delivered r.Router.route_length r.Router.attempts
  in

  Fmt.pr "@.alice's total liquidity: %d sat@." (Router.node_liquidity net "alice");
  pay 1 20_000;
  pay 2 20_000 (* drains the short route: 50k - 40k < 20k next time *);
  pay 3 20_000 (* rerouted through hub1-hub2 *);
  Fmt.pr "alice's liquidity after 3 payments: %d sat@."
    (Router.node_liquidity net "alice");

  Fmt.pr "@.hub3 goes offline...@.";
  Driver.corrupt d "hub3";
  pay 4 5_000;

  let attempted, succeeded = Router.stats net in
  Fmt.pr "@.%d/%d payments delivered; dana now holds %d sat of liquidity@."
    succeeded attempted
    (Router.node_liquidity net "dana")
