examples/htlc_attack.mli:
