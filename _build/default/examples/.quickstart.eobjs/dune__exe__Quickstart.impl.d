examples/quickstart.ml: Daric_chain Daric_core Daric_tx Fmt List Option
