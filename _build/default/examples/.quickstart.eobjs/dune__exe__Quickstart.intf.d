examples/quickstart.mli:
