examples/pcn_payment.mli:
