examples/channel_reset.ml: Daric_chain Daric_core Daric_script Daric_tx Daric_util Fmt Option String
