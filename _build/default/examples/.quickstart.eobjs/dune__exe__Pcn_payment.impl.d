examples/pcn_payment.ml: Daric_chain Daric_core Daric_pcn Daric_tx Fmt List
