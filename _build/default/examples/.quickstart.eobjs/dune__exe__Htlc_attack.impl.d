examples/htlc_attack.ml: Daric_analysis Daric_pcn Fmt
