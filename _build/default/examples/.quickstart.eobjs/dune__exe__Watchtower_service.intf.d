examples/watchtower_service.mli:
