examples/dishonest_closure.mli:
