examples/pcn_routing.ml: Daric_core Daric_pcn Fmt
