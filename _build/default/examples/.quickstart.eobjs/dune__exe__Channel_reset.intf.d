examples/channel_reset.mli:
