examples/pcn_routing.mli:
