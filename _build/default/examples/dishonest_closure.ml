(* Dishonest closure and punishment (Section 4.4, Fig. 3).

   Bob snapshots a state in which he held more funds, keeps updating,
   then replays the old commit transaction. Alice's Punish daemon
   instantly completes her floating revocation transaction — which
   spends *any* of Bob's revoked commits thanks to ANYPREVOUT and the
   nLockTime state ordering — and takes the whole channel capacity.

   Run with: dune exec examples/dishonest_closure.exe *)

module Tx = Daric_tx.Tx
module Ledger = Daric_chain.Ledger
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Txs = Daric_core.Txs

let () =
  let d = Driver.create ~delta:1 ~seed:4242 () in
  let alice = Party.create ~pid:"alice" ~seed:1 () in
  let bob = Party.create ~pid:"bob" ~seed:2 () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  Driver.open_channel d ~id:"ch" ~alice ~bob ~bal_a:20_000 ~bal_b:80_000 ();
  assert (Driver.run_until_operational d ~id:"ch" ~alice ~bob);
  Fmt.pr "channel open: alice 20000, bob 80000@.";

  (* Bob (acting dishonestly later) keeps his state-0 commit around. *)
  let cb = Party.chan_exn bob "ch" in
  let old_commit = Option.get cb.Party.commit_mine in
  Fmt.pr "bob snapshots his state-0 commit %a@." Tx.pp old_commit;

  (* The channel moves on: Bob pays Alice most of his balance. *)
  let ca = Party.chan_exn alice "ch" in
  let pk_a, pk_b = Party.main_pks ca in
  List.iteri
    (fun i (a, b) ->
      let theta = Txs.balance_state ~pk_a ~pk_b ~bal_a:a ~bal_b:b in
      assert (Driver.update_channel d ~id:"ch" ~initiator:bob ~responder:alice ~theta);
      Fmt.pr "update %d: alice %d, bob %d@." (i + 1) a b)
    [ (50_000, 50_000); (90_000, 10_000) ];

  (* Bob replays state 0, where he still had 80k. *)
  Fmt.pr "@.bob turns dishonest and publishes the revoked state-0 commit...@.";
  Driver.corrupt d "bob";
  Driver.adversary_post d old_commit;
  Driver.run d 8;

  assert (Driver.saw_event alice (function Party.Punished _ -> true | _ -> false));
  let rv = Option.get (Party.chan_exn alice "ch").Party.punish_posted in
  Fmt.pr "alice punished bob: revocation tx %a pays her the full %d sat@." Tx.pp
    rv (Tx.total_output_value rv);

  (* Why it worked: the revocation transaction was signed once, floats
     over every revoked commit, and the commit script's CLTV state
     ordering blocked everything except it. *)
  Fmt.pr "@.the dishonest closure cost %d weight units on chain (Table 3: 1239):@."
    (Tx.weight old_commit + Tx.weight rv);
  let fund_op = Tx.outpoint_of (Option.get ca.Party.fund) 0 in
  print_string
    (Daric_core.Flowchart.to_ascii
       (Daric_core.Flowchart.of_ledger (Driver.ledger d) ~funding:fund_op
          ~title:"punished closure"))
