(* A Daric watchtower guarding many channels with constant per-channel
   storage, punishing on behalf of an offline client.

   After every update the client replaces the watchtower's record (one
   floating revocation transaction + two signatures + script
   parameters); nothing accumulates, unlike a Lightning watchtower that
   must retain penalty data for every revoked state.

   Run with: dune exec examples/watchtower_service.exe *)

module Tx = Daric_tx.Tx
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Watchtower = Daric_core.Watchtower
module Txs = Daric_core.Txs

let () =
  let d = Driver.create ~delta:1 ~seed:31337 () in
  let wt = Watchtower.create ~wid:"tower" () in
  Driver.add_watchtower d wt;
  let n_channels = 4 in
  let chans =
    List.init n_channels (fun i ->
        let alice = Party.create ~pid:(Fmt.str "client%d" i) ~seed:(2 * i) () in
        let bob = Party.create ~pid:(Fmt.str "peer%d" i) ~seed:(2 * i + 1) () in
        Driver.add_party d alice;
        Driver.add_party d bob;
        let id = Fmt.str "ch%d" i in
        Driver.open_channel d ~id ~alice ~bob ~bal_a:50_000 ~bal_b:50_000 ();
        assert (Driver.run_until_operational d ~id ~alice ~bob);
        (id, alice, bob))
  in
  (* Every channel updates several times; after each update the client
     refreshes the tower's record. Watch the storage stay flat. *)
  List.iter
    (fun (id, alice, bob) ->
      let c = Party.chan_exn alice id in
      let pk_a, pk_b = Party.main_pks c in
      for k = 1 to 5 do
        let theta =
          Txs.balance_state ~pk_a ~pk_b ~bal_a:(50_000 - (100 * k))
            ~bal_b:(50_000 + (100 * k))
        in
        assert (Driver.update_channel d ~id ~initiator:alice ~responder:bob ~theta);
        (match Watchtower.record_for alice ~id with
        | Some r -> assert (Watchtower.watch wt r)
        | None -> assert false);
        Fmt.pr "%s update %d -> tower stores %d bytes total (%d channels)@." id
          k (Watchtower.storage_bytes wt) n_channels
      done)
    chans;

  (* One counter-party cheats while its client is offline. *)
  let id, alice, bob = List.nth chans 2 in
  Fmt.pr "@.%s's peer replays an old state while the client is offline...@." id;
  let cb = Party.chan_exn bob id in
  (* the cheater snapshots his current (state-5) commit; one more
     update below revokes it *)
  let snapshot = Option.get cb.Party.commit_mine in
  let c = Party.chan_exn alice id in
  let pk_a, pk_b = Party.main_pks c in
  let theta = Txs.balance_state ~pk_a ~pk_b ~bal_a:60_000 ~bal_b:40_000 in
  assert (Driver.update_channel d ~id ~initiator:alice ~responder:bob ~theta);
  (match Watchtower.record_for alice ~id with
  | Some r -> assert (Watchtower.watch wt r)
  | None -> assert false);
  Driver.corrupt d alice.Party.pid;
  Driver.corrupt d bob.Party.pid;
  Driver.adversary_post d snapshot;
  Driver.run d 8;
  Fmt.pr "tower punished channels: %a@."
    Fmt.(list ~sep:comma string)
    (Watchtower.punished wt);
  let spender =
    Daric_chain.Ledger.spender_of (Driver.ledger d) (Tx.outpoint_of snapshot 0)
  in
  (match spender with
  | Some rv ->
      Fmt.pr "revocation landed: %a -> %d sat to the offline client@." Tx.pp rv
        (Tx.total_output_value rv)
  | None -> Fmt.pr "ERROR: no punishment found@.");
  Fmt.pr "tower storage after everything: %d bytes (still constant per channel)@."
    (Watchtower.storage_bytes wt)
