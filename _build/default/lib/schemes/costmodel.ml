(** Closed-form on-chain cost and operation-count models for the eight
    payment channels of Table 3, transcribed from Appendix H.

    Every entry records, as a function of the number m of HTLC outputs:
    - the transactions published and their witness / non-witness bytes
      for the dishonest-closure and non-collaborative-closure scenarios,
    - the per-update signature / verification / exponentiation counts.

    weight = 4 x non-witness + witness (weight units); the fractional
    0.5m terms of Lightning's dishonest closure are kept as floats.
    Cerberus, Sleepy and Outpost do not specify HTLC handling, so their
    figures are only defined at m = 0 (as in the paper). *)

type closure_cost = {
  n_tx : float;  (** number of transactions (1+m etc.) *)
  witness : float;  (** bytes *)
  non_witness : float;  (** bytes *)
}

let weight (c : closure_cost) : float = (4. *. c.non_witness) +. c.witness

type ops = { sign : float; verify : float; exp : float }

type scheme = {
  name : string;
  supports_htlc : bool;
  dishonest : m:int -> closure_cost;
  non_collaborative : m:int -> closure_cost;
  ops_per_update : m:int -> ops;
  (* Table 1 qualitative columns *)
  party_storage : string;  (** O-notation in n updates *)
  watchtower_storage : string;
  lifetime : string;
  incentive_compatible : bool;
  txs_per_k_apps : string;  (** growth with k recursive channel splits *)
  avoids_adaptor_sigs : bool;
  bounded_closure : bool;
}

let f = float_of_int

(* H.1: Lightning. Dishonest: commit (224 + 269m? no: commit 224 wit /
   125+43m nonwit) + revocation (157+246.5m wit / 82+41m nonwit).
   Non-collab: commit + m/4 HTLC-timeout + m/4 HTLC-success + m/4
   redeem + m/4 claimback = 224+269m wit / 125+131m nonwit. *)
let lightning =
  { name = "Lightning";
    supports_htlc = true;
    dishonest =
      (fun ~m ->
        { n_tx = 2.;
          witness = 381. +. (246.5 *. f m);
          non_witness = 207. +. (84. *. f m) });
    non_collaborative =
      (fun ~m ->
        { n_tx = 1. +. f m;
          witness = 224. +. (269. *. f m);
          non_witness = 125. +. (131. *. f m) });
    ops_per_update =
      (fun ~m -> { sign = 2. +. (2. *. f m); verify = 1. +. (f m /. 2.); exp = 2. });
    party_storage = "O(n)";
    watchtower_storage = "O(n)";
    lifetime = "unlimited";
    incentive_compatible = true;
    txs_per_k_apps = "O(2^k)";
    avoids_adaptor_sigs = true;
    bounded_closure = true }

(* H.2: Generalized channels. *)
let generalized =
  { name = "Generalized";
    supports_htlc = true;
    dishonest =
      (fun ~m:_ -> { n_tx = 2.; witness = 638.; non_witness = 176. });
    non_collaborative =
      (fun ~m ->
        (* Appendix H.2 quotes 195m witness bytes but Table 3 uses the
           696m total slope; the per-HTLC Redeem'/Claimback' pair is the
           same 212+180 bytes as Daric's, i.e. 196m — we follow Table 3. *)
        { n_tx = 2. +. f m;
          witness = 624. +. (196. *. f m);
          non_witness = 202. +. (125. *. f m) });
    ops_per_update = (fun ~m:_ -> { sign = 3.; verify = 2.; exp = 1. });
    party_storage = "O(n)";
    watchtower_storage = "O(n)";
    lifetime = "unlimited";
    incentive_compatible = true;
    txs_per_k_apps = "O(1)";
    avoids_adaptor_sigs = false;
    bounded_closure = true }

(* H.5: FPPW. *)
let fppw =
  { name = "FPPW";
    supports_htlc = true;
    dishonest =
      (fun ~m:_ -> { n_tx = 2.; witness = 1121.; non_witness = 231. });
    non_collaborative =
      (fun ~m ->
        { n_tx = 2. +. f m;
          witness = 562. +. (196. *. f m);
          non_witness = 250. +. (125. *. f m) });
    ops_per_update = (fun ~m:_ -> { sign = 6.; verify = 10.; exp = 1. });
    party_storage = "O(n)";
    watchtower_storage = "O(n)";
    lifetime = "unlimited";
    incentive_compatible = true;
    txs_per_k_apps = "O(1)";
    avoids_adaptor_sigs = false;
    bounded_closure = true }

(* H.6: Cerberus (m = 0 only). *)
let cerberus =
  { name = "Cerberus";
    supports_htlc = false;
    dishonest =
      (fun ~m:_ -> { n_tx = 2.; witness = 758.; non_witness = 260. });
    non_collaborative =
      (fun ~m:_ -> { n_tx = 1.; witness = 224.; non_witness = 137. });
    ops_per_update = (fun ~m:_ -> { sign = 3.; verify = 6.; exp = 0. });
    party_storage = "O(n)";
    watchtower_storage = "O(n)";
    lifetime = "unlimited";
    incentive_compatible = true;
    txs_per_k_apps = "O(2^k)";
    avoids_adaptor_sigs = true;
    bounded_closure = true }

(* Outpost (Table 3 figures; weights back-computed from the quoted
   2632 / 3018 WU assuming the same witness share as Cerberus-style
   transactions: the paper's appendix section for Outpost is not more
   specific). *)
let outpost =
  { name = "Outpost";
    supports_htlc = false;
    dishonest =
      (fun ~m:_ -> { n_tx = 3.; witness = 1032.; non_witness = 400. });
    non_collaborative =
      (fun ~m:_ -> { n_tx = 3.; witness = 1418.; non_witness = 400. });
    ops_per_update = (fun ~m:_ -> { sign = 4.; verify = 4.; exp = 0. });
    party_storage = "O(n)";
    watchtower_storage = "O(log n)";
    lifetime = "limited";
    incentive_compatible = true;
    txs_per_k_apps = "O(2^k)";
    avoids_adaptor_sigs = true;
    bounded_closure = true }

(* Sleepy channels (Table 3 figures). *)
let sleepy =
  { name = "Sleepy";
    supports_htlc = false;
    dishonest =
      (fun ~m:_ -> { n_tx = 3.; witness = 972.; non_witness = 300. });
    non_collaborative =
      (fun ~m:_ -> { n_tx = 3.; witness = 1358.; non_witness = 300. });
    ops_per_update = (fun ~m:_ -> { sign = 5.; verify = 5.; exp = 0. });
    party_storage = "O(n)";
    watchtower_storage = "n/a";
    lifetime = "limited";
    incentive_compatible = true;
    txs_per_k_apps = "O(2^k)";
    avoids_adaptor_sigs = true;
    bounded_closure = true }

(* H.4: eltoo. Dishonest: old update + latest update + settlement (+
   HTLC claims). *)
let eltoo =
  { name = "eltoo";
    supports_htlc = true;
    dishonest =
      (fun ~m ->
        { n_tx = 3.;
          witness = 940. +. (196. *. f m);
          non_witness = 332. +. (125. *. f m) });
    non_collaborative =
      (fun ~m ->
        { n_tx = 2. +. f m;
          witness = 636. +. (196. *. f m);
          non_witness = 238. +. (125. *. f m) });
    ops_per_update = (fun ~m:_ -> { sign = 2.; verify = 2.; exp = 1. });
    party_storage = "O(1)";
    watchtower_storage = "O(1)";
    lifetime = "unlimited*";
    incentive_compatible = false;
    txs_per_k_apps = "O(1)";
    avoids_adaptor_sigs = true;
    bounded_closure = false }

(* H.3: Daric. *)
let daric =
  { name = "Daric";
    supports_htlc = true;
    dishonest =
      (fun ~m:_ -> { n_tx = 2.; witness = 535.; non_witness = 176. });
    non_collaborative =
      (fun ~m ->
        { n_tx = 2. +. f m;
          witness = 535. +. (196. *. f m);
          non_witness = 207. +. (125. *. f m) });
    ops_per_update = (fun ~m:_ -> { sign = 4.; verify = 3.; exp = 0. });
    party_storage = "O(1)";
    watchtower_storage = "O(1)";
    lifetime = "unlimited*";
    incentive_compatible = true;
    txs_per_k_apps = "O(1)";
    avoids_adaptor_sigs = true;
    bounded_closure = true }

let all : scheme list =
  [ lightning; generalized; fppw; cerberus; outpost; sleepy; eltoo; daric ]

(** Paper-quoted Table 3 weight-unit strings, for side-by-side
    comparison with the values our model computes. *)
let paper_quoted (name : string) : (string * string) option =
  match name with
  | "Lightning" -> Some (">= 1209 + 582.5m", "724 + 793m")
  | "Generalized" -> Some ("1342", "1432 + 696m")
  | "FPPW" -> Some ("2045", "1562 + 696m")
  | "Cerberus" -> Some ("1798", "772")
  | "Outpost" -> Some ("2632", "3018")
  | "Sleepy" -> Some ("2172", "2558")
  | "eltoo" -> Some ("2268 + 696m", "1588 + 696m")
  | "Daric" -> Some ("1239", "1363 + 696m")
  | _ -> None
