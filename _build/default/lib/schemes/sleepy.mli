(** Executable Sleepy channel [Aumayr et al. 2021] (simplified):
    bi-directional, watchtower-free. Dispute windows are anchored to
    one absolute channel end-time T_end, so an honest party needs to
    come online only once before T_end — at the price of a limited
    channel lifetime (Table 1). Party storage is O(n). *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys
module Schnorr = Daric_crypto.Schnorr

type side = {
  main : Keys.keypair;
  mutable rev_current : Keys.keypair;
  mutable received_rev : (int * Schnorr.secret_key) list;
}

type t = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  cash : int;
  t_end : int;
  fund : Tx.t;
  a : side;
  b : side;
  mutable sn : int;
  mutable commit_a : Tx.t;
  mutable commit_b : Tx.t;
  mutable ops_signs : int;
  mutable ops_verifies : int;
}

val output_script :
  t -> rev_pk:Schnorr.public_key -> other_pk:Schnorr.public_key ->
  owner_pk:Schnorr.public_key -> Script.t
(** Revocation 2-of-2 before T_end | owner's key after T_end (CLTV). *)

val create :
  t_end:int -> ledger:Ledger.t -> rng:Daric_util.Rng.t -> bal_a:int ->
  bal_b:int -> unit -> t

val update : t -> bal_a:int -> bal_b:int -> Tx.t * Tx.t

val punish : t -> victim:[ `A | `B ] -> published:Tx.t -> Tx.t option
(** Claim the cheater's balance with the revealed secret, any time
    before T_end — no relative timer to race while asleep. *)

val sweep_own :
  ?rev_pk:Schnorr.public_key -> t -> who:[ `A | `B ] -> published:Tx.t -> Tx.t
(** The publisher's own-balance sweep, valid only from T_end on; pass
    the [rev_pk] of an old state when sweeping an old commit. *)

val commit_of : t -> [ `A | `B ] -> Tx.t
val funding_outpoint : t -> Tx.outpoint
val remaining_lifetime : t -> int
val storage_bytes : t -> who:[ `A | `B ] -> int
val ops : t -> int * int

(** First-class {!Scheme_intf.SCHEME} instance driving this module
    through the generic lifecycle engine. *)
module Scheme : Scheme_intf.SCHEME
