(** Generic scenario engine running any {!Scheme_intf.SCHEME} through
    the common lifecycle with uniform instrumentation. *)

module I = Scheme_intf

type close = [ `None | `Collaborative | `Dishonest | `Force ]

type scenario = { updates : int; close : close }

type report = {
  scheme : string;
  updates_done : int;
  party_bytes : int;  (** at close time, after the updates *)
  watchtower_bytes : int option;
  total_ops : I.ops;  (** cumulative over the updates *)
  per_update_ops : I.ops;
  outcome : I.outcome option;  (** [None] iff the scenario closes with [`None] *)
}

val balance_at : I.config -> int -> int * int
(** Balance trajectory at update [k] (the historical Daric one). *)

val run :
  ?config:I.config -> env:I.env -> (module I.SCHEME) -> scenario ->
  (report, I.error) result

val run_fresh :
  ?delta:int -> ?config:I.config -> (module I.SCHEME) -> scenario ->
  (report, I.error) result
(** {!run} on a fresh ledger/RNG environment (the Table 1 seeding). *)
