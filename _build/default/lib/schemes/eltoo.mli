(** Executable eltoo channel [Decker, Russell, Osuntokun 2018].

    States are (update, settlement) pairs; update transactions are
    floating with ANYPREVOUT|SINGLE signatures, so a later update can
    override any earlier one — and several channels' updates can be
    batched into one transaction, which the Section 6.1 delay attack
    exploits. There is no punishment, and party storage is O(1). *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys

type party_keys = {
  main : Keys.keypair;
  upd : Keys.keypair;  (** static update key *)
  seed : string;  (** derives the per-state settlement keys *)
}

val gen_party_keys : Daric_util.Rng.t -> party_keys

val settlement_key : party_keys -> i:int -> Keys.keypair
(** Per-state settlement key derived from the seed — the one
    exponentiation per update of Table 3, and what keeps storage
    constant. *)

val update_script :
  s0:int -> i:int -> rel_lock:int -> ka:party_keys -> kb:party_keys -> Script.t
(** State-i update output script: CLTV ordering, then CSV-delayed
    settlement branch | immediate update branch. *)

type t = {
  ledger : Ledger.t;
  ka : party_keys;
  kb : party_keys;
  cash : int;
  s0 : int;
  rel_lock : int;
  fund : Tx.t;
  mutable sn : int;
  mutable update_tx : Tx.t;
  mutable update_sigs : string * string;
  mutable settlement : Tx.t;
  mutable settlement_sigs : string * string;
  mutable ops_signs : int;
  mutable ops_verifies : int;
  mutable ops_exps : int;
}

val create :
  ?s0:int -> ?rel_lock:int -> ledger:Ledger.t -> rng:Daric_util.Rng.t ->
  bal_a:int -> bal_b:int -> unit -> t

val balance_state : t -> bal_a:int -> bal_b:int -> Tx.output list

val update : t -> bal_a:int -> bal_b:int -> Tx.t * (string * string)
(** Off-chain update; returns the superseded (update body, signatures)
    pair so adversarial tests can model a cheater who kept it. *)

val complete_update :
  t -> Tx.t * (string * string) ->
  from:[ `Funding | `Update of int ] -> outpoint:Tx.outpoint -> Tx.t
(** Bind a floating update to the funding output or to an earlier
    update output (whose state index rebuilds the hidden script). *)

val complete_settlement :
  t -> Tx.t * (string * string) -> i:int -> outpoint:Tx.outpoint -> Tx.t

val funding_outpoint : t -> Tx.outpoint
val latest_update_completed :
  t -> from:[ `Funding | `Update of int ] -> outpoint:Tx.outpoint -> Tx.t
val latest_settlement_completed : t -> outpoint:Tx.outpoint -> Tx.t

val storage_bytes : t -> int
(** Constant: keys + seed + the latest update/settlement pair. *)

val ops : t -> int * int * int
(** Cumulative (signs, verifies, exponentiations), both parties. *)

(** First-class {!Scheme_intf.SCHEME} instance driving this module
    through the generic lifecycle engine. *)
module Scheme : Scheme_intf.SCHEME
