(** Daric as a {!Scheme_intf.SCHEME} instance, driving the real
    two-party protocol of lib/core through the generic lifecycle
    engine. *)

module Scheme : Scheme_intf.SCHEME
