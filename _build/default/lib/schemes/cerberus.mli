(** Executable Cerberus channel [Avarikioti et al., FC 2020]
    (simplified): Lightning-penalty style with a collateral-backed
    watchtower; both commit outputs are revocable by a 2-of-2 between
    the victim's per-state key and the tower's. Storage O(n);
    3 signs / 6 verifies / 0 exps per update (Table 3). *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger
module Keys = Daric_core.Keys
module Schnorr = Daric_crypto.Schnorr

type side = {
  main : Keys.keypair;
  delayed : Keys.keypair;
  mutable rev_current : Keys.keypair;
  mutable received_rev : (int * Schnorr.secret_key) list;
}

type t = {
  ledger : Ledger.t;
  rng : Daric_util.Rng.t;
  cash : int;
  rel_lock : int;
  fund : Tx.t;
  wt : Keys.keypair;
  mutable wt_rev : (int * Keys.keypair) list;
  a : side;
  b : side;
  mutable sn : int;
  mutable commit_a : Tx.t;
  mutable commit_b : Tx.t;
  mutable ops_signs : int;
  mutable ops_verifies : int;
  mutable ops_exps : int;
}

val output_script :
  t -> rev_pk1:Schnorr.public_key -> rev_pk2:Schnorr.public_key ->
  delayed_pk:Schnorr.public_key -> Script.t
(** The 115-byte commit output script of Appendix H.6. *)

val create :
  ?rel_lock:int -> ledger:Ledger.t -> rng:Daric_util.Rng.t -> bal_a:int ->
  bal_b:int -> unit -> t

val update : t -> bal_a:int -> bal_b:int -> Tx.t * Tx.t

val punish : t -> victim:[ `A | `B ] -> published:Tx.t -> Tx.t option
(** Claim both outputs of a revoked commit in one transaction. *)

val commit_of : t -> [ `A | `B ] -> Tx.t
val funding_outpoint : t -> Tx.outpoint
val storage_bytes : t -> who:[ `A | `B ] -> int
val watchtower_bytes : t -> int
val ops : t -> int * int * int

(** First-class {!Scheme_intf.SCHEME} instance driving this module
    through the generic lifecycle engine. *)
module Scheme : Scheme_intf.SCHEME
