(** Closed-form on-chain cost and operation-count models for the eight
    payment channels of Table 3, transcribed from Appendix H, as
    functions of the number m of HTLC outputs. *)

type closure_cost = { n_tx : float; witness : float; non_witness : float }

val weight : closure_cost -> float
(** 4 x non-witness + witness, in weight units. *)

type ops = { sign : float; verify : float; exp : float }

type scheme = {
  name : string;
  supports_htlc : bool;
  dishonest : m:int -> closure_cost;
  non_collaborative : m:int -> closure_cost;
  ops_per_update : m:int -> ops;
  party_storage : string;
  watchtower_storage : string;
  lifetime : string;
  incentive_compatible : bool;
  txs_per_k_apps : string;
  avoids_adaptor_sigs : bool;
  bounded_closure : bool;
}

val lightning : scheme
val generalized : scheme
val fppw : scheme
val cerberus : scheme
val outpost : scheme
val sleepy : scheme
val eltoo : scheme
val daric : scheme

val all : scheme list
(** Table 3 row order. *)

val paper_quoted : string -> (string * string) option
(** The paper's quoted weight-unit strings (dishonest,
    non-collaborative) for side-by-side display. *)
