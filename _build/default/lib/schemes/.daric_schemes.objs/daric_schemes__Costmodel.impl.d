lib/schemes/costmodel.ml:
