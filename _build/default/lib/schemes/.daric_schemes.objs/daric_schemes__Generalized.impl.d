lib/schemes/generalized.ml: Bytes Daric_chain Daric_core Daric_crypto Daric_script Daric_tx Daric_util List Result Scheme_intf
