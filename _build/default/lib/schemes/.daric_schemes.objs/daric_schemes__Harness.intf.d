lib/schemes/harness.mli: Scheme_intf
