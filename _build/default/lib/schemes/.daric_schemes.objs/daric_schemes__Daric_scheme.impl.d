lib/schemes/daric_scheme.ml: Daric_chain Daric_core Daric_crypto Daric_tx Scheme_intf
