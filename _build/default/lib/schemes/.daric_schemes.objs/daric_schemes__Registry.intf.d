lib/schemes/registry.mli: Costmodel Scheme_intf
