lib/schemes/costmodel.mli:
