lib/schemes/eltoo.mli: Daric_chain Daric_core Daric_script Daric_tx Daric_util Scheme_intf
