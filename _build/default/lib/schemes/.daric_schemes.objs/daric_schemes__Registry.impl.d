lib/schemes/registry.ml: Cerberus Costmodel Daric_scheme Eltoo Fppw Generalized Lightning List Outpost Scheme_intf Sleepy
