lib/schemes/outpost.mli: Daric_chain Daric_core Daric_crypto Daric_script Daric_tx Daric_util Scheme_intf
