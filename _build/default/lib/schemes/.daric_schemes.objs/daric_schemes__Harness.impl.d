lib/schemes/harness.ml: Result Scheme_intf
