lib/schemes/daric_scheme.mli: Scheme_intf
