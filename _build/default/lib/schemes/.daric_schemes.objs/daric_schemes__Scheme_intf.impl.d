lib/schemes/scheme_intf.ml: Daric_chain Daric_core Daric_crypto Daric_script Daric_tx Daric_util Printf
