(** Authenticated synchronous message network (Appendix C): a message
    sent in round τ reaches its recipient at round τ+1; the adversary
    observes and may reorder within a round but cannot drop, delay or
    forge. *)

type 'msg envelope = { sender : string; recipient : string; payload : 'msg }

type 'msg t

val create : unit -> 'msg t

val send :
  'msg t -> round:int -> sender:string -> recipient:string -> 'msg -> unit

val deliver : 'msg t -> round:int -> recipient:string -> 'msg envelope list
(** Remove and return the messages due for a recipient, in sending
    order. *)

val log : 'msg t -> (int * 'msg envelope) list
(** Full traffic log, newest first (adversary observation, accounting). *)
