lib/chain/network.ml: List String
