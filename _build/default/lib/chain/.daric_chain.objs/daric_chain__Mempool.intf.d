lib/chain/mempool.mli: Daric_tx Ledger
