lib/chain/ledger.ml: Daric_crypto Daric_script Daric_tx Fmt Hashtbl List Map String
