lib/chain/ledger.ml: Daric_script Daric_tx Fmt Hashtbl List Map String
