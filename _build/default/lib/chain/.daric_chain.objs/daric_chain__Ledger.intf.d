lib/chain/ledger.mli: Daric_tx
