lib/chain/mempool.ml: Daric_tx Float Fmt Ledger List
