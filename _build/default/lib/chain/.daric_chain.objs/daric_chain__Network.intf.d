lib/chain/network.mli:
