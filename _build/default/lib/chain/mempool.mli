(** Economic ledger mode: a fee-market mempool in front of the ledger,
    with the minimum relay fee, the 100k-vbyte standardness cap,
    BIP-125 replace-by-fee, and capacity-limited block production —
    the machinery the Section 6.1 attack depends on. *)

module Tx = Daric_tx.Tx

type config = {
  min_relay_feerate : int;  (** satoshi per vbyte *)
  max_tx_vbytes : int;
  block_vbytes : int;
  rounds_per_block : int;
}

val default_config : config
(** 1 sat/vB, 100,000 vB tx cap, 1,000,000 vB blocks, 1 round/block. *)

type submit_error =
  | Too_large
  | Feerate_below_minimum
  | Unknown_input of Tx.outpoint
  | Negative_fee
  | Rbf_insufficient_fee
      (** conflicts with pooled transactions it cannot displace *)
  | Invalid of Ledger.reject_reason

val submit_error_to_string : submit_error -> string

type t

val create : ?config:config -> ledger:Ledger.t -> unit -> t
val ledger : t -> Ledger.t

val fee_of : t -> Tx.t -> (int, submit_error) result
(** Fee given the confirmed UTXO view (all inputs must be confirmed). *)

val submit : t -> Tx.t -> (unit, submit_error) result
(** Standardness checks, then BIP-125: a replacement must pay more
    than everything it conflicts with plus relay fee for its own size,
    at a fee rate at least as high. *)

val tick : t -> Tx.t list
(** Advance one round; on block rounds confirm the highest-fee-rate
    transactions that still validate, up to the block capacity. *)

val pool_size : t -> int
val total_fees_collected : t -> int
