(** The global ledger functionality L(Δ, Σ) of Appendix C.

    The ledger runs on synchronous rounds. A posted transaction is
    recorded after an adversary-chosen delay of at most [delta] rounds,
    provided it passes the five validity checks of the functionality:
    txid uniqueness; input existence and witness validity (including
    relative timelocks measured from the recording round of each spent
    output); output validity; value conservation; and absolute-timelock
    validity (nLockTime in the past).

    Absolute locktimes below 500,000,000 refer to the ledger height (one
    unit per round); larger values refer to the ledger timestamp, which
    advances by [seconds_per_round] per round from [genesis_time]
    (Section 4.1's block-height vs UNIX-timestamp distinction). *)

module Tx = Daric_tx.Tx
module Spend = Daric_tx.Spend

module Outpoint_map = Map.Make (struct
  type t = Tx.outpoint

  let compare (a : t) (b : t) =
    match String.compare a.txid b.txid with 0 -> compare a.vout b.vout | c -> c
end)

type utxo = { recorded : int; output : Tx.output }

type reject_reason =
  | Duplicate_txid
  | Missing_input of Tx.outpoint
  | Invalid_witness of int * Spend.error
  | Bad_output
  | Value_overspent
  | Locktime_in_future

let reject_to_string = function
  | Duplicate_txid -> "duplicate txid"
  | Missing_input o -> Fmt.str "missing input %a" Tx.pp_outpoint o
  | Invalid_witness (i, e) ->
      Fmt.str "invalid witness for input %d: %s" i (Spend.error_to_string e)
  | Bad_output -> "invalid output"
  | Value_overspent -> "outputs exceed inputs"
  | Locktime_in_future -> "nLockTime not yet expired"

type event =
  | Accepted of Tx.t
  | Rejected of Tx.t * reject_reason

type t = {
  delta : int;
  genesis_time : int;
  seconds_per_round : int;
  mutable round : int;
  mutable utxos : utxo Outpoint_map.t;
  mutable txids : (string, unit) Hashtbl.t;
  mutable accepted : (int * Tx.t) list;  (** newest first *)
  mutable spenders : (string * int * Tx.t) list;  (** (txid, vout, spender) *)
  mutable pending : (int * Tx.t) list;  (** (due round, tx) *)
  mutable events : event list;  (** events of the current round, newest first *)
  mutable mints : int;  (** counter making minted coinbase txids unique *)
}

(* The default genesis timestamp leaves ample room above the 500e6
   locktime threshold: channels initialised at S0 = 500e6 can perform
   ~10^8 updates before outrunning the clock. *)
let default_genesis_time = 600_000_000

let create ?(genesis_time = default_genesis_time) ?(seconds_per_round = 1)
    ~(delta : int) () : t =
  if delta < 0 then invalid_arg "Ledger.create: negative delta";
  { delta;
    genesis_time;
    seconds_per_round;
    round = 0;
    utxos = Outpoint_map.empty;
    txids = Hashtbl.create 64;
    accepted = [];
    spenders = [];
    pending = [];
    events = [];
    mints = 0 }

let height (t : t) : int = t.round
let time (t : t) : int = t.genesis_time + (t.round * t.seconds_per_round)
let delta (t : t) : int = t.delta

let locktime_expired (t : t) (locktime : int) : bool =
  if locktime < Daric_script.Interp.locktime_threshold then locktime <= height t
  else locktime <= time t

let find_utxo (t : t) (o : Tx.outpoint) : utxo option = Outpoint_map.find_opt o t.utxos

let is_unspent (t : t) (o : Tx.outpoint) : bool = Outpoint_map.mem o t.utxos

(** Fold over the current UTXO set. *)
let fold_utxos (t : t) (f : Tx.outpoint -> utxo -> 'a -> 'a) (init : 'a) : 'a =
  Outpoint_map.fold f t.utxos init

(** Total value held in the UTXO set (for conservation checks). *)
let total_value (t : t) : int =
  fold_utxos t (fun _ u acc -> acc + u.output.value) 0

(** Who spent this outpoint, if anyone (it must have existed). *)
let spender_of (t : t) (o : Tx.outpoint) : Tx.t option =
  List.find_map
    (fun (txid, vout, tx) ->
      if String.equal txid o.txid && vout = o.vout then Some tx else None)
    t.spenders

(** All accepted transactions with their recording round, oldest first. *)
let accepted (t : t) : (int * Tx.t) list = List.rev t.accepted

(* Shared shape of validation; [verify_witness] is either the inline
   verifier or the deferring one. *)
let validate_gen (t : t) (tx : Tx.t)
    ~(verify_witness :
       Tx.t -> input_index:int -> spent:Tx.output -> input_age:int ->
       (unit, Spend.error) result) : (unit, reject_reason) result =
  let txid = Tx.txid tx in
  if Hashtbl.mem t.txids txid then Error Duplicate_txid
  else if not (locktime_expired t tx.locktime) then Error Locktime_in_future
  else if
    List.exists (fun (o : Tx.output) -> o.value <= 0) tx.outputs
    || tx.outputs = []
  then Error Bad_output
  else
    (* inputs exist and witnesses verify *)
    let rec check_inputs i (inputs : Tx.input list) total_in =
      match inputs with
      | [] ->
          if Tx.total_output_value tx > total_in then Error Value_overspent
          else Ok ()
      | input :: rest -> (
          match find_utxo t input.prevout with
          | None -> Error (Missing_input input.prevout)
          | Some utxo -> (
              let input_age = t.round - utxo.recorded in
              match
                verify_witness tx ~input_index:i ~spent:utxo.output ~input_age
              with
              | Error e -> Error (Invalid_witness (i, e))
              | Ok () -> check_inputs (i + 1) rest (total_in + utxo.output.value)))
    in
    check_inputs 0 tx.inputs 0

let validate (t : t) (tx : Tx.t) : (unit, reject_reason) result =
  validate_gen t tx ~verify_witness:Spend.verify_input

(** Batched witness validation: every signature check across all of
    [tx]'s inputs is deferred, then discharged in a single
    {!Daric_crypto.Schnorr.batch_verify} multi-exponentiation. Any
    rejection — a script error in the deferred pass or a rejecting
    batch — falls back to the inline {!validate}, whose per-input
    verification is authoritative and isolates the invalid witness
    (its index lands in [Invalid_witness]). Accepts exactly the same
    transactions as {!validate}: assuming a deferred check true can
    only make the deferred pass accept more often, and the batch then
    rejects unless every assumed check really holds. *)
let validate_batched (t : t) (tx : Tx.t) : (unit, reject_reason) result =
  let deferred = ref [] in
  let result =
    validate_gen t tx
      ~verify_witness:(fun tx ~input_index ~spent ~input_age ->
        Spend.verify_input_deferred tx ~input_index ~spent ~input_age
          ~defer:(fun d -> deferred := d :: !deferred))
  in
  match result with
  | Error _ -> validate t tx
  | Ok () -> (
      match !deferred with
      | [] -> Ok ()
      | ds ->
          let items =
            List.rev_map
              (fun d -> Daric_tx.Sighash.(d.d_pk, d.d_msg, d.d_sig))
              ds
          in
          if Daric_crypto.Schnorr.batch_verify items then Ok ()
          else validate t tx)

let record (t : t) (tx : Tx.t) =
  let txid = Tx.txid tx in
  Hashtbl.replace t.txids txid ();
  t.accepted <- (t.round, tx) :: t.accepted;
  List.iter
    (fun (input : Tx.input) ->
      t.utxos <- Outpoint_map.remove input.prevout t.utxos;
      t.spenders <- (input.prevout.txid, input.prevout.vout, tx) :: t.spenders)
    tx.inputs;
  List.iteri
    (fun vout output ->
      t.utxos <-
        Outpoint_map.add { Tx.txid; vout } { recorded = t.round; output } t.utxos)
    tx.outputs;
  t.events <- Accepted tx :: t.events

(** [post t tx ~delay] submits [tx]; the adversary-chosen [delay] is
    clamped to [0, delta]. The transaction is (re)validated when due. *)
let post (t : t) (tx : Tx.t) ~(delay : int) =
  let delay = max 0 (min t.delta delay) in
  t.pending <- t.pending @ [ (t.round + delay, tx) ]

(** [mint t ~value ~spk] conjures a fresh funding UTXO (environment
    setup — stands in for pre-existing on-chain coins). *)
let mint (t : t) ~(value : int) ~(spk : Tx.spk) : Tx.outpoint =
  t.mints <- t.mints + 1;
  (* A unique synthetic input keeps the txids of otherwise-identical
     minted outputs distinct; [record] bypasses input validation. *)
  let coinbase =
    { Tx.prevout = { Tx.txid = Fmt.str "coinbase#%d" t.mints; vout = 0 };
      sequence = Tx.default_sequence }
  in
  let tx =
    { Tx.inputs = [ coinbase ];
      locktime = 0;
      outputs = [ { Tx.value; spk } ];
      witnesses = [] }
  in
  record t tx;
  { Tx.txid = Tx.txid tx; vout = 0 }

(** Advance one round: deliver due pending transactions (in posting
    order) and return this round's events. *)
let tick (t : t) : event list =
  t.round <- t.round + 1;
  t.events <- [];
  let due, later = List.partition (fun (r, _) -> r <= t.round) t.pending in
  t.pending <- later;
  List.iter
    (fun (_, tx) ->
      match validate_batched t tx with
      | Ok () -> record t tx
      | Error reason -> t.events <- Rejected (tx, reason) :: t.events)
    due;
  List.rev t.events
