(** Authenticated synchronous message network (the functionality
    F_GDC of Appendix C): a message sent in round τ is delivered to its
    recipient at the beginning of round τ+1; the adversary observes
    messages and may reorder within a round but cannot drop, delay or
    forge them. Corrupted parties simply stop sending. *)

type 'msg envelope = { sender : string; recipient : string; payload : 'msg }

type 'msg t = {
  mutable in_flight : (int * 'msg envelope) list;  (** (delivery round, env) *)
  mutable log : (int * 'msg envelope) list;  (** all messages ever sent *)
}

let create () : 'msg t = { in_flight = []; log = [] }

(** [send t ~round ~sender ~recipient payload] queues a message sent in
    [round] for delivery in round [round+1]. *)
let send (t : 'msg t) ~(round : int) ~(sender : string) ~(recipient : string)
    (payload : 'msg) : unit =
  let env = { sender; recipient; payload } in
  t.in_flight <- t.in_flight @ [ (round + 1, env) ];
  t.log <- (round, env) :: t.log

(** [deliver t ~round ~recipient] removes and returns the messages due
    for [recipient] at [round], in sending order. *)
let deliver (t : 'msg t) ~(round : int) ~(recipient : string) :
    'msg envelope list =
  let mine, rest =
    List.partition
      (fun (r, env) -> r <= round && String.equal env.recipient recipient)
      t.in_flight
  in
  t.in_flight <- rest;
  List.map snd mine

(** Full traffic log (newest first), for adversary observation and
    tests. *)
let log (t : 'msg t) : (int * 'msg envelope) list = t.log
