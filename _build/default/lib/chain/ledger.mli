(** The global ledger functionality L(Δ, Σ) of the paper's Appendix C.

    The ledger runs on synchronous rounds. A posted transaction is
    recorded after an adversary-chosen delay of at most [delta] rounds,
    provided it passes the functionality's five validity checks: txid
    uniqueness; input existence and witness validity (with relative
    timelocks measured from each spent output's recording round);
    output validity; value conservation; absolute-timelock expiry.

    Absolute locktimes below 500,000,000 refer to the ledger height
    (one unit per round); larger values to the timestamp, which
    advances by [seconds_per_round] per round from [genesis_time]. *)

module Tx = Daric_tx.Tx

type utxo = { recorded : int; output : Tx.output }

type reject_reason =
  | Duplicate_txid
  | Missing_input of Tx.outpoint
  | Invalid_witness of int * Daric_tx.Spend.error
  | Bad_output
  | Value_overspent
  | Locktime_in_future

val reject_to_string : reject_reason -> string

type event = Accepted of Tx.t | Rejected of Tx.t * reject_reason

type t

val default_genesis_time : int
(** 600,000,000 — leaves ~10^8 state numbers of headroom above the
    500e6 timestamp threshold used by Daric channels (S0). *)

val create : ?genesis_time:int -> ?seconds_per_round:int -> delta:int -> unit -> t

val height : t -> int
(** Current round (= block height). *)

val time : t -> int
(** Current ledger timestamp. *)

val delta : t -> int
(** The publication-delay bound Δ. *)

val locktime_expired : t -> int -> bool

val find_utxo : t -> Tx.outpoint -> utxo option
val is_unspent : t -> Tx.outpoint -> bool

val fold_utxos : t -> (Tx.outpoint -> utxo -> 'a -> 'a) -> 'a -> 'a
val total_value : t -> int

val spender_of : t -> Tx.outpoint -> Tx.t option
(** Which accepted transaction spent this outpoint, if any. *)

val accepted : t -> (int * Tx.t) list
(** All accepted transactions with recording rounds, oldest first. *)

val validate : t -> Tx.t -> (unit, reject_reason) result
(** The five validity checks against the current state, witnesses
    verified inline per input. *)

val validate_batched : t -> Tx.t -> (unit, reject_reason) result
(** Same acceptance set as {!validate}, but all signature checks are
    deferred and discharged in one
    {!Daric_crypto.Schnorr.batch_verify}; on any rejection it falls
    back to {!validate}, which isolates the invalid witness index.
    {!tick} validates through this path. *)

val record : t -> Tx.t -> unit
(** Record a transaction unconditionally (block production and
    environment setup; normal flow goes through {!post}). *)

val post : t -> Tx.t -> delay:int -> unit
(** Submit a transaction; [delay] (clamped to [\[0, delta\]]) models
    the adversary's scheduling. Validation happens when due. *)

val mint : t -> value:int -> spk:Tx.spk -> Tx.outpoint
(** Conjure a fresh funding UTXO (environment setup). *)

val tick : t -> event list
(** Advance one round: deliver due postings, return the round's
    events. *)
