(** Payment-channel network routing: maintain a graph of open Daric
    channels, find fewest-hop routes with sufficient directional
    liquidity, and execute payments with retry along alternatives. *)

module Party = Daric_core.Party
module Driver = Daric_core.Driver

type channel_edge = {
  channel_id : string;
  a : Party.t;  (** the Alice-role side *)
  b : Party.t;
}

type t

val create : Driver.t -> t
val add_channel : t -> channel_id:string -> a:Party.t -> b:Party.t -> unit

val balance_of : channel_edge -> string -> int
(** A party's spendable balance inside an edge (its side of the
    current channel state). *)

val find_route :
  t -> src:Party.t -> dst:Party.t -> amount:int -> ?excluding:string list ->
  unit -> Multihop.hop list option
(** Fewest-hop route whose every hop has [amount] of liquidity in the
    payment direction; [None] if the network cannot carry it. *)

type payment_result = {
  delivered : bool;
  route_length : int;
  attempts : int;
}

val pay :
  t -> src:Party.t -> dst:Party.t -> amount:int -> preimage:string ->
  ?timeout:int -> ?max_attempts:int -> unit -> payment_result

val stats : t -> int * int
(** (payments attempted, payments succeeded). *)

val node_liquidity : t -> string -> int
