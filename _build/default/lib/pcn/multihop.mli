(** Multi-hop HTLC payments over a path of Daric channels: lock an
    HTLC output into each channel's split transaction hop by hop
    towards the receiver, then settle back once the preimage is
    revealed. No state duplication means each HTLC appears exactly
    once per channel. *)

module Tx = Daric_tx.Tx
module Party = Daric_core.Party
module Driver = Daric_core.Driver

type hop = { channel_id : string; payer : Party.t; payee : Party.t }

type outcome = { delivered : bool; hops_locked : int; hops_settled : int }

val locked_state :
  hop -> amount:int -> digest:string -> timeout:int -> Tx.output list
(** The hop's channel state carrying both balances plus the HTLC. *)

val settled_state : hop -> amount:int -> Tx.output list

val pay :
  Driver.t -> route:hop list -> amount:int -> preimage:string -> timeout:int ->
  outcome
(** Run the two-phase payment along [route] (sender side first); each
    lock/settle is a full Daric channel update. *)
