(** Payment-channel network routing.

    The paper's introduction motivates channels as the building block
    of a payment-channel network where "each payment can be routed via
    intermediaries". This module maintains a network of open Daric
    channels, finds routes with sufficient directional liquidity
    (breadth-first, fewest hops), and executes payments through
    {!Multihop.pay} — retrying along alternative routes when a hop's
    liquidity has shifted. *)

module Tx = Daric_tx.Tx
module Party = Daric_core.Party
module Driver = Daric_core.Driver

type channel_edge = {
  channel_id : string;
  a : Party.t;  (** the Alice-role side *)
  b : Party.t;
}

type t = {
  driver : Driver.t;
  mutable edges : channel_edge list;
  mutable payments_attempted : int;
  mutable payments_succeeded : int;
}

let create (driver : Driver.t) : t =
  { driver; edges = []; payments_attempted = 0; payments_succeeded = 0 }

let add_channel (t : t) ~(channel_id : string) ~(a : Party.t) ~(b : Party.t) :
    unit =
  t.edges <- { channel_id; a; b } :: t.edges

(** Spendable balance of [pid] inside an edge, read from the channel's
    current state (first output = Alice side, second = Bob side). *)
let balance_of (e : channel_edge) (pid : string) : int =
  match Party.find_chan e.a e.channel_id with
  | Some c -> (
      match c.Party.st with
      | { Tx.value = va; _ } :: { Tx.value = vb; _ } :: _ ->
          if String.equal pid e.a.Party.pid then va
          else if String.equal pid e.b.Party.pid then vb
          else 0
      | _ -> 0)
  | None -> 0

let usable (t : t) (e : channel_edge) : bool =
  Driver.channel_operational e.a ~id:e.channel_id
  && Driver.channel_operational e.b ~id:e.channel_id
  && (not (Driver.is_corrupted t.driver e.a.Party.pid))
  && not (Driver.is_corrupted t.driver e.b.Party.pid)

(** Parties adjacent to [pid] through edges with at least [amount] of
    liquidity in the [pid] -> neighbour direction. *)
let neighbours (t : t) (pid : string) ~(amount : int) :
    (channel_edge * Party.t) list =
  List.filter_map
    (fun e ->
      if not (usable t e) then None
      else if String.equal e.a.Party.pid pid && balance_of e pid >= amount then
        Some (e, e.b)
      else if String.equal e.b.Party.pid pid && balance_of e pid >= amount then
        Some (e, e.a)
      else None)
    t.edges

(** Fewest-hop route with sufficient directional liquidity, avoiding
    the channels in [excluding]. *)
let find_route (t : t) ~(src : Party.t) ~(dst : Party.t) ~(amount : int)
    ?(excluding = []) () : Multihop.hop list option =
  let visited = Hashtbl.create 16 in
  Hashtbl.replace visited src.Party.pid ();
  let q = Queue.create () in
  Queue.push (src, []) q;
  let result = ref None in
  while !result = None && not (Queue.is_empty q) do
    let node, path_rev = Queue.pop q in
    List.iter
      (fun ((e : channel_edge), next) ->
        if
          (not (Hashtbl.mem visited next.Party.pid))
          && not (List.mem e.channel_id excluding)
        then begin
          Hashtbl.replace visited next.Party.pid ();
          let hop =
            { Multihop.channel_id = e.channel_id; payer = node; payee = next }
          in
          let path_rev = hop :: path_rev in
          if String.equal next.Party.pid dst.Party.pid then
            (if !result = None then result := Some (List.rev path_rev))
          else Queue.push (next, path_rev) q
        end)
      (neighbours t node.Party.pid ~amount)
  done;
  !result

type payment_result = {
  delivered : bool;
  route_length : int;
  attempts : int;
}

(** Route and execute a payment, retrying along alternative routes
    (excluding the failing channel) up to [max_attempts] times. *)
let pay (t : t) ~(src : Party.t) ~(dst : Party.t) ~(amount : int)
    ~(preimage : string) ?(timeout = 30) ?(max_attempts = 3) () :
    payment_result =
  t.payments_attempted <- t.payments_attempted + 1;
  let rec attempt n excluding =
    if n > max_attempts then { delivered = false; route_length = 0; attempts = n - 1 }
    else
      match find_route t ~src ~dst ~amount ~excluding () with
      | None -> { delivered = false; route_length = 0; attempts = n - 1 }
      | Some route ->
          let o = Multihop.pay t.driver ~route ~amount ~preimage ~timeout in
          if o.Multihop.delivered then begin
            t.payments_succeeded <- t.payments_succeeded + 1;
            { delivered = true; route_length = List.length route; attempts = n }
          end
          else
            (* exclude the channel where locking stalled and retry *)
            let failed_at = List.nth route o.Multihop.hops_locked in
            attempt (n + 1) (failed_at.Multihop.channel_id :: excluding)
  in
  attempt 1 []

let stats (t : t) : int * int = (t.payments_attempted, t.payments_succeeded)

(** Total liquidity a node can spend across all its channels. *)
let node_liquidity (t : t) (pid : string) : int =
  List.fold_left
    (fun acc e -> if usable t e then acc + balance_of e pid else acc)
    0 t.edges
