lib/pcn/attack.mli: Daric_tx
