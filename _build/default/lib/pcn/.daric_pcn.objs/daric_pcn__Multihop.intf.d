lib/pcn/multihop.mli: Daric_core Daric_tx
