lib/pcn/router.mli: Daric_core Multihop
