lib/pcn/attack.ml: Array Daric_chain Daric_core Daric_crypto Daric_schemes Daric_tx Daric_util Fmt List Option
