lib/pcn/htlc.mli: Daric_crypto Daric_script Daric_tx
