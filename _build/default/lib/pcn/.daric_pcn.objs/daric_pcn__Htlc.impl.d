lib/pcn/htlc.ml: Daric_core Daric_crypto Daric_script Daric_tx
