lib/pcn/multihop.ml: Daric_core Daric_crypto Daric_tx Htlc List
