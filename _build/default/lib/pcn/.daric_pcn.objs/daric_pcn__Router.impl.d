lib/pcn/router.ml: Daric_core Daric_tx Hashtbl List Multihop Queue String
