(** The HTLC-security (channel-closure delay) attack of Section 6.1:
    an adversary pins her victims' eltoo channels with one delay
    transaction per block — outdated states spending every channel's
    on-chain head, fee above the HTLC value so BIP-125 makes eviction
    irrational — until the HTLC timelocks expire. Against Daric the
    first replayed state forfeits the whole balance. *)

module Tx = Daric_tx.Tx

type config = {
  n_channels : int;
  htlc_value : int;  (** A, in satoshi *)
  channel_capacity : int;
  timelock_blocks : int;  (** HTLC expiry in blocks (paper scale: 144) *)
  victim_fee : int;
  race_win_prob : float;  (** adversary's post-expiry race odds *)
  seed : int;
}

val default_config : config

(** The paper's closed-form attack arithmetic. *)
module Analytic : sig
  val pair_vbytes : float
  (** vbytes per channel input-output pair in a delay transaction. *)

  val max_channels_per_delay_tx : ?max_vbytes:float -> unit -> int
  (** ~715 under the 100,000-vbyte cap. *)

  val delay_txs_before_expiry :
    ?timelock_hours:float -> ?inclusion_minutes:float -> unit -> int
  (** 144 at a 3-day timelock and one min-fee confirmation / 30 min. *)

  val cost_over_a : unit -> int
  val max_revenue_over_a : unit -> int
  val profitable : unit -> bool
end

type eltoo_result = {
  blocks : int;
  delay_txs_confirmed : int;
  adversary_fees_paid : int;
  victim_overrides_rejected : int;
  victims_escaped_in_time : int;
  htlcs_claimed_by_adversary : int;
  adversary_net : int;
}

val run_eltoo : config -> eltoo_result
(** Simulate the attack on the economic ledger (fee market, BIP-125,
    block capacity); one mempool tick = one block. *)

type daric_result = {
  old_commits_posted : int;
  punished_within_window : int;
  adversary_capacity_lost : int;
  htlcs_claimed : int;  (** always 0 *)
}

val run_daric : config -> daric_result
(** The same adversary against Daric channels: every replay is
    punished, nothing is pinnable. *)
