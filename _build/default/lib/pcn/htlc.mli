(** Hash time-locked contract outputs for Daric split transactions
    (Section 8, multi-hop payments). The 101-byte script of Appendix
    H.2: the payee claims with the preimage, the payer reclaims after
    the relative timeout. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Schnorr = Daric_crypto.Schnorr

type terms = {
  amount : int;
  digest : string;  (** hash160 of the payment preimage *)
  payee_pk : Schnorr.public_key;
  payer_pk : Schnorr.public_key;
  timeout : int;  (** relative rounds until the payer can reclaim *)
}

val of_preimage :
  preimage:string -> amount:int -> payee_pk:Schnorr.public_key ->
  payer_pk:Schnorr.public_key -> timeout:int -> terms

val script : terms -> Script.t
val output : terms -> Tx.output

val redeem :
  terms -> payee_sk:Schnorr.secret_key -> preimage:string ->
  htlc_outpoint:Tx.outpoint -> Tx.t
(** The payee's claim (the Redeem' transaction: 212 witness bytes). *)

val claimback :
  terms -> payer_sk:Schnorr.secret_key -> htlc_outpoint:Tx.outpoint -> Tx.t
(** The payer's post-timeout reclaim (Claimback': 180 witness bytes). *)
