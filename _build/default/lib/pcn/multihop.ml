(** Multi-hop HTLC payments over a path of Daric channels.

    Daric extends to multi-hop payments by adding HTLC outputs to the
    split transaction of each channel along the route (Section 8);
    because there is no state duplication, the HTLC appears once per
    channel. The flow is the standard two-phase commit: lock an HTLC
    hop by hop towards the receiver, then settle hop by hop back once
    the preimage is revealed. *)

module Tx = Daric_tx.Tx
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Txs = Daric_core.Txs

(** One hop: an open channel and which side pays forward. *)
type hop = {
  channel_id : string;
  payer : Party.t;  (** upstream party of this channel *)
  payee : Party.t;
}

type outcome = {
  delivered : bool;
  hops_locked : int;
  hops_settled : int;
}

let balances (c : Party.chan) : int * int =
  match c.Party.st with
  | { Tx.value = a; _ } :: { Tx.value = b; _ } :: _ -> (a, b)
  | _ -> (0, 0)

let payer_is_alice (h : hop) : bool =
  (Party.chan_exn h.payer h.channel_id).Party.cfg.role = Daric_core.Keys.Alice

(** Channel state carrying the two balances plus one HTLC output. *)
let locked_state (h : hop) ~(amount : int) ~(digest : string) ~(timeout : int) :
    Tx.output list =
  let c = Party.chan_exn h.payer h.channel_id in
  let pk_a, pk_b = Party.main_pks c in
  let bal_a, bal_b = balances c in
  let payer_a = payer_is_alice h in
  let bal_a = if payer_a then bal_a - amount else bal_a in
  let bal_b = if payer_a then bal_b else bal_b - amount in
  let payer_pk = if payer_a then pk_a else pk_b in
  let payee_pk = if payer_a then pk_b else pk_a in
  Txs.balance_state ~pk_a ~pk_b ~bal_a ~bal_b
  @ [ Htlc.output { Htlc.amount; digest; payee_pk; payer_pk; timeout } ]

(** Settled state: the HTLC amount moved to the payee's balance. *)
let settled_state (h : hop) ~(amount : int) : Tx.output list =
  let c = Party.chan_exn h.payer h.channel_id in
  let pk_a, pk_b = Party.main_pks c in
  let bal_a, bal_b = balances c in
  (* current state includes the HTLC output; balances already exclude
     the amount on the payer side *)
  let payer_a = payer_is_alice h in
  let bal_a = if payer_a then bal_a else bal_a + amount in
  let bal_b = if payer_a then bal_b + amount else bal_b in
  Txs.balance_state ~pk_a ~pk_b ~bal_a ~bal_b

(** Run a payment of [amount] along [route] (sender side first). Each
    lock/settle is a full Daric channel update driven to completion.
    [timeout_per_hop] decreases towards the receiver in a real PCN; we
    keep the caller in charge. *)
let pay (d : Driver.t) ~(route : hop list) ~(amount : int)
    ~(preimage : string) ~(timeout : int) : outcome =
  let digest = Daric_crypto.Hash.hash160 preimage in
  (* Phase 1: lock HTLCs sender -> receiver. *)
  let rec lock acc = function
    | [] -> Ok acc
    | h :: rest ->
        let theta = locked_state h ~amount ~digest ~timeout in
        if
          Driver.update_channel d ~id:h.channel_id ~initiator:h.payer
            ~responder:h.payee ~theta
        then lock (acc + 1) rest
        else Error acc
  in
  match lock 0 route with
  | Error n -> { delivered = false; hops_locked = n; hops_settled = 0 }
  | Ok locked ->
      (* Phase 2: the receiver reveals the preimage; settle receiver ->
         sender. *)
      let rec settle acc = function
        | [] -> Ok acc
        | h :: rest ->
            let theta = settled_state h ~amount in
            if
              Driver.update_channel d ~id:h.channel_id ~initiator:h.payee
                ~responder:h.payer ~theta
            then settle (acc + 1) rest
            else Error acc
      in
      (match settle 0 (List.rev route) with
      | Ok settled ->
          { delivered = true; hops_locked = locked; hops_settled = settled }
      | Error n -> { delivered = true; hops_locked = locked; hops_settled = n })
