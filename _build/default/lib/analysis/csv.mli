(** CSV emission of every experimental data series, for external
    plotting and regeneration of the paper's tables. *)

val write_file :
  dir:string -> name:string -> header:string -> string list -> string
(** Write rows under a header; returns the file path. *)

val storage : Tables.storage_point list -> dir:string -> string
val table3 : ?ms:int list -> dir:string -> unit -> string
val incentives : dir:string -> unit -> string
val attack_frontier : ?race_p:float -> dir:string -> unit -> string

val write_all : ?ns:int list -> dir:string -> unit -> string list
(** All series under [dir]; returns the paths written. *)
