(** Regeneration of the paper's tables.

    - {!table1}: the qualitative scheme comparison, backed by *measured*
      party/watchtower storage growth over n updates for the executable
      schemes (Daric, eltoo, Lightning, Generalized).
    - {!table3}: on-chain closure costs and per-update operation counts
      for all eight schemes, from the Appendix-H closed forms, with the
      paper-quoted weight strings side by side; plus measured operation
      counts from the executable implementations. *)

module Tx = Daric_tx.Tx
module Party = Daric_core.Party
module Driver = Daric_core.Driver
module Storage = Daric_core.Storage
module Watchtower = Daric_core.Watchtower
module Costmodel = Daric_schemes.Costmodel

let fmt_buf (f : Format.formatter -> unit) : string =
  let b = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer b in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Table 1: storage measurements.                                      *)

type storage_point = {
  n_updates : int;
  daric_party : int;
  daric_watchtower : int;
  eltoo_party : int;
  lightning_party : int;
  lightning_watchtower : int;
  generalized_party : int;
  fppw_party : int;
  fppw_watchtower : int;
  cerberus_party : int;
  sleepy_party : int;
  outpost_party : int;
  outpost_watchtower : int;
}

(** Drive a real Daric channel through [n] updates and report party and
    watchtower storage in bytes. *)
let daric_storage ~(n : int) : int * int =
  let d = Driver.create ~delta:1 ~seed:42 () in
  let alice = Party.create ~pid:"alice" ~seed:1 () in
  let bob = Party.create ~pid:"bob" ~seed:2 () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  Driver.open_channel d ~id:"c" ~alice ~bob ~bal_a:500_000 ~bal_b:500_000 ();
  if not (Driver.run_until_operational d ~id:"c" ~alice ~bob) then
    failwith "daric_storage: channel failed to open";
  let c = Party.chan_exn alice "c" in
  let pk_a, pk_b = Party.main_pks c in
  for k = 1 to n do
    let theta =
      Daric_core.Txs.balance_state ~pk_a ~pk_b
        ~bal_a:(500_000 - (k mod 1000))
        ~bal_b:(500_000 + (k mod 1000))
    in
    if not (Driver.update_channel d ~id:"c" ~initiator:alice ~responder:bob ~theta)
    then failwith "daric_storage: update failed"
  done;
  let wt_bytes =
    match Watchtower.record_for alice ~id:"c" with
    | Some r -> Watchtower.record_bytes r
    | None -> 0
  in
  (Storage.party_bytes alice ~id:"c", wt_bytes)

let storage_point ~(n : int) : storage_point =
  let rng = Daric_util.Rng.create ~seed:7 in
  let ledger = Daric_chain.Ledger.create ~delta:1 () in
  let el = Daric_schemes.Eltoo.create ~ledger ~rng ~bal_a:500_000 ~bal_b:500_000 () in
  for _ = 1 to n do
    ignore (Daric_schemes.Eltoo.update el ~bal_a:500_000 ~bal_b:500_000)
  done;
  let ln =
    Daric_schemes.Lightning.create ~ledger ~rng ~bal_a:500_000 ~bal_b:500_000 ()
  in
  for _ = 1 to n do
    ignore (Daric_schemes.Lightning.update ln ~bal_a:500_000 ~bal_b:500_000)
  done;
  let gc =
    Daric_schemes.Generalized.create ~ledger ~rng ~bal_a:500_000 ~bal_b:500_000 ()
  in
  for _ = 1 to n do
    ignore (Daric_schemes.Generalized.update gc ~bal_a:500_000 ~bal_b:500_000)
  done;
  let fw = Daric_schemes.Fppw.create ~ledger ~rng ~bal_a:500_000 ~bal_b:500_000 () in
  for _ = 1 to n do
    ignore (Daric_schemes.Fppw.update fw ~bal_a:500_000 ~bal_b:500_000)
  done;
  let cb = Daric_schemes.Cerberus.create ~ledger ~rng ~bal_a:500_000 ~bal_b:500_000 () in
  for _ = 1 to n do
    ignore (Daric_schemes.Cerberus.update cb ~bal_a:500_000 ~bal_b:500_000)
  done;
  let sl =
    Daric_schemes.Sleepy.create ~t_end:1_000_000 ~ledger ~rng ~bal_a:500_000
      ~bal_b:500_000 ()
  in
  for _ = 1 to n do
    ignore (Daric_schemes.Sleepy.update sl ~bal_a:500_000 ~bal_b:500_000)
  done;
  let op = Daric_schemes.Outpost.create ~ledger ~rng ~bal_a:500_000 ~bal_b:500_000 () in
  for _ = 1 to n do
    ignore (Daric_schemes.Outpost.update op ~bal_a:500_000 ~bal_b:500_000)
  done;
  let daric_party, daric_watchtower = daric_storage ~n in
  { n_updates = n;
    daric_party;
    daric_watchtower;
    eltoo_party = Daric_schemes.Eltoo.storage_bytes el;
    lightning_party = Daric_schemes.Lightning.storage_bytes ln ~who:`A;
    lightning_watchtower = Daric_schemes.Lightning.watchtower_bytes ln;
    generalized_party = Daric_schemes.Generalized.storage_bytes gc ~who:`A;
    fppw_party = Daric_schemes.Fppw.storage_bytes fw ~who:`A;
    fppw_watchtower = Daric_schemes.Fppw.watchtower_bytes fw;
    cerberus_party = Daric_schemes.Cerberus.storage_bytes cb ~who:`A;
    sleepy_party = Daric_schemes.Sleepy.storage_bytes sl ~who:`A;
    outpost_party = Daric_schemes.Outpost.storage_bytes op ~who:`A;
    outpost_watchtower = Daric_schemes.Outpost.watchtower_bytes op }

let storage_sweep ?(ns = [ 1; 10; 100; 1000 ]) () : storage_point list =
  List.map (fun n -> storage_point ~n) ns

let table1 ?(ns = [ 1; 10; 100; 1000 ]) () : string =
  let points = storage_sweep ~ns () in
  fmt_buf (fun ppf ->
      Format.fprintf ppf
        "Table 1 - scheme comparison (n channel updates, k recursive splits)@.";
      Format.fprintf ppf
        "%-12s %-9s %-9s %-11s %-8s %-7s %-9s %-5s@." "Scheme" "PartySt"
        "WatchSt" "Lifetime" "Incent" "#Txs" "AdaAvoid" "BndCls";
      List.iter
        (fun (s : Costmodel.scheme) ->
          Format.fprintf ppf "%-12s %-9s %-9s %-11s %-8s %-7s %-9s %-5s@."
            s.Costmodel.name s.party_storage s.watchtower_storage s.lifetime
            (if s.incentive_compatible then "yes" else "no")
            s.txs_per_k_apps
            (if s.avoids_adaptor_sigs then "yes" else "no")
            (if s.bounded_closure then "yes" else "no"))
        Costmodel.all;
      Format.fprintf ppf
        "@.Measured party storage (bytes) after n updates:@.";
      Format.fprintf ppf
        "%-8s %-8s %-8s %-10s %-12s %-8s %-9s %-8s %-9s@." "n" "Daric" "eltoo"
        "Lightning" "Generalized" "FPPW" "Cerberus" "Sleepy" "Outpost*";
      List.iter
        (fun p ->
          Format.fprintf ppf
            "%-8d %-8d %-8d %-10d %-12d %-8d %-9d %-8d %-9d@." p.n_updates
            p.daric_party p.eltoo_party p.lightning_party p.generalized_party
            p.fppw_party p.cerberus_party p.sleepy_party p.outpost_party)
        points;
      Format.fprintf ppf
        "(*Outpost party storage is O(1) here via the reverse hash chain;\n\
        \ the paper's O(n) variant stores per-state data instead - see\n\
        \ lib/schemes/outpost.ml)@.";
      Format.fprintf ppf "@.Measured watchtower storage (bytes):@.";
      Format.fprintf ppf "%-8s %-10s %-10s %-10s %-10s@." "n" "Daric"
        "Lightning" "FPPW" "Outpost";
      List.iter
        (fun p ->
          Format.fprintf ppf "%-8d %-10d %-10d %-10d %-10d@." p.n_updates
            p.daric_watchtower p.lightning_watchtower p.fppw_watchtower
            p.outpost_watchtower)
        points)

(* ------------------------------------------------------------------ *)
(* Table 3.                                                            *)

let table3 ?(ms = [ 0; 1; 5; 10 ]) () : string =
  fmt_buf (fun ppf ->
      Format.fprintf ppf
        "Table 3 - on-chain closure cost (weight units) and ops per update@.";
      List.iter
        (fun m ->
          Format.fprintf ppf "@.m = %d HTLC outputs:@." m;
          Format.fprintf ppf "%-12s %5s %10s %-18s %5s %10s %-14s@." "Scheme"
            "#TxD" "WU-dish" "paper(dish)" "#TxN" "WU-nonc" "paper(noncoll)";
          List.iter
            (fun (s : Costmodel.scheme) ->
              if m = 0 || s.Costmodel.supports_htlc then begin
                let dc = s.dishonest ~m and nc = s.non_collaborative ~m in
                let pd, pn =
                  match Costmodel.paper_quoted s.name with
                  | Some (a, b) -> (a, b)
                  | None -> ("-", "-")
                in
                Format.fprintf ppf "%-12s %5.0f %10.1f %-18s %5.0f %10.1f %-14s@."
                  s.name dc.n_tx (Costmodel.weight dc) pd nc.n_tx
                  (Costmodel.weight nc) pn
              end)
            Costmodel.all)
        ms;
      Format.fprintf ppf "@.Operations per channel update (m = 0):@.";
      Format.fprintf ppf "%-12s %6s %7s %5s@." "Scheme" "Sign" "Verify" "Exp";
      List.iter
        (fun (s : Costmodel.scheme) ->
          let o = s.Costmodel.ops_per_update ~m:0 in
          Format.fprintf ppf "%-12s %6.1f %7.1f %5.1f@." s.name o.sign o.verify
            o.exp)
        Costmodel.all)

(* Measured operation counts per update from the executable schemes. *)
type measured_ops = { scheme : string; sign : int; verify : int; exp : int }

let measure_ops () : measured_ops list =
  let rng = Daric_util.Rng.create ~seed:11 in
  let ledger = Daric_chain.Ledger.create ~delta:1 () in
  (* executable baselines: take the per-update delta over 10 updates *)
  let avg (s0, v0, e0) (s1, v1, e1) n =
    ((s1 - s0) / n, (v1 - v0) / n, (e1 - e0) / n)
  in
  let el = Daric_schemes.Eltoo.create ~ledger ~rng ~bal_a:1000 ~bal_b:1000 () in
  let e0 = Daric_schemes.Eltoo.ops el in
  for _ = 1 to 10 do
    ignore (Daric_schemes.Eltoo.update el ~bal_a:1000 ~bal_b:1000)
  done;
  let es, ev, ee = avg e0 (Daric_schemes.Eltoo.ops el) 10 in
  let ln = Daric_schemes.Lightning.create ~ledger ~rng ~bal_a:1000 ~bal_b:1000 () in
  let l0 = Daric_schemes.Lightning.ops ln in
  for _ = 1 to 10 do
    ignore (Daric_schemes.Lightning.update ln ~bal_a:1000 ~bal_b:1000)
  done;
  let ls, lv, le = avg l0 (Daric_schemes.Lightning.ops ln) 10 in
  let gc = Daric_schemes.Generalized.create ~ledger ~rng ~bal_a:1000 ~bal_b:1000 () in
  let g0 = Daric_schemes.Generalized.ops gc in
  for _ = 1 to 10 do
    ignore (Daric_schemes.Generalized.update gc ~bal_a:1000 ~bal_b:1000)
  done;
  let gs, gv, ge = avg g0 (Daric_schemes.Generalized.ops gc) 10 in
  (* Daric: drive the real two-party protocol and count one side's ops *)
  let d = Driver.create ~delta:1 ~seed:5 () in
  let alice = Party.create ~pid:"alice" ~seed:6 () in
  let bob = Party.create ~pid:"bob" ~seed:7 () in
  Driver.add_party d alice;
  Driver.add_party d bob;
  Driver.open_channel d ~id:"c" ~alice ~bob ~bal_a:1000 ~bal_b:1000 ();
  ignore (Driver.run_until_operational d ~id:"c" ~alice ~bob);
  let c = Party.chan_exn alice "c" in
  let pk_a, pk_b = Party.main_pks c in
  let o0 = Party.ops_copy (Party.ops alice) in
  for k = 1 to 10 do
    let theta =
      Daric_core.Txs.balance_state ~pk_a ~pk_b ~bal_a:(1000 - k) ~bal_b:(1000 + k)
    in
    ignore (Driver.update_channel d ~id:"c" ~initiator:alice ~responder:bob ~theta)
  done;
  let o1 = Party.ops alice in
  let ds = (o1.Party.signs - o0.Party.signs) / 10 in
  let dv = (o1.Party.verifies - o0.Party.verifies) / 10 in
  let de = (o1.Party.exps - o0.Party.exps) / 10 in
  [ { scheme = "Daric"; sign = ds; verify = dv; exp = de };
    { scheme = "eltoo"; sign = es / 2; verify = ev / 2; exp = ee / 2 };
    { scheme = "Lightning"; sign = ls; verify = lv; exp = le };
    { scheme = "Generalized"; sign = gs; verify = gv; exp = ge } ]

let measured_ops_table () : string =
  fmt_buf (fun ppf ->
      Format.fprintf ppf
        "Measured operations per update (executable schemes, per party, m = 0):@.";
      Format.fprintf ppf "%-12s %6s %7s %5s@." "Scheme" "Sign" "Verify" "Exp";
      List.iter
        (fun r ->
          Format.fprintf ppf "%-12s %6d %7d %5d@." r.scheme r.sign r.verify r.exp)
        (measure_ops ()))

(* ------------------------------------------------------------------ *)
(* Section 6 reports.                                                  *)

let attack_report ?(cfg = Daric_pcn.Attack.default_config) () : string =
  let module A = Daric_pcn.Attack in
  let el = A.run_eltoo cfg in
  let da = A.run_daric { cfg with n_channels = min cfg.n_channels 5 } in
  fmt_buf (fun ppf ->
      Format.fprintf ppf "Section 6.1 - HTLC-security delay attack@.";
      Format.fprintf ppf
        "analytic: <=%d channels per delay tx; %d delay txs over a 3-day \
         timelock; cost %dA vs revenue up to %dA -> %s@."
        (A.Analytic.max_channels_per_delay_tx ())
        (A.Analytic.delay_txs_before_expiry ())
        (A.Analytic.cost_over_a ())
        (A.Analytic.max_revenue_over_a ())
        (if A.Analytic.profitable () then "PROFITABLE against eltoo"
         else "unprofitable");
      Format.fprintf ppf
        "@.simulated eltoo (N=%d, A=%d sat, %d blocks):@." cfg.n_channels
        cfg.htlc_value cfg.timelock_blocks;
      Format.fprintf ppf
        "  delay txs confirmed        %d@." el.A.delay_txs_confirmed;
      Format.fprintf ppf
        "  adversary fees paid        %d sat@." el.A.adversary_fees_paid;
      Format.fprintf ppf
        "  victim overrides rejected  %d (BIP-125 out-bid)@."
        el.A.victim_overrides_rejected;
      Format.fprintf ppf
        "  victims escaped in time    %d / %d@." el.A.victims_escaped_in_time
        cfg.n_channels;
      Format.fprintf ppf
        "  HTLCs claimed by adversary %d@." el.A.htlcs_claimed_by_adversary;
      Format.fprintf ppf "  adversary net              %d sat@." el.A.adversary_net;
      Format.fprintf ppf "@.simulated Daric under the same adversary:@.";
      Format.fprintf ppf "  old commits posted   %d@." da.A.old_commits_posted;
      Format.fprintf ppf "  punished in window   %d@." da.A.punished_within_window;
      Format.fprintf ppf "  adversary lost       %d sat@."
        da.A.adversary_capacity_lost;
      Format.fprintf ppf "  HTLCs claimed        %d (attack inapplicable)@."
        da.A.htlcs_claimed)

let incentives_report () : string =
  let module I = Incentives in
  fmt_buf (fun ppf ->
      Format.fprintf ppf "Section 6.2 - punishment thresholds@.";
      Format.fprintf ppf "%-28s %-12s %-12s@." "scenario" "eltoo p>" "Daric p>";
      List.iter
        (fun (r : I.threshold_row) ->
          Format.fprintf ppf "%-28s %-12.5f %-12.5f@." r.label r.eltoo r.daric)
        (I.paper_rows ());
      Format.fprintf ppf "@.threshold vs channel capacity (min fee, 1%% reserve):@.";
      Format.fprintf ppf "%-12s %-12s %-12s@." "cap (BTC)" "eltoo" "Daric";
      List.iter
        (fun (c, e, d) -> Format.fprintf ppf "%-12.3f %-12.6f %-12.6f@." c e d)
        (I.capacity_sweep ());
      Format.fprintf ppf "@.Daric threshold vs reserve (flexibility):@.";
      Format.fprintf ppf "%-12s %-12s@." "reserve" "p >";
      List.iter
        (fun (r, p) -> Format.fprintf ppf "%-12.2f %-12.2f@." r p)
        (I.reserve_sweep ());
      Format.fprintf ppf "@.min punishable amount: %.1f USD (paper: ~20 USD)@."
        (I.daric_min_punishment_usd ());
      (* Monte-Carlo check just above/below the thresholds *)
      let rng = Daric_util.Rng.create ~seed:77 in
      let cap = I.Constants.avg_channel_capacity_btc in
      let fee = I.Constants.min_fee_btc in
      let e_thr = I.eltoo_threshold ~fee ~capacity:cap in
      let below = I.simulate_eltoo ~rng ~trials:200_000 ~p:(e_thr -. 0.0005) ~fee ~capacity:cap in
      let above = I.simulate_eltoo ~rng ~trials:200_000 ~p:(e_thr +. 0.0005) ~fee ~capacity:cap in
      Format.fprintf ppf
        "@.Monte-Carlo (eltoo, min fee): E[profit] below thr = %+.2e BTC, above thr = %+.2e BTC@."
        below above;
      let d_thr = I.daric_threshold ~reserve:0.01 in
      let below = I.simulate_daric ~rng ~trials:200_000 ~p:(d_thr -. 0.005) ~reserve:0.01 ~capacity:cap in
      let above = I.simulate_daric ~rng ~trials:200_000 ~p:(d_thr +. 0.005) ~reserve:0.01 ~capacity:cap in
      Format.fprintf ppf
        "Monte-Carlo (Daric, 1%% reserve): E[profit] below thr = %+.2e BTC, above thr = %+.2e BTC@."
        below above)
