(** Network-scale simulation: random payments over a random topology
    of Daric channels (ring plus random chords), every hop a complete
    protocol-level update; reports delivery rate and route length by
    payment-size bucket. *)

type config = {
  n_nodes : int;
  n_channels : int;
  channel_balance : int;  (** per side *)
  n_payments : int;
  max_payment : int;
  seed : int;
}

val default_config : config

type bucket = {
  lo : int;
  hi : int;
  mutable attempted : int;
  mutable delivered : int;
  mutable route_hops : int;
}

type result = {
  delivered : int;
  attempted : int;
  buckets : bucket list;
  avg_route_length : float;
}

val run : config -> result
val report : ?cfg:config -> unit -> string
val to_csv : result -> dir:string -> string
