(** The punishment-mechanism analysis of Section 6.2: what a
    profit-driven cheater risks in eltoo (only the fee she herself
    sets) versus Daric (her whole balance, at least the reserve
    fraction of the capacity), expressed as thresholds on the honest
    party's reaction probability p. *)

(** Paper constants (April 2022), values in BTC. *)
module Constants : sig
  val avg_tx_fee_btc : float
  val avg_channel_capacity_btc : float
  val eltoo_update_vbytes : int
  val min_fee_btc : float
  val default_reserve : float
  val btc_usd : float
end

val eltoo_threshold : fee:float -> capacity:float -> float
(** Fraud discouraged iff p > 1 - fee/capacity. *)

val daric_threshold : reserve:float -> float
(** Fraud discouraged iff p > 1 - reserve, capacity-independent. *)

val eltoo_threshold_with_coverage :
  fee:float -> capacity:float -> coverage:float -> float
(** [coverage] = C_W / C, the fraction of network capacity backed by
    fair-watchtower collateral. *)

val daric_threshold_with_coverage : reserve:float -> coverage:float -> float

val eltoo_expected_profit : fee:float -> capacity:float -> p:float -> float
val daric_expected_profit : reserve:float -> capacity:float -> p:float -> float

val simulate_fraud :
  rng:Daric_util.Rng.t -> trials:int -> p:float -> gain:float -> loss:float ->
  float
(** Monte-Carlo mean profit per fraud attempt. *)

val simulate_eltoo :
  rng:Daric_util.Rng.t -> trials:int -> p:float -> fee:float ->
  capacity:float -> float

val simulate_daric :
  rng:Daric_util.Rng.t -> trials:int -> p:float -> reserve:float ->
  capacity:float -> float

type threshold_row = { label : string; eltoo : float; daric : float }

val paper_rows : unit -> threshold_row list
(** The headline numbers: eltoo ~0.999 / ~0.9999, Daric 0.99. *)

val capacity_sweep :
  ?fee:float -> ?reserve:float -> ?capacities:float list -> unit ->
  (float * float * float) list
(** (capacity, eltoo threshold, daric threshold) series. *)

val reserve_sweep : ?reserves:float list -> unit -> (float * float) list

val daric_min_punishment_usd : ?capacity:float -> ?reserve:float -> unit -> float
(** The "around 20 USD on average" figure. *)
