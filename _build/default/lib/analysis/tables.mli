(** Regeneration of the paper's tables and Section 6 analyses. *)

(** One row of the Table 1 measured-storage sweep. *)
type storage_point = {
  n_updates : int;
  daric_party : int;
  daric_watchtower : int;
  eltoo_party : int;
  lightning_party : int;
  lightning_watchtower : int;
  generalized_party : int;
  fppw_party : int;
  fppw_watchtower : int;
  cerberus_party : int;
  sleepy_party : int;
  outpost_party : int;
  outpost_watchtower : int;
}

val daric_storage : n:int -> int * int
(** Drive a real Daric channel through [n] updates; (party bytes,
    watchtower bytes). *)

val storage_point : n:int -> storage_point
val storage_sweep : ?ns:int list -> unit -> storage_point list

val table1 : ?ns:int list -> unit -> string
(** Table 1 plus the measured storage sweep. *)

val table3 : ?ms:int list -> unit -> string
(** Table 3: closure costs per m, paper quotes side by side, operation
    counts. *)

type measured_ops = { scheme : string; sign : int; verify : int; exp : int }

val measure_ops : unit -> measured_ops list
(** Per-party per-update operation counts measured on the executable
    schemes (Daric via the full two-party protocol). *)

val measured_ops_table : unit -> string

val attack_report : ?cfg:Daric_pcn.Attack.config -> unit -> string
(** Section 6.1: analytic arithmetic + simulated eltoo pinning +
    the same adversary against Daric. *)

val incentives_report : unit -> string
(** Section 6.2: thresholds, sweeps, Monte-Carlo validation. *)
