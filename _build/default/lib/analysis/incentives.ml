(** The punishment-mechanism analysis of Section 6.2.

    A profit-driven party considers closing a channel with an old state.
    With probability p the honest counter-party (or her fair
    watchtower) reacts in time. The schemes differ in what the cheater
    risks:
    - eltoo: only the transaction fee f, which the cheater herself sets
      as low as the relay policy allows — so fraud is discouraged only
      when p > 1 - f/C_A, a threshold that grows with the capacity C_A;
    - Daric: the cheater's whole balance, at least the reserve fraction
      of the capacity — discouraged when p > 1 - reserve, independent
      of the capacity and tunable by raising the reserve. *)

(** Paper constants (April 2022). Values in BTC. *)
module Constants = struct
  let avg_tx_fee_btc = 0.000055
  let avg_channel_capacity_btc = 0.04

  (** An eltoo update transaction is 208 vbytes (Appendix H.4); at the
      1 sat/vbyte floor that is 208 satoshi. *)
  let eltoo_update_vbytes = 208

  let min_fee_btc = float_of_int eltoo_update_vbytes *. 1e-8
  let default_reserve = 0.01

  (** ~20 USD average punishable amount quoted in the paper:
      1% of 0.04 BTC at the April-2022 price (~47k USD/BTC). *)
  let btc_usd = 47_000.
end

(** eltoo: fraud discouraged iff (C_A - f)(1-p) - f p < 0, i.e.
    p > 1 - f / C_A. *)
let eltoo_threshold ~(fee : float) ~(capacity : float) : float =
  1. -. (fee /. capacity)

(** Daric: fraud discouraged iff (1-r) C (1-p) - r C p < 0, i.e.
    p > 1 - reserve. *)
let daric_threshold ~(reserve : float) : float = 1. -. reserve

(** Variant where the cheater does not know whether a fair watchtower
    monitors the channel; [coverage] is C_W / C, the fraction of network
    capacity backed by fair-watchtower collateral. The reaction failure
    probability becomes p0 = (1 - coverage)(1 - p). *)
let eltoo_threshold_with_coverage ~(fee : float) ~(capacity : float)
    ~(coverage : float) : float =
  1. -. (fee /. capacity /. (1. -. coverage))

let daric_threshold_with_coverage ~(reserve : float) ~(coverage : float) :
    float =
  1. -. (reserve /. (1. -. coverage))

(** Expected attacker profit at reaction probability [p] (per unit of
    channel capacity); negative means the attack is discouraged. *)
let eltoo_expected_profit ~(fee : float) ~(capacity : float) ~(p : float) :
    float =
  ((capacity -. fee) *. (1. -. p)) -. (fee *. p)

let daric_expected_profit ~(reserve : float) ~(capacity : float) ~(p : float) :
    float =
  ((1. -. reserve) *. capacity *. (1. -. p)) -. (reserve *. capacity *. p)

(** Monte-Carlo validation of the closed forms: simulate [trials]
    fraud attempts at reaction probability [p] and return the mean
    profit per attempt. *)
let simulate_fraud ~(rng : Daric_util.Rng.t) ~(trials : int) ~(p : float)
    ~(gain : float) ~(loss : float) : float =
  let total = ref 0. in
  for _ = 1 to trials do
    if Daric_util.Rng.bool rng p then total := !total -. loss
    else total := !total +. gain
  done;
  !total /. float_of_int trials

let simulate_eltoo ~rng ~trials ~p ~fee ~capacity : float =
  simulate_fraud ~rng ~trials ~p ~gain:(capacity -. fee) ~loss:fee

let simulate_daric ~rng ~trials ~p ~reserve ~capacity : float =
  simulate_fraud ~rng ~trials ~p ~gain:((1. -. reserve) *. capacity)
    ~loss:(reserve *. capacity)

type threshold_row = {
  label : string;
  eltoo : float;
  daric : float;
}

(** The paper's headline numbers: eltoo needs p > ~0.999 at the average
    fee and > ~0.9999 at the minimum fee; Daric needs p > 0.99. *)
let paper_rows () : threshold_row list =
  let c = Constants.avg_channel_capacity_btc in
  [ { label = "avg fee (0.000055 BTC)";
      eltoo = eltoo_threshold ~fee:Constants.avg_tx_fee_btc ~capacity:c;
      daric = daric_threshold ~reserve:Constants.default_reserve };
    { label = "min fee (1 sat/vB)";
      eltoo = eltoo_threshold ~fee:Constants.min_fee_btc ~capacity:c;
      daric = daric_threshold ~reserve:Constants.default_reserve } ]

(** Threshold as a function of channel capacity — flat for Daric,
    increasing towards 1 for eltoo. Returns (capacity_btc, eltoo_p,
    daric_p) series for the capacity sweep. *)
let capacity_sweep ?(fee = Constants.min_fee_btc)
    ?(reserve = Constants.default_reserve)
    ?(capacities = [ 0.001; 0.004; 0.01; 0.04; 0.1; 0.4; 1.0; 4.0 ]) () :
    (float * float * float) list =
  List.map
    (fun c ->
      (c, eltoo_threshold ~fee ~capacity:c, daric_threshold ~reserve))
    capacities

(** Daric's deterrent is tunable: raising the reserve lowers the
    required reaction probability. *)
let reserve_sweep ?(reserves = [ 0.01; 0.02; 0.05; 0.1; 0.2 ]) () :
    (float * float) list =
  List.map (fun r -> (r, daric_threshold ~reserve:r)) reserves

(** Minimum punishable amount in USD for a Daric channel (the "around
    20 USD on average" of Section 6.2). *)
let daric_min_punishment_usd ?(capacity = Constants.avg_channel_capacity_btc)
    ?(reserve = Constants.default_reserve) () : float =
  capacity *. reserve *. Constants.btc_usd
