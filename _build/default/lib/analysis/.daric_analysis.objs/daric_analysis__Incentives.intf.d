lib/analysis/incentives.mli: Daric_util
