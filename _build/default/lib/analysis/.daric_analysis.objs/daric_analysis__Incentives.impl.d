lib/analysis/incentives.ml: Daric_util List
