lib/analysis/pcn_sim.mli:
