lib/analysis/tables.mli: Daric_pcn
