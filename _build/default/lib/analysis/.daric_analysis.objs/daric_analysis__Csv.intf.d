lib/analysis/csv.mli: Tables
