lib/analysis/tables.ml: Buffer Daric_chain Daric_core Daric_pcn Daric_schemes Daric_tx Daric_util Format Incentives List
