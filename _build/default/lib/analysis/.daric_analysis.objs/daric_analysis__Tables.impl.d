lib/analysis/tables.ml: Buffer Daric_pcn Daric_schemes Daric_util Format Incentives List Printf Result String
