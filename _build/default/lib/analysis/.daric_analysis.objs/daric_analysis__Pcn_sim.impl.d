lib/analysis/pcn_sim.ml: Array Buffer Csv Daric_core Daric_pcn Daric_util Fmt Hashtbl List
