lib/analysis/csv.ml: Daric_pcn Daric_schemes Filename Fmt Incentives List String Sys Tables
