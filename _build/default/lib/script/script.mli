(** Bitcoin-style script: opcode set, byte sizing and printing.

    Byte sizes follow the counting conventions of the paper's
    Appendix H so measured transaction weights can be compared against
    its closed-form byte formulas: [Small _] costs 1 byte, [Num _]
    (timelock parameters) 4 bytes, [Push data] 1 + length bytes, every
    other opcode 1 byte. *)

type op =
  | Push of string  (** raw data push: pubkeys, hashes, preimages *)
  | Num of int  (** 4-byte script number: CLTV/CSV parameters *)
  | Small of int  (** small constant 0..16: multisig m/n and flags *)
  | If
  | Notif
  | Else
  | Endif
  | Verify
  | Return
  | Dup
  | Drop
  | Swap
  | Size
  | Equal
  | Equalverify
  | Hash160
  | Hash256
  | Sha256
  | Ripemd160
  | Checksig
  | Checksigverify
  | Checkmultisig
  | Checkmultisigverify
  | Cltv  (** OP_CHECKLOCKTIMEVERIFY *)
  | Csv  (** OP_CHECKSEQUENCEVERIFY *)

type t = op list

val op_size : op -> int

val size : t -> int
(** Serialized script size in bytes (Appendix-H counting). *)

val serialize : t -> string
(** Canonical injective serialization, used to hash scripts. *)

val hash : t -> string
(** SHA-256 of {!serialize} — the P2WSH witness program. *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit

val multisig_2 : string -> string -> t
(** [multisig_2 pk1 pk2] = [2 <pk1> <pk2> 2 OP_CHECKMULTISIG]
    (71 bytes with 33-byte keys). *)

val p2pk : string -> t
(** [p2pk pk] = [<pk> OP_CHECKSIG]. *)
