lib/script/interp.mli: Script
