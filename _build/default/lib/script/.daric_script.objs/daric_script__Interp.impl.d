lib/script/interp.ml: Char Daric_crypto List Script String
