lib/script/script.mli: Format
