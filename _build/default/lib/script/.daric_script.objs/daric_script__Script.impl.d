lib/script/script.ml: Daric_crypto Daric_util Fmt List String
