(** Input-script validation: does a transaction's witness satisfy the
    condition of the output it spends? *)

type error =
  | Missing_witness
  | Witness_script_mismatch
  | Pubkey_hash_mismatch
  | Malformed_witness
  | Unspendable
  | Script_error of Daric_script.Interp.error

val error_to_string : error -> string

val verify_input :
  Tx.t -> input_index:int -> spent:Tx.output -> input_age:int ->
  (unit, error) result
(** [verify_input tx ~input_index ~spent ~input_age] checks the witness
    of one input against the spent output's condition; [input_age] is
    the number of rounds since [spent] was recorded (for CSV). *)

val verify_input_deferred :
  Tx.t -> input_index:int -> spent:Tx.output -> input_age:int ->
  defer:(Sighash.deferred -> unit) -> (unit, error) result
(** {!verify_input} with signature checks deferred for batch
    verification: structurally valid checks are passed to [defer] and
    assumed to succeed; the caller must discharge them (e.g. with
    {!Daric_crypto.Schnorr.batch_verify}) and fall back to
    {!verify_input} when the batch rejects. *)
