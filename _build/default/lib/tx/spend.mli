(** Input-script validation: does a transaction's witness satisfy the
    condition of the output it spends? *)

type error =
  | Missing_witness
  | Witness_script_mismatch
  | Pubkey_hash_mismatch
  | Malformed_witness
  | Unspendable
  | Script_error of Daric_script.Interp.error

val error_to_string : error -> string

val verify_input :
  Tx.t -> input_index:int -> spent:Tx.output -> input_age:int ->
  (unit, error) result
(** [verify_input tx ~input_index ~spent ~input_age] checks the witness
    of one input against the spent output's condition; [input_age] is
    the number of rounds since [spent] was recorded (for CSV). *)
