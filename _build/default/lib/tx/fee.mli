(** Fee handling (Section 8): attach an extra input and change output
    to a transaction whose existing inputs carry ANYPREVOUT|SINGLE
    signatures — they stay valid, the difference goes to the miners. *)

val attach :
  Tx.t ->
  source:Tx.outpoint ->
  source_value:int ->
  fee:int ->
  key_sk:Daric_crypto.Schnorr.secret_key ->
  Tx.t
(** [attach tx ~source ~source_value ~fee ~key_sk] appends the P2WPKH
    funding input [source] and a change output paying
    [source_value - fee] back to the key, signing the new input with
    SIGHASH_ALL.
    @raise Invalid_argument if [fee] is negative or exceeds the source. *)

val paid : input_values:int list -> Tx.t -> int
(** Fee actually paid given the values of the spent inputs. *)
