lib/tx/spend.mli: Daric_script Tx
