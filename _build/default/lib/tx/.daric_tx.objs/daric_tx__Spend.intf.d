lib/tx/spend.mli: Daric_script Sighash Tx
