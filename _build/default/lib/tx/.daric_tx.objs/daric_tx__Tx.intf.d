lib/tx/tx.mli: Daric_script Format
