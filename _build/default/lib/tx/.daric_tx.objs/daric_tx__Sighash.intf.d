lib/tx/sighash.mli: Daric_crypto Tx
