lib/tx/spend.ml: Daric_crypto Daric_script List Sighash String Tx
