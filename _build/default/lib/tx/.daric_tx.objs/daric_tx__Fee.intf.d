lib/tx/fee.mli: Daric_crypto Tx
