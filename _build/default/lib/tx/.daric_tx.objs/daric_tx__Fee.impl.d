lib/tx/fee.ml: Daric_crypto List Sighash Tx
