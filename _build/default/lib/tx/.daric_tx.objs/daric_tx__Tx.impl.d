lib/tx/tx.ml: Daric_crypto Daric_script Daric_util Fmt Hashtbl Int64 List String
