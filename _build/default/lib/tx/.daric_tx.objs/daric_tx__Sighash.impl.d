lib/tx/sighash.ml: Bytes Char Daric_crypto List String Tx
