lib/tx/sighash.ml: Bytes Char Daric_crypto Hashtbl List String Tx
