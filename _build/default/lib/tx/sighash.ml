(** SIGHASH computation and flag-carrying signature encodings.

    Three modes are needed by the reproduced schemes:
    - [All]: the signature authorizes inputs, nLockTime and all outputs
      (SIGHASH_ALL — the message is f(TX) over [TX]).
    - [Anyprevout]: the signature does not authorize the inputs, making
      the transaction *floating* (BIP-118 / NOINPUT — the message is
      f~(⌊TX⌋) over (nLT, Output)).
    - [Anyprevout_single]: additionally only the same-index output is
      authorized, allowing fee inputs/outputs to be attached later
      (Section 8, "Fee handling").

    The flag is carried in the last byte of the 73-byte signature
    encoding, mirroring Bitcoin's appended sighash byte. *)

type flag = All | Anyprevout | Anyprevout_single

let flag_byte = function
  | All -> 0x01
  | Anyprevout -> 0x41
  | Anyprevout_single -> 0x43

let flag_of_byte = function
  | 0x01 -> Some All
  | 0x41 -> Some Anyprevout
  | 0x43 -> Some Anyprevout_single
  | _ -> None

(** Message hashed and signed for a given flag.
    [input_index] selects the authorized output under
    [Anyprevout_single]. *)
let message (flag : flag) (tx : Tx.t) ~(input_index : int) : string =
  let payload =
    match flag with
    | All -> "all/" ^ Tx.body_serialize tx
    | Anyprevout -> "apo/" ^ Tx.floating_body_serialize tx
    | Anyprevout_single ->
        let o = List.nth tx.outputs input_index in
        let single = { tx with outputs = [ o ]; inputs = []; witnesses = [] } in
        "apos/" ^ Tx.floating_body_serialize single
  in
  Daric_crypto.Hash.tagged "daric/sighash" payload

(** Sign a transaction for one input; returns the 73-byte flagged
    signature suitable for a witness element. *)
let sign (sk : Daric_crypto.Schnorr.secret_key) (flag : flag) (tx : Tx.t)
    ~(input_index : int) : string =
  let msg = message flag tx ~input_index in
  let s = Daric_crypto.Schnorr.sign_bytes sk msg in
  let b = Bytes.of_string s in
  Bytes.set b (Bytes.length b - 1) (Char.chr (flag_byte flag));
  Bytes.unsafe_to_string b

(** Sign a message directly (already-computed f(TX) / f~(⌊TX⌋)); used by
    protocol code that exchanges signatures on transaction *bodies*
    before the full transaction exists. *)
let sign_message (sk : Daric_crypto.Schnorr.secret_key) (flag : flag)
    (msg : string) : string =
  let s = Daric_crypto.Schnorr.sign_bytes sk msg in
  let b = Bytes.of_string s in
  Bytes.set b (Bytes.length b - 1) (Char.chr (flag_byte flag));
  Bytes.unsafe_to_string b

let verify_message (pk_bytes : string) (msg : string) (sig_bytes : string) : bool =
  Daric_crypto.Schnorr.verify_bytes pk_bytes msg sig_bytes

(** Full signature check for the script interpreter: extract the flag
    from the signature, compute the matching message over [tx], verify. *)
let check (tx : Tx.t) ~(input_index : int) ~(pk_bytes : string)
    ~(sig_bytes : string) : bool =
  String.length sig_bytes = Daric_crypto.Schnorr.signature_size
  &&
  match flag_of_byte (Char.code sig_bytes.[String.length sig_bytes - 1]) with
  | None -> false
  | Some flag ->
      let msg = message flag tx ~input_index in
      Daric_crypto.Schnorr.verify_bytes pk_bytes msg sig_bytes
