(** Transactions in the UTXO model of the paper (Section 2.1):
    TX = (txid, Input, nLT, Output, Witness) with txid = H(\[TX\]) over
    the body \[TX\] = (Input, nLT, Output).

    Weight accounting follows segwit rules with the byte-count
    conventions of Appendix H: weight = 4 x non-witness bytes + witness
    bytes; one vbyte is four weight units. *)

module Script = Daric_script.Script

type outpoint = { txid : string; vout : int }

val outpoint_equal : outpoint -> outpoint -> bool
val pp_outpoint : Format.formatter -> outpoint -> unit

(** Output condition (scriptPubKey). *)
type spk =
  | P2wsh of string  (** 32-byte script hash; spending reveals the script *)
  | P2wpkh of string  (** 20-byte pubkey hash *)
  | Raw of Script.t  (** bare script (tests and funding sources) *)
  | Op_return  (** provably unspendable *)

type output = { value : int; spk : spk }
(** [value] in satoshi. *)

type input = { prevout : outpoint; sequence : int }

type witness_elt =
  | Data of string
  | Wscript of Script.t  (** the revealed P2WSH witness script *)

type witness = witness_elt list
(** Bottom-to-top witness stack for one input (script last). *)

type t = {
  inputs : input list;
  locktime : int;  (** nLockTime *)
  outputs : output list;
  witnesses : witness list;  (** parallel to [inputs] *)
}

val default_sequence : int
val input_of_outpoint : ?sequence:int -> outpoint -> input

val body_serialize : t -> string
(** Serialization of the body \[TX\] = (Input, nLT, Output). *)

val txid : t -> string
(** txid = H(\[TX\]); 32 bytes. Witness data never affects it.
    Memoized on the (immutable) body — agrees with {!txid_uncached}. *)

val txid_uncached : t -> string
(** Recompute the digest without consulting the memo table (reference
    path for the property tests). *)

val outpoint_of : t -> int -> outpoint

val floating_body_serialize : t -> string
(** The input-less body (nLT, Output) authorized by ANYPREVOUT
    signatures. *)

val output_size : output -> int
(** Serialized output bytes: P2WPKH 31, P2WSH 43, ... *)

val non_witness_size : t -> int
(** version(4) + counts + 41/input + outputs + locktime(4). *)

val witness_elt_size : witness_elt -> int

val witness_size : t -> int
(** 2-byte segwit header + per input: count byte + elements. *)

val weight : t -> int
(** 4 x non-witness + witness, in weight units. *)

val vbytes : t -> int
(** ceil(weight / 4). *)

val total_output_value : t -> int
val pp : Format.formatter -> t -> unit
