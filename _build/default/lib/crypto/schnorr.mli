(** Schnorr signatures over {!Group} with deterministic nonces.

    Serialized sizes match the constants of the paper's Appendix H:
    public keys are exactly 33 bytes, signatures exactly 73 bytes, so
    the transactions built from them have byte-accurate witnesses. *)

type secret_key = Group.scalar
type public_key = Group.element

type signature = { r : Group.element; s : Group.scalar }

val public_key_size : int
(** 33. *)

val signature_size : int
(** 73. *)

val keygen : Daric_util.Rng.t -> secret_key * public_key
val public_key_of_secret : secret_key -> public_key

val encode_public_key : public_key -> string
(** 33-byte encoding. *)

val decode_public_key : string -> public_key option
(** Returns [None] on malformed input or non-subgroup points. *)

val encode_signature : signature -> string
(** 73-byte encoding (the last byte is free for a SIGHASH flag). *)

val decode_signature : string -> signature option

val challenge : Group.element -> public_key -> string -> Group.scalar
(** The Fiat-Shamir challenge e = H(R || pk || msg); exposed for the
    adaptor-signature construction. *)

val nonce : secret_key -> string -> string -> Group.scalar
(** Deterministic nonce derivation; [aux] separates usage domains. *)

val sign : secret_key -> string -> signature
val verify : public_key -> string -> signature -> bool

val sign_bytes : secret_key -> string -> string
(** {!sign} composed with {!encode_signature}. *)

val verify_bytes : string -> string -> string -> bool
(** [verify_bytes pk_bytes msg sig_bytes] decodes and verifies;
    [false] on any malformed input. *)
