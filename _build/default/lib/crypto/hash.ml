(** Bitcoin-style hash combinators and domain-separated (tagged) hashing. *)

(** Double SHA-256, as used for transaction ids. *)
let hash256 (s : string) : string = Sha256.digest (Sha256.digest s)

(** SHA-256 then RIPEMD-160, as used for P2WPKH witness programs. *)
let hash160 (s : string) : string = Ripemd160.digest (Sha256.digest s)

(** BIP-340 style tagged hash: SHA256(SHA256(tag) || SHA256(tag) || msg).
    Used to domain-separate nonce derivation, challenges, etc. *)
let tagged (tag : string) (msg : string) : string =
  let th = Sha256.digest tag in
  Sha256.digest (th ^ th ^ msg)

(** Interpret the first 8 bytes of a digest as a non-negative int. *)
let digest_to_int (d : string) : int =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int
