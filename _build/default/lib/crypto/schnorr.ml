(** Schnorr signatures over {!Group}, with deterministic nonces.

    Serialized sizes intentionally match the constants used throughout
    the paper's Appendix H: public keys serialize to exactly 33 bytes
    and signatures to exactly 73 bytes, so that the transactions we
    build have byte-accurate witness sizes. *)

type secret_key = Group.scalar
type public_key = Group.element

type signature = { r : Group.element; s : Group.scalar }

let public_key_size = 33
let signature_size = 73

(** [keygen rng] draws a fresh keypair. *)
let keygen (rng : Daric_util.Rng.t) : secret_key * public_key =
  let sk = 1 + Daric_util.Rng.int rng (Group.q - 1) in
  (sk, Group.pow Group.g sk)

let public_key_of_secret (sk : secret_key) : public_key = Group.pow Group.g sk

(** 33-byte encoding: 0x02 marker, 28 zero bytes, 4-byte element. *)
let encode_public_key (pk : public_key) : string =
  "\x02" ^ String.make 28 '\000' ^ Group.encode_element pk

let decode_public_key (s : string) : public_key option =
  if String.length s <> public_key_size || s.[0] <> '\x02' then None
  else
    let pk = Group.decode_element (String.sub s 29 4) in
    if Group.is_element pk then Some pk else None

(** 73-byte encoding: R (4), s (4), then zero padding. *)
let encode_signature (sg : signature) : string =
  Group.encode_element sg.r ^ Group.encode_scalar sg.s ^ String.make 65 '\000'

let decode_signature (s : string) : signature option =
  if String.length s <> signature_size then None
  else
    Some
      { r = Group.decode_element (String.sub s 0 4);
        s = Group.decode_int32 (String.sub s 4 4) }

let challenge (r : Group.element) (pk : public_key) (msg : string) : Group.scalar =
  Group.scalar_of_digest
    (Hash.tagged "daric/challenge" (Group.encode_element r ^ Group.encode_element pk ^ msg))

let nonce (sk : secret_key) (msg : string) (aux : string) : Group.scalar =
  let k =
    Group.scalar_of_digest
      (Hash.tagged "daric/nonce" (Group.encode_scalar sk ^ aux ^ msg))
  in
  if k = 0 then 1 else k

let sign (sk : secret_key) (msg : string) : signature =
  let k = nonce sk msg "" in
  let r = Group.pow Group.g k in
  let e = challenge r (public_key_of_secret sk) msg in
  { r; s = Group.scalar_add k (Group.scalar_mul e sk) }

let verify (pk : public_key) (msg : string) (sg : signature) : bool =
  Group.is_element pk && Group.is_element sg.r
  &&
  let e = challenge sg.r pk msg in
  Group.pow Group.g sg.s = Group.mul sg.r (Group.pow pk e)

(* Convenience wrappers over the wire encodings, used by the script
   interpreter which only sees byte strings. *)

let sign_bytes (sk : secret_key) (msg : string) : string = encode_signature (sign sk msg)

let verify_bytes (pk_bytes : string) (msg : string) (sig_bytes : string) : bool =
  match (decode_public_key pk_bytes, decode_signature sig_bytes) with
  | Some pk, Some sg -> verify pk msg sg
  | _ -> false
