(** SHA-256 (FIPS 180-4), pure OCaml.

    Implemented on 32-bit words carried in native ints; every word is
    masked to 32 bits after arithmetic. Verified in the test suite
    against the FIPS/NIST vectors. *)

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

let mask = 0xffffffff
let ( &: ) a b = a land b
let ( |: ) a b = a lor b
let ( ^: ) a b = a lxor b
let lnot32 a = lnot a &: mask
let add32 a b = (a + b) &: mask
let rotr x n = ((x lsr n) |: (x lsl (32 - n))) &: mask
let shr x n = x lsr n

type ctx = { h : int array; w : int array }
(** [w] is the 64-word message schedule, allocated once per context and
    reused by every [compress] call instead of per block. *)

let init () : ctx =
  { h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    w = Array.make 64 0 }

(* Hot path: bounds checks are skipped (offsets are validated by the
   caller) and masking is deferred — all inputs are 32-bit, so sums of
   up to five terms stay well inside the 63-bit native int and only the
   final assignment masks back to 32 bits. *)
let compress (ctx : ctx) (block : string) (off : int) =
  let w = ctx.w in
  let code i = Char.code (String.unsafe_get block i) in
  for t = 0 to 15 do
    let i = off + (4 * t) in
    Array.unsafe_set w t
      ((code i lsl 24) |: (code (i + 1) lsl 16) |: (code (i + 2) lsl 8)
      |: code (i + 3))
  done;
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr w15 7 ^: rotr w15 18 ^: shr w15 3 in
    let s1 = rotr w2 17 ^: rotr w2 19 ^: shr w2 10 in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
      &: mask)
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 ^: rotr !e 11 ^: rotr !e 25 in
    let ch = (!e &: !f) ^: (lnot32 !e &: !g) in
    let t1 =
      !hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t
    in
    let s0 = rotr !a 2 ^: rotr !a 13 ^: rotr !a 22 in
    let maj = (!a &: !b) ^: (!a &: !c) ^: (!b &: !c) in
    let t2 = s0 + maj in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) &: mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) &: mask
  done;
  h.(0) <- add32 h.(0) !a;
  h.(1) <- add32 h.(1) !b;
  h.(2) <- add32 h.(2) !c;
  h.(3) <- add32 h.(3) !d;
  h.(4) <- add32 h.(4) !e;
  h.(5) <- add32 h.(5) !f;
  h.(6) <- add32 h.(6) !g;
  h.(7) <- add32 h.(7) !hh

(** [digest s] is the 32-byte SHA-256 digest of [s].

    Full 64-byte blocks are compressed in place from [msg] — the input
    is never copied into a padded buffer. Only the tail (the remaining
    bytes, the 0x80 marker, zeros and the 64-bit big-endian bit length)
    lands in a small scratch of at most two blocks. *)
let digest (msg : string) : string =
  let ctx = init () in
  let len = String.length msg in
  let full = len / 64 in
  for b = 0 to full - 1 do
    compress ctx msg (b * 64)
  done;
  let rem = len - (full * 64) in
  let tail_blocks = if rem < 56 then 1 else 2 in
  let tail = Bytes.make (tail_blocks * 64) '\000' in
  Bytes.blit_string msg (full * 64) tail 0 rem;
  Bytes.set tail rem '\x80';
  let bits = len * 8 in
  for i = 0 to 7 do
    Bytes.set tail
      ((tail_blocks * 64) - 1 - i)
      (Char.chr ((bits lsr (8 * i)) land 0xff))
  done;
  let tail_s = Bytes.unsafe_to_string tail in
  compress ctx tail_s 0;
  if tail_blocks = 2 then compress ctx tail_s 64;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

(** Hex digest, convenience for tests. *)
let hexdigest (msg : string) : string = Daric_util.Hex.encode (digest msg)
