lib/crypto/schnorr.ml: Buffer Daric_util Group Hash Hashtbl List String
