lib/crypto/schnorr.ml: Daric_util Group Hash String
