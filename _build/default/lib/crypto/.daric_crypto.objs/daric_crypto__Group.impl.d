lib/crypto/group.ml: Array Bytes Char Hash List String
