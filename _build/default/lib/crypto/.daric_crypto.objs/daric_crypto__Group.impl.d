lib/crypto/group.ml: Bytes Char Hash String
