lib/crypto/hash.mli:
