lib/crypto/adaptor.ml: Daric_util Group Schnorr
