lib/crypto/sha256.ml: Array Bytes Char Daric_util String
