lib/crypto/ripemd160.ml: Array Bytes Char Daric_util Int64 String
