lib/crypto/group.mli:
