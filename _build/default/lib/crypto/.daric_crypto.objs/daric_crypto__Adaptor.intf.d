lib/crypto/adaptor.mli: Daric_util Group Schnorr
