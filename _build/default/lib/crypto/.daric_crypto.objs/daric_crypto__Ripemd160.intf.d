lib/crypto/ripemd160.mli:
