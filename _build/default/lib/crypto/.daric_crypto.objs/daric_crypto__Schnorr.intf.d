lib/crypto/schnorr.mli: Daric_util Group
