lib/crypto/hash.ml: Char Ripemd160 Sha256 String
