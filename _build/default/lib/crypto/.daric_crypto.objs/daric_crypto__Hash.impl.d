lib/crypto/hash.ml: Char Hashtbl Ripemd160 Sha256 String
