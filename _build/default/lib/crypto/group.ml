(** A small Schnorr group: the order-q subgroup of Z_p^* with
    p = 2q + 1 a safe prime.

    p = 2147483579 and q = 1073741789 are both prime, p < 2^31, so all
    intermediate products fit in OCaml's 63-bit native integers. The
    generator g = 4 is a quadratic residue and hence generates the
    subgroup of order q.

    This group is a *simulation stand-in* for secp256k1: it has the full
    algebraic structure (so Schnorr and adaptor signatures verify
    properly between independent parties) but only toy security. All
    byte-size accounting uses the paper's 33/73-byte constants, not the
    size of these elements. *)

let p = 2147483579
let q = 1073741789
let g = 4

type element = int
(** Group element in [1, p-1], member of the order-q subgroup. *)

type scalar = int
(** Exponent in [0, q-1]. *)

let mul (a : element) (b : element) : element = a * b mod p

let pow (base : element) (e : scalar) : element =
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (e lsr 1)
  in
  go 1 (base mod p) (((e mod q) + q) mod q)

(** Fermat inverse in Z_p^*. *)
let inv (a : element) : element =
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (e lsr 1)
  in
  go 1 (a mod p) (p - 2)

let scalar_add (a : scalar) (b : scalar) : scalar = (a + b) mod q
let scalar_sub (a : scalar) (b : scalar) : scalar = ((a - b) mod q + q) mod q
let scalar_mul (a : scalar) (b : scalar) : scalar = a * b mod q

(** Reduce a digest to a scalar. *)
let scalar_of_digest (d : string) : scalar = Hash.digest_to_int d mod q

(** [is_element x] checks subgroup membership: x^q = 1 (and x != 0). *)
let is_element (x : int) : bool = x > 0 && x < p && pow x q = 1

(** Fixed-width serializations (elements and scalars are < 2^31). *)
let encode_int32 (v : int) : string =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
  done;
  Bytes.unsafe_to_string b

let decode_int32 (s : string) : int =
  if String.length s <> 4 then invalid_arg "Group.decode_int32";
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code s.[i]
  done;
  !v

let encode_element = encode_int32
let decode_element = decode_int32
let encode_scalar = encode_int32
