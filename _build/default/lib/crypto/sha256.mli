(** SHA-256 (FIPS 180-4), pure OCaml. Verified against the NIST test
    vectors in the test suite. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 digest of [s]. *)

val hexdigest : string -> string
(** Hex rendering of {!digest}, for tests and display. *)
