(** Schnorr adaptor signatures (pre-signatures).

    Used only by the Generalized-channel baseline; Daric deliberately
    avoids adaptor signatures, and reproducing that contrast is part of
    Tables 1 and 3. *)

type statement = Group.element
(** Y = g^y for witness y. *)

type witness = Group.scalar

type pre_signature = { r : Group.element; s_pre : Group.scalar }

val gen_statement : Daric_util.Rng.t -> witness * statement

val pre_sign : Schnorr.secret_key -> statement -> string -> pre_signature
(** [pre_sign sk y_stmt msg]: a pre-signature that becomes a full
    Schnorr signature once adapted with the witness behind [y_stmt]. *)

val pre_verify : Schnorr.public_key -> statement -> string -> pre_signature -> bool

val adapt : pre_signature -> witness -> Schnorr.signature
(** Complete a pre-signature into a full signature. *)

val extract : Schnorr.signature -> pre_signature -> witness
(** Recover the witness from a published full signature and the
    corresponding pre-signature — how a Generalized channel identifies
    the publisher of a revoked state. *)
