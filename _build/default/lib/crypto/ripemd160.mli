(** RIPEMD-160, pure OCaml. Needed for Bitcoin-style HASH160 (P2WPKH
    witness programs); verified against the published test vectors. *)

val digest : string -> string
(** [digest s] is the 20-byte RIPEMD-160 digest of [s]. *)

val hexdigest : string -> string
(** Hex rendering of {!digest}. *)
