(** A small Schnorr group: the order-q subgroup of Z_p^* for the safe
    prime p = 2q + 1 with p = 2147483579, q = 1073741789, generator
    g = 4.

    A simulation stand-in for secp256k1: the full algebraic structure
    (so Schnorr and adaptor signatures verify properly between
    independent parties) at toy security. All byte-size accounting in
    the repository uses the paper's 33/73-byte constants, never the
    size of these elements. *)

val p : int
(** The group modulus (prime, < 2^31 so products fit native ints). *)

val q : int
(** The subgroup order (prime, p = 2q + 1). *)

val g : int
(** Generator of the order-q subgroup. *)

type element = int
(** Group element in [\[1, p-1\]], member of the order-q subgroup. *)

type scalar = int
(** Exponent in [\[0, q-1\]]. *)

val mul : element -> element -> element
val pow : element -> scalar -> element
val inv : element -> element

val scalar_add : scalar -> scalar -> scalar
val scalar_sub : scalar -> scalar -> scalar
val scalar_mul : scalar -> scalar -> scalar

val scalar_of_digest : string -> scalar
(** Reduce a hash digest to a scalar. *)

val is_element : int -> bool
(** Subgroup membership: x in (0, p) with x^q = 1. *)

val encode_int32 : int -> string
(** 4-byte big-endian encoding (values < 2^31). *)

val decode_int32 : string -> int
(** @raise Invalid_argument unless the input has exactly 4 bytes. *)

val encode_element : element -> string
val decode_element : string -> element
val encode_scalar : scalar -> string
