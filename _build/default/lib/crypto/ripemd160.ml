(** RIPEMD-160 (Dobbertin, Bosselaers, Preneel), pure OCaml.

    Needed for Bitcoin-style HASH160 (P2WPKH witness programs).
    Verified against the published test vectors in the test suite. *)

let mask = 0xffffffff
let add32 a b = (a + b) land mask
let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

(* Selection of message word and rotation amounts, left and right lines. *)
let rl =
  [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 7; 4; 13; 1; 10;
     6; 15; 3; 12; 0; 9; 5; 2; 14; 11; 8; 3; 10; 14; 4; 9; 15; 8; 1; 2; 7;
     0; 6; 13; 11; 5; 12; 1; 9; 11; 10; 0; 8; 12; 4; 13; 3; 7; 15; 14; 5;
     6; 2; 4; 0; 5; 9; 7; 12; 2; 10; 14; 1; 3; 8; 11; 6; 15; 13 |]

let rr =
  [| 5; 14; 7; 0; 9; 2; 11; 4; 13; 6; 15; 8; 1; 10; 3; 12; 6; 11; 3; 7; 0;
     13; 5; 10; 14; 15; 8; 12; 4; 9; 1; 2; 15; 5; 1; 3; 7; 14; 6; 9; 11; 8;
     12; 2; 10; 0; 4; 13; 8; 6; 4; 1; 3; 11; 15; 0; 5; 12; 2; 13; 9; 7; 10;
     14; 12; 15; 10; 4; 1; 5; 8; 7; 6; 2; 13; 14; 0; 3; 9; 11 |]

let sl =
  [| 11; 14; 15; 12; 5; 8; 7; 9; 11; 13; 14; 15; 6; 7; 9; 8; 7; 6; 8; 13;
     11; 9; 7; 15; 7; 12; 15; 9; 11; 7; 13; 12; 11; 13; 6; 7; 14; 9; 13;
     15; 14; 8; 13; 6; 5; 12; 7; 5; 11; 12; 14; 15; 14; 15; 9; 8; 9; 14; 5;
     6; 8; 6; 5; 12; 9; 15; 5; 11; 6; 8; 13; 12; 5; 12; 13; 14; 11; 8; 5; 6 |]

let sr =
  [| 8; 9; 9; 11; 13; 15; 15; 5; 7; 7; 8; 11; 14; 14; 12; 6; 9; 13; 15; 7;
     12; 8; 9; 11; 7; 7; 12; 7; 6; 15; 13; 11; 9; 7; 15; 11; 8; 6; 6; 14;
     12; 13; 5; 14; 13; 13; 7; 5; 15; 5; 8; 11; 14; 14; 6; 14; 6; 9; 12; 9;
     12; 5; 15; 8; 8; 5; 12; 9; 12; 5; 14; 6; 8; 13; 6; 5; 15; 13; 11; 11 |]

let f j x y z =
  if j < 16 then x lxor y lxor z
  else if j < 32 then (x land y) lor (lnot x land mask land z)
  else if j < 48 then (x lor (lnot y land mask)) lxor z
  else if j < 64 then (x land z) lor (y land (lnot z land mask))
  else x lxor (y lor (lnot z land mask))

let kl j =
  if j < 16 then 0 else if j < 32 then 0x5a827999
  else if j < 48 then 0x6ed9eba1 else if j < 64 then 0x8f1bbcdc
  else 0xa953fd4e

let kr j =
  if j < 16 then 0x50a28be6 else if j < 32 then 0x5c4dd124
  else if j < 48 then 0x6d703ef3 else if j < 64 then 0x7a6d76e9
  else 0

let compress (h : int array) (block : string) (off : int) =
  let x = Array.make 16 0 in
  for i = 0 to 15 do
    let b = off + (4 * i) in
    x.(i) <-
      Char.code block.[b]
      lor (Char.code block.[b + 1] lsl 8)
      lor (Char.code block.[b + 2] lsl 16)
      lor (Char.code block.[b + 3] lsl 24)
  done;
  let al = ref h.(0) and bl = ref h.(1) and cl = ref h.(2) in
  let dl = ref h.(3) and el = ref h.(4) in
  let ar = ref h.(0) and br = ref h.(1) and cr = ref h.(2) in
  let dr = ref h.(3) and er = ref h.(4) in
  for j = 0 to 79 do
    (* left line *)
    let t =
      add32 (rotl (add32 (add32 !al (f j !bl !cl !dl)) (add32 x.(rl.(j)) (kl j))) sl.(j)) !el
    in
    al := !el;
    el := !dl;
    dl := rotl !cl 10;
    cl := !bl;
    bl := t;
    (* right line: uses f(79-j) *)
    let t =
      add32 (rotl (add32 (add32 !ar (f (79 - j) !br !cr !dr)) (add32 x.(rr.(j)) (kr j))) sr.(j)) !er
    in
    ar := !er;
    er := !dr;
    dr := rotl !cr 10;
    cr := !br;
    br := t
  done;
  let t = add32 h.(1) (add32 !cl !dr) in
  h.(1) <- add32 h.(2) (add32 !dl !er);
  h.(2) <- add32 h.(3) (add32 !el !ar);
  h.(3) <- add32 h.(4) (add32 !al !br);
  h.(4) <- add32 h.(0) (add32 !bl !cr);
  h.(0) <- t

(** [digest s] is the 20-byte RIPEMD-160 digest of [s]. *)
let digest (msg : string) : string =
  let h = [| 0x67452301; 0xefcdab89; 0x98badcfe; 0x10325476; 0xc3d2e1f0 |] in
  let len = String.length msg in
  let rem = len mod 64 in
  let pad_len = if rem < 56 then 56 - rem else 120 - rem in
  let total = len + pad_len + 8 in
  let buf = Bytes.make total '\000' in
  Bytes.blit_string msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  (* little-endian 64-bit bit count *)
  let bits = Int64.of_int (len * 8) in
  for i = 0 to 7 do
    Bytes.set buf
      (len + pad_len + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done;
  let data = Bytes.unsafe_to_string buf in
  for b = 0 to (total / 64) - 1 do
    compress h data (b * 64)
  done;
  let out = Bytes.create 20 in
  for i = 0 to 4 do
    let v = h.(i) in
    Bytes.set out (4 * i) (Char.chr (v land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr ((v lsr 24) land 0xff))
  done;
  Bytes.unsafe_to_string out

let hexdigest (msg : string) : string = Daric_util.Hex.encode (digest msg)
