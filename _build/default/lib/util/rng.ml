(** Deterministic pseudo-random generator (splitmix64).

    All randomness in the simulator flows through explicitly seeded
    instances of this generator, so every experiment is reproducible. *)

type t = { mutable state : int64 }

let create ~(seed : int) : t = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 (t : t) : int64 =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] draws a uniform integer in [0, bound). *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** [float t] draws a uniform float in [0, 1). *)
let float (t : t) : float =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

(** [bool t p] is true with probability [p]. *)
let bool (t : t) (p : float) : bool = float t < p

(** [bytes t n] draws [n] uniformly random bytes. *)
let bytes (t : t) (n : int) : string =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (int t 256))
  done;
  Bytes.unsafe_to_string out

(** [split t] derives an independent generator, advancing [t]. *)
let split (t : t) : t = { state = next_int64 t }
