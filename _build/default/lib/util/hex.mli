(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s] (2 chars/byte). *)

val decode : string -> string
(** [decode h] inverts {!encode}.
    @raise Invalid_argument on odd length or non-hex characters. *)

val short : string -> string
(** [short s] renders at most the first 4 bytes of [s] in hex — a
    compact identifier for logs and charts. *)
