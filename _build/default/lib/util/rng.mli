(** Deterministic pseudo-random generator (splitmix64).

    All randomness in the simulator flows through explicitly seeded
    instances, so every experiment is reproducible bit for bit. *)

type t

val create : seed:int -> t
(** A fresh generator with the given seed. *)

val next_int64 : t -> int64
(** The next raw 64-bit output, advancing the state. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** A uniform float in [\[0, 1)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val bytes : t -> int -> string
(** [bytes t n] draws [n] uniformly random bytes. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)
