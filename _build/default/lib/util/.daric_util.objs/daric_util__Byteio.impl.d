lib/util/byteio.ml: Buffer Char Int64 String
