lib/util/rng.mli:
