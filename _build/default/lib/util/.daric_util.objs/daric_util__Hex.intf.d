lib/util/hex.mli:
