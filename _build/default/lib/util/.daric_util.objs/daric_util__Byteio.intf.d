lib/util/byteio.mli:
