(** State-number locktime encoding and channel-lifetime analysis
    (Sections 4.1 and 8): block-height encoding caps a channel at
    roughly the current height worth of updates, timestamp encoding at
    over a billion — unlimited when updating at most once per second. *)

val threshold : int
(** 500,000,000: below = block height, at/above = UNIX timestamp. *)

type mode = Block_height | Timestamp

val mode_of : int -> mode

val of_state : s0:int -> int -> int
(** Absolute locktime for a state index.
    @raise Invalid_argument on negative states or when a block-height
    encoding would cross the timestamp threshold. *)

val state_of : s0:int -> int -> int

val remaining_updates : s0:int -> sn:int -> height:int -> time:int -> int
(** Updates left such that the latest state stays immediately
    enforceable at the given ledger height/time. *)

val unlimited_lifetime : seconds_per_update:float -> bool
(** In timestamp mode the clock gains one state per second: an average
    inter-update time of at least one second never exhausts it. *)

val height_mode_capacity : current_height:int -> int
val timestamp_mode_capacity : current_time:int -> int
