(** Protocol messages exchanged between Daric channel parties
    (Appendix D). Signatures travel as the 73-byte flagged encodings of
    {!Daric_tx.Sighash}. *)

module Tx = Daric_tx.Tx

type msg =
  | Create_info of { id : string; tid : Tx.outpoint; keys : Keys.pub }
      (** step 1: funding source + channel public keys *)
  | Create_com of { id : string; split_sig : string; commit_sig : string }
      (** step 3: ANYPREVOUT sig on split_0 + sig on the peer's commit_0 *)
  | Create_fund of { id : string; fund_sig : string }
      (** step 4: signature on the funding transaction *)
  | Update_req of { id : string; theta : Tx.output list; tstp : int }
      (** update step 1 *)
  | Update_info of { id : string; split_sig : string }
      (** update step 3: responder's ANYPREVOUT sig on split_{i+1} *)
  | Update_com_initiator of { id : string; split_sig : string; commit_sig : string }
      (** update step 5 (updateComP) *)
  | Update_com_responder of { id : string; commit_sig : string }
      (** update step 7 (updateComQ) *)
  | Revoke_initiator of { id : string; rev_sig : string }
      (** update step 9 (revokeP): sig on the peer's revocation tx *)
  | Revoke_responder of { id : string; rev_sig : string }
      (** update step 11 (revokeQ) *)
  | Close_req of { id : string; fin_sig : string }
      (** close step 2 (CloseP): sig on the modified split transaction *)
  | Close_ack of { id : string; fin_sig : string }  (** close step 3 (CloseQ) *)

let channel_id = function
  | Create_info { id; _ }
  | Create_com { id; _ }
  | Create_fund { id; _ }
  | Update_req { id; _ }
  | Update_info { id; _ }
  | Update_com_initiator { id; _ }
  | Update_com_responder { id; _ }
  | Revoke_initiator { id; _ }
  | Revoke_responder { id; _ }
  | Close_req { id; _ }
  | Close_ack { id; _ } -> id

let kind = function
  | Create_info _ -> "createInfo"
  | Create_com _ -> "createCom"
  | Create_fund _ -> "createFund"
  | Update_req _ -> "updateReq"
  | Update_info _ -> "updateInfo"
  | Update_com_initiator _ -> "updateComP"
  | Update_com_responder _ -> "updateComQ"
  | Revoke_initiator _ -> "revokeP"
  | Revoke_responder _ -> "revokeQ"
  | Close_req _ -> "closeP"
  | Close_ack _ -> "closeQ"

(* ------------------------------------------------------------------ *)
(* Serialization: a canonical byte encoding for protocol messages,
   used for communication-cost accounting and transcript storage. *)

module W = Daric_util.Byteio.Writer
module R = Daric_util.Byteio.Reader

let tag = function
  | Create_info _ -> 1
  | Create_com _ -> 2
  | Create_fund _ -> 3
  | Update_req _ -> 4
  | Update_info _ -> 5
  | Update_com_initiator _ -> 6
  | Update_com_responder _ -> 7
  | Revoke_initiator _ -> 8
  | Revoke_responder _ -> 9
  | Close_req _ -> 10
  | Close_ack _ -> 11

let write_outpoint w (o : Tx.outpoint) =
  W.var_string w o.Tx.txid;
  W.u32 w o.Tx.vout

let read_outpoint r : Tx.outpoint =
  let txid = R.var_string r in
  let vout = R.u32 r in
  { Tx.txid; vout }

let write_pub w (k : Keys.pub) =
  W.string w (Keys.enc k.Keys.main_pk);
  W.string w (Keys.enc k.Keys.sp_pk);
  W.string w (Keys.enc k.Keys.rv_pk);
  W.string w (Keys.enc k.Keys.rv'_pk)

let read_pub r : Keys.pub option =
  let dec () = Daric_crypto.Schnorr.decode_public_key (R.string r 33) in
  match (dec (), dec (), dec (), dec ()) with
  | Some main_pk, Some sp_pk, Some rv_pk, Some rv'_pk ->
      Some { Keys.main_pk; sp_pk; rv_pk; rv'_pk }
  | _ -> None

let write_output w (o : Tx.output) =
  W.u64 w (Int64.of_int o.Tx.value);
  match o.Tx.spk with
  | Tx.P2wsh h ->
      W.byte w 0;
      W.var_string w h
  | Tx.P2wpkh h ->
      W.byte w 1;
      W.var_string w h
  | Tx.Raw s ->
      W.byte w 2;
      W.var_string w (Daric_script.Script.serialize s)
  | Tx.Op_return -> W.byte w 3

(* Raw scripts are hashed rather than re-parsed on decode; protocol
   messages only ever carry P2WSH/P2WPKH state outputs. *)
let read_output r : Tx.output option =
  let value = Int64.to_int (R.u64 r) in
  match R.byte r with
  | 0 -> Some { Tx.value; spk = Tx.P2wsh (R.var_string r) }
  | 1 -> Some { Tx.value; spk = Tx.P2wpkh (R.var_string r) }
  | 3 -> Some { Tx.value; spk = Tx.Op_return }
  | _ -> None

(** Canonical byte encoding. *)
let encode (m : msg) : string =
  let w = W.create () in
  W.byte w (tag m);
  W.var_string w (channel_id m);
  (match m with
  | Create_info { tid; keys; _ } ->
      write_outpoint w tid;
      write_pub w keys
  | Create_com { split_sig; commit_sig; _ } ->
      W.var_string w split_sig;
      W.var_string w commit_sig
  | Create_fund { fund_sig; _ } -> W.var_string w fund_sig
  | Update_req { theta; tstp; _ } ->
      W.u32 w tstp;
      W.varint w (List.length theta);
      List.iter (write_output w) theta
  | Update_info { split_sig; _ } -> W.var_string w split_sig
  | Update_com_initiator { split_sig; commit_sig; _ } ->
      W.var_string w split_sig;
      W.var_string w commit_sig
  | Update_com_responder { commit_sig; _ } -> W.var_string w commit_sig
  | Revoke_initiator { rev_sig; _ } | Revoke_responder { rev_sig; _ } ->
      W.var_string w rev_sig
  | Close_req { fin_sig; _ } | Close_ack { fin_sig; _ } -> W.var_string w fin_sig);
  W.contents w

(** Serialized size in bytes (per-update communication cost). *)
let size (m : msg) : int = String.length (encode m)

let decode (s : string) : msg option =
  let r = R.create s in
  try
    let t = R.byte r in
    let id = R.var_string r in
    let msg =
      match t with
      | 1 -> (
          let tid = read_outpoint r in
          match read_pub r with
          | Some keys -> Some (Create_info { id; tid; keys })
          | None -> None)
      | 2 ->
          let split_sig = R.var_string r in
          let commit_sig = R.var_string r in
          Some (Create_com { id; split_sig; commit_sig })
      | 3 -> Some (Create_fund { id; fund_sig = R.var_string r })
      | 4 ->
          let tstp = R.u32 r in
          let n = R.varint r in
          let rec outs k acc =
            if k = 0 then Some (List.rev acc)
            else
              match read_output r with
              | Some o -> outs (k - 1) (o :: acc)
              | None -> None
          in
          Option.map (fun theta -> Update_req { id; theta; tstp }) (outs n [])
      | 5 -> Some (Update_info { id; split_sig = R.var_string r })
      | 6 ->
          let split_sig = R.var_string r in
          let commit_sig = R.var_string r in
          Some (Update_com_initiator { id; split_sig; commit_sig })
      | 7 -> Some (Update_com_responder { id; commit_sig = R.var_string r })
      | 8 -> Some (Revoke_initiator { id; rev_sig = R.var_string r })
      | 9 -> Some (Revoke_responder { id; rev_sig = R.var_string r })
      | 10 -> Some (Close_req { id; fin_sig = R.var_string r })
      | 11 -> Some (Close_ack { id; fin_sig = R.var_string r })
      | _ -> None
    in
    if R.at_end r then msg else None
  with R.Truncated -> None
