lib/core/flowchart.ml: Buffer Daric_chain Daric_tx Daric_util Fmt List String
