lib/core/nesting.ml: Daric_chain Daric_script Daric_tx Daric_util Keys List Txs
