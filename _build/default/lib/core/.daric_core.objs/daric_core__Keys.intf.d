lib/core/keys.mli: Daric_crypto Daric_util
