lib/core/driver.mli: Daric_chain Daric_crypto Daric_tx Party Watchtower
