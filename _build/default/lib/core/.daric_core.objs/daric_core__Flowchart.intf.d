lib/core/flowchart.mli: Daric_chain Daric_tx
