lib/core/storage.mli: Daric_tx Party
