lib/core/txs.mli: Daric_crypto Daric_script Daric_tx Keys
