lib/core/locktime.ml: Daric_script
