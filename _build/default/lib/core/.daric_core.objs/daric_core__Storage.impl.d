lib/core/storage.ml: Daric_crypto Daric_tx Keys List Party
