lib/core/party.mli: Daric_chain Daric_crypto Daric_script Daric_tx Daric_util Keys Wire
