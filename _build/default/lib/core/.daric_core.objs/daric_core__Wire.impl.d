lib/core/wire.ml: Daric_crypto Daric_script Daric_tx Daric_util Int64 Keys List Option String
