lib/core/nesting.mli: Daric_chain Daric_script Daric_tx Daric_util Keys
