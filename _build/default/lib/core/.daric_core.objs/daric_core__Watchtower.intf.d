lib/core/watchtower.mli: Daric_chain Daric_tx Keys Party
