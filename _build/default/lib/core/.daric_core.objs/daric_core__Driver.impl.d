lib/core/driver.ml: Daric_chain Daric_crypto Daric_tx Daric_util Keys List Party Watchtower Wire
