lib/core/party.ml: Daric_chain Daric_crypto Daric_script Daric_tx Daric_util Fmt Keys List Logs Option String Txs Wire
