lib/core/keys.ml: Daric_crypto Daric_util
