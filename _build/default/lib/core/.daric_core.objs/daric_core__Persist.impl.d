lib/core/persist.ml: Daric_crypto Daric_script Daric_tx Daric_util Fmt Int64 Keys List Party Result String
