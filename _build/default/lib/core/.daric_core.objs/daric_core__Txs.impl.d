lib/core/txs.ml: Daric_crypto Daric_script Daric_tx Keys
