lib/core/wire.mli: Daric_tx Keys
