lib/core/locktime.mli:
