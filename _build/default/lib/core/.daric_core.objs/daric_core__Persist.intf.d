lib/core/persist.mli: Party
