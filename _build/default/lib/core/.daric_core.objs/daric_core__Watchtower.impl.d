lib/core/watchtower.ml: Char Daric_chain Daric_crypto Daric_script Daric_tx Keys List Party String Txs
