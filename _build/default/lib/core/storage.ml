(** Byte-accurate storage accounting for Table 1.

    A Daric party must retain, per channel: its key material, the
    funding transaction, the latest commit transaction pair, the latest
    floating split transaction with its two ANYPREVOUT signatures, the
    two latest revocation signatures, and the current state — all
    independent of the number of channel updates performed. These
    functions measure exactly what the {!Party} state machine holds so
    the O(1) claim is checked empirically rather than asserted. *)

module Tx = Daric_tx.Tx

let sig_bytes = Daric_crypto.Schnorr.signature_size
let pk_bytes = Daric_crypto.Schnorr.public_key_size
let sk_bytes = 4

let keypair_bytes = sk_bytes + pk_bytes

let tx_bytes (tx : Tx.t) : int = Tx.non_witness_size tx + Tx.witness_size tx

let opt f = function Some v -> f v | None -> 0

let split_bytes (sd : Party.split_data) : int =
  tx_bytes sd.Party.split_body + (2 * sig_bytes)

let update_ctx_bytes (u : Party.update_ctx) : int =
  List.fold_left (fun a (o : Tx.output) -> a + Tx.output_size o) 0 u.Party.u_theta
  + opt tx_bytes u.Party.u_commit_mine
  + tx_bytes u.Party.u_commit_mine_body
  + tx_bytes u.Party.u_commit_theirs_body
  + opt split_bytes u.Party.u_split

(** Total bytes a party retains for one channel. *)
let chan_bytes (c : Party.chan) : int =
  (4 * keypair_bytes) (* own main/sp/rv/rv' *)
  + opt (fun (_ : Keys.pub) -> 4 * pk_bytes) c.Party.their_keys
  + opt (fun (_ : Tx.outpoint) -> 36) c.Party.tid_mine
  + opt (fun (_ : Tx.outpoint) -> 36) c.Party.tid_theirs
  + opt tx_bytes c.Party.fund
  + opt (fun (_ : string) -> sig_bytes) c.Party.fund_sig_mine
  + opt (fun (_ : string) -> sig_bytes) c.Party.fund_sig_theirs
  + List.fold_left (fun a (o : Tx.output) -> a + Tx.output_size o) 0 c.Party.st
  + opt tx_bytes c.Party.commit_mine
  + opt tx_bytes c.Party.commit_theirs_body
  + opt split_bytes c.Party.split
  + opt (fun (_ : string) -> sig_bytes) c.Party.rev_sig_theirs
  + opt (fun (_ : string) -> sig_bytes) c.Party.rev_sig_mine
  + opt update_ctx_bytes c.Party.pending

let party_bytes (p : Party.t) ~(id : string) : int =
  match Party.find_chan p id with Some c -> chan_bytes c | None -> 0
