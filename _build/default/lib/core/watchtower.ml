(** Daric watchtower with O(1) per-channel storage.

    After every channel update the client hands the watchtower one
    fixed-size record: the reconstruction parameters of the channel's
    commit scripts plus the latest floating revocation transaction with
    both ANYPREVOUT signatures. The record *replaces* the previous one —
    unlike a Lightning watchtower, nothing accumulates.

    At the end of every round the watchtower scans the funding outputs
    it guards; if one was spent by a counter-party commit whose
    (sequence-encoded) state index is at most the latest revoked index,
    it completes the revocation transaction and posts it instantly. *)

module Tx = Daric_tx.Tx
module Script = Daric_script.Script
module Ledger = Daric_chain.Ledger

type record = {
  channel_id : string;
  funding : Tx.outpoint;
  keys_a : Keys.pub;
  keys_b : Keys.pub;
  s0 : int;
  rel_lock : int;
  cash : int;
  client_role : Keys.role;  (** whose funds we guard *)
  revoked : int;  (** latest revoked state index (sn - 1) *)
  rev_body : Tx.t;  (** the client's floating revocation transaction *)
  sig_a : string;  (** revocation-branch signature in Alice position *)
  sig_b : string;  (** revocation-branch signature in Bob position *)
}

type t = {
  wid : string;
  mutable records : (string * record) list;  (** by channel id *)
  mutable punished : string list;  (** channel ids we reacted on *)
}

let create ~(wid : string) () : t = { wid; records = []; punished = [] }

(** Check a client record's two revocation-branch signatures in one
    {!Daric_crypto.Schnorr.batch_verify}. The record guards against the
    *counter-party's* commits, whose revocation branch carries the rv
    keys (owner Alice) or rv' keys (owner Bob); both signatures cover
    the ANYPREVOUT message of the floating revocation body. A tower
    that skipped this would store garbage it can never post. *)
let record_valid (r : record) : bool =
  let owner = Keys.other_role r.client_role in
  let rv1, rv2 =
    match owner with
    | Keys.Alice -> (r.keys_a.Keys.rv_pk, r.keys_b.Keys.rv_pk)
    | Keys.Bob -> (r.keys_a.Keys.rv'_pk, r.keys_b.Keys.rv'_pk)
  in
  let item pk sig_bytes =
    if String.length sig_bytes <> Daric_crypto.Schnorr.signature_size then None
    else
      match
        ( Daric_tx.Sighash.flag_of_byte
            (Char.code sig_bytes.[String.length sig_bytes - 1]),
          Daric_crypto.Schnorr.decode_signature sig_bytes )
      with
      | Some flag, Some sg ->
          Some (pk, Daric_tx.Sighash.message flag r.rev_body ~input_index:0, sg)
      | _ -> None
  in
  match (item rv1 r.sig_a, item rv2 r.sig_b) with
  | Some a, Some b -> Daric_crypto.Schnorr.batch_verify [ a; b ]
  | _ -> false

(** Install or replace the record for a channel — the client calls this
    after each update. Storage stays constant per channel. Records
    whose signatures do not batch-verify are rejected (returns [false])
    and the previous record, if any, is kept. *)
let watch (t : t) (r : record) : bool =
  if not (record_valid r) then false
  else begin
    t.records <- (r.channel_id, r) :: List.remove_assoc r.channel_id t.records;
    true
  end

let unwatch (t : t) ~(channel_id : string) : unit =
  t.records <- List.remove_assoc channel_id t.records

let punished (t : t) : string list = t.punished

(** Serialized size in bytes of everything retained for one channel:
    two 33-byte key bundles (4 keys each), script parameters, the
    revocation body and two 73-byte signatures. Constant in the number
    of channel updates — the Table 1 watchtower-storage claim. *)
let record_bytes (r : record) : int =
  let keys = 2 * 4 * Daric_crypto.Schnorr.public_key_size in
  let params = 4 * 4 in
  let body = Tx.non_witness_size r.rev_body in
  let sigs = 2 * Daric_crypto.Schnorr.signature_size in
  let outpoint = 36 in
  keys + params + body + sigs + outpoint + String.length r.channel_id

let storage_bytes (t : t) : int =
  List.fold_left (fun acc (_, r) -> acc + record_bytes r) 0 t.records

(** End-of-round monitoring: punish revoked counter-party commits. *)
let end_of_round (t : t) ~(round : int) ~(ledger : Ledger.t)
    ~(post : Tx.t -> unit) : unit =
  ignore round;
  List.iter
    (fun (cid, r) ->
      if not (List.mem cid t.punished) then
        match Ledger.spender_of ledger r.funding with
        | None -> ()
        | Some spender -> (
            let seq =
              match spender.Tx.inputs with
              | [ i ] -> i.sequence
              | _ -> -1
            in
            if seq >= 0 && seq <= r.revoked then
              (* reconstruct the counter-party's state-seq commit script *)
              let owner = Keys.other_role r.client_role in
              let script =
                Txs.commit_script_of ~role:owner ~keys_a:r.keys_a
                  ~keys_b:r.keys_b ~s0:r.s0 ~i:seq ~rel_lock:r.rel_lock
              in
              match spender.Tx.outputs with
              | [ { Tx.spk = Tx.P2wsh h; _ } ]
                when String.equal h (Script.hash script) ->
                  let rv =
                    Txs.complete_revocation r.rev_body
                      ~commit_outpoint:(Tx.outpoint_of spender 0)
                      ~commit_script:script ~sig1:r.sig_a ~sig2:r.sig_b
                  in
                  post rv;
                  t.punished <- cid :: t.punished
              | _ -> ()))
    t.records

(** Build the current watchtower record for a party's channel. Returns
    [None] until the first update has completed (there is nothing to
    revoke in state 0). *)
let record_for (p : Party.t) ~(id : string) : record option =
  match Party.find_chan p id with
  | None -> None
  | Some c -> (
      match (c.Party.rev_sig_theirs, c.Party.rev_sig_mine, c.Party.fund) with
      | Some sig_theirs, Some sig_mine, Some fund ->
          let keys_a, keys_b = Party.keys_ab c in
          let revoked = c.Party.sn - 1 in
          let rev_body = Party.my_rev_body c ~revoked in
          let sig_a, sig_b =
            Party.rev_witness_sigs c ~sig_mine ~sig_theirs
          in
          Some
            { channel_id = id;
              funding = Tx.outpoint_of fund 0;
              keys_a;
              keys_b;
              s0 = c.Party.cfg.s0;
              rel_lock = c.Party.cfg.rel_lock;
              cash = Party.cash c.Party.cfg;
              client_role = c.Party.cfg.role;
              revoked;
              rev_body;
              sig_a;
              sig_b }
      | _ -> None)
