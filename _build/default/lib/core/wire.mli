(** Protocol messages exchanged between Daric channel parties
    (Appendix D), with a canonical byte encoding for communication
    accounting and transcripts. *)

module Tx = Daric_tx.Tx

type msg =
  | Create_info of { id : string; tid : Tx.outpoint; keys : Keys.pub }
  | Create_com of { id : string; split_sig : string; commit_sig : string }
  | Create_fund of { id : string; fund_sig : string }
  | Update_req of { id : string; theta : Tx.output list; tstp : int }
  | Update_info of { id : string; split_sig : string }
  | Update_com_initiator of { id : string; split_sig : string; commit_sig : string }
  | Update_com_responder of { id : string; commit_sig : string }
  | Revoke_initiator of { id : string; rev_sig : string }
  | Revoke_responder of { id : string; rev_sig : string }
  | Close_req of { id : string; fin_sig : string }
  | Close_ack of { id : string; fin_sig : string }

val channel_id : msg -> string

val kind : msg -> string
(** The paper's message name (createInfo, updateComP, ...). *)

val encode : msg -> string
(** Canonical byte encoding. *)

val decode : string -> msg option
(** Inverse of {!encode}; [None] on truncated, padded or malformed
    input. Raw-script state outputs are not decodable (the protocol
    only ever ships P2WSH/P2WPKH outputs). *)

val size : msg -> int
(** Serialized size in bytes. *)
