(** Durable channel state: serialize exactly what a Daric party must
    retain per channel and restore it into a fresh party. The blob IS
    the party's entire per-channel storage — constant-size in the
    number of updates — and a restarted party can still update, close
    and punish from it. Only quiescent channels (no update/closure in
    flight) are persisted. *)

val encode_chan : Party.chan -> (string, string) result
(** Serialize a quiescent channel; [Error] names the blocking phase. *)

val restore_chan : Party.t -> string -> (unit, string) result
(** Restore a channel into a party that does not already track it.
    Rejects malformed, truncated or padded blobs. *)

val blob_size : Party.chan -> (int, string) result
(** Size of the encoded blob in bytes. *)
